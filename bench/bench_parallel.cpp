// Parallel-runtime scaling benchmark: aggregate packets/sec through the
// multi-queue ParallelRuntime at 1/2/4/8 workers on the three standard
// filter sets, plus a mixed lookup+flow-mod churn scenario (a writer thread
// toggling a top-priority entry through the RCU snapshot handoff while the
// workers classify). Writes BENCH_parallel.json so the scaling curve is
// mechanically comparable across PRs; metadata records the hardware thread
// count — on a 1-core container the curve is flat by construction, compare
// like hardware with like.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/builder.hpp"
#include "runtime/runtime.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace {

using namespace ofmtl;
using runtime::BatchTicket;
using runtime::ParallelRuntime;

constexpr std::size_t kBatch = 256;
constexpr std::size_t kTracePackets = 4096;
constexpr std::size_t kInFlight = 4;  // outstanding batches per queue
constexpr auto kWarmup = std::chrono::milliseconds(150);
constexpr auto kMeasure = std::chrono::milliseconds(400);
constexpr auto kChurnInterval = std::chrono::milliseconds(5);

struct App {
  std::string tag;
  MultiTableLookup accelerated;
  std::vector<PacketHeader> trace;
};

App make_app(workload::FilterApp app, const char* name) {
  const auto set = workload::generate_filterset(app, name);
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  return App{std::string(to_string(app)) + "_" + name, compile_app(spec),
             workload::generate_trace(
                 set, {.packets = kTracePackets, .hit_ratio = 0.9, .seed = 77})};
}

/// Keep every queue saturated with kInFlight outstanding batches for
/// `warmup + measure`, returning aggregate packets/sec over the measure
/// window (from the runtime's own per-worker counters, so producer-side
/// stalls do not flatter the number).
double run_scaling(const App& app, std::size_t workers, bool churn) {
  ParallelRuntime rt(app.accelerated.clone(),
                     {.workers = workers, .queue_capacity = 2 * kInFlight});

  // Producer-side buffers first: anything that can throw must run before
  // the churn writer spawns (unwinding past a joinable std::thread
  // terminates). Per (queue, slot) result buffers are only resubmitted
  // after their previous batch drained.
  std::vector<std::vector<std::vector<ExecutionResult>>> results(workers);
  std::vector<std::vector<BatchTicket>> tickets(workers);
  for (std::size_t q = 0; q < workers; ++q) {
    results[q].resize(kInFlight);
    for (auto& slot : results[q]) slot.resize(kBatch);
    tickets[q] = std::vector<BatchTicket>(kInFlight);
  }

  std::thread writer;
  std::atomic<bool> writer_stop{false};
  std::uint64_t flow_mods = 0;
  if (churn) {
    writer = std::thread([&rt, &writer_stop] {
      FlowEntry takeover;
      takeover.id = 9999999;
      takeover.priority = 60000;
      takeover.instructions = output_instruction(42);
      bool installed = false;
      while (!writer_stop.load(std::memory_order_acquire)) {
        if (installed) {
          rt.remove_entry(1, takeover.id);
        } else {
          rt.insert_entry(1, takeover);
        }
        installed = !installed;
        std::this_thread::sleep_for(kChurnInterval);
      }
      if (installed) rt.remove_entry(1, takeover.id);
    });
  }

  // Producer: one thread feeding all queues round-robin.
  const auto start = std::chrono::steady_clock::now();
  const auto warm_end = start + kWarmup;
  const auto measure_end = warm_end + kMeasure;
  std::uint64_t warm_packets = 0;
  // Timestamp of the moment warm_packets was actually sampled (up to one
  // submission round after warm_end) — the measured window must start
  // there, not at the nominal warm_end, or throughput skews low.
  auto measure_start = warm_end;
  double measured_seconds = 0.0;
  std::size_t offset = 0;
  bool measuring = false;
  while (true) {
    for (std::size_t slot = 0; slot < kInFlight; ++slot) {
      for (std::size_t q = 0; q < workers; ++q) {
        tickets[q][slot].wait();
        const std::size_t base = (offset += kBatch) & (kTracePackets - 1);
        while (!rt.try_submit(q, {app.trace.data() + base, kBatch},
                              {results[q][slot].data(), kBatch},
                              &tickets[q][slot])) {
          std::this_thread::yield();
        }
      }
    }
    const auto now = std::chrono::steady_clock::now();
    if (!measuring && now >= warm_end) {
      warm_packets = rt.total_stats().packets;
      measure_start = now;
      measuring = true;
    }
    if (measuring && now >= measure_end) {
      const auto final_stats = rt.total_stats();
      if (final_stats.errors != 0) {
        std::cerr << "error: " << final_stats.errors
                  << " batches threw in workers — bench numbers invalid\n";
        std::exit(1);
      }
      const std::uint64_t done = final_stats.packets;
      measured_seconds =
          std::chrono::duration<double>(now - measure_start).count();
      if (churn) {
        writer_stop.store(true, std::memory_order_release);
        writer.join();
        flow_mods = rt.epoch();
        std::cout << "  (" << flow_mods << " snapshot publishes during run)\n";
      }
      rt.stop();
      return static_cast<double>(done - warm_packets) /
             (measured_seconds > 0 ? measured_seconds : 1.0);
    }
  }
}

}  // namespace

int main() {
  std::vector<std::pair<std::string, double>> results;
  std::vector<App> apps;  // App is move-only (FieldSearch engines)
  apps.push_back(make_app(workload::FilterApp::kMacLearning, "bbra"));
  apps.push_back(make_app(workload::FilterApp::kMacLearning, "gozb"));
  apps.push_back(make_app(workload::FilterApp::kRouting, "yoza"));
  for (const auto& app : apps) {
    for (const std::size_t workers : {1, 2, 4, 8}) {
      const double pps = run_scaling(app, workers, /*churn=*/false);
      results.emplace_back(
          "parallel/" + app.tag + "/workers" + std::to_string(workers), pps);
      std::cout << app.tag << " workers=" << workers << ": " << std::fixed
                << pps / 1e6 << " Mpps\n";
    }
  }
  // Mixed lookup + flow-mod churn: 4 workers classifying while a writer
  // publishes a snapshot every ~5 ms.
  for (const auto& app : apps) {
    const double pps = run_scaling(app, 4, /*churn=*/true);
    results.emplace_back("parallel_churn/" + app.tag + "/workers4", pps);
    std::cout << app.tag << " churn workers=4: " << std::fixed << pps / 1e6
              << " Mpps\n";
  }

  auto metadata = ofmtl::bench::common_metadata();
  metadata.emplace_back("batch_size", std::to_string(kBatch));
  metadata.emplace_back("in_flight_batches_per_queue",
                        std::to_string(kInFlight));
  metadata.emplace_back("trace_packets", std::to_string(kTracePackets));
  metadata.emplace_back("warmup_ms", std::to_string(kWarmup.count()));
  metadata.emplace_back("measure_ms", std::to_string(kMeasure.count()));
  metadata.emplace_back("churn_interval_ms",
                        std::to_string(kChurnInterval.count()));
  ofmtl::bench::write_bench_json("parallel", "packets_per_sec", results,
                                 metadata);
  return 0;
}
