// Parallel-runtime scaling benchmark: aggregate packets/sec through the
// multi-queue ParallelRuntime at 1/2/4/8 workers on the three standard
// filter sets, a mixed lookup+flow-mod churn scenario (a writer thread
// toggling a top-priority entry through the left-right snapshot pair while
// the workers classify), and a skewed-submit scenario (every batch lands on
// queue 0 at 4 workers, with work stealing on and off). Writes
// BENCH_parallel.json so the scaling curve is mechanically comparable
// across PRs; metadata records the hardware thread count — on a 1-core
// container the curve is flat by construction, compare like hardware with
// like.
//
// A second output, BENCH_parallel_publish.json (ns_per_publish), measures
// flow-mod publish latency against table size: with the left-right pair the
// writer applies each mod in place on both replicas, so the 1k-entry and
// 100k-entry latencies must sit within noise of each other
// (scripts/check_bench.py --flat-pair gates exactly that in CI).
//
// Two observability metrics ride on the same harness when the trace
// instrumentation is compiled in (OFMTL_TRACE, the default):
//   - trace/overhead_percent: throughput cost of live tracing — minimum
//     over four order-alternating (tracing-off, tracing-on) pairs of the
//     mac_bbra 1-worker scenario, clamped at 0. CI ceilings this at 5%.
//   - parallel_tail/mac_bbra/workers1/p50|p99|p999_ns: per-packet batch
//     latency quantiles from the traced runs' rings, merged across runs
//     through obs::LogHistogram (hardware-sensitive, baseline-gated; the
//     p99/p50 ratio is ceiling-gated machine-independently).
//
// `bench_parallel --flight-recorder` runs the flight-recorder demo instead
// of the benchmark: it arms an obs::FlightRecorder with an impossible SLO
// (batch p99 ≤ 1 ns), drives one traced 1-worker run, and verifies that the
// forced breach produced a loadable OFTRACE1 dump plus a JSON breach
// report. CI runs this as a smoke test of the whole breach→dump→reload
// path on a real workload.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/builder.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/tracer.hpp"
#include "runtime/runtime.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace {

using namespace ofmtl;
using runtime::BatchTicket;
using runtime::ParallelRuntime;

constexpr std::size_t kBatch = 256;
constexpr std::size_t kTracePackets = 4096;
constexpr std::size_t kInFlight = 4;  // outstanding batches per queue
constexpr auto kWarmup = std::chrono::milliseconds(150);
constexpr auto kMeasure = std::chrono::milliseconds(400);
constexpr auto kChurnInterval = std::chrono::milliseconds(5);

struct App {
  std::string tag;
  MultiTableLookup accelerated;
  std::vector<PacketHeader> trace;
};

App make_app(workload::FilterApp app, const char* name) {
  const auto set = workload::generate_filterset(app, name);
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  return App{std::string(to_string(app)) + "_" + name, compile_app(spec),
             workload::generate_trace(
                 set, {.packets = kTracePackets, .hit_ratio = 0.9, .seed = 77})};
}

/// Keep every queue saturated with kInFlight outstanding batches for
/// `warmup + measure`, returning aggregate packets/sec over the measure
/// window (from the runtime's own per-worker counters, so producer-side
/// stalls do not flatter the number). With `skewed` every batch is
/// submitted to queue 0 — the scenario work stealing exists for.
double run_scaling(const App& app, std::size_t workers, bool churn,
                   bool skewed = false, bool stealing = true,
                   std::size_t flow_cache = 0) {
  ParallelRuntime rt(app.accelerated.clone(),
                     {.workers = workers,
                      .queue_capacity = 2 * kInFlight * (skewed ? workers : 1),
                      .work_stealing = stealing,
                      .flow_cache_capacity = flow_cache});

  // Producer-side buffers first: anything that can throw must run before
  // the churn writer spawns (unwinding past a joinable std::thread
  // terminates). Per (queue, slot) result buffers are only resubmitted
  // after their previous batch drained.
  std::vector<std::vector<std::vector<ExecutionResult>>> results(workers);
  std::vector<std::vector<BatchTicket>> tickets(workers);
  for (std::size_t q = 0; q < workers; ++q) {
    results[q].resize(kInFlight);
    for (auto& slot : results[q]) slot.resize(kBatch);
    tickets[q] = std::vector<BatchTicket>(kInFlight);
  }

  std::thread writer;
  std::atomic<bool> writer_stop{false};
  std::uint64_t flow_mods = 0;
  if (churn) {
    writer = std::thread([&rt, &writer_stop] {
      FlowEntry takeover;
      takeover.id = 9999999;
      takeover.priority = 60000;
      takeover.instructions = output_instruction(42);
      bool installed = false;
      while (!writer_stop.load(std::memory_order_acquire)) {
        if (installed) {
          rt.remove_entry(1, takeover.id);
        } else {
          rt.insert_entry(1, takeover);
        }
        installed = !installed;
        std::this_thread::sleep_for(kChurnInterval);
      }
      if (installed) rt.remove_entry(1, takeover.id);
    });
  }

  // Producer: one thread feeding all queues round-robin.
  const auto start = std::chrono::steady_clock::now();
  const auto warm_end = start + kWarmup;
  const auto measure_end = warm_end + kMeasure;
  std::uint64_t warm_packets = 0;
  // Timestamp of the moment warm_packets was actually sampled (up to one
  // submission round after warm_end) — the measured window must start
  // there, not at the nominal warm_end, or throughput skews low.
  auto measure_start = warm_end;
  double measured_seconds = 0.0;
  std::size_t offset = 0;
  bool measuring = false;
  while (true) {
    for (std::size_t slot = 0; slot < kInFlight; ++slot) {
      for (std::size_t q = 0; q < workers; ++q) {
        tickets[q][slot].wait();
        const std::size_t base = (offset += kBatch) & (kTracePackets - 1);
        const std::size_t target = skewed ? 0 : q;
        while (!rt.try_submit(target, {app.trace.data() + base, kBatch},
                              {results[q][slot].data(), kBatch},
                              &tickets[q][slot])) {
          std::this_thread::yield();
        }
      }
    }
    const auto now = std::chrono::steady_clock::now();
    if (!measuring && now >= warm_end) {
      warm_packets = rt.aggregate_stats().packets;
      measure_start = now;
      measuring = true;
    }
    if (measuring && now >= measure_end) {
      const auto final_stats = rt.aggregate_stats();
      if (final_stats.errors != 0) {
        std::cerr << "error: " << final_stats.errors
                  << " batches threw in workers — bench numbers invalid\n";
        std::exit(1);
      }
      const std::uint64_t done = final_stats.packets;
      measured_seconds =
          std::chrono::duration<double>(now - measure_start).count();
      if (churn) {
        writer_stop.store(true, std::memory_order_release);
        writer.join();
        flow_mods = rt.epoch();
        std::cout << "  (" << flow_mods << " snapshot publishes during run)\n";
      }
      if (flow_cache > 0 && churn) {
        // Invalidation sanity gate: with live flow-mods every publish must
        // void the epoch-keyed entries lazily — a run where no cached entry
        // was ever epoch-invalidated means the cache served stale actions
        // (or the churn never happened) and the numbers are meaningless.
        if (final_stats.cache_epoch_invalidations == 0 || flow_mods == 0) {
          std::cerr << "error: churn ran with the flow cache but no "
                       "epoch invalidations were counted\n";
          std::exit(1);
        }
        std::cout << "  (cache: "
                  << final_stats.cache_hits << " hits, "
                  << final_stats.cache_misses << " misses, "
                  << final_stats.cache_epoch_invalidations
                  << " epoch invalidations)\n";
      }
      rt.stop();
      return static_cast<double>(done - warm_packets) /
             (measured_seconds > 0 ? measured_seconds : 1.0);
    }
  }
}

/// One tracing-off/tracing-on pair on the mac_bbra 1-worker scenario:
/// returns the throughput cost of live tracing in percent (clamped at 0 —
/// on a noisy machine "on" can measure faster than "off") and folds the
/// traced run's per-packet batch latencies into `tail`. `on_first` flips
/// the run order: alternating it across pairs keeps monotonic drift
/// (thermal, frequency scaling) from masquerading as tracing cost.
double measure_trace_overhead(const App& app, obs::LogHistogram& tail,
                              bool on_first) {
  const auto run_traced = [&] {
    obs::start_tracing();
    const double pps = run_scaling(app, /*workers=*/1, /*churn=*/false);
    obs::stop_tracing();
    const auto dump = obs::collect_tracing();
    tail.merge(obs::slice_latency_histogram(dump, obs::TraceEvent::kBatchBegin,
                                            obs::TraceEvent::kBatchEnd,
                                            /*per_payload_unit=*/true));
    return pps;
  };
  double on_pps, off_pps;
  if (on_first) {
    on_pps = run_traced();
    off_pps = run_scaling(app, /*workers=*/1, /*churn=*/false);
  } else {
    off_pps = run_scaling(app, /*workers=*/1, /*churn=*/false);
    on_pps = run_traced();
  }
  if (off_pps <= 0.0) return 0.0;
  return std::max(0.0, 100.0 * (off_pps - on_pps) / off_pps);
}

/// One exact-match table of `n` MAC-learning-style entries.
MultiTableLookup make_em_tables(std::size_t n) {
  std::vector<FlowEntry> entries;
  entries.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    FlowEntry entry;
    entry.id = static_cast<FlowEntryId>(i);
    entry.priority = 100;
    entry.match.set(FieldId::kEthDst, FieldMatch::exact(std::uint64_t{i}));
    entry.instructions = output_instruction(static_cast<std::uint32_t>(i % 1024));
    entries.push_back(std::move(entry));
  }
  MultiTableLookup tables;
  tables.add_table(LookupTable({FieldId::kEthDst}, std::move(entries)));
  return tables;
}

/// Median ns per publish (one flow-mod = one publish) on a table of `n`
/// entries: toggles one extra entry through the left-right writer. No reader
/// threads — this isolates the apply/swap cost a flow-mod pays, which with
/// the left-right pair is O(delta of the mod), so the number must be flat
/// across table sizes.
double run_publish_latency(std::size_t n) {
  runtime::SnapshotClassifier classifier(make_em_tables(n));
  FlowEntry extra;
  extra.id = 90000001;
  extra.priority = 60000;
  extra.match.set(FieldId::kEthDst, FieldMatch::exact(std::uint64_t{1} << 40));
  extra.instructions = output_instruction(42);

  constexpr std::size_t kWarmToggles = 32;
  constexpr std::size_t kRounds = 64;
  constexpr std::size_t kTogglesPerRound = 16;
  for (std::size_t i = 0; i < kWarmToggles; ++i) {
    classifier.insert_entry(0, extra);
    classifier.remove_entry(0, extra.id);
  }
  std::vector<double> per_publish_ns(kRounds);
  for (std::size_t round = 0; round < kRounds; ++round) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kTogglesPerRound; ++i) {
      classifier.insert_entry(0, extra);
      classifier.remove_entry(0, extra.id);
    }
    const auto end = std::chrono::steady_clock::now();
    per_publish_ns[round] =
        std::chrono::duration<double, std::nano>(end - start).count() /
        (2.0 * kTogglesPerRound);
  }
  std::nth_element(per_publish_ns.begin(),
                   per_publish_ns.begin() + kRounds / 2, per_publish_ns.end());
  return per_publish_ns[kRounds / 2];
}

/// --flight-recorder: force an SLO breach on a real traced run and prove
/// the emitted artifacts round-trip. Exit 0 only when the breach fired, the
/// OFTRACE1 dump reloads through the hardened loader with records in it,
/// and the JSON report exists.
int run_flight_recorder_demo() {
  if (!obs::kInstrumentationCompiled) {
    std::cout << "flight-recorder demo skipped: built without OFMTL_TRACE\n";
    return 0;
  }
  bench::print_heading("flight recorder forced-breach demo");
  const App app = make_app(workload::FilterApp::kMacLearning, "bbra");

  obs::FlightRecorderConfig config;
  config.slos.push_back({.name = "batch",
                         .begin = obs::TraceEvent::kBatchBegin,
                         .end = obs::TraceEvent::kBatchEnd,
                         .per_payload_unit = false,
                         .max_p99_over_p50 = 0,
                         .max_p99_ns = 1,  // impossible: any real batch breaches
                         .min_samples = 16});
  config.retain_ms = 1000;
  config.dump_prefix = "bench_flight";
  obs::FlightRecorder recorder(config);

  obs::start_tracing();
  recorder.arm();
  const double pps = run_scaling(app, /*workers=*/1, /*churn=*/false);
  std::vector<obs::BreachInfo> breaches = recorder.poll();
  recorder.disarm();
  obs::stop_tracing();
  (void)obs::collect_tracing();  // leave the registry drained for reuse
  std::cout << "traced run: " << std::fixed << pps / 1e6 << " Mpps\n";

  if (breaches.empty()) {
    std::cerr << "error: impossible SLO (p99 <= 1 ns) did not breach\n";
    return 1;
  }
  const auto& breach = breaches.front();
  std::cout << "breach: slo=" << breach.slo << " reason=" << breach.reason
            << " p50=" << breach.p50_ns << " ns p99=" << breach.p99_ns
            << " ns over " << breach.samples << " samples\n"
            << "dump:   " << breach.dump_path << "\n"
            << "report: " << breach.report_path << "\n";

  obs::TraceDump reloaded;
  const auto status = obs::load_trace_dump(breach.dump_path, reloaded);
  if (status != obs::TraceLoadStatus::kOk) {
    std::cerr << "error: breach dump failed to reload: "
              << obs::trace_load_status_name(status) << "\n";
    return 1;
  }
  std::size_t records = 0;
  for (const auto& thread : reloaded.threads) records += thread.records.size();
  if (reloaded.threads.empty() || records == 0) {
    std::cerr << "error: breach dump reloaded empty\n";
    return 1;
  }
  std::ifstream report(breach.report_path);
  std::stringstream report_text;
  report_text << report.rdbuf();
  if (!report || report_text.str().find("\"slo\"") == std::string::npos) {
    std::cerr << "error: breach report missing or malformed\n";
    return 1;
  }
  std::cout << "reloaded dump: " << reloaded.threads.size() << " thread(s), "
            << records << " records — breach artifacts verified\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--flight-recorder") return run_flight_recorder_demo();
    std::cerr << "usage: bench_parallel [--flight-recorder]\n";
    return 2;
  }
  std::vector<std::pair<std::string, double>> results;
  std::vector<App> apps;  // App is move-only (FieldSearch engines)
  apps.push_back(make_app(workload::FilterApp::kMacLearning, "bbra"));
  apps.push_back(make_app(workload::FilterApp::kMacLearning, "gozb"));
  apps.push_back(make_app(workload::FilterApp::kRouting, "yoza"));
  for (const auto& app : apps) {
    for (const std::size_t workers : {1, 2, 4, 8}) {
      const double pps = run_scaling(app, workers, /*churn=*/false);
      results.emplace_back(
          "parallel/" + app.tag + "/workers" + std::to_string(workers), pps);
      std::cout << app.tag << " workers=" << workers << ": " << std::fixed
                << pps / 1e6 << " Mpps\n";
    }
  }
  // Mixed lookup + flow-mod churn: 4 workers classifying while a writer
  // publishes a snapshot every ~5 ms — once with the per-worker flow cache
  // off and once on (4096 slots). The cache-on run doubles as an
  // invalidation-correctness check: it aborts unless epoch invalidations
  // were counted while publishes happened (lazy invalidation engaged).
  for (const auto& app : apps) {
    for (const std::size_t cache : {std::size_t{0}, std::size_t{4096}}) {
      const double pps = run_scaling(app, 4, /*churn=*/true, /*skewed=*/false,
                                     /*stealing=*/true, cache);
      results.emplace_back("parallel_churn/" + app.tag + "/workers4/cache_" +
                               (cache > 0 ? "on" : "off"),
                           pps);
      std::cout << app.tag << " churn workers=4 cache="
                << (cache > 0 ? "on" : "off") << ": " << std::fixed
                << pps / 1e6 << " Mpps\n";
    }
  }
  // Skewed submitter: every batch on queue 0 at 4 workers. With stealing
  // the three idle workers drain the hot queue; without it they spin.
  for (const auto& app : apps) {
    for (const bool stealing : {true, false}) {
      const double pps = run_scaling(app, 4, /*churn=*/false, /*skewed=*/true,
                                     stealing);
      results.emplace_back("parallel_skew/" + app.tag + "/steal_" +
                               (stealing ? "on" : "off"),
                           pps);
      std::cout << app.tag << " skewed steal=" << (stealing ? "on" : "off")
                << ": " << std::fixed << pps / 1e6 << " Mpps\n";
    }
  }

  // Tracing overhead + tail quantiles (instrumented builds only). Four
  // order-alternating off/on pairs, minimum overhead: the minimum is a
  // lower bound on the SYSTEMATIC cost (a real regression shows up in every
  // pair), while a median would still ingest one-sided scheduling noise —
  // on a shared 1-core runner individual pairs swing by several percent
  // when the true per-batch emit cost is ~100 ns against a ~60 us batch.
  if (obs::kInstrumentationCompiled) {
    const App& app = apps.front();  // mac_bbra
    obs::LogHistogram tail;
    double overhead = 100.0;
    // The recorder stays armed (crash handlers installed, rings registered
    // for post-mortem dumps) through the overhead pairs, so the published
    // trace/overhead_percent is the cost WITH the flight recorder on — the
    // 5% CI ceiling covers the full observability plane, not bare tracing.
    obs::FlightRecorder recorder({.install_crash_handler = true});
    recorder.arm();
    for (int pair = 0; pair < 4; ++pair) {
      const double measured =
          measure_trace_overhead(app, tail, /*on_first=*/pair % 2 == 1);
      std::cout << "  (trace overhead pair " << pair << ": " << measured
                << "%)\n";
      overhead = std::min(overhead, measured);
    }
    recorder.disarm();
    results.emplace_back("trace/overhead_percent", overhead);
    results.emplace_back("parallel_tail/" + app.tag + "/workers1/p50_ns",
                         static_cast<double>(tail.quantile(0.50)));
    results.emplace_back("parallel_tail/" + app.tag + "/workers1/p99_ns",
                         static_cast<double>(tail.quantile(0.99)));
    results.emplace_back("parallel_tail/" + app.tag + "/workers1/p999_ns",
                         static_cast<double>(tail.quantile(0.999)));
    std::cout << "trace overhead (min of 4 alternating pairs): " << overhead
              << "%; tail per packet (n=" << tail.total()
              << " batches): p50 " << tail.quantile(0.50) << " ns, p99 "
              << tail.quantile(0.99) << " ns, p99.9 " << tail.quantile(0.999)
              << " ns\n";
  }

  auto metadata = ofmtl::bench::common_metadata();
  metadata.emplace_back("batch_size", std::to_string(kBatch));
  metadata.emplace_back("in_flight_batches_per_queue",
                        std::to_string(kInFlight));
  metadata.emplace_back("trace_packets", std::to_string(kTracePackets));
  metadata.emplace_back("warmup_ms", std::to_string(kWarmup.count()));
  metadata.emplace_back("measure_ms", std::to_string(kMeasure.count()));
  metadata.emplace_back("churn_interval_ms",
                        std::to_string(kChurnInterval.count()));
  metadata.emplace_back("churn_cache_capacity", "4096");
  ofmtl::bench::write_bench_json("parallel", "packets_per_sec", results,
                                 metadata);

  // Publish latency vs table size: flat across sizes with the left-right
  // writer (O(delta) per flow-mod). Separate JSON — different unit.
  std::vector<std::pair<std::string, double>> publish_results;
  for (const std::size_t entries : {std::size_t{1000}, std::size_t{10000},
                                    std::size_t{100000}}) {
    const double ns = run_publish_latency(entries);
    publish_results.emplace_back("publish/entries_" + std::to_string(entries),
                                 ns);
    std::cout << "publish latency @" << entries << " entries: " << std::fixed
              << ns << " ns/publish\n";
  }
  auto publish_metadata = ofmtl::bench::common_metadata();
  publish_metadata.emplace_back("publish_rounds", "64");
  publish_metadata.emplace_back("toggles_per_round", "16");
  ofmtl::bench::write_bench_json("parallel_publish", "ns_per_publish",
                                 publish_results, publish_metadata);
  return 0;
}
