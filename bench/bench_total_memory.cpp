// Section V.A headline reproduction: total memory of the prototype — the
// MAC-learning and routing applications implemented together as 4 OpenFlow
// lookup tables with two MBT structures and two exact-match LUTs. The paper
// reports 5 Mb total with the MBTs consuming ~2 Mb, and maps each structure
// to its own embedded memory block (M20K model here).
#include <iostream>

#include "bench_common.hpp"
#include "core/builder.hpp"
#include "mem/memory_model.hpp"
#include "workload/calibration.hpp"

int main() {
  using namespace ofmtl;

  // The paper's prototype stores each trie level as a full block array in
  // embedded memory, so the hardware-faithful policy is array-block. gozb is
  // the paper's MAC worst case; its routing table is a typical (non-anomaly)
  // backbone table.
  const auto mac_set = workload::generate_mac_filterset(workload::mac_target("gozb"));
  const auto routing_set =
      workload::generate_routing_filterset(workload::routing_target("gozb"));

  bench::print_heading(
      "Section V.A - Prototype memory (MAC: gozb, Routing: gozb, array-block)");
  FieldSearchConfig hw_config;
  hw_config.storage = TrieStorage::kArrayBlock;
  const auto prototype = build_prototype(mac_set, routing_set, hw_config);
  const auto report = prototype.memory_report();
  report.print(std::cout);

  std::uint64_t trie_bits = 0, lut_bits = 0, index_bits = 0, action_bits = 0;
  for (const auto& component : report.components()) {
    if (component.name.find(".trie") != std::string::npos) {
      trie_bits += component.bits();
    } else if (component.name.find(".lut") != std::string::npos) {
      lut_bits += component.bits();
    } else if (component.name.find(".index") != std::string::npos) {
      index_bits += component.bits();
    } else if (component.name.find(".actions") != std::string::npos) {
      action_bits += component.bits();
    }
  }
  const mem::BlockRamModel m20k;
  std::cout << "\nBreakdown:\n";
  std::cout << "  MBT structures : " << mem::to_mbits(trie_bits)
            << " Mb  (paper: ~2 Mb, the dominant share)\n";
  std::cout << "  EM LUTs        : " << mem::to_mbits(lut_bits) << " Mb\n";
  std::cout << "  index tables   : " << mem::to_mbits(index_bits) << " Mb\n";
  std::cout << "  action tables  : " << mem::to_mbits(action_bits) << " Mb\n";
  std::cout << "  TOTAL          : " << mem::to_mbits(report.total_bits())
            << " Mb  (paper: 5 Mb total)\n";
  std::cout << "  M20K blocks    : " << report.total_blocks(m20k)
            << " (one structure per block, Section V.A)\n";

  bench::print_heading("Same prototype across all 16 routers (total Mbits)");
  stats::Table table({"Router", "MAC app Mb", "Routing app Mb",
                      "Total Mb (array-block)", "Total Mb (sparse)"});
  for (std::size_t i = 0; i < workload::kFilterCount; ++i) {
    const auto name = std::string(workload::kMacTargets[i].name);
    const auto mac = workload::generate_mac_filterset(workload::kMacTargets[i]);
    const auto routing =
        workload::generate_routing_filterset(workload::kRoutingTargets[i]);
    const auto hw = build_prototype(mac, routing, hw_config);
    const auto sparse = build_prototype(mac, routing);
    const double mac_mb =
        mem::to_mbits(hw.mac_lookup.memory_report("m").total_bits());
    const double routing_mb =
        mem::to_mbits(hw.routing_lookup.memory_report("r").total_bits());
    table.add(name, mac_mb, routing_mb, mac_mb + routing_mb,
              mem::to_mbits(sparse.memory_report().total_bits()));
  }
  table.print(std::cout);
  std::cout << "\nThe sparse column is the software-model lower bound; the "
               "array-block column charges every allocated block slot, as "
               "the FPGA block RAM does.\n";
  return 0;
}
