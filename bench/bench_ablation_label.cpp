// Label-method ablation (Section IV.B): memory with the label method versus
// storing each rule's field values directly in the structures (rule
// replication). Without labels every rule occupies its own copy of each
// field value; with labels each unique value is stored once and rules
// reference it through the index stage.
#include <iostream>

#include "bench_common.hpp"
#include "core/builder.hpp"
#include "mem/memory_model.hpp"
#include "stats/filter_analysis.hpp"
#include "workload/calibration.hpp"

namespace {

using namespace ofmtl;

/// Memory a label-less decomposition would need: every rule stores its own
/// copy of each field value in every structure (DCFL's motivating
/// comparison), i.e. unique-value storage scaled by the repetition factor.
std::uint64_t label_less_bits(const FilterSet& set) {
  std::uint64_t bits = 0;
  for (const auto& entry : set.entries) {
    for (const auto id : set.fields) {
      const auto& fm = entry.match.get(id);
      if (fm.kind == MatchKind::kAny) continue;
      bits += field_bits(id) + 8;  // value copy + per-entry bookkeeping
    }
  }
  return bits;
}

}  // namespace

int main() {
  bench::print_heading(
      "Label-method ablation - structure memory with vs without labels");

  stats::Table table({"App/Router", "Rules", "With labels Kbits",
                      "Without labels Kbits", "Saving %", "Repetition x"});
  for (const auto app :
       {workload::FilterApp::kMacLearning, workload::FilterApp::kRouting}) {
    for (const auto name : {"bbra", "gozb", "coza", "yoza"}) {
      const auto set = workload::generate_filterset(app, name);
      const auto spec = build_app(set, TableLayout::kPerFieldTables);
      const auto pipeline = compile_app(spec);

      // Structure memory only (field searches), excluding index/actions
      // which exist in both designs.
      std::uint64_t labelled_bits = 0;
      for (std::size_t t = 0; t < pipeline.table_count(); ++t) {
        for (std::size_t f = 0; f < pipeline.table(t).fields().size(); ++f) {
          labelled_bits += pipeline.table(t)
                               .field_searches()[f]
                               .memory_report("x")
                               .total_bits();
        }
      }
      const std::uint64_t unlabelled_bits = label_less_bits(set);

      // Repetition factor: rules over unique values, averaged over fields.
      const auto analysis = stats::analyze(set);
      double repetition = 0;
      double fields = 0;
      for (const auto& fs : analysis.fields) {
        for (const auto unique : fs.unique_per_partition) {
          if (unique == 0) continue;
          repetition += static_cast<double>(analysis.rule_count) /
                        static_cast<double>(unique);
          fields += 1;
        }
      }
      repetition /= fields;

      const double saving =
          100.0 * (1.0 - static_cast<double>(labelled_bits) /
                             static_cast<double>(unlabelled_bits));
      table.add(std::string(to_string(app)) + "/" + name, set.entries.size(),
                mem::to_kbits(labelled_bits), mem::to_kbits(unlabelled_bits),
                saving, repetition);
    }
  }
  table.print(std::cout);
  std::cout << "\nThe saving tracks the repetition factor (Tables III/IV): "
               "the more rules share field values, the more the label method "
               "collapses storage - the Section IV.B design rationale.\n";
  return 0;
}
