// EM-structure ablation: the paper uses "a simple hash-based Lookup table"
// for exact-match fields. This bench quantifies that choice against a 2-way
// bucketized cuckoo table on the calibrated unique-value sets: slots, Kbits,
// build relocations, and the LUT share of total table memory (small either
// way — Table III: at most 209 unique VLAN IDs — which is why the paper's
// simple choice is sound).
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "classifier/cuckoo_lut.hpp"
#include "core/lut.hpp"
#include "mem/memory_model.hpp"
#include "workload/calibration.hpp"
#include "workload/rng.hpp"
#include "workload/stanford_synth.hpp"

int main() {
  using namespace ofmtl;

  bench::print_heading(
      "EM ablation - linear-probing LUT vs bucketized cuckoo (unique values "
      "from the calibrated filters)");

  stats::Table table({"Field set", "Unique values", "LUT slots", "LUT Kbits",
                      "Cuckoo slots", "Cuckoo Kbits", "Saving %",
                      "Relocations"});

  const auto run = [&](const std::string& name, unsigned key_bits,
                       const std::vector<U128>& values) {
    ExactMatchLut lut(key_bits);
    CuckooLut cuckoo(key_bits);
    for (const auto& value : values) {
      (void)lut.insert(value);
      (void)cuckoo.insert(value);
    }
    const double lut_kb = mem::to_kbits(lut.storage_bits());
    const double cuckoo_kb = mem::to_kbits(cuckoo.storage_bits());
    table.add(name, values.size(), lut.slot_count(), lut_kb,
              cuckoo.slot_count(), cuckoo_kb,
              100.0 * (1.0 - cuckoo_kb / lut_kb), cuckoo.relocations());
  };

  for (const char* router : {"bbrb", "gozb", "coza"}) {
    {
      const auto set = workload::generate_mac_filterset(
          workload::mac_target(router));
      std::vector<U128> vlans;
      for (const auto& entry : set.entries) {
        const auto& fm = entry.match.get(FieldId::kVlanId);
        if (std::find(vlans.begin(), vlans.end(), fm.value) == vlans.end()) {
          vlans.push_back(fm.value);
        }
      }
      run(std::string("VLANs ") + router, 13, vlans);
    }
    {
      const auto set = workload::generate_routing_filterset(
          workload::routing_target(router));
      std::vector<U128> ports;
      for (const auto& entry : set.entries) {
        const auto& fm = entry.match.get(FieldId::kInPort);
        if (std::find(ports.begin(), ports.end(), fm.value) == ports.end()) {
          ports.push_back(fm.value);
        }
      }
      run(std::string("Ports ") + router, 32, ports);
    }
  }
  // A large synthetic set, where density differences actually matter.
  {
    std::vector<U128> macs;
    workload::Rng rng = workload::Rng(123);
    for (int i = 0; i < 20000; ++i) {
      macs.emplace_back(rng.next() & 0xFFFFFFFFFFFFULL);
    }
    run("20k exact MACs", 48, macs);
  }
  table.print(std::cout);
  std::cout << "\nAt Table III scale (tens to ~209 unique EM values) both "
               "structures are noise next to the MBTs; the cuckoo variant "
               "only pays off for large exact-match tables.\n";
  return 0;
}
