// Fig. 3 reproduction: memory space (Kbits) required for each level of the
// Ethernet *lower* trie, per MAC filter. Node layout = child pointer + label
// + flag bit, pointer width per level sized by the as-built next-level block
// count; label width sized by the filter's unique lower-partition values.
#include <iostream>

#include "bench_common.hpp"
#include "mem/memory_model.hpp"
#include "workload/calibration.hpp"

int main() {
  using namespace ofmtl;

  bench::print_heading(
      "Fig. 3 - Memory space per level of the Ethernet Lower trie (Kbits)");

  stats::Table table({"Flow Filter", "L1 nodes", "L1 Kb", "L2 nodes", "L2 Kb",
                      "L3 nodes", "L3 Kb", "Total Kb"});
  double worst_total = 0;
  std::string worst_name;
  for (const auto& target : workload::kMacTargets) {
    const auto set = workload::generate_mac_filterset(target);
    const auto search = bench::build_field_search(set, FieldId::kEthDst);
    const auto& lower = search.tries().back();
    const unsigned label_bits =
        lower.prefix_count() <= 1 ? 1 : ceil_log2(lower.prefix_count());

    std::vector<std::string> row{std::string(target.name)};
    double total_kb = 0;
    for (std::size_t level = 0; level < lower.level_count(); ++level) {
      const auto nodes = lower.stored_nodes(level, TrieStorage::kSparse);
      const double kbits = mem::to_kbits(
          lower.level_bits(level, TrieStorage::kSparse, label_bits));
      total_kb += kbits;
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.2f", kbits);
      row.push_back(std::to_string(nodes));
      row.emplace_back(buffer);
    }
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.2f", total_kb);
    row.emplace_back(buffer);
    table.row(std::move(row));
    if (total_kb > worst_total) {
      worst_total = total_kb;
      worst_name = std::string(target.name);
    }
  }
  table.print(std::cout);
  std::cout << "\nL1 stays tiny (<= 32 nodes, stride 5 - paper: max 32 nodes, "
               "832 bits); worst case "
            << worst_name << " needs " << worst_total
            << " Kbits for its three levels (paper: gozb, 983.7 Kbits for the "
               "full Ethernet trie set).\n";
  return 0;
}
