// Index-calculation ablation: the progressive label combination (Fig. 1's
// index calculation) pairs algorithm outputs in some order; the order
// changes how many intermediate (pair -> label) entries materialize. This
// bench simulates the pair tables for a left-to-right chain versus a
// balanced tree over the rule signatures of the 5-field ACL and the two
// paper applications, reporting entries and Kbits per strategy.
#include <algorithm>
#include <iostream>
#include <unordered_map>
#include <unordered_set>

#include "bench_common.hpp"
#include "core/lookup_table.hpp"
#include "mem/memory_model.hpp"
#include "workload/acl_synth.hpp"
#include "workload/calibration.hpp"

namespace {

using namespace ofmtl;

/// Signature matrix: one row per rule, one column per algorithm.
std::vector<std::vector<Label>> signatures_of(const FilterSet& set) {
  std::vector<FieldSearch> searches;
  for (const auto id : set.fields) searches.emplace_back(id);
  std::vector<std::vector<Label>> rows;
  rows.reserve(set.entries.size());
  for (const auto& entry : set.entries) {
    std::vector<Label> row;
    for (std::size_t f = 0; f < searches.size(); ++f) {
      const auto labels = searches[f].add_rule(entry.match.get(set.fields[f]));
      row.insert(row.end(), labels.begin(), labels.end());
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

struct PlanCost {
  std::size_t pair_entries = 0;
  std::uint64_t bits = 0;
};

/// Combine two label columns into one, counting the distinct pairs (the pair
/// table the hardware stores).
std::vector<Label> combine(const std::vector<Label>& a,
                           const std::vector<Label>& b, PlanCost& cost) {
  std::unordered_map<std::uint64_t, Label> pairs;
  std::vector<Label> out(a.size());
  Label next = 0;
  std::size_t max_in = 1;
  for (std::size_t r = 0; r < a.size(); ++r) {
    const std::uint64_t key = (std::uint64_t{a[r]} << 32) | b[r];
    const auto [it, inserted] = pairs.try_emplace(key, next);
    if (inserted) ++next;
    out[r] = it->second;
    max_in = std::max<std::size_t>({max_in, a[r] + 1UL, b[r] + 1UL});
  }
  cost.pair_entries += pairs.size();
  const unsigned entry_bits =
      2 * bits_for_max_value(max_in) + bits_for_max_value(next);
  cost.bits += pairs.size() * static_cast<std::uint64_t>(entry_bits);
  return out;
}

PlanCost chain_cost(const std::vector<std::vector<Label>>& rows) {
  PlanCost cost;
  if (rows.empty()) return cost;
  const std::size_t algorithms = rows[0].size();
  std::vector<Label> accumulated(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) accumulated[r] = rows[r][0];
  for (std::size_t alg = 1; alg < algorithms; ++alg) {
    std::vector<Label> column(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) column[r] = rows[r][alg];
    accumulated = combine(accumulated, column, cost);
  }
  return cost;
}

PlanCost tree_cost(const std::vector<std::vector<Label>>& rows) {
  PlanCost cost;
  if (rows.empty()) return cost;
  std::vector<std::vector<Label>> columns(rows[0].size(),
                                          std::vector<Label>(rows.size()));
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[0].size(); ++c) columns[c][r] = rows[r][c];
  }
  while (columns.size() > 1) {
    std::vector<std::vector<Label>> next;
    for (std::size_t i = 0; i + 1 < columns.size(); i += 2) {
      next.push_back(combine(columns[i], columns[i + 1], cost));
    }
    if (columns.size() % 2 == 1) next.push_back(std::move(columns.back()));
    columns = std::move(next);
  }
  return cost;
}

void run(const FilterSet& set, const std::string& name, stats::Table& table) {
  const auto rows = signatures_of(set);
  const auto chain = chain_cost(rows);
  const auto tree = tree_cost(rows);
  table.add(name, set.entries.size(), rows.empty() ? 0 : rows[0].size(),
            chain.pair_entries, mem::to_kbits(chain.bits), tree.pair_entries,
            mem::to_kbits(tree.bits),
            100.0 * (1.0 - static_cast<double>(tree.bits) /
                               static_cast<double>(std::max<std::uint64_t>(
                                   chain.bits, 1))));
}

}  // namespace

int main() {
  bench::print_heading(
      "Index-calculation ablation - chain vs balanced-tree label pairing");
  stats::Table table({"Workload", "Rules", "Algorithms", "Chain pairs",
                      "Chain Kbits", "Tree pairs", "Tree Kbits",
                      "Tree saving %"});

  workload::AclConfig acl_config;
  acl_config.rules = 2000;
  run(workload::generate_acl(acl_config), "ACL 5-field (7 algorithms)", table);

  run(workload::generate_mac_filterset(workload::mac_target("gozb")),
      "MAC gozb (4 algorithms)", table);
  run(workload::generate_routing_filterset(workload::routing_target("yoza")),
      "Routing yoza (3 algorithms)", table);

  table.print(std::cout);
  std::cout
      << "\nFor a hardware pipeline the chain adds one stage per algorithm "
         "(deep but narrow); the tree halves the depth and usually the "
         "intermediate-label growth too. The paper's two-field tables have "
         "too few algorithms for the order to matter - it starts to at "
         "ACL-like field counts.\n";
  return 0;
}
