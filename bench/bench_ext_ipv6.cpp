// Extension experiment (beyond the paper's IPv4/Ethernet evaluation):
// memory scaling of the partitioned-MBT design on 128-bit IPv6 routing —
// eight 16-bit tries per address field. Reports per-partition node counts
// and Kbits across table sizes, against the IPv4 equivalent, quantifying
// the cost of the wider field under the same architecture.
#include <iostream>

#include "bench_common.hpp"
#include "mem/memory_model.hpp"
#include "workload/ipv6_synth.hpp"
#include "workload/stanford_synth.hpp"

namespace {

using namespace ofmtl;

void sweep() {
  bench::print_heading(
      "Extension - IPv6 routing: 8 partition tries per address (sparse)");
  stats::Table table({"Routes", "p0..p3 nodes (net /64)", "p4..p7 nodes (host)",
                      "Total nodes", "Total Kbits", "Kbits per route"});
  for (const std::size_t routes : {500UL, 2000UL, 8000UL, 32000UL}) {
    workload::Ipv6RoutingConfig config;
    config.routes = routes;
    const auto set = workload::generate_ipv6_routing(config);
    const auto search = bench::build_field_search(set, FieldId::kIpv6Dst);

    std::size_t network_nodes = 0, host_nodes = 0;
    std::uint64_t bits = 0;
    const auto& tries = search.tries();
    for (std::size_t p = 0; p < tries.size(); ++p) {
      const auto nodes = tries[p].stored_nodes(TrieStorage::kSparse);
      (p < 4 ? network_nodes : host_nodes) += nodes;
      const unsigned label_bits = tries[p].prefix_count() <= 1
                                      ? 1
                                      : ceil_log2(tries[p].prefix_count());
      bits += tries[p].total_bits(TrieStorage::kSparse, label_bits);
    }
    table.add(routes, network_nodes, host_nodes, network_nodes + host_nodes,
              mem::to_kbits(bits),
              mem::to_kbits(bits) / static_cast<double>(routes));
  }
  table.print(std::cout);
}

void compare_v4() {
  bench::print_heading("IPv6 vs IPv4 trie memory at comparable route counts");
  stats::Table table({"Workload", "Routes", "Tries", "Nodes (sparse)",
                      "Kbits (sparse)"});
  {
    const auto set =
        workload::generate_routing_filterset(workload::routing_target("yoza"));
    const auto search = bench::build_field_search(set, FieldId::kIpv4Dst);
    std::size_t nodes = 0;
    std::uint64_t bits = 0;
    for (const auto& trie : search.tries()) {
      nodes += trie.stored_nodes(TrieStorage::kSparse);
      const unsigned label_bits =
          trie.prefix_count() <= 1 ? 1 : ceil_log2(trie.prefix_count());
      bits += trie.total_bits(TrieStorage::kSparse, label_bits);
    }
    table.add("IPv4 yoza", set.entries.size(), search.tries().size(), nodes,
              mem::to_kbits(bits));
  }
  {
    workload::Ipv6RoutingConfig config;
    config.routes = 4746;  // yoza's route count
    const auto set = workload::generate_ipv6_routing(config);
    const auto search = bench::build_field_search(set, FieldId::kIpv6Dst);
    std::size_t nodes = 0;
    std::uint64_t bits = 0;
    for (const auto& trie : search.tries()) {
      nodes += trie.stored_nodes(TrieStorage::kSparse);
      const unsigned label_bits =
          trie.prefix_count() <= 1 ? 1 : ceil_log2(trie.prefix_count());
      bits += trie.total_bits(TrieStorage::kSparse, label_bits);
    }
    table.add("IPv6 synthetic", set.entries.size(), search.tries().size(),
              nodes, mem::to_kbits(bits));
  }
  table.print(std::cout);
  std::cout << "\nThe 4x wider field costs well under 4x the memory: routes "
               "cluster in allocations, so the upper partitions stay highly "
               "shared — the same unique-value effect Tables III/IV show for "
               "MAC OUIs and IPv4 networks.\n";
}

}  // namespace

int main() {
  sweep();
  compare_v4();
  return 0;
}
