// Stride ablation: the paper adopts 3-level tries per 16-bit partition,
// citing their ICC'14 study that 3 levels balance lookup speed and memory.
// This bench sweeps level counts / stride vectors on the worst-case filters
// and reports stored nodes, Kbits (both storage policies) and pipeline
// depth (= levels = lookup stages).
#include <iostream>

#include "bench_common.hpp"
#include "mem/memory_model.hpp"
#include "workload/calibration.hpp"

namespace {

using namespace ofmtl;

struct StrideChoice {
  const char* name;
  std::vector<unsigned> strides;
};

const StrideChoice kChoices[] = {
    {"1-level 16", {16}},
    {"2-level 8/8", {8, 8}},
    {"3-level 5/5/6 (paper)", {5, 5, 6}},
    {"3-level 6/5/5", {6, 5, 5}},
    {"4-level 4/4/4/4", {4, 4, 4, 4}},
    {"8-level 2x8", {2, 2, 2, 2, 2, 2, 2, 2}},
};

void sweep(const FilterSet& set, FieldId field, const std::string& title) {
  bench::print_heading(title);
  stats::Table table({"Strides", "Levels (pipeline stages)", "Nodes (sparse)",
                      "Kbits (sparse)", "Nodes (array)", "Kbits (array)",
                      "Build ms"});
  for (const auto& choice : kChoices) {
    FieldSearchConfig config;
    config.strides = choice.strides;
    double build_ms = 0;
    FieldSearch search(field, config);
    build_ms = bench::time_ms([&] {
      for (const auto& entry : set.entries) {
        (void)search.add_rule(entry.match.get(field));
      }
    });
    std::size_t nodes_sparse = 0, nodes_array = 0;
    std::uint64_t bits_sparse = 0, bits_array = 0;
    for (const auto& trie : search.tries()) {
      const unsigned label_bits =
          trie.prefix_count() <= 1 ? 1 : ceil_log2(trie.prefix_count());
      nodes_sparse += trie.stored_nodes(TrieStorage::kSparse);
      nodes_array += trie.stored_nodes(TrieStorage::kArrayBlock);
      bits_sparse += trie.total_bits(TrieStorage::kSparse, label_bits);
      bits_array += trie.total_bits(TrieStorage::kArrayBlock, label_bits);
    }
    table.add(choice.name, choice.strides.size(), nodes_sparse,
              mem::to_kbits(bits_sparse), nodes_array,
              mem::to_kbits(bits_array), build_ms);
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  const auto mac =
      workload::generate_mac_filterset(workload::mac_target("gozb"));
  sweep(mac, FieldId::kEthDst,
        "Stride ablation - Ethernet tries, MAC gozb (worst case)");

  const auto routing =
      workload::generate_routing_filterset(workload::routing_target("coza"));
  sweep(routing, FieldId::kIpv4Dst,
        "Stride ablation - IPv4 tries, Routing coza (anomaly case)");

  std::cout
      << "\nTrade-off, as in the authors' ICC'14 stride study: fewer levels "
         "= fewer pipeline stages but block-array memory explodes "
         "(1-level = a 2^16 direct table per partition); more levels = "
         "smaller arrays but longer pipelines and more pointer overhead. "
         "3 levels is the knee.\n";
  return 0;
}
