// Trace-replay benchmark: the bytes-on-disk → classified-actions path end
// to end, per stage. For each app (trie-heavy routing, EM-heavy MAC
// learning) a Zipf-skewed stream over a 4096-flow pool is exported to an
// in-memory pcap capture, and three numbers are measured:
//   - parse_only: the batched allocation-free wire parse alone (ns/frame),
//     plus its throughput in Mfps (parse_mpps/*, floor-gated in CI: even a
//     slow shared runner parses well above 0.5 M frames/s, so a floor
//     catches order-of-magnitude parse regressions machine-independently);
//   - replay cache_off / cache_on: TraceReplayer into a 1-worker
//     ParallelRuntime (ns/packet, hardware-sensitive, baseline-gated on
//     matching hardware like the other benches);
//   - hitrate/*: the replayed stream's flow-cache hit rate in percent —
//     a property of the stream and the cache geometry, not the machine,
//     so CI floor-gates it everywhere (>= 90%).
//   - tail (*_p50/p99/p999_ns): per-packet latency quantiles of the
//     cache-on replay, derived from per-batch trace-ring records through
//     obs::LogHistogram (batch duration / batch packet count). Absolute
//     values are hardware-sensitive (baseline-gated on matching hardware);
//     the p99/p50 ratio is additionally ceiling-gated in CI as a
//     machine-independent tail-blowup detector.
// Writes BENCH_replay.json next to the binary.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/builder.hpp"
#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/tracer.hpp"
#include "runtime/runtime.hpp"
#include "trace/pcap.hpp"
#include "trace/replay.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_export.hpp"
#include "workload/trace_gen.hpp"
#include "workload/zipf.hpp"

namespace {

using namespace ofmtl;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kFlows = 4096;
constexpr std::size_t kStreamPackets = 1 << 15;
constexpr double kZipfS = 1.1;
constexpr std::size_t kCacheCapacity = 8192;
constexpr std::size_t kBatch = 256;
constexpr auto kParseMeasure = std::chrono::milliseconds(300);
constexpr auto kReplayTarget = std::chrono::milliseconds(400);

struct App {
  std::string tag;
  FilterSet set;
  MultiTableLookup tables;
};

App make_app(workload::FilterApp app, const char* name) {
  auto set = workload::generate_filterset(app, name);
  auto tables = compile_app(build_app(set, TableLayout::kPerFieldTables));
  return App{std::string(to_string(app)) + "_" + name, std::move(set),
             std::move(tables)};
}

std::vector<PacketHeader> make_stream(const App& app) {
  const auto pool = workload::generate_trace(
      app.set, {.packets = kFlows, .hit_ratio = 0.9, .seed = 123});
  workload::ZipfSampler sampler(pool.size(), kZipfS, /*seed=*/99);
  std::vector<PacketHeader> stream;
  stream.reserve(kStreamPackets);
  for (std::size_t i = 0; i < kStreamPackets; ++i) {
    stream.push_back(pool[sampler.next()]);
  }
  return stream;
}

/// ns/frame of the batched wire parse over the capture, repeated for the
/// measure window (warmed scratch, lane windows of kBatch).
double measure_parse(const std::vector<trace::PcapRecord>& records,
                     std::uint32_t in_port) {
  std::vector<trace::WireFrame> frames;
  frames.reserve(records.size());
  for (const auto& record : records) {
    frames.emplace_back(record.bytes, record.orig_len);
  }
  std::vector<PacketHeader> out(kBatch);
  trace::ParseContext ctx;

  const auto run_pass = [&] {
    std::size_t valid = 0;
    for (std::size_t base = 0; base < frames.size(); base += kBatch) {
      const std::size_t n = std::min(kBatch, frames.size() - base);
      valid += trace::parse_batch({frames.data() + base, n}, in_port,
                                  {out.data(), n}, ctx);
    }
    return valid;
  };
  (void)run_pass();  // warm scratch and caches

  std::uint64_t parsed = 0;
  const auto start = Clock::now();
  const auto end = start + kParseMeasure;
  auto now = start;
  while (now < end) {
    parsed += run_pass();
    now = Clock::now();
  }
  const double ns = std::chrono::duration<double, std::nano>(now - start).count();
  return parsed > 0 ? ns / static_cast<double>(parsed) : 0.0;
}

/// ns/packet of a full replay (loops sized to the target window); the
/// cache hit rate over the measured run lands in `hit_rate` percent.
double measure_replay(const App& app, trace::TraceReplayer& replayer,
                      std::size_t cache_capacity, double& hit_rate) {
  std::vector<ExecutionResult> results(replayer.headers().size());
  trace::ReplayConfig config{.batch = kBatch, .in_flight = 4};

  const auto run_with = [&](std::size_t loops) {
    runtime::ParallelRuntime rt(app.tables.clone(),
                                {.workers = 1,
                                 .queue_capacity = 2 * config.in_flight,
                                 .flow_cache_capacity = cache_capacity});
    config.loops = loops;
    const auto stats = replayer.run(rt, results, config);
    const auto worker_stats = rt.aggregate_stats();
    const auto probes = worker_stats.cache_hits + worker_stats.cache_misses;
    hit_rate = probes > 0 ? 100.0 *
                                static_cast<double>(worker_stats.cache_hits) /
                                static_cast<double>(probes)
                          : 0.0;
    return stats;
  };

  const auto calibration = run_with(2);
  const double per_loop_ns =
      calibration.elapsed_ns / 2.0 > 0 ? calibration.elapsed_ns / 2.0 : 1.0;
  const auto target_ns =
      std::chrono::duration<double, std::nano>(kReplayTarget).count();
  const std::size_t loops = std::clamp<std::size_t>(
      static_cast<std::size_t>(target_ns / per_loop_ns), 4, 512);
  return run_with(loops).ns_per_packet();
}

/// Per-packet latency distribution of a cache-on replay, from the trace
/// rings: each kBatch* slice contributes duration / packet-count samples.
/// 16 loops x (32768/256) batches = 2048 samples — enough for a one-bucket
/// p99.9 estimate.
obs::LogHistogram measure_tail(const App& app, trace::TraceReplayer& replayer,
                               std::size_t cache_capacity) {
  std::vector<ExecutionResult> results(replayer.headers().size());
  trace::ReplayConfig config{.batch = kBatch, .in_flight = 4, .loops = 16};
  obs::start_tracing();
  {
    runtime::ParallelRuntime rt(app.tables.clone(),
                                {.workers = 1,
                                 .queue_capacity = 2 * config.in_flight,
                                 .flow_cache_capacity = cache_capacity});
    (void)replayer.run(rt, results, config);
  }
  obs::stop_tracing();
  const auto dump = obs::collect_tracing();
  return obs::slice_latency_histogram(dump, obs::TraceEvent::kBatchBegin,
                                      obs::TraceEvent::kBatchEnd,
                                      /*per_payload_unit=*/true);
}

}  // namespace

int main() {
  std::vector<std::pair<std::string, double>> results;

  const std::vector<std::pair<workload::FilterApp, const char*>> app_specs = {
      {workload::FilterApp::kRouting, "yoza"},
      {workload::FilterApp::kMacLearning, "gozb"},
  };
  for (const auto& [filter_app, name] : app_specs) {
    const App app = make_app(filter_app, name);
    const std::uint32_t in_port = workload::capture_in_port(app.set);
    const auto stream = make_stream(app);
    const auto writer = workload::export_trace(stream);
    trace::PcapReader reader(std::span<const std::uint8_t>(writer.buffer()));
    const auto records = reader.read_all();

    const double parse_ns = measure_parse(records, in_port);
    reader.rewind();
    trace::TraceReplayer replayer(reader, in_port);
    if (replayer.malformed_frames() != 0) {
      std::cerr << "error: exporter produced " << replayer.malformed_frames()
                << " malformed frames — bench invalid\n";
      return 1;
    }
    double hit_off = 0.0, hit_on = 0.0;
    const double off_ns = measure_replay(app, replayer, 0, hit_off);
    const double on_ns = measure_replay(app, replayer, kCacheCapacity, hit_on);

    const std::string base = "replay/" + app.tag;
    results.emplace_back(base + "/parse_only", parse_ns);
    results.emplace_back(base + "/zipf_s1.1_f4096/cache_off", off_ns);
    results.emplace_back(base + "/zipf_s1.1_f4096/cache_on", on_ns);
    results.emplace_back("hitrate/" + app.tag + "/replay_zipf_s1.1", hit_on);
    results.emplace_back("parse_mpps/" + app.tag,
                         parse_ns > 0 ? 1e3 / parse_ns : 0.0);
    std::cout << base << ": parse " << parse_ns << " ns/frame ("
              << (parse_ns > 0 ? 1e3 / parse_ns : 0.0) << " Mfps), replay off "
              << off_ns << " ns/pkt, on " << on_ns << " ns/pkt ("
              << (on_ns > 0 ? off_ns / on_ns : 0.0) << "x, hit rate " << hit_on
              << "%)\n";

    if (obs::kInstrumentationCompiled) {
      const auto tail = measure_tail(app, replayer, kCacheCapacity);
      const std::string tail_base = base + "/zipf_s1.1_f4096/cache_on";
      results.emplace_back(tail_base + "_p50_ns",
                           static_cast<double>(tail.quantile(0.50)));
      results.emplace_back(tail_base + "_p99_ns",
                           static_cast<double>(tail.quantile(0.99)));
      results.emplace_back(tail_base + "_p999_ns",
                           static_cast<double>(tail.quantile(0.999)));
      std::cout << "  tail (per packet, n=" << tail.total()
                << " batches): p50 " << tail.quantile(0.50) << " ns, p99 "
                << tail.quantile(0.99) << " ns, p99.9 "
                << tail.quantile(0.999) << " ns\n";
    }
  }

  auto metadata = ofmtl::bench::common_metadata();
  metadata.emplace_back("batch_size", std::to_string(kBatch));
  metadata.emplace_back("stream_packets", std::to_string(kStreamPackets));
  metadata.emplace_back("flows", std::to_string(kFlows));
  metadata.emplace_back("cache_capacity", std::to_string(kCacheCapacity));
  ofmtl::bench::write_bench_json("replay", "ns_per_packet", results, metadata);
  return 0;
}
