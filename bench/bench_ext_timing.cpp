// Extension experiment: hardware pipeline timing of the architecture — stage
// breakdown per lookup table, end-to-end latency, and the line rates the
// design sustains at one lookup per clock (the paper's 40-100 Gbps
// motivation), across the two applications and stride configurations.
#include <iostream>

#include "bench_common.hpp"
#include "core/builder.hpp"
#include "core/timing.hpp"
#include "workload/calibration.hpp"

int main() {
  using namespace ofmtl;
  const TimingModel timing;

  bench::print_heading("Pipeline stages and latency (strides 5/5/6)");
  {
    stats::Table table({"App/Router", "Table", "Field stages", "Index stages",
                        "Total stages"});
    for (const auto app :
         {workload::FilterApp::kMacLearning, workload::FilterApp::kRouting}) {
      const auto set = workload::generate_filterset(app, "gozb");
      const auto spec = build_app(set, TableLayout::kPerFieldTables);
      const auto pipeline = compile_app(spec);
      for (std::size_t t = 0; t < pipeline.table_count(); ++t) {
        const auto stages = timing.table_stages(pipeline.table(t));
        table.add(std::string(to_string(app)) + "/gozb", t,
                  stages.field_stages, stages.index_stages, stages.total());
      }
      std::cout << "";
    }
    table.print(std::cout);
  }

  bench::print_heading("Latency vs stride configuration (routing gozb)");
  {
    stats::Table table({"Strides", "Pipeline latency (cycles)",
                        "Latency @200MHz (ns)"});
    const auto set = workload::generate_filterset(
        workload::FilterApp::kRouting, "gozb");
    const auto spec = build_app(set, TableLayout::kPerFieldTables);
    const struct {
      const char* name;
      std::vector<unsigned> strides;
    } configs[] = {
        {"1-level 16", {16}},
        {"2-level 8/8", {8, 8}},
        {"3-level 5/5/6 (paper)", {5, 5, 6}},
        {"4-level 4x4", {4, 4, 4, 4}},
        {"8-level 2x8", {2, 2, 2, 2, 2, 2, 2, 2}},
    };
    for (const auto& config : configs) {
      FieldSearchConfig fsc;
      fsc.strides = config.strides;
      const auto pipeline = compile_app(spec, fsc);
      const auto cycles = timing.pipeline_latency(pipeline);
      table.add(config.name, cycles,
                static_cast<double>(cycles) / timing.clock_mhz * 1000.0);
    }
    table.print(std::cout);
  }

  bench::print_heading("Line rate at one lookup per clock (II=1)");
  {
    stats::Table table({"Packet size (B)", "Line rate (Gbps)", ">= 40G", ">= 100G"});
    for (const unsigned bytes : {64U, 128U, 256U, 512U, 1500U}) {
      const double gbps = timing.line_rate_gbps(bytes);
      table.add(bytes, gbps, gbps >= 40.0 ? "yes" : "no",
                gbps >= 100.0 ? "yes" : "no");
    }
    table.print(std::cout);
    std::cout << "\nAt 200 MHz the pipelined design keeps 64-byte line rate "
                 "above 100 Gbps ("
              << timing.line_rate_gbps(64)
              << " Gbps) - the paper's next-generation-network target. "
                 "Latency varies with trie depth but throughput does not: "
                 "every structure is a pipeline stage.\n";
  }
  return 0;
}
