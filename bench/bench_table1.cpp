// Table I, quantified: the paper's qualitative comparison of the four
// multi-dimensional lookup categories, measured on synthetic ACL rule sets.
// For each algorithm: build time (update-complexity proxy), memory, average
// memory accesses per lookup (lookup-speed proxy) and software ns/lookup.
// The TCAM row also reports cells activated per search (its power cost).
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "classifier/tcam.hpp"
#include "core/lookup_table.hpp"
#include "flow/flow_table.hpp"
#include "mdclassifier/hicuts.hpp"
#include "mdclassifier/hypersplit.hpp"
#include "mdclassifier/linear.hpp"
#include "mdclassifier/rfc.hpp"
#include "mdclassifier/tuple_space.hpp"
#include "mem/memory_model.hpp"
#include "workload/acl_synth.hpp"
#include "workload/trace_gen.hpp"

namespace {

using namespace ofmtl;

struct Row {
  std::string category;
  std::string algorithm;
  double build_ms = 0;
  double memory_kbits = 0;
  double avg_accesses = 0;
  double ns_per_lookup = 0;
  std::string note;
};

template <typename MakeFn, typename ClassifyFn>
Row measure(const std::string& category, const std::string& algorithm,
            const std::vector<PacketHeader>& trace, MakeFn&& make,
            ClassifyFn&& classify_and_count) {
  Row row;
  row.category = category;
  row.algorithm = algorithm;
  row.build_ms = bench::time_ms([&] { make(); });
  std::size_t total_accesses = 0;
  row.ns_per_lookup = bench::time_per_call_ns(trace.size(), [&](std::size_t i) {
    total_accesses += classify_and_count(trace[i]);
  });
  row.avg_accesses =
      static_cast<double>(total_accesses) / static_cast<double>(trace.size());
  return row;
}

void run(std::size_t rules) {
  workload::AclConfig config;
  config.rules = rules;
  config.seed = 1000 + rules;
  const auto set = workload::generate_acl(config);
  const auto trace = workload::generate_trace(
      set, {.packets = 4000, .hit_ratio = 0.85, .seed = rules});
  const auto rule_set = md::RuleSet::from(set);

  bench::print_heading("Table I (quantified) - ACL with " +
                       std::to_string(rules) + " rules, 4000-packet trace");

  std::vector<Row> rows;

  {
    std::unique_ptr<md::LinearClassifier> c;
    rows.push_back(measure(
        "(reference)", "linear", trace,
        [&] { c = std::make_unique<md::LinearClassifier>(rule_set); },
        [&](const PacketHeader& h) {
          (void)c->classify(h);
          return c->last_access_count();
        }));
    rows.back().memory_kbits = mem::to_kbits(c->memory_report().total_bits());
    rows.back().note = "O(N) search";
  }
  {
    std::unique_ptr<md::HiCutsClassifier> c;
    rows.push_back(measure(
        "Trie-Geometric", "hicuts", trace,
        [&] { c = std::make_unique<md::HiCutsClassifier>(rule_set); },
        [&](const PacketHeader& h) {
          (void)c->classify(h);
          return c->last_access_count();
        }));
    rows.back().memory_kbits = mem::to_kbits(c->memory_report().total_bits());
    rows.back().note =
        "rule refs x" +
        std::to_string(c->replicated_rule_refs() / std::max<std::size_t>(1, rules)) +
        " (replication)";
  }
  {
    std::unique_ptr<md::HyperSplitClassifier> c;
    rows.push_back(measure(
        "Trie-Geometric", "hypersplit", trace,
        [&] { c = std::make_unique<md::HyperSplitClassifier>(rule_set); },
        [&](const PacketHeader& h) {
          (void)c->classify(h);
          return c->last_access_count();
        }));
    rows.back().memory_kbits = mem::to_kbits(c->memory_report().total_bits());
    rows.back().note = "efficient memory / complex update";
  }
  {
    std::unique_ptr<md::RfcClassifier> c;
    rows.push_back(measure(
        "Decomposition", "rfc", trace,
        [&] { c = std::make_unique<md::RfcClassifier>(rule_set); },
        [&](const PacketHeader& h) {
          (void)c->classify(h);
          return c->last_access_count();
        }));
    rows.back().memory_kbits = mem::to_kbits(c->memory_report().total_bits());
    rows.back().note = "fast lookup / memory explosion";
  }
  {
    std::unique_ptr<md::TupleSpaceClassifier> c;
    rows.push_back(measure(
        "Hashing-based", "tss", trace,
        [&] { c = std::make_unique<md::TupleSpaceClassifier>(rule_set); },
        [&](const PacketHeader& h) {
          (void)c->classify(h);
          return c->last_access_count();
        }));
    rows.back().memory_kbits = mem::to_kbits(c->memory_report().total_bits());
    rows.back().note = std::to_string(c->tuple_count()) + " tuples probed";
  }
  {
    std::unique_ptr<TcamModel> c;
    rows.push_back(measure(
        "Hardware-based", "tcam", trace,
        [&] {
          c = std::make_unique<TcamModel>(set.fields);
          FlowTable sorted(set.entries);
          for (std::uint32_t i = 0; i < sorted.entries().size(); ++i) {
            c->add_rule(sorted.entries()[i].match, sorted.entries()[i].priority,
                        i);
          }
        },
        [&](const PacketHeader& h) {
          (void)c->lookup(h);
          return std::size_t{1};  // single parallel search
        }));
    rows.back().memory_kbits = mem::to_kbits(c->storage_bits());
    rows.back().note = std::to_string(c->cells_searched_per_lookup()) +
                       " cells active per search";
  }
  {
    std::unique_ptr<LookupTable> c;
    FlowTable sorted(set.entries);
    rows.push_back(measure(
        "Decomposition", "ofmtl (this work)", trace,
        [&] { c = std::make_unique<LookupTable>(LookupTable::compile(sorted)); },
        [&](const PacketHeader& h) {
          (void)c->lookup(h);
          // One probe per algorithm + index stages.
          return c->index().algorithm_count() * 2 - 1;
        }));
    rows.back().memory_kbits =
        mem::to_kbits(c->memory_report("t").total_bits());
    rows.back().note = "parallel field searches + labels";
  }

  stats::Table table({"Category", "Algorithm", "Build ms", "Memory Kbits",
                      "Avg accesses", "ns/lookup", "Note"});
  for (const auto& row : rows) {
    table.add(row.category, row.algorithm, row.build_ms, row.memory_kbits,
              row.avg_accesses, row.ns_per_lookup, row.note);
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  run(512);
  run(2048);
  std::cout << "\nReading the table against the paper's Table I:\n"
               "  Trie-Geometric : efficient memory, moderate lookup, complex"
               " update (rebuild)\n"
               "  Decomposition  : fast lookup, memory explosion on"
               " crossproducts\n"
               "  Hashing        : fast per-tuple, collision/expansion memory"
               " cost\n"
               "  Hardware (TCAM): single-cycle search but every cell burns"
               " power, 2 bits/cell storage\n";
  return 0;
}
