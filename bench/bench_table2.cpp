// Table II reproduction: the OpenFlow match fields, their widths and the
// matching method each requires — printed from the live field registry the
// whole library is built on.
#include <iostream>

#include "bench_common.hpp"
#include "net/fields.hpp"
#include "stats/report.hpp"

int main() {
  using namespace ofmtl;

  bench::print_heading(
      "Table II - OpenFlow match field, field length and matching method");

  stats::Table table({"Matching Field", "Number of Bits", "Matching Method"});
  for (const auto& info : field_registry()) {
    if (info.id == FieldId::kMetadata) continue;  // internal register
    table.add(info.name, info.bits, to_string(info.method));
  }
  table.print(std::cout);

  std::cout << "\nMetadata register: " << field_bits(FieldId::kMetadata)
            << " bits, passed between lookup tables during processing.\n";
  std::cout << "LPM fields decompose into 16-bit partition tries: Ethernet -> "
            << partition_count(48) << ", IPv4 -> " << partition_count(32)
            << ", IPv6 -> " << partition_count(128) << ".\n";
  return 0;
}
