// Fig. 2 reproduction: total stored multi-bit-trie nodes per filter.
//   (a) Ethernet address fields  — three 16-bit tries (hi/mid/lo), MAC sets
//   (b) IPv4 address fields      — two 16-bit tries (hi/lo), routing sets
// Reported under both storage policies: sparse (non-empty entries — the
// "stored nodes" series) and array-block (every allocated slot).
#include <iostream>

#include "bench_common.hpp"
#include "workload/calibration.hpp"

namespace {

using namespace ofmtl;

void ethernet_series() {
  bench::print_heading(
      "Fig. 2(a) - Total stored nodes, Ethernet address fields (MAC filters)");
  stats::Table table({"Flow Filter", "Hi trie", "Mid trie", "Lo trie",
                      "Total (sparse)", "Total (array-block)"});
  std::size_t worst_total = 0;
  std::string worst_name;
  for (const auto& target : workload::kMacTargets) {
    const auto set = workload::generate_mac_filterset(target);
    const auto search = bench::build_field_search(set, FieldId::kEthDst);
    const auto& tries = search.tries();
    const auto sparse = [&](std::size_t p) {
      return tries[p].stored_nodes(TrieStorage::kSparse);
    };
    std::size_t total_sparse = sparse(0) + sparse(1) + sparse(2);
    std::size_t total_array = 0;
    for (const auto& trie : tries) {
      total_array += trie.stored_nodes(TrieStorage::kArrayBlock);
    }
    if (total_sparse > worst_total) {
      worst_total = total_sparse;
      worst_name = std::string(target.name);
    }
    table.add(std::string(target.name), sparse(0), sparse(1), sparse(2),
              total_sparse, total_array);
  }
  table.print(std::cout);
  std::cout << "\nWorst case: " << worst_name << " stores " << worst_total
            << " nodes (paper: gozb, 54010 nodes on the real traces).\n";
}

void ipv4_series() {
  bench::print_heading(
      "Fig. 2(b) - Total stored nodes, IPv4 address fields (Routing filters)");
  stats::Table table({"Flow Filter", "Hi trie", "Lo trie", "Total (sparse)",
                      "Total (array-block)", "lo>hi"});
  for (const auto& target : workload::kRoutingTargets) {
    const auto set = workload::generate_routing_filterset(target);
    const auto search = bench::build_field_search(set, FieldId::kIpv4Dst);
    const auto& tries = search.tries();
    const auto hi = tries[0].stored_nodes(TrieStorage::kSparse);
    const auto lo = tries[1].stored_nodes(TrieStorage::kSparse);
    std::size_t total_array = 0;
    for (const auto& trie : tries) {
      total_array += trie.stored_nodes(TrieStorage::kArrayBlock);
    }
    table.add(std::string(target.name), hi, lo, hi + lo, total_array,
              lo >= hi ? std::string("yes") : std::string("NO (anomaly)"));
  }
  table.print(std::cout);
  std::cout << "\nLower tries dominate except coza/cozb/soza/sozb, whose "
               "higher tries invert (cf. Table IV); IP tries stay below the "
               "Ethernet worst case because routing prefixes share networks "
               "while MAC filters are all-exact (paper Section V.A).\n";
}

}  // namespace

int main() {
  ethernet_series();
  ipv4_series();
  return 0;
}
