// Fig. 4 reproduction:
//   (a) memory space per level of the IP-address *lower* trie, per routing
//       filter (the normal-profile series);
//   (b) higher AND lower tries for the coza/cozb/soza/sozb anomaly filters,
//       whose higher tries need more space (L2/L3) than the lower ones.
#include <iostream>

#include "bench_common.hpp"
#include "core/multibit_trie.hpp"
#include "mem/memory_model.hpp"
#include "workload/calibration.hpp"

namespace {

using namespace ofmtl;

struct LevelRow {
  std::vector<std::size_t> nodes;
  std::vector<double> kbits;
  double total_kb = 0;
};

LevelRow measure(const MultibitTrie& trie) {
  LevelRow row;
  const unsigned label_bits =
      trie.prefix_count() <= 1 ? 1 : ceil_log2(trie.prefix_count());
  for (std::size_t level = 0; level < trie.level_count(); ++level) {
    row.nodes.push_back(trie.stored_nodes(level, TrieStorage::kSparse));
    row.kbits.push_back(
        mem::to_kbits(trie.level_bits(level, TrieStorage::kSparse, label_bits)));
    row.total_kb += row.kbits.back();
  }
  return row;
}

std::string fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.2f", value);
  return buffer;
}

bool is_anomaly(std::string_view name) {
  return name == "coza" || name == "cozb" || name == "soza" || name == "sozb";
}

}  // namespace

int main() {
  bench::print_heading(
      "Fig. 4(a) - Memory space per level of the IP address Lower trie (Kbits)");
  {
    stats::Table table({"Flow Filter", "L1 Kb", "L2 Kb", "L3 Kb", "Total Kb"});
    double worst = 0;
    std::string worst_name;
    for (const auto& target : workload::kRoutingTargets) {
      if (is_anomaly(target.name)) continue;  // shown in (b)
      const auto set = workload::generate_routing_filterset(target);
      const auto search = bench::build_field_search(set, FieldId::kIpv4Dst);
      const auto row = measure(search.tries()[1]);
      table.add(std::string(target.name), fmt(row.kbits[0]), fmt(row.kbits[1]),
                fmt(row.kbits[2]), fmt(row.total_kb));
      if (row.total_kb > worst) {
        worst = row.total_kb;
        worst_name = std::string(target.name);
      }
    }
    table.print(std::cout);
    std::cout << "\nNormal-profile worst case: " << worst_name << " at "
              << fmt(worst) << " Kbits (paper: 321.3 Kbits band for non-anomaly "
              << "lower tries).\n";
  }

  bench::print_heading(
      "Fig. 4(b) - Higher AND Lower tries for coza/cozb/soza/sozb (Kbits)");
  {
    stats::Table table({"Flow Filter", "Trie", "L1 Kb", "L2 Kb", "L3 Kb",
                        "Total Kb"});
    for (const auto& target : workload::kRoutingTargets) {
      if (!is_anomaly(target.name)) continue;
      const auto set = workload::generate_routing_filterset(target);
      const auto search = bench::build_field_search(set, FieldId::kIpv4Dst);
      const auto hi = measure(search.tries()[0]);
      const auto lo = measure(search.tries()[1]);
      table.add(std::string(target.name), "higher", fmt(hi.kbits[0]),
                fmt(hi.kbits[1]), fmt(hi.kbits[2]), fmt(hi.total_kb));
      table.add(std::string(target.name), "lower", fmt(lo.kbits[0]),
                fmt(lo.kbits[1]), fmt(lo.kbits[2]), fmt(lo.total_kb));
    }
    table.print(std::cout);
    std::cout << "\nFor these filters the higher trie consumes more memory in "
                 "L2/L3 than the lower trie (paper: 706.06 vs 572.57 Kbits "
                 "worst case) - the label method prevents the memory "
                 "explosion per-value storage would cause.\n";
  }
  return 0;
}
