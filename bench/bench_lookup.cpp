// Lookup-throughput benchmark (google-benchmark): the decomposed multi-table
// pipeline against the single-table linear baseline and the TCAM model, on
// the paper's two applications. Not a paper artifact per se — the paper
// reports FPGA clock-rate lookups — but the software analogue of its
// "classification performance" motivation, and the regression guard for the
// library's hot path.
#include <benchmark/benchmark.h>

#include "classifier/tcam.hpp"
#include "core/builder.hpp"
#include "flow/flow_table.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace {

using namespace ofmtl;

struct Fixture {
  FilterSet set;
  AppSpec single;
  AppSpec split;
  MultiTableLookup accelerated;
  std::vector<PacketHeader> trace;

  static const Fixture& get(workload::FilterApp app, const char* name) {
    static std::map<std::string, Fixture> cache;
    const std::string key = std::string(to_string(app)) + "/" + name;
    auto it = cache.find(key);
    if (it == cache.end()) {
      Fixture f;
      f.set = workload::generate_filterset(app, name);
      f.single = build_app(f.set, TableLayout::kSingleTable);
      f.split = build_app(f.set, TableLayout::kPerFieldTables);
      f.accelerated = compile_app(f.split);
      f.trace = workload::generate_trace(
          f.set, {.packets = 4096, .hit_ratio = 0.9, .seed = 77});
      it = cache.emplace(key, std::move(f)).first;
    }
    return it->second;
  }
};

void BM_SingleTableLinear(benchmark::State& state, workload::FilterApp app,
                          const char* name) {
  const auto& f = Fixture::get(app, name);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto result = f.single.reference.execute(f.trace[i++ & 4095]);
    benchmark::DoNotOptimize(result.verdict);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Decomposed(benchmark::State& state, workload::FilterApp app,
                   const char* name) {
  const auto& f = Fixture::get(app, name);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto result = f.accelerated.execute(f.trace[i++ & 4095]);
    benchmark::DoNotOptimize(result.verdict);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Tcam(benchmark::State& state, workload::FilterApp app,
             const char* name) {
  const auto& f = Fixture::get(app, name);
  static std::map<std::string, TcamModel> cache;
  const std::string key = std::string(to_string(app)) + "/" + name;
  auto it = cache.find(key);
  if (it == cache.end()) {
    TcamModel tcam(f.set.fields);
    FlowTable sorted(f.set.entries);
    for (std::uint32_t i = 0; i < sorted.entries().size(); ++i) {
      tcam.add_rule(sorted.entries()[i].match, sorted.entries()[i].priority, i);
    }
    it = cache.emplace(key, std::move(tcam)).first;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(it->second.lookup(f.trace[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_SingleTableLinear, mac_bbra,
                  workload::FilterApp::kMacLearning, "bbra");
BENCHMARK_CAPTURE(BM_Decomposed, mac_bbra, workload::FilterApp::kMacLearning,
                  "bbra");
BENCHMARK_CAPTURE(BM_Tcam, mac_bbra, workload::FilterApp::kMacLearning, "bbra");
BENCHMARK_CAPTURE(BM_SingleTableLinear, mac_gozb,
                  workload::FilterApp::kMacLearning, "gozb");
BENCHMARK_CAPTURE(BM_Decomposed, mac_gozb, workload::FilterApp::kMacLearning,
                  "gozb");
BENCHMARK_CAPTURE(BM_SingleTableLinear, routing_yoza,
                  workload::FilterApp::kRouting, "yoza");
BENCHMARK_CAPTURE(BM_Decomposed, routing_yoza, workload::FilterApp::kRouting,
                  "yoza");
BENCHMARK_CAPTURE(BM_Tcam, routing_yoza, workload::FilterApp::kRouting, "yoza");

BENCHMARK_MAIN();
