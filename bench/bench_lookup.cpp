// Lookup-throughput benchmark (google-benchmark): the decomposed multi-table
// pipeline (scalar and batched) against the single-table linear baseline and
// the TCAM model, on the paper's two applications. Not a paper artifact per
// se — the paper reports FPGA clock-rate lookups — but the software analogue
// of its "classification performance" motivation, and the regression guard
// for the library's hot path. Besides the google-benchmark console output,
// the binary writes BENCH_lookup.json (ns/packet per path) so future PRs
// have a machine-readable perf trajectory to regress against.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "classifier/tcam.hpp"
#include "core/builder.hpp"
#include "flow/flow_table.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace {

using namespace ofmtl;

constexpr std::size_t kBatchSize = 256;
constexpr std::size_t kJsonIters = 20000;    // timed iterations per JSON metric
constexpr std::size_t kTracePackets = 4096;  // trace length (wrap mask 4095)

struct Fixture {
  FilterSet set;
  AppSpec single;
  AppSpec split;
  MultiTableLookup accelerated;
  std::vector<PacketHeader> trace;

  static const Fixture& get(workload::FilterApp app, const char* name) {
    static std::map<std::string, Fixture> cache;
    const std::string key = std::string(to_string(app)) + "/" + name;
    auto it = cache.find(key);
    if (it == cache.end()) {
      Fixture f;
      f.set = workload::generate_filterset(app, name);
      f.single = build_app(f.set, TableLayout::kSingleTable);
      f.split = build_app(f.set, TableLayout::kPerFieldTables);
      f.accelerated = compile_app(f.split);
      f.trace = workload::generate_trace(
          f.set, {.packets = kTracePackets, .hit_ratio = 0.9, .seed = 77});
      it = cache.emplace(key, std::move(f)).first;
    }
    return it->second;
  }
};

void BM_SingleTableLinear(benchmark::State& state, workload::FilterApp app,
                          const char* name) {
  const auto& f = Fixture::get(app, name);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto result = f.single.reference.execute(f.trace[i++ & 4095]);
    benchmark::DoNotOptimize(result.verdict);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Decomposed(benchmark::State& state, workload::FilterApp app,
                   const char* name) {
  const auto& f = Fixture::get(app, name);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto result = f.accelerated.execute(f.trace[i++ & 4095]);
    benchmark::DoNotOptimize(result.verdict);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}


void BM_DecomposedBatch(benchmark::State& state, workload::FilterApp app,
                        const char* name) {
  const auto& f = Fixture::get(app, name);
  std::vector<ExecutionResult> results(kBatchSize);
  ExecBatchContext ctx;
  std::size_t base = 0;
  for (auto _ : state) {
    f.accelerated.execute_batch({f.trace.data() + base, kBatchSize},
                                {results.data(), kBatchSize}, ctx);
    base = (base + kBatchSize) & 4095;
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kBatchSize));
}

/// Shared TCAM construction (console benchmark and JSON metrics must measure
/// the exact same rule-to-TCAM mapping).
const TcamModel& tcam_for(const Fixture& f, workload::FilterApp app,
                          const char* name) {
  static std::map<std::string, TcamModel> cache;
  const std::string key = std::string(to_string(app)) + "/" + name;
  auto it = cache.find(key);
  if (it == cache.end()) {
    TcamModel tcam(f.set.fields);
    FlowTable sorted(f.set.entries);
    for (std::uint32_t i = 0; i < sorted.entries().size(); ++i) {
      tcam.add_rule(sorted.entries()[i].match, sorted.entries()[i].priority, i);
    }
    it = cache.emplace(key, std::move(tcam)).first;
  }
  return it->second;
}

void BM_Tcam(benchmark::State& state, workload::FilterApp app,
             const char* name) {
  const auto& f = Fixture::get(app, name);
  const auto& tcam = tcam_for(f, app, name);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tcam.lookup(f.trace[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_SingleTableLinear, mac_bbra,
                  workload::FilterApp::kMacLearning, "bbra");
BENCHMARK_CAPTURE(BM_Decomposed, mac_bbra, workload::FilterApp::kMacLearning,
                  "bbra");
BENCHMARK_CAPTURE(BM_DecomposedBatch, mac_bbra,
                  workload::FilterApp::kMacLearning, "bbra");
BENCHMARK_CAPTURE(BM_Tcam, mac_bbra, workload::FilterApp::kMacLearning, "bbra");
BENCHMARK_CAPTURE(BM_SingleTableLinear, mac_gozb,
                  workload::FilterApp::kMacLearning, "gozb");
BENCHMARK_CAPTURE(BM_Decomposed, mac_gozb, workload::FilterApp::kMacLearning,
                  "gozb");
BENCHMARK_CAPTURE(BM_DecomposedBatch, mac_gozb,
                  workload::FilterApp::kMacLearning, "gozb");
BENCHMARK_CAPTURE(BM_SingleTableLinear, routing_yoza,
                  workload::FilterApp::kRouting, "yoza");
BENCHMARK_CAPTURE(BM_Decomposed, routing_yoza, workload::FilterApp::kRouting,
                  "yoza");
BENCHMARK_CAPTURE(BM_DecomposedBatch, routing_yoza,
                  workload::FilterApp::kRouting, "yoza");
BENCHMARK_CAPTURE(BM_Tcam, routing_yoza, workload::FilterApp::kRouting, "yoza");

namespace {

/// ns/packet for each path on one app, measured directly (steady state,
/// warmed caches) for the JSON perf trajectory.
void append_json_metrics(std::vector<std::pair<std::string, double>>& results,
                         workload::FilterApp app, const char* name,
                         bool with_tcam) {
  const auto& f = Fixture::get(app, name);
  const std::string tag = std::string(to_string(app)) + "_" + name;
  // Warm every path over one batch's worth of packets before timing (the
  // "warmup" metadata records this protocol).
  for (std::size_t i = 0; i < kBatchSize; ++i) {
    benchmark::DoNotOptimize(f.single.reference.execute(f.trace[i]));
    benchmark::DoNotOptimize(f.accelerated.execute(f.trace[i]));
  }
  results.emplace_back(
      "linear/" + tag,
      ofmtl::bench::time_per_call_ns(kJsonIters, [&](std::size_t i) {
        benchmark::DoNotOptimize(f.single.reference.execute(f.trace[i & 4095]));
      }));
  results.emplace_back(
      "decomposed/" + tag,
      ofmtl::bench::time_per_call_ns(kJsonIters, [&](std::size_t i) {
        benchmark::DoNotOptimize(f.accelerated.execute(f.trace[i & 4095]));
      }));
  std::vector<ExecutionResult> batch_results(kBatchSize);
  ExecBatchContext ctx;
  f.accelerated.execute_batch({f.trace.data(), kBatchSize},
                              {batch_results.data(), kBatchSize}, ctx);
  results.emplace_back(
      "decomposed_batch/" + tag,
      ofmtl::bench::time_per_call_ns(
          kJsonIters / kBatchSize + 1,
          [&](std::size_t i) {
            f.accelerated.execute_batch(
                {f.trace.data() + ((i * kBatchSize) & 4095), kBatchSize},
                {batch_results.data(), kBatchSize}, ctx);
          }) /
          static_cast<double>(kBatchSize));
  if (!with_tcam) return;
  const auto& tcam = tcam_for(f, app, name);
  for (std::size_t i = 0; i < kBatchSize; ++i) {
    benchmark::DoNotOptimize(tcam.lookup(f.trace[i]));
  }
  results.emplace_back(
      "tcam/" + tag,
      ofmtl::bench::time_per_call_ns(kJsonIters, [&](std::size_t i) {
        benchmark::DoNotOptimize(tcam.lookup(f.trace[i & 4095]));
      }));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::vector<std::pair<std::string, double>> results;
  append_json_metrics(results, workload::FilterApp::kMacLearning, "bbra", true);
  append_json_metrics(results, workload::FilterApp::kMacLearning, "gozb", false);
  append_json_metrics(results, workload::FilterApp::kRouting, "yoza", true);
  // Run metadata so trajectory diffs across PRs compare like with like
  // (check_bench.py warns when these drift between baseline and run).
  auto metadata = ofmtl::bench::common_metadata();
  metadata.emplace_back("batch_size", std::to_string(kBatchSize));
  metadata.emplace_back("iterations", std::to_string(kJsonIters));
  metadata.emplace_back("trace_packets", std::to_string(kTracePackets));
  metadata.emplace_back("warmup", std::to_string(kBatchSize) +
                                      " packets per path (1 batch) before "
                                      "timing");
  ofmtl::bench::write_bench_json("lookup", "ns_per_packet", results, metadata);
  return 0;
}
