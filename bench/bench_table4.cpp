// Table IV reproduction: number of unique field values of the flow-based
// routing filters (ingress port + 16-bit IPv4 partitions) for all 16
// routers. The coza/cozb/soza/sozb rows reproduce the paper's highlighted
// anomaly: more unique values in the higher partition than the lower.
#include <iostream>

#include "bench_common.hpp"
#include "stats/filter_analysis.hpp"
#include "workload/calibration.hpp"

int main() {
  using namespace ofmtl;
  using workload::kRoutingTargets;

  bench::print_heading(
      "Table IV - Number of unique field values of flow-based Routing filter");

  stats::Table table({"Flow Filter", "Rules", "Ingress Port",
                      "Higher 16-bit IP", "Lower 16-bit IP", "paper(P/H/L)",
                      "hi>lo"});
  for (const auto& target : kRoutingTargets) {
    const auto set = workload::generate_routing_filterset(target);
    const auto analysis = stats::analyze(set);
    const auto& port = analysis.of(FieldId::kInPort);
    const auto& ip = analysis.of(FieldId::kIpv4Dst);
    const bool anomaly = ip.unique_per_partition[0] > ip.unique_per_partition[1];
    table.add(std::string(target.name), analysis.rule_count, port.unique_whole,
              ip.unique_per_partition[0], ip.unique_per_partition[1],
              std::to_string(target.unique_ports) + "/" +
                  std::to_string(target.unique_ip_hi) + "/" +
                  std::to_string(target.unique_ip_lo),
              anomaly ? std::string("<-") : std::string(""));
  }
  table.print(std::cout);
  std::cout << "\ncoza/cozb/soza/sozb show the inverted partition profile the "
               "paper highlights (wider spread of network addresses).\n";
  return 0;
}
