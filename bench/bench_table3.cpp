// Table III reproduction: number of unique field values of the flow-based
// MAC filters (VLAN ID + 16-bit Ethernet partitions) for all 16 routers,
// measured by running the filter analysis over the calibrated synthetic
// filter sets, with the paper's published values alongside.
#include <iostream>

#include "bench_common.hpp"
#include "stats/filter_analysis.hpp"
#include "workload/calibration.hpp"

int main() {
  using namespace ofmtl;
  using workload::kMacTargets;

  bench::print_heading(
      "Table III - Number of unique field values of flow-based MAC filter");

  stats::Table table({"Flow Filter", "Rules", "VLAN ID", "Higher 16-bit Eth",
                      "Middle 16-bit Eth", "Lower 16-bit Eth", "paper(V/H/M/L)"});
  for (const auto& target : kMacTargets) {
    const auto set = workload::generate_mac_filterset(target);
    const auto analysis = stats::analyze(set);
    const auto& vlan = analysis.of(FieldId::kVlanId);
    const auto& eth = analysis.of(FieldId::kEthDst);
    table.add(std::string(target.name), analysis.rule_count, vlan.unique_whole,
              eth.unique_per_partition[0], eth.unique_per_partition[1],
              eth.unique_per_partition[2],
              std::to_string(target.unique_vlan) + "/" +
                  std::to_string(target.unique_eth_hi) + "/" +
                  std::to_string(target.unique_eth_mid) + "/" +
                  std::to_string(target.unique_eth_lo));
  }
  table.print(std::cout);
  std::cout << "\nMeasured values reproduce the published statistics exactly "
               "(generator is calibrated to them; see DESIGN.md section 4).\n";
  return 0;
}
