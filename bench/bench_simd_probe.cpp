// Microbenchmark of the SIMD lane engine, stage by stage: each probe kernel
// the batch lookup path rewired onto — flat-hash tag-group compare, range
// lower-bound (rank-select narrow / branchless-vector wide), popcount trie
// descent, tree-bitmap longest-internal-match — measured on the compiled
// vector backend and again with the portable SWAR kernels forced, so the
// vector speedup per stage is visible in isolation from the end-to-end
// pipeline numbers (BENCH_lookup.json).
//
// Writes BENCH_simd_probe.json in million_ops_per_sec (higher is better).
// CI floors the SWAR kernels with conservative machine-independent minimums
// (scripts/check_bench.py --min-metric) so an accidental scalarization of
// the hot loops fails loudly on any hardware.
#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "classifier/range_matcher.hpp"
#include "classifier/tree_bitmap.hpp"
#include "core/flat_hash.hpp"
#include "core/lut.hpp"
#include "core/multibit_trie.hpp"
#include "core/search_context.hpp"
#include "core/simd.hpp"
#include "net/prefix.hpp"
#include "workload/rng.hpp"

namespace {

using namespace ofmtl;
using workload::Rng;

constexpr std::size_t kQueries = 4096;

/// Million operations per second given total ops and elapsed milliseconds.
[[nodiscard]] double mops(std::size_t ops, double ms) {
  return static_cast<double>(ops) / ms / 1e3;
}

/// Run `fn` under the current backend and again with SWAR forced, appending
/// `<name>_simd` and `<name>_swar` (ops/elapsed in Mops).
template <typename Fn>
void measure_both(std::vector<std::pair<std::string, double>>& results,
                  const std::string& name, std::size_t ops, Fn&& fn) {
  // Warm both paths (page in structures, resolve the CPUID probe).
  fn();
  {
    const double ms = bench::time_ms(fn);
    results.emplace_back(name + "_simd", mops(ops, ms));
  }
  simd::ScopedForceSwar forced(true);
  fn();
  const double ms = bench::time_ms(fn);
  results.emplace_back(name + "_swar", mops(ops, ms));
}

}  // namespace

int main() {
  bench::print_heading("SIMD lane-engine kernels: vector vs forced SWAR");
  std::vector<std::pair<std::string, double>> results;
  Rng rng(20250808);

  // --- raw tag-group kernel: 16-byte compare + movemask ---------------------
  {
    constexpr std::size_t kTags = std::size_t{1} << 16;
    constexpr std::size_t kRounds = 256;
    std::vector<std::uint8_t> tags(kTags);
    for (auto& tag : tags) {
      const std::uint64_t draw = rng.next();
      tag = draw % 8 == 0 ? detail::kTagEmpty
                          : static_cast<std::uint8_t>(draw & 0x7F);
    }
    volatile std::uint32_t sink = 0;
    const auto run = [&] {
      std::uint32_t acc = 0;
      for (std::size_t round = 0; round < kRounds; ++round) {
        const auto probe = static_cast<std::uint8_t>(round & 0x7F);
        for (std::size_t group = 0; group + 16 <= kTags; group += 16) {
          acc ^= simd::match_bytes16(tags.data() + group, probe);
        }
      }
      sink = acc;
    };
    measure_both(results, "kernel/tag_match", kRounds * (kTags / 16), run);
  }

  // --- exact-match LUT batch probe ------------------------------------------
  {
    ExactMatchLut lut(128);
    constexpr std::size_t kStored = 4096;
    std::vector<U128> stored;
    for (std::size_t i = 0; i < kStored; ++i) {
      stored.push_back(U128{rng.next() & 0xFFFF, rng.next()});
      lut.insert(stored.back());
    }
    std::vector<U128> queries;
    for (std::size_t i = 0; i < kQueries; ++i) {
      queries.push_back(i % 2 == 0 ? stored[rng.below(stored.size())]
                                   : U128{rng.next(), rng.next()});
    }
    std::vector<Label> out(queries.size());
    constexpr std::size_t kRounds = 200;
    measure_both(results, "em_probe", kRounds * kQueries, [&] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        lut.lookup_batch(queries, out);
      }
    });
  }

  // --- range matcher: narrow (rank-select) and wide (vector search) ---------
  for (const unsigned width : {16U, 32U}) {
    const std::uint64_t max = low_mask(width);
    RangeMatcher ranges(width);
    for (int i = 0; i < 512; ++i) {
      const std::uint64_t lo = rng.next() & max;
      ranges.add({lo, std::min<std::uint64_t>(max, lo + rng.below(1 << 14))});
    }
    ranges.seal();
    std::vector<std::uint64_t> keys;
    for (std::size_t i = 0; i < kQueries; ++i) keys.push_back(rng.next() & max);
    std::vector<const std::vector<std::uint32_t>*> out(keys.size());
    constexpr std::size_t kRounds = 200;
    measure_both(results,
                 width == 16 ? "range_narrow" : "range_wide",
                 kRounds * kQueries, [&] {
                   for (std::size_t round = 0; round < kRounds; ++round) {
                     ranges.lookup_batch(keys, out);
                   }
                 });
  }

  // --- multibit trie: popcount descent + flat-table probes ------------------
  {
    MultibitTrie trie = MultibitTrie::partition16();
    for (int i = 0; i < 2000; ++i) {
      const unsigned len = 1 + static_cast<unsigned>(rng.below(16));
      const std::uint64_t value = (rng.next() & 0xFFFF) >> (16 - len)
                                  << (16 - len);
      trie.insert(Prefix{U128{value}, len, 16}, static_cast<Label>(i % 512));
    }
    trie.seal();
    std::vector<std::uint64_t> keys;
    for (std::size_t i = 0; i < kQueries; ++i) keys.push_back(rng.next() & 0xFFFF);
    std::vector<LabelList> lists(keys.size());
    std::vector<LabelList*> outs;
    for (auto& list : lists) outs.push_back(&list);
    constexpr std::size_t kRounds = 100;
    measure_both(results, "trie_batch", kRounds * kQueries, [&] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        trie.lookup_all_batch(keys, outs);
      }
    });
  }

  // --- tree bitmap: masked longest-internal-match ---------------------------
  {
    std::vector<std::pair<Prefix, Label>> prefixes;
    for (int i = 0; i < 2000; ++i) {
      const unsigned len = 1 + static_cast<unsigned>(rng.below(16));
      const std::uint64_t value = (rng.next() & 0xFFFF) >> (16 - len)
                                  << (16 - len);
      prefixes.emplace_back(Prefix{U128{value}, len, 16},
                            static_cast<Label>(i % 512));
    }
    const TreeBitmapTrie tree(16, {5, 5, 6}, prefixes);
    std::vector<std::uint64_t> keys;
    for (std::size_t i = 0; i < kQueries; ++i) keys.push_back(rng.next() & 0xFFFF);
    std::vector<std::optional<Label>> out(keys.size());
    constexpr std::size_t kRounds = 100;
    measure_both(results, "tree_bitmap_batch", kRounds * kQueries, [&] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        tree.lookup_batch(keys, out);
      }
    });
  }

  for (const auto& [name, value] : results) {
    std::printf("  %-28s %10.2f Mops\n", name.c_str(), value);
  }
  auto metadata = bench::common_metadata();
  metadata.emplace_back("queries", std::to_string(kQueries));
  metadata.emplace_back("simd_level", simd::to_string(simd::detect_level()));
  bench::write_bench_json("simd_probe", "million_ops_per_sec", results,
                          metadata);
  return 0;
}
