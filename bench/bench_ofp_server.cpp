// Control-plane server benchmark: what does serving OFP over real loopback
// TCP cost? Three numbers, written to BENCH_ofp.json:
//   - ofp/flow_mods_per_sec: sustained flow-mod ingest through one
//     controller connection into the left-right classifier sink — batches
//     of adds+deletes, each round fenced by an echo barrier so the number
//     counts APPLIED mods, not bytes parked in socket buffers;
//   - ofp/session_setup_us: TCP connect + HELLO handshake latency until the
//     controller holds a steady session (mean over serial setups);
//   - ofp/echo_rtt_us: steady-state echo round trip through the event loop
//     (liveness probe cost, and the floor for barrier latency);
//   - ofp/role_change_us: ROLE_REQUEST round trip alternating master/slave
//     claims — the fixed cost a controller pays at every failover handoff.
//   - ofp/{decode,apply,ingest}_{p50,p99}_ns: control-plane latency slices
//     from the always-on trace rings (read→decode→apply inside the event
//     loop), the tail-distribution companions to the mean throughput
//     number. The p99/p50 ratios are machine-independent and gated in CI.
// Loopback numbers are hardware-sensitive; CI gates them against the
// committed dev-container baseline only on matching hardware.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/export.hpp"
#include "obs/tracer.hpp"
#include "ofp/server/flow_mod_sink.hpp"
#include "ofp/server/server.hpp"
#include "ofp/testing/fault_injection.hpp"
#include "runtime/snapshot.hpp"

namespace {

using namespace ofmtl;
using namespace ofmtl::ofp;
using Clock = std::chrono::steady_clock;
using server::OfpServer;
using server::ServerConfig;
using testing::ScriptedController;

constexpr std::size_t kModsPerRound = 2048;
constexpr auto kModMeasure = std::chrono::milliseconds(600);
constexpr std::size_t kSetupIterations = 200;
constexpr std::size_t kEchoIterations = 500;

MultiTableLookup make_tables() {
  MultiTableLookup tables;
  tables.add_table(LookupTable({FieldId::kEthDst}, {}));
  return tables;
}

std::vector<std::uint8_t> mod_frame(std::uint32_t xid, std::uint32_t id,
                                    FlowModCommand command) {
  FlowModMsg mod;
  mod.command = command;
  mod.table_id = 0;
  mod.entry.id = id;
  mod.entry.priority = 1;
  mod.entry.match.set(FieldId::kEthDst, FieldMatch::exact(std::uint64_t{id}));
  mod.entry.instructions = output_instruction(1);
  return encode({xid, mod});
}

/// Sustained flow-mod ingest: rounds of (add all, delete all) so the table
/// returns to empty and the loop can run forever, one barrier per phase.
double measure_flow_mods_per_sec(OfpServer& server) {
  ScriptedController controller;
  if (!controller.connect(server.port())) return 0.0;

  std::uint64_t applied = 0;
  const auto start = Clock::now();
  while (Clock::now() - start < kModMeasure) {
    for (const auto command :
         {FlowModCommand::kAdd, FlowModCommand::kDelete}) {
      for (std::uint32_t id = 1; id <= kModsPerRound; ++id) {
        if (!controller.send(mod_frame(controller.next_xid(), id, command))) {
          return 0.0;
        }
      }
      if (!controller.barrier().ok) return 0.0;
      applied += kModsPerRound;
    }
  }
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(applied) / elapsed_s;
}

double measure_session_setup_us(OfpServer& server) {
  const auto start = Clock::now();
  std::size_t ok = 0;
  for (std::size_t i = 0; i < kSetupIterations; ++i) {
    ScriptedController controller;
    if (controller.connect(server.port())) ok++;
  }
  if (ok == 0) return 0.0;
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
             .count() /
         static_cast<double>(ok);
}

double measure_role_change_us(OfpServer& server) {
  ScriptedController controller;
  if (!controller.connect(server.port())) return 0.0;
  const auto start = Clock::now();
  std::size_t ok = 0;
  std::uint64_t generation = 1;
  for (std::size_t i = 0; i < kEchoIterations; ++i) {
    const auto role = i % 2 == 0 ? Role::kMaster : Role::kSlave;
    if (controller.request_role(role, generation++).has_value()) ok++;
  }
  if (ok == 0) return 0.0;
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
             .count() /
         static_cast<double>(ok);
}

double measure_echo_rtt_us(OfpServer& server) {
  ScriptedController controller;
  if (!controller.connect(server.port())) return 0.0;
  const auto start = Clock::now();
  std::size_t ok = 0;
  for (std::size_t i = 0; i < kEchoIterations; ++i) {
    if (controller.barrier().ok) ok++;
  }
  if (ok == 0) return 0.0;
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
             .count() /
         static_cast<double>(ok);
}

}  // namespace

int main() {
  bench::print_heading("OFP control-plane server (loopback TCP)");

  runtime::SnapshotClassifier classifier(make_tables());
  ServerConfig config;
  config.session.echo_interval_ms = 30'000;
  OfpServer server(server::make_classifier_sink(classifier), config);
  if (!server.start()) {
    std::cerr << "bench_ofp_server: server failed to start\n";
    return 1;
  }

  // Trace the flow-mod phase: its decode/apply slices are the tail metrics.
  // A 1M-record ring comfortably holds the whole measured window, so the
  // quantiles see every slice, not a survivor sample.
  obs::TraceOptions trace_options;
  trace_options.ring_capacity = std::size_t{1} << 20;
  obs::start_tracing(trace_options);
  const double mods_per_sec = measure_flow_mods_per_sec(server);
  obs::stop_tracing();
  const obs::TraceDump trace = obs::collect_tracing();

  const double setup_us = measure_session_setup_us(server);
  const double echo_us = measure_echo_rtt_us(server);
  const double role_us = measure_role_change_us(server);
  const auto stats = server.stats();
  server.stop();

  const auto decode_hist = obs::slice_latency_histogram(
      trace, obs::TraceEvent::kOfpDecodeBegin, obs::TraceEvent::kOfpDecodeEnd,
      /*per_payload_unit=*/false);
  const auto apply_hist = obs::slice_latency_histogram(
      trace, obs::TraceEvent::kOfpApplyBegin, obs::TraceEvent::kOfpApplyEnd,
      /*per_payload_unit=*/false);
  const auto ingest_hist = obs::slice_latency_histogram(
      trace, obs::TraceEvent::kOfpReadBegin, obs::TraceEvent::kOfpReadEnd,
      /*per_payload_unit=*/false);

  std::cout << "flow-mod ingest   " << mods_per_sec << " mods/s (batched, "
            << "barrier-fenced)\n"
            << "session setup     " << setup_us << " us (connect + HELLO)\n"
            << "echo round trip   " << echo_us << " us\n"
            << "role change       " << role_us << " us (fenced claim RTT)\n"
            << "server counters   frames_rx=" << stats.frames_rx
            << " frames_tx=" << stats.frames_tx
            << " flow_mods_ok=" << stats.flow_mods_ok
            << " failed=" << stats.flow_mods_failed << "\n"
            << "decode slice      n=" << decode_hist.total()
            << " p50=" << decode_hist.quantile(0.50)
            << " p99=" << decode_hist.quantile(0.99) << " ns\n"
            << "apply slice       n=" << apply_hist.total()
            << " p50=" << apply_hist.quantile(0.50)
            << " p99=" << apply_hist.quantile(0.99) << " ns\n"
            << "ingest slice      n=" << ingest_hist.total()
            << " p50=" << ingest_hist.quantile(0.50)
            << " p99=" << ingest_hist.quantile(0.99) << " ns\n";

  if (mods_per_sec == 0.0 || setup_us == 0.0 || echo_us == 0.0 ||
      role_us == 0.0) {
    std::cerr << "bench_ofp_server: a measurement failed\n";
    return 1;
  }
  if (obs::kInstrumentationCompiled &&
      (decode_hist.total() == 0 || apply_hist.total() == 0)) {
    std::cerr << "bench_ofp_server: trace slices missing\n";
    return 1;
  }

  auto metadata = bench::common_metadata();
  metadata.emplace_back("mods_per_round", std::to_string(kModsPerRound));
  metadata.emplace_back("setup_iterations", std::to_string(kSetupIterations));
  bench::write_bench_json(
      "ofp", "mixed",
      {{"ofp/flow_mods_per_sec", mods_per_sec},
       {"ofp/session_setup_us", setup_us},
       {"ofp/echo_rtt_us", echo_us},
       {"ofp/role_change_us", role_us},
       {"ofp/decode_p50_ns", decode_hist.quantile(0.50)},
       {"ofp/decode_p99_ns", decode_hist.quantile(0.99)},
       {"ofp/apply_p50_ns", apply_hist.quantile(0.50)},
       {"ofp/apply_p99_ns", apply_hist.quantile(0.99)},
       {"ofp/ingest_p50_ns", ingest_hist.quantile(0.50)},
       {"ofp/ingest_p99_ns", ingest_hist.quantile(0.99)}},
      metadata);
  return 0;
}
