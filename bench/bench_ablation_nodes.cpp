// Node-layout ablation: the paper's MBT charges full child-block arrays in
// block RAM (array-block policy) and cites its node data as pointer + label
// + flag. This bench compares, on the calibrated worst-case partitions:
//   * MBT array-block  — hardware arrays, the paper's layout
//   * MBT sparse       — only non-empty entries (software lower bound)
//   * Tree Bitmap      — compressed nodes (bitmaps + popcount addressing),
//                        the classic answer to array-block waste
// quantifying what a compressed node layout would have saved the prototype.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "classifier/tree_bitmap.hpp"
#include "mem/memory_model.hpp"
#include "workload/calibration.hpp"

namespace {

using namespace ofmtl;

void compare(const FilterSet& set, FieldId field, const std::string& title) {
  bench::print_heading(title);
  stats::Table table({"Partition", "Unique prefixes", "MBT array Kbits",
                      "MBT sparse Kbits", "TreeBitmap Kbits",
                      "TBM vs array saving %"});

  // Build the per-partition prefix sets once.
  FieldSearchConfig config;
  config.strides = {4, 4, 4, 4};  // shared stride grid for a fair comparison
  FieldSearch search(field, config);
  for (const auto& entry : set.entries) {
    (void)search.add_rule(entry.match.get(field));
  }
  search.seal();

  static const char* const kNames[] = {"hi", "mid", "lo", "p3",
                                       "p4", "p5",  "p6", "p7"};
  for (std::size_t p = 0; p < search.tries().size(); ++p) {
    const auto& mbt = search.tries()[p];
    const unsigned label_bits =
        mbt.prefix_count() <= 1 ? 1 : ceil_log2(mbt.prefix_count());

    // Rebuild the same prefix set into a tree bitmap.
    std::vector<std::pair<Prefix, Label>> prefixes;
    // The trie does not expose its prefix map directly; re-derive from the
    // rules (same decomposition the FieldSearch used).
    std::map<std::pair<unsigned, std::uint64_t>, Label> dedup;
    for (const auto& entry : set.entries) {
      const auto& fm = entry.match.get(field);
      Prefix whole;
      if (fm.kind == MatchKind::kPrefix) {
        whole = fm.prefix;
      } else if (fm.kind == MatchKind::kExact) {
        whole = Prefix{fm.value, field_bits(field), field_bits(field)};
      } else {
        continue;
      }
      const unsigned plen = whole.partition16_length(static_cast<unsigned>(p));
      const auto part = Prefix::from_value(
          whole.partition16(static_cast<unsigned>(p)), plen, 16);
      const auto [it, inserted] = dedup.try_emplace(
          {part.length(), part.value64()}, static_cast<Label>(dedup.size()));
      if (inserted) prefixes.emplace_back(part, it->second);
    }
    TreeBitmapTrie tbm(16, config.strides, prefixes);

    const double array_kb =
        mem::to_kbits(mbt.total_bits(TrieStorage::kArrayBlock, label_bits));
    const double sparse_kb =
        mem::to_kbits(mbt.total_bits(TrieStorage::kSparse, label_bits));
    const double tbm_kb = mem::to_kbits(tbm.total_bits(label_bits));
    table.add(p < 8 ? kNames[search.tries().size() == 2 && p == 1 ? 2 : p]
                    : std::to_string(p),
              mbt.prefix_count(), array_kb, sparse_kb, tbm_kb,
              100.0 * (1.0 - tbm_kb / array_kb));
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  const auto mac = workload::generate_mac_filterset(workload::mac_target("gozb"));
  compare(mac, FieldId::kEthDst,
          "Node-layout ablation - Ethernet tries, MAC gozb (stride 4x4)");

  const auto routing =
      workload::generate_routing_filterset(workload::routing_target("coza"));
  compare(routing, FieldId::kIpv4Dst,
          "Node-layout ablation - IPv4 tries, Routing coza (stride 4x4)");

  std::cout
      << "\nTree Bitmap trades the array-block waste for per-node bitmaps "
         "and popcount logic: typically a 3-10x memory reduction at the "
         "cost of wider nodes and a popcount in the lookup stage - the "
         "compressed alternative the paper's label method complements.\n";
  return 0;
}
