// Extension of the Section III filter survey: beyond counting unique values
// per 16-bit partition, quantify their *concentration* — how few values
// cover most rules — and the prefix-length mix. This is the quantitative
// backing for the paper's qualitative observations (OUI structure of MAC
// addresses, network/host split of IPv4) that justify the label method.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "stats/filter_analysis.hpp"
#include "workload/calibration.hpp"

namespace {

using namespace ofmtl;

/// Share of rules covered by the most frequent `k` values of a partition.
double top_k_share(const std::map<std::uint64_t, std::size_t>& frequency,
                   std::size_t k, std::size_t total) {
  std::vector<std::size_t> counts;
  counts.reserve(frequency.size());
  for (const auto& [value, count] : frequency) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  std::size_t covered = 0;
  for (std::size_t i = 0; i < std::min(k, counts.size()); ++i) {
    covered += counts[i];
  }
  return 100.0 * static_cast<double>(covered) / static_cast<double>(total);
}

void survey_mac() {
  bench::print_heading(
      "Survey extension - value concentration, MAC filters (share of rules "
      "covered by the top-8 values per partition)");
  stats::Table table({"Filter", "Rules", "top8 hi %", "top8 mid %", "top8 lo %",
                      "top8 VLAN %"});
  for (const auto& target : workload::kMacTargets) {
    const auto set = workload::generate_mac_filterset(target);
    std::map<std::uint64_t, std::size_t> hi, mid, lo, vlan;
    for (const auto& entry : set.entries) {
      const auto mac = entry.match.get(FieldId::kEthDst).value.lo;
      ++hi[mac >> 32];
      ++mid[(mac >> 16) & 0xFFFF];
      ++lo[mac & 0xFFFF];
      ++vlan[entry.match.get(FieldId::kVlanId).value.lo];
    }
    table.add(std::string(target.name), set.entries.size(),
              top_k_share(hi, 8, set.entries.size()),
              top_k_share(mid, 8, set.entries.size()),
              top_k_share(lo, 8, set.entries.size()),
              top_k_share(vlan, 8, set.entries.size()));
  }
  table.print(std::cout);
  std::cout << "\nHigh partitions concentrate (OUI structure): a handful of "
               "labels covers most rules, which is what makes unique-value "
               "storage so effective there.\n";
}

void survey_routing_lengths() {
  bench::print_heading(
      "Survey extension - IPv4 prefix-length mix, routing filters");
  stats::Table table({"Filter", "Rules", "/0", "<=/16", "/17-/24", "/25-/31",
                      "/32", "avg len"});
  for (const auto& target : workload::kRoutingTargets) {
    const auto set = workload::generate_routing_filterset(target);
    const auto histogram = stats::prefix_length_histogram(set, FieldId::kIpv4Dst);
    std::size_t le16 = 0, mid = 0, high = 0;
    double weighted = 0;
    for (unsigned len = 0; len <= 32; ++len) {
      weighted += static_cast<double>(histogram[len]) * len;
      if (len >= 1 && len <= 16) le16 += histogram[len];
      if (len >= 17 && len <= 24) mid += histogram[len];
      if (len >= 25 && len <= 31) high += histogram[len];
    }
    table.add(std::string(target.name), set.entries.size(), histogram[0], le16,
              mid, high, histogram[32],
              weighted / static_cast<double>(set.entries.size()));
  }
  table.print(std::cout);
  std::cout << "\nThe wide-network filters (coza/cozb/soza/sozb) skew long "
               "(avg length up near /32): many specific routes across many "
               "networks, the shape behind their inverted trie profile.\n";
}

}  // namespace

int main() {
  survey_mac();
  survey_routing_lengths();
  return 0;
}
