// Flow-cache locality benchmark: ns/packet through the 1-worker parallel
// runtime with the per-worker flow cache off vs on, over packet streams of
// controlled locality — Zipf-skewed (parameterized s exponent, rank k drawn
// ∝ (k+1)^-s over a pool of `flows` distinct headers) and uniform. Real
// switch traffic is always skewed, so the Zipf scenarios are the
// representative ones; the uniform/overflow scenario (flow pool ≫ cache
// capacity) bounds the worst-case overhead the cache pre-pass adds when it
// cannot help.
//
// Writes BENCH_flow_cache.json (ns/packet per scenario plus hitrate/*
// fractions). Two properties are CI-gated (scripts/check_bench.py):
//   - trajectory: flow_cache/* ns/packet vs the committed baseline
//     (hardware-sensitive → --skip-if-hardware-differs)
//   - invariant: the Zipf s=1.1 hit rate is a property of the stream and
//     the cache, not the machine, so --min-hit-rate gates it everywhere.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/builder.hpp"
#include "runtime/runtime.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"
#include "workload/zipf.hpp"

namespace {

using namespace ofmtl;
using runtime::BatchTicket;
using runtime::ParallelRuntime;

constexpr std::size_t kBatch = 256;
constexpr std::size_t kStreamPackets = 1 << 17;  // 512 batches per pass
constexpr std::size_t kInFlight = 4;
constexpr std::size_t kCacheCapacity = 8192;  // per-worker slots
constexpr auto kWarmup = std::chrono::milliseconds(150);
constexpr auto kMeasure = std::chrono::milliseconds(400);

struct App {
  std::string tag;
  FilterSet set;  ///< kept so scenarios can regenerate flow pools cheaply
  MultiTableLookup accelerated;
};

App make_app(workload::FilterApp app, const char* name) {
  auto set = workload::generate_filterset(app, name);
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  auto accelerated = compile_app(spec);
  return App{std::string(to_string(app)) + "_" + name, std::move(set),
             std::move(accelerated)};
}

/// Materialize a packet stream over a pool of `flows` distinct headers:
/// Zipf-skewed with exponent `s`, or uniform when s == 0 (ZipfSampler
/// degenerates exactly).
std::vector<PacketHeader> make_stream(const App& app, double s,
                                      std::size_t flows, std::uint64_t seed) {
  const auto pool = workload::generate_trace(
      app.set, {.packets = flows, .hit_ratio = 0.9, .seed = 123});
  workload::ZipfSampler sampler(pool.size(), s, seed);
  std::vector<PacketHeader> stream;
  stream.reserve(kStreamPackets);
  for (std::size_t i = 0; i < kStreamPackets; ++i) {
    stream.push_back(pool[sampler.next()]);
  }
  return stream;
}

/// ns/packet over the measure window through a 1-worker runtime; the hit
/// rate over the same window (from the runtime's aggregate cache counters)
/// lands in `hit_rate` (0 when the cache is off).
double run_stream(const App& app, const std::vector<PacketHeader>& stream,
                  std::size_t cache_capacity, double& hit_rate) {
  ParallelRuntime rt(app.accelerated.clone(),
                     {.workers = 1,
                      .queue_capacity = 2 * kInFlight,
                      .flow_cache_capacity = cache_capacity});
  std::vector<std::vector<ExecutionResult>> results(kInFlight);
  for (auto& slot : results) slot.resize(kBatch);
  std::vector<BatchTicket> tickets(kInFlight);

  const auto start = std::chrono::steady_clock::now();
  const auto warm_end = start + kWarmup;
  const auto measure_end = warm_end + kMeasure;
  runtime::WorkerStats at_warm;
  auto measure_start = warm_end;
  std::size_t offset = 0;
  bool measuring = false;
  while (true) {
    for (std::size_t slot = 0; slot < kInFlight; ++slot) {
      tickets[slot].wait();
      const std::size_t base = (offset += kBatch) & (kStreamPackets - 1);
      while (!rt.try_submit(0, {stream.data() + base, kBatch},
                            {results[slot].data(), kBatch}, &tickets[slot])) {
        std::this_thread::yield();
      }
    }
    const auto now = std::chrono::steady_clock::now();
    if (!measuring && now >= warm_end) {
      at_warm = rt.aggregate_stats();
      measure_start = now;
      measuring = true;
    }
    if (measuring && now >= measure_end) {
      const auto final_stats = rt.aggregate_stats();
      if (final_stats.errors != 0) {
        std::cerr << "error: " << final_stats.errors
                  << " batches threw in workers — bench numbers invalid\n";
        std::exit(1);
      }
      rt.stop();
      const std::uint64_t packets = final_stats.packets - at_warm.packets;
      const std::uint64_t hits = final_stats.cache_hits - at_warm.cache_hits;
      const std::uint64_t misses =
          final_stats.cache_misses - at_warm.cache_misses;
      hit_rate = hits + misses > 0
                     ? static_cast<double>(hits) /
                           static_cast<double>(hits + misses)
                     : 0.0;
      const double seconds =
          std::chrono::duration<double>(now - measure_start).count();
      return packets > 0 ? seconds * 1e9 / static_cast<double>(packets) : 0.0;
    }
  }
}

struct Scenario {
  std::string tag;   ///< e.g. "zipf_s1.1_f4096"
  double s;          ///< Zipf exponent; 0 = uniform
  std::size_t flows; ///< flow-pool size
};

}  // namespace

int main() {
  static_assert((kStreamPackets & (kStreamPackets - 1)) == 0,
                "stream wraps by mask");
  std::vector<std::pair<std::string, double>> results;

  // Routing (trie-heavy tables — the expensive pipeline the cache fronts)
  // and MAC learning (cheap EM pipeline — the harder speedup target).
  const std::vector<Scenario> scenarios = {
      {"zipf_s1.1_f4096", 1.1, 4096},
      {"zipf_s0.8_f4096", 0.8, 4096},
      {"uniform_f4096", 0.0, 4096},
      // Flow pool 16x the cache: every lookup thrashes, bounding the
      // pre-pass overhead the cache costs when locality is absent.
      {"uniform_f65536", 0.0, 65536},
  };
  const std::vector<std::pair<workload::FilterApp, const char*>> app_specs = {
      {workload::FilterApp::kRouting, "yoza"},
      {workload::FilterApp::kMacLearning, "gozb"},
  };
  for (const auto& [filter_app, name] : app_specs) {
    const App app = make_app(filter_app, name);
    for (const auto& scenario : scenarios) {
      const auto stream =
          make_stream(app, scenario.s, scenario.flows, /*seed=*/99);
      const std::string base =
          "flow_cache/" + app.tag + "/" + scenario.tag;
      double hit_rate = 0.0;
      double unused = 0.0;
      const double off_ns = run_stream(app, stream, 0, unused);
      const double on_ns = run_stream(app, stream, kCacheCapacity, hit_rate);
      results.emplace_back(base + "/cache_off", off_ns);
      results.emplace_back(base + "/cache_on", on_ns);
      // Stored as percent: the JSON writer keeps two decimals, too coarse
      // for a 0..1 fraction gated at 0.90.
      results.emplace_back("hitrate/" + app.tag + "/" + scenario.tag,
                           100.0 * hit_rate);
      std::cout << base << ": off " << off_ns << " ns/pkt, on " << on_ns
                << " ns/pkt (" << (on_ns > 0 ? off_ns / on_ns : 0.0)
                << "x, hit rate " << 100.0 * hit_rate << "%)\n";
    }
  }

  auto metadata = ofmtl::bench::common_metadata();
  metadata.emplace_back("batch_size", std::to_string(kBatch));
  metadata.emplace_back("stream_packets", std::to_string(kStreamPackets));
  metadata.emplace_back("in_flight_batches", std::to_string(kInFlight));
  metadata.emplace_back("cache_capacity", std::to_string(kCacheCapacity));
  metadata.emplace_back("warmup_ms", std::to_string(kWarmup.count()));
  metadata.emplace_back("measure_ms", std::to_string(kMeasure.count()));
  ofmtl::bench::write_bench_json("flow_cache", "ns_per_packet", results,
                                 metadata);
  return 0;
}
