// Fig. 5 reproduction: CPU clock cycles required for algorithm update, per
// filter, using the original (label-less, per-rule duplicated) files vs the
// optimized label-method files. Two cycles per update word (Section V.B).
// The paper's headline: 56.92% fewer cycles on average with labels.
#include <iostream>

#include "bench_common.hpp"
#include "core/builder.hpp"
#include "core/update_engine.hpp"
#include "workload/calibration.hpp"

namespace {

using namespace ofmtl;

double run_app(workload::FilterApp app, const std::string& heading) {
  bench::print_heading(heading);
  stats::Table table({"Flow Filter", "Original cycles", "Label cycles",
                      "Reduction %", "Full-table reduction %"});
  double reduction_sum = 0;
  std::size_t rows = 0;
  for (std::size_t i = 0; i < workload::kFilterCount; ++i) {
    const auto name = app == workload::FilterApp::kMacLearning
                          ? workload::kMacTargets[i].name
                          : workload::kRoutingTargets[i].name;
    const auto set = workload::generate_filterset(app, name);
    const auto spec = build_app(set, TableLayout::kPerFieldTables);
    const auto pipeline = compile_app(spec);
    // The figure's headline scope: the lookup algorithms themselves.
    const auto cost = update_cost(pipeline, UpdateScope::kAlgorithms);
    // Secondary scope: algorithms + index stages + action tables, whose
    // per-rule records shrink the relative saving.
    const auto full = update_cost(pipeline, UpdateScope::kAll);
    table.add(std::string(name), cost.original_cycles(),
              cost.optimized_cycles(), cost.reduction_percent(),
              full.reduction_percent());
    reduction_sum += cost.reduction_percent();
    ++rows;
  }
  table.print(std::cout);
  const double average = reduction_sum / static_cast<double>(rows);
  std::cout << "\nAverage algorithm-update reduction: " << average << " %\n";
  return average;
}

}  // namespace

int main() {
  const double mac = run_app(workload::FilterApp::kMacLearning,
                             "Fig. 5 - Update cycles, MAC learning filters");
  const double routing = run_app(workload::FilterApp::kRouting,
                                 "Fig. 5 - Update cycles, Routing filters");
  std::cout << "\nOverall average reduction: " << (mac + routing) / 2
            << " %  (paper: 56.92% fewer CPU clock cycles on average)\n";
  return 0;
}
