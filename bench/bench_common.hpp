// Shared helpers for the benchmark/reproduction binaries: filter-set
// construction, field-search building, wall-clock timing, and the
// machine-readable JSON results the perf-trajectory tooling consumes.
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/field_search.hpp"
#include "flow/flow_entry.hpp"
#include "stats/report.hpp"
#include "workload/stanford_synth.hpp"

namespace ofmtl::bench {

/// Build the single-field search machinery (tries / LUT / ranges) for one
/// field of a filter set — the unit the memory figures are measured on.
inline FieldSearch build_field_search(const FilterSet& set, FieldId field,
                                      FieldSearchConfig config = {}) {
  FieldSearch search(field, std::move(config));
  for (const auto& entry : set.entries) {
    (void)search.add_rule(entry.match.get(field));
  }
  search.seal();
  return search;
}

/// Wall-clock helper returning milliseconds.
template <typename Fn>
[[nodiscard]] double time_ms(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Average nanoseconds per call over `iterations` invocations.
template <typename Fn>
[[nodiscard]] double time_per_call_ns(std::size_t iterations, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iterations; ++i) fn(i);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(iterations);
}

inline void print_heading(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

/// Short git SHA of the checkout the binary runs inside, "unknown" when git
/// or the repository is unavailable (the build dir lives inside the repo, so
/// this works from wherever the bench is launched).
[[nodiscard]] inline std::string git_sha() {
  std::string sha = "unknown";
  // --dirty so numbers measured from an uncommitted tree are never
  // attributed to the clean parent commit.
  if (FILE* pipe = ::popen(
          "git describe --always --abbrev=12 --dirty 2>/dev/null", "r")) {
    char buffer[64];
    if (::fgets(buffer, sizeof buffer, pipe) != nullptr) {
      sha.assign(buffer);
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
        sha.pop_back();
      }
    }
    ::pclose(pipe);
    if (sha.empty()) sha = "unknown";
  }
  return sha;
}

/// Run metadata attached to every bench JSON so trajectory comparisons are
/// apples-to-apples: which commit, how many iterations, what batch size.
using BenchMetadata = std::vector<std::pair<std::string, std::string>>;

/// The metadata keys every bench shares; benches append their own (batch
/// size, warm-up, worker counts, ...).
[[nodiscard]] inline BenchMetadata common_metadata() {
  return {{"git_sha", git_sha()},
          {"hardware_threads",
           std::to_string(std::thread::hardware_concurrency())}};
}

/// Emit a flat metric map as `BENCH_<bench>.json` next to the binary:
/// {"bench": ..., "unit": ..., "metadata": {...}, "results": {name: value}}.
/// One file per bench binary, so successive PRs can diff perf trajectories
/// mechanically.
inline void write_bench_json(
    const std::string& bench, const std::string& unit,
    const std::vector<std::pair<std::string, double>>& results,
    const BenchMetadata& metadata = {}) {
  const std::string path = "BENCH_" + bench + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: could not open " << path << " for writing\n";
    return;
  }
  out << "{\n  \"bench\": \"" << bench << "\",\n  \"unit\": \"" << unit
      << "\",\n";
  out << "  \"metadata\": {\n";
  for (std::size_t i = 0; i < metadata.size(); ++i) {
    out << "    \"" << metadata[i].first << "\": \"" << metadata[i].second
        << "\"" << (i + 1 < metadata.size() ? ",\n" : "\n");
  }
  out << "  },\n  \"results\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out << "    \"" << results[i].first << "\": " << std::fixed
        << std::setprecision(2) << results[i].second
        << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "  }\n}\n";
  if (out.flush(); !out) {
    std::cerr << "error: failed writing " << path << "\n";
    return;
  }
  std::cout << "wrote " << path << "\n";
}

}  // namespace ofmtl::bench
