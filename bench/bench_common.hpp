// Shared helpers for the benchmark/reproduction binaries: filter-set
// construction, field-search building, and wall-clock timing.
#pragma once

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "core/field_search.hpp"
#include "flow/flow_entry.hpp"
#include "stats/report.hpp"
#include "workload/stanford_synth.hpp"

namespace ofmtl::bench {

/// Build the single-field search machinery (tries / LUT / ranges) for one
/// field of a filter set — the unit the memory figures are measured on.
inline FieldSearch build_field_search(const FilterSet& set, FieldId field,
                                      FieldSearchConfig config = {}) {
  FieldSearch search(field, std::move(config));
  for (const auto& entry : set.entries) {
    (void)search.add_rule(entry.match.get(field));
  }
  search.seal();
  return search;
}

/// Wall-clock helper returning milliseconds.
template <typename Fn>
[[nodiscard]] double time_ms(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Average nanoseconds per call over `iterations` invocations.
template <typename Fn>
[[nodiscard]] double time_per_call_ns(std::size_t iterations, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iterations; ++i) fn(i);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(iterations);
}

inline void print_heading(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace ofmtl::bench
