// Shared helpers for the benchmark/reproduction binaries: filter-set
// construction, field-search building, wall-clock timing, and the
// machine-readable JSON results the perf-trajectory tooling consumes.
#pragma once

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/field_search.hpp"
#include "flow/flow_entry.hpp"
#include "stats/report.hpp"
#include "workload/stanford_synth.hpp"

namespace ofmtl::bench {

/// Build the single-field search machinery (tries / LUT / ranges) for one
/// field of a filter set — the unit the memory figures are measured on.
inline FieldSearch build_field_search(const FilterSet& set, FieldId field,
                                      FieldSearchConfig config = {}) {
  FieldSearch search(field, std::move(config));
  for (const auto& entry : set.entries) {
    (void)search.add_rule(entry.match.get(field));
  }
  search.seal();
  return search;
}

/// Wall-clock helper returning milliseconds.
template <typename Fn>
[[nodiscard]] double time_ms(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Average nanoseconds per call over `iterations` invocations.
template <typename Fn>
[[nodiscard]] double time_per_call_ns(std::size_t iterations, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iterations; ++i) fn(i);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(iterations);
}

inline void print_heading(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

/// Emit a flat metric map as `BENCH_<bench>.json` next to the binary:
/// {"bench": ..., "unit": ..., "results": {name: value, ...}}. One file per
/// bench binary, so successive PRs can diff perf trajectories mechanically.
inline void write_bench_json(
    const std::string& bench, const std::string& unit,
    const std::vector<std::pair<std::string, double>>& results) {
  const std::string path = "BENCH_" + bench + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: could not open " << path << " for writing\n";
    return;
  }
  out << "{\n  \"bench\": \"" << bench << "\",\n  \"unit\": \"" << unit
      << "\",\n  \"results\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out << "    \"" << results[i].first << "\": " << std::fixed
        << std::setprecision(2) << results[i].second
        << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "  }\n}\n";
  if (out.flush(); !out) {
    std::cerr << "error: failed writing " << path << "\n";
    return;
  }
  std::cout << "wrote " << path << "\n";
}

}  // namespace ofmtl::bench
