// Offline trace decoder: OFTRACE1 binary dump -> Perfetto JSON + tail stats.
//
//   trace_export FILE.oftrace [-o FILE.json] [--summary]
//     Decode a raw trace written by `trace_replay run --trace-raw` (or any
//     obs::save_trace_dump caller) and render chrome://tracing JSON to -o
//     (stdout when omitted). --summary instead prints per-slice latency
//     distributions (count, p50/p99/p99.9, mean) derived through
//     obs::LogHistogram — with -o, both are produced.
//
// Splitting record+decode keeps the recording side allocation-light: a run
// dumps 16-byte records and exits; everything human-facing happens here.
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/tracer.hpp"

namespace {

using namespace ofmtl;

[[noreturn]] void usage(const std::string& error = {}) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage:\n"
               "  trace_export FILE.oftrace [-o FILE.json] [--summary]\n"
               "decodes an OFTRACE1 dump into chrome://tracing / Perfetto\n"
               "JSON (stdout unless -o); --summary prints per-slice latency\n"
               "histograms (p50/p99/p99.9) instead of / in addition to it.\n";
  std::exit(2);
}

struct SlicePair {
  const char* name;
  obs::TraceEvent begin;
  obs::TraceEvent end;
};

constexpr SlicePair kSlices[] = {
    {"batch", obs::TraceEvent::kBatchBegin, obs::TraceEvent::kBatchEnd},
    {"stage_walk", obs::TraceEvent::kStageBegin, obs::TraceEvent::kStageEnd},
    {"publish", obs::TraceEvent::kPublishBegin, obs::TraceEvent::kPublishEnd},
    {"replay_pass", obs::TraceEvent::kReplayPassBegin,
     obs::TraceEvent::kReplayPassEnd},
    {"ofp_apply", obs::TraceEvent::kOfpApplyBegin,
     obs::TraceEvent::kOfpApplyEnd},
};

void print_summary(std::ostream& out, const obs::TraceDump& dump) {
  std::uint64_t records = 0, dropped = 0;
  for (const auto& thread : dump.threads) {
    records += thread.records.size();
    dropped += thread.dropped;
  }
  out << dump.threads.size() << " thread(s), " << records << " records, "
      << dropped << " overwritten\n";
  for (const auto& thread : dump.threads) {
    out << "  tid " << thread.tid << " (" << thread.name << "): "
        << thread.records.size() << " records, " << thread.dropped
        << " overwritten\n";
  }
  out << "slice latencies (ns):\n";
  for (const auto& slice : kSlices) {
    const auto histogram =
        obs::slice_latency_histogram(dump, slice.begin, slice.end,
                                     /*per_payload_unit=*/false);
    if (histogram.total() == 0) continue;
    out << "  " << std::setw(12) << slice.name << ": n=" << histogram.total()
        << " p50=" << histogram.quantile(0.50)
        << " p99=" << histogram.quantile(0.99)
        << " p99.9=" << histogram.quantile(0.999)
        << " mean=" << histogram.mean() << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string input, output;
  bool summary = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto& arg = args[i];
    if (arg == "-o" || arg == "--out") {
      if (++i >= args.size()) usage(arg + " needs a value");
      output = args[i];
    } else if (arg == "--summary") {
      summary = true;
    } else if (!arg.empty() && arg[0] != '-' && input.empty()) {
      input = arg;
    } else {
      usage("unknown flag '" + arg + "'");
    }
  }
  if (input.empty()) usage("missing FILE.oftrace input");

  try {
    const obs::TraceDump dump = obs::load_trace_dump(input);
    if (!output.empty()) {
      std::ofstream out(output);
      if (!out) {
        std::cerr << "error: cannot open " << output << "\n";
        return 1;
      }
      obs::write_perfetto_json(out, dump);
      if (out.flush(); !out) {
        std::cerr << "error: write failed: " << output << "\n";
        return 1;
      }
      std::cerr << "wrote " << output << "\n";
    } else if (!summary) {
      obs::write_perfetto_json(std::cout, dump);
    }
    if (summary) print_summary(std::cout, dump);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
