// Offline trace decoder: OFTRACE1 binary dump -> Perfetto JSON + tail stats.
//
//   trace_export FILE.oftrace [-o FILE.json] [--summary]
//     Decode a raw trace written by `trace_replay run --trace-raw` (or any
//     obs::save_trace_dump caller) and render chrome://tracing JSON to -o
//     (stdout when omitted). --summary instead prints per-slice latency
//     distributions (count, p50/p99/p99.9, mean) derived through
//     obs::LogHistogram — with -o, both are produced. The summary also
//     surfaces per-ring overwrite loss (`dropped`) and the decode-skipped
//     prefix, so silent history truncation is never invisible.
//
//   trace_export --merge A.oftrace B.oftrace [...] [-o FILE.json]
//     Render several dumps — typically a controller process and a switch
//     process — on ONE timeline. Each process's monotonic clock is aligned
//     through the wall-clock half of its kTimeSync anchor pairs, and each
//     gets its own pid + process_name track in the output.
//
// Splitting record+decode keeps the recording side allocation-light: a run
// dumps 16-byte records and exits; everything human-facing happens here.
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/tracer.hpp"

namespace {

using namespace ofmtl;

[[noreturn]] void usage(const std::string& error = {}) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage:\n"
               "  trace_export FILE.oftrace [-o FILE.json] [--summary]\n"
               "  trace_export --merge A.oftrace B.oftrace [...] [-o FILE]\n"
               "decodes OFTRACE1 dumps into chrome://tracing / Perfetto\n"
               "JSON (stdout unless -o); --summary prints per-slice latency\n"
               "histograms (p50/p99/p99.9) plus per-ring dropped/skipped\n"
               "counts; --merge aligns multiple processes on one timeline\n"
               "via their wall-clock anchors.\n";
  std::exit(2);
}

struct SlicePair {
  const char* name;
  obs::TraceEvent begin;
  obs::TraceEvent end;
};

constexpr SlicePair kSlices[] = {
    {"batch", obs::TraceEvent::kBatchBegin, obs::TraceEvent::kBatchEnd},
    {"stage_walk", obs::TraceEvent::kStageBegin, obs::TraceEvent::kStageEnd},
    {"publish", obs::TraceEvent::kPublishBegin, obs::TraceEvent::kPublishEnd},
    {"replay_pass", obs::TraceEvent::kReplayPassBegin,
     obs::TraceEvent::kReplayPassEnd},
    {"ofp_ingest", obs::TraceEvent::kOfpReadBegin,
     obs::TraceEvent::kOfpReadEnd},
    {"ofp_decode", obs::TraceEvent::kOfpDecodeBegin,
     obs::TraceEvent::kOfpDecodeEnd},
    {"ofp_apply", obs::TraceEvent::kOfpApplyBegin,
     obs::TraceEvent::kOfpApplyEnd},
    {"ofp_barrier", obs::TraceEvent::kOfpBarrierBegin,
     obs::TraceEvent::kOfpBarrierEnd},
};

void print_summary(std::ostream& out, const obs::TraceDump& dump) {
  std::uint64_t records = 0, dropped = 0, skipped = 0;
  std::vector<obs::DecodeStats> stats(dump.threads.size());
  for (std::size_t t = 0; t < dump.threads.size(); ++t) {
    (void)obs::decode_thread(dump.threads[t], &stats[t]);
    records += dump.threads[t].records.size();
    dropped += dump.threads[t].dropped;
    skipped += stats[t].skipped_prefix;
  }
  out << "process " << (dump.process_name.empty() ? "?" : dump.process_name)
      << " (pid " << dump.pid << "): " << dump.threads.size()
      << " thread(s), " << records << " records, " << dropped
      << " overwritten, " << skipped << " decode-skipped\n";
  for (std::size_t t = 0; t < dump.threads.size(); ++t) {
    const auto& thread = dump.threads[t];
    out << "  tid " << thread.tid << " (" << thread.name << "): "
        << thread.records.size() << " records, " << thread.dropped
        << " overwritten, " << stats[t].skipped_prefix << " decode-skipped";
    if (stats[t].has_wall_offset) {
      out << ", wall-mono offset " << stats[t].wall_minus_mono_ns << " ns";
    }
    out << "\n";
  }
  out << "slice latencies (ns):\n";
  for (const auto& slice : kSlices) {
    const auto histogram =
        obs::slice_latency_histogram(dump, slice.begin, slice.end,
                                     /*per_payload_unit=*/false);
    if (histogram.total() == 0) continue;
    out << "  " << std::setw(12) << slice.name << ": n=" << histogram.total()
        << " p50=" << histogram.quantile(0.50)
        << " p99=" << histogram.quantile(0.99)
        << " p99.9=" << histogram.quantile(0.999)
        << " mean=" << histogram.mean() << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> inputs;
  std::string output;
  bool summary = false;
  bool merge = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto& arg = args[i];
    if (arg == "-o" || arg == "--out") {
      if (++i >= args.size()) usage(arg + " needs a value");
      output = args[i];
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--merge") {
      merge = true;
    } else if (!arg.empty() && arg[0] != '-') {
      inputs.push_back(arg);
    } else {
      usage("unknown flag '" + arg + "'");
    }
  }
  if (inputs.empty()) usage("missing FILE.oftrace input");
  if (!merge && inputs.size() > 1) usage("multiple inputs need --merge");
  if (merge && inputs.size() < 2) usage("--merge needs at least two inputs");

  std::vector<obs::TraceDump> dumps;
  for (const auto& input : inputs) {
    obs::TraceDump dump;
    const auto status = obs::load_trace_dump(input, dump);
    if (status != obs::TraceLoadStatus::kOk) {
      std::cerr << "error: " << input << ": "
                << obs::trace_load_status_name(status) << "\n";
      return 1;
    }
    dumps.push_back(std::move(dump));
  }

  const auto render = [&](std::ostream& out) {
    if (merge) {
      obs::write_perfetto_json(out, dumps);
    } else {
      obs::write_perfetto_json(out, dumps.front());
    }
  };
  if (!output.empty()) {
    std::ofstream out(output);
    if (!out) {
      std::cerr << "error: cannot open " << output << "\n";
      return 1;
    }
    render(out);
    if (out.flush(); !out) {
      std::cerr << "error: write failed: " << output << "\n";
      return 1;
    }
    std::cerr << "wrote " << output << "\n";
  } else if (!summary) {
    render(std::cout);
  }
  if (summary) {
    for (const auto& dump : dumps) print_summary(std::cout, dump);
  }
  return 0;
}
