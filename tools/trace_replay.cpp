// Trace replay CLI: the bytes-on-disk → classified-actions loop as a tool.
//
//   trace_replay synth --app mac_gozb --out trace.pcap [--flows 4096]
//       [--packets 65536] [--zipf 1.1] [--seed 99] [--nsec] [--swapped]
//     Generate a filter-set-driven packet stream (Zipf-skewed flow reuse
//     over a synthetic flow pool), wire-canonicalize it, and write a
//     classic pcap capture.
//
//   trace_replay run trace.pcap --app mac_gozb [--in-port auto|N]
//       [--workers 1] [--cache 0] [--loops 1] [--batch 256]
//       [--in-flight 4] [--pace PPS] [--verify]
//       [--trace FILE.json] [--trace-raw FILE.oftrace]
//     Build the app's tables, ingest the capture through the batched wire
//     parser, replay it into the parallel runtime, and report ns/packet,
//     throughput, verdict mix, and the flow-cache hit rate. --verify
//     re-classifies every parsed header through the sequential pipeline
//     oracle and demands bitwise-identical results (exit 1 on mismatch).
//     --trace records the run through the per-worker trace rings and writes
//     chrome://tracing / Perfetto JSON (open in ui.perfetto.dev);
//     --trace-raw writes the compact OFTRACE1 binary for tools/trace_export
//     to decode later.
//
// Apps are named <app>_<router> over the calibrated Stanford sets, e.g.
// routing_yoza or mac_gozb. --in-port auto (the default) picks the first
// ingress port the filter set matches on, so routing traces walk the full
// two-table pipeline instead of missing at table 0.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/builder.hpp"
#include "net/packet.hpp"
#include "obs/export.hpp"
#include "obs/tracer.hpp"
#include "runtime/runtime.hpp"
#include "trace/pcap.hpp"
#include "trace/replay.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_export.hpp"
#include "workload/trace_gen.hpp"
#include "workload/zipf.hpp"

namespace {

using namespace ofmtl;

[[noreturn]] void usage(const std::string& error = {}) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  trace_replay synth --app <app>_<router> --out FILE.pcap\n"
      "      [--flows N] [--packets N] [--zipf S] [--seed N] [--nsec]"
      " [--swapped]\n"
      "  trace_replay run FILE.pcap --app <app>_<router> [--in-port auto|N]\n"
      "      [--workers N] [--cache SLOTS] [--loops N] [--batch N]\n"
      "      [--in-flight N] [--pace PPS] [--verify]\n"
      "      [--trace FILE.json] [--trace-raw FILE.oftrace]\n"
      "apps: routing_<router> | mac_<router>  (router: bbra ... yozb)\n";
  std::exit(2);
}

struct App {
  std::string tag;
  FilterSet set;
  MultiTableLookup tables;
};

App make_app(const std::string& tag) {
  const auto underscore = tag.find('_');
  if (underscore == std::string::npos) usage("bad --app '" + tag + "'");
  const std::string_view kind{tag.data(), underscore};
  const std::string_view router{tag.data() + underscore + 1};
  workload::FilterApp app;
  if (kind == "routing") {
    app = workload::FilterApp::kRouting;
  } else if (kind == "mac") {
    app = workload::FilterApp::kMacLearning;
  } else {
    usage("unknown app kind '" + std::string(kind) + "'");
  }
  try {
    auto set = workload::generate_filterset(app, router);
    auto tables = compile_app(build_app(set, TableLayout::kPerFieldTables));
    return App{tag, std::move(set), std::move(tables)};
  } catch (const std::exception& e) {
    usage(std::string("cannot build app: ") + e.what());
  }
}

std::uint64_t parse_u64(const std::string& text, const char* flag) {
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    usage(std::string("bad value for ") + flag + ": '" + text + "'");
  }
}

double parse_double(const std::string& text, const char* flag) {
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    usage(std::string("bad value for ") + flag + ": '" + text + "'");
  }
}

int cmd_synth(const std::vector<std::string>& args) {
  std::string app_tag, out_path;
  std::size_t flows = 4096, packets = 65536;
  double zipf_s = 1.1;
  std::uint64_t seed = 99;
  workload::TraceExportConfig config;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto& arg = args[i];
    const auto value = [&]() -> const std::string& {
      if (++i >= args.size()) usage(arg + " needs a value");
      return args[i];
    };
    if (arg == "--app") app_tag = value();
    else if (arg == "--out") out_path = value();
    else if (arg == "--flows") flows = parse_u64(value(), "--flows");
    else if (arg == "--packets") packets = parse_u64(value(), "--packets");
    else if (arg == "--zipf") zipf_s = parse_double(value(), "--zipf");
    else if (arg == "--seed") seed = parse_u64(value(), "--seed");
    else if (arg == "--nsec") config.pcap.nanosecond = true;
    else if (arg == "--swapped") config.pcap.byte_swapped = true;
    else usage("unknown synth flag '" + arg + "'");
  }
  if (app_tag.empty() || out_path.empty()) usage("synth needs --app and --out");
  if (flows == 0 || packets == 0) usage("--flows/--packets must be nonzero");

  const App app = make_app(app_tag);
  const auto pool = workload::generate_trace(
      app.set, {.packets = flows, .hit_ratio = 0.9, .seed = 123});
  workload::ZipfSampler sampler(pool.size(), zipf_s, seed);
  std::vector<PacketHeader> stream;
  stream.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) stream.push_back(pool[sampler.next()]);

  const auto writer = workload::export_trace(stream, config);
  writer.save(out_path);
  std::cout << "wrote " << out_path << ": " << writer.record_count()
            << " records, " << writer.buffer().size() << " bytes ("
            << app.tag << ", " << flows << " flows, zipf s=" << zipf_s
            << ")\n";
  return 0;
}

int cmd_run(const std::vector<std::string>& args) {
  std::string pcap_path, app_tag, in_port_text = "auto";
  std::string trace_json_path, trace_raw_path;
  runtime::RuntimeConfig rt_config;
  trace::ReplayConfig replay_config;
  bool verify = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto& arg = args[i];
    const auto value = [&]() -> const std::string& {
      if (++i >= args.size()) usage(arg + " needs a value");
      return args[i];
    };
    if (arg == "--app") app_tag = value();
    else if (arg == "--in-port") in_port_text = value();
    else if (arg == "--workers") rt_config.workers = parse_u64(value(), "--workers");
    else if (arg == "--cache")
      rt_config.flow_cache_capacity = parse_u64(value(), "--cache");
    else if (arg == "--loops") replay_config.loops = parse_u64(value(), "--loops");
    else if (arg == "--batch") replay_config.batch = parse_u64(value(), "--batch");
    else if (arg == "--in-flight")
      replay_config.in_flight = parse_u64(value(), "--in-flight");
    else if (arg == "--pace") replay_config.pace_pps = parse_double(value(), "--pace");
    else if (arg == "--verify") verify = true;
    else if (arg == "--trace") trace_json_path = value();
    else if (arg == "--trace-raw") trace_raw_path = value();
    else if (!arg.empty() && arg[0] != '-' && pcap_path.empty()) pcap_path = arg;
    else usage("unknown run flag '" + arg + "'");
  }
  if (pcap_path.empty() || app_tag.empty()) usage("run needs FILE.pcap and --app");

  App app = make_app(app_tag);
  std::uint32_t in_port = 0;
  if (in_port_text == "auto") {
    in_port = workload::capture_in_port(app.set);
  } else {
    in_port = static_cast<std::uint32_t>(parse_u64(in_port_text, "--in-port"));
  }

  auto reader = trace::PcapReader::open(pcap_path);
  trace::TraceReplayer replayer(reader, in_port);
  std::cout << pcap_path << ": " << replayer.frames() << " frames ("
            << (reader.nanosecond() ? "nsec" : "usec")
            << (reader.byte_swapped() ? ", byte-swapped" : "") << "), "
            << replayer.malformed_frames() << " malformed"
            << (reader.truncated() ? ", truncated tail skipped" : "")
            << "; in_port " << in_port << "\n";
  if (replayer.headers().empty()) {
    std::cerr << "error: no replayable packets\n";
    return 1;
  }

  // Keep a sequential oracle for --verify before the runtime takes the
  // tables (a full table clone — skip it when nothing will execute it).
  std::optional<MultiTableLookup> oracle;
  if (verify) oracle = app.tables.clone();
  rt_config.queue_capacity = 2 * replay_config.in_flight;
  const bool tracing = !trace_json_path.empty() || !trace_raw_path.empty();
  if (tracing) {
    if (!obs::kInstrumentationCompiled) {
      std::cerr << "warning: built with -DOFMTL_TRACE=OFF -- the trace "
                   "will be empty\n";
    }
    obs::set_thread_name("replay_driver");
    obs::start_tracing();
  }
  runtime::ParallelRuntime rt(std::move(app.tables), rt_config);
  std::vector<ExecutionResult> results(replayer.headers().size());
  const auto stats = replayer.run(rt, results, replay_config);
  const auto worker_stats = rt.aggregate_stats();
  rt.stop();
  if (tracing) {
    obs::stop_tracing();
    const auto dump = obs::collect_tracing();
    std::uint64_t records = 0, dropped = 0;
    for (const auto& thread : dump.threads) {
      records += thread.records.size();
      dropped += thread.dropped;
    }
    if (!trace_raw_path.empty()) {
      obs::save_trace_dump(trace_raw_path, dump);
      std::cout << "trace: wrote " << trace_raw_path << " (OFTRACE1)\n";
    }
    if (!trace_json_path.empty()) {
      std::ofstream out(trace_json_path);
      if (!out) {
        std::cerr << "error: cannot open " << trace_json_path << "\n";
        return 1;
      }
      obs::write_perfetto_json(out, dump);
      if (out.flush(); !out) {
        std::cerr << "error: write failed: " << trace_json_path << "\n";
        return 1;
      }
      std::cout << "trace: wrote " << trace_json_path
                << " (load in ui.perfetto.dev or chrome://tracing)\n";
    }
    std::cout << "trace: " << dump.threads.size() << " thread(s), " << records
              << " records, " << dropped << " overwritten\n";
  }

  std::uint64_t forwarded = 0, dropped = 0, to_controller = 0;
  for (const auto& result : results) {
    switch (result.verdict) {
      case Verdict::kForwarded: ++forwarded; break;
      case Verdict::kDropped: ++dropped; break;
      case Verdict::kToController: ++to_controller; break;
    }
  }
  std::cout << "replayed " << stats.packets << " packets ("
            << replay_config.loops << " loop(s), " << stats.batches
            << " batches) in " << stats.elapsed_ns / 1e6 << " ms\n"
            << "  " << stats.ns_per_packet() << " ns/packet, "
            << stats.packets_per_sec() / 1e6 << " Mpps ("
            << rt_config.workers << " worker(s), backpressure spins "
            << stats.backpressure_spins << ", pace misses "
            << stats.pace_misses << ")\n"
            << "  verdicts per pass: " << forwarded << " forwarded, "
            << dropped << " dropped, " << to_controller << " to-controller\n";
  if (rt_config.flow_cache_capacity > 0) {
    const auto probes = worker_stats.cache_hits + worker_stats.cache_misses;
    std::cout << "  flow cache: "
              << (probes > 0 ? 100.0 * static_cast<double>(worker_stats.cache_hits) /
                                   static_cast<double>(probes)
                             : 0.0)
              << "% hit rate (" << worker_stats.cache_hits << " hits, "
              << worker_stats.cache_misses << " misses, "
              << worker_stats.cache_evictions << " evictions)\n";
  }

  if (verify) {
    const auto& headers = replayer.headers();
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < headers.size(); ++i) {
      if (results[i] != oracle->execute(headers[i])) ++mismatches;
    }
    if (mismatches != 0) {
      std::cerr << "VERIFY FAIL: " << mismatches << " of " << headers.size()
                << " replayed results differ from the sequential oracle\n";
      return 1;
    }
    std::cout << "verify: " << headers.size()
              << " replayed results bitwise-identical to the sequential "
                 "pipeline oracle\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();
  const std::string command = args.front();
  args.erase(args.begin());
  if (command == "synth") return cmd_synth(args);
  if (command == "run") return cmd_run(args);
  usage("unknown command '" + command + "'");
}
