// OFP control-plane soak: N concurrent scripted controllers fire M flow-mods
// each at a live OfpServer through seeded fault injection — fragmented
// writes, byte-at-a-time delivery, mid-message RSTs with reconnect-and-
// replay — and the resulting classifier state must converge BITWISE to an
// oracle built by applying the same logical mods sequentially.
//
// Convergence protocol (what makes exact assertions possible under faults):
//   - each session owns a disjoint flow-entry id range, so replays cannot
//     collide across sessions;
//   - mods go out in small chunks, each fenced by an echo barrier; the
//     session answers frames in order, so the echo reply proves every mod
//     in the chunk was applied — a checkpoint;
//   - on connection loss, only the unconfirmed chunk is replayed — duplicate
//     adds / re-deletes earn ERROR replies but leave the same final state
//     (idempotent replay), and checkpointing keeps forward progress even at
//     RST rates where a full-phase replay would never finish.
//
//   ofp_soak [--sessions 4] [--mods 200] [--fault light|heavy|none]
//            [--seed 1] [--json]
//   ofp_soak --failover [--mods 200] [--kill-every 5] [--fault ...]
//            [--seed 1] [--json]
//
// --failover runs the controller-failover scenario instead: a master and a
// standby slave, with a seeded chaos scheduler killing the master mid-batch
// every N chunks. Each kill must promote the standby (unsolicited
// ROLE_REPLY), resync the flow table against the survivor's confirmed
// intent (stale uncheckpointed entries GC'd, lost entries re-sent), and
// continue from the checkpoint — converging bitwise with zero dropped mods.
//
// Exit 1 on any divergence from the oracle or any session that never
// converged. --json writes BENCH_ofp_soak.json (flow-mods/sec plus the two
// zero-ceiling robustness metrics soak/desyncs and soak/dropped_sessions),
// or BENCH_ofp_failover.json in --failover mode (failover/desyncs and
// failover/dropped_mods zero-gated, promotions/resyncs counted).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "../bench/bench_common.hpp"
#include "ofp/server/flow_mod_sink.hpp"
#include "ofp/server/server.hpp"
#include "ofp/testing/chaos.hpp"
#include "ofp/testing/fault_injection.hpp"
#include "runtime/snapshot.hpp"
#include "workload/rng.hpp"

namespace {

using namespace ofmtl;
using namespace ofmtl::ofp;
using server::apply_mods;
using server::OfpServer;
using server::PendingFlowMod;
using server::ServerConfig;
using testing::FaultLevel;
using testing::make_fault;
using testing::ScriptedController;

struct Options {
  std::uint32_t sessions = 4;
  std::uint32_t mods = 200;  // adds per session; every 3rd is deleted after
  FaultLevel fault = FaultLevel::kLight;
  std::uint64_t seed = 1;
  bool json = false;
  bool failover = false;
  std::uint32_t kill_every = 5;  ///< kill the master every N chunks
  int stats_port = -1;  ///< -1 off, 0 ephemeral (bound port printed)
  std::uint32_t linger_ms = 0;  ///< keep the server up after the soak, so
                                ///< an external scraper can hit the stats
                                ///< endpoint (CI smoke)
};

[[noreturn]] void usage_and_exit() {
  std::cerr << "usage: ofp_soak [--sessions N] [--mods M] "
               "[--fault light|heavy|none] [--seed S] [--json]\n"
               "       ofp_soak --failover [--mods M] [--kill-every N] "
               "[--fault light|heavy|none] [--seed S] [--json]\n"
               "common: [--stats-port P] [--linger-ms T]  (P=0 binds an\n"
               "ephemeral stats port, printed as STATS_PORT=<n>; T keeps\n"
               "the server up after the soak for external scrapes)\n";
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit();
      return argv[++i];
    };
    if (arg == "--sessions") {
      opt.sessions = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--mods") {
      opt.mods = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--fault") {
      const auto v = value();
      if (v == "light") opt.fault = FaultLevel::kLight;
      else if (v == "heavy") opt.fault = FaultLevel::kHeavy;
      else if (v == "none") opt.fault = FaultLevel::kNone;
      else usage_and_exit();
    } else if (arg == "--seed") {
      opt.seed = std::stoull(value());
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--failover") {
      opt.failover = true;
    } else if (arg == "--kill-every") {
      opt.kill_every = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--stats-port") {
      opt.stats_port = static_cast<int>(std::stol(value()));
    } else if (arg == "--linger-ms") {
      opt.linger_ms = static_cast<std::uint32_t>(std::stoul(value()));
    } else {
      usage_and_exit();
    }
  }
  // kill_every == 1 is degenerate: every replay attempt is killed too, so no
  // chunk can ever confirm.
  if (opt.sessions == 0 || opt.mods == 0 || opt.kill_every < 2) {
    usage_and_exit();
  }
  return opt;
}

MultiTableLookup make_tables() {
  MultiTableLookup tables;
  tables.add_table(LookupTable({FieldId::kEthDst}, {}));
  return tables;
}

/// Deterministic cookie per flow id — what lets a failed-over controller
/// describe its full-table intent to the resync protocol without having
/// stored anything but the id range it owns.
constexpr std::uint64_t cookie_of(std::uint32_t id) {
  return 0x9E3779B97F4A7C15ULL * (std::uint64_t{id} + 1);
}

FlowModMsg make_mod(std::uint32_t id, FlowModCommand command) {
  FlowModMsg mod;
  mod.command = command;
  mod.table_id = 0;
  mod.cookie = cookie_of(id);
  mod.entry.id = id;
  mod.entry.priority = static_cast<std::uint16_t>(1 + id % 8);
  mod.entry.match.set(FieldId::kEthDst, FieldMatch::exact(std::uint64_t{id}));
  mod.entry.instructions = output_instruction(id % 1024);
  return mod;
}

bool deleted_after_add(std::uint32_t id) { return id % 3 == 0; }

/// One controller session's life: adds (phase 1), deletes of the subset
/// (phase 2). Mods go out in small chunks, each fenced by an echo barrier —
/// a confirmed chunk is a checkpoint, so a connection loss replays only the
/// unconfirmed chunk (duplicate replays earn ERROR replies, state is
/// unchanged). Checkpointing is what guarantees forward progress even when
/// the per-frame RST probability makes a full-phase replay hopeless.
struct ControllerOutcome {
  bool converged = false;
  std::uint32_t reconnects = 0;
  std::size_t errors_seen = 0;
};

constexpr std::uint32_t kChunkMods = 16;

ControllerOutcome run_controller(std::uint16_t port, std::uint32_t base,
                                 const Options& opt, std::uint64_t seed) {
  workload::Rng rng(seed);
  ScriptedController controller;
  ControllerOutcome outcome;
  bool connected = false;

  // Deliver + confirm one chunk of ids, reconnecting and replaying until
  // the barrier proves it applied. False when attempts run out.
  int connect_fails = 0, send_fails = 0, barrier_fails = 0;
  const auto run_chunk = [&](std::span<const std::uint32_t> ids,
                             FlowModCommand command) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      if (!connected) {
        if (!controller.connect(port)) {
          // Refused connects are transient: an RST'd predecessor may not be
          // reaped yet, so the server can sit at its session cap for a poll
          // cycle. Back off instead of burning the budget in a tight loop.
          connect_fails++;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          continue;
        }
        connected = true;
        outcome.reconnects++;
      }
      bool alive = true;
      for (const auto id : ids) {
        const auto frame = encode({controller.next_xid(), make_mod(id, command)});
        if (!controller.send(frame, make_fault(rng, frame.size(), opt.fault))) {
          alive = false;
          send_fails++;
          break;
        }
      }
      if (alive) {
        const auto barrier = controller.barrier();
        outcome.errors_seen += barrier.errors_seen;
        if (barrier.ok) return true;
        barrier_fails++;
      }
      connected = false;  // transport died; replay this chunk on a new one
    }
    std::cerr << "ofp_soak: chunk gave up (connect_fails=" << connect_fails
              << " send_fails=" << send_fails
              << " barrier_fails=" << barrier_fails << ")\n";
    return false;
  };

  for (const auto command : {FlowModCommand::kAdd, FlowModCommand::kDelete}) {
    std::vector<std::uint32_t> ids;
    for (std::uint32_t i = 0; i < opt.mods; ++i) {
      const std::uint32_t id = base + i;
      if (command == FlowModCommand::kDelete && !deleted_after_add(id)) continue;
      ids.push_back(id);
    }
    for (std::size_t off = 0; off < ids.size(); off += kChunkMods) {
      const auto n = std::min<std::size_t>(kChunkMods, ids.size() - off);
      if (!run_chunk({ids.data() + off, n}, command)) return outcome;
    }
  }
  outcome.converged = true;
  if (outcome.reconnects > 0) outcome.reconnects--;  // first connect is free
  return outcome;
}

// --- failover scenario -----------------------------------------------------
//
// One master drives the same add/delete phases as the plain soak while a
// slave stands by; a seeded ChaosScheduler kills the master mid-batch every
// --kill-every chunks (plus whatever the byte-level fault plan RSTs on its
// own). Every death must produce, in order:
//   1. an unsolicited ROLE_REPLY promoting the standby (lowest-id slave),
//   2. a resync of the survivor's confirmed intent — entries the dead
//      master applied past its last checkpoint are GC'd (cookie-stamped
//      journal diff), entries the intent claims but the table lost are
//      reported missing and re-sent,
//   3. replay of the unconfirmed chunk through the new master.
// At the end the classifier must match the oracle bitwise AND a final
// full-intent resync audit must report nothing to delete and nothing
// missing (journal == digest == published table).
//
// Determinism boundary: the chaos decision stream (which chunks are killed,
// where frames are cut) replays bit-identically from --seed. How many mods
// of a partially delivered chunk the server applies before the RST lands is
// a real-TCP race, so per-run GC'd/restored counts may wobble — the
// convergence result may not: every seed must end bitwise-equal, zero drops.

/// Print the bound stats port (machine-readable, for the CI smoke) as soon
/// as the server is up, and hold the server open afterwards long enough for
/// an external scraper to hit the endpoint.
void announce_stats_port(const OfpServer& server, const Options& opt) {
  if (opt.stats_port < 0) return;
  std::cout << "STATS_PORT=" << server.stats_port() << std::endl;
}

void linger_after_soak(const Options& opt) {
  if (opt.linger_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.linger_ms));
  }
}

int run_failover(const Options& opt) {
  runtime::SnapshotClassifier classifier(make_tables());
  ServerConfig config;
  config.max_sessions = 16;
  config.session.echo_interval_ms = 30'000;  // the scenario drives echoes
  config.stats_port = opt.stats_port;
  OfpServer server(server::make_classifier_sink(classifier), config);
  if (!server.start()) {
    std::cerr << "ofp_soak: server failed to start\n";
    return 1;
  }
  announce_stats_port(server, opt);

  testing::ChaosProfile profile;
  profile.kill_every = opt.kill_every;
  profile.stall_p = 0.10;  // occasional short silences between chunks
  profile.max_stall_ms = 5;
  testing::ChaosScheduler chaos(opt.seed, profile);
  workload::Rng rng(opt.seed * 104729 + 17);

  std::uint64_t generation = 0;
  ScriptedController master;
  ScriptedController standby;

  // Connect (retrying refused connects: a freshly RST'd predecessor may not
  // be reaped yet) and claim `role` under a fresh generation.
  const auto connect_as = [&](ScriptedController& controller, Role role) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      if (!controller.connect(server.port())) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      const auto reply = controller.request_role(role, ++generation);
      if (reply.has_value() && reply->role == role) return true;
      controller.socket().close();
    }
    return false;
  };

  std::uint32_t promotions = 0;
  std::uint32_t resyncs = 0;
  std::uint32_t resync_deleted = 0;
  std::uint32_t resync_restored = 0;
  std::uint32_t kills = 0;
  std::size_t errors_seen = 0;
  // id -> cookie of every entry whose mod was CONFIRMED through an echo
  // barrier — the survivor's full-table intent. Nothing else survives a
  // master's death, by construction.
  std::unordered_map<std::uint32_t, std::uint64_t> confirmed;

  const auto intent_of = [&confirmed] {
    std::vector<ResyncEntry> intent;
    intent.reserve(confirmed.size());
    for (const auto& [id, cookie] : confirmed) {
      intent.push_back({0, id, cookie});
    }
    std::sort(intent.begin(), intent.end(),
              [](const ResyncEntry& a, const ResyncEntry& b) {
                return a.entry_id < b.entry_id;
              });
    return intent;
  };

  // The master just died: await the promotion notice on the standby, resync
  // it against the confirmed intent, re-add whatever the table lost, then
  // bring up a fresh standby for the next failure.
  const auto fail_over = [&]() {
    const auto notice = standby.await_promotion();
    if (!notice.has_value() || notice->role != Role::kMaster) return false;
    promotions++;
    const auto verdict = standby.resync(intent_of());
    if (!verdict.has_value()) return false;
    resyncs++;
    resync_deleted += verdict->deleted;
    // Re-apply mods the table lost: a partially applied delete chunk removed
    // entries the checkpointed intent still claims.
    for (const auto& entry : verdict->missing) {
      const auto frame = encode(
          {standby.next_xid(), make_mod(entry.entry_id, FlowModCommand::kAdd)});
      if (!standby.send(frame, {})) return false;
      resync_restored++;
    }
    if (!verdict->missing.empty() && !standby.barrier().ok) return false;
    master = std::move(standby);
    standby = ScriptedController{};
    return connect_as(standby, Role::kSlave);
  };

  // Deliver + confirm one chunk through the current master, failing over and
  // replaying from the checkpoint whenever the transport dies — whether the
  // chaos scheduler ordered the kill or the byte-level fault plan RST'd.
  const auto run_chunk = [&](std::span<const std::uint32_t> ids,
                             FlowModCommand command) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto decision = chaos.decide(testing::ChaosEdge::kChunkSent);
      // Mid-batch kill: deliver half the chunk, cut the next frame in the
      // middle, hard-RST.
      const std::size_t kill_at = decision.action == testing::ChaosAction::kKill
                                      ? ids.size() / 2
                                      : ids.size() + 1;
      bool alive = true;
      for (std::size_t i = 0; i < ids.size(); ++i) {
        const auto frame =
            encode({master.next_xid(), make_mod(ids[i], command)});
        if (i == kill_at) {
          testing::FrameFault cut;
          cut.cut = frame.size() / 2;
          (void)master.send(frame, cut);
          kills++;
          alive = false;
          break;
        }
        if (!master.send(frame, make_fault(rng, frame.size(), opt.fault))) {
          alive = false;
          break;
        }
      }
      if (alive && decision.action == testing::ChaosAction::kStall) {
        std::this_thread::sleep_for(std::chrono::milliseconds(decision.param_ms));
      }
      if (alive) {
        const auto barrier = master.barrier();
        errors_seen += barrier.errors_seen;
        if (barrier.ok) {
          // Checkpoint: the barrier proved every mod in the chunk applied.
          for (const auto id : ids) {
            if (command == FlowModCommand::kAdd) {
              confirmed[id] = cookie_of(id);
            } else {
              confirmed.erase(id);
            }
          }
          return true;
        }
      }
      if (!fail_over()) return false;
    }
    std::cerr << "ofp_soak: failover chunk gave up after 64 attempts\n";
    return false;
  };

  if (!connect_as(master, Role::kMaster) ||
      !connect_as(standby, Role::kSlave)) {
    std::cerr << "ofp_soak: failover bring-up failed\n";
    return 1;
  }

  const auto start = std::chrono::steady_clock::now();
  bool completed = true;
  for (const auto command : {FlowModCommand::kAdd, FlowModCommand::kDelete}) {
    if (!completed) break;
    std::vector<std::uint32_t> ids;
    for (std::uint32_t i = 0; i < opt.mods; ++i) {
      const std::uint32_t id = 1 + i;
      if (command == FlowModCommand::kDelete && !deleted_after_add(id)) continue;
      ids.push_back(id);
    }
    for (std::size_t off = 0; off < ids.size() && completed; off += kChunkMods) {
      const auto n = std::min<std::size_t>(kChunkMods, ids.size() - off);
      completed = run_chunk({ids.data() + off, n}, command);
    }
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::uint64_t desyncs = 0;
  if (!completed) desyncs++;  // an abandoned run can never claim convergence

  // Final audit: a full-intent resync must find nothing stale and nothing
  // missing — journal, digest, and published table all agree.
  if (completed) {
    const auto audit = master.resync(intent_of());
    if (!audit.has_value() || audit->deleted != 0 || !audit->missing.empty()) {
      std::cerr << "ofp_soak: final resync audit diverged (deleted="
                << (audit.has_value() ? audit->deleted : 0) << ", missing="
                << (audit.has_value() ? audit->missing.size() : 0) << ")\n";
      desyncs++;
    }
  }

  // Oracle + bitwise comparison, exactly as the plain soak does it.
  auto oracle = make_tables();
  for (int phase = 0; phase < 2; ++phase) {
    for (std::uint32_t i = 0; i < opt.mods; ++i) {
      const std::uint32_t id = 1 + i;
      if (phase == 1 && !deleted_after_add(id)) continue;
      std::vector<PendingFlowMod> one(1);
      one[0].xid = 1;
      one[0].mod = make_mod(id, phase == 0 ? FlowModCommand::kAdd
                                           : FlowModCommand::kDelete);
      std::vector<ErrorCode> result(1, ErrorCode::kNone);
      apply_mods(oracle, one, result);
      if (result[0] != ErrorCode::kNone) {
        std::cerr << "ofp_soak: oracle rejected mod id " << id << "\n";
        return 1;
      }
    }
  }
  std::uint64_t dropped_mods = 0;
  {
    const auto guard = classifier.acquire();
    for (std::uint32_t i = 0; i < opt.mods; ++i) {
      const std::uint32_t id = 1 + i;
      const bool want = oracle.contains_entry(0, id);
      const bool have = guard.tables().contains_entry(0, id);
      if (want != have) {
        desyncs++;
        if (want) dropped_mods++;  // an intended entry never made it
        continue;
      }
      PacketHeader probe;
      probe.set(FieldId::kEthDst, std::uint64_t{id});
      if (guard.tables().execute(probe) != oracle.execute(probe)) desyncs++;
    }
  }

  const auto stats = server.stats();
  // Linger while the server (and its stats endpoint) is still up, so a
  // scraper that just read STATS_PORT= has a window to pull /metrics.
  linger_after_soak(opt);
  server.stop();

  const double mods_per_sec =
      elapsed_s > 0 ? static_cast<double>(stats.flow_mods_ok +
                                          stats.flow_mods_failed) /
                          elapsed_s
                    : 0.0;
  std::cout << "ofp_soak --failover: mods=" << opt.mods << " kill_every="
            << opt.kill_every << " fault="
            << (opt.fault == FaultLevel::kHeavy
                    ? "heavy"
                    : opt.fault == FaultLevel::kLight ? "light" : "none")
            << " seed=" << opt.seed << "\n"
            << "  kills " << kills << ", promotions " << promotions
            << " (server " << stats.promotions << "), resyncs " << resyncs
            << " (server " << stats.resyncs << "), stale GC'd "
            << resync_deleted << ", restored " << resync_restored << "\n"
            << "  applied ok " << stats.flow_mods_ok << ", rejected "
            << stats.flow_mods_failed << " (replay duplicates), "
            << mods_per_sec << " mods/s, error replies consumed "
            << errors_seen << "\n"
            << "  desyncs " << desyncs << ", dropped mods " << dropped_mods
            << "\n";

  if (opt.json) {
    bench::BenchMetadata metadata = bench::common_metadata();
    metadata.emplace_back("scenario", "failover");
    metadata.emplace_back("mods", std::to_string(opt.mods));
    metadata.emplace_back("kill_every", std::to_string(opt.kill_every));
    metadata.emplace_back("fault", opt.fault == FaultLevel::kHeavy
                                       ? "heavy"
                                       : opt.fault == FaultLevel::kLight
                                             ? "light"
                                             : "none");
    metadata.emplace_back("seed", std::to_string(opt.seed));
    bench::write_bench_json(
        "ofp_failover", "mixed",
        {{"failover/flow_mods_per_sec", mods_per_sec},
         {"failover/desyncs", static_cast<double>(desyncs)},
         {"failover/dropped_mods", static_cast<double>(dropped_mods)},
         {"failover/promotions", static_cast<double>(promotions)},
         {"failover/resyncs", static_cast<double>(resyncs)}},
        metadata);
  }

  if (!completed || desyncs != 0 || dropped_mods != 0) {
    std::cerr << "ofp_soak: failover FAILED (completed=" << completed
              << ", desyncs=" << desyncs << ", dropped_mods=" << dropped_mods
              << ")\n";
    return 1;
  }
  std::cout << "ofp_soak: failover converged bitwise to the oracle through "
            << promotions << " promotions\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  if (opt.failover) return run_failover(opt);

  runtime::SnapshotClassifier classifier(make_tables());
  ServerConfig config;
  // Headroom for reconnect churn: an RST'd session lingers until the event
  // loop reaps it, so under heavy faults the live count briefly exceeds the
  // number of controller threads.
  config.max_sessions = opt.sessions * 2 + 8;
  config.session.echo_interval_ms = 30'000;  // soak drives its own echoes
  config.stats_port = opt.stats_port;
  OfpServer server(server::make_classifier_sink(classifier), config);
  if (!server.start()) {
    std::cerr << "ofp_soak: server failed to start\n";
    return 1;
  }
  announce_stats_port(server, opt);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::vector<ControllerOutcome> outcomes(opt.sessions);
  for (std::uint32_t s = 0; s < opt.sessions; ++s) {
    threads.emplace_back([&, s] {
      const std::uint32_t base = 1 + s * opt.mods;
      outcomes[s] = run_controller(server.port(), base, opt,
                                   opt.seed * 7919 + s);
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Oracle: the same logical mods applied sequentially, no transport at all.
  auto oracle = make_tables();
  std::uint64_t logical_mods = 0;
  for (std::uint32_t s = 0; s < opt.sessions; ++s) {
    const std::uint32_t base = 1 + s * opt.mods;
    for (int phase = 0; phase < 2; ++phase) {
      for (std::uint32_t i = 0; i < opt.mods; ++i) {
        const std::uint32_t id = base + i;
        if (phase == 1 && !deleted_after_add(id)) continue;
        std::vector<PendingFlowMod> one(1);
        one[0].xid = 1;
        one[0].mod = make_mod(id, phase == 0 ? FlowModCommand::kAdd
                                             : FlowModCommand::kDelete);
        std::vector<ErrorCode> result(1, ErrorCode::kNone);
        apply_mods(oracle, one, result);
        if (result[0] != ErrorCode::kNone) {
          std::cerr << "ofp_soak: oracle rejected mod id " << id << "\n";
          return 1;
        }
        logical_mods++;
      }
    }
  }

  // Bitwise convergence: membership and execution must agree entry by entry.
  std::uint64_t desyncs = 0;
  std::uint32_t dropped = 0;
  std::uint32_t reconnects = 0;
  std::size_t errors_seen = 0;
  for (const auto& outcome : outcomes) {
    if (!outcome.converged) dropped++;
    reconnects += outcome.reconnects;
    errors_seen += outcome.errors_seen;
  }
  {
    const auto guard = classifier.acquire();
    for (std::uint32_t s = 0; s < opt.sessions; ++s) {
      const std::uint32_t base = 1 + s * opt.mods;
      for (std::uint32_t i = 0; i < opt.mods; ++i) {
        const std::uint32_t id = base + i;
        if (guard.tables().contains_entry(0, id) !=
            oracle.contains_entry(0, id)) {
          desyncs++;
          continue;
        }
        PacketHeader probe;
        probe.set(FieldId::kEthDst, std::uint64_t{id});
        if (guard.tables().execute(probe) != oracle.execute(probe)) desyncs++;
      }
    }
  }

  const auto stats = server.stats();
  // Linger while the server (and its stats endpoint) is still up, so a
  // scraper that just read STATS_PORT= has a window to pull /metrics.
  linger_after_soak(opt);
  server.stop();

  const double mods_per_sec =
      elapsed_s > 0 ? static_cast<double>(stats.flow_mods_ok +
                                          stats.flow_mods_failed) /
                          elapsed_s
                    : 0.0;
  std::cout << "ofp_soak: sessions=" << opt.sessions << " mods=" << opt.mods
            << " fault="
            << (opt.fault == FaultLevel::kHeavy
                    ? "heavy"
                    : opt.fault == FaultLevel::kLight ? "light" : "none")
            << " seed=" << opt.seed << "\n"
            << "  logical mods " << logical_mods << ", applied ok "
            << stats.flow_mods_ok << ", rejected " << stats.flow_mods_failed
            << " (replay duplicates), " << mods_per_sec << " mods/s\n"
            << "  reconnects " << reconnects << ", error replies consumed "
            << errors_seen << ", sessions accepted "
            << stats.sessions_accepted << ", closed " << stats.sessions_closed
            << "\n"
            << "  desyncs " << desyncs << ", dropped sessions " << dropped
            << "\n";

  if (opt.json) {
    bench::BenchMetadata metadata = bench::common_metadata();
    metadata.emplace_back("sessions", std::to_string(opt.sessions));
    metadata.emplace_back("mods_per_session", std::to_string(opt.mods));
    metadata.emplace_back("fault", opt.fault == FaultLevel::kHeavy
                                       ? "heavy"
                                       : opt.fault == FaultLevel::kLight
                                             ? "light"
                                             : "none");
    metadata.emplace_back("seed", std::to_string(opt.seed));
    bench::write_bench_json(
        "ofp_soak", "mixed",
        {{"soak/flow_mods_per_sec", mods_per_sec},
         {"soak/desyncs", static_cast<double>(desyncs)},
         {"soak/dropped_sessions", static_cast<double>(dropped)},
         {"soak/reconnects", static_cast<double>(reconnects)}},
        metadata);
  }

  if (desyncs != 0 || dropped != 0) {
    std::cerr << "ofp_soak: FAILED (desyncs=" << desyncs
              << ", dropped=" << dropped << ")\n";
    return 1;
  }
  std::cout << "ofp_soak: converged bitwise to the oracle\n";
  return 0;
}
