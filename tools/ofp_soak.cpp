// OFP control-plane soak: N concurrent scripted controllers fire M flow-mods
// each at a live OfpServer through seeded fault injection — fragmented
// writes, byte-at-a-time delivery, mid-message RSTs with reconnect-and-
// replay — and the resulting classifier state must converge BITWISE to an
// oracle built by applying the same logical mods sequentially.
//
// Convergence protocol (what makes exact assertions possible under faults):
//   - each session owns a disjoint flow-entry id range, so replays cannot
//     collide across sessions;
//   - mods go out in small chunks, each fenced by an echo barrier; the
//     session answers frames in order, so the echo reply proves every mod
//     in the chunk was applied — a checkpoint;
//   - on connection loss, only the unconfirmed chunk is replayed — duplicate
//     adds / re-deletes earn ERROR replies but leave the same final state
//     (idempotent replay), and checkpointing keeps forward progress even at
//     RST rates where a full-phase replay would never finish.
//
//   ofp_soak [--sessions 4] [--mods 200] [--fault light|heavy|none]
//            [--seed 1] [--json]
//
// Exit 1 on any divergence from the oracle or any session that never
// converged. --json writes BENCH_ofp_soak.json (flow-mods/sec plus the two
// zero-ceiling robustness metrics soak/desyncs and soak/dropped_sessions).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "../bench/bench_common.hpp"
#include "ofp/server/flow_mod_sink.hpp"
#include "ofp/server/server.hpp"
#include "ofp/testing/fault_injection.hpp"
#include "runtime/snapshot.hpp"
#include "workload/rng.hpp"

namespace {

using namespace ofmtl;
using namespace ofmtl::ofp;
using server::apply_mods;
using server::OfpServer;
using server::PendingFlowMod;
using server::ServerConfig;
using testing::FaultLevel;
using testing::make_fault;
using testing::ScriptedController;

struct Options {
  std::uint32_t sessions = 4;
  std::uint32_t mods = 200;  // adds per session; every 3rd is deleted after
  FaultLevel fault = FaultLevel::kLight;
  std::uint64_t seed = 1;
  bool json = false;
};

[[noreturn]] void usage_and_exit() {
  std::cerr << "usage: ofp_soak [--sessions N] [--mods M] "
               "[--fault light|heavy|none] [--seed S] [--json]\n";
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit();
      return argv[++i];
    };
    if (arg == "--sessions") {
      opt.sessions = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--mods") {
      opt.mods = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--fault") {
      const auto v = value();
      if (v == "light") opt.fault = FaultLevel::kLight;
      else if (v == "heavy") opt.fault = FaultLevel::kHeavy;
      else if (v == "none") opt.fault = FaultLevel::kNone;
      else usage_and_exit();
    } else if (arg == "--seed") {
      opt.seed = std::stoull(value());
    } else if (arg == "--json") {
      opt.json = true;
    } else {
      usage_and_exit();
    }
  }
  if (opt.sessions == 0 || opt.mods == 0) usage_and_exit();
  return opt;
}

MultiTableLookup make_tables() {
  MultiTableLookup tables;
  tables.add_table(LookupTable({FieldId::kEthDst}, {}));
  return tables;
}

FlowModMsg make_mod(std::uint32_t id, FlowModCommand command) {
  FlowModMsg mod;
  mod.command = command;
  mod.table_id = 0;
  mod.entry.id = id;
  mod.entry.priority = static_cast<std::uint16_t>(1 + id % 8);
  mod.entry.match.set(FieldId::kEthDst, FieldMatch::exact(std::uint64_t{id}));
  mod.entry.instructions = output_instruction(id % 1024);
  return mod;
}

bool deleted_after_add(std::uint32_t id) { return id % 3 == 0; }

/// One controller session's life: adds (phase 1), deletes of the subset
/// (phase 2). Mods go out in small chunks, each fenced by an echo barrier —
/// a confirmed chunk is a checkpoint, so a connection loss replays only the
/// unconfirmed chunk (duplicate replays earn ERROR replies, state is
/// unchanged). Checkpointing is what guarantees forward progress even when
/// the per-frame RST probability makes a full-phase replay hopeless.
struct ControllerOutcome {
  bool converged = false;
  std::uint32_t reconnects = 0;
  std::size_t errors_seen = 0;
};

constexpr std::uint32_t kChunkMods = 16;

ControllerOutcome run_controller(std::uint16_t port, std::uint32_t base,
                                 const Options& opt, std::uint64_t seed) {
  workload::Rng rng(seed);
  ScriptedController controller;
  ControllerOutcome outcome;
  bool connected = false;

  // Deliver + confirm one chunk of ids, reconnecting and replaying until
  // the barrier proves it applied. False when attempts run out.
  int connect_fails = 0, send_fails = 0, barrier_fails = 0;
  const auto run_chunk = [&](std::span<const std::uint32_t> ids,
                             FlowModCommand command) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      if (!connected) {
        if (!controller.connect(port)) {
          // Refused connects are transient: an RST'd predecessor may not be
          // reaped yet, so the server can sit at its session cap for a poll
          // cycle. Back off instead of burning the budget in a tight loop.
          connect_fails++;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          continue;
        }
        connected = true;
        outcome.reconnects++;
      }
      bool alive = true;
      for (const auto id : ids) {
        const auto frame = encode({controller.next_xid(), make_mod(id, command)});
        if (!controller.send(frame, make_fault(rng, frame.size(), opt.fault))) {
          alive = false;
          send_fails++;
          break;
        }
      }
      if (alive) {
        const auto barrier = controller.barrier();
        outcome.errors_seen += barrier.errors_seen;
        if (barrier.ok) return true;
        barrier_fails++;
      }
      connected = false;  // transport died; replay this chunk on a new one
    }
    std::cerr << "ofp_soak: chunk gave up (connect_fails=" << connect_fails
              << " send_fails=" << send_fails
              << " barrier_fails=" << barrier_fails << ")\n";
    return false;
  };

  for (const auto command : {FlowModCommand::kAdd, FlowModCommand::kDelete}) {
    std::vector<std::uint32_t> ids;
    for (std::uint32_t i = 0; i < opt.mods; ++i) {
      const std::uint32_t id = base + i;
      if (command == FlowModCommand::kDelete && !deleted_after_add(id)) continue;
      ids.push_back(id);
    }
    for (std::size_t off = 0; off < ids.size(); off += kChunkMods) {
      const auto n = std::min<std::size_t>(kChunkMods, ids.size() - off);
      if (!run_chunk({ids.data() + off, n}, command)) return outcome;
    }
  }
  outcome.converged = true;
  if (outcome.reconnects > 0) outcome.reconnects--;  // first connect is free
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  runtime::SnapshotClassifier classifier(make_tables());
  ServerConfig config;
  // Headroom for reconnect churn: an RST'd session lingers until the event
  // loop reaps it, so under heavy faults the live count briefly exceeds the
  // number of controller threads.
  config.max_sessions = opt.sessions * 2 + 8;
  config.session.echo_interval_ms = 30'000;  // soak drives its own echoes
  OfpServer server(server::make_classifier_sink(classifier), config);
  if (!server.start()) {
    std::cerr << "ofp_soak: server failed to start\n";
    return 1;
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::vector<ControllerOutcome> outcomes(opt.sessions);
  for (std::uint32_t s = 0; s < opt.sessions; ++s) {
    threads.emplace_back([&, s] {
      const std::uint32_t base = 1 + s * opt.mods;
      outcomes[s] = run_controller(server.port(), base, opt,
                                   opt.seed * 7919 + s);
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Oracle: the same logical mods applied sequentially, no transport at all.
  auto oracle = make_tables();
  std::uint64_t logical_mods = 0;
  for (std::uint32_t s = 0; s < opt.sessions; ++s) {
    const std::uint32_t base = 1 + s * opt.mods;
    for (int phase = 0; phase < 2; ++phase) {
      for (std::uint32_t i = 0; i < opt.mods; ++i) {
        const std::uint32_t id = base + i;
        if (phase == 1 && !deleted_after_add(id)) continue;
        std::vector<PendingFlowMod> one(1);
        one[0].xid = 1;
        one[0].mod = make_mod(id, phase == 0 ? FlowModCommand::kAdd
                                             : FlowModCommand::kDelete);
        std::vector<ErrorCode> result(1, ErrorCode::kNone);
        apply_mods(oracle, one, result);
        if (result[0] != ErrorCode::kNone) {
          std::cerr << "ofp_soak: oracle rejected mod id " << id << "\n";
          return 1;
        }
        logical_mods++;
      }
    }
  }

  // Bitwise convergence: membership and execution must agree entry by entry.
  std::uint64_t desyncs = 0;
  std::uint32_t dropped = 0;
  std::uint32_t reconnects = 0;
  std::size_t errors_seen = 0;
  for (const auto& outcome : outcomes) {
    if (!outcome.converged) dropped++;
    reconnects += outcome.reconnects;
    errors_seen += outcome.errors_seen;
  }
  {
    const auto guard = classifier.acquire();
    for (std::uint32_t s = 0; s < opt.sessions; ++s) {
      const std::uint32_t base = 1 + s * opt.mods;
      for (std::uint32_t i = 0; i < opt.mods; ++i) {
        const std::uint32_t id = base + i;
        if (guard.tables().contains_entry(0, id) !=
            oracle.contains_entry(0, id)) {
          desyncs++;
          continue;
        }
        PacketHeader probe;
        probe.set(FieldId::kEthDst, std::uint64_t{id});
        if (guard.tables().execute(probe) != oracle.execute(probe)) desyncs++;
      }
    }
  }

  const auto stats = server.stats();
  server.stop();

  const double mods_per_sec =
      elapsed_s > 0 ? static_cast<double>(stats.flow_mods_ok +
                                          stats.flow_mods_failed) /
                          elapsed_s
                    : 0.0;
  std::cout << "ofp_soak: sessions=" << opt.sessions << " mods=" << opt.mods
            << " fault="
            << (opt.fault == FaultLevel::kHeavy
                    ? "heavy"
                    : opt.fault == FaultLevel::kLight ? "light" : "none")
            << " seed=" << opt.seed << "\n"
            << "  logical mods " << logical_mods << ", applied ok "
            << stats.flow_mods_ok << ", rejected " << stats.flow_mods_failed
            << " (replay duplicates), " << mods_per_sec << " mods/s\n"
            << "  reconnects " << reconnects << ", error replies consumed "
            << errors_seen << ", sessions accepted "
            << stats.sessions_accepted << ", closed " << stats.sessions_closed
            << "\n"
            << "  desyncs " << desyncs << ", dropped sessions " << dropped
            << "\n";

  if (opt.json) {
    bench::BenchMetadata metadata = bench::common_metadata();
    metadata.emplace_back("sessions", std::to_string(opt.sessions));
    metadata.emplace_back("mods_per_session", std::to_string(opt.mods));
    metadata.emplace_back("fault", opt.fault == FaultLevel::kHeavy
                                       ? "heavy"
                                       : opt.fault == FaultLevel::kLight
                                             ? "light"
                                             : "none");
    metadata.emplace_back("seed", std::to_string(opt.seed));
    bench::write_bench_json(
        "ofp_soak", "mixed",
        {{"soak/flow_mods_per_sec", mods_per_sec},
         {"soak/desyncs", static_cast<double>(desyncs)},
         {"soak/dropped_sessions", static_cast<double>(dropped)},
         {"soak/reconnects", static_cast<double>(reconnects)}},
        metadata);
  }

  if (desyncs != 0 || dropped != 0) {
    std::cerr << "ofp_soak: FAILED (desyncs=" << desyncs
              << ", dropped=" << dropped << ")\n";
    return 1;
  }
  std::cout << "ofp_soak: converged bitwise to the oracle\n";
  return 0;
}
