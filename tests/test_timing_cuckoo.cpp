// Timing model (pipeline stages, latency, line rate) and the cuckoo-LUT
// alternative EM structure.
#include <gtest/gtest.h>

#include "classifier/cuckoo_lut.hpp"
#include "core/lut.hpp"
#include "core/builder.hpp"
#include "core/timing.hpp"
#include "workload/rng.hpp"
#include "workload/stanford_synth.hpp"

namespace ofmtl {
namespace {

TEST(TimingModel, StageBreakdownOfPrototypeTables) {
  const auto set = workload::generate_mac_filterset(workload::mac_target("bbrb"));
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  const auto pipeline = compile_app(spec);
  const TimingModel timing;

  // Table 0: VLAN hash LUT -> 2 field stages, 0 index stages, 1 action.
  const auto t0 = timing.table_stages(pipeline.table(0));
  EXPECT_EQ(t0.field_stages, 2U);
  EXPECT_EQ(t0.index_stages, 0U);
  EXPECT_EQ(t0.total(), 3U);

  // Table 1: metadata LUT (2 stages) vs 3-level tries (3 stages) in
  // parallel -> 3 field stages; 4 algorithms -> 3 index stages; 1 action.
  const auto t1 = timing.table_stages(pipeline.table(1));
  EXPECT_EQ(t1.field_stages, 3U);
  EXPECT_EQ(t1.index_stages, 3U);
  EXPECT_EQ(t1.total(), 7U);

  EXPECT_EQ(timing.pipeline_latency(pipeline), 10U);
}

TEST(TimingModel, LineRateMatchesPaperMotivation) {
  // At 200 MHz and one lookup per cycle, 64-byte line rate is ~102 Gbps —
  // inside the paper's "40-100 Gbps" target band.
  const TimingModel timing;
  EXPECT_NEAR(timing.line_rate_gbps(64), 102.4, 0.1);
  EXPECT_GT(timing.line_rate_gbps(64), 100.0);
  EXPECT_NEAR(timing.min_packet_bytes(40.0), 25.0, 0.1);
}

TEST(TimingModel, StrideCountDrivesLatency) {
  const auto set =
      workload::generate_routing_filterset(workload::routing_target("bbrb"));
  const TimingModel timing;
  FieldSearchConfig three;
  three.strides = {5, 5, 6};
  FieldSearchConfig eight;
  eight.strides = {2, 2, 2, 2, 2, 2, 2, 2};
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  const auto p3 = compile_app(spec, three);
  const auto p8 = compile_app(spec, eight);
  EXPECT_LT(timing.pipeline_latency(p3), timing.pipeline_latency(p8));
}

TEST(CuckooLut, InsertLookupRemove) {
  CuckooLut lut(32);
  const auto a = lut.insert(U128{100});
  const auto b = lut.insert(U128{200});
  EXPECT_NE(a, b);
  EXPECT_EQ(lut.insert(U128{100}), a);
  EXPECT_EQ(lut.unique_values(), 2U);
  EXPECT_EQ(lut.lookup(U128{100}), a);
  EXPECT_EQ(lut.lookup(U128{300}), std::nullopt);
  EXPECT_TRUE(lut.remove(U128{100}));
  EXPECT_FALSE(lut.remove(U128{100}));
  EXPECT_EQ(lut.lookup(U128{100}), std::nullopt);
}

TEST(CuckooLut, SurvivesHeavyLoadAndChurn) {
  CuckooLut lut(32);
  workload::Rng rng(55);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.next() & 0xFFFFFFFFU);
  std::vector<Label> labels;
  for (const auto v : values) labels.push_back(lut.insert(U128{v}));
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(lut.lookup(U128{values[i]}), labels[i]) << i;
  }
  // Remove half, verify the rest, re-add.
  for (std::size_t i = 0; i < values.size(); i += 2) {
    EXPECT_TRUE(lut.remove(U128{values[i]}));
  }
  for (std::size_t i = 1; i < values.size(); i += 2) {
    ASSERT_EQ(lut.lookup(U128{values[i]}), labels[i]) << i;
  }
  for (std::size_t i = 0; i < values.size(); i += 2) {
    EXPECT_EQ(lut.insert(U128{values[i]}), labels[i]) << i;  // stable label
  }
}

TEST(CuckooLut, DenserThanLinearProbingLut) {
  // The ablation claim: for the same value set, the cuckoo table needs no
  // more slots (usually half) than the linear-probing LUT, because it
  // sustains ~0.9 load where linear probing doubles at 0.7.
  CuckooLut cuckoo(48);
  ExactMatchLut linear(48);
  workload::Rng rng(66);
  for (int i = 0; i < 3000; ++i) {
    const U128 value{rng.next() & 0xFFFFFFFFFFFFULL};
    (void)cuckoo.insert(value);
    (void)linear.insert(value);
  }
  EXPECT_EQ(cuckoo.unique_values(), linear.unique_values());
  EXPECT_LT(cuckoo.slot_count(), linear.slot_count());
  EXPECT_LT(cuckoo.storage_bits(), linear.storage_bits());
}

}  // namespace
}  // namespace ofmtl
