// Multi-bit trie tests: LPM correctness against the unibit-trie oracle and
// brute force, lookup_all completeness, removal fallback, stride sweeps, and
// the node/memory accounting invariants the figures depend on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "classifier/unibit_trie.hpp"
#include "core/multibit_trie.hpp"
#include "workload/rng.hpp"

namespace ofmtl {
namespace {

TEST(MultibitTrie, RejectsBadConfig) {
  EXPECT_THROW(MultibitTrie(16, {8, 9}), std::invalid_argument);   // sum != 16
  EXPECT_THROW(MultibitTrie(16, {}), std::invalid_argument);
  EXPECT_THROW(MultibitTrie(0, {0}), std::invalid_argument);
  EXPECT_NO_THROW(MultibitTrie(16, {5, 5, 6}));
  EXPECT_NO_THROW(MultibitTrie(32, {8, 8, 8, 8}));
}

TEST(MultibitTrie, EmptyLookupMisses) {
  auto trie = MultibitTrie::partition16();
  EXPECT_EQ(trie.lookup(0x1234), std::nullopt);
  EXPECT_EQ(trie.prefix_count(), 0U);
}

TEST(MultibitTrie, DefaultRouteMatchesEverything) {
  auto trie = MultibitTrie::partition16();
  trie.insert(Prefix::from_value(0, 0, 16), 9);
  EXPECT_EQ(trie.lookup(0), 9U);
  EXPECT_EQ(trie.lookup(0xFFFF), 9U);
}

TEST(MultibitTrie, LongestWinsAcrossLevels) {
  auto trie = MultibitTrie::partition16();
  trie.insert(Prefix::from_value(0xAB00, 8, 16), 1);   // ends level 2
  trie.insert(Prefix::from_value(0xABC0, 12, 16), 2);  // ends level 3
  trie.insert(Prefix::from_value(0xABCD, 16, 16), 3);  // exact
  EXPECT_EQ(trie.lookup(0xABCD), 3U);
  EXPECT_EQ(trie.lookup(0xABCE), 2U);
  EXPECT_EQ(trie.lookup(0xAB01), 1U);
  EXPECT_EQ(trie.lookup(0xAC01), std::nullopt);
}

TEST(MultibitTrie, LongestWinsWithinOneLevel) {
  // /3 and /5 both end inside the first level (stride 5): controlled
  // expansion must give the /5 priority on its subrange only.
  auto trie = MultibitTrie::partition16();
  trie.insert(Prefix::from_value(0b1010000000000000, 3, 16), 1);
  trie.insert(Prefix::from_value(0b1010100000000000, 5, 16), 2);
  EXPECT_EQ(trie.lookup(0b1010100000000000), 2U);
  EXPECT_EQ(trie.lookup(0b1010000000000000), 1U);
  EXPECT_EQ(trie.lookup(0b1011000000000000), 1U);
}

TEST(MultibitTrie, InsertionOrderIrrelevant) {
  auto a = MultibitTrie::partition16();
  auto b = MultibitTrie::partition16();
  const auto p1 = Prefix::from_value(0xAB00, 8, 16);
  const auto p2 = Prefix::from_value(0xABC0, 12, 16);
  a.insert(p1, 1);
  a.insert(p2, 2);
  b.insert(p2, 2);
  b.insert(p1, 1);
  for (std::uint64_t key = 0xAB00; key <= 0xABFF; ++key) {
    EXPECT_EQ(a.lookup(key), b.lookup(key)) << key;
  }
}

TEST(MultibitTrie, LookupAllReportsNestedPrefixesLongestFirst) {
  auto trie = MultibitTrie::partition16();
  trie.insert(Prefix::from_value(0, 0, 16), 0);
  trie.insert(Prefix::from_value(0b1010000000000000, 3, 16), 1);
  trie.insert(Prefix::from_value(0b1010100000000000, 5, 16), 2);  // same level as /3
  trie.insert(Prefix::from_value(0xA800, 8, 16), 3);
  std::vector<Label> labels;
  trie.lookup_all(0xA8FF, labels);
  EXPECT_EQ(labels, (std::vector<Label>{3, 2, 1, 0}));
  trie.lookup_all(0xA0FF, labels);
  EXPECT_EQ(labels, (std::vector<Label>{1, 0}));
}

TEST(MultibitTrie, RemoveRestoresFallback) {
  auto trie = MultibitTrie::partition16();
  trie.insert(Prefix::from_value(0xAB00, 8, 16), 1);
  trie.insert(Prefix::from_value(0xABC0, 12, 16), 2);
  EXPECT_TRUE(trie.remove(Prefix::from_value(0xABC0, 12, 16)));
  EXPECT_EQ(trie.lookup(0xABC5), 1U);
  EXPECT_FALSE(trie.remove(Prefix::from_value(0xABC0, 12, 16)));
  EXPECT_EQ(trie.prefix_count(), 1U);
}

TEST(MultibitTrie, RemoveWithinLevelFallsBackToSameLevelPrefix) {
  auto trie = MultibitTrie::partition16();
  trie.insert(Prefix::from_value(0b1010000000000000, 3, 16), 1);
  trie.insert(Prefix::from_value(0b1010100000000000, 5, 16), 2);
  EXPECT_TRUE(trie.remove(Prefix::from_value(0b1010100000000000, 5, 16)));
  EXPECT_EQ(trie.lookup(0b1010100000000000), 1U);
}

TEST(MultibitTrie, NodeAccountingBasics) {
  auto trie = MultibitTrie::partition16();
  // Root block is always allocated: 2^5 = 32 slots, zero stored nodes.
  EXPECT_EQ(trie.level_stats(0).allocated_entries, 32U);
  EXPECT_EQ(trie.stored_nodes(TrieStorage::kSparse), 0U);

  trie.insert(Prefix::exact(0xABCD, 16), 1);
  // Path: one L1 pointer node, one L2 pointer node, one L3 labelled node.
  EXPECT_EQ(trie.stored_nodes(0, TrieStorage::kSparse), 1U);
  EXPECT_EQ(trie.stored_nodes(1, TrieStorage::kSparse), 1U);
  EXPECT_EQ(trie.stored_nodes(2, TrieStorage::kSparse), 1U);
  EXPECT_EQ(trie.stored_nodes(TrieStorage::kArrayBlock), 32U + 32U + 64U);
  EXPECT_EQ(trie.level_stats(2).labelled_nodes, 1U);
}

TEST(MultibitTrie, SparseNeverExceedsArrayBlock) {
  workload::Rng rng(42);
  auto trie = MultibitTrie::partition16();
  for (int i = 0; i < 500; ++i) {
    const unsigned len = 1 + static_cast<unsigned>(rng.below(16));
    trie.insert(
        Prefix::from_value(rng.below(0x10000), len, 16),
        static_cast<Label>(i));
  }
  for (std::size_t level = 0; level < trie.level_count(); ++level) {
    EXPECT_LE(trie.stored_nodes(level, TrieStorage::kSparse),
              trie.stored_nodes(level, TrieStorage::kArrayBlock));
  }
}

TEST(MultibitTrie, L1NeverExceedsStrideCapacity) {
  // The paper: "The maximum stored nodes in L1 are 32" for stride-5 L1.
  workload::Rng rng(7);
  auto trie = MultibitTrie::partition16();
  for (int i = 0; i < 5000; ++i) {
    trie.insert(Prefix::exact(rng.below(0x10000), 16), static_cast<Label>(i));
  }
  EXPECT_LE(trie.stored_nodes(0, TrieStorage::kSparse), 32U);
  EXPECT_LE(trie.stored_nodes(0, TrieStorage::kArrayBlock), 32U);
}

TEST(MultibitTrie, LayoutsHaveNoPointerAtLeafLevel) {
  auto trie = MultibitTrie::partition16();
  trie.insert(Prefix::exact(0x1234, 16), 0);
  const auto layouts = trie.layouts(12);
  ASSERT_EQ(layouts.size(), 3U);
  EXPECT_GT(layouts[0].pointer_bits, 0U);
  EXPECT_GT(layouts[1].pointer_bits, 0U);
  EXPECT_EQ(layouts[2].pointer_bits, 0U);
  for (const auto& layout : layouts) {
    EXPECT_EQ(layout.label_bits, 12U);
    EXPECT_EQ(layout.flag_bits, 1U);
    EXPECT_EQ(layout.node_bits(),
              layout.pointer_bits + layout.label_bits + 1U);
  }
}

TEST(MultibitTrie, TotalBitsSumLevelBits) {
  workload::Rng rng(3);
  auto trie = MultibitTrie::partition16();
  for (int i = 0; i < 200; ++i) {
    trie.insert(Prefix::exact(rng.below(0x10000), 16), static_cast<Label>(i));
  }
  std::uint64_t sum = 0;
  for (std::size_t level = 0; level < trie.level_count(); ++level) {
    sum += trie.level_bits(level, TrieStorage::kSparse, 12);
  }
  EXPECT_EQ(sum, trie.total_bits(TrieStorage::kSparse, 12));
  EXPECT_EQ(trie.memory_report("t", TrieStorage::kSparse, 12).total_bits(), sum);
}

TEST(MultibitTrie, WriteCountGrowsAndReinsertIsFree) {
  auto trie = MultibitTrie::partition16();
  trie.insert(Prefix::exact(0x1234, 16), 5);
  const auto writes = trie.write_count();
  EXPECT_GT(writes, 0U);
  trie.insert(Prefix::exact(0x1234, 16), 5);  // identical re-insert
  EXPECT_EQ(trie.write_count(), writes);
}

TEST(MultibitTrie, InsertCostMatchesActualWritesOnEmptyTrie) {
  workload::Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    const unsigned len = static_cast<unsigned>(rng.below(17));
    const auto prefix = Prefix::from_value(rng.below(0x10000), len, 16);
    auto trie = MultibitTrie::partition16();
    const auto predicted = trie.insert_cost(prefix);
    trie.insert(prefix, 1);
    EXPECT_EQ(predicted, trie.write_count()) << prefix.to_string();
  }
}

TEST(MultibitTrie, UniformLayoutsTakeWorstCase) {
  auto small = MultibitTrie::partition16();
  small.insert(Prefix::exact(1, 16), 0);
  auto big = MultibitTrie::partition16();
  workload::Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    big.insert(Prefix::exact(rng.below(0x10000), 16), static_cast<Label>(i));
  }
  const auto uniform = uniform_layouts({&small, &big}, 12);
  const auto big_own = big.layouts(12);
  for (std::size_t level = 0; level < uniform.size(); ++level) {
    EXPECT_GE(uniform[level].pointer_bits, big_own[level].pointer_bits);
  }
}

// ---- randomized equivalence against the unibit-trie oracle, across stride
// configurations (the stride ablation surface) ----

struct StrideCase {
  const char* name;
  std::vector<unsigned> strides;
};

class MbtOracle : public ::testing::TestWithParam<StrideCase> {};

TEST_P(MbtOracle, MatchesUnibitOnRandomPrefixSets) {
  workload::Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 8; ++trial) {
    MultibitTrie mbt(16, GetParam().strides);
    UnibitTrie oracle(16);
    std::map<std::pair<unsigned, std::uint64_t>, Label> inserted;
    for (int i = 0; i < 300; ++i) {
      const unsigned len = static_cast<unsigned>(rng.below(17));
      const auto prefix = Prefix::from_value(rng.below(0x10000), len, 16);
      const auto label = static_cast<Label>(
          inserted.try_emplace({prefix.length(), prefix.value64()},
                               static_cast<Label>(inserted.size()))
              .first->second);
      mbt.insert(prefix, label);
      oracle.insert(prefix, label);
    }
    for (int probe = 0; probe < 2000; ++probe) {
      const std::uint64_t key = rng.below(0x10000);
      EXPECT_EQ(mbt.lookup(key), oracle.lookup(key)) << "key " << key;
    }
    // lookup_all equals the oracle's full matching set, longest first.
    for (int probe = 0; probe < 300; ++probe) {
      const std::uint64_t key = rng.below(0x10000);
      std::vector<Label> mbt_all;
      mbt.lookup_all(key, mbt_all);
      auto oracle_all = oracle.lookup_all(key);  // shortest first
      std::reverse(oracle_all.begin(), oracle_all.end());
      EXPECT_EQ(mbt_all, oracle_all) << "key " << key;
    }
  }
}

TEST_P(MbtOracle, RemovalKeepsOracleEquivalence) {
  workload::Rng rng(0xFEED);
  MultibitTrie mbt(16, GetParam().strides);
  UnibitTrie oracle(16);
  std::vector<Prefix> live;
  std::map<std::pair<unsigned, std::uint64_t>, Label> labels;
  for (int step = 0; step < 400; ++step) {
    if (live.empty() || rng.chance(0.65)) {
      const unsigned len = static_cast<unsigned>(rng.below(17));
      const auto prefix = Prefix::from_value(rng.below(0x10000), len, 16);
      const auto label = static_cast<Label>(
          labels.try_emplace({prefix.length(), prefix.value64()},
                             static_cast<Label>(labels.size()))
              .first->second);
      mbt.insert(prefix, label);
      oracle.insert(prefix, label);
      live.push_back(prefix);
    } else {
      const std::size_t victim = rng.below(live.size());
      const Prefix prefix = live[victim];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      // The same prefix may still be present via a duplicate entry in live.
      const bool still_live =
          std::any_of(live.begin(), live.end(),
                      [&prefix](const Prefix& p) { return p == prefix; });
      if (!still_live) {
        EXPECT_TRUE(mbt.remove(prefix));
        EXPECT_TRUE(oracle.remove(prefix));
      }
    }
    if (step % 20 == 0) {
      for (int probe = 0; probe < 200; ++probe) {
        const std::uint64_t key = rng.below(0x10000);
        EXPECT_EQ(mbt.lookup(key), oracle.lookup(key))
            << "step " << step << " key " << key;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strides, MbtOracle,
    ::testing::Values(StrideCase{"paper_5_5_6", {5, 5, 6}},
                      StrideCase{"two_level_8_8", {8, 8}},
                      StrideCase{"four_level_4x4", {4, 4, 4, 4}},
                      StrideCase{"uneven_6_5_5", {6, 5, 5}},
                      StrideCase{"single_level_16", {16}}),
    [](const ::testing::TestParamInfo<StrideCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace ofmtl
