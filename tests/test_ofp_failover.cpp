// Control-plane failover and overload resilience, bottom-up: RoleManager
// generation fencing and deterministic promotion, the FlowJournal /
// compute_resync diff and its convergence contract, the AdmissionController
// overload state machine (hysteresis, dwell, token buckets, bounded retry),
// the Session-level wiring of all three (sans-io, virtual clock), and the
// live OfpServer paths that only exist under chaos: EMFILE accept backoff,
// SIGPIPE-free writes to RST'd peers, virtual-clock liveness timeouts, and a
// full kill-the-master / promote / resync / converge scenario over loopback
// TCP driven by the seeded chaos toolkit.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ofp/server/admission.hpp"
#include "ofp/server/flow_mod_sink.hpp"
#include "ofp/server/resync.hpp"
#include "ofp/server/roles.hpp"
#include "ofp/server/server.hpp"
#include "ofp/server/session.hpp"
#include "ofp/testing/chaos.hpp"
#include "ofp/testing/fault_injection.hpp"
#include "runtime/snapshot.hpp"
#include "workload/rng.hpp"

namespace ofmtl::ofp::server {
namespace {

using testing::ChaosAction;
using testing::ChaosEdge;
using testing::ChaosProfile;
using testing::ChaosScheduler;
using testing::FaultySocket;
using testing::ScriptedController;
using testing::SyscallFaultInjector;
using testing::VirtualClock;

// --- shared helpers ---

FlowModMsg make_mod(std::uint32_t id,
                    FlowModCommand command = FlowModCommand::kAdd,
                    std::uint64_t cookie = 0) {
  FlowModMsg mod;
  mod.command = command;
  mod.table_id = 0;
  mod.cookie = cookie != 0 ? cookie : 0x1000 + id;
  mod.entry.id = id;
  mod.entry.priority = 1;
  mod.entry.match.set(FieldId::kEthDst, FieldMatch::exact(std::uint64_t{id}));
  mod.entry.instructions = output_instruction(id % 1024);
  return mod;
}

std::vector<Envelope> drain_frames(Session& session) {
  FrameAssembler assembler;
  const auto pending = session.pending_output();
  EXPECT_EQ(assembler.push(pending), FrameAssembler::Status::kOk);
  session.consume_output(pending.size());
  std::vector<Envelope> envelopes;
  std::vector<std::uint8_t> frame;
  while (assembler.next(frame)) {
    Envelope envelope;
    EXPECT_EQ(try_decode(frame, envelope), DecodeStatus::kOk);
    envelopes.push_back(std::move(envelope));
  }
  return envelopes;
}

/// A steady session bound to a shared control plane, handshake drained.
Session steady_session(std::uint64_t id, FlowModSink sink,
                       ControlPlane& control, SessionConfig config = {}) {
  Session session(id, config, std::move(sink), control, 0);
  session.on_bytes(encode({1, Hello{}}), 0);
  EXPECT_EQ(drain_frames(session).size(), 1U);
  EXPECT_EQ(session.state(), Session::State::kSteady);
  return session;
}

bool wait_until(const std::function<bool()>& predicate, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

// --- RoleManager: fencing and deterministic promotion ---

TEST(RoleManager, SessionsStartEqualAndMasterClaimDemotesPredecessor) {
  RoleManager roles;
  roles.on_session_open(1);
  roles.on_session_open(2);
  EXPECT_EQ(roles.role_of(1), Role::kEqual);
  EXPECT_FALSE(roles.master().has_value());

  auto d = roles.apply(1, {Role::kMaster, 10});
  EXPECT_TRUE(d.accepted);
  EXPECT_EQ(d.role, Role::kMaster);
  EXPECT_EQ(d.generation_id, 10U);
  EXPECT_EQ(roles.master(), std::optional<std::uint64_t>{1});

  // A second master claim moves the mastership and demotes the first.
  d = roles.apply(2, {Role::kMaster, 11});
  EXPECT_TRUE(d.accepted);
  EXPECT_EQ(roles.master(), std::optional<std::uint64_t>{2});
  EXPECT_EQ(roles.role_of(1), Role::kSlave);
}

TEST(RoleManager, StaleGenerationIsFencedEqualGenerationIsNot) {
  RoleManager roles;
  roles.on_session_open(1);
  roles.on_session_open(2);
  ASSERT_TRUE(roles.apply(1, {Role::kMaster, 10}).accepted);

  // The fenced ex-master shape: an older generation must be rejected.
  auto d = roles.apply(2, {Role::kMaster, 9});
  EXPECT_FALSE(d.accepted);
  EXPECT_EQ(d.error, ErrorCode::kStale);
  EXPECT_EQ(roles.master(), std::optional<std::uint64_t>{1});

  // Equal generation is NOT stale (distance 0): OpenFlow allows re-claims.
  EXPECT_TRUE(roles.apply(2, {Role::kMaster, 10}).accepted);
  EXPECT_EQ(roles.master(), std::optional<std::uint64_t>{2});
}

TEST(RoleManager, GenerationComparisonIsCircular) {
  RoleManager roles;
  roles.on_session_open(1);
  const std::uint64_t near_wrap = ~std::uint64_t{0} - 1;
  ASSERT_TRUE(roles.apply(1, {Role::kMaster, near_wrap}).accepted);
  // Wrapping past zero is a *newer* generation in circular comparison.
  EXPECT_TRUE(roles.apply(1, {Role::kMaster, 2}).accepted);
  EXPECT_EQ(roles.generation_id(), 2U);
  // ...and the pre-wrap value is now stale.
  EXPECT_FALSE(roles.apply(1, {Role::kMaster, near_wrap}).accepted);
}

TEST(RoleManager, EqualAndNoChangeAreUnfenced) {
  RoleManager roles;
  roles.on_session_open(1);
  roles.on_session_open(2);
  ASSERT_TRUE(roles.apply(1, {Role::kMaster, 100}).accepted);

  // NOCHANGE is a pure query: no fencing, no mutation, any generation.
  auto d = roles.apply(2, {Role::kNoChange, 1});
  EXPECT_TRUE(d.accepted);
  EXPECT_EQ(d.role, Role::kEqual);
  EXPECT_EQ(roles.master(), std::optional<std::uint64_t>{1});

  // EQUAL is unfenced too (it abandons mastership, never claims it).
  EXPECT_TRUE(roles.apply(1, {Role::kEqual, 1}).accepted);
  EXPECT_FALSE(roles.master().has_value());
}

TEST(RoleManager, MasterLossPromotesLowestIdSlaveDeterministically) {
  RoleManager roles;
  for (std::uint64_t id = 1; id <= 4; ++id) roles.on_session_open(id);
  ASSERT_TRUE(roles.apply(2, {Role::kMaster, 1}).accepted);
  ASSERT_TRUE(roles.apply(4, {Role::kSlave, 2}).accepted);
  ASSERT_TRUE(roles.apply(3, {Role::kSlave, 3}).accepted);
  // Session 1 stays EQUAL: not a promotion candidate.

  const auto promoted = roles.on_session_closed(2);
  ASSERT_TRUE(promoted.has_value());
  EXPECT_EQ(*promoted, 3U);  // lowest-id slave, not the equal session
  EXPECT_EQ(roles.role_of(3), Role::kMaster);
  EXPECT_EQ(roles.master(), std::optional<std::uint64_t>{3});

  // Next death promotes the remaining slave; then nobody is left to promote.
  EXPECT_EQ(roles.on_session_closed(3), std::optional<std::uint64_t>{4});
  EXPECT_FALSE(roles.on_session_closed(4).has_value());
  EXPECT_FALSE(roles.master().has_value());
}

TEST(RoleManager, NonMasterDeathPromotesNobody) {
  RoleManager roles;
  roles.on_session_open(1);
  roles.on_session_open(2);
  ASSERT_TRUE(roles.apply(1, {Role::kMaster, 1}).accepted);
  ASSERT_TRUE(roles.apply(2, {Role::kSlave, 2}).accepted);
  EXPECT_FALSE(roles.on_session_closed(2).has_value());
  EXPECT_EQ(roles.master(), std::optional<std::uint64_t>{1});
}

// --- FlowJournal + compute_resync: the convergence diff ---

TEST(Resync, JournalMirrorsSinkOrderSemantics) {
  FlowJournal journal;
  journal.record(make_mod(1, FlowModCommand::kAdd, 0xA));
  journal.record(make_mod(2, FlowModCommand::kAdd, 0xB));
  EXPECT_EQ(journal.size(), 2U);
  EXPECT_TRUE(journal.contains(0, 1));

  // Modify restamps the cookie; delete erases.
  journal.record(make_mod(1, FlowModCommand::kModify, 0xA2));
  journal.record(make_mod(2, FlowModCommand::kDelete, 0xB));
  EXPECT_EQ(journal.size(), 1U);
  EXPECT_FALSE(journal.contains(0, 2));
  const auto snapshot = journal.snapshot();
  ASSERT_EQ(snapshot.size(), 1U);
  EXPECT_EQ(snapshot[0].cookie, 0xA2U);
}

TEST(Resync, DiffPartitionsStaleMissingAndMatching) {
  FlowJournal journal;
  journal.record(make_mod(1, FlowModCommand::kAdd, 0xA));  // matches digest
  journal.record(make_mod(2, FlowModCommand::kAdd, 0xB));  // not intended
  journal.record(make_mod(3, FlowModCommand::kAdd, 0xC));  // cookie mismatch

  const std::vector<ResyncEntry> digest = {
      {0, 1, 0xA},   // matching: untouched
      {0, 3, 0xC2},  // re-issued with new content: delete + re-send
      {0, 4, 0xD},   // lost in flight: re-send only
  };
  const auto outcome = compute_resync(journal, digest);

  ASSERT_EQ(outcome.deletes.size(), 2U);  // ids 2 and 3, sorted
  EXPECT_EQ(outcome.deletes[0].entry.id, 2U);
  EXPECT_EQ(outcome.deletes[1].entry.id, 3U);
  EXPECT_EQ(outcome.deletes[0].command, FlowModCommand::kDelete);

  ASSERT_EQ(outcome.missing.size(), 2U);  // ids 3 and 4, sorted
  EXPECT_EQ(outcome.missing[0].entry_id, 3U);
  EXPECT_EQ(outcome.missing[1].entry_id, 4U);
}

TEST(Resync, ConvergesAfterApplyingTheDiff) {
  // Convergence argument made executable: apply the plan, journal == digest.
  FlowJournal journal;
  for (std::uint32_t id = 1; id <= 8; ++id) {
    journal.record(make_mod(id, FlowModCommand::kAdd, 0x100 + id));
  }
  std::vector<ResyncEntry> digest;  // intent: odd ids only, id 5 re-issued
  for (std::uint32_t id = 1; id <= 9; id += 2) {
    digest.push_back({0, id, id == 5 ? 0x999 : 0x100 + id});
  }

  const auto outcome = compute_resync(journal, digest);
  for (const auto& del : outcome.deletes) journal.record(del);
  for (const auto& miss : outcome.missing) {
    journal.record(make_mod(miss.entry_id, FlowModCommand::kAdd, miss.cookie));
  }

  ASSERT_EQ(journal.size(), digest.size());
  for (const auto& want : digest) {
    ASSERT_TRUE(journal.contains(want.table_id, want.entry_id));
    EXPECT_EQ(journal.raw().at(FlowJournal::key(want.table_id, want.entry_id)),
              want.cookie);
  }
  // A second diff against the same digest must be empty: fixpoint.
  const auto again = compute_resync(journal, digest);
  EXPECT_TRUE(again.deletes.empty());
  EXPECT_TRUE(again.missing.empty());
}

// --- AdmissionController: hysteresis, dwell, buckets, bounded retry ---

TEST(Admission, HysteresisWithDwellNeverFlaps) {
  AdmissionConfig config;
  config.min_dwell_ms = 100;
  AdmissionController admission(config);
  EXPECT_EQ(admission.state(), AdmissionState::kNormal);

  admission.on_pressure_sample(0.80, 0);
  EXPECT_EQ(admission.state(), AdmissionState::kThrottle);
  // Above shed_enter but inside the dwell: no transition yet.
  admission.on_pressure_sample(0.95, 50);
  EXPECT_EQ(admission.state(), AdmissionState::kThrottle);
  admission.on_pressure_sample(0.95, 150);
  EXPECT_EQ(admission.state(), AdmissionState::kShed);

  // 0.55 is under shed_exit but over throttle_exit: SHED unwinds one level
  // and then PARKS in THROTTLE — the hysteresis band between 0.50 and 0.75.
  admission.on_pressure_sample(0.55, 300);
  EXPECT_EQ(admission.state(), AdmissionState::kThrottle);
  admission.on_pressure_sample(0.55, 450);
  EXPECT_EQ(admission.state(), AdmissionState::kThrottle);
  // Only dropping through throttle_exit reaches NORMAL again.
  admission.on_pressure_sample(0.45, 600);
  EXPECT_EQ(admission.state(), AdmissionState::kNormal);
}

TEST(Admission, TokenBucketMetersAndThrottleShavesNonMasters) {
  AdmissionConfig config;
  config.session_rate_cap = 40;  // 40 mods/s, one-second burst
  config.throttle_divisor = 4;
  config.min_dwell_ms = 0;
  AdmissionController admission(config);

  // NORMAL: burst of the full cap admits, the next mod does not.
  EXPECT_TRUE(admission.admit(1, false, 40, 0).admit);
  const auto rejected = admission.admit(1, false, 1, 0);
  EXPECT_FALSE(rejected.admit);
  EXPECT_EQ(rejected.backoff_hint_ms, config.backoff_hint_ms);

  // THROTTLE: a fresh non-master bucket is primed at cap/4; the master's at
  // the full cap.
  admission.on_pressure_sample(0.80, 10);
  ASSERT_EQ(admission.state(), AdmissionState::kThrottle);
  EXPECT_TRUE(admission.admit(2, false, 10, 10).admit);
  EXPECT_FALSE(admission.admit(2, false, 10, 10).admit);
  EXPECT_TRUE(admission.admit(3, true, 40, 10).admit);

  // Refill: a second later the non-master may spend cap/4 again.
  EXPECT_TRUE(admission.admit(2, false, 10, 1010).admit);
}

TEST(Admission, ShedRejectsNonMastersOutrightAndDrainsAfterBudget) {
  AdmissionConfig config;
  config.min_dwell_ms = 0;
  config.max_consecutive_rejects = 8;
  AdmissionController admission(config);
  admission.on_pressure_sample(0.80, 0);
  admission.on_pressure_sample(0.95, 1);
  ASSERT_EQ(admission.state(), AdmissionState::kShed);

  // No rate cap configured, yet SHED still rejects non-masters.
  auto verdict = admission.admit(1, false, 4, 2);
  EXPECT_FALSE(verdict.admit);
  EXPECT_FALSE(verdict.drain);
  EXPECT_TRUE(admission.admit(2, true, 1000, 2).admit);  // master unharmed

  // Bounded retry: the rejection budget exhausts and orders a drain.
  verdict = admission.admit(1, false, 3, 3);
  EXPECT_FALSE(verdict.drain);  // 7 consecutive rejects: still under budget
  verdict = admission.admit(1, false, 1, 4);
  EXPECT_TRUE(verdict.drain);  // the 8th trips it
  EXPECT_EQ(admission.rejected_mods(), 8U);
}

// --- Session: role, resync, and overload wiring (sans-io) ---

struct CountingSink {
  std::vector<std::vector<PendingFlowMod>> batches;
  FlowModSink make() {
    return [this](std::span<const PendingFlowMod> mods,
                  std::span<ErrorCode> results) {
      batches.emplace_back(mods.begin(), mods.end());
      std::fill(results.begin(), results.end(), ErrorCode::kNone);
    };
  }
};

TEST(SessionRoles, RoleRequestRoundTripAndQuery) {
  ControlPlane control;
  CountingSink sink;
  auto session = steady_session(1, sink.make(), control);

  session.on_bytes(encode({5, RoleRequestMsg{Role::kMaster, 7}}), 0);
  auto frames = drain_frames(session);
  ASSERT_EQ(frames.size(), 1U);
  const auto* reply = std::get_if<RoleReplyMsg>(&frames[0].message);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(frames[0].xid, 5U);
  EXPECT_EQ(reply->role, Role::kMaster);
  EXPECT_EQ(reply->generation_id, 7U);
  EXPECT_EQ(session.role(), Role::kMaster);
  EXPECT_EQ(session.counters().role_changes, 1U);

  // NOCHANGE queries without mutating (and without counting a change).
  session.on_bytes(encode({6, RoleRequestMsg{Role::kNoChange, 0}}), 0);
  frames = drain_frames(session);
  ASSERT_EQ(frames.size(), 1U);
  reply = std::get_if<RoleReplyMsg>(&frames[0].message);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->role, Role::kMaster);
  EXPECT_EQ(session.counters().role_changes, 1U);
}

TEST(SessionRoles, StaleClaimAnswersRoleRequestFailedError) {
  ControlPlane control;
  CountingSink sink_a, sink_b;
  auto master = steady_session(1, sink_a.make(), control);
  auto rival = steady_session(2, sink_b.make(), control);

  master.on_bytes(encode({1, RoleRequestMsg{Role::kMaster, 10}}), 0);
  drain_frames(master);
  rival.on_bytes(encode({2, RoleRequestMsg{Role::kMaster, 9}}), 0);
  const auto frames = drain_frames(rival);
  ASSERT_EQ(frames.size(), 1U);
  const auto* error = std::get_if<ErrorMsg>(&frames[0].message);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->type, ErrorType::kRoleRequestFailed);
  EXPECT_EQ(error->code, ErrorCode::kStale);
  EXPECT_EQ(rival.role(), Role::kEqual);
}

TEST(SessionRoles, SlaveFlowModsAreRejectedWithoutTouchingTheSink) {
  ControlPlane control;
  CountingSink sink;
  auto slave = steady_session(1, sink.make(), control);
  slave.on_bytes(encode({1, RoleRequestMsg{Role::kSlave, 1}}), 0);
  drain_frames(slave);

  slave.on_bytes(encode({2, make_mod(7)}), 0);
  slave.on_bytes(encode({3, EchoRequest{{1}}}), 0);
  const auto frames = drain_frames(slave);
  ASSERT_EQ(frames.size(), 2U);
  const auto* error = std::get_if<ErrorMsg>(&frames[0].message);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(frames[0].xid, 2U);
  EXPECT_EQ(error->type, ErrorType::kFlowModFailed);
  EXPECT_EQ(error->code, ErrorCode::kIsSlave);
  EXPECT_TRUE(std::holds_alternative<EchoReply>(frames[1].message));
  EXPECT_TRUE(sink.batches.empty());
  EXPECT_EQ(slave.counters().flow_mods_failed, 1U);
}

TEST(SessionResync, GCsStaleEntriesAndReportsMissing) {
  ControlPlane control;
  CountingSink sink;
  auto session = steady_session(1, sink.make(), control);

  // Publish ids 1..4 (journaled via the accepted sink results).
  for (std::uint32_t id = 1; id <= 4; ++id) {
    session.on_bytes(encode({id, make_mod(id)}), 0);
  }
  session.on_bytes(encode({9, EchoRequest{{0}}}), 0);  // barrier flush
  drain_frames(session);
  ASSERT_EQ(control.journal.size(), 4U);

  // Intent: keep 1 and 2, re-issue 3 with a new cookie, and claim an id 5
  // the switch never saw. Ids 4 and (old) 3 must be GC'd.
  ResyncRequestMsg request;
  request.done = true;
  request.entries = {{0, 1, 0x1001},
                     {0, 2, 0x1002},
                     {0, 3, 0x2222},
                     {0, 5, 0x1005}};
  session.on_bytes(encode({10, request}), 0);
  const auto frames = drain_frames(session);
  ASSERT_EQ(frames.size(), 1U);
  const auto* reply = std::get_if<ResyncReplyMsg>(&frames[0].message);
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->done);
  EXPECT_EQ(reply->deleted, 2U);
  ASSERT_EQ(reply->missing.size(), 2U);
  EXPECT_EQ(reply->missing[0].entry_id, 3U);
  EXPECT_EQ(reply->missing[1].entry_id, 5U);
  EXPECT_EQ(session.counters().resyncs, 1U);

  // The GC went through the ordinary sink path as one batch of deletes.
  ASSERT_FALSE(sink.batches.empty());
  const auto& gc = sink.batches.back();
  ASSERT_EQ(gc.size(), 2U);
  EXPECT_EQ(gc[0].mod.command, FlowModCommand::kDelete);
  EXPECT_EQ(gc[0].mod.entry.id, 3U);
  EXPECT_EQ(gc[1].mod.entry.id, 4U);

  // Journal converged to the intent minus the still-missing re-sends.
  EXPECT_TRUE(control.journal.contains(0, 1));
  EXPECT_TRUE(control.journal.contains(0, 2));
  EXPECT_FALSE(control.journal.contains(0, 3));
  EXPECT_FALSE(control.journal.contains(0, 4));
}

TEST(SessionResync, SlaveMayNotResyncAndChunksAccumulate) {
  ControlPlane control;
  CountingSink sink_a, sink_b;
  auto slave = steady_session(1, sink_a.make(), control);
  slave.on_bytes(encode({1, RoleRequestMsg{Role::kSlave, 1}}), 0);
  drain_frames(slave);
  ResyncRequestMsg request;
  request.done = true;
  slave.on_bytes(encode({2, request}), 0);
  auto frames = drain_frames(slave);
  ASSERT_EQ(frames.size(), 1U);
  const auto* error = std::get_if<ErrorMsg>(&frames[0].message);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kIsSlave);

  // A master streams the digest across chunks; only `done` triggers the diff.
  auto master = steady_session(2, sink_b.make(), control);
  ResyncRequestMsg chunk1;
  chunk1.done = false;
  chunk1.entries = {{0, 1, 0xA}};
  ResyncRequestMsg chunk2;
  chunk2.done = true;
  chunk2.entries = {{0, 2, 0xB}};
  master.on_bytes(encode({3, chunk1}), 0);
  EXPECT_TRUE(drain_frames(master).empty());
  master.on_bytes(encode({3, chunk2}), 0);
  frames = drain_frames(master);
  ASSERT_EQ(frames.size(), 1U);
  const auto* reply = std::get_if<ResyncReplyMsg>(&frames[0].message);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->missing.size(), 2U);  // both ids unknown to the journal
}

TEST(SessionResync, DigestOverCapDrainsTheSession) {
  ControlPlane control;
  CountingSink sink;
  SessionConfig config;
  config.resync_digest_cap = 4;
  auto session = steady_session(1, sink.make(), control, config);
  ResyncRequestMsg request;
  request.done = false;
  request.entries = {{0, 1, 1}, {0, 2, 2}, {0, 3, 3}, {0, 4, 4}, {0, 5, 5}};
  session.on_bytes(encode({1, request}), 0);
  const auto frames = drain_frames(session);
  ASSERT_FALSE(frames.empty());
  const auto* error = std::get_if<ErrorMsg>(&frames[0].message);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kBufferOverflow);
  EXPECT_NE(session.state(), Session::State::kSteady);
}

TEST(SessionOverload, ShedModsEarnBackoffHintedErrorsThenDrain) {
  AdmissionConfig admission;
  admission.min_dwell_ms = 0;
  admission.backoff_hint_ms = 77;
  admission.max_consecutive_rejects = 3;
  ControlPlane control{admission};
  CountingSink sink;
  auto session = steady_session(1, sink.make(), control);

  // Force SHED; the session holds no role, so its mods are rejected.
  control.admission.on_pressure_sample(0.80, 0);
  control.admission.on_pressure_sample(0.95, 1);
  ASSERT_EQ(control.admission.state(), AdmissionState::kShed);

  session.on_bytes(encode({1, make_mod(1)}), 10);
  session.on_bytes(encode({2, EchoRequest{{0}}}), 10);
  auto frames = drain_frames(session);
  ASSERT_EQ(frames.size(), 2U);
  const auto* error = std::get_if<ErrorMsg>(&frames[0].message);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->type, ErrorType::kFlowModFailed);
  EXPECT_EQ(error->code, ErrorCode::kOverload);
  // The reply data carries the 16-bit big-endian backoff hint.
  ASSERT_GE(error->data.size(), 2U);
  const auto hint_off = error->data.size() - 2;
  EXPECT_EQ((error->data[hint_off] << 8) | error->data[hint_off + 1], 77);
  EXPECT_TRUE(sink.batches.empty());
  EXPECT_EQ(session.counters().flow_mods_shed, 1U);

  // Two more rejected mods exhaust max_consecutive_rejects: drained.
  session.on_bytes(encode({3, make_mod(2)}), 11);
  session.on_bytes(encode({4, make_mod(3)}), 11);
  session.on_bytes(encode({5, EchoRequest{{0}}}), 11);
  drain_frames(session);
  EXPECT_NE(session.state(), Session::State::kSteady);
  EXPECT_EQ(session.close_reason(), CloseReason::kOverload);
}

TEST(SessionOverload, MasterKeepsPublishingUnderShed) {
  AdmissionConfig admission;
  admission.min_dwell_ms = 0;
  ControlPlane control{admission};
  CountingSink sink;
  auto master = steady_session(1, sink.make(), control);
  master.on_bytes(encode({1, RoleRequestMsg{Role::kMaster, 1}}), 0);
  drain_frames(master);
  control.admission.on_pressure_sample(0.80, 0);
  control.admission.on_pressure_sample(0.95, 1);
  ASSERT_EQ(control.admission.state(), AdmissionState::kShed);

  master.on_bytes(encode({2, make_mod(1)}), 10);
  master.on_bytes(encode({3, EchoRequest{{0}}}), 10);
  const auto frames = drain_frames(master);
  ASSERT_EQ(frames.size(), 1U);
  EXPECT_TRUE(std::holds_alternative<EchoReply>(frames[0].message));
  ASSERT_EQ(sink.batches.size(), 1U);
  EXPECT_EQ(master.counters().flow_mods_ok, 1U);
}

TEST(SessionDrain, StalledDrainClosesAtTheDeadline) {
  ControlPlane control;
  CountingSink sink;
  SessionConfig config;
  config.write_buffer_cap = 64;  // absurdly small: first reply overflows
  config.drain_timeout_ms = 500;
  auto session = steady_session(1, sink.make(), control, config);

  // Echo floods push the write buffer past its cap: backpressure drain.
  for (int i = 0; i < 8; ++i) {
    session.on_bytes(encode({static_cast<std::uint32_t>(10 + i),
                             EchoRequest{{1, 2, 3, 4, 5, 6, 7, 8}}}),
                     100);
  }
  ASSERT_EQ(session.state(), Session::State::kDraining);
  ASSERT_TRUE(session.next_deadline_ms().has_value());

  // The peer never reads. Before the deadline: still draining. After: gone.
  session.on_tick(100 + config.drain_timeout_ms - 1);
  EXPECT_EQ(session.state(), Session::State::kDraining);
  session.on_tick(100 + config.drain_timeout_ms + 1);
  EXPECT_EQ(session.state(), Session::State::kClosed);
}

TEST(SessionRoles, PromotionNoticeCarriesXidZero) {
  ControlPlane control;
  CountingSink sink;
  auto session = steady_session(1, sink.make(), control);
  session.on_bytes(encode({1, RoleRequestMsg{Role::kSlave, 1}}), 0);
  drain_frames(session);

  session.notify_role(Role::kMaster, 1, 0);
  const auto frames = drain_frames(session);
  ASSERT_EQ(frames.size(), 1U);
  EXPECT_EQ(frames[0].xid, 0U);
  const auto* reply = std::get_if<RoleReplyMsg>(&frames[0].message);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->role, Role::kMaster);
}

// --- FrameAssembler: every-boundary split sweep over the new vocabulary ---

TEST(FrameAssembler, EveryTwoPartSplitOfEveryMessageReassembles) {
  std::vector<std::vector<std::uint8_t>> frames = {
      encode({1, Hello{}}),
      encode({2, RoleRequestMsg{Role::kMaster, 0xDEADBEEF}}),
      encode({3, RoleReplyMsg{Role::kSlave, 7}}),
      encode({4, ResyncRequestMsg{true, {{0, 1, 0xA}, {1, 2, 0xB}}}}),
      encode({5, ResyncReplyMsg{true, 3, {{0, 9, 0xC}}}}),
      encode({6, make_mod(42)}),
  };
  std::vector<std::uint8_t> stream;
  for (const auto& f : frames) stream.insert(stream.end(), f.begin(), f.end());

  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameAssembler assembler;
    ASSERT_EQ(assembler.push({stream.data(), split}), FrameAssembler::Status::kOk);
    ASSERT_EQ(assembler.push({stream.data() + split, stream.size() - split}),
              FrameAssembler::Status::kOk);
    std::vector<std::uint8_t> frame;
    std::size_t got = 0;
    while (assembler.next(frame)) {
      ASSERT_LT(got, frames.size());
      ASSERT_EQ(frame, frames[got]) << "split at byte " << split;
      got++;
    }
    ASSERT_EQ(got, frames.size()) << "split at byte " << split;
    ASSERT_EQ(assembler.buffered(), 0U);
  }
}

// --- chaos toolkit determinism ---

TEST(Chaos, SchedulerReplaysBitIdenticallyFromTheSeed) {
  ChaosProfile profile;
  profile.kill_every = 4;
  profile.stall_p = 0.3;
  profile.partition_p = 0.2;
  profile.clock_skew_p = 0.1;
  ChaosScheduler a(42, profile);
  ChaosScheduler b(42, profile);
  ChaosScheduler c(43, profile);
  bool diverged_from_c = false;
  for (int i = 0; i < 256; ++i) {
    const auto edge = static_cast<ChaosEdge>(i % 5);
    const auto da = a.decide(edge);
    const auto db = b.decide(edge);
    const auto dc = c.decide(edge);
    ASSERT_EQ(da.action, db.action);
    ASSERT_EQ(da.param_ms, db.param_ms);
    if (da.action != dc.action || da.param_ms != dc.param_ms) {
      diverged_from_c = true;
    }
  }
  EXPECT_TRUE(diverged_from_c);  // a different seed is a different schedule
  EXPECT_EQ(a.chunks_seen(), b.chunks_seen());
}

TEST(Chaos, KillEveryFiresOnChunkEdgesOnly) {
  ChaosProfile profile;
  profile.kill_every = 3;
  ChaosScheduler chaos(1, profile);
  int kills = 0;
  for (int i = 0; i < 9; ++i) {
    if (chaos.decide(ChaosEdge::kChunkSent).action == ChaosAction::kKill) {
      kills++;
    }
    // Non-chunk edges never trip the periodic kill counter.
    ASSERT_EQ(chaos.decide(ChaosEdge::kBarrier).action, ChaosAction::kNone);
  }
  EXPECT_EQ(kills, 3);
}

// --- live server: chaos-only paths ---

MultiTableLookup one_table() {
  MultiTableLookup tables;
  tables.add_table(LookupTable({FieldId::kEthDst}, {}));
  return tables;
}

TEST(OfpServerChaos, VirtualClockDrivesEchoTimeoutWithoutSleeps) {
  VirtualClock clock;
  ServerConfig config;
  config.session.echo_interval_ms = 5000;
  config.session.echo_timeout_ms = 2000;
  config.hooks.now_ms = clock.hook();
  runtime::SnapshotClassifier classifier(one_table());
  OfpServer server(make_classifier_sink(classifier), config);
  ASSERT_TRUE(server.start());

  ScriptedController controller;
  ASSERT_TRUE(controller.connect(server.port()));
  // Idle at frozen virtual time: the probe never fires, the session lives.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(server.stats().echo_timeouts, 0U);
  EXPECT_EQ(server.active_sessions(), 1U);

  // Jump past the echo interval; the loop's 200ms wake floor picks the new
  // time up and fires the probe (frame #2 after the HELLO).
  clock.advance(6000);
  EXPECT_TRUE(wait_until([&] { return server.stats().frames_tx >= 2; }, 2000));
  // The probe deadline is grace past the *advanced* clock: jump again. The
  // peer stays silent, so the session must die.
  clock.advance(3000);
  EXPECT_TRUE(wait_until(
      [&] { return server.stats().echo_timeouts == 1; }, 2000));
  EXPECT_TRUE(wait_until([&] { return server.active_sessions() == 0; }, 2000));
  server.stop();
}

TEST(OfpServerChaos, EmfileStormPausesAcceptThenRecovers) {
  SyscallFaultInjector faults(7);
  ServerConfig config;
  config.accept_backoff_ms = 50;
  config.hooks = faults.hooks();
  runtime::SnapshotClassifier classifier(one_table());
  OfpServer server(make_classifier_sink(classifier), config);
  ASSERT_TRUE(server.start());

  faults.arm_accept_failures(2, EMFILE);
  ScriptedController first;
  // The first connect lands while accept is failing: TCP connects (backlog)
  // but the server-side accept is deferred until the backoff elapses, so the
  // handshake simply takes one backoff longer.
  ASSERT_TRUE(first.connect(server.port()));
  EXPECT_TRUE(wait_until(
      [&] { return server.stats().accept_pauses >= 1; }, 2000));
  EXPECT_TRUE(wait_until([&] { return server.active_sessions() == 1; }, 2000));

  // Fully recovered: the next controller gets in without armed faults.
  ScriptedController second;
  ASSERT_TRUE(second.connect(server.port()));
  EXPECT_TRUE(wait_until([&] { return server.active_sessions() == 2; }, 2000));
  server.stop();
}

TEST(OfpServerChaos, ForcedPartialSyscallsStillConverge) {
  SyscallFaultInjector faults(11);
  faults.set_partial_p(0.5);  // every other read/send truncated to 1 byte
  ServerConfig config;
  config.hooks = faults.hooks();
  runtime::SnapshotClassifier classifier(one_table());
  OfpServer server(make_classifier_sink(classifier), config);
  ASSERT_TRUE(server.start());

  ScriptedController controller;
  ASSERT_TRUE(controller.connect(server.port()));
  for (std::uint32_t id = 1; id <= 32; ++id) {
    ASSERT_TRUE(controller.send(encode({controller.next_xid(), make_mod(id)})));
  }
  ASSERT_TRUE(controller.barrier().ok);
  {
    const auto guard = classifier.acquire();
    for (std::uint32_t id = 1; id <= 32; ++id) {
      EXPECT_TRUE(guard.tables().contains_entry(0, id));
    }
  }
  server.stop();
}

TEST(OfpServerChaos, RstPeerWithQueuedOutputDoesNotRaiseSigpipe) {
  // MSG_NOSIGNAL regression: queue replies at a peer that RSTs without
  // reading. A SIGPIPE would kill the whole test binary, so surviving to
  // the end of this test IS the assertion.
  runtime::SnapshotClassifier classifier(one_table());
  ServerConfig config;
  OfpServer server(make_classifier_sink(classifier), config);
  ASSERT_TRUE(server.start());

  for (int round = 0; round < 8; ++round) {
    ScriptedController controller;
    ASSERT_TRUE(controller.connect(server.port()));
    // Pile up replies (echo floods) without reading any of them...
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(controller.send(
          encode({controller.next_xid(), EchoRequest{{1, 2, 3}}})));
    }
    // ...then slam the door. The server's pending writes hit an RST'd fd.
    controller.socket().rst();
  }
  EXPECT_TRUE(wait_until([&] { return server.active_sessions() == 0; }, 3000));
  EXPECT_TRUE(server.running());
  server.stop();
}

TEST(OfpServerChaos, MasterKillPromotesResyncsAndConverges) {
  runtime::SnapshotClassifier classifier(one_table());
  ServerConfig config;
  OfpServer server(make_classifier_sink(classifier), config);
  ASSERT_TRUE(server.start());

  ScriptedController master, standby;
  ASSERT_TRUE(master.connect(server.port()));
  ASSERT_TRUE(standby.connect(server.port()));
  auto claimed = master.request_role(Role::kMaster, 1);
  ASSERT_TRUE(claimed.has_value());
  ASSERT_EQ(claimed->role, Role::kMaster);
  claimed = standby.request_role(Role::kSlave, 2);
  ASSERT_TRUE(claimed.has_value());
  ASSERT_EQ(claimed->role, Role::kSlave);

  // The master publishes ids 1..8 and confirms them with a barrier, then
  // ships 9..10 and dies before any barrier could confirm them.
  for (std::uint32_t id = 1; id <= 8; ++id) {
    ASSERT_TRUE(master.send(
        encode({master.next_xid(), make_mod(id, FlowModCommand::kAdd,
                                            0x5000 + id)})));
  }
  ASSERT_TRUE(master.barrier().ok);
  for (std::uint32_t id = 9; id <= 10; ++id) {
    ASSERT_TRUE(master.send(
        encode({master.next_xid(), make_mod(id, FlowModCommand::kAdd,
                                            0x5000 + id)})));
  }
  ASSERT_TRUE(master.barrier().ok);  // make them land, but do NOT checkpoint
  master.socket().rst();

  // Promotion notice reaches the standby without any election traffic.
  const auto notice = standby.await_promotion();
  ASSERT_TRUE(notice.has_value());
  EXPECT_EQ(notice->role, Role::kMaster);
  EXPECT_TRUE(wait_until([&] { return server.stats().promotions == 1; }, 2000));

  // Resync to the survivor's confirmed intent (1..8): 9..10 are GC'd as
  // stale, nothing is missing.
  std::vector<ResyncEntry> intent;
  for (std::uint32_t id = 1; id <= 8; ++id) intent.push_back({0, id, 0x5000 + id});
  const auto verdict = standby.resync(intent);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->deleted, 2U);
  EXPECT_TRUE(verdict->missing.empty());

  {
    const auto guard = classifier.acquire();
    for (std::uint32_t id = 1; id <= 8; ++id) {
      EXPECT_TRUE(guard.tables().contains_entry(0, id)) << id;
    }
    EXPECT_FALSE(guard.tables().contains_entry(0, 9));
    EXPECT_FALSE(guard.tables().contains_entry(0, 10));
  }

  // A fenced ex-master reconnecting with its stale generation stays out.
  ScriptedController ghost;
  ASSERT_TRUE(ghost.connect(server.port()));
  EXPECT_FALSE(ghost.request_role(Role::kMaster, 1).has_value());

  const auto stats = server.stats();
  EXPECT_EQ(stats.resyncs, 1U);
  EXPECT_GE(stats.role_changes, 3U);  // master, slave, promotion
  server.stop();
}

}  // namespace
}  // namespace ofmtl::ofp::server
