// The OFP control-plane server, bottom-up: FrameAssembler reassembly under
// arbitrary fragmentation, the sans-io Session state machine (handshake,
// echo liveness, flow-mod batching with barrier semantics, backpressure and
// malformed-input degradation — all on a virtual clock, no sockets), the
// FlowModSink adapters, and finally the epoll OfpServer end-to-end over
// loopback TCP with scripted fault injection (byte-at-a-time delivery,
// mid-message RST, slow readers). The robustness contract under test: no
// peer input ever crashes the server; it answers ERROR or closes gracefully.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "ofp/server/flow_mod_sink.hpp"
#include "ofp/server/frame_assembler.hpp"
#include "ofp/server/server.hpp"
#include "ofp/server/session.hpp"
#include "ofp/testing/fault_injection.hpp"
#include "runtime/snapshot.hpp"
#include "workload/rng.hpp"

namespace ofmtl::ofp::server {
namespace {

using testing::FaultLevel;
using testing::FaultySocket;
using testing::feed_fragmented;
using testing::FrameFault;
using testing::make_fault;
using testing::ScriptedController;

// --- shared helpers ---

std::vector<std::uint8_t> flow_mod_frame(std::uint32_t xid, std::uint32_t id,
                                         FlowModCommand command =
                                             FlowModCommand::kAdd,
                                         std::uint8_t table = 0) {
  FlowModMsg mod;
  mod.command = command;
  mod.table_id = table;
  mod.entry.id = id;
  mod.entry.priority = 1;
  mod.entry.match.set(FieldId::kEthDst, FieldMatch::exact(std::uint64_t{id}));
  mod.entry.instructions = output_instruction(id % 1024);
  return encode({xid, mod});
}

/// Sink that records batch sizes and answers with scripted codes (kNone when
/// the script runs out).
struct RecordingSink {
  std::vector<std::size_t> batches;
  std::vector<std::uint32_t> xids;
  std::vector<ErrorCode> script;

  FlowModSink make() {
    return [this](std::span<const PendingFlowMod> mods,
                  std::span<ErrorCode> results) {
      batches.push_back(mods.size());
      for (std::size_t i = 0; i < mods.size(); ++i) {
        xids.push_back(mods[i].xid);
        const auto n = xids.size() - 1;
        results[i] = n < script.size() ? script[n] : ErrorCode::kNone;
      }
    };
  }
};

/// Decode every frame the session has queued, consuming its output.
std::vector<Envelope> drain_frames(Session& session) {
  FrameAssembler assembler;
  const auto pending = session.pending_output();
  EXPECT_EQ(assembler.push(pending), FrameAssembler::Status::kOk);
  session.consume_output(pending.size());
  std::vector<Envelope> envelopes;
  std::vector<std::uint8_t> frame;
  while (assembler.next(frame)) {
    Envelope envelope;
    EXPECT_EQ(try_decode(frame, envelope), DecodeStatus::kOk);
    envelopes.push_back(std::move(envelope));
  }
  return envelopes;
}

/// A steady-state session: HELLO handshake done, server HELLO drained.
Session steady_session(FlowModSink sink, SessionConfig config = {}) {
  Session session(1, config, std::move(sink), 0);
  session.on_bytes(encode({1, Hello{}}), 0);
  const auto hello = drain_frames(session);
  EXPECT_EQ(hello.size(), 1U);
  EXPECT_EQ(session.state(), Session::State::kSteady);
  return session;
}

bool wait_until(const std::function<bool()>& predicate, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

// --- FrameAssembler ---

TEST(FrameAssembler, ReassemblesAtEveryFragmentation) {
  std::vector<std::uint8_t> stream;
  std::vector<std::vector<std::uint8_t>> frames = {
      encode({1, Hello{}}),
      encode({2, EchoRequest{{1, 2, 3, 4, 5}}}),
      flow_mod_frame(3, 7),
  };
  for (const auto& f : frames) stream.insert(stream.end(), f.begin(), f.end());

  for (std::size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    FrameAssembler assembler;
    std::vector<std::vector<std::uint8_t>> got;
    std::vector<std::uint8_t> frame;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const auto n = std::min(chunk, stream.size() - off);
      ASSERT_EQ(assembler.push({stream.data() + off, n}),
                FrameAssembler::Status::kOk);
      while (assembler.next(frame)) got.push_back(frame);
    }
    ASSERT_EQ(got, frames) << "chunk size " << chunk;
    EXPECT_EQ(assembler.buffered(), 0U);
  }
}

TEST(FrameAssembler, BadLengthPoisonsButEarlierFramesDrain) {
  FrameAssembler assembler;
  auto good = encode({1, Hello{}});
  std::vector<std::uint8_t> bad = {kProtocolVersion, 0, 0, 4, 0, 0, 0, 9};
  auto stream = good;
  stream.insert(stream.end(), bad.begin(), bad.end());
  // The bad header hides behind the good frame, so the push itself is clean;
  // popping the good frame exposes it and poisons the stream eagerly.
  EXPECT_EQ(assembler.push(stream), FrameAssembler::Status::kOk);
  std::vector<std::uint8_t> frame;
  EXPECT_TRUE(assembler.next(frame));  // the good frame survives
  EXPECT_EQ(frame, good);
  EXPECT_EQ(assembler.status(), FrameAssembler::Status::kBadLength);
  EXPECT_FALSE(assembler.next(frame));
  // Sticky: nothing rehabilitates the stream.
  EXPECT_EQ(assembler.push(good), FrameAssembler::Status::kBadLength);
}

TEST(FrameAssembler, OverflowIsStickyAndBounded) {
  FrameAssembler assembler(16);
  // One frame claiming 100 bytes can never complete within a 16-byte cap.
  std::vector<std::uint8_t> header = {kProtocolVersion, 0, 0, 100, 0, 0, 0, 1};
  EXPECT_EQ(assembler.push(header), FrameAssembler::Status::kOk);
  std::vector<std::uint8_t> filler(20, 0xAB);
  EXPECT_EQ(assembler.push(filler), FrameAssembler::Status::kOverflow);
  EXPECT_EQ(assembler.push(filler), FrameAssembler::Status::kOverflow);
  EXPECT_LE(assembler.buffered(), 16U);
}

// --- Session: sans-io state machine ---

TEST(Session, HandshakeThenEchoAtArbitraryFragmentation) {
  workload::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    RecordingSink sink;
    Session session(1, {}, sink.make(), 0);
    EXPECT_EQ(session.state(), Session::State::kAwaitHello);

    std::vector<std::uint8_t> stream = encode({1, Hello{}});
    const auto echo = encode({2, EchoRequest{{0xAA, 0xBB}}});
    stream.insert(stream.end(), echo.begin(), echo.end());
    feed_fragmented(session, stream, rng, 0);

    EXPECT_EQ(session.state(), Session::State::kSteady);
    const auto out = drain_frames(session);
    ASSERT_EQ(out.size(), 2U);  // our HELLO + the echo reply
    EXPECT_TRUE(std::holds_alternative<Hello>(out[0].message));
    EXPECT_EQ(out[1].xid, 2U);
    EXPECT_EQ(std::get<EchoReply>(out[1].message).payload,
              (std::vector<std::uint8_t>{0xAA, 0xBB}));
    EXPECT_EQ(session.counters().frames_rx, 2U);
  }
}

TEST(Session, TrafficBeforeHelloFailsHandshake) {
  RecordingSink sink;
  Session session(1, {}, sink.make(), 0);
  session.on_bytes(encode({9, EchoRequest{{1}}}), 0);
  EXPECT_EQ(session.state(), Session::State::kDraining);
  EXPECT_EQ(session.close_reason(), CloseReason::kHandshakeFailed);
  const auto out = drain_frames(session);
  ASSERT_EQ(out.size(), 2U);  // HELLO was already queued, then the ERROR
  const auto& error = std::get<ErrorMsg>(out[1].message);
  EXPECT_EQ(error.type, ErrorType::kHelloFailed);
  EXPECT_TRUE(session.wants_close());  // output drained, nothing left
}

TEST(Session, MalformedFirstFrameFailsHandshake) {
  RecordingSink sink;
  Session session(1, {}, sink.make(), 0);
  auto bytes = encode({9, Hello{}});
  bytes[0] = 9;  // wrong version
  session.on_bytes(bytes, 0);
  EXPECT_EQ(session.close_reason(), CloseReason::kHandshakeFailed);
  const auto out = drain_frames(session);
  ASSERT_EQ(out.size(), 2U);
  EXPECT_EQ(std::get<ErrorMsg>(out[1].message).code, ErrorCode::kBadVersion);
  EXPECT_EQ(session.counters().malformed_frames, 1U);
}

TEST(Session, FlowModsBatchUntilBarrier) {
  RecordingSink sink;
  auto session = steady_session(sink.make());
  std::vector<std::uint8_t> stream;
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto f = flow_mod_frame(10 + i, 100 + i);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  const auto echo = encode({20, EchoRequest{{1}}});
  stream.insert(stream.end(), echo.begin(), echo.end());
  session.on_bytes(stream, 1);

  // One batch, flushed by the echo barrier — not three.
  ASSERT_EQ(sink.batches, (std::vector<std::size_t>{3}));
  EXPECT_EQ(sink.xids, (std::vector<std::uint32_t>{10, 11, 12}));
  const auto out = drain_frames(session);
  ASSERT_EQ(out.size(), 1U);  // echo reply only: successful mods are silent
  EXPECT_EQ(out[0].xid, 20U);
  EXPECT_EQ(session.counters().flow_mods_ok, 3U);
}

TEST(Session, PendingModsFlushAtEndOfRead) {
  RecordingSink sink;
  auto session = steady_session(sink.make());
  session.on_bytes(flow_mod_frame(10, 100), 1);
  // No barrier message arrived, but the read event ended: the batch must
  // not linger unapplied while the connection idles.
  ASSERT_EQ(sink.batches, (std::vector<std::size_t>{1}));
}

TEST(Session, MaxModsPerBatchForcesFlush) {
  RecordingSink sink;
  SessionConfig config;
  config.max_mods_per_batch = 2;
  auto session = steady_session(sink.make(), config);
  std::vector<std::uint8_t> stream;
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto f = flow_mod_frame(10 + i, 100 + i);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  session.on_bytes(stream, 1);
  ASSERT_EQ(sink.batches, (std::vector<std::size_t>{2, 2, 1}));
}

TEST(Session, FailedModsEarnErrorRepliesBeforeTheBarrierReply) {
  RecordingSink sink;
  sink.script = {ErrorCode::kNone, ErrorCode::kDuplicateEntry};
  auto session = steady_session(sink.make());
  std::vector<std::uint8_t> stream = flow_mod_frame(10, 100);
  const auto dup = flow_mod_frame(11, 100);
  stream.insert(stream.end(), dup.begin(), dup.end());
  const auto echo = encode({12, EchoRequest{{1}}});
  stream.insert(stream.end(), echo.begin(), echo.end());
  session.on_bytes(stream, 1);

  const auto out = drain_frames(session);
  ASSERT_EQ(out.size(), 2U);
  // ERROR for the failed mod precedes the echo reply: replies stay in frame
  // order, so the barrier proves every earlier mod was applied or answered.
  EXPECT_EQ(out[0].xid, 11U);
  EXPECT_EQ(std::get<ErrorMsg>(out[0].message).code,
            ErrorCode::kDuplicateEntry);
  EXPECT_EQ(out[1].xid, 12U);
  EXPECT_EQ(session.counters().flow_mods_ok, 1U);
  EXPECT_EQ(session.counters().flow_mods_failed, 1U);
}

TEST(Session, MalformedSteadyFrameAnswersErrorAndTolerates) {
  RecordingSink sink;
  auto session = steady_session(sink.make());
  auto bad = encode({30, EchoRequest{{1, 2}}});
  bad[1] = 250;  // unknown type
  session.on_bytes(bad, 1);
  EXPECT_EQ(session.state(), Session::State::kSteady);  // tolerant by default
  const auto out = drain_frames(session);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].xid, 30U);
  EXPECT_EQ(std::get<ErrorMsg>(out[0].message).code, ErrorCode::kBadType);
  EXPECT_EQ(session.counters().malformed_frames, 1U);

  // The session still works afterwards.
  session.on_bytes(encode({31, EchoRequest{{3}}}), 2);
  const auto next = drain_frames(session);
  ASSERT_EQ(next.size(), 1U);
  EXPECT_EQ(next[0].xid, 31U);
}

TEST(Session, CloseOnMalformedConfigDrains) {
  RecordingSink sink;
  SessionConfig config;
  config.close_on_malformed = true;
  auto session = steady_session(sink.make(), config);
  auto bad = encode({30, Hello{}});
  bad[1] = 250;
  session.on_bytes(bad, 1);
  EXPECT_EQ(session.state(), Session::State::kDraining);
  EXPECT_EQ(session.close_reason(), CloseReason::kProtocolError);
}

TEST(Session, FramingDesyncClosesAfterBestEffortError) {
  RecordingSink sink;
  auto session = steady_session(sink.make());
  // Length field below the header size: reassembly cannot resynchronize.
  session.on_bytes(std::vector<std::uint8_t>{kProtocolVersion, 0, 0, 4}, 1);
  EXPECT_EQ(session.state(), Session::State::kDraining);
  EXPECT_EQ(session.close_reason(), CloseReason::kProtocolError);
  const auto out = drain_frames(session);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(std::get<ErrorMsg>(out[0].message).code, ErrorCode::kBadLength);
  EXPECT_TRUE(session.wants_close());
}

TEST(Session, ReadOverflowCloses) {
  RecordingSink sink;
  SessionConfig config;
  config.read_buffer_cap = 32;
  auto session = steady_session(sink.make(), config);
  // A frame claiming 16 KiB parks partial bytes past the tiny cap.
  std::vector<std::uint8_t> header = {kProtocolVersion, 0, 0x40, 0, 0, 0, 0, 1};
  header.resize(64, 0);
  session.on_bytes(header, 1);
  EXPECT_EQ(session.close_reason(), CloseReason::kReadOverflow);
}

TEST(Session, BackpressureDrainsSlowReader) {
  RecordingSink sink;
  SessionConfig config;
  config.write_buffer_cap = 256;
  auto session = steady_session(sink.make(), config);
  // Echo requests whose replies the "peer" never reads: the write buffer
  // fills to the cap, then the session drains instead of growing.
  const std::vector<std::uint8_t> payload(100, 0xEE);
  std::uint32_t xid = 50;
  for (int i = 0; i < 10 &&
                  session.state() == Session::State::kSteady; ++i) {
    session.on_bytes(encode({xid++, EchoRequest{payload}}), 1);
  }
  EXPECT_EQ(session.state(), Session::State::kDraining);
  EXPECT_EQ(session.close_reason(), CloseReason::kBackpressure);
  EXPECT_LE(session.output_buffered(), config.write_buffer_cap);
  // The drain flushes what the peer already earned, then wants the close.
  session.consume_output(session.pending_output().size());
  EXPECT_TRUE(session.wants_close());
}

TEST(Session, EchoProbeThenTimeoutCloses) {
  RecordingSink sink;
  SessionConfig config;
  config.echo_interval_ms = 100;
  config.echo_timeout_ms = 50;
  auto session = steady_session(sink.make(), config);

  ASSERT_TRUE(session.next_deadline_ms().has_value());
  EXPECT_EQ(*session.next_deadline_ms(), 100U);
  session.on_tick(99);
  EXPECT_EQ(session.counters().echo_probes, 0U);
  session.on_tick(100);  // idle hit the interval: probe goes out
  EXPECT_EQ(session.counters().echo_probes, 1U);
  const auto out = drain_frames(session);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_TRUE(std::holds_alternative<EchoRequest>(out[0].message));
  EXPECT_EQ(*session.next_deadline_ms(), 150U);

  session.on_tick(149);
  EXPECT_EQ(session.state(), Session::State::kSteady);
  session.on_tick(150);  // probe unanswered past the grace
  EXPECT_EQ(session.close_reason(), CloseReason::kEchoTimeout);
  EXPECT_TRUE(session.wants_close());
}

TEST(Session, AnyInboundByteAnswersProbe) {
  RecordingSink sink;
  SessionConfig config;
  config.echo_interval_ms = 100;
  config.echo_timeout_ms = 50;
  auto session = steady_session(sink.make(), config);
  session.on_tick(100);
  EXPECT_EQ(session.counters().echo_probes, 1U);
  session.on_bytes(encode({77, EchoReply{{}}}), 120);  // peer answered
  session.on_tick(150);
  EXPECT_EQ(session.state(), Session::State::kSteady);
  EXPECT_EQ(*session.next_deadline_ms(), 220U);  // idle clock restarted
}

TEST(Session, PeerCloseFlushesPendingMods) {
  RecordingSink sink;
  auto session = steady_session(sink.make());
  session.on_bytes(flow_mod_frame(10, 1), 1);
  session.on_peer_closed(2);
  EXPECT_EQ(session.close_reason(), CloseReason::kPeerClosed);
  // The mod that arrived before EOF was applied, not dropped.
  ASSERT_FALSE(sink.batches.empty());
}

// --- FlowModSink adapters ---

MultiTableLookup one_table() {
  MultiTableLookup tables;
  tables.add_table(LookupTable({FieldId::kEthDst}, {}));
  return tables;
}

PendingFlowMod pending(std::uint32_t xid, std::uint32_t id,
                       FlowModCommand command = FlowModCommand::kAdd,
                       std::uint8_t table = 0) {
  PendingFlowMod p;
  p.xid = xid;
  p.mod.command = command;
  p.mod.table_id = table;
  p.mod.entry.id = id;
  p.mod.entry.priority = 1;
  p.mod.entry.match.set(FieldId::kEthDst, FieldMatch::exact(std::uint64_t{id}));
  p.mod.entry.instructions = output_instruction(id % 1024);  // as flow_mod_frame
  return p;
}

TEST(FlowModSinks, ApplyModsValidatesPerMod) {
  auto tables = one_table();
  const std::vector<PendingFlowMod> mods = {
      pending(1, 10),                              // ok
      pending(2, 10),                              // duplicate add
      pending(3, 11, FlowModCommand::kModify),     // unknown id
      pending(4, 11, FlowModCommand::kDelete),     // unknown id
      pending(5, 12, FlowModCommand::kAdd, 9),     // bad table
      pending(6, 10, FlowModCommand::kDelete),     // ok: removes 10
  };
  std::vector<ErrorCode> results(mods.size(), ErrorCode::kNone);
  apply_mods(tables, mods, results);
  EXPECT_EQ(results,
            (std::vector<ErrorCode>{ErrorCode::kNone, ErrorCode::kDuplicateEntry,
                                    ErrorCode::kUnknownEntry,
                                    ErrorCode::kUnknownEntry,
                                    ErrorCode::kBadValue, ErrorCode::kNone}));
  EXPECT_FALSE(tables.contains_entry(0, 10));
}

TEST(FlowModSinks, ClassifierSinkPublishesOncePerBatch) {
  runtime::SnapshotClassifier classifier(one_table());
  auto sink = make_classifier_sink(classifier);
  const auto before = classifier.epoch();

  std::vector<PendingFlowMod> mods = {pending(1, 10), pending(2, 11),
                                      pending(3, 10)};  // last: duplicate
  std::vector<ErrorCode> results(mods.size(), ErrorCode::kNone);
  sink(mods, results);

  EXPECT_EQ(classifier.epoch(), before + 1);  // ONE publish for the batch
  EXPECT_EQ(results[0], ErrorCode::kNone);
  EXPECT_EQ(results[1], ErrorCode::kNone);
  EXPECT_EQ(results[2], ErrorCode::kDuplicateEntry);
  const auto guard = classifier.acquire();
  EXPECT_TRUE(guard.tables().contains_entry(0, 10));
  EXPECT_TRUE(guard.tables().contains_entry(0, 11));
}

// --- OfpServer: live sockets + fault injection ---

ServerConfig quick_config() {
  ServerConfig config;
  config.session.echo_interval_ms = 60'000;  // no probes unless a test asks
  return config;
}

TEST(OfpServer, StartHandshakeStop) {
  RecordingSink sink;
  OfpServer server(sink.make(), quick_config());
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.port(), 0);

  ScriptedController controller;
  ASSERT_TRUE(controller.connect(server.port()));
  ASSERT_TRUE(wait_until([&] { return server.stats().handshakes == 1; }, 2000));
  EXPECT_EQ(server.active_sessions(), 1U);

  const auto barrier = controller.barrier();
  EXPECT_TRUE(barrier.ok);
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.active_sessions(), 0U);
}

TEST(OfpServer, ByteAtATimeDeliveryConverges) {
  runtime::SnapshotClassifier classifier(one_table());
  OfpServer server(make_classifier_sink(classifier), quick_config());
  ASSERT_TRUE(server.start());

  ScriptedController controller;
  ASSERT_TRUE(controller.connect(server.port()));
  FrameFault byte_at_a_time;
  byte_at_a_time.chunks = {1};
  for (std::uint32_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(controller.send(flow_mod_frame(controller.next_xid(), id),
                                byte_at_a_time));
  }
  const auto barrier = controller.barrier();
  ASSERT_TRUE(barrier.ok);
  EXPECT_EQ(barrier.errors_seen, 0U);

  const auto guard = classifier.acquire();
  for (std::uint32_t id = 1; id <= 5; ++id) {
    EXPECT_TRUE(guard.tables().contains_entry(0, id)) << "id " << id;
  }
  server.stop();
}

TEST(OfpServer, MalformedFrameAnswersErrorOverTheWire) {
  RecordingSink sink;
  OfpServer server(sink.make(), quick_config());
  ASSERT_TRUE(server.start());

  ScriptedController controller;
  ASSERT_TRUE(controller.connect(server.port()));
  auto bad = encode({99, EchoRequest{{1, 2, 3}}});
  bad[1] = 250;  // unknown type, length still consistent
  ASSERT_TRUE(controller.send(bad));
  const auto frame = controller.socket().read_frame();
  ASSERT_TRUE(frame.has_value());
  Envelope envelope;
  ASSERT_EQ(try_decode(*frame, envelope), DecodeStatus::kOk);
  EXPECT_EQ(envelope.xid, 99U);
  EXPECT_EQ(std::get<ErrorMsg>(envelope.message).code, ErrorCode::kBadType);

  // The session survived: it still answers echoes.
  EXPECT_TRUE(controller.barrier().ok);
  EXPECT_GE(server.stats().malformed_frames, 1U);
  server.stop();
}

TEST(OfpServer, MidMessageRstThenReconnectConverges) {
  runtime::SnapshotClassifier classifier(one_table());
  OfpServer server(make_classifier_sink(classifier), quick_config());
  ASSERT_TRUE(server.start());

  {
    ScriptedController controller;
    ASSERT_TRUE(controller.connect(server.port()));
    const auto frame = flow_mod_frame(controller.next_xid(), 1);
    FrameFault cut_mid_frame;
    cut_mid_frame.cut = frame.size() / 2;  // partial frame, then hard RST
    EXPECT_FALSE(controller.send(frame, cut_mid_frame));
  }
  ASSERT_TRUE(
      wait_until([&] { return server.stats().sessions_closed >= 1; }, 2000));

  // The replayed controller resends everything; the server state converges.
  ScriptedController retry;
  ASSERT_TRUE(retry.connect(server.port()));
  ASSERT_TRUE(retry.send(flow_mod_frame(retry.next_xid(), 1)));
  ASSERT_TRUE(retry.barrier().ok);
  EXPECT_TRUE(classifier.acquire().tables().contains_entry(0, 1));
  server.stop();
}

TEST(OfpServer, TrafficBeforeHelloIsRejectedGracefully) {
  RecordingSink sink;
  OfpServer server(sink.make(), quick_config());
  ASSERT_TRUE(server.start());

  auto sock = FaultySocket::connect(server.port());
  ASSERT_TRUE(sock.has_value());
  ASSERT_TRUE(sock->send_all(encode({5, EchoRequest{{1}}})));  // no HELLO
  // Server answers HELLO (its own), then ERROR, then closes.
  bool saw_error = false;
  while (const auto frame = sock->read_frame()) {
    Envelope envelope;
    if (try_decode(*frame, envelope) != DecodeStatus::kOk) continue;
    if (const auto* error = std::get_if<ErrorMsg>(&envelope.message)) {
      EXPECT_EQ(error->type, ErrorType::kHelloFailed);
      saw_error = true;
    }
  }
  EXPECT_TRUE(saw_error);
  ASSERT_TRUE(
      wait_until([&] { return server.stats().protocol_closes >= 1; }, 2000));
  server.stop();
}

TEST(OfpServer, EchoTimeoutClosesSilentPeer) {
  RecordingSink sink;
  ServerConfig config;
  config.session.echo_interval_ms = 50;
  config.session.echo_timeout_ms = 50;
  OfpServer server(sink.make(), config);
  ASSERT_TRUE(server.start());

  ScriptedController controller;
  ASSERT_TRUE(controller.connect(server.port()));
  // Never answer the probe: the server must declare the peer dead.
  ASSERT_TRUE(
      wait_until([&] { return server.stats().echo_timeouts >= 1; }, 3000));
  EXPECT_EQ(server.active_sessions(), 0U);
  server.stop();
}

TEST(OfpServer, SlowReaderIsClosedUnderBackpressure) {
  RecordingSink sink;
  ServerConfig config;
  config.session.echo_interval_ms = 60'000;
  config.session.write_buffer_cap = 4 * 1024;
  OfpServer server(sink.make(), config);
  ASSERT_TRUE(server.start());

  auto sock = FaultySocket::connect(server.port());
  ASSERT_TRUE(sock.has_value());
  ASSERT_TRUE(sock->send_all(encode({1, Hello{}})));
  // Firehose echo requests without reading any replies: once the kernel
  // socket buffers fill, the session's write queue hits its cap and the
  // session must switch to a bounded drain instead of queuing unboundedly.
  const std::vector<std::uint8_t> payload(8192, 0xCD);
  for (int i = 0; i < 1500; ++i) {
    if (!sock->send_all(encode(
            {static_cast<std::uint32_t>(100 + i), EchoRequest{payload}}))) {
      break;  // server already hung up on us
    }
  }
  // Now read: the server flushes what we earned, then closes on us.
  while (sock->read_frame().has_value()) {
  }
  ASSERT_TRUE(
      wait_until([&] { return server.stats().backpressure_closes >= 1; }, 5000));
  server.stop();
}

TEST(OfpServer, ConcurrentFaultySessionsConvergeToOracle) {
  constexpr std::uint32_t kSessions = 4;
  constexpr std::uint32_t kModsPerSession = 25;

  runtime::SnapshotClassifier classifier(one_table());
  OfpServer server(make_classifier_sink(classifier), quick_config());
  ASSERT_TRUE(server.start());

  std::atomic<std::uint32_t> converged{0};
  std::vector<std::thread> controllers;
  for (std::uint32_t s = 0; s < kSessions; ++s) {
    controllers.emplace_back([&, s] {
      workload::Rng rng(1000 + s);
      const std::uint32_t base = 1 + s * kModsPerSession;
      ScriptedController controller;
      // Replay-from-start on every connection loss: duplicate adds earn
      // ERROR replies, but the final state is the same (exactly-once
      // effect via idempotent replay + disjoint id ranges).
      for (int attempt = 0; attempt < 64; ++attempt) {
        if (!controller.connect(server.port())) continue;
        bool alive = true;
        for (std::uint32_t i = 0; i < kModsPerSession && alive; ++i) {
          const auto frame = flow_mod_frame(controller.next_xid(), base + i);
          alive = controller.send(
              frame, make_fault(rng, frame.size(), FaultLevel::kLight));
        }
        if (!alive) continue;
        if (controller.barrier().ok) {
          converged.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : controllers) t.join();
  ASSERT_EQ(converged.load(), kSessions);

  // Oracle: the same mods applied sequentially to a fresh table.
  auto oracle = one_table();
  for (std::uint32_t s = 0; s < kSessions; ++s) {
    const std::uint32_t base = 1 + s * kModsPerSession;
    for (std::uint32_t i = 0; i < kModsPerSession; ++i) {
      std::vector<PendingFlowMod> one = {pending(1, base + i)};
      std::vector<ErrorCode> result(1);
      apply_mods(oracle, one, result);
      ASSERT_EQ(result[0], ErrorCode::kNone);
    }
  }

  // Bitwise agreement: same entries, same execution verdicts on probes.
  const auto guard = classifier.acquire();
  for (std::uint32_t id = 1; id <= kSessions * kModsPerSession; ++id) {
    ASSERT_TRUE(guard.tables().contains_entry(0, id)) << "id " << id;
    PacketHeader probe;
    probe.set(FieldId::kEthDst, std::uint64_t{id});
    const auto got = guard.tables().execute(probe);
    const auto want = oracle.execute(probe);
    ASSERT_EQ(got.verdict, want.verdict) << "id " << id;
    ASSERT_EQ(got.output_ports, want.output_ports) << "id " << id;
  }
  EXPECT_GE(server.stats().flow_mods_ok, kSessions * kModsPerSession);
  server.stop();
}

// --- stats endpoint: read-only HTTP plane inside the same epoll loop ---

/// Minimal HTTP/1.0 client: send one GET, read to EOF (the endpoint always
/// answers Connection: close).
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(OfpServerStats, EndpointServesPrometheusAndJson) {
  RecordingSink sink;
  obs::MetricsRegistry registry;
  ServerConfig config = quick_config();
  config.stats_port = 0;  // ephemeral
  config.metrics = &registry;
  OfpServer server(sink.make(), config);
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.stats_port(), 0);

  // Drive one session so the counters have something to say.
  ScriptedController controller;
  ASSERT_TRUE(controller.connect(server.port()));
  ASSERT_TRUE(controller.send(flow_mod_frame(controller.next_xid(), 7)));
  ASSERT_TRUE(controller.barrier().ok);

  const std::string text = http_get(server.stats_port(), "/metrics");
  EXPECT_NE(text.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(text.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ofmtl_ofp_sessions_accepted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("ofmtl_ofp_sessions_accepted_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("ofmtl_ofp_flow_mods_ok_total 1"), std::string::npos);
  EXPECT_NE(text.find("ofmtl_ofp_active_sessions 1"), std::string::npos);
  EXPECT_NE(text.find("ofmtl_ofp_handshakes_total 1"), std::string::npos);

  const std::string json = http_get(server.stats_port(), "/metrics.json");
  EXPECT_NE(json.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(json.find(R"({"metrics":[)"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"ofmtl_ofp_frames_rx_total")"),
            std::string::npos);

  const std::string missing = http_get(server.stats_port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"), std::string::npos);

  server.stop();
  // The server's provider unregistered on stop: no dangling callback.
  EXPECT_EQ(registry.provider_count(), 0u);
}

TEST(OfpServerStats, EndpointSurvivesHostileAndPartialRequests) {
  RecordingSink sink;
  obs::MetricsRegistry registry;
  ServerConfig config = quick_config();
  config.stats_port = 0;
  config.metrics = &registry;
  OfpServer server(sink.make(), config);
  ASSERT_TRUE(server.start());

  // Garbage request line: answered 404, not crashed.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.stats_port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const char junk[] = "\x00\xff garbage\r\n\r\n";
    (void)::send(fd, junk, sizeof junk - 1, 0);
    std::string response;
    char buf[1024];
    while (true) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) break;
      response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    EXPECT_NE(response.find("404"), std::string::npos);
  }

  // Peer that connects and immediately disconnects: cleaned up, and the
  // data plane is untouched throughout.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.stats_port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    ::close(fd);
  }
  ScriptedController controller;
  ASSERT_TRUE(controller.connect(server.port()));
  EXPECT_TRUE(controller.barrier().ok);
  EXPECT_NE(http_get(server.stats_port(), "/metrics").find("200 OK"),
            std::string::npos);
  server.stop();
}

TEST(OfpServerStats, DisabledByDefault) {
  RecordingSink sink;
  OfpServer server(sink.make(), quick_config());
  ASSERT_TRUE(server.start());
  EXPECT_EQ(server.stats_port(), 0);  // no listener bound
  server.stop();
}

}  // namespace
}  // namespace ofmtl::ofp::server
