// Batched-execution properties: execute_batch must be bitwise-identical to
// per-packet execute over randomized traces (hit-heavy, miss-heavy, and
// all-wildcard tables), and the steady-state hot path — context-based
// lookup, lookup_batch, execute_batch with reused buffers — must perform
// zero heap allocations per packet (counted by replacing global new/delete).
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "core/builder.hpp"
#include "core/pipeline.hpp"
#include "core/simd.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace {
// Allocation counter backing the zero-allocation steady-state tests. This
// binary is deliberately its own test executable: replacing global new/delete
// here cannot leak into the other test binaries.
std::size_t g_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ofmtl {
namespace {

using workload::FilterApp;
using workload::generate_filterset;
using workload::generate_trace;
using workload::TraceConfig;

struct App {
  MultiTableLookup accelerated;
  std::vector<PacketHeader> trace;
};

App make_app(FilterApp app, const char* name, double hit_ratio,
             std::uint64_t seed, std::size_t packets = 512) {
  const auto set = generate_filterset(app, name);
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  return App{compile_app(spec),
             generate_trace(set, {.packets = packets,
                                  .hit_ratio = hit_ratio,
                                  .seed = seed})};
}

/// execute_batch over every window size must reproduce per-packet execute
/// bit for bit (operator== covers the full ExecutionResult, diagnostics
/// included). The whole property runs once per probe-kernel backend —
/// compiled vector path, then forced SWAR — so batch-vs-scalar identity
/// doubles as vector-vs-SWAR identity.
void expect_batch_matches_scalar(const App& app) {
  std::vector<ExecutionResult> expected;
  expected.reserve(app.trace.size());
  for (const auto& header : app.trace) {
    expected.push_back(app.accelerated.execute(header));
  }
  for (const bool force_swar : {false, true}) {
    simd::ScopedForceSwar forced(force_swar);
    SCOPED_TRACE(force_swar ? "backend=forced-swar" : "backend=vector");
    ExecBatchContext ctx;
    for (const std::size_t batch : {std::size_t{1}, std::size_t{3},
                                    std::size_t{8}, std::size_t{64},
                                    std::size_t{512}}) {
      std::vector<ExecutionResult> results(batch);
      for (std::size_t base = 0; base < app.trace.size(); base += batch) {
        const std::size_t n = std::min(batch, app.trace.size() - base);
        app.accelerated.execute_batch({app.trace.data() + base, n},
                                      {results.data(), n}, ctx);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(results[i], expected[base + i])
              << "batch=" << batch << " packet=" << base + i;
        }
      }
    }
  }
}

TEST(ExecuteBatch, MatchesScalarOnMacLearning) {
  expect_batch_matches_scalar(
      make_app(FilterApp::kMacLearning, "bbra", 0.9, 101));
}

TEST(ExecuteBatch, MatchesScalarOnRouting) {
  expect_batch_matches_scalar(make_app(FilterApp::kRouting, "yoza", 0.9, 202));
}

TEST(ExecuteBatch, MatchesScalarMissHeavy) {
  expect_batch_matches_scalar(
      make_app(FilterApp::kMacLearning, "bbra", 0.0, 303));
  expect_batch_matches_scalar(make_app(FilterApp::kRouting, "yoza", 0.05, 404));
}

TEST(ExecuteBatch, MatchesScalarOnAllWildcardTable) {
  // A table whose single entry constrains nothing: every packet matches via
  // the wildcard labels alone.
  FlowEntry entry;
  entry.id = 1;
  entry.priority = 5;
  entry.instructions = output_instruction(7);
  MultiTableLookup accelerated;
  accelerated.add_table(LookupTable::compile(FlowTable{{entry}}));

  const auto set = generate_filterset(FilterApp::kMacLearning, "bbra");
  const auto trace = generate_trace(set, {.packets = 64, .hit_ratio = 0.5,
                                          .seed = 7});
  std::vector<ExecutionResult> results(trace.size());
  ExecBatchContext ctx;
  accelerated.execute_batch({trace.data(), trace.size()},
                            {results.data(), results.size()}, ctx);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ(results[i], accelerated.execute(trace[i]));
    EXPECT_EQ(results[i].verdict, Verdict::kForwarded);
  }
}

TEST(ExecuteBatch, MatchesScalarAfterIncrementalUpdate) {
  // Insert/remove reseal the flat query structures; batch must track the
  // updated table state exactly.
  auto app = make_app(FilterApp::kMacLearning, "bbra", 0.9, 55, 128);
  FlowEntry extra;
  extra.id = 999999;
  extra.priority = 60000;
  extra.instructions = output_instruction(42);
  app.accelerated.insert_entry(1, extra);  // table 1 catch-all at top priority
  expect_batch_matches_scalar(app);
  ASSERT_TRUE(app.accelerated.remove_entry(1, 999999));
  expect_batch_matches_scalar(app);
}

TEST(AllocationFree, SteadyStateContextLookup) {
  const auto app = make_app(FilterApp::kRouting, "yoza", 0.9, 909);
  SearchContext ctx;
  // Warm every reusable buffer to its high-water capacity.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& header : app.trace) {
      for (std::size_t t = 0; t < app.accelerated.table_count(); ++t) {
        (void)app.accelerated.table(t).lookup(header, ctx);
      }
    }
  }
  const std::size_t before = g_allocations;
  std::size_t matched = 0;
  for (const auto& header : app.trace) {
    for (std::size_t t = 0; t < app.accelerated.table_count(); ++t) {
      matched += app.accelerated.table(t).lookup(header, ctx) != nullptr;
    }
  }
  EXPECT_EQ(g_allocations, before) << "matched=" << matched;
}

TEST(AllocationFree, SteadyStateExecuteBatch) {
  const auto app = make_app(FilterApp::kMacLearning, "gozb", 0.9, 808);
  constexpr std::size_t kBatch = 64;
  std::vector<ExecutionResult> results(kBatch);
  ExecBatchContext ctx;
  const auto run_all = [&] {
    for (std::size_t base = 0; base < app.trace.size(); base += kBatch) {
      const std::size_t n = std::min(kBatch, app.trace.size() - base);
      app.accelerated.execute_batch({app.trace.data() + base, n},
                                    {results.data(), n}, ctx);
    }
  };
  run_all();
  run_all();  // second warm pass: every result slot has seen its window
  const std::size_t before = g_allocations;
  run_all();
  EXPECT_EQ(g_allocations, before);
}

TEST(AllocationFree, SteadyStateLookupBatch) {
  const auto app = make_app(FilterApp::kRouting, "yoza", 0.9, 707);
  constexpr std::size_t kBatch = 32;
  std::vector<const PacketHeader*> headers(kBatch);
  std::vector<const FlowEntry*> entries(kBatch);
  SearchContext ctx;
  const auto run_all = [&] {
    std::size_t matched = 0;
    for (std::size_t base = 0; base + kBatch <= app.trace.size();
         base += kBatch) {
      for (std::size_t i = 0; i < kBatch; ++i) {
        headers[i] = &app.trace[base + i];
      }
      for (std::size_t t = 0; t < app.accelerated.table_count(); ++t) {
        app.accelerated.table(t).lookup_batch({headers.data(), kBatch},
                                              {entries.data(), kBatch}, ctx);
        for (std::size_t i = 0; i < kBatch; ++i) matched += entries[i] != nullptr;
      }
    }
    return matched;
  };
  const std::size_t warm = run_all();
  const std::size_t before = g_allocations;
  const std::size_t again = run_all();
  EXPECT_EQ(g_allocations, before);
  EXPECT_EQ(warm, again);
}

TEST(LookupBatch, MatchesScalarLookup) {
  const auto app = make_app(FilterApp::kMacLearning, "gozb", 0.7, 606);
  SearchContext batch_ctx;
  SearchContext scalar_ctx;
  std::vector<const PacketHeader*> headers;
  for (const auto& header : app.trace) headers.push_back(&header);
  std::vector<const FlowEntry*> entries(headers.size());
  for (std::size_t t = 0; t < app.accelerated.table_count(); ++t) {
    const auto& table = app.accelerated.table(t);
    table.lookup_batch({headers.data(), headers.size()},
                       {entries.data(), entries.size()}, batch_ctx);
    for (std::size_t i = 0; i < headers.size(); ++i) {
      ASSERT_EQ(entries[i], table.lookup(*headers[i], scalar_ctx))
          << "table=" << t << " packet=" << i;
    }
  }
}

}  // namespace
}  // namespace ofmtl
