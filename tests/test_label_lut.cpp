// LabelEncoder bijection properties and ExactMatchLut behaviour (hash LUT
// with rehash under load, memory accounting).
#include <gtest/gtest.h>

#include "core/label.hpp"
#include "core/lut.hpp"
#include "workload/rng.hpp"

namespace ofmtl {
namespace {

TEST(LabelEncoder, DenseAndStable) {
  ValueLabelEncoder encoder;
  EXPECT_EQ(encoder.encode(U128{5}), 0U);
  EXPECT_EQ(encoder.encode(U128{9}), 1U);
  EXPECT_EQ(encoder.encode(U128{5}), 0U);  // idempotent
  EXPECT_EQ(encoder.size(), 2U);
  EXPECT_TRUE(encoder.decode(1) == U128{9});
  EXPECT_EQ(encoder.find(U128{9}), 1U);
  EXPECT_EQ(encoder.find(U128{77}), std::nullopt);
}

TEST(LabelEncoder, BijectionUnderRandomLoad) {
  ValueLabelEncoder encoder;
  workload::Rng rng(21);
  std::vector<U128> values;
  for (int i = 0; i < 5000; ++i) {
    values.emplace_back(rng.below(64), rng.below(1024));
  }
  for (const auto& value : values) (void)encoder.encode(value);
  for (const auto& value : values) {
    const auto label = encoder.find(value);
    ASSERT_TRUE(label.has_value());
    EXPECT_TRUE(encoder.decode(*label) == value);
  }
}

TEST(LabelEncoder, LabelBits) {
  ValueLabelEncoder encoder;
  EXPECT_EQ(encoder.label_bits(), 1U);
  for (std::uint64_t i = 0; i < 9; ++i) (void)encoder.encode(U128{i});
  EXPECT_EQ(encoder.label_bits(), 4U);  // 9 labels -> 4 bits
}

TEST(ExactMatchLut, InsertLookupMiss) {
  ExactMatchLut lut(13);  // VLAN ID width
  const auto a = lut.insert(U128{100});
  const auto b = lut.insert(U128{200});
  EXPECT_NE(a, b);
  EXPECT_EQ(lut.insert(U128{100}), a);  // stable
  EXPECT_EQ(lut.lookup(U128{100}), a);
  EXPECT_EQ(lut.lookup(U128{300}), std::nullopt);
  EXPECT_EQ(lut.unique_values(), 2U);
}

TEST(ExactMatchLut, SurvivesRehash) {
  ExactMatchLut lut(32);
  workload::Rng rng(33);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 2000; ++i) values.push_back(rng.next() & 0xFFFFFFFFU);
  std::vector<Label> labels;
  for (const auto v : values) labels.push_back(lut.insert(U128{v}));
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(lut.lookup(U128{values[i]}), labels[i]) << i;
  }
  // Load factor maintained.
  EXPECT_GE(lut.slot_count(), lut.unique_values());
}

TEST(ExactMatchLut, MemoryModel) {
  ExactMatchLut lut(13);
  lut.insert(U128{1});
  lut.insert(U128{2});
  // valid flag + 13-bit tag + label bits.
  EXPECT_EQ(lut.slot_bits(), 1U + 13U + lut.encoder().label_bits());
  EXPECT_EQ(lut.storage_bits(),
            lut.slot_count() * static_cast<std::uint64_t>(lut.slot_bits()));
  const auto report = lut.memory_report("vlan");
  EXPECT_EQ(report.total_bits(), lut.storage_bits());
}

TEST(ExactMatchLut, UpdateWordsTracksUniqueValues) {
  ExactMatchLut lut(32);
  lut.insert(U128{1});
  lut.insert(U128{1});
  lut.insert(U128{2});
  EXPECT_EQ(lut.update_words(), 2U);
}

TEST(ExactMatchLut, RejectsBadWidth) {
  EXPECT_THROW(ExactMatchLut(0), std::invalid_argument);
  EXPECT_THROW(ExactMatchLut(129), std::invalid_argument);
}

}  // namespace
}  // namespace ofmtl
