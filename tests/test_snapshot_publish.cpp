// The left-right SnapshotClassifier: read guards must pin one side while
// the writer waits, flow-mods must land on both sides exactly once (none
// lost, none duplicated) under concurrent readers, consecutive publishes
// must converge the two replicas to identical behaviour, and — the O(delta)
// publish property — the cost of a publish must not scale with table size
// (checked via allocation counting: this binary replaces global new/delete
// with a thread-safe counter, so it is its own test executable). Run under
// -fsanitize=thread as well (no test changes needed).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/snapshot.hpp"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ofmtl {
namespace {

using runtime::SnapshotClassifier;

FlowEntry em_entry(FlowEntryId id, std::uint64_t mac, std::uint32_t port,
                   std::uint16_t priority = 100) {
  FlowEntry entry;
  entry.id = id;
  entry.priority = priority;
  entry.match.set(FieldId::kEthDst, FieldMatch::exact(mac));
  entry.instructions = output_instruction(port);
  return entry;
}

/// One exact-match table of `n` MAC entries (ids 1..n match MACs 1..n).
MultiTableLookup make_em_tables(std::size_t n) {
  std::vector<FlowEntry> entries;
  entries.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    entries.push_back(em_entry(static_cast<FlowEntryId>(i), i,
                               static_cast<std::uint32_t>(i % 1024)));
  }
  MultiTableLookup tables;
  tables.add_table(LookupTable({FieldId::kEthDst}, std::move(entries)));
  return tables;
}

PacketHeader mac_header(std::uint64_t mac) {
  PacketHeader header;
  header.set(FieldId::kEthDst, mac);
  return header;
}

TEST(SnapshotClassifier, ReadGuardPinsSideWhileWriterWaits) {
  SnapshotClassifier classifier(make_em_tables(16));
  const PacketHeader probe = mac_header(9999);

  std::atomic<bool> published{false};
  std::thread writer;
  {
    const auto guard = classifier.acquire();
    EXPECT_EQ(guard.epoch(), 0u);
    EXPECT_EQ(guard.tables().execute(probe).verdict, Verdict::kToController);

    // The writer must block on the held guard: it may swap the active side,
    // but it cannot complete the publish (and must never touch the pinned
    // replica) until the guard departs.
    writer = std::thread([&] {
      classifier.insert_entry(0, em_entry(500, 9999, 7));
      published.store(true, std::memory_order_release);
    });
    // Give the writer ample time to reach the reader drain.
    for (int i = 0; i < 50 && !published.load(std::memory_order_acquire);
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_FALSE(published.load(std::memory_order_acquire))
        << "insert_entry returned while a read guard pinned a side";
    // The pinned replica still serves the pre-publish state.
    EXPECT_EQ(guard.tables().execute(probe).verdict, Verdict::kToController);
    EXPECT_EQ(guard.epoch(), 0u);
  }  // guard departs: the writer may now finish the publish
  writer.join();
  EXPECT_TRUE(published.load(std::memory_order_acquire));
  const auto fresh = classifier.acquire();
  EXPECT_EQ(fresh.epoch(), 1u);
  const auto result = fresh.tables().execute(probe);
  ASSERT_EQ(result.verdict, Verdict::kForwarded);
  ASSERT_EQ(result.output_ports.size(), 1u);
  EXPECT_EQ(result.output_ports[0], 7u);
}

TEST(SnapshotClassifier, NoLostOrDuplicatedFlowModsUnderChurn) {
  constexpr std::size_t kMods = 64;
  constexpr std::size_t kReaders = 3;
  SnapshotClassifier classifier(make_em_tables(32));

  // Readers churn guards and probe continuously while the writer streams
  // distinct inserts; every guard must see a consistent side (an entry is
  // present iff its id <= the guard's epoch).
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::atomic<std::size_t> inconsistencies{0};
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto guard = classifier.acquire();
        const std::uint64_t epoch = guard.epoch();
        // Entry k (inserted at epoch k) matches MAC 1000+k.
        for (std::uint64_t k = 1; k <= kMods; ++k) {
          const auto result = guard.tables().execute(mac_header(1000 + k));
          const bool present = result.verdict == Verdict::kForwarded;
          if (present != (k <= epoch)) {
            inconsistencies.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  for (std::size_t k = 1; k <= kMods; ++k) {
    classifier.insert_entry(
        0, em_entry(static_cast<FlowEntryId>(10000 + k), 1000 + k, 42));
  }
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(inconsistencies.load(), 0u)
      << "a guard observed a side inconsistent with its epoch";
  EXPECT_EQ(classifier.epoch(), kMods);
  // None lost, none duplicated: each id removes exactly once, and the
  // removal lands on BOTH sides (two consecutive epochs read the two sides).
  for (std::size_t k = 1; k <= kMods; ++k) {
    const auto id = static_cast<FlowEntryId>(10000 + k);
    EXPECT_TRUE(classifier.remove_entry(0, id)) << "lost flow-mod " << k;
    EXPECT_FALSE(classifier.remove_entry(0, id)) << "duplicated flow-mod " << k;
    EXPECT_EQ(classifier.acquire().tables().execute(mac_header(1000 + k)).verdict,
              Verdict::kToController);
  }
  EXPECT_EQ(classifier.epoch(), 2 * kMods);
}

TEST(SnapshotClassifier, RejectsBadFlowModsWithoutPublishing) {
  // Routine rejections (duplicate id, unknown table, absent id) must throw
  // or return before the in-place apply: no epoch, no side divergence, and
  // no O(table) resync (which a mid-apply throw would cost).
  SnapshotClassifier classifier(make_em_tables(8));
  EXPECT_THROW(classifier.insert_entry(0, em_entry(3, 12345, 1)),
               std::invalid_argument);  // id 3 already live
  EXPECT_THROW(classifier.insert_entry(7, em_entry(999, 1, 1)),
               std::out_of_range);  // no table 7
  EXPECT_THROW((void)classifier.remove_entry(7, 1), std::out_of_range);
  EXPECT_FALSE(classifier.remove_entry(0, 999));  // absent id: no publish
  EXPECT_EQ(classifier.epoch(), 0u);
  classifier.insert_entry(0, em_entry(999, 777, 5));  // still functional
  EXPECT_EQ(classifier.epoch(), 1u);
  EXPECT_EQ(classifier.acquire().tables().execute(mac_header(777)).verdict,
            Verdict::kForwarded);
}

TEST(SnapshotClassifier, ConsecutivePublishesConvergeBothSides) {
  constexpr std::size_t kEntries = 48;
  SnapshotClassifier classifier(make_em_tables(kEntries));
  std::vector<PacketHeader> trace;
  for (std::size_t i = 1; i <= kEntries + 4; ++i) trace.push_back(mac_header(i));

  std::vector<ExecutionResult> baseline;
  {
    const auto guard = classifier.acquire();
    for (const auto& header : trace) {
      baseline.push_back(guard.tables().execute(header));
    }
  }
  // Each toggle publishes twice; consecutive acquires therefore alternate
  // sides. After any toggle the logical content is back to the baseline —
  // if a side missed an op, some epoch would serve diverged results.
  for (int toggle = 0; toggle < 3; ++toggle) {
    classifier.insert_entry(0, em_entry(777, 50000, 9, 60000));
    ASSERT_TRUE(classifier.remove_entry(0, 777));
    const auto guard = classifier.acquire();
    for (std::size_t i = 0; i < trace.size(); ++i) {
      ASSERT_EQ(guard.tables().execute(trace[i]), baseline[i])
          << "toggle " << toggle << " packet " << i;
    }
  }
}

TEST(SnapshotClassifier, PublishCostIndependentOfTableSize) {
  // The left-right writer applies flow-mods in place on both sides; the
  // number of heap allocations a publish performs must track the delta (one
  // entry), not the table. Compare a warmed toggle loop on a small vs a
  // 16x larger table and require the same allocation budget (within 2x
  // slack for amortized flat-table maintenance).
  constexpr std::size_t kSmall = 1000;
  constexpr std::size_t kLarge = 16000;
  constexpr std::size_t kToggles = 100;
  const auto toggles_allocs = [](std::size_t table_size) {
    SnapshotClassifier classifier(make_em_tables(table_size));
    const FlowEntry entry = em_entry(900001, 77777, 3);
    // Warm: first toggle pays one-time high-water growth.
    for (int i = 0; i < 4; ++i) {
      classifier.insert_entry(0, entry);
      EXPECT_TRUE(classifier.remove_entry(0, entry.id));
    }
    const std::size_t before = g_allocations.load();
    for (std::size_t i = 0; i < kToggles; ++i) {
      classifier.insert_entry(0, entry);
      EXPECT_TRUE(classifier.remove_entry(0, entry.id));
    }
    return g_allocations.load() - before;
  };
  const std::size_t small = toggles_allocs(kSmall);
  const std::size_t large = toggles_allocs(kLarge);
  // Publishes allocate (map nodes, signature scratch) but must not scale
  // with table size.
  EXPECT_LE(large, 2 * small + 64)
      << "publish allocations grew with table size: " << small << " -> "
      << large << " over " << kToggles << " toggles";
}

}  // namespace
}  // namespace ofmtl
