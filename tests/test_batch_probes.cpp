// The PR's batched probe story: every *_batch probe added to the non-trie
// stages — ExactMatchLut, CuckooLut, RangeMatcher, IndexCalculator — must be
// bitwise-identical to its scalar counterpart over randomized structures and
// query mixes, and allocation-free in steady state (counted by replacing
// global new/delete; this binary is its own test executable so the
// replacement cannot leak into others).
//
// Every batch-vs-scalar property additionally runs twice — once on the
// compiled vector backend, once with the SWAR kernels forced — and the
// SimdSwarIdentity suite compares the two backends' raw kernel outputs
// directly on random and adversarial (duplicate-tag, full-group,
// tombstone-heavy) inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <new>
#include <vector>

#include "classifier/cuckoo_lut.hpp"
#include "classifier/range_matcher.hpp"
#include "core/flat_hash.hpp"
#include "core/index_table.hpp"
#include "core/lookup_table.hpp"
#include "core/lut.hpp"
#include "core/simd.hpp"
#include "workload/rng.hpp"

namespace {
std::size_t g_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ofmtl {
namespace {

using workload::Rng;

/// Run a property once per kernel backend: the compiled vector path, then
/// the portable SWAR path forced. Identical assertions on both runs make
/// every batch-vs-scalar property a backend-identity property too.
template <typename F>
void run_both_backends(F&& property) {
  {
    SCOPED_TRACE(std::string("backend=") +
                 simd::to_string(simd::active_level()));
    property();
  }
  simd::ScopedForceSwar forced(true);
  SCOPED_TRACE("backend=forced-swar");
  property();
}

/// Random present/absent query mix: half the keys are stored values, half
/// are fresh draws (almost surely absent).
std::vector<U128> make_query_values(Rng& rng, const std::vector<U128>& stored,
                                    std::size_t count) {
  std::vector<U128> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 2 == 0 && !stored.empty()) {
      queries.push_back(stored[rng.below(stored.size())]);
    } else {
      queries.push_back(U128{rng.next() & 0xFFFF, rng.next()});
    }
  }
  return queries;
}

template <typename Lut>
void expect_lut_batch_matches_scalar(Lut& lut, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<U128> stored;
  for (int i = 0; i < 300; ++i) {
    U128 value{rng.next() & 0xFFFF, rng.next()};
    lut.insert(value);
    stored.push_back(value);
  }
  // Churn: remove a third, re-insert a few (exercises tombstones in the
  // linear-probing LUT and exact deletion in the cuckoo one).
  for (std::size_t i = 0; i < stored.size(); i += 3) lut.remove(stored[i]);
  for (std::size_t i = 0; i < stored.size(); i += 9) lut.insert(stored[i]);

  const auto queries = make_query_values(rng, stored, 513);
  std::vector<Label> batch(queries.size());
  for (const std::size_t window :
       {std::size_t{1}, std::size_t{5}, std::size_t{8}, queries.size()}) {
    for (std::size_t base = 0; base < queries.size(); base += window) {
      const std::size_t n = std::min(window, queries.size() - base);
      lut.lookup_batch({queries.data() + base, n}, {batch.data() + base, n});
    }
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto scalar = lut.lookup(queries[i]);
      ASSERT_EQ(batch[i], scalar.value_or(kNoLabel))
          << "window=" << window << " query=" << i;
    }
  }
}

TEST(BatchProbes, ExactMatchLutMatchesScalar) {
  run_both_backends([] {
    ExactMatchLut lut(128);
    expect_lut_batch_matches_scalar(lut, 4242);
  });
}

TEST(BatchProbes, CuckooLutMatchesScalar) {
  run_both_backends([] {
    CuckooLut lut(128);
    expect_lut_batch_matches_scalar(lut, 5151);
  });
}

TEST(BatchProbes, ExactMatchLutSteadyStateAllocationFree) {
  ExactMatchLut lut(64);
  Rng rng(7);
  std::vector<U128> stored;
  for (int i = 0; i < 200; ++i) {
    stored.push_back(U128{rng.next()});
    lut.insert(stored.back());
  }
  const auto queries = make_query_values(rng, stored, 256);
  std::vector<Label> out(queries.size());
  lut.lookup_batch(queries, out);
  const std::size_t before = g_allocations;
  for (int pass = 0; pass < 8; ++pass) lut.lookup_batch(queries, out);
  EXPECT_EQ(g_allocations, before);
}

void expect_range_batch_matches_scalar(unsigned width, std::uint64_t seed) {
  const std::uint64_t max = low_mask(width);
  RangeMatcher ranges(width);
  Rng rng(seed);
  std::vector<ValueRange> added;
  for (int i = 0; i < 120; ++i) {
    const std::uint64_t lo = rng.next() & max;
    const std::uint64_t hi = std::min<std::uint64_t>(max, lo + rng.below(2000));
    ranges.add({lo, hi});
    added.push_back({lo, hi});
  }
  for (std::size_t i = 0; i < added.size(); i += 4) ranges.remove(added[i]);
  ranges.seal();

  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 511; ++i) keys.push_back(rng.next() & max);
  keys.push_back(0);
  keys.push_back(max);
  // Exercise interval edges exactly (rank-select and search must agree on
  // boundary points, not just random interior keys).
  for (std::size_t i = 0; i < added.size(); i += 7) {
    keys.push_back(added[i].lo);
    if (added[i].hi < max) keys.push_back(added[i].hi + 1);
  }
  std::vector<const std::vector<std::uint32_t>*> out(keys.size());
  for (const std::size_t window :
       {std::size_t{1}, std::size_t{3}, std::size_t{8}, keys.size()}) {
    for (std::size_t base = 0; base < keys.size(); base += window) {
      const std::size_t n = std::min(window, keys.size() - base);
      ranges.lookup_batch({keys.data() + base, n}, {out.data() + base, n});
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(*out[i], ranges.lookup(keys[i]))
          << "window=" << window << " key=" << keys[i];
    }
  }
  // Steady state: the batch path performs zero heap allocations.
  const std::size_t before = g_allocations;
  for (int pass = 0; pass < 8; ++pass) ranges.lookup_batch(keys, out);
  EXPECT_EQ(g_allocations, before);
}

TEST(BatchProbes, RangeMatcherMatchesScalar) {
  run_both_backends([] { expect_range_batch_matches_scalar(16, 99); });
}

TEST(BatchProbes, RangeMatcherWideFieldMatchesScalar) {
  // width 32 exceeds the rank-select limit: covers the branchless search /
  // AVX2-gather wide path end to end.
  run_both_backends([] { expect_range_batch_matches_scalar(32, 1234); });
}

/// Randomized signatures over a configurable arity; candidates drawn so a
/// fraction resolves to real rules (nested LPM-style multi-candidate lists).
void expect_index_batch_matches_scalar(std::size_t algorithms,
                                       std::uint64_t seed, bool seal) {
  Rng rng(seed);
  IndexCalculator calc(algorithms);
  constexpr std::size_t kLabelSpace = 12;
  std::vector<std::vector<Label>> signatures;
  for (std::uint32_t rule = 0; rule < 160; ++rule) {
    std::vector<Label> signature;
    for (std::size_t a = 0; a < algorithms; ++a) {
      signature.push_back(static_cast<Label>(rng.below(kLabelSpace)));
    }
    calc.add_rule(signature, rule);
    signatures.push_back(std::move(signature));
  }
  for (std::uint32_t rule = 0; rule < 160; rule += 5) {
    calc.remove_rule(signatures[rule], rule);  // exercise ref-count drops
  }
  if (seal) calc.seal();

  constexpr std::size_t kLanes = 37;  // deliberately not a lane-window multiple
  SearchContext ctx;
  ctx.begin(kLanes, algorithms);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    for (std::size_t a = 0; a < algorithms; ++a) {
      LabelList& slot = ctx.slot(lane, a);
      slot.clear();
      const std::size_t count = 1 + rng.below(3);
      for (std::size_t c = 0; c < count; ++c) {
        slot.push_back(static_cast<Label>(rng.below(kLabelSpace)));
      }
    }
  }
  calc.query_batch(ctx);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    std::vector<std::uint32_t> expected;
    calc.query(std::vector<LabelList>(ctx.packet_candidates(lane).begin(),
                                      ctx.packet_candidates(lane).end()),
               expected);
    ASSERT_EQ(ctx.lane_matches(lane), expected)
        << "algorithms=" << algorithms << " lane=" << lane
        << " sealed=" << seal;
  }
}

TEST(BatchProbes, IndexCalculatorMatchesScalarSealed) {
  run_both_backends([] {
    expect_index_batch_matches_scalar(1, 11, true);
    expect_index_batch_matches_scalar(2, 22, true);
    expect_index_batch_matches_scalar(4, 33, true);
    expect_index_batch_matches_scalar(7, 44, true);
  });
}

TEST(BatchProbes, IndexCalculatorMatchesScalarUnsealedFallback) {
  expect_index_batch_matches_scalar(3, 55, false);
}

TEST(BatchProbes, IndexCalculatorSteadyStateAllocationFree) {
  Rng rng(123);
  constexpr std::size_t kAlgorithms = 4;
  IndexCalculator calc(kAlgorithms);
  for (std::uint32_t rule = 0; rule < 100; ++rule) {
    std::vector<Label> signature;
    for (std::size_t a = 0; a < kAlgorithms; ++a) {
      signature.push_back(static_cast<Label>(rng.below(8)));
    }
    calc.add_rule(signature, rule);
  }
  calc.seal();
  constexpr std::size_t kLanes = 64;
  SearchContext ctx;
  ctx.begin(kLanes, kAlgorithms);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    for (std::size_t a = 0; a < kAlgorithms; ++a) {
      LabelList& slot = ctx.slot(lane, a);
      slot.clear();
      slot.push_back(static_cast<Label>(rng.below(8)));
      slot.push_back(static_cast<Label>(rng.below(8)));
    }
  }
  for (int pass = 0; pass < 2; ++pass) calc.query_batch(ctx);  // warm
  const std::size_t before = g_allocations;
  for (int pass = 0; pass < 8; ++pass) calc.query_batch(ctx);
  EXPECT_EQ(g_allocations, before);
}

TEST(BatchProbes, RangeFieldLookupTableBatchMatchesScalar) {
  // End-to-end through LookupTable with an RM field (the app-level tests
  // only cover EM/LPM fields): rules on src-port ranges + dst exact.
  Rng rng(777);
  std::vector<FlowEntry> entries;
  for (std::uint32_t i = 0; i < 60; ++i) {
    FlowEntry entry;
    entry.id = i + 1;
    entry.priority = static_cast<std::uint16_t>(rng.below(100));
    const std::uint64_t lo = rng.below(0x10000);
    const std::uint64_t hi = std::min<std::uint64_t>(0xFFFF, lo + rng.below(9000));
    entry.match.set(FieldId::kSrcPort, FieldMatch::of_range(lo, hi));
    if (i % 3 == 0) {
      entry.match.set(FieldId::kEthType, FieldMatch::exact(0x0800 + i % 4));
    }
    entry.instructions = output_instruction(i % 8);
    entries.push_back(std::move(entry));
  }
  LookupTable table({FieldId::kEthType, FieldId::kSrcPort}, entries);

  std::vector<PacketHeader> headers;
  for (int i = 0; i < 257; ++i) {
    PacketHeader header;
    header.set_src_port(static_cast<std::uint16_t>(rng.below(0x10000)));
    header.set_eth_type(static_cast<std::uint16_t>(0x0800 + rng.below(6)));
    headers.push_back(header);
  }
  std::vector<const PacketHeader*> ptrs;
  for (const auto& header : headers) ptrs.push_back(&header);
  std::vector<const FlowEntry*> batch(headers.size());
  SearchContext batch_ctx;
  SearchContext scalar_ctx;
  table.lookup_batch({ptrs.data(), ptrs.size()}, {batch.data(), batch.size()},
                     batch_ctx);
  for (std::size_t i = 0; i < headers.size(); ++i) {
    ASSERT_EQ(batch[i], table.lookup(headers[i], scalar_ctx)) << "packet=" << i;
  }
}

// --- backend identity: vector kernels vs SWAR, bit for bit ------------------

TEST(SimdSwarIdentity, TagGroupKernelsRandomAndAdversarial) {
  Rng rng(31337);
  std::vector<std::array<std::uint8_t, detail::kTagGroup>> groups;
  // Random groups.
  for (int i = 0; i < 2000; ++i) {
    std::array<std::uint8_t, detail::kTagGroup> group;
    for (auto& byte : group) byte = static_cast<std::uint8_t>(rng.next());
    groups.push_back(group);
  }
  // Adversarial: all-empty, all-deleted, full of one duplicate tag, a full
  // group with the probe tag at every boundary position, and 0x7F/0x80
  // straddles (the live/special cut sits on the byte's top bit).
  groups.push_back({});  // all zero tags
  std::array<std::uint8_t, detail::kTagGroup> g;
  g.fill(detail::kTagEmpty);
  groups.push_back(g);
  g.fill(detail::kTagDeleted);
  groups.push_back(g);
  g.fill(0x42);
  groups.push_back(g);
  g.fill(0x7F);
  g[0] = 0x80;
  g[15] = 0x80;
  groups.push_back(g);
  for (const auto& group : groups) {
    for (const std::uint8_t tag :
         {std::uint8_t{0x00}, std::uint8_t{0x42}, std::uint8_t{0x7F},
          static_cast<std::uint8_t>(rng.next() & 0x7F)}) {
      ASSERT_EQ(simd::match_bytes16(group.data(), tag),
                simd::match_bytes16_swar(group.data(), tag));
    }
    ASSERT_EQ(simd::match_special16(group.data()),
              simd::match_special16_swar(group.data()));
  }
}

TEST(SimdSwarIdentity, LowerBoundKernelMatchesScalar) {
  if (simd::active_level() != simd::Level::kAvx2) {
    GTEST_SKIP() << "AVX2 unavailable: vector lower-bound not in play";
  }
  Rng rng(909);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + rng.below(300);
    std::vector<std::uint64_t> data;
    data.push_back(0);  // the interval index guarantees data[0] == 0
    for (std::size_t i = 1; i < n; ++i) data.push_back(rng.next());
    std::sort(data.begin(), data.end());
    data.erase(std::unique(data.begin(), data.end()), data.end());
    std::uint64_t keys[8];
    for (auto& key : keys) {
      // Mix interior draws with exact boundaries and extremes.
      switch (rng.below(4)) {
        case 0: key = data[rng.below(data.size())]; break;
        case 1: key = ~std::uint64_t{0}; break;
        default: key = rng.next(); break;
      }
    }
    std::uint32_t out[8];
    ASSERT_TRUE(simd::lower_bound_u64x8(data.data(), data.size(), keys, out));
    for (unsigned i = 0; i < 8; ++i) {
      const auto it =
          std::upper_bound(data.begin(), data.end(), keys[i]) - 1;
      ASSERT_EQ(out[i], static_cast<std::uint32_t>(it - data.begin()))
          << "round=" << round << " lane=" << i << " key=" << keys[i];
    }
  }
}

/// Adversarial flat-hash load: every stored value shares one 7-bit tag (so
/// every group compare reports candidate hits that only the key verify can
/// reject), then heavy churn leaves the table tombstone-ridden.
TEST(SimdSwarIdentity, DuplicateTagTombstoneHeavyLut) {
  run_both_backends([] {
    Rng rng(2025);
    ExactMatchLut lut(64);
    std::vector<U128> stored;
    while (stored.size() < 150) {
      const U128 value{rng.next() & 0xFFFF, rng.next()};
      if (detail::tag_of(detail::U128Hash{}(value)) != 0x21) continue;
      lut.insert(value);
      stored.push_back(value);
    }
    // Tombstone-heavy: drop 80%, re-add a sprinkle.
    for (std::size_t i = 0; i < stored.size(); ++i) {
      if (i % 5 != 0) lut.remove(stored[i]);
    }
    for (std::size_t i = 0; i < stored.size(); i += 13) lut.insert(stored[i]);

    std::vector<U128> queries = stored;  // removed keys probe past tombstones
    for (int i = 0; i < 100; ++i) queries.push_back(U128{rng.next(), rng.next()});
    std::vector<Label> batch(queries.size());
    lut.lookup_batch(queries, batch);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(batch[i], lut.lookup(queries[i]).value_or(kNoLabel))
          << "query=" << i;
    }
  });
}

}  // namespace
}  // namespace ofmtl
