// Tests for addresses, the Table II field registry, PacketHeader and the
// byte-level packet codec.
#include <gtest/gtest.h>

#include "net/addresses.hpp"
#include "net/fields.hpp"
#include "net/header.hpp"
#include "net/packet.hpp"

namespace ofmtl {
namespace {

TEST(MacAddress, ParseFormatRoundTrip) {
  const auto mac = MacAddress::parse("aa:bb:cc:01:02:03");
  EXPECT_EQ(mac.value(), 0xAABBCC010203ULL);
  EXPECT_EQ(mac.to_string(), "aa:bb:cc:01:02:03");
  EXPECT_EQ(mac.oui(), 0xAABBCCU);
  EXPECT_EQ(mac.nic(), 0x010203U);
}

TEST(MacAddress, Partition16) {
  const MacAddress mac{0xAABBCCDDEEFFULL};
  EXPECT_EQ(mac.partition16(0), 0xAABBU);
  EXPECT_EQ(mac.partition16(1), 0xCCDDU);
  EXPECT_EQ(mac.partition16(2), 0xEEFFU);
}

TEST(MacAddress, ParseRejectsGarbage) {
  EXPECT_THROW(MacAddress::parse("aa:bb:cc"), std::invalid_argument);
  EXPECT_THROW(MacAddress::parse("zz:bb:cc:01:02:03"), std::invalid_argument);
}

TEST(Ipv4Address, ParseFormatRoundTrip) {
  const auto ip = Ipv4Address::parse("192.168.1.200");
  EXPECT_EQ(ip.value(), 0xC0A801C8U);
  EXPECT_EQ(ip.to_string(), "192.168.1.200");
  EXPECT_EQ(ip.partition16(0), 0xC0A8U);
  EXPECT_EQ(ip.partition16(1), 0x01C8U);
}

TEST(Ipv4Address, ParseRejectsGarbage) {
  EXPECT_THROW(Ipv4Address::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("1.2.3.256"), std::invalid_argument);
}

TEST(Ipv6Address, Partitions) {
  const Ipv6Address ip{U128{0x20010DB800000001ULL, 0x0000000000000042ULL}};
  EXPECT_EQ(ip.partition16(0), 0x2001U);
  EXPECT_EQ(ip.partition16(3), 0x0001U);
  EXPECT_EQ(ip.partition16(7), 0x0042U);
}

TEST(FieldRegistry, MatchesTableII) {
  // The 15 match fields + metadata.
  EXPECT_EQ(field_registry().size(), kFieldCount);
  EXPECT_EQ(kMatchFieldCount, 15U);

  EXPECT_EQ(field_bits(FieldId::kInPort), 32U);
  EXPECT_EQ(field_method(FieldId::kInPort), MatchMethod::kExact);
  EXPECT_EQ(field_bits(FieldId::kEthSrc), 48U);
  EXPECT_EQ(field_method(FieldId::kEthSrc), MatchMethod::kLongestPrefix);
  EXPECT_EQ(field_bits(FieldId::kEthDst), 48U);
  EXPECT_EQ(field_bits(FieldId::kEthType), 16U);
  EXPECT_EQ(field_bits(FieldId::kVlanId), 13U);
  EXPECT_EQ(field_bits(FieldId::kVlanPcp), 3U);
  EXPECT_EQ(field_bits(FieldId::kMplsLabel), 20U);
  EXPECT_EQ(field_bits(FieldId::kIpv4Src), 32U);
  EXPECT_EQ(field_method(FieldId::kIpv4Dst), MatchMethod::kLongestPrefix);
  EXPECT_EQ(field_bits(FieldId::kIpv6Src), 128U);
  EXPECT_EQ(field_bits(FieldId::kIpProto), 8U);
  EXPECT_EQ(field_bits(FieldId::kIpTos), 6U);
  EXPECT_EQ(field_method(FieldId::kSrcPort), MatchMethod::kRange);
  EXPECT_EQ(field_method(FieldId::kDstPort), MatchMethod::kRange);
  EXPECT_EQ(field_bits(FieldId::kMetadata), 64U);
}

TEST(FieldRegistry, PartitionCounts) {
  // Section V.A: Ethernet = three 16-bit tries, IPv4 = two, IPv6 = eight.
  EXPECT_EQ(partition_count(field_bits(FieldId::kEthDst)), 3U);
  EXPECT_EQ(partition_count(field_bits(FieldId::kIpv4Dst)), 2U);
  EXPECT_EQ(partition_count(field_bits(FieldId::kIpv6Dst)), 8U);
}

TEST(FieldRegistry, NameLookup) {
  EXPECT_EQ(field_from_name("VLAN ID"), FieldId::kVlanId);
  EXPECT_EQ(field_from_name("nope"), std::nullopt);
}

TEST(PacketHeader, SetGetAndPresence) {
  PacketHeader h;
  EXPECT_FALSE(h.has(FieldId::kVlanId));
  h.set_vlan_id(42);
  EXPECT_TRUE(h.has(FieldId::kVlanId));
  EXPECT_EQ(h.get64(FieldId::kVlanId), 42U);
  h.set_eth_dst(MacAddress{0xAABBCCDDEEFFULL});
  EXPECT_EQ(h.get64(FieldId::kEthDst), 0xAABBCCDDEEFFULL);
}

TEST(PacketHeader, Partition16) {
  PacketHeader h;
  h.set_eth_dst(MacAddress{0xAABBCCDDEEFFULL});
  EXPECT_EQ(h.partition16(FieldId::kEthDst, 0), 0xAABBU);
  EXPECT_EQ(h.partition16(FieldId::kEthDst, 1), 0xCCDDU);
  EXPECT_EQ(h.partition16(FieldId::kEthDst, 2), 0xEEFFU);
  h.set_ipv4_dst(Ipv4Address{0xC0A801C8U});
  EXPECT_EQ(h.partition16(FieldId::kIpv4Dst, 0), 0xC0A8U);
  EXPECT_EQ(h.partition16(FieldId::kIpv4Dst, 1), 0x01C8U);
}

TEST(PacketHeader, MetadataDefaultsToZero) {
  PacketHeader h;
  EXPECT_EQ(h.metadata(), 0U);
  h.set_metadata(0xDEAD);
  EXPECT_EQ(h.metadata(), 0xDEADU);
}

struct CodecCase {
  const char* name;
  PacketSpec spec;
};

class PacketCodec : public ::testing::TestWithParam<CodecCase> {};

TEST_P(PacketCodec, RoundTrips) {
  const auto& spec = GetParam().spec;
  const auto bytes = serialize_packet(spec);
  const auto parsed = parse_packet(bytes, 7);

  EXPECT_EQ(parsed.spec.eth_src, spec.eth_src);
  EXPECT_EQ(parsed.spec.eth_dst, spec.eth_dst);
  EXPECT_EQ(parsed.spec.vlan_id, spec.vlan_id);
  EXPECT_EQ(parsed.spec.mpls_label, spec.mpls_label);
  EXPECT_EQ(parsed.spec.ipv4_src, spec.ipv4_src);
  EXPECT_EQ(parsed.spec.ipv4_dst, spec.ipv4_dst);
  EXPECT_EQ(parsed.spec.ipv6_src, spec.ipv6_src);
  EXPECT_EQ(parsed.spec.ipv6_dst, spec.ipv6_dst);
  EXPECT_EQ(parsed.spec.src_port, spec.src_port);
  EXPECT_EQ(parsed.spec.dst_port, spec.dst_port);
  EXPECT_EQ(parsed.spec.payload, spec.payload);
  EXPECT_EQ(parsed.header.get64(FieldId::kInPort), 7U);

  // The flattened header agrees with direct flattening.
  EXPECT_EQ(parsed.header, header_from_spec(parsed.spec, 7));

  // Spec equivalence: re-serializing the parsed spec reproduces the wire
  // bytes exactly (serialize ∘ parse is the identity on codec output).
  EXPECT_EQ(serialize_packet(parsed.spec), bytes);

  // The allocation-free span entry point agrees with the full parse.
  PacketHeader header;
  ASSERT_TRUE(parse_packet_header(bytes, 7, header));
  EXPECT_EQ(header, parsed.header);
}

PacketSpec tcp4_packet() {
  PacketSpec spec;
  spec.eth_src = MacAddress{0x020000000001ULL};
  spec.eth_dst = MacAddress{0x020000000002ULL};
  spec.eth_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  spec.ipv4_src = Ipv4Address{10, 0, 0, 1};
  spec.ipv4_dst = Ipv4Address{10, 0, 0, 2};
  spec.ip_proto = static_cast<std::uint8_t>(IpProto::kTcp);
  spec.src_port = 12345;
  spec.dst_port = 80;
  spec.payload = {1, 2, 3};
  return spec;
}

PacketSpec vlan_udp4_packet() {
  PacketSpec spec = tcp4_packet();
  spec.vlan_id = 100;
  spec.vlan_pcp = 3;
  spec.ip_proto = static_cast<std::uint8_t>(IpProto::kUdp);
  return spec;
}

PacketSpec ipv6_packet() {
  PacketSpec spec;
  spec.eth_src = MacAddress{0x020000000003ULL};
  spec.eth_dst = MacAddress{0x020000000004ULL};
  spec.eth_type = static_cast<std::uint16_t>(EtherType::kIpv6);
  spec.ipv6_src = Ipv6Address{U128{0x20010DB800000000ULL, 1}};
  spec.ipv6_dst = Ipv6Address{U128{0x20010DB800000000ULL, 2}};
  spec.ip_proto = static_cast<std::uint8_t>(IpProto::kTcp);
  spec.src_port = 4444;
  spec.dst_port = 443;
  return spec;
}

PacketSpec plain_l2_packet() {
  PacketSpec spec;
  spec.eth_src = MacAddress{0x020000000005ULL};
  spec.eth_dst = MacAddress{0xFFFFFFFFFFFFULL};
  spec.eth_type = static_cast<std::uint16_t>(EtherType::kArp);
  spec.payload = {0xDE, 0xAD};
  return spec;
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, PacketCodec,
    ::testing::Values(CodecCase{"tcp4", tcp4_packet()},
                      CodecCase{"vlan_udp4", vlan_udp4_packet()},
                      CodecCase{"ipv6", ipv6_packet()},
                      CodecCase{"plain_l2", plain_l2_packet()}),
    [](const ::testing::TestParamInfo<CodecCase>& info) {
      return info.param.name;
    });

TEST(PacketCodec, RejectsTruncated) {
  const auto bytes = serialize_packet(tcp4_packet());
  const std::vector<std::uint8_t> truncated(bytes.begin(), bytes.begin() + 10);
  EXPECT_THROW((void)parse_packet(truncated, 0), std::invalid_argument);
  PacketHeader header;
  EXPECT_FALSE(parse_packet_header(truncated, 0, header));
}

// --- adversarial (not merely truncated) input --------------------------------
// Offsets below index into serialize_packet(tcp4_packet()): Ethernet
// 0..13, IPv4 header 14..33 (version/IHL 14, total length 16..17), L4
// 34..41, payload 42..44.

void push_u16(std::vector<std::uint8_t>& bytes, std::uint16_t value) {
  bytes.push_back(static_cast<std::uint8_t>(value >> 8));
  bytes.push_back(static_cast<std::uint8_t>(value));
}

void push_u32(std::vector<std::uint8_t>& bytes, std::uint32_t value) {
  push_u16(bytes, static_cast<std::uint16_t>(value >> 16));
  push_u16(bytes, static_cast<std::uint16_t>(value));
}

/// dst/src MACs (zeros) — the 12 bytes before the first EtherType.
std::vector<std::uint8_t> eth_prefix() { return std::vector<std::uint8_t>(12, 0); }

TEST(PacketCodecAdversarial, VlanStackIsCappedNotWalked) {
  const auto qinq = [](unsigned tags) {
    auto bytes = eth_prefix();
    for (unsigned i = 0; i < tags; ++i) {
      push_u16(bytes, static_cast<std::uint16_t>(EtherType::kVlan));
      push_u16(bytes, static_cast<std::uint16_t>(0x2000 | (100 + i)));
    }
    push_u16(bytes, static_cast<std::uint16_t>(EtherType::kArp));
    return bytes;
  };
  // Up to the cap, stacked tags parse; OpenFlow matches the outermost one.
  const auto parsed = parse_packet(qinq(kMaxVlanDepth), 0);
  EXPECT_EQ(parsed.spec.vlan_id, 100);
  EXPECT_EQ(parsed.spec.vlan_pcp, 1);
  EXPECT_EQ(parsed.spec.eth_type, static_cast<std::uint16_t>(EtherType::kArp));
  // One deeper is rejected, not walked.
  EXPECT_THROW((void)parse_packet(qinq(kMaxVlanDepth + 1), 0),
               std::invalid_argument);
  PacketHeader header;
  EXPECT_FALSE(parse_packet_header(qinq(kMaxVlanDepth + 1), 0, header));
}

TEST(PacketCodecAdversarial, MplsStackIsCappedNotWalked) {
  const auto stacked = [](unsigned shims) {
    auto bytes = eth_prefix();
    push_u16(bytes, static_cast<std::uint16_t>(EtherType::kMplsUnicast));
    for (unsigned i = 0; i < shims; ++i) {
      const bool bottom = i + 1 == shims;
      push_u32(bytes, ((1000 + i) << 12) | (bottom ? 1U << 8 : 0U) | 64U);
    }
    return bytes;
  };
  const auto parsed = parse_packet(stacked(kMaxMplsDepth), 0);
  EXPECT_EQ(parsed.spec.mpls_label, 1000U);  // outermost label
  EXPECT_THROW((void)parse_packet(stacked(kMaxMplsDepth + 1), 0),
               std::invalid_argument);
  // A shim that is cut off mid-stack is truncation, not a stack.
  auto cut = stacked(2);
  cut.resize(cut.size() - 2);
  EXPECT_THROW((void)parse_packet(cut, 0), std::invalid_argument);
}

TEST(PacketCodecAdversarial, Ipv4HeaderLengthsAreValidated) {
  const auto base = serialize_packet(tcp4_packet());

  auto bad_version = base;
  bad_version[14] = 0x55;
  EXPECT_THROW((void)parse_packet(bad_version, 0), std::invalid_argument);

  auto bad_ihl = base;
  bad_ihl[14] = 0x44;  // IHL 4 < 5: header shorter than its fixed fields
  EXPECT_THROW((void)parse_packet(bad_ihl, 0), std::invalid_argument);

  auto total_below_header = base;
  total_below_header[16] = 0;
  total_below_header[17] = 10;  // total length 10 < the 20-byte header
  EXPECT_THROW((void)parse_packet(total_below_header, 0),
               std::invalid_argument);

  auto total_beyond_buffer = base;
  total_beyond_buffer[16] = 0;
  total_beyond_buffer[17] = 200;  // claims 200 bytes; the buffer has 31
  EXPECT_THROW((void)parse_packet(total_beyond_buffer, 0),
               std::invalid_argument);

  auto ihl_beyond_total = base;
  ihl_beyond_total[14] = 0x4F;  // IHL 15: 60-byte header, total length 31
  EXPECT_THROW((void)parse_packet(ihl_beyond_total, 0), std::invalid_argument);
}

TEST(PacketCodecAdversarial, L4BytesBeyondClaimedLengthAreNotPorts) {
  // total length says the IPv4 payload ends at the header (no L4 room),
  // but trailing bytes follow: they are payload, not a TCP header — the
  // inner-header overrun the parser must not mis-attribute.
  auto bytes = serialize_packet(tcp4_packet());
  bytes[16] = 0;
  bytes[17] = 20;  // total length == IHL: zero L4 bytes claimed
  const auto parsed = parse_packet(bytes, 0);
  EXPECT_EQ(parsed.spec.src_port, std::nullopt);
  EXPECT_EQ(parsed.spec.dst_port, std::nullopt);
  EXPECT_FALSE(parsed.header.has(FieldId::kSrcPort));
  EXPECT_EQ(parsed.spec.payload.size(), 11U);  // old L4 + payload bytes
}

TEST(PacketCodecAdversarial, Ipv6PayloadLengthIsValidated) {
  auto bytes = serialize_packet(ipv6_packet());
  bytes[18] = 0xFF;  // payload length far beyond the buffer
  bytes[19] = 0xFF;
  EXPECT_THROW((void)parse_packet(bytes, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ofmtl
