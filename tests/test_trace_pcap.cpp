// Classic-pcap reader/writer: all four magic variants (little/big endian ×
// microsecond/nanosecond) round-trip records bit-exactly, file save/open
// round-trips the buffer, a truncated final record is skipped gracefully
// (every complete record still served, truncated() raised), and corrupt
// captures are rejected rather than walked.
#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>
#include <vector>

#include "trace/pcap.hpp"

namespace ofmtl::trace {
namespace {

std::vector<std::uint8_t> frame_of(std::size_t length, std::uint8_t seed) {
  std::vector<std::uint8_t> bytes(length);
  std::iota(bytes.begin(), bytes.end(), seed);
  return bytes;
}

struct MagicCase {
  const char* name;
  PcapWriterConfig config;
};

class PcapMagics : public ::testing::TestWithParam<MagicCase> {};

TEST_P(PcapMagics, WriterReaderIdentity) {
  const auto& config = GetParam().config;
  // Nanosecond-resolution timestamps; the usec variants floor to the
  // microsecond (the file format has nowhere to keep the rest).
  const std::vector<std::uint64_t> stamps = {0, 1'729'000'123'456'789ULL,
                                             1'729'000'124'000'000ULL};
  PcapWriter writer(config);
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::size_t i = 0; i < stamps.size(); ++i) {
    frames.push_back(frame_of(60 + 7 * i, static_cast<std::uint8_t>(i)));
    writer.append(stamps[i], frames.back());
  }
  EXPECT_EQ(writer.record_count(), stamps.size());

  PcapReader reader{std::span<const std::uint8_t>(writer.buffer())};
  EXPECT_EQ(reader.nanosecond(), config.nanosecond);
  EXPECT_EQ(reader.byte_swapped(), config.byte_swapped);
  EXPECT_EQ(reader.link_type(), 1U);
  EXPECT_EQ(reader.snap_len(), config.snap_len);

  PcapRecord record;
  for (std::size_t i = 0; i < stamps.size(); ++i) {
    ASSERT_TRUE(reader.next(record)) << "record " << i;
    const std::uint64_t expected =
        config.nanosecond ? stamps[i] : stamps[i] / 1000 * 1000;
    EXPECT_EQ(record.ts_ns, expected) << "record " << i;
    EXPECT_EQ(record.orig_len, frames[i].size());
    EXPECT_EQ(std::vector<std::uint8_t>(record.bytes.begin(),
                                        record.bytes.end()),
              frames[i]);
  }
  EXPECT_FALSE(reader.next(record));
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(reader.record_count(), stamps.size());

  // rewind() restarts iteration.
  reader.rewind();
  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(std::vector<std::uint8_t>(record.bytes.begin(), record.bytes.end()),
            frames[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, PcapMagics,
    ::testing::Values(
        MagicCase{"usec_le", {.nanosecond = false, .byte_swapped = false}},
        MagicCase{"usec_be", {.nanosecond = false, .byte_swapped = true}},
        MagicCase{"nsec_le", {.nanosecond = true, .byte_swapped = false}},
        MagicCase{"nsec_be", {.nanosecond = true, .byte_swapped = true}}),
    [](const ::testing::TestParamInfo<MagicCase>& info) {
      return info.param.name;
    });

TEST(Pcap, FileSaveOpenRoundTrip) {
  PcapWriter writer({.nanosecond = true});
  const auto frame = frame_of(64, 1);
  writer.append(42, frame);
  const std::string path = "test_trace_pcap.tmp.pcap";
  writer.save(path);

  auto reader = PcapReader::open(path);
  PcapRecord record;
  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(record.ts_ns, 42U);
  EXPECT_EQ(std::vector<std::uint8_t>(record.bytes.begin(), record.bytes.end()),
            frame);
  EXPECT_FALSE(reader.next(record));
  std::remove(path.c_str());

  EXPECT_THROW((void)PcapReader::open("does_not_exist.pcap"),
               std::runtime_error);
}

TEST(Pcap, TruncatedFinalRecordIsSkippedGracefully) {
  PcapWriter writer;
  writer.append(1'000, frame_of(60, 1));  // 1 usec: survives usec flooring
  writer.append(2'000, frame_of(60, 2));
  const auto& full = writer.buffer();

  // Chop the capture at every byte boundary inside the final record: the
  // first record must always survive, the cut record must never surface.
  const std::size_t first_record_end = 24 + 16 + 60;
  for (std::size_t cut = first_record_end; cut < full.size(); ++cut) {
    PcapReader reader{{full.data(), cut}};
    PcapRecord record;
    ASSERT_TRUE(reader.next(record)) << "cut at " << cut;
    EXPECT_EQ(record.ts_ns, 1'000U);  // usec resolution
    EXPECT_FALSE(reader.next(record)) << "cut at " << cut;
    EXPECT_EQ(reader.truncated(), cut != first_record_end) << "cut at " << cut;
    EXPECT_EQ(reader.record_count(), 1U);
  }
}

TEST(Pcap, RejectsShortOrUnknownHeader) {
  EXPECT_THROW((PcapReader{std::span<const std::uint8_t>{}}),
               std::invalid_argument);
  const auto garbage = frame_of(24, 9);
  EXPECT_THROW((PcapReader{{garbage.data(), garbage.size()}}),
               std::invalid_argument);
  PcapWriter writer;
  EXPECT_THROW((PcapReader{{writer.buffer().data(), 10}}),
               std::invalid_argument);
}

TEST(Pcap, CorruptLengthStopsIteration) {
  PcapWriter writer;
  writer.append(1, frame_of(60, 1));
  auto bytes = writer.buffer();
  // Claim an incl_len far beyond the buffer (and the snap limit).
  bytes[24 + 8] = 0xFF;
  bytes[24 + 9] = 0xFF;
  bytes[24 + 10] = 0xFF;
  PcapReader reader{{bytes.data(), bytes.size()}};
  PcapRecord record;
  EXPECT_FALSE(reader.next(record));
  EXPECT_TRUE(reader.truncated());
}

TEST(Pcap, SnapLenCapsRecords) {
  PcapWriter writer({.snap_len = 32});
  const auto frame = frame_of(100, 3);
  writer.append(5, frame);
  PcapReader reader{std::span<const std::uint8_t>(writer.buffer())};
  PcapRecord record;
  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(record.bytes.size(), 32U);
  EXPECT_EQ(record.orig_len, 100U);
}

TEST(Pcap, ReadAllCollectsEveryRecord) {
  PcapWriter writer;
  for (std::uint8_t i = 0; i < 5; ++i) writer.append(i, frame_of(20, i));
  PcapReader reader{std::span<const std::uint8_t>(writer.buffer())};
  PcapRecord record;
  ASSERT_TRUE(reader.next(record));  // read_all rewinds first
  const auto all = reader.read_all();
  ASSERT_EQ(all.size(), 5U);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].bytes[0], i);
  }
}

}  // namespace
}  // namespace ofmtl::trace
