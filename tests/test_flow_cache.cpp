// The per-worker epoch-keyed flow cache: cache-on classification must be
// bitwise-identical to cache-off on random rule sets and random/Zipf
// streams, a published flow-mod must never let a stale cached action
// escape (lazy epoch invalidation, exercised under concurrent churn — run
// this binary under -fsanitize=thread too), and both the hit and the miss
// path must stay allocation-free in steady state (counted by replacing
// global new/delete; this binary is its own test executable so the
// replacement cannot leak into others).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "core/builder.hpp"
#include "core/flow_key.hpp"
#include "runtime/flow_cache.hpp"
#include "runtime/runtime.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"
#include "workload/zipf.hpp"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ofmtl {
namespace {

using runtime::BatchTicket;
using runtime::FlowCache;
using runtime::ParallelRuntime;
using workload::FilterApp;

struct App {
  MultiTableLookup accelerated;
  std::vector<PacketHeader> pool;
};

App make_app(FilterApp app, const char* name, std::size_t flows,
             std::uint64_t seed) {
  const auto set = workload::generate_filterset(app, name);
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  return App{compile_app(spec),
             workload::generate_trace(
                 set, {.packets = flows, .hit_ratio = 0.9, .seed = seed})};
}

std::vector<PacketHeader> make_stream(const App& app, double s,
                                      std::size_t packets,
                                      std::uint64_t seed) {
  workload::ZipfSampler sampler(app.pool.size(), s, seed);
  std::vector<PacketHeader> stream;
  stream.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    stream.push_back(app.pool[sampler.next()]);
  }
  return stream;
}

void classify_all(ParallelRuntime& rt, const std::vector<PacketHeader>& stream,
                  std::vector<ExecutionResult>& results,
                  std::size_t batch = 64) {
  for (std::size_t base = 0; base < stream.size(); base += batch) {
    const std::size_t n = std::min(batch, stream.size() - base);
    rt.classify(0, {stream.data() + base, n}, {results.data() + base, n});
  }
}

TEST(FlowKey, HashConsistentWithHeaderEquality) {
  PacketHeader a;
  a.set_eth_dst(MacAddress{0xABCD});
  a.set_vlan_id(7);
  PacketHeader b;
  b.set_vlan_id(7);
  b.set_eth_dst(MacAddress{0xABCD});
  EXPECT_EQ(a, b);  // set order must not matter
  EXPECT_EQ(flow_key_hash(a), flow_key_hash(b));

  PacketHeader c = a;
  c.set_vlan_id(8);
  EXPECT_NE(flow_key_hash(a), flow_key_hash(c));

  // Present-with-zero differs from absent (operator== compares the mask).
  PacketHeader d;
  d.set_eth_dst(MacAddress{0xABCD});
  PacketHeader e = d;
  e.set_vlan_id(0);
  EXPECT_NE(d, e);
  EXPECT_NE(flow_key_hash(d), flow_key_hash(e));
}

TEST(FlowCache, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlowCache(1).capacity(), FlowCache::kProbeWindow);
  EXPECT_EQ(FlowCache(5).capacity(), 8u);
  EXPECT_EQ(FlowCache(1024).capacity(), 1024u);
}

TEST(FlowCache, FindStoreEpochAndEvictionSemantics) {
  FlowCache cache(4);  // one probe window: forces eviction on the 5th flow
  PacketHeader header;
  header.set_vlan_id(1);
  const std::uint64_t hash = flow_key_hash(header);
  ExecutionResult result;
  result.verdict = Verdict::kForwarded;
  result.output_ports = {42};

  EXPECT_EQ(cache.find(header, hash, /*epoch=*/0), nullptr);  // cold miss
  cache.store(header, hash, 0, result);
  const ExecutionResult* hit = cache.find(header, hash, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, result);

  // A newer epoch voids the entry: key matches, epoch does not.
  EXPECT_EQ(cache.find(header, hash, /*epoch=*/1), nullptr);
  EXPECT_EQ(cache.stats().epoch_invalidations, 1u);
  // The refill refreshes the same slot under the new epoch.
  result.output_ports = {43};
  cache.store(header, hash, 1, result);
  hit = cache.find(header, hash, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->output_ports, std::vector<std::uint32_t>{43});

  // Fill every remaining slot with current-epoch flows, then one more:
  // the store must evict a live entry (counted) rather than drop the new.
  for (std::uint16_t vid = 2; vid <= 5; ++vid) {
    PacketHeader h;
    h.set_vlan_id(vid);
    cache.store(h, flow_key_hash(h), 1, result);
  }
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);  // one cold + one epoch-stale
}

TEST(FlowCacheRuntime, CacheOnBitwiseIdenticalToCacheOff) {
  // Property: over random rule sets (three apps, several seeds) and both
  // uniform and Zipf-skewed streams, every cache-on result equals the
  // cache-off result bitwise — including trace fields and final_header.
  const struct {
    FilterApp app;
    const char* name;
  } sets[] = {{FilterApp::kMacLearning, "bbra"},
              {FilterApp::kRouting, "yoza"},
              {FilterApp::kMacLearning, "gozb"}};
  for (const auto& [filter_app, name] : sets) {
    for (const std::uint64_t seed : {11u, 23u}) {
      const auto app = make_app(filter_app, name, 256, seed);
      for (const double s : {0.0, 1.1}) {
        const auto stream = make_stream(app, s, 1024, seed + 1);
        ParallelRuntime off(app.accelerated.clone(), {.workers = 1});
        ParallelRuntime on(app.accelerated.clone(),
                           {.workers = 1, .flow_cache_capacity = 128});
        std::vector<ExecutionResult> expected(stream.size());
        std::vector<ExecutionResult> actual(stream.size());
        classify_all(off, stream, expected);
        classify_all(on, stream, actual);
        for (std::size_t i = 0; i < stream.size(); ++i) {
          ASSERT_EQ(actual[i], expected[i])
              << name << " seed=" << seed << " s=" << s << " packet=" << i;
        }
        const auto stats = on.aggregate_stats();
        EXPECT_EQ(stats.cache_hits + stats.cache_misses, stream.size());
        EXPECT_GT(stats.cache_hits, 0u);  // 256 flows, 1024 packets: repeats
      }
    }
  }
}

TEST(FlowCacheRuntime, PublishNeverServesStaleAction) {
  // Sequential epoch-invalidation: classify a stream (cache warm), publish
  // a takeover flow-mod, classify again — every post-publish result must
  // match the post-publish oracle (no stale cached action), and the cache
  // must report epoch invalidations, not a free pass.
  auto app = make_app(FilterApp::kMacLearning, "bbra", 128, 7);
  const auto stream = make_stream(app, 1.1, 512, 8);

  FlowEntry takeover;
  takeover.id = 424242;
  takeover.priority = 60000;
  takeover.instructions = output_instruction(42);

  std::vector<ExecutionResult> before_oracle(stream.size());
  std::vector<ExecutionResult> after_oracle(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    before_oracle[i] = app.accelerated.execute(stream[i]);
  }
  app.accelerated.insert_entry(1, takeover);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    after_oracle[i] = app.accelerated.execute(stream[i]);
  }
  ASSERT_TRUE(app.accelerated.remove_entry(1, takeover.id));

  ParallelRuntime rt(app.accelerated.clone(),
                     {.workers = 1, .flow_cache_capacity = 1024});
  std::vector<ExecutionResult> results(stream.size());
  classify_all(rt, stream, results);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(results[i], before_oracle[i]) << "pre-publish packet " << i;
  }

  rt.insert_entry(1, takeover);  // epoch 1: every cached entry is now stale
  classify_all(rt, stream, results);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(results[i], after_oracle[i]) << "post-publish packet " << i;
  }
  EXPECT_GT(rt.aggregate_stats().cache_epoch_invalidations, 0u);

  ASSERT_TRUE(rt.remove_entry(1, takeover.id));  // epoch 2: stale again
  classify_all(rt, stream, results);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(results[i], before_oracle[i]) << "post-remove packet " << i;
  }
}

TEST(FlowCacheRuntime, ChurnNeverMixesEpochsWithCacheOn) {
  // Concurrent churn: a writer toggles the takeover entry while batches of
  // *repeated* packets (maximum cache pressure) drain with the cache on.
  // Every completed batch must be wholly consistent with the oracle of the
  // epoch its ticket reports — a stale cached action would show up as a
  // mixed batch. TSan-clean by construction (per-worker cache, guard-
  // ordered epochs).
  auto app = make_app(FilterApp::kMacLearning, "bbra", 64, 17);
  const auto stream = make_stream(app, 1.1, 256, 18);

  FlowEntry takeover;
  takeover.id = 424242;
  takeover.priority = 60000;
  takeover.instructions = output_instruction(42);

  std::vector<ExecutionResult> without(stream.size());
  std::vector<ExecutionResult> with(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    without[i] = app.accelerated.execute(stream[i]);
  }
  app.accelerated.insert_entry(1, takeover);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    with[i] = app.accelerated.execute(stream[i]);
  }
  ASSERT_TRUE(app.accelerated.remove_entry(1, takeover.id));

  constexpr std::size_t kWorkers = 2;
  constexpr std::size_t kToggles = 16;
  constexpr std::size_t kBatch = 64;
  static_assert(256 % kBatch == 0);
  ParallelRuntime rt(std::move(app.accelerated),
                     {.workers = kWorkers, .flow_cache_capacity = 256});

  std::thread writer([&rt, &takeover] {
    for (std::size_t toggle = 0; toggle < kToggles; ++toggle) {
      if (toggle % 2 == 0) {
        rt.insert_entry(1, takeover);
      } else {
        EXPECT_TRUE(rt.remove_entry(1, 424242));
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::vector<ExecutionResult>> results(kWorkers);
  std::vector<BatchTicket> tickets(kWorkers);
  for (auto& r : results) r.resize(kBatch);
  std::size_t mixed = 0;
  std::size_t rounds = 0;
  while (rt.epoch() < kToggles || rounds < 8) {
    const std::size_t base = (rounds % (stream.size() / kBatch)) * kBatch;
    for (std::size_t q = 0; q < kWorkers; ++q) {
      while (!rt.try_submit(q, {stream.data() + base, kBatch},
                            {results[q].data(), kBatch}, &tickets[q])) {
        std::this_thread::yield();
      }
    }
    for (std::size_t q = 0; q < kWorkers; ++q) {
      tickets[q].wait();
      const auto& oracle = tickets[q].epoch() % 2 == 1 ? with : without;
      for (std::size_t i = 0; i < kBatch; ++i) {
        if (results[q][i] != oracle[base + i]) ++mixed;
      }
    }
    ++rounds;
  }
  writer.join();
  EXPECT_EQ(mixed, 0u) << "a cached result leaked across a publish";
  EXPECT_EQ(rt.epoch(), kToggles);
  EXPECT_GT(rt.aggregate_stats().cache_hits, 0u);
}

TEST(FlowCacheRuntime, HitAndMissPathsAllocationFreeInSteadyState) {
  // Steady state must not allocate on either path. The two paths are
  // driven deterministically so warmed buffers actually repeat:
  //   - hit path: replay a stream the cache wholly holds (capacity >=
  //     flows, no evictions) — after the first pass everything hits;
  //   - miss path: publish a no-op flow-mod (epoch bump) before a replay —
  //     every cached entry goes epoch-stale, so every packet walks the
  //     pipeline and the refill refreshes its own slot in place.
  // (Eviction-path warming is inherently history-dependent — the victim
  // rotor re-pairs flows and slots across replays — so eviction counters
  // are covered by the FlowCache unit test instead.)
  const auto app = make_app(FilterApp::kRouting, "yoza", 128, 29);
  const auto stream = make_stream(app, 1.1, 512, 30);
  ParallelRuntime rt(app.accelerated.clone(),
                     {.workers = 1, .flow_cache_capacity = 256});
  std::vector<ExecutionResult> results(512);
  const auto replay = [&] { classify_all(rt, stream, results); };
  const auto stale_cache = [&] {
    rt.update([](MultiTableLookup&) {});  // publishes one epoch, mutates nothing
  };
  replay();        // fill
  stale_cache();
  replay();        // warm the miss/refill path end to end
  replay();        // warm the pure-hit path
  const std::size_t before = g_allocations.load();
  replay();        // all hits
  stale_cache();
  replay();        // all epoch-invalidation misses + in-place refills
  replay();        // all hits again
  EXPECT_EQ(g_allocations.load(), before);
  const auto stats = rt.aggregate_stats();
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_misses, 0u);
  EXPECT_GT(stats.cache_epoch_invalidations, 0u);
}

}  // namespace
}  // namespace ofmtl
