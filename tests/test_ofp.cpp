// OpenFlow-style protocol tests: codec round-trips for every message type,
// decode fuzzing, and the SwitchAgent control/data loop (flow-mod install,
// packet-in on miss, flow-removed on expiry, echo).
#include <gtest/gtest.h>

#include "net/packet.hpp"
#include "ofp/agent.hpp"
#include "ofp/messages.hpp"
#include "workload/rng.hpp"

namespace ofmtl::ofp {
namespace {

FlowModMsg sample_flow_mod() {
  FlowModMsg mod;
  mod.command = FlowModCommand::kAdd;
  mod.table_id = 0;
  mod.entry.id = 42;
  mod.entry.priority = 7;
  mod.entry.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{100}));
  mod.entry.match.set(
      FieldId::kIpv4Dst,
      FieldMatch::of_prefix(Prefix::from_value(0x0A000000, 8, 32)));
  mod.entry.match.set(FieldId::kDstPort, FieldMatch::of_range(80, 443));
  mod.entry.match.set(FieldId::kMetadata,
                      FieldMatch::masked(U128{0x5}, U128{0xF}));
  mod.entry.instructions = goto_and_write(1, {OutputAction{9}});
  mod.entry.instructions.write_metadata = MetadataWrite{0x5, 0xF};
  mod.entry.instructions.apply_actions.push_back(
      SetFieldAction{FieldId::kVlanId, U128{200}});
  mod.timeouts = {.idle_timeout = 30, .hard_timeout = 300};
  mod.send_flow_removed = true;
  return mod;
}

TEST(OfpCodec, RoundTripsEveryMessageType) {
  const std::vector<Envelope> envelopes = {
      {1, Hello{}},
      {2, EchoRequest{{1, 2, 3}}},
      {3, EchoReply{{4, 5}}},
      {4, PacketIn{0xFFFFFFFF, 1, PacketInReason::kNoMatch, 7, {0xDE, 0xAD}}},
      {5, PacketOut{0xFFFFFFFF, 3, {OutputAction{4}, PopVlanAction{}}, {0xBE}}},
      {6, FlowRemovedMsg{99, 1, FlowRemovedReason::kIdleTimeout, 10, 640}},
      {7, sample_flow_mod()},
  };
  for (const auto& envelope : envelopes) {
    const auto bytes = encode(envelope);
    // Header sanity: version, length.
    EXPECT_EQ(bytes[0], kProtocolVersion);
    EXPECT_EQ((bytes[2] << 8 | bytes[3]), static_cast<int>(bytes.size()));
    const auto decoded = decode(bytes);
    EXPECT_EQ(decoded, envelope) << "xid " << envelope.xid;
  }
}

TEST(OfpCodec, RejectsMalformed) {
  auto bytes = encode({1, Hello{}});
  {
    auto bad = bytes;
    bad[0] = 9;  // wrong version
    EXPECT_THROW((void)decode(bad), std::invalid_argument);
  }
  {
    auto bad = bytes;
    bad[3] += 1;  // wrong length
    EXPECT_THROW((void)decode(bad), std::invalid_argument);
  }
  {
    auto bad = bytes;
    bad[1] = 250;  // unknown type
    EXPECT_THROW((void)decode(bad), std::invalid_argument);
  }
  EXPECT_THROW((void)decode({}), std::invalid_argument);
}

TEST(OfpCodec, DecodeFuzzNeverCrashes) {
  workload::Rng rng(1234);
  const auto valid = encode({9, sample_flow_mod()});
  for (int trial = 0; trial < 3000; ++trial) {
    auto bytes = valid;
    for (int flips = 0; flips < 4; ++flips) {
      bytes[rng.below(bytes.size())] ^= static_cast<std::uint8_t>(rng.next());
    }
    if (rng.chance(0.3)) bytes.resize(rng.below(bytes.size() + 1));
    try {
      const auto decoded = decode(bytes);
      (void)encode(decoded);  // whatever decodes must re-encode
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(SwitchAgent, HelloAndEcho) {
  SwitchAgent agent({{FieldId::kVlanId}});
  const auto hello_responses = agent.handle_control(encode({5, Hello{}}));
  ASSERT_EQ(hello_responses.size(), 1U);
  EXPECT_TRUE(std::holds_alternative<Hello>(decode(hello_responses[0]).message));

  const auto echo_responses =
      agent.handle_control(encode({6, EchoRequest{{9, 9}}}));
  ASSERT_EQ(echo_responses.size(), 1U);
  const auto reply = decode(echo_responses[0]);
  EXPECT_EQ(reply.xid, 6U);
  EXPECT_EQ(std::get<EchoReply>(reply.message).payload,
            (std::vector<std::uint8_t>{9, 9}));
}

std::vector<std::uint8_t> test_frame(std::uint16_t vlan, std::uint64_t dst) {
  PacketSpec spec;
  spec.eth_src = MacAddress{0x020000000001ULL};
  spec.eth_dst = MacAddress{dst};
  spec.vlan_id = vlan;
  spec.eth_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  spec.ipv4_src = Ipv4Address{10, 0, 0, 1};
  spec.ipv4_dst = Ipv4Address{10, 0, 0, 2};
  spec.ip_proto = static_cast<std::uint8_t>(IpProto::kUdp);
  spec.src_port = 1000;
  spec.dst_port = 2000;
  return serialize_packet(spec);
}

TEST(SwitchAgent, FlowModInstallsAndPacketInOnMiss) {
  SwitchAgent agent({{FieldId::kVlanId, FieldId::kEthDst}});

  // Miss first: PACKET_IN carrying the full frame.
  const auto frame = test_frame(100, 0x020000000002ULL);
  auto result = agent.handle_frame(frame, 7, 1);
  EXPECT_EQ(result.execution.verdict, Verdict::kToController);
  ASSERT_TRUE(result.packet_in.has_value());
  const auto packet_in = decode(*result.packet_in);
  const auto& msg = std::get<PacketIn>(packet_in.message);
  EXPECT_EQ(msg.in_port, 7U);
  EXPECT_EQ(msg.frame, frame);

  // Controller installs a flow for that destination.
  FlowModMsg mod;
  mod.entry.id = 1;
  mod.entry.priority = 1;
  mod.entry.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{100}));
  mod.entry.match.set(FieldId::kEthDst,
                      FieldMatch::exact(std::uint64_t{0x020000000002ULL}));
  mod.entry.instructions = output_instruction(3);
  EXPECT_TRUE(agent.handle_control(encode({10, mod}), 2).empty());

  result = agent.handle_frame(frame, 7, 3);
  EXPECT_EQ(result.execution.verdict, Verdict::kForwarded);
  EXPECT_EQ(result.execution.output_ports, (std::vector<std::uint32_t>{3}));
  EXPECT_FALSE(result.packet_in.has_value());
}

TEST(SwitchAgent, FlowRemovedOnIdleExpiry) {
  SwitchAgent agent({{FieldId::kVlanId}});
  FlowModMsg mod;
  mod.entry.id = 5;
  mod.entry.priority = 1;
  mod.entry.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{10}));
  mod.entry.instructions = output_instruction(1);
  mod.timeouts.idle_timeout = 20;
  mod.send_flow_removed = true;
  (void)agent.handle_control(encode({11, mod}), 0);

  // Traffic at t=5 refreshes; nothing expires at t=20.
  const auto frame = test_frame(10, 0x020000000009ULL);
  (void)agent.handle_frame(frame, 1, 5);
  EXPECT_TRUE(agent.sweep(20).empty());

  const auto notifications = agent.sweep(30);
  ASSERT_EQ(notifications.size(), 1U);
  const auto& removed =
      std::get<FlowRemovedMsg>(decode(notifications[0]).message);
  EXPECT_EQ(removed.entry_id, 5U);
  EXPECT_EQ(removed.packets, 1U);
  EXPECT_EQ(removed.bytes, frame.size());
  EXPECT_EQ(agent.model().entry_count(), 0U);
}

TEST(SwitchAgent, DeleteWithNotification) {
  SwitchAgent agent({{FieldId::kVlanId}});
  FlowModMsg mod;
  mod.entry.id = 8;
  mod.entry.priority = 1;
  mod.entry.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{11}));
  mod.entry.instructions = output_instruction(2);
  mod.send_flow_removed = true;
  (void)agent.handle_control(encode({12, mod}), 0);

  FlowModMsg del;
  del.command = FlowModCommand::kDelete;
  del.entry.id = 8;
  const auto responses = agent.handle_control(encode({13, del}), 5);
  ASSERT_EQ(responses.size(), 1U);
  const auto& removed = std::get<FlowRemovedMsg>(decode(responses[0]).message);
  EXPECT_EQ(removed.reason, FlowRemovedReason::kDelete);
}

}  // namespace
}  // namespace ofmtl::ofp
