// OpenFlow-style protocol tests: codec round-trips for every message type,
// decode fuzzing, and the SwitchAgent control/data loop (flow-mod install,
// packet-in on miss, flow-removed on expiry, echo).
#include <gtest/gtest.h>

#include <algorithm>

#include "net/packet.hpp"
#include "ofp/agent.hpp"
#include "ofp/messages.hpp"
#include "workload/rng.hpp"

namespace ofmtl::ofp {
namespace {

FlowModMsg sample_flow_mod() {
  FlowModMsg mod;
  mod.command = FlowModCommand::kAdd;
  mod.table_id = 0;
  mod.entry.id = 42;
  mod.entry.priority = 7;
  mod.entry.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{100}));
  mod.entry.match.set(
      FieldId::kIpv4Dst,
      FieldMatch::of_prefix(Prefix::from_value(0x0A000000, 8, 32)));
  mod.entry.match.set(FieldId::kDstPort, FieldMatch::of_range(80, 443));
  mod.entry.match.set(FieldId::kMetadata,
                      FieldMatch::masked(U128{0x5}, U128{0xF}));
  mod.entry.instructions = goto_and_write(1, {OutputAction{9}});
  mod.entry.instructions.write_metadata = MetadataWrite{0x5, 0xF};
  mod.entry.instructions.apply_actions.push_back(
      SetFieldAction{FieldId::kVlanId, U128{200}});
  mod.timeouts = {.idle_timeout = 30, .hard_timeout = 300};
  mod.send_flow_removed = true;
  return mod;
}

TEST(OfpCodec, RoundTripsEveryMessageType) {
  const std::vector<Envelope> envelopes = {
      {1, Hello{}},
      {2, EchoRequest{{1, 2, 3}}},
      {3, EchoReply{{4, 5}}},
      {4, PacketIn{0xFFFFFFFF, 1, PacketInReason::kNoMatch, 7, {0xDE, 0xAD}}},
      {5, PacketOut{0xFFFFFFFF, 3, {OutputAction{4}, PopVlanAction{}}, {0xBE}}},
      {6, FlowRemovedMsg{99, 1, FlowRemovedReason::kIdleTimeout, 10, 640}},
      {7, sample_flow_mod()},
      {8, ErrorMsg{ErrorType::kFlowModFailed, ErrorCode::kDuplicateEntry,
                   {0xAA, 0xBB}}},
      {9, RoleRequestMsg{Role::kMaster, 0xDEADBEEFCAFEF00D}},
      {10, RoleReplyMsg{Role::kSlave, 0xFFFFFFFFFFFFFFFF}},
      {11, ResyncRequestMsg{false, {{0, 1, 0xA}, {3, 0xFFFFFFFF, 0xB}}}},
      {12, ResyncReplyMsg{true, 7, {{1, 42, 0xC}}}},
  };
  for (const auto& envelope : envelopes) {
    const auto bytes = encode(envelope);
    // Header sanity: version, length.
    EXPECT_EQ(bytes[0], kProtocolVersion);
    EXPECT_EQ((bytes[2] << 8 | bytes[3]), static_cast<int>(bytes.size()));
    const auto decoded = decode(bytes);
    EXPECT_EQ(decoded, envelope) << "xid " << envelope.xid;
  }
}

TEST(OfpCodec, RejectsMalformed) {
  auto bytes = encode({1, Hello{}});
  {
    auto bad = bytes;
    bad[0] = 9;  // wrong version
    EXPECT_THROW((void)decode(bad), std::invalid_argument);
  }
  {
    auto bad = bytes;
    bad[3] += 1;  // wrong length
    EXPECT_THROW((void)decode(bad), std::invalid_argument);
  }
  {
    auto bad = bytes;
    bad[1] = 250;  // unknown type
    EXPECT_THROW((void)decode(bad), std::invalid_argument);
  }
  EXPECT_THROW((void)decode({}), std::invalid_argument);
}

TEST(OfpCodec, DecodeFuzzNeverCrashes) {
  workload::Rng rng(1234);
  const auto valid = encode({9, sample_flow_mod()});
  for (int trial = 0; trial < 3000; ++trial) {
    auto bytes = valid;
    for (int flips = 0; flips < 4; ++flips) {
      bytes[rng.below(bytes.size())] ^= static_cast<std::uint8_t>(rng.next());
    }
    if (rng.chance(0.3)) bytes.resize(rng.below(bytes.size() + 1));
    try {
      const auto decoded = decode(bytes);
      (void)encode(decoded);  // whatever decodes must re-encode
    } catch (const std::invalid_argument&) {
    }
  }
}

// --- Randomized property tests: encode -> try_decode == identity ---

U128 random_u128(workload::Rng& rng) { return U128{rng.next(), rng.next()}; }

std::vector<std::uint8_t> random_bytes(workload::Rng& rng, std::size_t max) {
  std::vector<std::uint8_t> data(rng.below(max + 1));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  return data;
}

FieldMatch random_field_match(workload::Rng& rng) {
  switch (rng.below(4)) {
    case 0:
      return FieldMatch::exact(random_u128(rng));
    case 1: {
      const unsigned width = 1 + static_cast<unsigned>(rng.below(128));
      const unsigned length = static_cast<unsigned>(rng.below(width + 1));
      return FieldMatch::of_prefix(Prefix{random_u128(rng), length, width});
    }
    case 2: {
      const auto a = rng.next(), b = rng.next();
      return FieldMatch::of_range(std::min(a, b), std::max(a, b));
    }
    default:
      return FieldMatch::masked(random_u128(rng), random_u128(rng));
  }
}

Action random_action(workload::Rng& rng) {
  switch (rng.below(6)) {
    case 0: return OutputAction{static_cast<std::uint32_t>(rng.next())};
    case 1:
      return SetFieldAction{static_cast<FieldId>(rng.below(kFieldCount)),
                            random_u128(rng)};
    case 2: return PushVlanAction{static_cast<std::uint16_t>(rng.next())};
    case 3: return PopVlanAction{};
    case 4: return DropAction{};
    default: return GroupAction{static_cast<std::uint32_t>(rng.next())};
  }
}

std::vector<Action> random_actions(workload::Rng& rng, std::size_t max) {
  std::vector<Action> actions(rng.below(max + 1));
  for (auto& action : actions) action = random_action(rng);
  return actions;
}

FlowModMsg random_flow_mod(workload::Rng& rng) {
  static constexpr FlowModCommand kCommands[] = {
      FlowModCommand::kAdd, FlowModCommand::kModify, FlowModCommand::kDelete};
  FlowModMsg mod;
  mod.command = kCommands[rng.below(3)];
  mod.table_id = static_cast<std::uint8_t>(rng.next());
  mod.cookie = rng.next();
  mod.entry.id = static_cast<std::uint32_t>(rng.next());
  mod.entry.priority = static_cast<std::uint16_t>(rng.next());
  const auto constrained = rng.below(kFieldCount + 1);
  for (std::size_t i = 0; i < constrained; ++i) {
    mod.entry.match.set(static_cast<FieldId>(rng.below(kFieldCount)),
                        random_field_match(rng));
  }
  if (rng.chance(0.5)) {
    mod.entry.instructions.goto_table = static_cast<std::uint8_t>(rng.next());
  }
  if (rng.chance(0.5)) {
    mod.entry.instructions.write_metadata = MetadataWrite{rng.next(), rng.next()};
  }
  mod.entry.instructions.clear_actions = rng.chance(0.3);
  mod.entry.instructions.write_actions = random_actions(rng, 4);
  mod.entry.instructions.apply_actions = random_actions(rng, 4);
  mod.timeouts.idle_timeout = static_cast<std::uint16_t>(rng.next());
  mod.timeouts.hard_timeout = static_cast<std::uint16_t>(rng.next());
  mod.send_flow_removed = rng.chance(0.5);
  return mod;
}

std::vector<ResyncEntry> random_resync_entries(workload::Rng& rng,
                                               std::size_t max_entries) {
  std::vector<ResyncEntry> entries(rng.below(max_entries + 1));
  for (auto& entry : entries) {
    entry.table_id = static_cast<std::uint8_t>(rng.next());
    entry.entry_id = static_cast<std::uint32_t>(rng.next());
    entry.cookie = rng.next();
  }
  return entries;
}

Role random_role(workload::Rng& rng) {
  static constexpr Role kRoles[] = {Role::kNoChange, Role::kEqual,
                                    Role::kMaster, Role::kSlave};
  return kRoles[rng.below(4)];
}

Envelope random_envelope(workload::Rng& rng) {
  Envelope envelope;
  envelope.xid = static_cast<std::uint32_t>(rng.next());
  switch (rng.below(12)) {
    case 0: envelope.message = Hello{}; break;
    case 1: {
      static constexpr ErrorType kTypes[] = {
          ErrorType::kHelloFailed, ErrorType::kBadRequest, ErrorType::kBadMatch,
          ErrorType::kFlowModFailed};
      envelope.message = ErrorMsg{kTypes[rng.below(4)],
                                  static_cast<ErrorCode>(rng.below(10)),
                                  random_bytes(rng, 32)};
      break;
    }
    case 2: envelope.message = EchoRequest{random_bytes(rng, 64)}; break;
    case 3: envelope.message = EchoReply{random_bytes(rng, 64)}; break;
    case 4:
      envelope.message =
          PacketIn{static_cast<std::uint32_t>(rng.next()),
                   static_cast<std::uint8_t>(rng.next()),
                   rng.chance(0.5) ? PacketInReason::kNoMatch
                                   : PacketInReason::kAction,
                   static_cast<std::uint32_t>(rng.next()),
                   random_bytes(rng, 128)};
      break;
    case 5:
      envelope.message = PacketOut{static_cast<std::uint32_t>(rng.next()),
                                   static_cast<std::uint32_t>(rng.next()),
                                   random_actions(rng, 4),
                                   random_bytes(rng, 128)};
      break;
    case 6: {
      static constexpr FlowRemovedReason kReasons[] = {
          FlowRemovedReason::kIdleTimeout, FlowRemovedReason::kHardTimeout,
          FlowRemovedReason::kDelete};
      envelope.message = FlowRemovedMsg{static_cast<std::uint32_t>(rng.next()),
                                        static_cast<std::uint8_t>(rng.next()),
                                        kReasons[rng.below(3)], rng.next(),
                                        rng.next()};
      break;
    }
    case 7:
      envelope.message = RoleRequestMsg{random_role(rng), rng.next()};
      break;
    case 8:
      envelope.message = RoleReplyMsg{random_role(rng), rng.next()};
      break;
    case 9:
      envelope.message =
          ResyncRequestMsg{rng.chance(0.5), random_resync_entries(rng, 8)};
      break;
    case 10:
      envelope.message =
          ResyncReplyMsg{rng.chance(0.5), static_cast<std::uint32_t>(rng.next()),
                         random_resync_entries(rng, 8)};
      break;
    default: envelope.message = random_flow_mod(rng); break;
  }
  return envelope;
}

TEST(OfpCodec, PropertyRoundTripRandomized) {
  workload::Rng rng(20260808);
  for (int trial = 0; trial < 500; ++trial) {
    const auto envelope = random_envelope(rng);
    const auto bytes = encode(envelope);
    Envelope decoded;
    ASSERT_EQ(try_decode(bytes, decoded), DecodeStatus::kOk)
        << "trial " << trial;
    ASSERT_EQ(decoded, envelope) << "trial " << trial;
    // Re-encoding the decoded value must be byte-identical (canonical form).
    EXPECT_EQ(encode(decoded), bytes) << "trial " << trial;
  }
}

TEST(OfpCodec, TryDecodeTruncationAtEveryCutPoint) {
  workload::Rng rng(77);
  std::vector<Envelope> envelopes = {
      {1, Hello{}},
      {2, EchoRequest{{1, 2, 3}}},
      {3, ErrorMsg{ErrorType::kBadRequest, ErrorCode::kBadType, {9}}},
      {4, PacketIn{0xFFFFFFFF, 1, PacketInReason::kNoMatch, 7, {0xDE, 0xAD}}},
      {5, PacketOut{0xFFFFFFFF, 3, {OutputAction{4}, PopVlanAction{}}, {0xBE}}},
      {6, FlowRemovedMsg{99, 1, FlowRemovedReason::kIdleTimeout, 10, 640}},
      {7, sample_flow_mod()},
      {8, RoleRequestMsg{Role::kMaster, 0xDEADBEEFCAFEF00D}},
      {9, RoleReplyMsg{Role::kSlave, 1}},
      {10, ResyncRequestMsg{true, {{0, 1, 0xA}, {3, 0xFFFFFFFF, 0xB}}}},
      {11, ResyncReplyMsg{false, 7, {{1, 42, 0xC}}}},
  };
  for (int i = 0; i < 16; ++i) envelopes.push_back(random_envelope(rng));

  for (const auto& envelope : envelopes) {
    const auto bytes = encode(envelope);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      std::vector<std::uint8_t> prefix(bytes.begin(),
                                       bytes.begin() + static_cast<long>(cut));
      Envelope out;
      // Raw prefix: the header length field disagrees with the frame size
      // (or the header itself is short) — never kOk, never a throw.
      EXPECT_NE(try_decode(prefix, out), DecodeStatus::kOk) << "cut " << cut;
      // Prefix with the length field patched to match the truncated size:
      // the body itself is now short, and the decoder must say so.
      if (cut >= 4) {
        auto patched = prefix;
        patched[2] = static_cast<std::uint8_t>(cut >> 8);
        patched[3] = static_cast<std::uint8_t>(cut);
        const auto status = try_decode(patched, out);
        EXPECT_NE(status, DecodeStatus::kOk) << "patched cut " << cut;
        EXPECT_NE(status, DecodeStatus::kBadLength) << "patched cut " << cut;
      }
    }
  }
}

TEST(OfpCodec, TryDecodeRejectsBadLengthFields) {
  const auto bytes = encode({42, EchoRequest{{1, 2, 3}}});
  Envelope out;
  {
    auto oversized = bytes;  // claims more than was delivered
    const auto claim = bytes.size() + 10;
    oversized[2] = static_cast<std::uint8_t>(claim >> 8);
    oversized[3] = static_cast<std::uint8_t>(claim);
    EXPECT_EQ(try_decode(oversized, out), DecodeStatus::kBadLength);
  }
  {
    auto undersized = bytes;  // claims less than the header itself
    undersized[2] = 0;
    undersized[3] = 4;
    EXPECT_EQ(try_decode(undersized, out), DecodeStatus::kBadLength);
  }
  {
    auto trailing = bytes;  // valid frame + stray bytes appended
    trailing.push_back(0xCC);
    EXPECT_EQ(try_decode(trailing, out), DecodeStatus::kBadLength);
    // With the length field covering the junk, the parser must notice the
    // body does not consume it.
    const auto claim = trailing.size();
    trailing[2] = static_cast<std::uint8_t>(claim >> 8);
    trailing[3] = static_cast<std::uint8_t>(claim);
    EXPECT_EQ(try_decode(trailing, out), DecodeStatus::kTrailingBytes);
  }
  EXPECT_EQ(try_decode({}, out), DecodeStatus::kTruncated);
}

TEST(OfpCodec, TryDecodeMutationSweepNeverCrashes) {
  workload::Rng rng(5150);
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = encode(random_envelope(rng));
    const int flips = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < flips; ++i) {
      bytes[rng.below(bytes.size())] ^=
          static_cast<std::uint8_t>(1U << rng.below(8));
    }
    if (rng.chance(0.4)) {  // corrupt the length field specifically
      bytes[2 + rng.below(2)] = static_cast<std::uint8_t>(rng.next());
    }
    if (rng.chance(0.3)) bytes.resize(rng.below(bytes.size() + 1));
    Envelope out;
    const auto status = try_decode(bytes, out);  // must not crash or throw
    if (status == DecodeStatus::kOk) {
      (void)encode(out);  // whatever decodes must re-encode
    }
  }
}

TEST(SwitchAgent, HelloAndEcho) {
  SwitchAgent agent({{FieldId::kVlanId}});
  const auto hello_responses = agent.handle_control(encode({5, Hello{}}));
  ASSERT_EQ(hello_responses.size(), 1U);
  EXPECT_TRUE(std::holds_alternative<Hello>(decode(hello_responses[0]).message));

  const auto echo_responses =
      agent.handle_control(encode({6, EchoRequest{{9, 9}}}));
  ASSERT_EQ(echo_responses.size(), 1U);
  const auto reply = decode(echo_responses[0]);
  EXPECT_EQ(reply.xid, 6U);
  EXPECT_EQ(std::get<EchoReply>(reply.message).payload,
            (std::vector<std::uint8_t>{9, 9}));
}

std::vector<std::uint8_t> test_frame(std::uint16_t vlan, std::uint64_t dst) {
  PacketSpec spec;
  spec.eth_src = MacAddress{0x020000000001ULL};
  spec.eth_dst = MacAddress{dst};
  spec.vlan_id = vlan;
  spec.eth_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  spec.ipv4_src = Ipv4Address{10, 0, 0, 1};
  spec.ipv4_dst = Ipv4Address{10, 0, 0, 2};
  spec.ip_proto = static_cast<std::uint8_t>(IpProto::kUdp);
  spec.src_port = 1000;
  spec.dst_port = 2000;
  return serialize_packet(spec);
}

TEST(SwitchAgent, FlowModInstallsAndPacketInOnMiss) {
  SwitchAgent agent({{FieldId::kVlanId, FieldId::kEthDst}});

  // Miss first: PACKET_IN carrying the full frame.
  const auto frame = test_frame(100, 0x020000000002ULL);
  auto result = agent.handle_frame(frame, 7, 1);
  EXPECT_EQ(result.execution.verdict, Verdict::kToController);
  ASSERT_TRUE(result.packet_in.has_value());
  const auto packet_in = decode(*result.packet_in);
  const auto& msg = std::get<PacketIn>(packet_in.message);
  EXPECT_EQ(msg.in_port, 7U);
  EXPECT_EQ(msg.frame, frame);

  // Controller installs a flow for that destination.
  FlowModMsg mod;
  mod.entry.id = 1;
  mod.entry.priority = 1;
  mod.entry.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{100}));
  mod.entry.match.set(FieldId::kEthDst,
                      FieldMatch::exact(std::uint64_t{0x020000000002ULL}));
  mod.entry.instructions = output_instruction(3);
  EXPECT_TRUE(agent.handle_control(encode({10, mod}), 2).empty());

  result = agent.handle_frame(frame, 7, 3);
  EXPECT_EQ(result.execution.verdict, Verdict::kForwarded);
  EXPECT_EQ(result.execution.output_ports, (std::vector<std::uint32_t>{3}));
  EXPECT_FALSE(result.packet_in.has_value());
}

TEST(SwitchAgent, FlowRemovedOnIdleExpiry) {
  SwitchAgent agent({{FieldId::kVlanId}});
  FlowModMsg mod;
  mod.entry.id = 5;
  mod.entry.priority = 1;
  mod.entry.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{10}));
  mod.entry.instructions = output_instruction(1);
  mod.timeouts.idle_timeout = 20;
  mod.send_flow_removed = true;
  (void)agent.handle_control(encode({11, mod}), 0);

  // Traffic at t=5 refreshes; nothing expires at t=20.
  const auto frame = test_frame(10, 0x020000000009ULL);
  (void)agent.handle_frame(frame, 1, 5);
  EXPECT_TRUE(agent.sweep(20).empty());

  const auto notifications = agent.sweep(30);
  ASSERT_EQ(notifications.size(), 1U);
  const auto envelope = decode(notifications[0]);
  const auto& removed = std::get<FlowRemovedMsg>(envelope.message);
  EXPECT_EQ(removed.entry_id, 5U);
  EXPECT_EQ(removed.packets, 1U);
  EXPECT_EQ(removed.bytes, frame.size());
  EXPECT_EQ(agent.model().entry_count(), 0U);
}

TEST(SwitchAgent, DeleteWithNotification) {
  SwitchAgent agent({{FieldId::kVlanId}});
  FlowModMsg mod;
  mod.entry.id = 8;
  mod.entry.priority = 1;
  mod.entry.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{11}));
  mod.entry.instructions = output_instruction(2);
  mod.send_flow_removed = true;
  (void)agent.handle_control(encode({12, mod}), 0);

  FlowModMsg del;
  del.command = FlowModCommand::kDelete;
  del.entry.id = 8;
  const auto responses = agent.handle_control(encode({13, del}), 5);
  ASSERT_EQ(responses.size(), 1U);
  const auto envelope = decode(responses[0]);
  const auto& removed = std::get<FlowRemovedMsg>(envelope.message);
  EXPECT_EQ(removed.reason, FlowRemovedReason::kDelete);
}

// --- Robustness regressions: malformed control bytes answer with ERROR ---

// Pull the ErrorMsg out of an encoded response, failing the test otherwise.
ErrorMsg expect_error(const std::vector<std::vector<std::uint8_t>>& responses) {
  EXPECT_EQ(responses.size(), 1U);
  if (responses.size() != 1) return {};
  const auto envelope = decode(responses[0]);
  const auto* error = std::get_if<ErrorMsg>(&envelope.message);
  EXPECT_NE(error, nullptr);
  return error == nullptr ? ErrorMsg{} : *error;
}

TEST(SwitchAgent, TruncatedControlAtEveryCutPointAnswersError) {
  const auto frames = {encode({21, Hello{}}), encode({22, sample_flow_mod()}),
                       encode({23, EchoRequest{{7, 7}}})};
  for (const auto& bytes : frames) {
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      SwitchAgent agent({{FieldId::kVlanId}});
      std::vector<std::uint8_t> prefix(bytes.begin(),
                                       bytes.begin() + static_cast<long>(cut));
      // Both the raw prefix and the length-patched prefix must produce an
      // ERROR envelope — never a throw, never silence.
      const auto error = expect_error(agent.handle_control(prefix));
      EXPECT_EQ(error.type, ErrorType::kBadRequest) << "cut " << cut;
      if (cut >= 4) {
        auto patched = prefix;
        patched[2] = static_cast<std::uint8_t>(cut >> 8);
        patched[3] = static_cast<std::uint8_t>(cut);
        const auto patched_error = expect_error(agent.handle_control(patched));
        EXPECT_EQ(patched_error.code, ErrorCode::kTruncated) << "cut " << cut;
      }
      EXPECT_EQ(agent.model().entry_count(), 0U);
    }
  }
}

TEST(SwitchAgent, OversizedLengthFieldAnswersError) {
  SwitchAgent agent({{FieldId::kVlanId}});
  auto bytes = encode({31, Hello{}});
  bytes[2] = 0xFF;
  bytes[3] = 0xFF;  // claims 64 KiB, delivers 8 bytes
  const auto error = expect_error(agent.handle_control(bytes));
  EXPECT_EQ(error.code, ErrorCode::kBadLength);
}

TEST(SwitchAgent, DuplicateAddAnswersErrorWithoutStateChange) {
  SwitchAgent agent({{FieldId::kVlanId}});
  FlowModMsg mod;
  mod.entry.id = 3;
  mod.entry.priority = 1;
  mod.entry.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{7}));
  mod.entry.instructions = output_instruction(1);
  EXPECT_TRUE(agent.handle_control(encode({40, mod}), 0).empty());
  EXPECT_EQ(agent.model().entry_count(), 1U);

  const auto error = expect_error(agent.handle_control(encode({41, mod}), 1));
  EXPECT_EQ(error.type, ErrorType::kFlowModFailed);
  EXPECT_EQ(agent.model().entry_count(), 1U);
}

TEST(SwitchAgent, RoleClaimsAreFencedAndSlaveIsReadOnly) {
  SwitchAgent agent({{FieldId::kEthDst}});
  EXPECT_EQ(agent.role(), Role::kEqual);

  auto responses =
      agent.handle_control(encode({1, RoleRequestMsg{Role::kMaster, 10}}));
  ASSERT_EQ(responses.size(), 1U);
  auto reply = decode(responses[0]);
  EXPECT_EQ(std::get<RoleReplyMsg>(reply.message).role, Role::kMaster);
  EXPECT_EQ(std::get<RoleReplyMsg>(reply.message).generation_id, 10U);

  // A stale generation cannot demote the channel (fenced ex-master shape).
  const auto error = expect_error(
      agent.handle_control(encode({2, RoleRequestMsg{Role::kSlave, 9}})));
  EXPECT_EQ(error.type, ErrorType::kRoleRequestFailed);
  EXPECT_EQ(error.code, ErrorCode::kStale);
  EXPECT_EQ(agent.role(), Role::kMaster);

  // NOCHANGE is a pure query at any generation.
  responses =
      agent.handle_control(encode({3, RoleRequestMsg{Role::kNoChange, 0}}));
  ASSERT_EQ(responses.size(), 1U);
  EXPECT_EQ(std::get<RoleReplyMsg>(decode(responses[0]).message).role,
            Role::kMaster);

  // Demote to slave with a fresh generation: flow-mods are now rejected.
  responses =
      agent.handle_control(encode({4, RoleRequestMsg{Role::kSlave, 11}}));
  ASSERT_EQ(responses.size(), 1U);
  EXPECT_EQ(agent.role(), Role::kSlave);
  FlowModMsg mod;
  mod.command = FlowModCommand::kAdd;
  mod.entry.id = 1;
  mod.entry.match.set(FieldId::kEthDst, FieldMatch::exact(std::uint64_t{1}));
  const auto rejected = expect_error(agent.handle_control(encode({5, mod})));
  EXPECT_EQ(rejected.type, ErrorType::kFlowModFailed);
  EXPECT_EQ(rejected.code, ErrorCode::kIsSlave);
  EXPECT_EQ(agent.model().entry_count(), 0U);
}

TEST(SwitchAgent, UnexpectedInboundTypeAnswersError) {
  SwitchAgent agent({{FieldId::kVlanId}});
  // PACKET_IN flows switch->controller; arriving inbound it is a violation.
  const auto error = expect_error(agent.handle_control(
      encode({50, PacketIn{0xFFFFFFFF, 0, PacketInReason::kNoMatch, 1, {}}})));
  EXPECT_EQ(error.type, ErrorType::kBadRequest);
  EXPECT_EQ(error.code, ErrorCode::kBadType);
}

TEST(SwitchAgent, PacketOutWithUnparseableFrameAnswersError) {
  SwitchAgent agent({{FieldId::kVlanId}});
  const auto error = expect_error(agent.handle_control(
      encode({60, PacketOut{0xFFFFFFFF, 1, {}, {0xDE, 0xAD}}})));
  EXPECT_EQ(error.type, ErrorType::kBadRequest);
  EXPECT_EQ(error.code, ErrorCode::kBadValue);
}

}  // namespace
}  // namespace ofmtl::ofp
