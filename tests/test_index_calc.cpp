// IndexCalculator: progressive label combination (DCFL-style) — the stage
// that turns per-algorithm labels into flow-entry indices.
#include <gtest/gtest.h>

#include "core/index_table.hpp"

namespace ofmtl {
namespace {

TEST(IndexCalculator, SingleAlgorithmDegeneratesToDirectMap) {
  IndexCalculator calc(1);
  calc.add_rule({7}, 0);
  calc.add_rule({9}, 1);
  std::vector<std::uint32_t> out;
  calc.query({{7}}, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));
  out.clear();
  calc.query({{8}}, out);
  EXPECT_TRUE(out.empty());
}

TEST(IndexCalculator, TwoAlgorithmPairs) {
  IndexCalculator calc(2);
  calc.add_rule({1, 10}, 0);
  calc.add_rule({1, 11}, 1);
  calc.add_rule({2, 10}, 2);
  std::vector<std::uint32_t> out;
  calc.query({{1}, {10}}, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));
  out.clear();
  calc.query({{2}, {11}}, out);  // valid labels, invalid combination
  EXPECT_TRUE(out.empty());
}

TEST(IndexCalculator, MultipleCandidatesPerAlgorithm) {
  // Mimics LPM: the address algorithm returns nested matches, the wildcard
  // rule and the specific rule must both surface.
  IndexCalculator calc(2);
  calc.add_rule({0, 5}, 0);   // specific
  calc.add_rule({0, 3}, 1);   // shorter prefix
  std::vector<std::uint32_t> out;
  calc.query({{0}, {5, 3}}, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1}));
}

TEST(IndexCalculator, SharedSignatureReturnsAllRules) {
  IndexCalculator calc(2);
  calc.add_rule({4, 4}, 0);
  calc.add_rule({4, 4}, 5);  // same match at a different priority
  std::vector<std::uint32_t> out;
  calc.query({{4}, {4}}, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 5}));
}

TEST(IndexCalculator, FiveAlgorithmChain) {
  IndexCalculator calc(5);
  calc.add_rule({1, 2, 3, 4, 5}, 0);
  calc.add_rule({1, 2, 3, 4, 6}, 1);
  calc.add_rule({9, 2, 3, 4, 5}, 2);
  std::vector<std::uint32_t> out;
  calc.query({{1}, {2}, {3}, {4}, {5, 6}}, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1}));
  out.clear();
  calc.query({{1, 9}, {2}, {3}, {4}, {5}}, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 2}));
}

TEST(IndexCalculator, EmptyCandidateListShortCircuits) {
  IndexCalculator calc(3);
  calc.add_rule({1, 2, 3}, 0);
  std::vector<std::uint32_t> out;
  calc.query({{1}, {}, {3}}, out);
  EXPECT_TRUE(out.empty());
}

TEST(IndexCalculator, ArityMismatchThrows) {
  IndexCalculator calc(2);
  EXPECT_THROW(calc.add_rule({1}, 0), std::invalid_argument);
  std::vector<std::uint32_t> out;
  EXPECT_THROW(calc.query({{1}}, out), std::invalid_argument);
}

TEST(IndexCalculator, MemoryReportCountsPairs) {
  IndexCalculator calc(2);
  calc.add_rule({1, 10}, 0);
  calc.add_rule({1, 11}, 1);
  calc.add_rule({2, 10}, 2);
  const auto report = calc.memory_report("idx");
  // 3 distinct pairs in stage 0, 3 final labels.
  ASSERT_EQ(report.components().size(), 2U);
  EXPECT_EQ(report.components()[0].words, 3U);
  EXPECT_EQ(report.components()[1].words, 3U);
  EXPECT_EQ(calc.update_words(), 6U);
}

}  // namespace
}  // namespace ofmtl
