// LookupTable: the decomposed single-table engine must agree with the
// linear-search FlowTable on every packet, across match-method mixes.
#include <gtest/gtest.h>

#include "core/lookup_table.hpp"
#include "flow/flow_table.hpp"
#include "workload/acl_synth.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace ofmtl {
namespace {

using workload::AclConfig;
using workload::generate_acl;
using workload::generate_trace;
using workload::TraceConfig;

FlowEntry make_entry(FlowEntryId id, std::uint16_t priority, FlowMatch match,
                     std::uint32_t port) {
  FlowEntry entry;
  entry.id = id;
  entry.priority = priority;
  entry.match = std::move(match);
  entry.instructions = output_instruction(port);
  return entry;
}

TEST(LookupTable, ExactFieldBasics) {
  FlowMatch m1;
  m1.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{100}));
  FlowMatch m2;
  m2.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{200}));
  LookupTable table({FieldId::kVlanId},
                    {make_entry(0, 1, m1, 1), make_entry(1, 1, m2, 2)});

  PacketHeader h;
  h.set_vlan_id(100);
  ASSERT_NE(table.lookup(h), nullptr);
  EXPECT_EQ(table.lookup(h)->id, 0U);
  h.set_vlan_id(300);
  EXPECT_EQ(table.lookup(h), nullptr);  // miss -> controller
}

TEST(LookupTable, WildcardEmFieldMatchesEverything) {
  FlowMatch specific;
  specific.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{100}));
  FlowMatch any;  // does not constrain the field
  LookupTable table({FieldId::kVlanId},
                    {make_entry(0, 10, specific, 1), make_entry(1, 1, any, 2)});

  PacketHeader h;
  h.set_vlan_id(100);
  EXPECT_EQ(table.lookup(h)->id, 0U);  // higher priority specific rule
  h.set_vlan_id(999);
  EXPECT_EQ(table.lookup(h)->id, 1U);  // falls back to the wildcard rule
}

TEST(LookupTable, LpmPriorityAcrossPartitions) {
  // Prefixes of 8, 20 and 32 bits over IPv4: the 20-bit one spans into the
  // second 16-bit partition trie.
  FlowMatch short_p, mid_p, exact_p;
  short_p.set(FieldId::kIpv4Dst,
              FieldMatch::of_prefix(Prefix::from_value(0x0A000000, 8, 32)));
  mid_p.set(FieldId::kIpv4Dst,
            FieldMatch::of_prefix(Prefix::from_value(0x0A001000, 20, 32)));
  exact_p.set(FieldId::kIpv4Dst,
              FieldMatch::of_prefix(Prefix::from_value(0x0A001234, 32, 32)));
  LookupTable table({FieldId::kIpv4Dst},
                    {make_entry(0, 8, short_p, 1), make_entry(1, 20, mid_p, 2),
                     make_entry(2, 32, exact_p, 3)});

  PacketHeader h;
  h.set_ipv4_dst(Ipv4Address{0x0A001234});
  EXPECT_EQ(table.lookup(h)->id, 2U);
  h.set_ipv4_dst(Ipv4Address{0x0A001FFF});
  EXPECT_EQ(table.lookup(h)->id, 1U);
  h.set_ipv4_dst(Ipv4Address{0x0AFFFFFF});
  EXPECT_EQ(table.lookup(h)->id, 0U);
  h.set_ipv4_dst(Ipv4Address{0x0B000000});
  EXPECT_EQ(table.lookup(h), nullptr);
}

TEST(LookupTable, RangeFieldNarrowestSemanticsViaPriority) {
  FlowMatch narrow, wide;
  narrow.set(FieldId::kDstPort, FieldMatch::of_range(80, 80));
  wide.set(FieldId::kDstPort, FieldMatch::of_range(0, 1023));
  LookupTable table({FieldId::kDstPort},
                    {make_entry(0, 10, narrow, 1), make_entry(1, 1, wide, 2)});
  PacketHeader h;
  h.set_dst_port(80);
  EXPECT_EQ(table.lookup(h)->id, 0U);
  h.set_dst_port(443);
  EXPECT_EQ(table.lookup(h)->id, 1U);
  h.set_dst_port(2000);
  EXPECT_EQ(table.lookup(h), nullptr);
}

TEST(LookupTable, EqualPriorityTieBreaksByInsertionOrder) {
  FlowMatch m;
  m.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{5}));
  LookupTable table({FieldId::kVlanId},
                    {make_entry(10, 3, m, 1), make_entry(11, 3, m, 2)});
  PacketHeader h;
  h.set_vlan_id(5);
  EXPECT_EQ(table.lookup(h)->id, 10U);
}

TEST(LookupTable, RejectsEmptyFieldList) {
  EXPECT_THROW(LookupTable({}, {}), std::invalid_argument);
}

// ---- randomized equivalence with the linear-search oracle ----

class LookupTableOracle : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LookupTableOracle, AgreesWithFlowTableOnAclSets) {
  AclConfig config;
  config.rules = GetParam();
  config.seed = 40 + GetParam();
  const auto set = generate_acl(config);

  FlowTable oracle(set.entries);
  const auto table = LookupTable::compile(oracle);

  TraceConfig trace_config;
  trace_config.packets = 3000;
  trace_config.seed = GetParam();
  const auto trace = generate_trace(set, trace_config);

  std::size_t hits = 0;
  for (const auto& header : trace) {
    const FlowEntry* expected = oracle.lookup(header);
    const FlowEntry* actual = table.lookup(header);
    if (expected == nullptr) {
      EXPECT_EQ(actual, nullptr);
      continue;
    }
    ++hits;
    ASSERT_NE(actual, nullptr) << header.to_string();
    EXPECT_EQ(actual->id, expected->id) << header.to_string();
  }
  EXPECT_GT(hits, trace.size() / 2);  // the trace exercises real matches
}

INSTANTIATE_TEST_SUITE_P(RuleCounts, LookupTableOracle,
                         ::testing::Values(16, 128, 1024));

TEST(LookupTable, AgreesOnMacFilterSet) {
  const auto set = workload::generate_mac_filterset(workload::mac_target("bbrb"));
  FlowTable oracle(set.entries);
  const auto table = LookupTable::compile(oracle);
  const auto trace = generate_trace(set, {.packets = 2000, .hit_ratio = 0.8, .seed = 3});
  for (const auto& header : trace) {
    const FlowEntry* expected = oracle.lookup(header);
    const FlowEntry* actual = table.lookup(header);
    EXPECT_EQ(actual == nullptr, expected == nullptr);
    if (expected != nullptr && actual != nullptr) {
      EXPECT_EQ(actual->id, expected->id);
    }
  }
}

TEST(LookupTable, AgreesOnRoutingFilterSet) {
  const auto set =
      workload::generate_routing_filterset(workload::routing_target("poza"));
  FlowTable oracle(set.entries);
  const auto table = LookupTable::compile(oracle);
  const auto trace = generate_trace(set, {.packets = 2000, .hit_ratio = 0.8, .seed = 4});
  for (const auto& header : trace) {
    const FlowEntry* expected = oracle.lookup(header);
    const FlowEntry* actual = table.lookup(header);
    EXPECT_EQ(actual == nullptr, expected == nullptr);
    if (expected != nullptr && actual != nullptr) {
      EXPECT_EQ(actual->id, expected->id) << header.to_string();
    }
  }
}

TEST(LookupTable, MemoryReportCoversAllStages) {
  const auto set = workload::generate_mac_filterset(workload::mac_target("bbrb"));
  FlowTable oracle(set.entries);
  const auto table = LookupTable::compile(oracle);
  const auto report = table.memory_report("t0");
  EXPECT_GT(report.total_bits(), 0U);
  bool has_trie = false, has_lut = false, has_index = false, has_actions = false;
  for (const auto& component : report.components()) {
    if (component.name.find(".trie.") != std::string::npos) has_trie = true;
    if (component.name.find(".lut") != std::string::npos) has_lut = true;
    if (component.name.find(".index") != std::string::npos) has_index = true;
    if (component.name.find(".actions") != std::string::npos) has_actions = true;
  }
  EXPECT_TRUE(has_trie);
  EXPECT_TRUE(has_lut);
  EXPECT_TRUE(has_index);
  EXPECT_TRUE(has_actions);
}

}  // namespace
}  // namespace ofmtl
