// Table printer / CSV export and the filter-analysis API surface.
#include <gtest/gtest.h>

#include <sstream>

#include "stats/filter_analysis.hpp"
#include "stats/report.hpp"

namespace ofmtl::stats {
namespace {

TEST(Report, AlignedPrinting) {
  Table table({"name", "count"});
  table.add("short", 1);
  table.add("a-much-longer-name", 123456);
  std::ostringstream out;
  table.print(out);
  const auto text = out.str();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(text.find("123456"), std::string::npos);
  // Columns align: the value starts at the same offset within its line as
  // the "count" header does within the header line.
  const auto header_pos = text.find("count");  // header line starts at 0
  const auto value_pos = text.find("123456");
  const auto line_start = text.rfind('\n', value_pos) + 1;
  EXPECT_EQ(header_pos, value_pos - line_start);
}

TEST(Report, CellFormatting) {
  Table table({"s", "i", "d"});
  table.add(std::string_view{"sv"}, 42U, 3.14159);
  const auto csv = table.to_csv();
  EXPECT_NE(csv.find("sv,42,3.14"), std::string::npos);
}

TEST(Report, CsvRoundTripShape) {
  Table table({"a", "b"});
  table.add(1, 2);
  table.add(3, 4);
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(Report, ShortRowsPadded) {
  Table table({"a", "b", "c"});
  table.row({"only-one"});
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("only-one"), std::string::npos);
}

TEST(FilterAnalysisApi, UnknownFieldThrows) {
  FilterSet set;
  set.name = "x";
  set.fields = {FieldId::kVlanId};
  const auto analysis = analyze(set);
  EXPECT_THROW((void)analysis.of(FieldId::kEthDst), std::invalid_argument);
  EXPECT_EQ(analysis.of(FieldId::kVlanId).unique_whole, 0U);
}

TEST(FilterAnalysisApi, WildcardRulesCounted) {
  FilterSet set;
  set.fields = {FieldId::kVlanId};
  FlowEntry entry;
  entry.id = 0;
  set.entries.push_back(entry);  // does not constrain the field
  FlowEntry constrained;
  constrained.id = 1;
  constrained.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{3}));
  set.entries.push_back(constrained);

  const auto analysis = analyze(set);
  EXPECT_EQ(analysis.of(FieldId::kVlanId).wildcard_rules, 1U);
  EXPECT_EQ(analysis.of(FieldId::kVlanId).unique_whole, 1U);
}

}  // namespace
}  // namespace ofmtl::stats
