// Cross-cutting property tests and failure injection: codec fuzzing (random
// bytes must parse or throw, never corrupt), prefix/range dualities, trie
// memory monotonicity, update-cost model consistency, and boundary values
// for the odd-width fields (13-bit VLAN, 3-bit PCP, 20-bit MPLS label).
#include <gtest/gtest.h>

#include <set>

#include "core/builder.hpp"
#include "core/multibit_trie.hpp"
#include "core/update_engine.hpp"
#include "net/packet.hpp"
#include "workload/rng.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace ofmtl {
namespace {

// ---- codec fuzzing ----

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomBytesNeverCorrupt) {
  workload::Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.below(80));
    for (auto& byte : bytes) byte = static_cast<std::uint8_t>(rng.next());
    try {
      const auto parsed = parse_packet(bytes, 1);
      // Whatever parsed must re-serialize without crashing; field values
      // must respect their widths.
      EXPECT_LE(parsed.header.get64(FieldId::kVlanId), 0xFFFU);
      EXPECT_LE(parsed.header.get64(FieldId::kEthType), 0xFFFFU);
      (void)serialize_packet(parsed.spec);
    } catch (const std::invalid_argument&) {
      // Truncated/malformed input is rejected cleanly — expected.
    }
  }
}

TEST_P(CodecFuzz, MutatedValidPacketsNeverCorrupt) {
  workload::Rng rng(GetParam() * 31);
  PacketSpec spec;
  spec.eth_src = MacAddress{0x020000000001ULL};
  spec.eth_dst = MacAddress{0x020000000002ULL};
  spec.vlan_id = 100;
  spec.eth_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  spec.ipv4_src = Ipv4Address{10, 0, 0, 1};
  spec.ipv4_dst = Ipv4Address{10, 0, 0, 2};
  spec.ip_proto = static_cast<std::uint8_t>(IpProto::kTcp);
  spec.src_port = 1234;
  spec.dst_port = 80;
  const auto baseline = serialize_packet(spec);

  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = baseline;
    // Flip a few random bytes and/or truncate.
    for (int flips = 0; flips < 3; ++flips) {
      bytes[rng.below(bytes.size())] ^= static_cast<std::uint8_t>(rng.next());
    }
    if (rng.chance(0.3)) bytes.resize(rng.below(bytes.size() + 1));
    try {
      (void)parse_packet(bytes, 2);
    } catch (const std::invalid_argument&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(1, 2, 3));

// ---- prefix/range duality ----

TEST(PrefixRangeDuality, PrefixIsItsOwnRangeCover) {
  workload::Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned width = 12;
    const unsigned len = static_cast<unsigned>(rng.below(width + 1));
    const auto prefix = Prefix::from_value(rng.below(1ULL << width), len, width);
    const std::uint64_t lo = prefix.value64();
    const std::uint64_t hi = lo | low_mask(width - len);
    const auto cover = range_to_prefixes(ValueRange{lo, hi}, width);
    ASSERT_EQ(cover.size(), 1U);
    EXPECT_EQ(cover[0], prefix);
  }
}

TEST(PrefixRangeDuality, CoverSizeBounded) {
  // Classic bound: a range over w bits needs at most 2w-2 prefixes.
  workload::Rng rng(10);
  const unsigned width = 16;
  for (int trial = 0; trial < 300; ++trial) {
    std::uint64_t a = rng.below(1ULL << width);
    std::uint64_t b = rng.below(1ULL << width);
    if (a > b) std::swap(a, b);
    const auto cover = range_to_prefixes(ValueRange{a, b}, width);
    EXPECT_LE(cover.size(), 2U * width - 2U);
  }
}

// ---- trie memory monotonicity ----

TEST(TrieMonotonicity, NodesNeverShrinkOnInsert) {
  workload::Rng rng(11);
  auto trie = MultibitTrie::partition16();
  std::size_t previous = 0;
  for (int i = 0; i < 400; ++i) {
    trie.insert(
        Prefix::from_value(rng.below(0x10000),
                           1 + static_cast<unsigned>(rng.below(16)), 16),
        static_cast<Label>(i));
    const auto nodes = trie.stored_nodes(TrieStorage::kSparse);
    EXPECT_GE(nodes, previous);
    previous = nodes;
  }
}

TEST(TrieMonotonicity, RemoveThenReinsertRestoresLookup) {
  workload::Rng rng(12);
  auto trie = MultibitTrie::partition16();
  std::vector<std::pair<Prefix, Label>> inserted;
  std::set<std::pair<unsigned, std::uint64_t>> seen;
  for (int i = 0; inserted.size() < 100; ++i) {
    const auto prefix = Prefix::from_value(
        rng.below(0x10000), 1 + static_cast<unsigned>(rng.below(16)), 16);
    if (!seen.emplace(prefix.length(), prefix.value64()).second) continue;
    trie.insert(prefix, static_cast<Label>(i));
    inserted.emplace_back(prefix, static_cast<Label>(i));
  }
  // Capture, remove all, reinsert in reverse, and compare lookups.
  std::vector<std::optional<Label>> snapshot;
  for (std::uint64_t key = 0; key < 0x10000; key += 97) {
    snapshot.push_back(trie.lookup(key));
  }
  for (const auto& [prefix, label] : inserted) (void)trie.remove(prefix);
  for (auto it = inserted.rbegin(); it != inserted.rend(); ++it) {
    trie.insert(it->first, it->second);
  }
  std::size_t i = 0;
  for (std::uint64_t key = 0; key < 0x10000; key += 97) {
    EXPECT_EQ(trie.lookup(key), snapshot[i++]) << key;
  }
}

// ---- update-cost model consistency ----

TEST(UpdateModel, FreshInsertDominatedByFanPlusDepth) {
  const auto strides = default_strides16();
  for (unsigned len = 0; len <= 16; ++len) {
    const auto words =
        fresh_insert_words(Prefix::from_value(0, len, 16), strides);
    EXPECT_GE(words, 1U);
    EXPECT_LE(words, 32U + 2U);  // max fan (root /0) + max pointer path
  }
}

TEST(UpdateModel, OptimizedWordsMatchStructureWrites) {
  const auto set = workload::generate_mac_filterset(workload::mac_target("bbrb"));
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  const auto pipeline = compile_app(spec);
  for (std::size_t t = 0; t < pipeline.table_count(); ++t) {
    const auto script =
        optimized_script(pipeline.table(t), UpdateScope::kAlgorithms);
    std::uint64_t expected = 0;
    for (const auto& search : pipeline.table(t).field_searches()) {
      expected += search.update_words();
    }
    EXPECT_EQ(script.word_count(), expected);
  }
}

// ---- odd-width field boundaries ----

TEST(FieldBoundaries, VlanIdThirteenBits) {
  LookupTable table({FieldId::kVlanId}, {});
  FlowEntry entry;
  entry.id = 1;
  entry.priority = 1;
  entry.match.set(FieldId::kVlanId,
                  FieldMatch::exact(std::uint64_t{0x1FFF}));  // max 13-bit
  entry.instructions = output_instruction(1);
  table.insert_entry(entry);
  PacketHeader h;
  h.set(FieldId::kVlanId, std::uint64_t{0x1FFF});
  ASSERT_NE(table.lookup(h), nullptr);
}

TEST(FieldBoundaries, MplsLabelTwentyBits) {
  LookupTable table({FieldId::kMplsLabel}, {});
  FlowEntry entry;
  entry.id = 1;
  entry.priority = 1;
  entry.match.set(FieldId::kMplsLabel, FieldMatch::exact(std::uint64_t{0xFFFFF}));
  entry.instructions = output_instruction(1);
  table.insert_entry(entry);
  PacketHeader h;
  h.set_mpls_label(0xFFFFF);
  ASSERT_NE(table.lookup(h), nullptr);
  h.set_mpls_label(0xFFFFE);
  EXPECT_EQ(table.lookup(h), nullptr);
}

TEST(FieldBoundaries, InPortFullThirtyTwoBits) {
  LookupTable table({FieldId::kInPort}, {});
  FlowEntry entry;
  entry.id = 1;
  entry.priority = 1;
  entry.match.set(FieldId::kInPort,
                  FieldMatch::exact(std::uint64_t{0xFFFFFFFF}));
  entry.instructions = output_instruction(1);
  table.insert_entry(entry);
  PacketHeader h;
  h.set_in_port(0xFFFFFFFFU);
  ASSERT_NE(table.lookup(h), nullptr);
}

// ---- layout-equivalence property over many routers ----

class LayoutSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LayoutSweep, PerFieldLayoutForwardsLikeSingleTable) {
  const auto& target = workload::kRoutingTargets[GetParam()];
  if (target.rules > 10000) GTEST_SKIP() << "large router covered elsewhere";
  const auto set = workload::generate_routing_filterset(target);
  const auto single = build_app(set, TableLayout::kSingleTable);
  const auto split = build_app(set, TableLayout::kPerFieldTables);
  const auto trace = workload::generate_trace(
      set, {.packets = 300, .hit_ratio = 0.8, .seed = GetParam()});
  for (const auto& header : trace) {
    const auto a = single.reference.execute(header);
    const auto b = split.reference.execute(header);
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_EQ(a.output_ports, b.output_ports);
  }
}

INSTANTIATE_TEST_SUITE_P(Routers, LayoutSweep,
                         ::testing::Range<std::size_t>(0, workload::kFilterCount),
                         [](const auto& info) {
                           return std::string(
                               workload::kRoutingTargets[info.param].name);
                         });

}  // namespace
}  // namespace ofmtl
