// SwitchModel: flow-mod channel, counters and timeout expiry, with the live
// equivalence invariant (decomposed pipeline == reference) under churn.
#include <gtest/gtest.h>

#include "core/switch_model.hpp"
#include "workload/rng.hpp"
#include "workload/trace_gen.hpp"

namespace ofmtl {
namespace {

FlowMod add_mod(std::uint8_t table, FlowEntryId id, std::uint16_t priority,
                FlowMatch match, std::uint32_t port, TimeoutConfig timeouts = {}) {
  FlowMod mod;
  mod.command = FlowModCommand::kAdd;
  mod.table = table;
  mod.entry.id = id;
  mod.entry.priority = priority;
  mod.entry.match = std::move(match);
  mod.entry.instructions = output_instruction(port);
  mod.timeouts = timeouts;
  return mod;
}

FlowMatch vlan_match(std::uint16_t vlan) {
  FlowMatch match;
  match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{vlan}));
  return match;
}

TEST(SwitchModel, AddProcessDelete) {
  SwitchModel sw({{FieldId::kVlanId}});
  sw.apply(add_mod(0, 1, 1, vlan_match(5), 9));
  EXPECT_EQ(sw.entry_count(), 1U);

  PacketHeader h;
  h.set_vlan_id(5);
  const auto result = sw.process(h, 100, 10);
  EXPECT_EQ(result.verdict, Verdict::kForwarded);
  EXPECT_EQ(result.output_ports, (std::vector<std::uint32_t>{9}));

  FlowMod del;
  del.command = FlowModCommand::kDelete;
  del.table = 0;
  del.entry.id = 1;
  sw.apply(del);
  EXPECT_EQ(sw.entry_count(), 0U);
  EXPECT_EQ(sw.process(h).verdict, Verdict::kToController);
}

TEST(SwitchModel, CountersAccumulate) {
  SwitchModel sw({{FieldId::kVlanId}});
  sw.apply(add_mod(0, 1, 1, vlan_match(5), 9));
  PacketHeader h;
  h.set_vlan_id(5);
  (void)sw.process(h, 100, 1);
  (void)sw.process(h, 250, 2);
  const FlowStats* stats = sw.stats().find(1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->packets, 2U);
  EXPECT_EQ(stats->bytes, 350U);
  EXPECT_EQ(stats->last_used, 2U);
}

TEST(SwitchModel, ModifyKeepsCounters) {
  SwitchModel sw({{FieldId::kVlanId}});
  sw.apply(add_mod(0, 1, 1, vlan_match(5), 9));
  PacketHeader h;
  h.set_vlan_id(5);
  (void)sw.process(h, 64, 1);

  FlowMod modify = add_mod(0, 1, 1, vlan_match(5), 12);
  modify.command = FlowModCommand::kModify;
  sw.apply(modify, 2);

  const auto result = sw.process(h, 64, 3);
  EXPECT_EQ(result.output_ports, (std::vector<std::uint32_t>{12}));
  const FlowStats* stats = sw.stats().find(1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->packets, 2U);  // counter survived the modify
}

TEST(SwitchModel, IdleTimeoutRefreshedByTraffic) {
  SwitchModel sw({{FieldId::kVlanId}});
  sw.apply(add_mod(0, 1, 1, vlan_match(5), 9, TimeoutConfig{.idle_timeout = 10}),
           /*now=*/0);
  PacketHeader h;
  h.set_vlan_id(5);
  (void)sw.process(h, 64, 8);  // refreshes idle timer
  EXPECT_TRUE(sw.sweep_timeouts(12).empty());   // 12 < 8 + 10
  const auto evicted = sw.sweep_timeouts(18);   // 18 >= 8 + 10
  ASSERT_EQ(evicted.size(), 1U);
  EXPECT_EQ(evicted[0], 1U);
  EXPECT_EQ(sw.entry_count(), 0U);
}

TEST(SwitchModel, HardTimeoutIgnoresTraffic) {
  SwitchModel sw({{FieldId::kVlanId}});
  sw.apply(add_mod(0, 1, 1, vlan_match(5), 9, TimeoutConfig{.hard_timeout = 10}),
           /*now=*/0);
  PacketHeader h;
  h.set_vlan_id(5);
  for (std::uint64_t t = 1; t < 10; ++t) (void)sw.process(h, 64, t);
  const auto evicted = sw.sweep_timeouts(10);
  ASSERT_EQ(evicted.size(), 1U);
}

TEST(SwitchModel, MalformedModsThrow) {
  SwitchModel sw({{FieldId::kVlanId}});
  EXPECT_THROW(sw.apply(add_mod(3, 1, 1, vlan_match(1), 1)),
               std::invalid_argument);
  FlowMod del;
  del.command = FlowModCommand::kDelete;
  del.entry.id = 42;
  EXPECT_THROW(sw.apply(del), std::invalid_argument);
  sw.apply(add_mod(0, 7, 1, vlan_match(1), 1));
  EXPECT_THROW(sw.apply(add_mod(0, 7, 1, vlan_match(2), 1)),
               std::invalid_argument);
}

TEST(SwitchModel, MultiTableGotoWithLiveMods) {
  SwitchModel sw({{FieldId::kVlanId}, {FieldId::kMetadata, FieldId::kEthDst}});
  FlowMod t0 = add_mod(0, 100, 1, vlan_match(5), 0);
  t0.entry.instructions = InstructionSet{};
  t0.entry.instructions.goto_table = 1;
  t0.entry.instructions.write_metadata = MetadataWrite{0x7, ~std::uint64_t{0}};
  sw.apply(t0);

  FlowMatch m1;
  m1.set(FieldId::kMetadata, FieldMatch::exact(std::uint64_t{0x7}));
  m1.set(FieldId::kEthDst, FieldMatch::exact(std::uint64_t{0xAB}));
  sw.apply(add_mod(1, 200, 1, m1, 4));

  PacketHeader h;
  h.set_vlan_id(5);
  h.set_eth_dst(MacAddress{0xAB});
  const auto result = sw.process(h);
  EXPECT_EQ(result.verdict, Verdict::kForwarded);
  EXPECT_EQ(result.matched_entries, (std::vector<FlowEntryId>{100, 200}));
  EXPECT_EQ(sw.process_reference(h), result);
}

TEST(SwitchModel, RandomChurnKeepsEquivalence) {
  workload::Rng rng(404);
  SwitchModel sw({{FieldId::kVlanId, FieldId::kEthDst}});
  std::vector<FlowEntry> live;
  FlowEntryId next_id = 0;
  const std::vector<FieldId> fields = {FieldId::kVlanId, FieldId::kEthDst};

  for (int step = 0; step < 250; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      FlowMatch match;
      match.set(FieldId::kVlanId, FieldMatch::exact(rng.below(24)));
      match.set(FieldId::kEthDst, FieldMatch::exact(rng.below(48)));
      auto mod = add_mod(0, next_id++, static_cast<std::uint16_t>(rng.below(4)),
                         match, static_cast<std::uint32_t>(1 + rng.below(8)));
      sw.apply(mod, static_cast<std::uint64_t>(step));
      live.push_back(mod.entry);
    } else {
      const std::size_t victim = rng.below(live.size());
      FlowMod del;
      del.command = FlowModCommand::kDelete;
      del.table = 0;
      del.entry.id = live[victim].id;
      sw.apply(del, static_cast<std::uint64_t>(step));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    if (step % 10 == 0) {
      for (int probe = 0; probe < 25; ++probe) {
        PacketHeader header;
        if (!live.empty() && rng.chance(0.7)) {
          header = workload::header_matching(live[rng.below(live.size())].match,
                                             fields, rng.next());
        } else {
          header = workload::random_header(fields, rng.next());
        }
        EXPECT_EQ(sw.process(header), sw.process_reference(header))
            << "step " << step;
      }
    }
  }
}

}  // namespace
}  // namespace ofmtl
