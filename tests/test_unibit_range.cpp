// Unibit trie vs. brute force, and RangeMatcher vs. brute force.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "classifier/range_matcher.hpp"
#include "classifier/unibit_trie.hpp"
#include "workload/rng.hpp"

namespace ofmtl {
namespace {

TEST(UnibitTrie, Basics) {
  UnibitTrie trie(8);
  EXPECT_EQ(trie.lookup(5), std::nullopt);
  trie.insert(Prefix::from_value(0b10100000, 3, 8), 1);
  trie.insert(Prefix::from_value(0b10110000, 4, 8), 2);
  EXPECT_EQ(trie.lookup(0b10111111), 2U);
  EXPECT_EQ(trie.lookup(0b10100000), 1U);
  EXPECT_EQ(trie.lookup(0b11100000), std::nullopt);
  EXPECT_EQ(trie.prefix_count(), 2U);
}

TEST(UnibitTrie, RemoveAndReinsert) {
  UnibitTrie trie(8);
  const auto p = Prefix::from_value(0xF0, 4, 8);
  trie.insert(p, 7);
  EXPECT_TRUE(trie.remove(p));
  EXPECT_FALSE(trie.remove(p));
  EXPECT_EQ(trie.lookup(0xF5), std::nullopt);
  trie.insert(p, 8);
  EXPECT_EQ(trie.lookup(0xF5), 8U);
}

TEST(UnibitTrie, BruteForceEquivalence) {
  workload::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    UnibitTrie trie(10);
    std::vector<std::pair<Prefix, std::uint32_t>> prefixes;
    for (int i = 0; i < 60; ++i) {
      const unsigned len = static_cast<unsigned>(rng.below(11));
      const auto prefix = Prefix::from_value(rng.below(1 << 10), len, 10);
      // Keep last-insert-wins semantics consistent with brute force.
      std::erase_if(prefixes, [&](const auto& e) { return e.first == prefix; });
      prefixes.emplace_back(prefix, static_cast<std::uint32_t>(i));
      trie.insert(prefix, static_cast<std::uint32_t>(i));
    }
    for (std::uint64_t key = 0; key < (1 << 10); ++key) {
      std::optional<std::uint32_t> best;
      unsigned best_len = 0;
      for (const auto& [prefix, value] : prefixes) {
        if (prefix.matches(key) && (!best || prefix.length() >= best_len)) {
          best = value;
          best_len = prefix.length();
        }
      }
      EXPECT_EQ(trie.lookup(key), best) << key;
    }
  }
}

TEST(RangeMatcher, DeduplicatesRanges) {
  RangeMatcher matcher(16);
  const auto a = matcher.add({10, 20});
  const auto b = matcher.add({10, 20});
  const auto c = matcher.add({15, 25});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(matcher.unique_ranges(), 2U);
}

TEST(RangeMatcher, NarrowestFirst) {
  RangeMatcher matcher(16);
  const auto wide = matcher.add({0, 65535});
  const auto mid = matcher.add({1000, 2000});
  const auto tight = matcher.add({1500, 1510});
  matcher.seal();
  const auto& labels = matcher.lookup(1505);
  ASSERT_EQ(labels.size(), 3U);
  EXPECT_EQ(labels[0], tight);
  EXPECT_EQ(labels[1], mid);
  EXPECT_EQ(labels[2], wide);
  EXPECT_EQ(matcher.lookup_narrowest(1505), tight);
  EXPECT_EQ(matcher.lookup_narrowest(500), wide);
}

TEST(RangeMatcher, RequiresSeal) {
  RangeMatcher matcher(16);
  matcher.add({1, 2});
  EXPECT_THROW((void)matcher.lookup(1), std::logic_error);
}

TEST(RangeMatcher, BruteForceEquivalence) {
  workload::Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    RangeMatcher matcher(10);
    std::vector<std::pair<ValueRange, std::uint32_t>> ranges;
    for (int i = 0; i < 25; ++i) {
      std::uint64_t a = rng.below(1 << 10);
      std::uint64_t b = rng.below(1 << 10);
      if (a > b) std::swap(a, b);
      const ValueRange range{a, b};
      const auto label = matcher.add(range);
      if (std::none_of(ranges.begin(), ranges.end(),
                       [&](const auto& e) { return e.first == range; })) {
        ranges.emplace_back(range, label);
      }
    }
    matcher.seal();
    for (std::uint64_t key = 0; key < (1 << 10); ++key) {
      std::vector<std::uint32_t> expected;
      for (const auto& [range, label] : ranges) {
        if (range.contains(key)) expected.push_back(label);
      }
      std::sort(expected.begin(), expected.end(),
                [&](std::uint32_t x, std::uint32_t y) {
                  const auto sx = matcher.range_of(x).span();
                  const auto sy = matcher.range_of(y).span();
                  return sx != sy ? sx < sy : x < y;
                });
      EXPECT_EQ(matcher.lookup(key), expected) << "key " << key;
    }
  }
}

TEST(RangeMatcher, StorageBitsGrowWithRanges) {
  RangeMatcher small(16);
  small.add({1, 2});
  small.seal();
  RangeMatcher big(16);
  workload::Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t lo = rng.below(60000);
    big.add({lo, lo + rng.below(1000)});
  }
  big.seal();
  EXPECT_GT(big.storage_bits(8), small.storage_bits(8));
}

}  // namespace
}  // namespace ofmtl
