// Workload-substrate tests. The critical property: the synthetic Stanford
// filter sets reproduce the paper's Table III/IV statistics *exactly* —
// rule counts and unique values per field/partition — for all 16 routers.
#include <gtest/gtest.h>

#include <set>

#include "stats/filter_analysis.hpp"
#include "workload/acl_synth.hpp"
#include "workload/calibration.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace ofmtl {
namespace {

using workload::FilterApp;
using workload::kFilterCount;
using workload::kMacTargets;
using workload::kRoutingTargets;

class MacCalibration : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MacCalibration, MatchesTableIIIExactly) {
  const auto& target = kMacTargets[GetParam()];
  const auto set = workload::generate_mac_filterset(target);
  ASSERT_EQ(set.entries.size(), target.rules);

  const auto analysis = stats::analyze(set);
  EXPECT_EQ(analysis.rule_count, target.rules);
  const auto& vlan = analysis.of(FieldId::kVlanId);
  EXPECT_EQ(vlan.unique_whole, target.unique_vlan);
  const auto& eth = analysis.of(FieldId::kEthDst);
  ASSERT_EQ(eth.unique_per_partition.size(), 3U);
  EXPECT_EQ(eth.unique_per_partition[0], target.unique_eth_hi);
  EXPECT_EQ(eth.unique_per_partition[1], target.unique_eth_mid);
  EXPECT_EQ(eth.unique_per_partition[2], target.unique_eth_lo);
  // MAC rules are all distinct whole MACs.
  EXPECT_EQ(eth.unique_whole, target.rules);
  EXPECT_EQ(eth.wildcard_rules, 0U);
}

INSTANTIATE_TEST_SUITE_P(AllRouters, MacCalibration,
                         ::testing::Range<std::size_t>(0, kFilterCount),
                         [](const auto& info) {
                           return std::string(kMacTargets[info.param].name);
                         });

class RoutingCalibration : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RoutingCalibration, MatchesTableIVExactly) {
  const auto& target = kRoutingTargets[GetParam()];
  const auto set = workload::generate_routing_filterset(target);
  ASSERT_EQ(set.entries.size(), target.rules);

  const auto analysis = stats::analyze(set);
  const auto& port = analysis.of(FieldId::kInPort);
  EXPECT_EQ(port.unique_whole, target.unique_ports);
  const auto& ip = analysis.of(FieldId::kIpv4Dst);
  ASSERT_EQ(ip.unique_per_partition.size(), 2U);
  EXPECT_EQ(ip.unique_per_partition[0], target.unique_ip_hi);
  EXPECT_EQ(ip.unique_per_partition[1], target.unique_ip_lo);
}

INSTANTIATE_TEST_SUITE_P(AllRouters, RoutingCalibration,
                         ::testing::Range<std::size_t>(0, kFilterCount),
                         [](const auto& info) {
                           return std::string(kRoutingTargets[info.param].name);
                         });

TEST(RoutingWorkload, ContainsDefaultRoute) {
  const auto set =
      workload::generate_routing_filterset(workload::routing_target("bbra"));
  bool has_default = false;
  for (const auto& entry : set.entries) {
    const auto& fm = entry.match.get(FieldId::kIpv4Dst);
    if (fm.kind == MatchKind::kPrefix && fm.prefix.is_wildcard_all()) {
      has_default = true;
    }
  }
  EXPECT_TRUE(has_default);
}

TEST(RoutingWorkload, PrioritiesFollowPrefixLength) {
  const auto set =
      workload::generate_routing_filterset(workload::routing_target("goza"));
  for (const auto& entry : set.entries) {
    const auto& fm = entry.match.get(FieldId::kIpv4Dst);
    ASSERT_EQ(fm.kind, MatchKind::kPrefix);
    EXPECT_EQ(entry.priority, fm.prefix.length());
  }
}

TEST(MacWorkload, RulesAreDistinct) {
  const auto set = workload::generate_mac_filterset(workload::mac_target("coza"));
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (const auto& entry : set.entries) {
    const auto vlan = entry.match.get(FieldId::kVlanId).value.lo;
    const auto mac = entry.match.get(FieldId::kEthDst).value.lo;
    EXPECT_TRUE(seen.emplace(vlan, mac).second) << "duplicate rule";
  }
}

TEST(Workload, DeterministicAcrossCalls) {
  const auto a = workload::generate_mac_filterset(workload::mac_target("yozb"), 3);
  const auto b = workload::generate_mac_filterset(workload::mac_target("yozb"), 3);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i], b.entries[i]);
  }
  const auto c = workload::generate_mac_filterset(workload::mac_target("yozb"), 4);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    if (!(a.entries[i] == c.entries[i])) any_difference = true;
  }
  EXPECT_TRUE(any_difference) << "different seeds should differ";
}

TEST(Workload, GenerateAllProducesSixteenSets) {
  const auto sets = workload::generate_all(FilterApp::kMacLearning);
  ASSERT_EQ(sets.size(), kFilterCount);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(sets[i].entries.size(), kMacTargets[i].rules);
  }
}

TEST(Workload, UnknownRouterThrows) {
  EXPECT_THROW((void)workload::mac_target("nope"), std::invalid_argument);
  EXPECT_THROW((void)workload::routing_target("nope"), std::invalid_argument);
}

TEST(AclWorkload, GeneratesRequestedShape) {
  workload::AclConfig config;
  config.rules = 500;
  const auto set = workload::generate_acl(config);
  EXPECT_EQ(set.entries.size(), 500U);
  ASSERT_EQ(set.fields.size(), 5U);
  std::size_t wildcard_src = 0;
  for (const auto& entry : set.entries) {
    const auto& src = entry.match.get(FieldId::kIpv4Src);
    ASSERT_EQ(src.kind, MatchKind::kPrefix);
    if (src.prefix.is_wildcard_all()) ++wildcard_src;
    const auto& sport = entry.match.get(FieldId::kSrcPort);
    ASSERT_EQ(sport.kind, MatchKind::kRange);
    EXPECT_LE(sport.range.lo, sport.range.hi);
  }
  EXPECT_GT(wildcard_src, 0U);
  EXPECT_LT(wildcard_src, 300U);
}

TEST(TraceGen, HitPacketsMatchTheirRule) {
  const auto set = workload::generate_mac_filterset(workload::mac_target("bbrb"));
  for (std::size_t i = 0; i < 50; ++i) {
    const auto& entry = set.entries[i % set.entries.size()];
    const auto header = workload::header_matching(entry.match, set.fields, i);
    EXPECT_TRUE(entry.match.matches(header)) << i;
  }
}

TEST(TraceGen, PrefixRuleHeadersStayInPrefix) {
  const auto set =
      workload::generate_routing_filterset(workload::routing_target("bozb"));
  for (std::size_t i = 0; i < 100; ++i) {
    const auto& entry = set.entries[i % set.entries.size()];
    const auto header = workload::header_matching(entry.match, set.fields, i);
    EXPECT_TRUE(entry.match.matches(header)) << i;
  }
}

TEST(FilterAnalysis, PrefixLengthHistogram) {
  const auto set =
      workload::generate_routing_filterset(workload::routing_target("bbra"));
  const auto histogram = stats::prefix_length_histogram(set, FieldId::kIpv4Dst);
  ASSERT_EQ(histogram.size(), 33U);
  std::size_t total = 0;
  for (const auto count : histogram) total += count;
  EXPECT_EQ(total, set.entries.size());
  EXPECT_EQ(histogram[0], 1U);  // exactly the default route
}

}  // namespace
}  // namespace ofmtl
