// TCAM baseline equivalence, filter-set serialization round-trips, and the
// block-RAM memory model.
#include <gtest/gtest.h>

#include <sstream>

#include "classifier/tcam.hpp"
#include "flow/filterset_io.hpp"
#include "flow/flow_table.hpp"
#include "mem/memory_model.hpp"
#include "workload/acl_synth.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace ofmtl {
namespace {

TEST(Tcam, PrefixAndExactMatching) {
  TcamModel tcam({FieldId::kIpv4Dst});
  FlowMatch m;
  m.set(FieldId::kIpv4Dst,
        FieldMatch::of_prefix(Prefix::from_value(0x0A000000, 8, 32)));
  EXPECT_EQ(tcam.add_rule(m, 8, 0), 1U);

  PacketHeader h;
  h.set_ipv4_dst(Ipv4Address{0x0A123456});
  EXPECT_EQ(tcam.lookup(h), 0U);
  h.set_ipv4_dst(Ipv4Address{0x0B123456});
  EXPECT_EQ(tcam.lookup(h), std::nullopt);
}

TEST(Tcam, RangeExpansionCost) {
  // The "rule ternary conversion" problem: one range rule explodes into
  // many TCAM entries.
  TcamModel tcam({FieldId::kDstPort});
  FlowMatch m;
  m.set(FieldId::kDstPort, FieldMatch::of_range(1, 0xFFFE));
  EXPECT_EQ(tcam.add_rule(m, 1, 0), 30U);
  EXPECT_EQ(tcam.entry_count(), 30U);
  EXPECT_EQ(tcam.storage_bits(), 30U * 2U * 16U);
}

TEST(Tcam, PriorityOrder) {
  TcamModel tcam({FieldId::kIpv4Dst});
  FlowMatch wide, narrow;
  wide.set(FieldId::kIpv4Dst,
           FieldMatch::of_prefix(Prefix::from_value(0x0A000000, 8, 32)));
  narrow.set(FieldId::kIpv4Dst,
             FieldMatch::of_prefix(Prefix::from_value(0x0A0A0000, 16, 32)));
  tcam.add_rule(wide, 8, 0);
  tcam.add_rule(narrow, 16, 1);
  PacketHeader h;
  h.set_ipv4_dst(Ipv4Address{0x0A0A0101});
  EXPECT_EQ(tcam.lookup(h), 1U);
}

TEST(Tcam, AgreesWithFlowTableOnAcl) {
  workload::AclConfig config;
  config.rules = 200;
  const auto set = workload::generate_acl(config);
  FlowTable oracle(set.entries);
  TcamModel tcam(set.fields);
  // Insert in the oracle's (priority-sorted) order so equal-priority
  // tie-breaks agree.
  for (std::uint32_t i = 0; i < oracle.entries().size(); ++i) {
    tcam.add_rule(oracle.entries()[i].match, oracle.entries()[i].priority, i);
  }
  const auto trace =
      workload::generate_trace(set, {.packets = 2000, .hit_ratio = 0.8, .seed = 9});
  for (const auto& header : trace) {
    const FlowEntry* expected = oracle.lookup(header);
    const auto actual = tcam.lookup(header);
    if (expected == nullptr) {
      EXPECT_EQ(actual, std::nullopt);
    } else {
      ASSERT_TRUE(actual.has_value());
      EXPECT_EQ(oracle.entries()[*actual].id, expected->id);
    }
  }
}

TEST(FiltersetIo, NativeRoundTrip) {
  const auto set = workload::generate_routing_filterset(
      workload::routing_target("bbrb"));
  const auto text = filterset_to_string(set);
  const auto parsed = parse_filterset_string(text);
  ASSERT_EQ(parsed.entries.size(), set.entries.size());
  EXPECT_EQ(parsed.name, set.name);
  EXPECT_EQ(parsed.fields, set.fields);
  for (std::size_t i = 0; i < set.entries.size(); ++i) {
    EXPECT_EQ(parsed.entries[i].id, set.entries[i].id);
    EXPECT_EQ(parsed.entries[i].priority, set.entries[i].priority);
    EXPECT_EQ(parsed.entries[i].match.get(FieldId::kInPort),
              set.entries[i].match.get(FieldId::kInPort));
    EXPECT_EQ(parsed.entries[i].match.get(FieldId::kIpv4Dst),
              set.entries[i].match.get(FieldId::kIpv4Dst));
  }
}

TEST(FiltersetIo, ClassBenchRoundTrip) {
  const std::string line = "@10.2.3.0/24\t5.6.7.8/32\t0 : 65535\t1024 : 2048\t0x06/0xff";
  const auto match = parse_classbench_rule(line);
  EXPECT_EQ(match.get(FieldId::kIpv4Src).prefix.length(), 24U);
  EXPECT_EQ(match.get(FieldId::kIpv4Dst).prefix.length(), 32U);
  EXPECT_EQ(match.get(FieldId::kDstPort).range.lo, 1024U);
  EXPECT_EQ(match.get(FieldId::kIpProto).kind, MatchKind::kMasked);

  const auto emitted = to_classbench_rule(match);
  const auto reparsed = parse_classbench_rule(emitted);
  EXPECT_EQ(reparsed, match);
}

TEST(MemoryModel, KbitConversions) {
  EXPECT_DOUBLE_EQ(mem::to_kbits(1024), 1.0);
  EXPECT_DOUBLE_EQ(mem::to_mbits(1024 * 1024), 1.0);
}

TEST(MemoryModel, BlockRamPacking) {
  const mem::BlockRamModel m20k;
  EXPECT_EQ(m20k.blocks_needed(0, 20), 0U);
  // 512 x 40 fits one block.
  EXPECT_EQ(m20k.blocks_needed(512, 40), 1U);
  EXPECT_EQ(m20k.blocks_needed(513, 40), 2U);
  // 26-bit words: one lane, depth 512 (power of two below 20480/26=787).
  EXPECT_EQ(m20k.blocks_needed(512, 26), 1U);
  EXPECT_EQ(m20k.blocks_needed(600, 26), 2U);
  // Words wider than a port split across lanes.
  EXPECT_EQ(m20k.blocks_needed(512, 80), 2U);
}

TEST(MemoryModel, ReportAggregation) {
  mem::MemoryReport report;
  report.add("a", 100, 10);
  report.add("b", 50, 20);
  EXPECT_EQ(report.total_bits(), 100U * 10U + 50U * 20U);
  mem::MemoryReport merged;
  merged.merge(report, "x.");
  EXPECT_EQ(merged.total_bits(), report.total_bits());
  EXPECT_EQ(merged.components()[0].name, "x.a");

  std::ostringstream out;
  merged.print(out);
  EXPECT_NE(out.str().find("TOTAL"), std::string::npos);
}

}  // namespace
}  // namespace ofmtl
