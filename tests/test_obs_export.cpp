// OFTRACE1 container + Perfetto writer tests. The loader-hardening half is
// a hostile-bytes sweep: a real dump is truncated at EVERY byte boundary
// and byte-flipped at every offset, and the status-returning loader must
// classify each mutant without throwing and without allocating more than
// the real file size can back (counting allocator, same idiom as
// test_obs_ring.cpp). The writer half pins the observability surface the
// merge workflow depends on: process/thread metadata events, the
// ring_dropped / decode_skipped counter tracks, and wall-clock alignment of
// two processes on one timeline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace_event.hpp"
#include "obs/tracer.hpp"

namespace {

using namespace ofmtl::obs;

// Binary-local counting allocator: tracks how many BYTES a code window
// requested, so the loader's "allocations bounded by real file size" claim
// is provable, not aspirational.
std::atomic<std::size_t> g_allocated_bytes{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

constexpr char kPath[] = "test_obs_export.tmp.oftrace";

void write_bytes(const std::string& path, const std::vector<unsigned char>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  ASSERT_TRUE(out.flush());
}

std::vector<unsigned char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void append_u64(std::vector<unsigned char>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>(value >> (8 * i)));
  }
}

/// A realistic dump: two threads, anchor pairs, nested slices, a counter.
TraceDump make_dump() {
  TraceDump dump;
  dump.pid = 4242;
  dump.process_name = "unit_proc";
  ThreadTrace worker;
  worker.name = "worker0";
  worker.tid = 1;
  worker.dropped = 7;
  worker.records = {
      {static_cast<std::uint16_t>(TraceEvent::kTimeSync), 0, 0, 1'000'000},
      {static_cast<std::uint16_t>(TraceEvent::kWallClockSync), 0, 0,
       5'000'000},
      {static_cast<std::uint16_t>(TraceEvent::kBatchBegin), 0, 100, 256},
      {static_cast<std::uint16_t>(TraceEvent::kStageBegin), 1, 50, 0},
      {static_cast<std::uint16_t>(TraceEvent::kStageEnd), 1, 200, 0},
      {static_cast<std::uint16_t>(TraceEvent::kBatchEnd), 0, 400, 256},
      {static_cast<std::uint16_t>(TraceEvent::kCacheHits), 0, 10, 3},
  };
  ThreadTrace writer;
  writer.name = "writer";
  writer.tid = 2;
  writer.records = {
      {static_cast<std::uint16_t>(TraceEvent::kTimeSync), 0, 0, 2'000'000},
      {static_cast<std::uint16_t>(TraceEvent::kPublishBegin), 0, 10, 5},
      {static_cast<std::uint16_t>(TraceEvent::kPublishEnd), 0, 90, 5},
  };
  dump.threads.push_back(std::move(worker));
  dump.threads.push_back(std::move(writer));
  return dump;
}

TEST(TraceContainerTest, ExtendedHeaderRoundTripsProcessIdentity) {
  const TraceDump dump = make_dump();
  save_trace_dump(kPath, dump);
  TraceDump loaded;
  ASSERT_EQ(load_trace_dump(kPath, loaded), TraceLoadStatus::kOk);
  EXPECT_EQ(loaded.pid, 4242u);
  EXPECT_EQ(loaded.process_name, "unit_proc");
  ASSERT_EQ(loaded.threads.size(), 2u);
  EXPECT_EQ(loaded.threads[0].name, "worker0");
  EXPECT_EQ(loaded.threads[0].dropped, 7u);
  ASSERT_EQ(loaded.threads[0].records.size(), dump.threads[0].records.size());
  for (std::size_t i = 0; i < dump.threads[0].records.size(); ++i) {
    EXPECT_EQ(loaded.threads[0].records[i].event,
              dump.threads[0].records[i].event);
    EXPECT_EQ(loaded.threads[0].records[i].payload,
              dump.threads[0].records[i].payload);
  }
  std::remove(kPath);
}

TEST(TraceContainerTest, LegacyLayoutWithoutProcessHeaderStillLoads) {
  // Pre-identity files put the thread count directly after the magic.
  std::vector<unsigned char> bytes;
  const char magic[] = "OFTRACE1";
  bytes.insert(bytes.end(), magic, magic + 8);
  append_u64(bytes, 1);  // thread count (legacy position)
  append_u64(bytes, 4);  // name length
  bytes.insert(bytes.end(), {'m', 'a', 'i', 'n'});
  append_u64(bytes, 9);  // tid
  append_u64(bytes, 3);  // dropped
  append_u64(bytes, 1);  // record count
  const TraceRecord record{
      static_cast<std::uint16_t>(TraceEvent::kTimeSync), 0, 0, 77};
  append_u64(bytes, pack_lo(record));
  append_u64(bytes, pack_hi(record));
  write_bytes(kPath, bytes);

  TraceDump loaded;
  ASSERT_EQ(load_trace_dump(kPath, loaded), TraceLoadStatus::kOk);
  EXPECT_EQ(loaded.pid, 0u);  // unknown in the legacy layout
  EXPECT_TRUE(loaded.process_name.empty());
  ASSERT_EQ(loaded.threads.size(), 1u);
  EXPECT_EQ(loaded.threads[0].name, "main");
  EXPECT_EQ(loaded.threads[0].tid, 9u);
  EXPECT_EQ(loaded.threads[0].dropped, 3u);
  ASSERT_EQ(loaded.threads[0].records.size(), 1u);
  EXPECT_EQ(loaded.threads[0].records[0].payload, 77u);
  std::remove(kPath);
}

TEST(TraceContainerTest, TruncationAtEveryCutPointReturnsStatus) {
  save_trace_dump(kPath, make_dump());
  const std::vector<unsigned char> full = read_bytes(kPath);
  ASSERT_GT(full.size(), 16u);
  // Every strict prefix must be rejected with a classified status — the
  // dump has content, so no cut point can look complete. Nothing throws.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    write_bytes(kPath, {full.begin(), full.begin() + cut});
    TraceDump out;
    TraceLoadStatus status = TraceLoadStatus::kOk;
    ASSERT_NO_THROW(status = load_trace_dump(kPath, out)) << "cut=" << cut;
    EXPECT_NE(status, TraceLoadStatus::kOk) << "cut=" << cut;
    EXPECT_TRUE(status == TraceLoadStatus::kBadMagic ||
                status == TraceLoadStatus::kTruncated ||
                status == TraceLoadStatus::kCorruptHeader)
        << "cut=" << cut << " status=" << trace_load_status_name(status);
  }
  std::remove(kPath);
}

TEST(TraceContainerTest, ByteFlipSweepNeverThrowsOrOverAllocates) {
  save_trace_dump(kPath, make_dump());
  const std::vector<unsigned char> full = read_bytes(kPath);
  // Flip every byte to the two most hostile values (all-ones inflates every
  // length/count field it lands in; zero truncates them). Any status is
  // legal — including kOk when the flip hits a payload byte — but the
  // loader must neither throw nor allocate beyond what the real file size
  // can back.
  for (const unsigned char flip : {0xFFu, 0x00u}) {
    for (std::size_t at = 0; at < full.size(); ++at) {
      std::vector<unsigned char> mutant = full;
      if (mutant[at] == flip) continue;
      mutant[at] = flip;
      write_bytes(kPath, mutant);
      TraceDump out;
      const std::size_t before =
          g_allocated_bytes.load(std::memory_order_relaxed);
      ASSERT_NO_THROW((void)load_trace_dump(kPath, out))
          << "at=" << at << " flip=" << static_cast<int>(flip);
      const std::size_t allocated =
          g_allocated_bytes.load(std::memory_order_relaxed) - before;
      // Bound: the file image + the decoded records/strings (≤ image size
      // again) + vector growth and stream slack. A loader that trusted a
      // hostile count would blow through this by orders of magnitude.
      EXPECT_LT(allocated, 4 * full.size() + 65536)
          << "at=" << at << " flip=" << static_cast<int>(flip);
    }
  }
  std::remove(kPath);
}

TEST(TraceContainerTest, HostileCountsAreRejectedCheaply) {
  // Thread count over the sanity cap.
  std::vector<unsigned char> bytes;
  const char magic[] = "OFTRACE1";
  bytes.insert(bytes.end(), magic, magic + 8);
  append_u64(bytes, (std::uint64_t{1} << 16) + 1);
  write_bytes(kPath, bytes);
  TraceDump out;
  EXPECT_EQ(load_trace_dump(kPath, out), TraceLoadStatus::kCorruptHeader);

  // Record count no file of this size can back: rejected BEFORE reserve.
  bytes.clear();
  bytes.insert(bytes.end(), magic, magic + 8);
  append_u64(bytes, 1);  // one thread (legacy layout)
  append_u64(bytes, 2);  // name length
  bytes.insert(bytes.end(), {'h', 'i'});
  append_u64(bytes, 1);      // tid
  append_u64(bytes, 0);      // dropped
  append_u64(bytes, ~0ull);  // record count: 2^64-1
  write_bytes(kPath, bytes);
  const std::size_t before = g_allocated_bytes.load(std::memory_order_relaxed);
  EXPECT_EQ(load_trace_dump(kPath, out), TraceLoadStatus::kTruncated);
  EXPECT_LT(g_allocated_bytes.load(std::memory_order_relaxed) - before,
            std::size_t{65536});

  // Name length over the cap, but with enough trailing bytes to back it:
  // still rejected by the sanity cap, not by truncation.
  bytes.clear();
  bytes.insert(bytes.end(), magic, magic + 8);
  append_u64(bytes, 1);
  append_u64(bytes, (std::uint64_t{1} << 12) + 1);
  bytes.resize(bytes.size() + (std::size_t{1} << 12) + 64, 'x');
  write_bytes(kPath, bytes);
  EXPECT_EQ(load_trace_dump(kPath, out), TraceLoadStatus::kCorruptHeader);

  EXPECT_EQ(load_trace_dump("no_such_file.oftrace", out),
            TraceLoadStatus::kIoError);
  std::remove(kPath);
}

TEST(PerfettoWriterTest, EmitsProcessAndThreadMetadataAndCounterTracks) {
  std::ostringstream out;
  write_perfetto_json(out, make_dump());
  const std::string json = out.str();
  EXPECT_NE(json.find(R"("ph":"M","name":"process_name","pid":4242)"),
            std::string::npos);
  EXPECT_NE(json.find("unit_proc"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"thread_name")"), std::string::npos);
  EXPECT_NE(json.find("worker0"), std::string::npos);
  // Overwrite-loss counter tracks: dropped=7 on worker0, 0 on writer.
  EXPECT_NE(json.find(R"("name":"ring_dropped")"), std::string::npos);
  EXPECT_NE(json.find(R"("args":{"value":7})"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"decode_skipped")"), std::string::npos);
  // The nested slices paired: batch contains stage_walk.
  EXPECT_NE(json.find(R"("ph":"X","name":"batch")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"X","name":"stage_walk")"), std::string::npos);
}

TEST(PerfettoWriterTest, DecodeCountsSkippedPrefixBeforeFirstAnchor) {
  ThreadTrace thread;
  thread.name = "latecomer";
  thread.records = {
      {static_cast<std::uint16_t>(TraceEvent::kBatchBegin), 0, 5, 1},
      {static_cast<std::uint16_t>(TraceEvent::kBatchEnd), 0, 5, 1},
      {static_cast<std::uint16_t>(TraceEvent::kTimeSync), 0, 0, 500},
      {static_cast<std::uint16_t>(TraceEvent::kBatchBegin), 0, 10, 1},
      {static_cast<std::uint16_t>(TraceEvent::kBatchEnd), 0, 30, 1},
  };
  DecodeStats stats;
  const auto events = decode_thread(thread, &stats);
  EXPECT_EQ(stats.skipped_prefix, 2u);  // the pre-anchor pair is undecodable
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ts_ns, 510u);
  EXPECT_EQ(events[1].ts_ns, 540u);
}

TEST(PerfettoWriterTest, MergeShiftsProcessesByWallClockOffsets) {
  // Two processes whose monotonic clocks disagree but whose wall clocks
  // pin real time: A's anchor says wall-mono = 4 ms, B's says 8 ms, so B's
  // events must land 4 ms later than equal monotonic stamps in A.
  const auto make_process = [](std::uint64_t mono_base, std::uint64_t wall,
                               const char* name, std::uint64_t pid) {
    TraceDump dump;
    dump.pid = pid;
    dump.process_name = name;
    ThreadTrace thread;
    thread.name = "loop";
    thread.tid = 1;
    thread.records = {
        {static_cast<std::uint16_t>(TraceEvent::kTimeSync), 0, 0, mono_base},
        {static_cast<std::uint16_t>(TraceEvent::kWallClockSync), 0, 0, wall},
        {static_cast<std::uint16_t>(TraceEvent::kBatchBegin), 0, 1'000'000,
         1},
        {static_cast<std::uint16_t>(TraceEvent::kBatchEnd), 0, 1'000'000, 1},
    };
    dump.threads.push_back(std::move(thread));
    return dump;
  };
  // A: mono 1ms, wall 5ms → offset 4ms. B: mono 1ms, wall 9ms → offset 8ms.
  const std::vector<TraceDump> dumps = {
      make_process(1'000'000, 5'000'000, "ctrl", 11),
      make_process(1'000'000, 9'000'000, "switch", 22),
  };
  std::ostringstream out;
  write_perfetto_json(out, dumps);
  const std::string json = out.str();
  EXPECT_NE(json.find(R"("pid":11)"), std::string::npos);
  EXPECT_NE(json.find(R"("pid":22)"), std::string::npos);
  // A's batch begins at mono 2 ms, unshifted (it has the smaller offset);
  // B's begins at mono 2 ms + (8−4) ms = 6 ms. Timestamps render in us.
  EXPECT_NE(json.find(R"("ph":"X","name":"batch","pid":11,"tid":1,"ts":2000.000)"),
            std::string::npos);
  EXPECT_NE(json.find(R"("ph":"X","name":"batch","pid":22,"tid":1,"ts":6000.000)"),
            std::string::npos);
}

TEST(PerfettoWriterTest, MergeWithoutWallAnchorsRendersUnshifted) {
  TraceDump plain;
  plain.pid = 33;
  plain.process_name = "legacy";
  ThreadTrace thread;
  thread.tid = 1;
  thread.name = "t";
  thread.records = {
      {static_cast<std::uint16_t>(TraceEvent::kTimeSync), 0, 0, 1'000'000},
      {static_cast<std::uint16_t>(TraceEvent::kBatchBegin), 0, 500, 1},
      {static_cast<std::uint16_t>(TraceEvent::kBatchEnd), 0, 500, 1},
  };
  plain.threads.push_back(thread);
  std::ostringstream out;
  write_perfetto_json(out, std::vector<TraceDump>{plain, plain});
  const std::string json = out.str();
  // Both copies at the same (unshifted) timestamp: no offset invented.
  EXPECT_NE(json.find(R"("ts":1000.500)"), std::string::npos);
  EXPECT_EQ(json.find(R"("ts":2000)"), std::string::npos);
}

}  // namespace
