// Trace-ring unit tests: record pack/unpack bijection over the whole event
// vocabulary, overwrite-oldest semantics at every wrap offset, exactly-once
// concurrent drain (the seqlock contract — run under TSan in CI), and the
// allocation-free guarantee of the emit path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "obs/trace_event.hpp"
#include "obs/trace_ring.hpp"
#include "obs/tracer.hpp"

namespace {

using namespace ofmtl::obs;

// Binary-local counting allocator (same idiom as test_flow_cache.cpp): every
// global operator new bumps the counter, so a window of code can be proven
// allocation-free. Linked into this test binary only.
std::atomic<std::size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

TEST(TraceRecordTest, PackUnpackBijectiveForEveryEventType) {
  for (std::uint16_t event = 0;
       event < static_cast<std::uint16_t>(TraceEvent::kEventCount); ++event) {
    // Patterned fields exercise every byte of both packed words.
    const TraceRecord original{
        event, static_cast<std::uint16_t>(0xA100u | event),
        0xDEADBEEFu ^ (static_cast<std::uint32_t>(event) << 20),
        0x0123456789ABCDEFull + event};
    const TraceRecord round =
        unpack_record(pack_lo(original), pack_hi(original));
    EXPECT_EQ(round.event, original.event);
    EXPECT_EQ(round.arg, original.arg);
    EXPECT_EQ(round.ts_delta, original.ts_delta);
    EXPECT_EQ(round.payload, original.payload);
  }
}

TEST(TraceRecordTest, ExtremeFieldValuesSurvive) {
  const TraceRecord maxed{0xFFFF, 0xFFFF, 0xFFFFFFFFu, ~0ull};
  const TraceRecord round = unpack_record(pack_lo(maxed), pack_hi(maxed));
  EXPECT_EQ(round.event, maxed.event);
  EXPECT_EQ(round.arg, maxed.arg);
  EXPECT_EQ(round.ts_delta, maxed.ts_delta);
  EXPECT_EQ(round.payload, maxed.payload);
  const TraceRecord zero{};
  const TraceRecord round_zero = unpack_record(pack_lo(zero), pack_hi(zero));
  EXPECT_EQ(round_zero.event, 0);
  EXPECT_EQ(round_zero.payload, 0u);
}

TEST(TraceRecordTest, EveryEventHasNameAndBeginEndPairing) {
  for (std::uint16_t raw = 0;
       raw < static_cast<std::uint16_t>(TraceEvent::kEventCount); ++raw) {
    const auto event = static_cast<TraceEvent>(raw);
    EXPECT_STRNE(trace_event_name(event), "unknown");
    if (trace_event_kind(event) == TraceEventKind::kBegin) {
      // The matching end is the next enumerator and shares the slice name —
      // the pairing rule the exporter's per-name stacks rely on.
      const auto end = static_cast<TraceEvent>(raw + 1);
      EXPECT_EQ(trace_event_kind(end), TraceEventKind::kEnd);
      EXPECT_STREQ(trace_event_name(event), trace_event_name(end));
    }
  }
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 4u);
  EXPECT_EQ(TraceRing(4).capacity(), 4u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(TraceRingTest, DrainReturnsRecordsInEmitOrder) {
  TraceRing ring(16);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.push(TraceRecord{1, 2, 3, i});
  }
  std::vector<TraceRecord> out;
  EXPECT_EQ(ring.drain(out), 10u);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(out[i].payload, i);
  EXPECT_EQ(ring.dropped(), 0u);
  // A second drain starts at the cursor: nothing new, nothing duplicated.
  EXPECT_EQ(ring.drain(out), 0u);
  EXPECT_EQ(out.size(), 10u);
}

TEST(TraceRingTest, OverwriteOldestAtEveryWrapOffset) {
  constexpr std::uint64_t kCapacity = 8;
  // Sweep every total from "empty" through three full laps: at every wrap
  // offset the drain must return exactly the newest min(total, capacity)
  // records, in order, and count the rest as dropped.
  for (std::uint64_t total = 1; total <= 3 * kCapacity; ++total) {
    TraceRing ring(kCapacity);
    ASSERT_EQ(ring.capacity(), kCapacity);
    for (std::uint64_t i = 0; i < total; ++i) {
      ring.push(TraceRecord{7, 0, 0, i});
    }
    std::vector<TraceRecord> out;
    const std::uint64_t expect_kept = total < kCapacity ? total : kCapacity;
    const std::uint64_t expect_dropped = total - expect_kept;
    EXPECT_EQ(ring.drain(out), expect_kept) << "total=" << total;
    ASSERT_EQ(out.size(), expect_kept);
    for (std::uint64_t i = 0; i < expect_kept; ++i) {
      EXPECT_EQ(out[i].payload, expect_dropped + i) << "total=" << total;
    }
    EXPECT_EQ(ring.dropped(), expect_dropped) << "total=" << total;
    EXPECT_EQ(ring.emitted(), total);
  }
}

TEST(TraceRingTest, EmitInterleavesDecodableTimeSyncAnchors) {
  TraceRing ring(1 << 12);
  for (int i = 0; i < 100; ++i) {
    ring.emit(TraceEvent::kBatchBegin, 0, static_cast<std::uint64_t>(i));
  }
  std::vector<TraceRecord> out;
  ring.drain(out);
  // First record must be an anchor (head == 0 forces one), and the deltas
  // must reconstruct a non-decreasing timeline.
  ASSERT_GE(out.size(), 101u);
  ASSERT_EQ(out[0].event, static_cast<std::uint16_t>(TraceEvent::kTimeSync));
  std::uint64_t ts = out[0].payload;
  EXPECT_GT(ts, 0u);
  std::uint64_t last = ts;
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i].event == static_cast<std::uint16_t>(TraceEvent::kTimeSync)) {
      ts = out[i].payload;
    } else {
      ts += out[i].ts_delta;
    }
    EXPECT_GE(ts, last);
    last = ts;
  }
}

TEST(TraceRingTest, ConcurrentProduceDrainIsExactlyOnce) {
  // The seqlock contract under a live producer: every record is either
  // drained exactly once (in order) or counted dropped — never duplicated,
  // never torn. TSan runs this in CI (.github/workflows/ci.yml tsan job).
  constexpr std::uint64_t kTotal = 100000;
  TraceRing ring(1024);
  std::atomic<bool> done{false};
  std::vector<TraceRecord> drained;
  std::thread consumer([&] {
    std::vector<TraceRecord> chunk;
    while (!done.load(std::memory_order_acquire)) {
      chunk.clear();
      ring.drain(chunk);
      drained.insert(drained.end(), chunk.begin(), chunk.end());
    }
    chunk.clear();
    ring.drain(chunk);  // final sweep after the producer finished
    drained.insert(drained.end(), chunk.begin(), chunk.end());
  });
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    ring.push(TraceRecord{1, 2, 3, i});
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  // Exactly once: sequenced payloads come out strictly increasing (no
  // duplicate, no reorder, no torn word — a torn read would produce a
  // payload outside the sequence), and kept + dropped covers the total.
  std::uint64_t prev = 0;
  bool first = true;
  for (const auto& record : drained) {
    ASSERT_LT(record.payload, kTotal);
    if (!first) ASSERT_GT(record.payload, prev);
    prev = record.payload;
    first = false;
  }
  EXPECT_EQ(drained.size() + ring.dropped(), kTotal);
  // The last record is never overwritable once the producer stopped.
  ASSERT_FALSE(drained.empty());
  EXPECT_EQ(drained.back().payload, kTotal - 1);
}

TEST(TraceRingTest, PushAndEmitAreAllocationFree) {
  TraceRing ring(256);  // construction allocates the slots — outside the window
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ring.emit(TraceEvent::kBatchBegin, 1, i);
    ring.push(TraceRecord{1, 2, 3, i});
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

TEST(TracerTest, EmitIsAllocationFreeAfterThreadRegistration) {
  start_tracing(TraceOptions{.ring_capacity = 1 << 12});
  // First emit registers this thread's ring: mutex + allocations, by design.
  emit(TraceEvent::kBatchBegin, 0, 0);
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    emit(TraceEvent::kBatchBegin, 0, i);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
  stop_tracing();
  const auto dump = collect_tracing();
  ASSERT_EQ(dump.threads.size(), 1u);
  EXPECT_GT(dump.threads[0].records.size(), 0u);
}

TEST(TracerTest, EmitIsDroppedWhenStoppedAndSessionsAreIsolated) {
  stop_tracing();
  emit(TraceEvent::kBatchBegin, 0, 42);  // no session: must not crash
  start_tracing(TraceOptions{.ring_capacity = 256});
  emit(TraceEvent::kStealSuccess, 3, 7);
  stop_tracing();
  emit(TraceEvent::kBatchBegin, 0, 43);  // after stop: dropped
  const auto dump = collect_tracing();
  ASSERT_EQ(dump.threads.size(), 1u);
  std::uint64_t steal_records = 0;
  for (const auto& record : dump.threads[0].records) {
    EXPECT_NE(record.event,
              static_cast<std::uint16_t>(TraceEvent::kBatchBegin));
    if (record.event == static_cast<std::uint16_t>(TraceEvent::kStealSuccess)) {
      ++steal_records;
      EXPECT_EQ(record.arg, 3u);
      EXPECT_EQ(record.payload, 7u);
    }
  }
  EXPECT_EQ(steal_records, 1u);
  // A new session starts from empty rings.
  start_tracing(TraceOptions{.ring_capacity = 256});
  const auto empty = collect_tracing();
  for (const auto& thread : empty.threads) {
    EXPECT_TRUE(thread.records.empty());
  }
  stop_tracing();
}

TEST(TracerTest, ThreadNamesStickAcrossRegistration) {
  set_thread_name("probe_thread");
  start_tracing(TraceOptions{.ring_capacity = 256});
  emit(TraceEvent::kBatchBegin, 0, 1);
  stop_tracing();
  const auto dump = collect_tracing();
  ASSERT_EQ(dump.threads.size(), 1u);
  EXPECT_EQ(dump.threads[0].name, "probe_thread");
}

}  // namespace
