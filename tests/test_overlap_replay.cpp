// Overlap detection (OFPFF_CHECK_OVERLAP semantics) and update-file
// replay (the Section V.B two-file mechanism, round-tripped).
#include <gtest/gtest.h>

#include <sstream>

#include "core/builder.hpp"
#include "core/update_engine.hpp"
#include "flow/overlap.hpp"
#include "workload/rng.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace ofmtl {
namespace {

// ---- field-constraint intersection ----

TEST(Overlap, ExactVsExact) {
  EXPECT_TRUE(field_constraints_intersect(FieldMatch::exact(std::uint64_t{5}),
                                          FieldMatch::exact(std::uint64_t{5}), 16));
  EXPECT_FALSE(field_constraints_intersect(FieldMatch::exact(std::uint64_t{5}),
                                           FieldMatch::exact(std::uint64_t{6}), 16));
}

TEST(Overlap, PrefixNesting) {
  const auto wide = FieldMatch::of_prefix(Prefix::from_value(0x0A000000, 8, 32));
  const auto narrow =
      FieldMatch::of_prefix(Prefix::from_value(0x0A010000, 16, 32));
  const auto disjoint =
      FieldMatch::of_prefix(Prefix::from_value(0x0B000000, 8, 32));
  EXPECT_TRUE(field_constraints_intersect(wide, narrow, 32));
  EXPECT_FALSE(field_constraints_intersect(narrow, disjoint, 32));
  EXPECT_TRUE(field_constraints_intersect(wide, FieldMatch::any(), 32));
}

TEST(Overlap, RangeVsPrefix) {
  const auto range = FieldMatch::of_range(100, 200);
  const auto inside = FieldMatch::of_prefix(Prefix::from_value(128, 10, 16));
  const auto outside = FieldMatch::of_prefix(Prefix::from_value(0x4000, 2, 16));
  EXPECT_TRUE(field_constraints_intersect(range, inside, 16));
  EXPECT_FALSE(field_constraints_intersect(range, outside, 16));
}

TEST(Overlap, MaskedPairs) {
  const auto a = FieldMatch::masked(U128{0x10}, U128{0xF0});
  const auto b = FieldMatch::masked(U128{0x01}, U128{0x0F});  // disjoint bits
  const auto c = FieldMatch::masked(U128{0x20}, U128{0xF0});  // conflicts with a
  EXPECT_TRUE(field_constraints_intersect(a, b, 8));
  EXPECT_FALSE(field_constraints_intersect(a, c, 8));
  EXPECT_TRUE(field_constraints_intersect(a, FieldMatch::exact(std::uint64_t{0x1A}), 8));
  EXPECT_FALSE(field_constraints_intersect(a, FieldMatch::exact(std::uint64_t{0x2A}), 8));
}

TEST(Overlap, WideIpv6Prefixes) {
  const auto a = FieldMatch::of_prefix(
      Prefix{U128{0x20010DB800000000ULL, 0}, 32, 128});
  const auto b = FieldMatch::of_prefix(
      Prefix{U128{0x20010DB8AAAA0000ULL, 0}, 48, 128});
  const auto c = FieldMatch::of_prefix(
      Prefix{U128{0x2002000000000000ULL, 0}, 16, 128});
  EXPECT_TRUE(field_constraints_intersect(a, b, 128));
  EXPECT_FALSE(field_constraints_intersect(a, c, 128));
}

// Property: intersection result agrees with a witness search over a small
// field (8 bits: exhaustive).
TEST(Overlap, ExhaustiveWitnessAgreement) {
  workload::Rng rng(81);
  const auto random_constraint = [&rng]() -> FieldMatch {
    switch (rng.below(4)) {
      case 0: return FieldMatch::exact(rng.below(256));
      case 1: {
        const unsigned len = static_cast<unsigned>(rng.below(9));
        return FieldMatch::of_prefix(Prefix::from_value(rng.below(256), len, 8));
      }
      case 2: {
        const std::uint64_t lo = rng.below(256);
        return FieldMatch::of_range(lo, std::min<std::uint64_t>(255, lo + rng.below(64)));
      }
      default: return FieldMatch::any();
    }
  };
  for (int trial = 0; trial < 500; ++trial) {
    const auto a = random_constraint();
    const auto b = random_constraint();
    bool witness = false;
    for (std::uint64_t value = 0; value < 256; ++value) {
      if (a.matches(U128{value}) && b.matches(U128{value})) {
        witness = true;
        break;
      }
    }
    EXPECT_EQ(field_constraints_intersect(a, b, 8), witness)
        << "trial " << trial;
  }
}

TEST(Overlap, FlowLevelAndFind) {
  FlowEntry a;
  a.id = 1;
  a.priority = 5;
  a.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{10}));
  a.match.set(FieldId::kIpv4Dst,
              FieldMatch::of_prefix(Prefix::from_value(0x0A000000, 8, 32)));

  FlowEntry overlapping = a;
  overlapping.id = 2;
  overlapping.match.set(
      FieldId::kIpv4Dst,
      FieldMatch::of_prefix(Prefix::from_value(0x0A010000, 16, 32)));

  FlowEntry different_vlan = a;
  different_vlan.id = 3;
  different_vlan.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{20}));

  FlowEntry other_priority = overlapping;
  other_priority.id = 4;
  other_priority.priority = 9;

  EXPECT_TRUE(matches_overlap(a.match, overlapping.match));
  EXPECT_FALSE(matches_overlap(a.match, different_vlan.match));

  const std::vector<FlowEntry> table = {a};
  EXPECT_EQ(find_overlap(table, overlapping), &table[0]);
  EXPECT_EQ(find_overlap(table, different_vlan), nullptr);
  EXPECT_EQ(find_overlap(table, other_priority), nullptr);  // priority differs
}

// ---- update-file replay ----

TEST(UpdateReplay, ScriptRoundTripsThroughText) {
  const auto set = workload::generate_mac_filterset(workload::mac_target("bbrb"));
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  const auto pipeline = compile_app(spec);
  const auto script = optimized_script(pipeline.table(1), UpdateScope::kAll);

  std::stringstream file;
  script.write(file);
  const auto parsed = UpdateScript::parse(file);
  ASSERT_EQ(parsed.word_count(), script.word_count());
  for (std::size_t i = 0; i < script.words.size(); ++i) {
    EXPECT_EQ(parsed.words[i].target, script.words[i].target);
    EXPECT_EQ(parsed.words[i].address, script.words[i].address);
    EXPECT_EQ(parsed.words[i].payload, script.words[i].payload);
  }
}

TEST(UpdateReplay, ReplayerChargesTwoCyclesPerWord) {
  UpdateScript script;
  script.words = {{"blockA", 0, 1}, {"blockA", 1, 2}, {"blockB", 0, 3}};
  UpdateReplayer replayer;
  EXPECT_EQ(replayer.replay(script), 6U);
  EXPECT_EQ(replayer.cycles(), 6U);
  EXPECT_EQ(replayer.block_count(), 2U);
  EXPECT_EQ(replayer.block_words("blockA"), 2U);
  EXPECT_EQ(replayer.word_at("blockA", 1), 2U);
  EXPECT_EQ(replayer.word_at("blockB", 9), std::nullopt);
  EXPECT_EQ(replayer.word_at("nope", 0), std::nullopt);
}

TEST(UpdateReplay, FullTableImageMatchesScriptCost) {
  const auto set =
      workload::generate_routing_filterset(workload::routing_target("pozb"));
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  const auto pipeline = compile_app(spec);
  UpdateReplayer replayer;
  std::uint64_t expected_cycles = 0;
  for (std::size_t t = 0; t < pipeline.table_count(); ++t) {
    const auto script = optimized_script(pipeline.table(t), UpdateScope::kAll);
    expected_cycles += script.cycles();
    replayer.replay(script);
  }
  EXPECT_EQ(replayer.cycles(), expected_cycles);
  EXPECT_GT(replayer.block_count(), 4U);  // LUTs, tries, index, actions
}

TEST(UpdateReplay, ParseRejectsGarbage) {
  std::stringstream file("not-a-line\n");
  EXPECT_THROW((void)UpdateScript::parse(file), std::invalid_argument);
}

}  // namespace
}  // namespace ofmtl
