// The flagship invariant, swept across every calibrated router of both
// applications (all 32 filter sets, including the 180k-rule coza/cozb/
// soza/sozb): the compiled decomposed pipeline executes bit-for-bit like
// the reference pipeline, and the DCFL classifier agrees with linear search.
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/simd.hpp"
#include "mdclassifier/dcfl.hpp"
#include "mdclassifier/linear.hpp"
#include "workload/calibration.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace ofmtl {
namespace {

struct SweepCase {
  workload::FilterApp app;
  std::size_t index;
};

class FullSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(FullSweep, AcceleratedPipelineMatchesReferenceExactly) {
  const auto [app, index] = GetParam();
  const auto name = app == workload::FilterApp::kMacLearning
                        ? workload::kMacTargets[index].name
                        : workload::kRoutingTargets[index].name;
  const auto set = workload::generate_filterset(app, name);
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  const auto accelerated = compile_app(spec);

  // Keep the trace modest: the sweep covers breadth, the dedicated tests
  // cover depth. Run the comparison on both probe-kernel backends (vector,
  // then forced SWAR) so the sweep also asserts backend identity on every
  // calibrated router.
  const auto trace = workload::generate_trace(
      set, {.packets = 200, .hit_ratio = 0.85, .seed = 97 + index});
  for (const bool force_swar : {false, true}) {
    simd::ScopedForceSwar forced(force_swar);
    SCOPED_TRACE(force_swar ? "backend=forced-swar" : "backend=vector");
    for (const auto& header : trace) {
      ASSERT_EQ(accelerated.execute(header), spec.reference.execute(header))
          << set.name << " " << header.to_string();
    }
  }
}

std::vector<SweepCase> all_cases() {
  std::vector<SweepCase> cases;
  for (std::size_t i = 0; i < workload::kFilterCount; ++i) {
    cases.push_back({workload::FilterApp::kMacLearning, i});
    cases.push_back({workload::FilterApp::kRouting, i});
  }
  return cases;
}

std::string sweep_case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const auto app = info.param.app;
  const auto index = info.param.index;
  return std::string(to_string(app)) + "_" +
         std::string(app == workload::FilterApp::kMacLearning
                         ? workload::kMacTargets[index].name
                         : workload::kRoutingTargets[index].name);
}

INSTANTIATE_TEST_SUITE_P(AllRouters, FullSweep,
                         ::testing::ValuesIn(all_cases()), sweep_case_name);

TEST(DcflClassifier, AgreesWithLinearOnBothApps) {
  for (const auto app :
       {workload::FilterApp::kMacLearning, workload::FilterApp::kRouting}) {
    const auto set = workload::generate_filterset(app, "bozb");
    const auto rules = md::RuleSet::from(set);
    md::LinearClassifier oracle{rules};
    md::DcflClassifier dcfl{rules};
    const auto trace = workload::generate_trace(
        set, {.packets = 800, .hit_ratio = 0.8, .seed = 55});
    for (const auto& header : trace) {
      EXPECT_EQ(dcfl.classify(header), oracle.classify(header))
          << to_string(app);
    }
    EXPECT_GT(dcfl.memory_report().total_bits(), 0U);
    (void)dcfl.classify(trace.front());
    EXPECT_GT(dcfl.last_access_count(), 0U);
  }
}

}  // namespace
}  // namespace ofmtl
