// Pipeline-level tests: OpenFlow multi-table semantics (Goto-Table,
// Write-Metadata, action sets, misses), equivalence of the accelerated
// MultiTableLookup with the reference executor, and equivalence of the
// paper's per-field table layout with a single-table layout.
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/pipeline.hpp"
#include "flow/pipeline_ref.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace ofmtl {
namespace {

using workload::FilterApp;
using workload::generate_filterset;
using workload::generate_trace;

FlowEntry entry_with(FlowEntryId id, std::uint16_t priority, FlowMatch match,
                     InstructionSet instructions) {
  FlowEntry entry;
  entry.id = id;
  entry.priority = priority;
  entry.match = std::move(match);
  entry.instructions = std::move(instructions);
  return entry;
}

TEST(ReferencePipeline, TableMissGoesToController) {
  ReferencePipeline pipeline;
  FlowMatch m;
  m.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{1}));
  pipeline.add_table(FlowTable{{entry_with(0, 1, m, output_instruction(3))}});
  PacketHeader h;
  h.set_vlan_id(2);
  const auto result = pipeline.execute(h);
  EXPECT_EQ(result.verdict, Verdict::kToController);
  EXPECT_TRUE(result.output_ports.empty());
}

TEST(ReferencePipeline, GotoTableAndMetadata) {
  ReferencePipeline pipeline;
  FlowMatch m0;
  m0.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{7}));
  InstructionSet ins0;
  ins0.goto_table = 1;
  ins0.write_metadata = MetadataWrite{0x55, 0xFF};
  FlowMatch m1;
  m1.set(FieldId::kMetadata, FieldMatch::exact(std::uint64_t{0x55}));
  pipeline.add_table(FlowTable{{entry_with(0, 1, m0, ins0)}});
  pipeline.add_table(FlowTable{{entry_with(1, 1, m1, output_instruction(9))}});

  PacketHeader h;
  h.set_vlan_id(7);
  const auto result = pipeline.execute(h);
  EXPECT_EQ(result.verdict, Verdict::kForwarded);
  EXPECT_EQ(result.output_ports, (std::vector<std::uint32_t>{9}));
  EXPECT_EQ(result.matched_entries, (std::vector<FlowEntryId>{0, 1}));
  EXPECT_EQ(result.final_metadata, 0x55U);
  EXPECT_EQ(result.visited_tables, (std::vector<std::uint8_t>{0, 1}));
}

TEST(ReferencePipeline, WriteActionsOverwriteAndClear) {
  ReferencePipeline pipeline;
  FlowMatch m;
  m.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{1}));
  InstructionSet ins0 = goto_and_write(1, {OutputAction{5}});
  InstructionSet ins1;
  ins1.write_actions.push_back(OutputAction{6});  // overwrites Output:5
  FlowMatch any;
  pipeline.add_table(FlowTable{{entry_with(0, 1, m, ins0)}});
  pipeline.add_table(FlowTable{{entry_with(1, 1, any, ins1)}});

  PacketHeader h;
  h.set_vlan_id(1);
  const auto result = pipeline.execute(h);
  EXPECT_EQ(result.output_ports, (std::vector<std::uint32_t>{6}));

  // Clear-Actions wipes the pending Output -> drop.
  ReferencePipeline pipeline2;
  InstructionSet clear;
  clear.clear_actions = true;
  pipeline2.add_table(FlowTable{{entry_with(0, 1, m, ins0)}});
  pipeline2.add_table(FlowTable{{entry_with(1, 1, any, clear)}});
  const auto result2 = pipeline2.execute(h);
  EXPECT_EQ(result2.verdict, Verdict::kDropped);
}

TEST(ReferencePipeline, ApplyActionsRewriteHeaderMidPipeline) {
  ReferencePipeline pipeline;
  FlowMatch m0;
  m0.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{1}));
  InstructionSet ins0;
  ins0.goto_table = 1;
  ins0.apply_actions.push_back(SetFieldAction{FieldId::kVlanId, U128{99}});
  FlowMatch m1;
  m1.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{99}));
  pipeline.add_table(FlowTable{{entry_with(0, 1, m0, ins0)}});
  pipeline.add_table(FlowTable{{entry_with(1, 1, m1, output_instruction(2))}});

  PacketHeader h;
  h.set_vlan_id(1);
  const auto result = pipeline.execute(h);
  EXPECT_EQ(result.verdict, Verdict::kForwarded);
  EXPECT_EQ(result.final_header.get64(FieldId::kVlanId), 99U);
}

TEST(ReferencePipeline, BackwardGotoThrows) {
  ReferencePipeline pipeline;
  FlowMatch any;
  InstructionSet back;
  back.goto_table = 0;
  pipeline.add_table(FlowTable{{entry_with(0, 1, any, goto_table_instruction(1))}});
  pipeline.add_table(FlowTable{{entry_with(1, 1, any, back)}});
  PacketHeader h;
  EXPECT_THROW((void)pipeline.execute(h), std::logic_error);
}

// ---- layout equivalence: per-field tables vs single table ----

class LayoutEquivalence
    : public ::testing::TestWithParam<std::pair<FilterApp, const char*>> {};

TEST_P(LayoutEquivalence, SameForwardingBehaviour) {
  const auto [app, name] = GetParam();
  const auto set = generate_filterset(app, name);
  const auto single = build_app(set, TableLayout::kSingleTable);
  const auto split = build_app(set, TableLayout::kPerFieldTables);

  const auto trace =
      generate_trace(set, {.packets = 1500, .hit_ratio = 0.85, .seed = 11});
  for (const auto& header : trace) {
    const auto a = single.reference.execute(header);
    const auto b = split.reference.execute(header);
    // Verdict and output ports must agree; matched entry ids differ by
    // construction (table 0 entries are synthesized).
    EXPECT_EQ(a.verdict, b.verdict) << header.to_string();
    EXPECT_EQ(a.output_ports, b.output_ports) << header.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Apps, LayoutEquivalence,
    ::testing::Values(std::make_pair(FilterApp::kMacLearning, "bbra"),
                      std::make_pair(FilterApp::kMacLearning, "sozb"),
                      std::make_pair(FilterApp::kRouting, "rozb"),
                      std::make_pair(FilterApp::kRouting, "yozb")));

// ---- accelerated pipeline vs reference executor ----

class AcceleratedEquivalence
    : public ::testing::TestWithParam<std::pair<FilterApp, const char*>> {};

TEST_P(AcceleratedEquivalence, ExactlySameExecution) {
  const auto [app, name] = GetParam();
  const auto set = generate_filterset(app, name);
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  const auto accelerated = compile_app(spec);

  const auto trace =
      generate_trace(set, {.packets = 1500, .hit_ratio = 0.85, .seed = 13});
  for (const auto& header : trace) {
    const auto expected = spec.reference.execute(header);
    const auto actual = accelerated.execute(header);
    // Full trace equality: same tables visited, same entries matched, same
    // metadata, same verdict and ports.
    EXPECT_EQ(expected, actual) << header.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Apps, AcceleratedEquivalence,
    ::testing::Values(std::make_pair(FilterApp::kMacLearning, "bbra"),
                      std::make_pair(FilterApp::kMacLearning, "cozb"),
                      std::make_pair(FilterApp::kRouting, "boza"),
                      std::make_pair(FilterApp::kRouting, "yoza")));

TEST(SwitchPrototype, BuildsFourTablesTwoMbtsTwoLuts) {
  // Section V.A: "4 OpenFlow Lookup Tables are implemented along with two
  // independent multibit trie structures and two exact matching LUTs".
  const auto mac_set = generate_filterset(FilterApp::kMacLearning, "bbrb");
  const auto routing_set = generate_filterset(FilterApp::kRouting, "bbrb");
  const auto prototype = build_prototype(mac_set, routing_set);

  EXPECT_EQ(prototype.mac_lookup.table_count() +
                prototype.routing_lookup.table_count(),
            4U);
  // MAC chain: table 0 = VLAN LUT, table 1 = metadata LUT + Ethernet MBT set.
  EXPECT_EQ(prototype.mac_lookup.table(0).field_searches().size(), 1U);
  const auto trie_count = [](const LookupTable& table) -> std::size_t {
    for (const auto& search : table.field_searches()) {
      if (!search.tries().empty()) return search.tries().size();
    }
    return 0;
  };
  EXPECT_EQ(trie_count(prototype.mac_lookup.table(1)), 3U);      // 48-bit Ethernet
  EXPECT_EQ(trie_count(prototype.routing_lookup.table(1)), 2U);  // 32-bit IPv4
  EXPECT_GT(prototype.memory_report().total_bits(), 0U);
}

}  // namespace
}  // namespace ofmtl
