// Flight-recorder tests. Breach detection runs entirely on the injected
// test seams (a scripted collect() source and a virtual clock), so the SLO
// window math is deterministic — no sleeps, no real rings. The crash path
// is a real death test: the child process arms the recorder, emits traced
// events, and dies by signal; the parent then reloads the post-mortem
// OFTRACE1 the async-signal-safe handler wrote and checks the records
// survived. Both suites run under TSan in CI (ci.yml tsan job).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace {

using namespace ofmtl::obs;

/// One synthetic producer thread: an anchor pair at `start_ns`, then one
/// batch slice per entry of `durations` (1 us apart, `d` ns long).
TraceDump make_dump(std::uint64_t start_ns,
                    const std::vector<std::uint32_t>& durations,
                    std::uint64_t tid = 1) {
  TraceDump dump;
  dump.pid = 1;
  dump.process_name = "synthetic";
  ThreadTrace thread;
  thread.name = "worker";
  thread.tid = tid;
  thread.records.push_back(TraceRecord{
      static_cast<std::uint16_t>(TraceEvent::kTimeSync), 0, 0, start_ns});
  thread.records.push_back(
      TraceRecord{static_cast<std::uint16_t>(TraceEvent::kWallClockSync), 0,
                  0, start_ns + 1'000'000'000ull});
  for (const std::uint32_t d : durations) {
    thread.records.push_back(TraceRecord{
        static_cast<std::uint16_t>(TraceEvent::kBatchBegin), 0, 1000, 1});
    thread.records.push_back(TraceRecord{
        static_cast<std::uint16_t>(TraceEvent::kBatchEnd), 0, d, 1});
  }
  dump.threads.push_back(std::move(thread));
  return dump;
}

/// Config with scripted seams: collect() hands out the queued dumps one
/// poll at a time (then empties), now_ns() reads the shared virtual clock.
FlightRecorderConfig make_config(const std::string& prefix,
                                 std::shared_ptr<std::vector<TraceDump>> dumps,
                                 std::shared_ptr<std::uint64_t> now) {
  FlightRecorderConfig config;
  config.dump_dir = ".";
  config.dump_prefix = prefix;
  config.install_crash_handler = false;
  config.retain_ms = 10'000;
  auto next = std::make_shared<std::size_t>(0);
  config.collect = [dumps, next]() -> TraceDump {
    if (*next >= dumps->size()) return TraceDump{};
    return (*dumps)[(*next)++];
  };
  config.now_ns = [now] { return *now; };
  return config;
}

void remove_artifacts(const BreachInfo& breach) {
  std::remove(breach.dump_path.c_str());
  std::remove(breach.report_path.c_str());
}

TEST(FlightRecorderTest, RatioBreachDumpsLoadableTraceAndReport) {
  auto dumps = std::make_shared<std::vector<TraceDump>>();
  auto now = std::make_shared<std::uint64_t>(5'000'000);
  // 20 well-behaved 100 ns batches and one 100 us straggler: p99 lands on
  // the straggler, p50 on the pack — far beyond the 2× ratio bound.
  std::vector<std::uint32_t> durations(20, 100);
  durations.push_back(100'000);
  dumps->push_back(make_dump(1'000'000, durations));

  auto config = make_config("test_flight_ratio", dumps, now);
  config.slos.push_back({.name = "batch",
                         .begin = TraceEvent::kBatchBegin,
                         .end = TraceEvent::kBatchEnd,
                         .per_payload_unit = false,
                         .max_p99_over_p50 = 2.0,
                         .max_p99_ns = 0,
                         .min_samples = 16});
  FlightRecorder recorder(std::move(config));

  const auto breaches = recorder.poll();
  ASSERT_EQ(breaches.size(), 1u);
  const BreachInfo& breach = breaches.front();
  EXPECT_EQ(breach.slo, "batch");
  EXPECT_EQ(breach.reason, "p99_over_p50");
  EXPECT_EQ(breach.samples, 21u);
  EXPECT_GT(breach.p99_ns, 2 * breach.p50_ns);
  EXPECT_EQ(recorder.breaches(), 1u);
  EXPECT_EQ(recorder.dumps_written(), 1u);

  // The dump must reload through the hardened loader with the retained
  // slices intact and decodable (synthetic anchor at the front).
  TraceDump reloaded;
  ASSERT_EQ(load_trace_dump(breach.dump_path, reloaded), TraceLoadStatus::kOk);
  ASSERT_EQ(reloaded.threads.size(), 1u);
  DecodeStats stats;
  const auto events = decode_thread(reloaded.threads[0], &stats);
  EXPECT_EQ(stats.skipped_prefix, 0u);
  EXPECT_TRUE(stats.has_wall_offset);
  std::size_t begins = 0;
  for (const auto& event : events) {
    if (event.event == TraceEvent::kBatchBegin) ++begins;
  }
  EXPECT_EQ(begins, durations.size());
  const auto histogram = slice_latency_histogram(
      reloaded, TraceEvent::kBatchBegin, TraceEvent::kBatchEnd, false);
  EXPECT_EQ(histogram.total(), durations.size());

  // The JSON report names the SLO, the reason, and the dump path.
  std::ifstream report(breach.report_path);
  ASSERT_TRUE(report.good());
  const std::string text((std::istreambuf_iterator<char>(report)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"slo\": \"batch\""), std::string::npos);
  EXPECT_NE(text.find("\"reason\": \"p99_over_p50\""), std::string::npos);
  EXPECT_NE(text.find(breach.dump_path), std::string::npos);
  remove_artifacts(breach);
}

TEST(FlightRecorderTest, CeilingBreachAndWindowRestart) {
  auto dumps = std::make_shared<std::vector<TraceDump>>();
  auto now = std::make_shared<std::uint64_t>(5'000'000);
  dumps->push_back(make_dump(1'000'000, std::vector<std::uint32_t>(16, 5000)));
  dumps->push_back(make_dump(2'000'000, std::vector<std::uint32_t>(4, 5000)));

  auto config = make_config("test_flight_ceiling", dumps, now);
  config.slos.push_back({.name = "batch",
                         .begin = TraceEvent::kBatchBegin,
                         .end = TraceEvent::kBatchEnd,
                         .per_payload_unit = false,
                         .max_p99_over_p50 = 0,
                         .max_p99_ns = 1000,
                         .min_samples = 16});
  FlightRecorder recorder(std::move(config));

  auto breaches = recorder.poll();
  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_EQ(breaches.front().reason, "p99_ceiling");
  remove_artifacts(breaches.front());

  // The evaluated window was reset: the second poll's 4 samples are below
  // min_samples, so no re-breach fires on stale data.
  breaches = recorder.poll();
  EXPECT_TRUE(breaches.empty());
  EXPECT_EQ(recorder.breaches(), 1u);
}

TEST(FlightRecorderTest, NoBreachWithinSlo) {
  auto dumps = std::make_shared<std::vector<TraceDump>>();
  auto now = std::make_shared<std::uint64_t>(5'000'000);
  dumps->push_back(make_dump(1'000'000, std::vector<std::uint32_t>(32, 100)));
  auto config = make_config("test_flight_quiet", dumps, now);
  config.slos.push_back({.name = "batch",
                         .begin = TraceEvent::kBatchBegin,
                         .end = TraceEvent::kBatchEnd,
                         .per_payload_unit = false,
                         .max_p99_over_p50 = 100.0,
                         .max_p99_ns = 1'000'000,
                         .min_samples = 16});
  FlightRecorder recorder(std::move(config));
  EXPECT_TRUE(recorder.poll().empty());
  EXPECT_EQ(recorder.breaches(), 0u);
  EXPECT_EQ(recorder.dumps_written(), 0u);
}

TEST(FlightRecorderTest, RetainWindowTrimsOldHistory) {
  auto dumps = std::make_shared<std::vector<TraceDump>>();
  auto now = std::make_shared<std::uint64_t>(100'000'000);  // 100 ms
  dumps->push_back(make_dump(1'000'000, {100, 100}));             // at ~1 ms
  dumps->push_back(make_dump(590'000'000, {100, 100}));           // at ~590 ms
  auto config = make_config("test_flight_trim", dumps, now);
  config.retain_ms = 250;
  FlightRecorder recorder(std::move(config));

  (void)recorder.poll();  // ingest the 1 ms dump; now=100ms → nothing trimmed
  TraceDump retained = recorder.dump_retained();
  ASSERT_EQ(retained.threads.size(), 1u);
  EXPECT_GT(retained.threads[0].records.size(), 0u);

  *now = 600'000'000;  // 600 ms: cutoff 350 ms — the 1 ms history must go
  (void)recorder.poll();
  retained = recorder.dump_retained();
  ASSERT_EQ(retained.threads.size(), 1u);
  const auto events = decode_thread(retained.threads[0]);
  ASSERT_GT(events.size(), 0u);
  for (const auto& event : events) {
    EXPECT_GE(event.ts_ns, 350'000'000u);
  }
}

TEST(FlightRecorderTest, ForceDumpAndMetricsProvider) {
  auto dumps = std::make_shared<std::vector<TraceDump>>();
  auto now = std::make_shared<std::uint64_t>(5'000'000);
  dumps->push_back(make_dump(1'000'000, {100}));
  FlightRecorder recorder(make_config("test_flight_force", dumps, now));
  (void)recorder.poll();

  MetricsRegistry registry;
  auto handle = recorder.register_metrics(registry);
  std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("ofmtl_recorder_breaches_total 0"), std::string::npos);
  EXPECT_NE(text.find("ofmtl_recorder_retained_records"), std::string::npos);

  const BreachInfo forced = recorder.force_dump("operator_snapshot");
  TraceDump reloaded;
  EXPECT_EQ(load_trace_dump(forced.dump_path, reloaded), TraceLoadStatus::kOk);
  text = registry.render_prometheus();
  EXPECT_NE(text.find("ofmtl_recorder_breaches_total 1"), std::string::npos);
  EXPECT_NE(text.find("ofmtl_recorder_dumps_total 1"), std::string::npos);
  remove_artifacts(forced);
}

TEST(FlightRecorderDeathTest, CrashHandlerWritesLoadableDump) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* crash_path = "./test_flight_crash_crash.oftrace";
  std::remove(crash_path);

  // Child: trace some events, arm (installing the SIGABRT/SIGSEGV/SIGBUS
  // handlers and pre-registering this thread's ring), then die by signal.
  // The async-signal-safe handler must persist the rings before the default
  // disposition kills the process.
  EXPECT_EXIT(
      {
        start_tracing(TraceOptions{.ring_capacity = 1024});
        set_thread_name("doomed");
        for (std::uint64_t i = 0; i < 64; ++i) {
          emit(TraceEvent::kBatchBegin, 0, 1000 + i);
          emit(TraceEvent::kBatchEnd, 0, 1000 + i);
        }
        FlightRecorderConfig config;
        config.dump_dir = ".";
        config.dump_prefix = "test_flight_crash";
        FlightRecorder recorder(std::move(config));
        recorder.arm();
        std::abort();
      },
      ::testing::KilledBySignal(SIGABRT), "");

  // Parent: the post-mortem dump is a normal OFTRACE1 — hardened loader,
  // extended header, decodable records including our payload markers.
  TraceDump dump;
  ASSERT_EQ(load_trace_dump(crash_path, dump), TraceLoadStatus::kOk);
  EXPECT_GT(dump.pid, 0u);
  EXPECT_EQ(dump.process_name, "test_flight_crash");
  ASSERT_GE(dump.threads.size(), 1u);
  const ThreadTrace* doomed = nullptr;
  for (const auto& thread : dump.threads) {
    if (thread.name == "doomed") doomed = &thread;
  }
  ASSERT_NE(doomed, nullptr);
  const auto events = decode_thread(*doomed);
  std::size_t marked = 0;
  for (const auto& event : events) {
    if (event.event == TraceEvent::kBatchBegin && event.payload >= 1000 &&
        event.payload < 1064) {
      ++marked;
    }
  }
  EXPECT_EQ(marked, 64u);
  std::remove(crash_path);
}

TEST(FlightRecorderTest, OnlyOneRecorderMayArm) {
  FlightRecorderConfig config;
  config.dump_prefix = "test_flight_solo";
  config.install_crash_handler = false;
  FlightRecorder first(std::move(config));
  first.arm();
  FlightRecorderConfig other;
  other.dump_prefix = "test_flight_second";
  other.install_crash_handler = false;
  FlightRecorder second(std::move(other));
  EXPECT_THROW(second.arm(), std::runtime_error);
  first.disarm();
  second.arm();  // released: arming now succeeds
  second.disarm();
}

}  // namespace
