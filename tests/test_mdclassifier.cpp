// The four Table I baseline categories must classify identically to linear
// search on randomized ACL, MAC and routing rule sets; category-specific
// structural properties (TSS tuples, HiCuts replication, RFC table shape)
// are checked alongside.
#include <gtest/gtest.h>

#include <memory>

#include "mdclassifier/hicuts.hpp"
#include "mdclassifier/hypersplit.hpp"
#include "mdclassifier/linear.hpp"
#include "mdclassifier/rfc.hpp"
#include "mdclassifier/tuple_space.hpp"
#include "workload/acl_synth.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace ofmtl::md {
namespace {

enum class Algo { kTss, kHyperSplit, kHiCuts, kRfc };

std::unique_ptr<Classifier> make(Algo algo, RuleSet rules) {
  switch (algo) {
    case Algo::kTss: return std::make_unique<TupleSpaceClassifier>(std::move(rules));
    case Algo::kHyperSplit:
      return std::make_unique<HyperSplitClassifier>(std::move(rules));
    case Algo::kHiCuts: return std::make_unique<HiCutsClassifier>(std::move(rules));
    case Algo::kRfc: return std::make_unique<RfcClassifier>(std::move(rules));
  }
  throw std::logic_error("unknown algo");
}

struct Case {
  const char* name;
  Algo algo;
  std::size_t rules;
};

class AlgoEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(AlgoEquivalence, MatchesLinearOnAcl) {
  workload::AclConfig config;
  config.rules = GetParam().rules;
  config.seed = 17 + GetParam().rules;
  const auto set = workload::generate_acl(config);
  const auto rules = RuleSet::from(set);

  LinearClassifier oracle{rules};
  const auto classifier = make(GetParam().algo, rules);

  const auto trace =
      workload::generate_trace(set, {.packets = 1500, .hit_ratio = 0.8, .seed = 5});
  for (const auto& header : trace) {
    const auto expected = oracle.classify(header);
    const auto actual = classifier->classify(header);
    ASSERT_EQ(actual.has_value(), expected.has_value()) << header.to_string();
    if (expected) {
      // Same winning rule id (priority ties broken identically).
      EXPECT_EQ(set.entries[*actual].id, set.entries[*expected].id)
          << header.to_string();
    }
  }
  EXPECT_GT(classifier->memory_report().total_bits(), 0U);
}

INSTANTIATE_TEST_SUITE_P(
    Algos, AlgoEquivalence,
    ::testing::Values(Case{"tss_small", Algo::kTss, 64},
                      Case{"tss_large", Algo::kTss, 512},
                      Case{"hypersplit_small", Algo::kHyperSplit, 64},
                      Case{"hypersplit_large", Algo::kHyperSplit, 512},
                      Case{"hicuts_small", Algo::kHiCuts, 64},
                      Case{"hicuts_large", Algo::kHiCuts, 512},
                      Case{"rfc_small", Algo::kRfc, 64},
                      Case{"rfc_large", Algo::kRfc, 256}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(AlgoEquivalence, MacFilterAllAlgorithms) {
  const auto set = workload::generate_mac_filterset(workload::mac_target("bbrb"));
  const auto rules = RuleSet::from(set);
  LinearClassifier oracle{rules};
  const auto trace =
      workload::generate_trace(set, {.packets = 600, .hit_ratio = 0.7, .seed = 2});
  for (const auto algo : {Algo::kTss, Algo::kHyperSplit, Algo::kHiCuts, Algo::kRfc}) {
    const auto classifier = make(algo, rules);
    for (const auto& header : trace) {
      EXPECT_EQ(classifier->classify(header), oracle.classify(header))
          << classifier->name();
    }
  }
}

TEST(AlgoEquivalence, RoutingFilterAllAlgorithms) {
  const auto set =
      workload::generate_routing_filterset(workload::routing_target("rozb"));
  const auto rules = RuleSet::from(set);
  LinearClassifier oracle{rules};
  const auto trace =
      workload::generate_trace(set, {.packets = 600, .hit_ratio = 0.7, .seed = 8});
  for (const auto algo : {Algo::kTss, Algo::kHyperSplit, Algo::kHiCuts, Algo::kRfc}) {
    const auto classifier = make(algo, rules);
    for (const auto& header : trace) {
      const auto expected = oracle.classify(header);
      const auto actual = classifier->classify(header);
      ASSERT_EQ(actual.has_value(), expected.has_value()) << classifier->name();
      if (expected) {
        EXPECT_EQ(set.entries[*actual].priority, set.entries[*expected].priority)
            << classifier->name();
      }
    }
  }
}

TEST(TupleSpace, TupleCountBoundedByDistinctLengthCombos) {
  workload::AclConfig config;
  config.rules = 300;
  const auto set = workload::generate_acl(config);
  TupleSpaceClassifier tss{RuleSet::from(set)};
  EXPECT_GT(tss.tuple_count(), 1U);
  // Range expansion inflates both tuples and entries beyond the rule count —
  // the hashing category's memory-explosion trait from Table I.
  EXPECT_GE(tss.entry_count(), set.entries.size());
  EXPECT_LE(tss.tuple_count(), tss.entry_count());
}

TEST(HiCuts, ReplicationObserved) {
  // Wide overlapping ranges force rule replication across cuts — the
  // Section III.B motivation for the label method.
  workload::AclConfig config;
  config.rules = 400;
  config.exact_port_share = 0.1;  // more ranges -> more overlap
  const auto set = workload::generate_acl(config);
  HiCutsClassifier hicuts{RuleSet::from(set)};
  EXPECT_GT(hicuts.node_count(), 1U);
  EXPECT_GT(hicuts.replicated_rule_refs(), set.entries.size());
}

TEST(HyperSplit, RespectsBinth) {
  workload::AclConfig config;
  config.rules = 300;
  const auto set = workload::generate_acl(config);
  HyperSplitConfig hs_config;
  hs_config.binth = 4;
  HyperSplitClassifier hypersplit{RuleSet::from(set), hs_config};
  EXPECT_GT(hypersplit.node_count(), 1U);
  EXPECT_LE(hypersplit.max_leaf_depth(), hs_config.max_depth);
}

TEST(Rfc, ConstantAccessCount) {
  workload::AclConfig config;
  config.rules = 128;
  const auto set = workload::generate_acl(config);
  RfcClassifier rfc{RuleSet::from(set)};
  // 5-tuple -> 7 chunks -> 7 phase-0 + 6 crossproduct accesses, regardless
  // of the packet.
  const auto trace =
      workload::generate_trace(set, {.packets = 50, .hit_ratio = 0.5, .seed = 6});
  std::size_t first = 0;
  for (const auto& header : trace) {
    (void)rfc.classify(header);
    if (first == 0) {
      first = rfc.last_access_count();
    } else {
      EXPECT_EQ(rfc.last_access_count(), first);
    }
  }
  EXPECT_EQ(first, 13U);
  EXPECT_EQ(rfc.phase0_tables(), 7U);
  EXPECT_GT(rfc.crossproduct_entries(), 0U);
}

TEST(Linear, AccessCountIsRulesOnMiss) {
  workload::AclConfig config;
  config.rules = 77;
  const auto set = workload::generate_acl(config);
  LinearClassifier linear{RuleSet::from(set)};
  PacketHeader h;  // all-zero header: protocol 0 matches nothing generated
  h.set_ipv4_src(Ipv4Address{0});
  h.set_ipv4_dst(Ipv4Address{0});
  h.set_src_port(0);
  h.set_dst_port(0);
  h.set_ip_proto(0);
  if (!linear.classify(h).has_value()) {
    EXPECT_EQ(linear.last_access_count(), 77U);
  }
}

}  // namespace
}  // namespace ofmtl::md
