// Unit tests for bit utilities, U128 and Prefix — the foundations every
// lookup structure builds on.
#include <gtest/gtest.h>

#include "net/prefix.hpp"
#include "net/types.hpp"
#include "workload/rng.hpp"

namespace ofmtl {
namespace {

TEST(BitUtils, CeilLog2) {
  EXPECT_EQ(ceil_log2(0), 0U);
  EXPECT_EQ(ceil_log2(1), 0U);
  EXPECT_EQ(ceil_log2(2), 1U);
  EXPECT_EQ(ceil_log2(3), 2U);
  EXPECT_EQ(ceil_log2(4), 2U);
  EXPECT_EQ(ceil_log2(5), 3U);
  EXPECT_EQ(ceil_log2(1024), 10U);
  EXPECT_EQ(ceil_log2(1025), 11U);
}

TEST(BitUtils, BitsForMaxValue) {
  EXPECT_EQ(bits_for_max_value(0), 1U);
  EXPECT_EQ(bits_for_max_value(1), 1U);
  EXPECT_EQ(bits_for_max_value(2), 2U);
  EXPECT_EQ(bits_for_max_value(255), 8U);
  EXPECT_EQ(bits_for_max_value(256), 9U);
}

TEST(BitUtils, LowMask) {
  EXPECT_EQ(low_mask(0), 0U);
  EXPECT_EQ(low_mask(1), 1U);
  EXPECT_EQ(low_mask(16), 0xFFFFU);
  EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
}

TEST(BitUtils, HighMask) {
  EXPECT_EQ(high_mask(16, 0), 0U);
  EXPECT_EQ(high_mask(16, 8), 0xFF00U);
  EXPECT_EQ(high_mask(16, 16), 0xFFFFU);
  EXPECT_THROW(high_mask(16, 17), std::invalid_argument);
}

TEST(U128, ShiftsAndMasks) {
  const U128 one{1};
  EXPECT_TRUE((one << 64) == (U128{1, 0}));
  EXPECT_TRUE((one << 127) == (U128{0x8000000000000000ULL, 0}));
  EXPECT_TRUE((U128{1, 0} >> 64) == one);
  EXPECT_TRUE((one << 128) == U128{});
  EXPECT_TRUE((one >> 1) == U128{});
  const U128 x{0x1234, 0x5678};
  EXPECT_TRUE(((x << 4) >> 4) == x);
}

TEST(U128, Comparison) {
  EXPECT_LT(U128(0, 5), U128(1, 0));
  EXPECT_LT(U128(1, 1), U128(1, 2));
  EXPECT_EQ(U128(3, 4), U128(3, 4));
}

TEST(U128, BitsFromTop) {
  const U128 v{0xAABBCCDDEEFF0011ULL, 0x2233445566778899ULL};
  EXPECT_EQ(v.bits_from_top(0, 8), 0xAAU);
  EXPECT_EQ(v.bits_from_top(8, 8), 0xBBU);
  EXPECT_EQ(v.bits_from_top(64, 16), 0x2233U);
  EXPECT_EQ(v.bits_from_top(112, 16), 0x8899U);
}

TEST(U128, HighMask128) {
  EXPECT_TRUE(high_mask128(0) == U128{});
  EXPECT_TRUE(high_mask128(64) == (U128{~std::uint64_t{0}, 0}));
  EXPECT_TRUE(high_mask128(128) ==
              (U128{~std::uint64_t{0}, ~std::uint64_t{0}}));
  EXPECT_TRUE(high_mask128(1) == (U128{0x8000000000000000ULL, 0}));
}

TEST(Prefix, NormalizesLowBits) {
  // Bits below the prefix length must be cleared so equal prefixes compare ==.
  const auto a = Prefix::from_value(0b10110111, 4, 8);
  const auto b = Prefix::from_value(0b10110000, 4, 8);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.value64(), 0b10110000U);
}

TEST(Prefix, Matches) {
  const auto p = Prefix::from_value(0xC0A80000, 16, 32);  // 192.168/16
  EXPECT_TRUE(p.matches(std::uint64_t{0xC0A80101}));
  EXPECT_TRUE(p.matches(std::uint64_t{0xC0A8FFFF}));
  EXPECT_FALSE(p.matches(std::uint64_t{0xC0A70101}));
  const auto all = Prefix::from_value(0, 0, 32);
  EXPECT_TRUE(all.matches(std::uint64_t{0xDEADBEEF}));
}

TEST(Prefix, ExactAndWildcardPredicates) {
  EXPECT_TRUE(Prefix::exact(0x1234, 16).is_exact());
  EXPECT_TRUE(Prefix::from_value(0, 0, 16).is_wildcard_all());
  EXPECT_FALSE(Prefix::from_value(1, 8, 16).is_exact());
}

TEST(Prefix, Covers) {
  const auto wide = Prefix::from_value(0xC0000000, 8, 32);
  const auto narrow = Prefix::from_value(0xC0A80000, 16, 32);
  EXPECT_TRUE(wide.covers(narrow));
  EXPECT_FALSE(narrow.covers(wide));
  EXPECT_TRUE(wide.covers(wide));
  EXPECT_FALSE(wide.covers(Prefix::from_value(0xC0A80000, 16, 16)));  // width
}

TEST(Prefix, Partition16) {
  const auto p = Prefix::from_value(0xAABBCCDDEE55ULL, 40, 48);
  EXPECT_EQ(p.partition16(0), 0xAABBU);
  EXPECT_EQ(p.partition16(1), 0xCCDDU);
  EXPECT_EQ(p.partition16(2), 0xEE00U);  // only 8 bits significant
  EXPECT_EQ(p.partition16_length(0), 16U);
  EXPECT_EQ(p.partition16_length(1), 16U);
  EXPECT_EQ(p.partition16_length(2), 8U);
}

TEST(Prefix, PartitionLengthOfShortPrefix) {
  const auto p = Prefix::from_value(0xAB00, 8, 32);
  EXPECT_EQ(p.partition16_length(0), 8U);
  EXPECT_EQ(p.partition16_length(1), 0U);
}

TEST(Prefix, InvalidArguments) {
  EXPECT_THROW(Prefix::from_value(0, 33, 32), std::invalid_argument);
  EXPECT_THROW((Prefix{U128{}, 1, 129}), std::invalid_argument);
}

TEST(RangeToPrefixes, ExactValue) {
  const auto prefixes = range_to_prefixes({80, 80}, 16);
  ASSERT_EQ(prefixes.size(), 1U);
  EXPECT_EQ(prefixes[0].length(), 16U);
  EXPECT_EQ(prefixes[0].value64(), 80U);
}

TEST(RangeToPrefixes, FullRange) {
  const auto prefixes = range_to_prefixes({0, 0xFFFF}, 16);
  ASSERT_EQ(prefixes.size(), 1U);
  EXPECT_TRUE(prefixes[0].is_wildcard_all());
}

TEST(RangeToPrefixes, ClassicWorstCase) {
  // [1, 2^16-2] needs 2*(16-1) = 30 prefixes.
  const auto prefixes = range_to_prefixes({1, 0xFFFE}, 16);
  EXPECT_EQ(prefixes.size(), 30U);
}

// Property: the union of produced prefixes covers exactly the range.
class RangeToPrefixProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RangeToPrefixProperty, ExactCover) {
  workload::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const unsigned width = 10;
    std::uint64_t a = rng.below(1 << width);
    std::uint64_t b = rng.below(1 << width);
    if (a > b) std::swap(a, b);
    const ValueRange range{a, b};
    const auto prefixes = range_to_prefixes(range, width);
    for (std::uint64_t key = 0; key < (1U << width); ++key) {
      int matches = 0;
      for (const auto& prefix : prefixes) {
        if (prefix.matches(key)) ++matches;
      }
      // Disjoint exact cover: inside exactly once, outside never.
      EXPECT_EQ(matches, range.contains(key) ? 1 : 0) << "key " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeToPrefixProperty,
                         ::testing::Values(11, 23, 37, 53));

}  // namespace
}  // namespace ofmtl
