// Update-engine tests (Section V.B model): 2 cycles per word, optimized
// (label-method) scripts never exceed the original per-rule scripts, and the
// reduction grows with value repetition.
#include <gtest/gtest.h>

#include <sstream>

#include "core/builder.hpp"
#include "core/update_engine.hpp"
#include "workload/stanford_synth.hpp"

namespace ofmtl {
namespace {

using workload::FilterApp;

TEST(FreshInsertWords, MatchesHandComputedCases) {
  const auto strides = default_strides16();  // 5/5/6
  // /0: expands over the whole 2^5 root block.
  EXPECT_EQ(fresh_insert_words(Prefix::from_value(0, 0, 16), strides), 32U);
  // /5: exactly one root entry.
  EXPECT_EQ(fresh_insert_words(Prefix::from_value(0xF800, 5, 16), strides), 1U);
  // /3: 2^(5-3) = 4 root entries.
  EXPECT_EQ(fresh_insert_words(Prefix::from_value(0xE000, 3, 16), strides), 4U);
  // /8: pointer at L1 + 2^(5-3)=4 entries at L2.
  EXPECT_EQ(fresh_insert_words(Prefix::from_value(0xAB00, 8, 16), strides),
            1U + 4U);
  // /16: pointer + pointer + 1 leaf entry.
  EXPECT_EQ(fresh_insert_words(Prefix::exact(0xABCD, 16), strides), 3U);
  // /11: pointer + 2^(5-(11-5))... 11-5=6 -> ends at L2 with fan 2^(5-6)?
  // No: bits_here = 6 > stride 5 means it descends; ends at L3.
  EXPECT_EQ(fresh_insert_words(Prefix::from_value(0xFFE0, 11, 16), strides),
            1U + 1U + (1U << (6 - 1)));
}

TEST(UpdateScript, CyclesAreTwoPerWord) {
  const auto set = workload::generate_mac_filterset(workload::mac_target("bbrb"));
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  const auto pipeline = compile_app(spec);
  const auto script = optimized_script(pipeline.table(1), UpdateScope::kAll);
  EXPECT_EQ(script.cycles(), 2 * script.word_count());
  EXPECT_GT(script.word_count(), 0U);

  std::ostringstream out;
  script.write(out);
  EXPECT_FALSE(out.str().empty());
}

class UpdateCostInvariants
    : public ::testing::TestWithParam<std::pair<FilterApp, const char*>> {};

TEST_P(UpdateCostInvariants, LabelMethodNeverCostsMore) {
  const auto [app, name] = GetParam();
  const auto set = workload::generate_filterset(app, name);
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  const auto pipeline = compile_app(spec);

  for (const auto scope : {UpdateScope::kAlgorithms, UpdateScope::kAll}) {
    const auto cost = update_cost(pipeline, scope);
    EXPECT_LE(cost.optimized_words, cost.original_words);
    EXPECT_GE(cost.reduction_percent(), 0.0);
    EXPECT_LE(cost.reduction_percent(), 100.0);
    EXPECT_EQ(cost.optimized_cycles(), 2 * cost.optimized_words);
    EXPECT_EQ(cost.original_cycles(), 2 * cost.original_words);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Apps, UpdateCostInvariants,
    ::testing::Values(std::make_pair(FilterApp::kMacLearning, "bbra"),
                      std::make_pair(FilterApp::kMacLearning, "gozb"),
                      std::make_pair(FilterApp::kRouting, "bbra"),
                      std::make_pair(FilterApp::kRouting, "yoza")));

TEST(UpdateCost, RepetitionDrivesTheReduction) {
  // gozb has 7370 rules over only 159/1946/6177 unique partition values:
  // heavy repetition, so the label method should save a lot. A filter with
  // all-unique values would save much less.
  const auto set = workload::generate_mac_filterset(workload::mac_target("gozb"));
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  const auto pipeline = compile_app(spec);
  const auto cost = update_cost(pipeline, UpdateScope::kAlgorithms);
  EXPECT_GT(cost.reduction_percent(), 30.0);
}

TEST(UpdateCost, AccumulatesAcrossTables) {
  const auto set = workload::generate_routing_filterset(
      workload::routing_target("bbrb"));
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  const auto pipeline = compile_app(spec);
  UpdateCost sum;
  for (std::size_t t = 0; t < pipeline.table_count(); ++t) {
    sum += update_cost(pipeline.table(t), UpdateScope::kAll);
  }
  const auto total = update_cost(pipeline, UpdateScope::kAll);
  EXPECT_EQ(sum.optimized_words, total.optimized_words);
  EXPECT_EQ(sum.original_words, total.original_words);
}

}  // namespace
}  // namespace ofmtl
