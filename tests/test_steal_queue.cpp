// The steal-able batch queue and the runtime's work stealing: the queue must
// stay FIFO/bounded single-threaded, deliver each item to exactly one of
// several concurrent consumers, and the runtime must let idle workers drain
// a skewed submitter's queue (and must NOT when stealing is disabled). Run
// under -fsanitize=thread as well (no test changes needed).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/builder.hpp"
#include "runtime/runtime.hpp"
#include "runtime/steal_queue.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace ofmtl {
namespace {

using runtime::BatchTicket;
using runtime::ParallelRuntime;
using runtime::StealQueue;
using workload::FilterApp;

TEST(StealQueue, PushPopOrderAndBackpressure) {
  StealQueue<int> queue(4);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(99));  // full
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_TRUE(queue.empty());
  // Wrap-around after a full lap.
  for (int lap = 0; lap < 3; ++lap) {
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(queue.try_push(lap * 10 + i));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(queue.try_pop(out));
      EXPECT_EQ(out, lap * 10 + i);
    }
  }
}

TEST(StealQueue, ConcurrentConsumersReceiveEachItemExactlyOnce) {
  constexpr int kItems = 20000;
  constexpr std::size_t kConsumers = 3;
  StealQueue<int> queue(64);
  std::atomic<bool> done{false};
  std::vector<std::vector<int>> received(kConsumers);
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      int value;
      while (true) {
        if (queue.try_pop(value)) {
          received[c].push_back(value);
        } else if (done.load(std::memory_order_acquire)) {
          if (!queue.try_pop(value)) break;
          received[c].push_back(value);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int i = 0; i < kItems; ++i) {
    while (!queue.try_push(i)) std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& consumer : consumers) consumer.join();

  std::vector<int> all;
  for (const auto& r : received) all.insert(all.end(), r.begin(), r.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kItems))
      << "items lost or duplicated across consumers";
  std::sort(all.begin(), all.end());
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(all[static_cast<std::size_t>(i)], i);
  }
}

struct App {
  MultiTableLookup accelerated;
  std::vector<PacketHeader> trace;
};

App make_app(std::size_t packets = 512) {
  const auto set =
      workload::generate_filterset(FilterApp::kMacLearning, "bbra");
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  return App{compile_app(spec),
             workload::generate_trace(
                 set, {.packets = packets, .hit_ratio = 0.9, .seed = 31})};
}

TEST(WorkStealing, SkewedSubmitterKeepsResultsCorrectAndSpreadsWork) {
  // Every batch goes to queue 0; with stealing on, the idle sibling drains
  // it. Results must match single-threaded execute regardless of who ran
  // them. To observe a steal deterministically enough for CI (including
  // 1-core containers under load), each round parks one multi-millisecond
  // batch on the owner and queues many small batches behind it — the idle
  // worker needs only a single scheduling quantum during that window to
  // steal one; rounds repeat until it does.
  const auto app = make_app(4096);
  std::vector<ExecutionResult> expected;
  for (const auto& header : app.trace) {
    expected.push_back(app.accelerated.execute(header));
  }
  constexpr std::size_t kBatch = 64;
  constexpr std::size_t kSmallBatches = 4096 / kBatch;
  constexpr std::size_t kMaxRounds = 100;
  ParallelRuntime rt(app.accelerated.clone(),
                     {.workers = 2, .queue_capacity = 2 * kSmallBatches});
  std::vector<ExecutionResult> big_results(app.trace.size());
  std::vector<ExecutionResult> small_results(app.trace.size());
  std::size_t rounds = 0;
  std::uint64_t steals = 0;
  while (rounds < kMaxRounds && steals == 0) {
    BatchTicket ticket;
    // The whole trace as one batch: pins whichever worker pops it first.
    while (!rt.try_submit(0, {app.trace.data(), app.trace.size()},
                          {big_results.data(), app.trace.size()}, &ticket)) {
      std::this_thread::yield();
    }
    for (std::size_t base = 0; base < app.trace.size(); base += kBatch) {
      while (!rt.try_submit(0, {app.trace.data() + base, kBatch},
                            {small_results.data() + base, kBatch}, &ticket)) {
        std::this_thread::yield();
      }
    }
    ticket.wait();
    ASSERT_FALSE(ticket.failed());
    for (std::size_t i = 0; i < app.trace.size(); ++i) {
      ASSERT_EQ(big_results[i], expected[i]) << "big batch packet " << i;
      ASSERT_EQ(small_results[i], expected[i]) << "small batch packet " << i;
    }
    steals = rt.aggregate_stats().steals;
    ++rounds;
  }
  const auto total = rt.aggregate_stats();
  EXPECT_EQ(total.packets, rounds * 2 * app.trace.size());
  EXPECT_GT(total.steals, 0u)
      << "no worker ever stole from the hot queue in " << rounds << " rounds";
}

TEST(WorkStealing, DisabledStealingPinsBatchesToTheirQueue) {
  const auto app = make_app(256);
  ParallelRuntime rt(app.accelerated.clone(),
                     {.workers = 2, .queue_capacity = 4,
                      .work_stealing = false});
  constexpr std::size_t kBatch = 32;
  std::vector<ExecutionResult> results(app.trace.size());
  BatchTicket ticket;
  std::size_t batches = 0;
  for (std::size_t base = 0; base < app.trace.size(); base += kBatch) {
    const std::size_t n = std::min(kBatch, app.trace.size() - base);
    while (!rt.try_submit(0, {app.trace.data() + base, n},
                          {results.data() + base, n}, &ticket)) {
      std::this_thread::yield();
    }
    ++batches;
  }
  ticket.wait();
  EXPECT_EQ(rt.stats(0).batches, batches);
  EXPECT_EQ(rt.stats(1).batches, 0u)
      << "a worker drained a sibling queue with stealing disabled";
  EXPECT_EQ(rt.aggregate_stats().steals, 0u);
}

}  // namespace
}  // namespace ofmtl
