// Flow-layer unit tests: FieldMatch/FlowMatch semantics, FlowTable priority
// and stable ordering, instruction/action encoding sizes and printing, and
// the flow-stats tracker in isolation.
#include <gtest/gtest.h>

#include "flow/flow_stats.hpp"
#include "flow/flow_table.hpp"
#include "flow/instruction.hpp"

namespace ofmtl {
namespace {

TEST(FieldMatch, Semantics) {
  EXPECT_TRUE(FieldMatch::any().matches(U128{123}));
  EXPECT_TRUE(FieldMatch::exact(std::uint64_t{5}).matches(U128{5}));
  EXPECT_FALSE(FieldMatch::exact(std::uint64_t{5}).matches(U128{6}));

  const auto prefix =
      FieldMatch::of_prefix(Prefix::from_value(0xAB00, 8, 16));
  EXPECT_TRUE(prefix.matches(U128{0xABFF}));
  EXPECT_FALSE(prefix.matches(U128{0xAC00}));

  const auto range = FieldMatch::of_range(10, 20);
  EXPECT_TRUE(range.matches(U128{15}));
  EXPECT_FALSE(range.matches(U128{21}));
  EXPECT_FALSE(range.matches(U128{1, 15}));  // high bits set: out of range

  const auto masked = FieldMatch::masked(U128{0x10}, U128{0xF0});
  EXPECT_TRUE(masked.matches(U128{0x1F}));
  EXPECT_FALSE(masked.matches(U128{0x2F}));
}

TEST(FlowMatch, ConstrainedFieldsAndMatching) {
  FlowMatch match;
  EXPECT_TRUE(match.constrained_fields().empty());
  match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{7}));
  match.set(FieldId::kDstPort, FieldMatch::of_range(80, 90));
  const auto fields = match.constrained_fields();
  ASSERT_EQ(fields.size(), 2U);
  EXPECT_EQ(fields[0], FieldId::kVlanId);
  EXPECT_EQ(fields[1], FieldId::kDstPort);

  PacketHeader h;
  h.set_vlan_id(7);
  h.set_dst_port(85);
  EXPECT_TRUE(match.matches(h));
  h.set_dst_port(95);
  EXPECT_FALSE(match.matches(h));
}

TEST(FlowMatch, ToStringListsConstraints) {
  FlowMatch match;
  match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{7}));
  const auto text = match.to_string();
  EXPECT_NE(text.find("VLAN ID"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
}

FlowEntry entry_with_priority(FlowEntryId id, std::uint16_t priority) {
  FlowEntry entry;
  entry.id = id;
  entry.priority = priority;
  entry.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{1}));
  return entry;
}

TEST(FlowTableOrdering, HighestPriorityWins) {
  FlowTable table;
  table.insert(entry_with_priority(1, 5));
  table.insert(entry_with_priority(2, 50));
  table.insert(entry_with_priority(3, 10));
  PacketHeader h;
  h.set_vlan_id(1);
  ASSERT_NE(table.lookup(h), nullptr);
  EXPECT_EQ(table.lookup(h)->id, 2U);
}

TEST(FlowTableOrdering, EqualPriorityStableByInsertion) {
  FlowTable table;
  table.insert(entry_with_priority(10, 5));
  table.insert(entry_with_priority(11, 5));
  PacketHeader h;
  h.set_vlan_id(1);
  EXPECT_EQ(table.lookup(h)->id, 10U);
  EXPECT_TRUE(table.remove(10));
  EXPECT_EQ(table.lookup(h)->id, 11U);
}

TEST(FlowTableOrdering, ReplaceSortsByPriority) {
  FlowTable table;
  table.replace({entry_with_priority(1, 1), entry_with_priority(2, 9),
                 entry_with_priority(3, 5)});
  EXPECT_EQ(table.entries()[0].id, 2U);
  EXPECT_EQ(table.entries()[1].id, 3U);
  EXPECT_EQ(table.entries()[2].id, 1U);
}

TEST(Instructions, ToStringAndBits) {
  InstructionSet ins;
  EXPECT_EQ(ins.to_string(), "(empty)");
  ins = goto_and_write(2, {OutputAction{7}});
  ins.write_metadata = MetadataWrite{1, 0xFF};
  const auto text = ins.to_string();
  EXPECT_NE(text.find("goto-table:2"), std::string::npos);
  EXPECT_NE(text.find("write-metadata"), std::string::npos);
  EXPECT_NE(text.find("output:7"), std::string::npos);
  // presence flags + goto(8) + metadata(128) + output action(16+32)
  EXPECT_EQ(ins.bits(), 5U + 8U + 128U + 48U);
}

TEST(Actions, BitsAndPrinting) {
  EXPECT_EQ(action_bits(OutputAction{1}), 16U + 32U);
  EXPECT_EQ(action_bits(PopVlanAction{}), 16U);
  EXPECT_EQ(action_bits(SetFieldAction{FieldId::kEthDst, U128{1}}),
            16U + 8U + 48U);
  EXPECT_EQ(to_string(Action{DropAction{}}), "drop");
  EXPECT_EQ(to_string(Action{OutputAction{3}}), "output:3");
}

TEST(FlowStatsTracker, Lifecycle) {
  FlowStatsTracker tracker;
  tracker.install(1, {.idle_timeout = 10, .hard_timeout = 100}, 5);
  EXPECT_EQ(tracker.tracked(), 1U);

  ExecutionResult result;
  result.matched_entries = {1, 2};  // entry 2 untracked: ignored
  tracker.record(result, 64, 8);
  const FlowStats* stats = tracker.find(1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->packets, 1U);
  EXPECT_EQ(stats->bytes, 64U);
  EXPECT_EQ(stats->installed_at, 5U);
  EXPECT_EQ(stats->last_used, 8U);
  EXPECT_EQ(tracker.find(2), nullptr);

  EXPECT_TRUE(tracker.expired(17).empty());          // 8 + 10 = 18 > 17
  EXPECT_EQ(tracker.expired(18).size(), 1U);         // idle fires
  EXPECT_EQ(tracker.expired(105).size(), 1U);        // hard fires regardless
  tracker.erase(1);
  EXPECT_EQ(tracker.tracked(), 0U);
}

TEST(FlowStatsTracker, ZeroTimeoutsNeverExpire) {
  FlowStatsTracker tracker;
  tracker.install(1, {}, 0);
  EXPECT_TRUE(tracker.expired(1'000'000).empty());
}

}  // namespace
}  // namespace ofmtl
