// Concurrent flow-mods against live classification: worker threads drain
// packet batches while a writer thread toggles a top-priority takeover entry
// through the RCU snapshot handoff. Every completed batch must be wholly
// consistent with either the pre- or the post-update snapshot — identified
// by the epoch its ticket reports — and never a mix. Run locally under
// -fsanitize=thread as well (no test changes needed).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/builder.hpp"
#include "runtime/runtime.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace ofmtl {
namespace {

using runtime::BatchTicket;
using runtime::ParallelRuntime;
using workload::FilterApp;

TEST(RuntimeConcurrent, ResultsMatchPreOrPostUpdateSnapshot) {
  const auto set = workload::generate_filterset(FilterApp::kMacLearning, "bbra");
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  auto accelerated = compile_app(spec);
  const auto trace = workload::generate_trace(
      set, {.packets = 256, .hit_ratio = 0.9, .seed = 61});

  FlowEntry takeover;
  takeover.id = 424242;
  takeover.priority = 60000;
  takeover.instructions = output_instruction(42);

  // Oracles for both table states, computed single-threaded up front.
  std::vector<ExecutionResult> without;
  for (const auto& header : trace) without.push_back(accelerated.execute(header));
  accelerated.insert_entry(1, takeover);
  std::vector<ExecutionResult> with;
  for (const auto& header : trace) with.push_back(accelerated.execute(header));
  ASSERT_TRUE(accelerated.remove_entry(1, 424242));

  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kToggles = 24;
  ParallelRuntime rt(std::move(accelerated), {.workers = kWorkers});

  // Writer: toggle the takeover entry; each toggle publishes a new epoch.
  // Odd epochs have the entry installed, even epochs do not.
  std::thread writer([&rt, &takeover] {
    for (std::size_t toggle = 0; toggle < kToggles; ++toggle) {
      if (toggle % 2 == 0) {
        rt.insert_entry(1, takeover);
      } else {
        EXPECT_TRUE(rt.remove_entry(1, 424242));  // EXPECT: non-main thread
      }
      std::this_thread::yield();
    }
  });

  // Data plane: this thread is the producer for every queue (one producer
  // per queue holds — it is a single thread), keeping batches in flight on
  // all workers until the writer finishes. kBatch slices align with the
  // oracle vectors.
  constexpr std::size_t kBatch = 64;
  static_assert(256 % kBatch == 0);
  std::vector<std::vector<ExecutionResult>> results(kWorkers);
  std::vector<BatchTicket> tickets(kWorkers);
  for (auto& r : results) r.resize(kBatch);
  std::size_t mixed_batches = 0;
  std::uint64_t max_epoch_seen = 0;
  std::size_t rounds = 0;
  while (rt.epoch() < kToggles || rounds < 8) {
    const std::size_t base = (rounds % (trace.size() / kBatch)) * kBatch;
    for (std::size_t q = 0; q < kWorkers; ++q) {
      while (!rt.try_submit(q, {trace.data() + base, kBatch},
                            {results[q].data(), kBatch}, &tickets[q])) {
        std::this_thread::yield();
      }
    }
    for (std::size_t q = 0; q < kWorkers; ++q) {
      tickets[q].wait();
      const std::uint64_t epoch = tickets[q].epoch();
      max_epoch_seen = std::max(max_epoch_seen, epoch);
      const auto& oracle = epoch % 2 == 1 ? with : without;
      for (std::size_t i = 0; i < kBatch; ++i) {
        if (results[q][i] != oracle[base + i]) ++mixed_batches;
      }
    }
    ++rounds;
  }
  writer.join();
  EXPECT_EQ(mixed_batches, 0u)
      << "some batch mixed pre- and post-update snapshots";
  EXPECT_GT(max_epoch_seen, 0u) << "no batch ever saw an updated snapshot";
  EXPECT_EQ(rt.epoch(), kToggles);
}

}  // namespace
}  // namespace ofmtl
