// FieldSearch unit tests: the per-field decomposition into algorithms,
// candidate-list semantics (most specific first), wildcard labels, unique
// value counting, and the update-word accounting the Fig. 5 model uses.
#include <gtest/gtest.h>

#include "core/field_search.hpp"

namespace ofmtl {
namespace {

TEST(FieldSearch, AlgorithmCounts) {
  EXPECT_EQ(FieldSearch(FieldId::kVlanId).algorithm_count(), 1U);
  EXPECT_EQ(FieldSearch(FieldId::kSrcPort).algorithm_count(), 1U);
  EXPECT_EQ(FieldSearch(FieldId::kIpv4Dst).algorithm_count(), 2U);
  EXPECT_EQ(FieldSearch(FieldId::kEthDst).algorithm_count(), 3U);
  EXPECT_EQ(FieldSearch(FieldId::kIpv6Dst).algorithm_count(), 8U);
}

TEST(FieldSearch, EmCandidates) {
  FieldSearch search(FieldId::kVlanId);
  const auto exact = search.add_rule(FieldMatch::exact(std::uint64_t{10}));
  ASSERT_EQ(exact.size(), 1U);
  const auto any = search.add_rule(FieldMatch::any());
  ASSERT_EQ(any.size(), 1U);
  EXPECT_NE(exact[0], any[0]);
  search.seal();

  PacketHeader h;
  h.set_vlan_id(10);
  std::vector<LabelList> out;
  search.search(h, out);
  ASSERT_EQ(out.size(), 1U);
  // Exact label first (most specific), wildcard after.
  EXPECT_EQ(out[0], (LabelList{exact[0], any[0]}));

  h.set_vlan_id(99);
  out.clear();
  search.search(h, out);
  EXPECT_EQ(out[0], (LabelList{any[0]}));
}

TEST(FieldSearch, EmRejectsNonExact) {
  FieldSearch search(FieldId::kVlanId);
  EXPECT_THROW((void)search.add_rule(FieldMatch::of_range(1, 2)),
               std::invalid_argument);
}

TEST(FieldSearch, LpmPartitionLabelsAndCandidates) {
  FieldSearch search(FieldId::kIpv4Dst);
  // /8: high partition keeps 8 bits, low partition is wildcard.
  const auto labels8 = search.add_rule(
      FieldMatch::of_prefix(Prefix::from_value(0x0A000000, 8, 32)));
  ASSERT_EQ(labels8.size(), 2U);
  // /24: high exact 16 bits, low 8 bits.
  const auto labels24 = search.add_rule(
      FieldMatch::of_prefix(Prefix::from_value(0x0A010200, 24, 32)));
  EXPECT_NE(labels8[0], labels24[0]);
  search.seal();

  PacketHeader h;
  h.set_ipv4_dst(Ipv4Address{0x0A010203});
  std::vector<LabelList> out;
  search.search(h, out);
  ASSERT_EQ(out.size(), 2U);
  // High partition: /16 piece of the /24 rule is longer than the /8 piece.
  EXPECT_EQ(out[0], (LabelList{labels24[0], labels8[0]}));
  // Low partition: the /24's 8-bit piece, then the /8's wildcard piece.
  EXPECT_EQ(out[1], (LabelList{labels24[1], labels8[1]}));

  // An address only the /8 covers.
  h.set_ipv4_dst(Ipv4Address{0x0AFF0000});
  out.clear();
  search.search(h, out);
  EXPECT_EQ(out[0], (LabelList{labels8[0]}));
  EXPECT_EQ(out[1], (LabelList{labels8[1]}));
}

TEST(FieldSearch, SharedPartitionValuesShareLabels) {
  FieldSearch search(FieldId::kEthDst);
  // Two MACs sharing the OUI: identical hi/mid partitions -> same labels.
  const auto a = search.add_rule(FieldMatch::exact(std::uint64_t{0xAABBCC000001ULL}));
  const auto b = search.add_rule(FieldMatch::exact(std::uint64_t{0xAABBCC000002ULL}));
  ASSERT_EQ(a.size(), 3U);
  EXPECT_EQ(a[0], b[0]);  // hi 0xAABB
  EXPECT_EQ(a[1], b[1]);  // mid 0xCC00
  EXPECT_NE(a[2], b[2]);  // lo differs
  EXPECT_EQ(search.unique_values(), (std::vector<std::size_t>{1, 1, 2}));
}

TEST(FieldSearch, RangeCandidatesNarrowestFirst) {
  FieldSearch search(FieldId::kDstPort);
  const auto wide = search.add_rule(FieldMatch::of_range(0, 65535));
  const auto tight = search.add_rule(FieldMatch::of_range(80, 80));
  search.seal();

  PacketHeader h;
  h.set_dst_port(80);
  std::vector<LabelList> out;
  search.search(h, out);
  EXPECT_EQ(out[0], (LabelList{tight[0], wide[0]}));
}

TEST(FieldSearch, UpdateWordsReflectLabelMethod) {
  FieldSearch search(FieldId::kEthDst);
  (void)search.add_rule(FieldMatch::exact(std::uint64_t{0xAABBCC000001ULL}));
  const auto words_first = search.update_words();
  // Re-adding a rule with shared hi/mid partitions only writes the new lo.
  (void)search.add_rule(FieldMatch::exact(std::uint64_t{0xAABBCC000002ULL}));
  const auto words_second = search.update_words();
  EXPECT_GT(words_second, words_first);
  EXPECT_LT(words_second - words_first, words_first);
}

TEST(FieldSearch, RemoveUnknownThrows) {
  FieldSearch search(FieldId::kVlanId);
  EXPECT_THROW((void)search.remove_rule(FieldMatch::exact(std::uint64_t{1})),
               std::invalid_argument);
  FieldSearch lpm(FieldId::kIpv4Dst);
  EXPECT_THROW((void)lpm.remove_rule(FieldMatch::of_prefix(
                   Prefix::from_value(0x0A000000, 8, 32))),
               std::invalid_argument);
  FieldSearch rm(FieldId::kDstPort);
  EXPECT_THROW((void)rm.remove_rule(FieldMatch::of_range(1, 2)),
               std::invalid_argument);
}

TEST(FieldSearch, MemoryReportNamesPartitions) {
  FieldSearch search(FieldId::kEthDst);
  (void)search.add_rule(FieldMatch::exact(std::uint64_t{0xAABBCCDDEEFFULL}));
  const auto report = search.memory_report("f");
  bool hi = false, mid = false, lo = false;
  for (const auto& component : report.components()) {
    hi |= component.name.find(".trie.hi.") != std::string::npos;
    mid |= component.name.find(".trie.mid.") != std::string::npos;
    lo |= component.name.find(".trie.lo.") != std::string::npos;
  }
  EXPECT_TRUE(hi);
  EXPECT_TRUE(mid);
  EXPECT_TRUE(lo);
}

}  // namespace
}  // namespace ofmtl
