// IPv6 LPM end-to-end: the 128-bit address field decomposes into eight
// 16-bit partition tries; the decomposed table must agree with linear
// search, and the trie set must respect the partition structure.
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/lookup_table.hpp"
#include "flow/flow_table.hpp"
#include "workload/ipv6_synth.hpp"
#include "workload/trace_gen.hpp"

namespace ofmtl {
namespace {

FlowEntry v6_entry(FlowEntryId id, const Prefix& prefix, std::uint32_t port) {
  FlowEntry entry;
  entry.id = id;
  entry.priority = static_cast<std::uint16_t>(prefix.length());
  entry.match.set(FieldId::kIpv6Dst, FieldMatch::of_prefix(prefix));
  entry.instructions = output_instruction(port);
  return entry;
}

TEST(Ipv6Lookup, EightPartitionTries) {
  LookupTable table({FieldId::kIpv6Dst}, {});
  EXPECT_EQ(table.field_searches()[0].tries().size(), 8U);
  EXPECT_EQ(table.index().algorithm_count(), 8U);
}

TEST(Ipv6Lookup, NestedPrefixesLpm) {
  const Prefix p32{U128{0x20010DB800000000ULL, 0}, 32, 128};
  const Prefix p48{U128{0x20010DB8AAAA0000ULL, 0}, 48, 128};
  const Prefix p128{U128{0x20010DB8AAAA0001ULL, 0x42}, 128, 128};
  LookupTable table({FieldId::kIpv6Dst},
                    {v6_entry(0, p32, 1), v6_entry(1, p48, 2), v6_entry(2, p128, 3)});

  PacketHeader h;
  h.set_ipv6_dst(Ipv6Address{U128{0x20010DB8AAAA0001ULL, 0x42}});
  ASSERT_NE(table.lookup(h), nullptr);
  EXPECT_EQ(table.lookup(h)->id, 2U);  // /128 wins

  h.set_ipv6_dst(Ipv6Address{U128{0x20010DB8AAAA0001ULL, 0x43}});
  EXPECT_EQ(table.lookup(h)->id, 1U);  // /48

  h.set_ipv6_dst(Ipv6Address{U128{0x20010DB8BBBB0000ULL, 0}});
  EXPECT_EQ(table.lookup(h)->id, 0U);  // /32

  h.set_ipv6_dst(Ipv6Address{U128{0x2001000000000000ULL, 0}});
  EXPECT_EQ(table.lookup(h), nullptr);
}

TEST(Ipv6Lookup, DefaultRouteCatchesAll) {
  LookupTable table({FieldId::kIpv6Dst},
                    {v6_entry(0, Prefix{U128{}, 0, 128}, 9)});
  PacketHeader h;
  h.set_ipv6_dst(Ipv6Address{U128{0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL}});
  ASSERT_NE(table.lookup(h), nullptr);
  EXPECT_EQ(table.lookup(h)->id, 0U);
}

class Ipv6Oracle : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Ipv6Oracle, AgreesWithLinearSearch) {
  workload::Ipv6RoutingConfig config;
  config.routes = GetParam();
  config.seed = 11 + GetParam();
  const auto set = workload::generate_ipv6_routing(config);

  FlowTable oracle(set.entries);
  const auto table = LookupTable::compile(oracle);

  const auto trace = workload::generate_trace(
      set, {.packets = 1500, .hit_ratio = 0.85, .seed = 19});
  std::size_t hits = 0;
  for (const auto& header : trace) {
    const FlowEntry* expected = oracle.lookup(header);
    const FlowEntry* actual = table.lookup(header);
    ASSERT_EQ(actual == nullptr, expected == nullptr) << header.to_string();
    if (expected != nullptr) {
      ++hits;
      EXPECT_EQ(actual->id, expected->id) << header.to_string();
    }
  }
  EXPECT_GT(hits, trace.size() / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Ipv6Oracle, ::testing::Values(64, 512, 2000));

TEST(Ipv6Pipeline, TwoTableAppEquivalence) {
  workload::Ipv6RoutingConfig config;
  config.routes = 400;
  const auto set = workload::generate_ipv6_routing(config);
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  const auto accelerated = compile_app(spec);

  const auto trace = workload::generate_trace(
      set, {.packets = 800, .hit_ratio = 0.85, .seed = 23});
  for (const auto& header : trace) {
    EXPECT_EQ(accelerated.execute(header), spec.reference.execute(header))
        << header.to_string();
  }
}

TEST(Ipv6Workload, LengthMixAndDefaultRoute) {
  workload::Ipv6RoutingConfig config;
  config.routes = 1000;
  const auto set = workload::generate_ipv6_routing(config);
  ASSERT_EQ(set.entries.size(), 1000U);
  std::size_t host_routes = 0, defaults = 0;
  for (const auto& entry : set.entries) {
    const auto& prefix = entry.match.get(FieldId::kIpv6Dst).prefix;
    if (prefix.length() == 128) ++host_routes;
    if (prefix.length() == 0) ++defaults;
    EXPECT_EQ(entry.priority, prefix.length());
  }
  EXPECT_EQ(defaults, 1U);
  EXPECT_GT(host_routes, 0U);
}

TEST(Ipv6Lookup, IncrementalChurn) {
  LookupTable table({FieldId::kIpv6Dst}, {});
  const Prefix p48{U128{0x20010DB8AAAA0000ULL, 0}, 48, 128};
  const Prefix p64{U128{0x20010DB8AAAABBBBULL, 0}, 64, 128};
  table.insert_entry(v6_entry(0, p48, 1));
  table.insert_entry(v6_entry(1, p64, 2));

  PacketHeader h;
  h.set_ipv6_dst(Ipv6Address{U128{0x20010DB8AAAABBBBULL, 7}});
  EXPECT_EQ(table.lookup(h)->id, 1U);
  table.remove_entry(1);
  EXPECT_EQ(table.lookup(h)->id, 0U);
  table.remove_entry(0);
  EXPECT_EQ(table.lookup(h), nullptr);
  for (const auto& trie : table.field_searches()[0].tries()) {
    EXPECT_EQ(trie.prefix_count(), 0U);
  }
}

}  // namespace
}  // namespace ofmtl
