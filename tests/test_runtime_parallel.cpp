// The parallel multi-queue runtime: batches classified through worker
// threads must be bitwise-identical to single-threaded execute(), the
// sharded queues must honour one-worker-per-queue draining, and warmed
// worker loops must perform zero steady-state heap allocations (counted by
// replacing global new/delete with a thread-safe counter; this binary is
// its own test executable so the replacement cannot leak into others).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/builder.hpp"
#include "runtime/runtime.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ofmtl {
namespace {

using runtime::BatchTicket;
using runtime::ParallelRuntime;
using runtime::RuntimeConfig;
using workload::FilterApp;

struct App {
  MultiTableLookup accelerated;
  std::vector<PacketHeader> trace;
};

App make_app(FilterApp app, const char* name, std::size_t packets = 512) {
  const auto set = workload::generate_filterset(app, name);
  const auto spec = build_app(set, TableLayout::kPerFieldTables);
  return App{compile_app(spec),
             workload::generate_trace(
                 set, {.packets = packets, .hit_ratio = 0.9, .seed = 31})};
}

TEST(ParallelRuntime, AggregateStatsSumsPerWorkerCounters) {
  // Submit distinct batch counts to each queue (stealing off so batches
  // stay pinned to their queue's worker) and check aggregate_stats() is the
  // exact per-worker sum — including the flow-cache counters, which a
  // second identical pass turns into hits.
  const auto app = make_app(FilterApp::kMacLearning, "bbra", 256);
  ParallelRuntime rt(app.accelerated.clone(),
                     {.workers = 2,
                      .work_stealing = false,
                      .flow_cache_capacity = 1024});
  constexpr std::size_t kBatch = 64;
  std::vector<ExecutionResult> results(app.trace.size());
  const auto feed = [&](std::size_t queue, std::size_t batches) {
    BatchTicket ticket;
    for (std::size_t b = 0; b < batches; ++b) {
      while (!rt.try_submit(queue, {app.trace.data() + b * kBatch, kBatch},
                            {results.data() + b * kBatch, kBatch}, &ticket)) {
        std::this_thread::yield();
      }
    }
    ticket.wait();
  };
  feed(0, 3);  // worker 0: 3 batches
  feed(1, 1);  // worker 1: 1 batch
  feed(0, 3);  // repeat pass: worker 0's cache now serves hits
  const auto w0 = rt.stats(0);
  const auto w1 = rt.stats(1);
  const auto total = rt.aggregate_stats();
  EXPECT_EQ(w0.batches, 6u);
  EXPECT_EQ(w1.batches, 1u);
  EXPECT_EQ(total.batches, w0.batches + w1.batches);
  EXPECT_EQ(total.packets, w0.packets + w1.packets);
  EXPECT_EQ(total.steals, w0.steals + w1.steals);
  EXPECT_EQ(total.errors, w0.errors + w1.errors);
  EXPECT_EQ(total.cache_hits, w0.cache_hits + w1.cache_hits);
  EXPECT_EQ(total.cache_misses, w0.cache_misses + w1.cache_misses);
  EXPECT_EQ(total.cache_evictions, w0.cache_evictions + w1.cache_evictions);
  EXPECT_EQ(total.cache_epoch_invalidations,
            w0.cache_epoch_invalidations + w1.cache_epoch_invalidations);
  EXPECT_GT(w0.cache_hits, 0u);  // the repeat pass hit worker 0's cache
  EXPECT_EQ(total.cache_hits + total.cache_misses, total.packets);
}

TEST(Clone, PreservesEqualPriorityTieBreakAfterSlotReuse) {
  // Regression: entries() returns slot order; after a remove + insert the
  // reused slot holds the *newest* entry, so a clone replaying slot order
  // would give it the oldest seq and steal equal-priority ties. Snapshots
  // are clones, so this would make the runtime diverge from the master.
  const auto make_entry = [](FlowEntryId id, std::uint32_t port) {
    FlowEntry entry;
    entry.id = id;
    entry.priority = 7;  // all equal: tie-break = insertion order
    entry.instructions = output_instruction(port);
    return entry;
  };
  LookupTable table({FieldId::kVlanId},
                    {make_entry(1, 1), make_entry(2, 2), make_entry(3, 3)});
  ASSERT_TRUE(table.remove_entry(1));
  table.insert_entry(make_entry(4, 4));  // reuses entry 1's slot

  PacketHeader header;
  header.set_vlan_id(99);  // matches every entry via the EM wildcard label
  const auto clone = table.clone();
  const FlowEntry* original = table.lookup(header);
  const FlowEntry* copied = clone.lookup(header);
  ASSERT_NE(original, nullptr);
  ASSERT_NE(copied, nullptr);
  EXPECT_EQ(original->id, 2u);  // oldest surviving equal-priority entry
  EXPECT_EQ(copied->id, original->id);
}

TEST(ParallelRuntime, MatchesSingleThreadedExecute) {
  const auto app = make_app(FilterApp::kMacLearning, "bbra");
  std::vector<ExecutionResult> expected;
  for (const auto& header : app.trace) {
    expected.push_back(app.accelerated.execute(header));
  }
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ParallelRuntime rt(app.accelerated.clone(), {.workers = workers});
    constexpr std::size_t kBatch = 64;
    std::vector<ExecutionResult> results(app.trace.size());
    BatchTicket ticket;
    std::size_t queue = 0;
    for (std::size_t base = 0; base < app.trace.size(); base += kBatch) {
      const std::size_t n = std::min(kBatch, app.trace.size() - base);
      while (!rt.try_submit(queue, {app.trace.data() + base, n},
                            {results.data() + base, n}, &ticket)) {
        std::this_thread::yield();
      }
      queue = (queue + 1) % rt.worker_count();
    }
    ticket.wait();
    for (std::size_t i = 0; i < app.trace.size(); ++i) {
      ASSERT_EQ(results[i], expected[i]) << "workers=" << workers << " i=" << i;
    }
    const auto total = rt.aggregate_stats();
    EXPECT_EQ(total.packets, app.trace.size());
    EXPECT_EQ(total.batches, (app.trace.size() + kBatch - 1) / kBatch);
  }
}

TEST(ParallelRuntime, FlowModsVisibleAtBatchBoundaries) {
  const auto app = make_app(FilterApp::kMacLearning, "bbra", 128);
  ParallelRuntime rt(app.accelerated.clone(), {.workers = 2});
  std::vector<ExecutionResult> results(app.trace.size());
  rt.classify(0, app.trace, results);

  FlowEntry takeover;
  takeover.id = 424242;
  takeover.priority = 60000;
  takeover.instructions = output_instruction(42);
  rt.insert_entry(1, takeover);  // table-1 catch-all above every app rule
  EXPECT_EQ(rt.epoch(), 1u);

  std::vector<ExecutionResult> after(app.trace.size());
  rt.classify(1, app.trace, after);
  std::size_t rerouted = 0;
  for (const auto& result : after) {
    for (const auto port : result.output_ports) rerouted += port == 42;
  }
  EXPECT_GT(rerouted, 0u);  // the published snapshot serves the new entry

  ASSERT_TRUE(rt.remove_entry(1, 424242));
  EXPECT_EQ(rt.epoch(), 2u);
  std::vector<ExecutionResult> reverted(app.trace.size());
  rt.classify(0, app.trace, reverted);
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(reverted[i], results[i]) << "packet=" << i;
  }
}

TEST(ParallelRuntime, MalformedPacketFailsTicketInsteadOfTerminating) {
  // Single-threaded execute() would throw (RM key out of field range); the
  // worker must flag the ticket instead of letting the exception terminate
  // the process, and classify() rethrows on the submitter's thread.
  FlowEntry entry;
  entry.id = 1;
  entry.priority = 1;
  entry.match.set(FieldId::kSrcPort, FieldMatch::of_range(0, 100));
  entry.instructions = output_instruction(1);
  MultiTableLookup tables;
  tables.add_table(LookupTable({FieldId::kSrcPort}, {entry}));
  ParallelRuntime rt(std::move(tables), {.workers = 1});
  PacketHeader bad;
  bad.set(FieldId::kSrcPort, std::uint64_t{1} << 20);  // > 16-bit field
  std::vector<ExecutionResult> results(1);
  EXPECT_THROW(rt.classify(0, {&bad, 1}, {results.data(), 1}),
               std::runtime_error);
  EXPECT_EQ(rt.aggregate_stats().errors, 1u);

  PacketHeader good;
  good.set_src_port(50);
  rt.classify(0, {&good, 1}, {results.data(), 1});  // worker still alive
  EXPECT_EQ(results[0].verdict, Verdict::kForwarded);
}

TEST(ParallelRuntime, SteadyStateWorkerLoopsAllocationFree) {
  const auto app = make_app(FilterApp::kRouting, "yoza");
  constexpr std::size_t kWorkers = 2;
  constexpr std::size_t kBatch = 64;
  ParallelRuntime rt(app.accelerated.clone(), {.workers = kWorkers});
  // Per-queue dedicated result arrays so every buffer reaches its high-water
  // capacity during the warm passes.
  std::vector<std::vector<ExecutionResult>> results(kWorkers);
  for (auto& r : results) r.resize(app.trace.size());
  const auto run_all = [&] {
    BatchTicket ticket;
    for (std::size_t base = 0; base < app.trace.size(); base += kBatch) {
      const std::size_t n = std::min(kBatch, app.trace.size() - base);
      for (std::size_t q = 0; q < kWorkers; ++q) {
        while (!rt.try_submit(q, {app.trace.data() + base, n},
                              {results[q].data() + base, n}, &ticket)) {
          std::this_thread::yield();
        }
      }
    }
    ticket.wait();
  };
  run_all();
  run_all();  // second warm pass: every slot has seen its window
  const std::size_t before = g_allocations.load();
  run_all();
  run_all();
  EXPECT_EQ(g_allocations.load(), before);
  for (std::size_t q = 0; q < kWorkers; ++q) {
    EXPECT_GT(rt.stats(q).packets, 0u) << "queue " << q << " never drained";
  }
}

}  // namespace
}  // namespace ofmtl
