// Group-table tests: validation, ALL/SELECT/INDIRECT execution semantics
// through both pipelines, the live-equivalence invariant with groups, and
// the Group action on the wire.
#include <gtest/gtest.h>

#include "core/switch_model.hpp"
#include "flow/group_table.hpp"
#include "ofp/messages.hpp"
#include "workload/rng.hpp"

namespace ofmtl {
namespace {

Group flood_group(GroupId id, std::initializer_list<std::uint32_t> ports) {
  Group group;
  group.id = id;
  group.type = GroupType::kAll;
  for (const auto port : ports) {
    group.buckets.push_back(GroupBucket{1, {OutputAction{port}}});
  }
  return group;
}

TEST(GroupTable, Validation) {
  GroupTable table;
  EXPECT_THROW(table.add(Group{}), std::invalid_argument);  // no buckets
  Group indirect;
  indirect.id = 1;
  indirect.type = GroupType::kIndirect;
  indirect.buckets = {GroupBucket{1, {OutputAction{1}}},
                      GroupBucket{1, {OutputAction{2}}}};
  EXPECT_THROW(table.add(indirect), std::invalid_argument);  // >1 bucket
  Group select;
  select.id = 2;
  select.type = GroupType::kSelect;
  select.buckets = {GroupBucket{0, {OutputAction{1}}}};
  EXPECT_THROW(table.add(select), std::invalid_argument);  // zero weight

  table.add(flood_group(3, {1, 2}));
  EXPECT_THROW(table.add(flood_group(3, {4})), std::invalid_argument);  // dup
  EXPECT_EQ(table.size(), 1U);
  EXPECT_NE(table.find(3), nullptr);
  EXPECT_TRUE(table.remove(3));
  EXPECT_FALSE(table.remove(3));
  EXPECT_THROW(table.modify(flood_group(3, {4})), std::invalid_argument);
}

TEST(GroupTable, SelectBucketWeighted) {
  Group group;
  group.id = 1;
  group.type = GroupType::kSelect;
  group.buckets = {GroupBucket{3, {OutputAction{1}}},
                   GroupBucket{1, {OutputAction{2}}}};
  // Deterministic: the same hash picks the same bucket.
  const auto& a = GroupTable::select_bucket(group, 42);
  const auto& b = GroupTable::select_bucket(group, 42);
  EXPECT_EQ(&a, &b);
  // Weighted: over the hash space, bucket 0 gets 3/4 of the picks.
  std::size_t first = 0;
  for (std::uint64_t h = 0; h < 4000; ++h) {
    if (&GroupTable::select_bucket(group, h) == &group.buckets[0]) ++first;
  }
  EXPECT_EQ(first, 3000U);
}

FlowMod flow_to_group(FlowEntryId id, std::uint16_t vlan, GroupId group) {
  FlowMod mod;
  mod.entry.id = id;
  mod.entry.priority = 1;
  mod.entry.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{vlan}));
  mod.entry.instructions.write_actions.push_back(GroupAction{group});
  return mod;
}

TEST(SwitchModelGroups, AllGroupFloodsEveryBucket) {
  SwitchModel sw({{FieldId::kVlanId}});
  sw.add_group(flood_group(7, {2, 3, 4}));
  sw.apply(flow_to_group(1, 10, 7));

  PacketHeader h;
  h.set_vlan_id(10);
  const auto result = sw.process(h);
  EXPECT_EQ(result.verdict, Verdict::kForwarded);
  EXPECT_EQ(result.output_ports, (std::vector<std::uint32_t>{2, 3, 4}));
  EXPECT_EQ(sw.process_reference(h), result);
}

TEST(SwitchModelGroups, SelectGroupSpreadsFlows) {
  SwitchModel sw({{FieldId::kVlanId}});
  Group ecmp;
  ecmp.id = 9;
  ecmp.type = GroupType::kSelect;
  ecmp.buckets = {GroupBucket{1, {OutputAction{5}}},
                  GroupBucket{1, {OutputAction{6}}}};
  sw.add_group(std::move(ecmp));
  sw.apply(flow_to_group(1, 10, 9));

  workload::Rng rng(5);
  std::size_t to5 = 0, to6 = 0;
  for (int i = 0; i < 400; ++i) {
    PacketHeader h;
    h.set_vlan_id(10);
    h.set_ipv4_src(Ipv4Address{static_cast<std::uint32_t>(rng.next())});
    h.set_ipv4_dst(Ipv4Address{static_cast<std::uint32_t>(rng.next())});
    const auto result = sw.process(h);
    ASSERT_EQ(result.output_ports.size(), 1U);
    (result.output_ports[0] == 5 ? to5 : to6) += 1;
    // Same packet -> same pick, and equivalence holds.
    EXPECT_EQ(sw.process(h).output_ports, result.output_ports);
    EXPECT_EQ(sw.process_reference(h), result);
  }
  // Both paths carry a meaningful share (hash spreads flows).
  EXPECT_GT(to5, 100U);
  EXPECT_GT(to6, 100U);
}

TEST(SwitchModelGroups, IndirectGroupAndModify) {
  SwitchModel sw({{FieldId::kVlanId}});
  Group nexthop;
  nexthop.id = 4;
  nexthop.type = GroupType::kIndirect;
  nexthop.buckets = {GroupBucket{1, {OutputAction{8}}}};
  sw.add_group(nexthop);
  sw.apply(flow_to_group(1, 10, 4));
  sw.apply(flow_to_group(2, 20, 4));

  PacketHeader h;
  h.set_vlan_id(10);
  EXPECT_EQ(sw.process(h).output_ports, (std::vector<std::uint32_t>{8}));

  // Re-pointing the group re-routes every referencing flow at once.
  nexthop.buckets = {GroupBucket{1, {OutputAction{9}}}};
  sw.modify_group(nexthop);
  EXPECT_EQ(sw.process(h).output_ports, (std::vector<std::uint32_t>{9}));
  h.set_vlan_id(20);
  EXPECT_EQ(sw.process(h).output_ports, (std::vector<std::uint32_t>{9}));
}

TEST(SwitchModelGroups, DanglingGroupDrops) {
  SwitchModel sw({{FieldId::kVlanId}});
  sw.apply(flow_to_group(1, 10, 99));  // group 99 never defined
  PacketHeader h;
  h.set_vlan_id(10);
  const auto result = sw.process(h);
  EXPECT_EQ(result.verdict, Verdict::kDropped);
  EXPECT_EQ(sw.process_reference(h), result);
}

TEST(SwitchModelGroups, GroupBeatsOutputInActionSet) {
  // OpenFlow 5.10: group action takes precedence over output.
  SwitchModel sw({{FieldId::kVlanId}});
  sw.add_group(flood_group(1, {2, 3}));
  FlowMod mod = flow_to_group(1, 10, 1);
  mod.entry.instructions.write_actions.push_back(OutputAction{7});
  sw.apply(mod);
  PacketHeader h;
  h.set_vlan_id(10);
  EXPECT_EQ(sw.process(h).output_ports, (std::vector<std::uint32_t>{2, 3}));
}

TEST(GroupAction, WireCodecRoundTrip) {
  ofp::FlowModMsg mod;
  mod.entry.id = 1;
  mod.entry.match.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{5}));
  mod.entry.instructions.write_actions.push_back(GroupAction{12345});
  const auto bytes = ofp::encode({77, mod});
  const auto decoded = ofp::decode(bytes);
  const auto& round = std::get<ofp::FlowModMsg>(decoded.message);
  ASSERT_EQ(round.entry.instructions.write_actions.size(), 1U);
  EXPECT_EQ(std::get<GroupAction>(round.entry.instructions.write_actions[0])
                .group_id,
            12345U);
}

TEST(GroupTable, MemoryReport) {
  GroupTable table;
  table.add(flood_group(1, {1, 2, 3}));
  const auto report = table.memory_report("g");
  EXPECT_GT(report.total_bits(), 0U);
  ASSERT_EQ(report.components().size(), 2U);
  EXPECT_EQ(report.components()[1].words, 3U);  // buckets
}

}  // namespace
}  // namespace ofmtl
