// Metrics-plane tests: instrument semantics, provider registration RAII
// (the dangling-callback crash mode a dying runtime must never hit),
// Prometheus/JSON rendering shape, and a concurrent scrape-vs-update-vs-
// register storm. The concurrency test runs under TSan in CI (.github/
// workflows/ci.yml tsan job) — instruments claim wait-free cross-thread
// safety and the registry claims mutex-serialized scrapes; TSan holds both
// to it.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"

namespace {

using namespace ofmtl;
using obs::Counter;
using obs::Gauge;
using obs::MetricsBuilder;
using obs::MetricsRegistry;

TEST(MetricsInstrumentTest, CounterAccumulatesAndGaugeOverwrites) {
  Counter counter;
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(2.5);
  EXPECT_EQ(gauge.value(), 2.5);
  gauge.set(-1e18);
  EXPECT_EQ(gauge.value(), -1e18);
}

TEST(MetricsRegistryTest, PrometheusRenderGroupsFamiliesWithOneHeader) {
  MetricsRegistry registry;
  auto handle = registry.register_provider([](MetricsBuilder& builder) {
    builder.counter("ofmtl_test_packets_total", "Packets seen.", 100,
                    R"(worker="0")");
    builder.counter("ofmtl_test_packets_total", "Packets seen.", 200,
                    R"(worker="1")");
    builder.gauge("ofmtl_test_pressure", "Queue pressure.", 0.25);
  });
  const std::string text = registry.render_prometheus();
  // One HELP/TYPE pair per family even with several labelled samples.
  EXPECT_EQ(text.find("# TYPE ofmtl_test_packets_total counter"),
            text.rfind("# TYPE ofmtl_test_packets_total counter"));
  EXPECT_NE(text.find("# HELP ofmtl_test_packets_total Packets seen."),
            std::string::npos);
  EXPECT_NE(text.find("ofmtl_test_packets_total{worker=\"0\"} 100"),
            std::string::npos);
  EXPECT_NE(text.find("ofmtl_test_packets_total{worker=\"1\"} 200"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ofmtl_test_pressure gauge"), std::string::npos);
  EXPECT_NE(text.find("ofmtl_test_pressure 0.25"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonRenderCarriesTypeAndLabels) {
  MetricsRegistry registry;
  auto handle = registry.register_provider([](MetricsBuilder& builder) {
    builder.counter("ofmtl_test_total", "h", 7, R"(kind="x")");
  });
  const std::string json = registry.render_json();
  EXPECT_NE(json.find(R"("name":"ofmtl_test_total")"), std::string::npos);
  EXPECT_NE(json.find(R"("type":"counter")"), std::string::npos);
  EXPECT_NE(json.find(R"("labels":"kind=\"x\"")"), std::string::npos);
  EXPECT_NE(json.find(R"("value":7)"), std::string::npos);
}

TEST(MetricsRegistryTest, HandleDestructionUnregistersProvider) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.provider_count(), 0u);
  {
    auto handle = registry.register_provider(
        [](MetricsBuilder& builder) { builder.gauge("ofmtl_gone", "h", 1); });
    EXPECT_EQ(registry.provider_count(), 1u);
    EXPECT_NE(registry.render_prometheus().find("ofmtl_gone"),
              std::string::npos);
  }
  EXPECT_EQ(registry.provider_count(), 0u);
  EXPECT_EQ(registry.render_prometheus().find("ofmtl_gone"),
            std::string::npos);

  // Moved-from handles must not double-unregister.
  auto a = registry.register_provider(
      [](MetricsBuilder& builder) { builder.gauge("ofmtl_moved", "h", 1); });
  auto b = std::move(a);
  EXPECT_EQ(registry.provider_count(), 1u);
  b.reset();
  EXPECT_EQ(registry.provider_count(), 0u);
  b.reset();  // idempotent
}

TEST(MetricsRegistryTest, RuntimeProviderExportsWorkerAndCacheFamilies) {
  MultiTableLookup tables;
  std::vector<FlowEntry> entries;
  FlowEntry entry;
  entry.id = 1;
  entry.priority = 1;
  entry.match.set(FieldId::kEthDst, FieldMatch::exact(std::uint64_t{5}));
  entry.instructions = output_instruction(1);
  entries.push_back(std::move(entry));
  tables.add_table(LookupTable({FieldId::kEthDst}, std::move(entries)));

  runtime::ParallelRuntime runtime(std::move(tables), {.workers = 2});
  MetricsRegistry registry;
  auto handle = runtime.register_metrics(registry);

  PacketHeader header;
  header.set(FieldId::kEthDst, 5);
  ExecutionResult result;
  runtime.classify(0, {&header, 1}, {&result, 1});

  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("ofmtl_runtime_packets_total 1"), std::string::npos);
  EXPECT_NE(text.find("ofmtl_runtime_workers 2"), std::string::npos);
  EXPECT_NE(text.find("ofmtl_cache_hits_total"), std::string::npos);
  EXPECT_NE(text.find(R"(ofmtl_runtime_worker_packets_total{worker="0"})"),
            std::string::npos);
  EXPECT_NE(text.find(R"(ofmtl_runtime_worker_packets_total{worker="1"})"),
            std::string::npos);
  handle.reset();
  runtime.stop();
  EXPECT_EQ(registry.provider_count(), 0u);
}

TEST(MetricsRegistryTest, ConcurrentScrapeUpdateRegisterIsRaceFree) {
  // The TSan target: three writer threads hammering shared instruments,
  // one thread churning provider registration, and the main thread
  // scraping continuously. Nothing here asserts ordering — the assertion
  // IS the absence of data races and lost registrations.
  MetricsRegistry registry;
  Counter shared_counter;
  Gauge shared_gauge;
  std::atomic<bool> stop{false};

  auto stable = registry.register_provider(
      [&shared_counter, &shared_gauge](MetricsBuilder& builder) {
        builder.counter("ofmtl_storm_total", "h",
                        static_cast<double>(shared_counter.value()));
        builder.gauge("ofmtl_storm_gauge", "h", shared_gauge.value());
      });

  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&shared_counter, &shared_gauge, &stop, t] {
      std::uint64_t i = 0;
      do {  // do-while: each writer lands at least one update even if the
            // scraper finishes before this thread is first scheduled
        shared_counter.add(1);
        shared_gauge.set(static_cast<double>(t) + static_cast<double>(i++));
      } while (!stop.load(std::memory_order_acquire));
    });
  }
  std::thread churner([&registry, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      auto h = registry.register_provider([](MetricsBuilder& builder) {
        builder.gauge("ofmtl_storm_transient", "h", 1);
      });
      (void)registry.render_json();
    }
  });

  for (int i = 0; i < 200; ++i) {
    const std::string text = registry.render_prometheus();
    EXPECT_NE(text.find("ofmtl_storm_total"), std::string::npos);
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();
  churner.join();
  EXPECT_EQ(registry.provider_count(), 1u);  // only the stable provider left
  EXPECT_GT(shared_counter.value(), 0u);
}

}  // namespace
