// The trace I/O loop end to end: the batched wire parse must be
// bitwise-identical to scalar parse_packet (shared core, but the property
// is what CI relies on) and allocation-free once its scratch is warm
// (counted by replacing global new/delete — this binary is its own test
// executable so the replacement cannot leak into others); exported
// captures must parse back to exactly canonical_wire_header() of every
// synthetic lane; and replaying a capture through TraceReplayer +
// ParallelRuntime must produce results bitwise-identical to submitting the
// same parsed headers directly — across two apps, cache off and on, and
// multiple loops.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/builder.hpp"
#include "net/packet.hpp"
#include "obs/export.hpp"
#include "obs/tracer.hpp"
#include "runtime/runtime.hpp"
#include "trace/pcap.hpp"
#include "trace/replay.hpp"
#include "trace/wire_parse.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_export.hpp"
#include "workload/trace_gen.hpp"
#include "workload/zipf.hpp"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return operator new(size); }
// The nothrow forms must be replaced too: libstdc++'s stable_sort buffer
// allocates through them, and a mismatched real-new/replaced-delete pair
// trips ASan's alloc-dealloc-mismatch check.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace ofmtl {
namespace {

using runtime::ParallelRuntime;
using workload::FilterApp;

struct App {
  std::string tag;
  FilterSet set;
  MultiTableLookup tables;
  std::uint32_t in_port = 0;
};

App make_app(FilterApp app, const char* name) {
  auto set = workload::generate_filterset(app, name);
  auto tables = compile_app(build_app(set, TableLayout::kPerFieldTables));
  const auto port = workload::capture_in_port(set);
  return App{std::string(to_string(app)) + "_" + name, std::move(set),
             std::move(tables), port};
}

std::vector<PacketHeader> make_stream(const App& app, std::size_t flows,
                                      std::size_t packets, std::uint64_t seed) {
  const auto pool = workload::generate_trace(
      app.set, {.packets = flows, .hit_ratio = 0.9, .seed = seed});
  workload::ZipfSampler sampler(pool.size(), 1.1, seed + 1);
  std::vector<PacketHeader> stream;
  stream.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    stream.push_back(pool[sampler.next()]);
  }
  return stream;
}

std::vector<trace::WireFrame> wire_frames(
    const std::vector<trace::PcapRecord>& records) {
  std::vector<trace::WireFrame> frames;
  frames.reserve(records.size());
  for (const auto& record : records) {
    frames.emplace_back(record.bytes, record.orig_len);
  }
  return frames;
}

void classify_all(ParallelRuntime& rt, const std::vector<PacketHeader>& stream,
                  std::vector<ExecutionResult>& results,
                  std::size_t batch = 64) {
  for (std::size_t base = 0; base < stream.size(); base += batch) {
    const std::size_t n = std::min(batch, stream.size() - base);
    rt.classify(0, {stream.data() + base, n}, {results.data() + base, n});
  }
}

TEST(WireParseBatch, BitwiseIdenticalToScalarWithBadLanesFlagged) {
  const auto app = make_app(FilterApp::kRouting, "yoza");
  const auto stream = make_stream(app, 128, 512, 3);
  const auto writer = workload::export_trace(stream);
  trace::PcapReader reader{std::span<const std::uint8_t>(writer.buffer())};
  const auto records = reader.read_all();
  auto frames = wire_frames(records);

  // Poison a few lanes with malformed bytes the scalar parser rejects.
  const std::vector<std::uint8_t> runt = {0xAA, 0xBB};
  std::vector<std::uint8_t> bad_version(records[0].bytes.begin(),
                                        records[0].bytes.end());
  bad_version[14] = 0x55;
  frames[17] = trace::WireFrame(runt);
  frames[200] = trace::WireFrame(bad_version);
  frames[511] = trace::WireFrame();

  std::vector<PacketHeader> out(frames.size());
  trace::ParseContext ctx;
  const std::size_t valid =
      trace::parse_batch(frames, app.in_port, out, ctx);
  EXPECT_EQ(valid, frames.size() - 3);
  EXPECT_EQ(ctx.bad_lanes, (std::vector<std::uint32_t>{17, 200, 511}));

  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i == 17 || i == 200 || i == 511) {
      EXPECT_THROW((void)parse_packet(frames[i].bytes, app.in_port),
                   std::invalid_argument);
      EXPECT_EQ(out[i], PacketHeader{}) << "lane " << i;
    } else {
      EXPECT_EQ(out[i], parse_packet(frames[i].bytes, app.in_port).header)
          << "lane " << i;
    }
  }
}

TEST(WireParseBatch, AllocationFreeOnceWarm) {
  const auto app = make_app(FilterApp::kMacLearning, "gozb");
  const auto stream = make_stream(app, 64, 256, 5);
  const auto writer = workload::export_trace(stream);
  trace::PcapReader reader{std::span<const std::uint8_t>(writer.buffer())};
  const auto records = reader.read_all();
  auto frames = wire_frames(records);
  frames[100] = trace::WireFrame();  // keep one bad lane: that path counts too

  std::vector<PacketHeader> out(frames.size());
  trace::ParseContext ctx;
  (void)trace::parse_batch(frames, app.in_port, out, ctx);  // warm bad_lanes

  const std::size_t before = g_allocations.load();
  for (int repeat = 0; repeat < 4; ++repeat) {
    const std::size_t valid =
        trace::parse_batch(frames, app.in_port, out, ctx);
    EXPECT_EQ(valid, frames.size() - 1);
  }
  EXPECT_EQ(g_allocations.load(), before)
      << "warm parse_batch allocated on the hot path";
}

TEST(TraceExport, CaptureParsesBackToCanonicalHeaders) {
  for (const auto filter_app : {FilterApp::kRouting, FilterApp::kMacLearning}) {
    const auto app = make_app(filter_app, "bbra");
    const auto stream = make_stream(app, 128, 512, 7);
    const auto writer = workload::export_trace(stream);
    trace::PcapReader reader{std::span<const std::uint8_t>(writer.buffer())};
    const auto records = reader.read_all();
    ASSERT_EQ(records.size(), stream.size());

    const auto canonical = workload::replayed_headers(stream, app.in_port);
    for (std::size_t i = 0; i < records.size(); ++i) {
      const auto parsed = parse_packet(records[i].bytes, app.in_port);
      ASSERT_EQ(parsed.header, canonical[i]) << app.tag << " lane " << i;
      // Canonicalization is idempotent: a replayed header re-exports to
      // itself.
      ASSERT_EQ(canonical_wire_header(canonical[i], app.in_port),
                canonical[i])
          << app.tag << " lane " << i;
    }

    // TraceReplayer ingests the same lanes (none malformed).
    reader.rewind();
    trace::TraceReplayer replayer(reader, app.in_port);
    EXPECT_EQ(replayer.malformed_frames(), 0U);
    EXPECT_EQ(replayer.headers(), canonical);
  }
}

TEST(TraceExport, SnapLengthCappedCapturesReplayGracefully) {
  // A capture taken with a snap length (tcpdump -s) stores only a prefix
  // of each frame; pcap orig_len records the rest. The parser must treat
  // "claims bytes the capture cut off" as snapping (fields absent), not as
  // the malformed "claims bytes beyond the wire" case — otherwise every
  // real snapped capture would be wholly unreplayable.
  PacketSpec spec;
  spec.eth_src = MacAddress{0x020000000001ULL};
  spec.eth_dst = MacAddress{0x020000000002ULL};
  spec.eth_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  spec.ipv4_src = Ipv4Address{10, 0, 0, 1};
  spec.ipv4_dst = Ipv4Address{10, 0, 0, 2};
  spec.ip_proto = static_cast<std::uint8_t>(IpProto::kTcp);
  spec.src_port = 12345;
  spec.dst_port = 80;
  const auto frame = serialize_packet(spec);  // 14 eth + 20 ip + 8 l4 = 42

  trace::PcapWriter writer({.snap_len = 38});  // cuts the last 4 L4 bytes
  writer.append(1'000, frame);
  trace::PcapReader reader{std::span<const std::uint8_t>(writer.buffer())};
  trace::PcapRecord record;
  ASSERT_TRUE(reader.next(record));
  ASSERT_EQ(record.bytes.size(), 38U);
  ASSERT_EQ(record.orig_len, 42U);

  // Without the wire length, the snapped bytes look like an overrun.
  EXPECT_THROW((void)parse_packet(record.bytes, 7), std::invalid_argument);

  // With it, everything still captured parses; the cut-off ports are
  // absent rather than an error.
  PacketHeader snapped;
  ASSERT_TRUE(parse_packet_header(record.bytes, 7, snapped, record.orig_len));
  PacketHeader full = header_from_spec(spec, 7);
  EXPECT_EQ(snapped.get64(FieldId::kIpv4Dst), full.get64(FieldId::kIpv4Dst));
  EXPECT_EQ(snapped.get64(FieldId::kIpProto), full.get64(FieldId::kIpProto));
  EXPECT_FALSE(snapped.has(FieldId::kSrcPort));
  EXPECT_FALSE(snapped.has(FieldId::kDstPort));

  // The replayer ingests the snapped capture with zero malformed frames.
  reader.rewind();
  trace::TraceReplayer replayer(reader, 7);
  EXPECT_EQ(replayer.malformed_frames(), 0U);
  ASSERT_EQ(replayer.headers().size(), 1U);
  EXPECT_EQ(replayer.headers()[0], snapped);

  // A length claiming bytes beyond even the wire stays malformed.
  std::vector<std::uint8_t> overrun(frame);
  overrun[16] = 0;
  overrun[17] = 200;
  PacketHeader rejected;
  EXPECT_FALSE(
      parse_packet_header(overrun, 7, rejected, /*wire_len=*/overrun.size()));
}

TEST(TraceReplay, MatchesDirectSubmissionBitwise) {
  // The acceptance property: pcap-ingested classification equals direct
  // header submission, across two apps and cache off/on.
  for (const auto& [filter_app, name] :
       {std::pair{FilterApp::kRouting, "yoza"},
        std::pair{FilterApp::kMacLearning, "gozb"}}) {
    const auto app = make_app(filter_app, name);
    const auto stream = make_stream(app, 256, 2048, 11);
    const auto writer = workload::export_trace(stream);
    trace::PcapReader reader{std::span<const std::uint8_t>(writer.buffer())};
    trace::TraceReplayer replayer(reader, app.in_port);
    ASSERT_EQ(replayer.headers().size(), stream.size());

    for (const std::size_t cache : {std::size_t{0}, std::size_t{512}}) {
      ParallelRuntime replay_rt(app.tables.clone(),
                                {.workers = 1, .flow_cache_capacity = cache});
      std::vector<ExecutionResult> replayed(stream.size());
      const auto stats = replayer.run(replay_rt, replayed,
                                      {.batch = 128, .in_flight = 4});
      EXPECT_EQ(stats.packets, stream.size());
      EXPECT_EQ(stats.malformed_frames, 0U);

      ParallelRuntime direct_rt(app.tables.clone(),
                                {.workers = 1, .flow_cache_capacity = cache});
      std::vector<ExecutionResult> expected(stream.size());
      classify_all(direct_rt, replayer.headers(), expected);

      for (std::size_t i = 0; i < stream.size(); ++i) {
        ASSERT_EQ(replayed[i], expected[i])
            << app.tag << " cache=" << cache << " packet " << i;
      }
    }
  }
}

TEST(TraceReplay, TracedRunIsBitwiseIdenticalToUntraced) {
  // Observability must be free of observer effects: the same replay with
  // the trace rings live classifies every packet bitwise-identically, and
  // (when the instrumentation is compiled in) yields a non-empty event
  // stream whose decoded timestamps are monotone per thread.
  const auto app = make_app(FilterApp::kMacLearning, "gozb");
  const auto stream = make_stream(app, 256, 2048, 23);
  const auto writer = workload::export_trace(stream);
  trace::PcapReader reader{std::span<const std::uint8_t>(writer.buffer())};
  trace::TraceReplayer replayer(reader, app.in_port);
  const trace::ReplayConfig config{.batch = 128, .in_flight = 4, .loops = 2};

  obs::stop_tracing();
  std::vector<ExecutionResult> untraced(stream.size());
  {
    ParallelRuntime rt(app.tables.clone(),
                       {.workers = 2, .flow_cache_capacity = 512});
    (void)replayer.run(rt, untraced, config);
  }

  obs::start_tracing();
  std::vector<ExecutionResult> traced(stream.size());
  {
    ParallelRuntime rt(app.tables.clone(),
                       {.workers = 2, .flow_cache_capacity = 512});
    (void)replayer.run(rt, traced, config);
  }
  obs::stop_tracing();
  const auto dump = obs::collect_tracing();

  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(traced[i], untraced[i]) << "packet " << i;
  }

  if (!obs::kInstrumentationCompiled) return;
  std::uint64_t total_events = 0, batch_begins = 0;
  for (const auto& thread : dump.threads) {
    const auto events = obs::decode_thread(thread);
    std::uint64_t last_ts = 0;
    for (const auto& event : events) {
      EXPECT_GE(event.ts_ns, last_ts) << "thread " << thread.name;
      last_ts = event.ts_ns;
      ++total_events;
      if (event.event == obs::TraceEvent::kBatchBegin) ++batch_begins;
    }
  }
  EXPECT_GT(total_events, 0u);
  // Every batch the run submitted shows up (nothing wrapped: 2 loops x 16
  // batches fits any default ring).
  EXPECT_GE(batch_begins, 2 * ((stream.size() + 127) / 128));
}

TEST(TraceReplay, LoopsRewriteResultsInPlaceAndCountStats) {
  const auto app = make_app(FilterApp::kMacLearning, "gozb");
  const auto stream = make_stream(app, 64, 500, 13);
  const auto writer = workload::export_trace(stream);
  trace::PcapReader reader{std::span<const std::uint8_t>(writer.buffer())};
  trace::TraceReplayer replayer(reader, app.in_port);

  ParallelRuntime rt(app.tables.clone(), {.workers = 1});
  std::vector<ExecutionResult> once(stream.size());
  (void)replayer.run(rt, once, {.batch = 64, .in_flight = 2});

  std::vector<ExecutionResult> looped(stream.size());
  const auto stats = replayer.run(rt, looped, {.batch = 64, .in_flight = 2,
                                               .loops = 3});
  EXPECT_EQ(stats.packets, 3 * stream.size());
  EXPECT_EQ(stats.batches, 3 * ((stream.size() + 63) / 64));
  EXPECT_EQ(stats.frames, stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(looped[i], once[i]) << "packet " << i;
  }
}

TEST(TraceReplay, MalformedFramesAreDroppedNotSubmitted) {
  const auto app = make_app(FilterApp::kMacLearning, "gozb");
  const auto stream = make_stream(app, 64, 200, 17);
  auto writer = workload::export_trace(stream);
  // Append a frame the wire parser rejects (runt Ethernet header).
  const std::vector<std::uint8_t> runt = {1, 2, 3, 4};
  writer.append(99, runt);
  trace::PcapReader reader{std::span<const std::uint8_t>(writer.buffer())};
  trace::TraceReplayer replayer(reader, app.in_port);
  EXPECT_EQ(replayer.frames(), stream.size() + 1);
  EXPECT_EQ(replayer.malformed_frames(), 1U);
  EXPECT_EQ(replayer.headers().size(), stream.size());

  ParallelRuntime rt(app.tables.clone(), {.workers = 1});
  std::vector<ExecutionResult> results(replayer.headers().size());
  const auto stats = replayer.run(rt, results, {.batch = 64});
  EXPECT_EQ(stats.packets, stream.size());
  EXPECT_EQ(stats.malformed_frames, 1U);
}

TEST(TraceReplay, OpenLoopPacingHoldsTheTargetRate) {
  const auto app = make_app(FilterApp::kMacLearning, "gozb");
  const auto stream = make_stream(app, 64, 2048, 19);
  const auto writer = workload::export_trace(stream);
  trace::PcapReader reader{std::span<const std::uint8_t>(writer.buffer())};
  trace::TraceReplayer replayer(reader, app.in_port);

  ParallelRuntime rt(app.tables.clone(),
                     {.workers = 1, .flow_cache_capacity = 4096});
  std::vector<ExecutionResult> results(stream.size());
  // 1 Mpps over 2048 packets ≈ 2.0 ms; an unpaced cache-warm replay runs
  // far faster, so the elapsed time observing the schedule is the pacer.
  const auto stats =
      replayer.run(rt, results, {.batch = 128, .pace_pps = 1e6});
  EXPECT_GE(stats.elapsed_ns, 1.5e6);
}

}  // namespace
}  // namespace ofmtl
