// Tree Bitmap trie: LPM equivalence against the unibit oracle across stride
// configurations, plus the compressed-layout memory accounting.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "classifier/tree_bitmap.hpp"
#include "classifier/unibit_trie.hpp"
#include "core/multibit_trie.hpp"
#include "workload/rng.hpp"

namespace ofmtl {
namespace {

TEST(TreeBitmap, RejectsBadConfig) {
  EXPECT_THROW(TreeBitmapTrie(16, {8, 9}, {}), std::invalid_argument);
  EXPECT_THROW(TreeBitmapTrie(16, {8, 8}, {}), std::invalid_argument);  // s>6
  EXPECT_NO_THROW(TreeBitmapTrie(16, {4, 4, 4, 4}, {}));
}

TEST(TreeBitmap, BasicsAndDefaultRoute) {
  TreeBitmapTrie trie(16, {4, 4, 4, 4},
                      {{Prefix::from_value(0, 0, 16), 0},
                       {Prefix::from_value(0xAB00, 8, 16), 1},
                       {Prefix::exact(0xABCD, 16), 2}});
  EXPECT_EQ(trie.lookup(0xABCD), 2U);
  EXPECT_EQ(trie.lookup(0xABCE), 1U);
  EXPECT_EQ(trie.lookup(0x1234), 0U);
}

TEST(TreeBitmap, FullStrideBoundaryPrefixes) {
  // Lengths on exact stride boundaries (4, 8, 12, 16) exercise the
  // "length-0 in child" encoding and the widened last-level bitmap.
  TreeBitmapTrie trie(16, {4, 4, 4, 4},
                      {{Prefix::from_value(0xA000, 4, 16), 1},
                       {Prefix::from_value(0xAB00, 8, 16), 2},
                       {Prefix::from_value(0xABC0, 12, 16), 3},
                       {Prefix::exact(0xABCD, 16), 4}});
  EXPECT_EQ(trie.lookup(0xABCD), 4U);
  EXPECT_EQ(trie.lookup(0xABC1), 3U);
  EXPECT_EQ(trie.lookup(0xABF0), 2U);
  EXPECT_EQ(trie.lookup(0xAF00), 1U);
  EXPECT_EQ(trie.lookup(0xB000), std::nullopt);
}

TEST(TreeBitmap, DuplicateLastLabelWins) {
  TreeBitmapTrie trie(16, {4, 4, 4, 4},
                      {{Prefix::exact(0x1111, 16), 7},
                       {Prefix::exact(0x1111, 16), 9}});
  EXPECT_EQ(trie.lookup(0x1111), 9U);
}

struct TbmCase {
  const char* name;
  std::vector<unsigned> strides;
};

class TreeBitmapOracle : public ::testing::TestWithParam<TbmCase> {};

TEST_P(TreeBitmapOracle, MatchesUnibitOnRandomSets) {
  workload::Rng rng(0xBEEF);
  for (int trial = 0; trial < 8; ++trial) {
    std::map<std::pair<unsigned, std::uint64_t>, Label> dedup;
    std::vector<std::pair<Prefix, Label>> prefixes;
    UnibitTrie oracle(16);
    for (int i = 0; i < 250; ++i) {
      const unsigned len = static_cast<unsigned>(rng.below(17));
      const auto prefix = Prefix::from_value(rng.below(0x10000), len, 16);
      const auto label = static_cast<Label>(i);
      dedup[{prefix.length(), prefix.value64()}] = label;
      prefixes.emplace_back(prefix, label);
      oracle.insert(prefix, label);
    }
    TreeBitmapTrie trie(16, GetParam().strides, prefixes);
    for (int probe = 0; probe < 3000; ++probe) {
      const std::uint64_t key = rng.below(0x10000);
      EXPECT_EQ(trie.lookup(key), oracle.lookup(key)) << "key " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strides, TreeBitmapOracle,
    ::testing::Values(TbmCase{"four_level_4", {4, 4, 4, 4}},
                      TbmCase{"mixed_6_5_5", {6, 5, 5}},
                      TbmCase{"three_level_5_5_6", {5, 5, 6}},
                      TbmCase{"eight_level_2", {2, 2, 2, 2, 2, 2, 2, 2}}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(TreeBitmap, BatchLookupMatchesScalar) {
  // The interleaved, prefetching batch descent must agree with the scalar
  // walk on every key, across window-straddling batch sizes.
  workload::Rng rng(0xFACE);
  std::vector<std::pair<Prefix, Label>> prefixes;
  for (int i = 0; i < 300; ++i) {
    prefixes.emplace_back(
        Prefix::from_value(rng.below(0x10000),
                           static_cast<unsigned>(rng.below(17)), 16),
        static_cast<Label>(i));
  }
  TreeBitmapTrie trie(16, {5, 5, 6}, prefixes);
  std::vector<std::uint64_t> keys;
  for (int probe = 0; probe < 1000; ++probe) keys.push_back(rng.below(0x10000));
  for (const std::size_t count :
       {std::size_t{1}, std::size_t{7}, std::size_t{8}, std::size_t{9},
        std::size_t{1000}}) {
    std::vector<std::optional<Label>> out(count);
    trie.lookup_batch({keys.data(), count}, {out.data(), count});
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[i], trie.lookup(keys[i])) << "key " << keys[i];
    }
  }
}

TEST(TreeBitmap, MemoryBeatsArrayBlockMbt) {
  // The compression claim: tree-bitmap nodes cost less than the array-block
  // MBT on realistic (clustered) prefix sets.
  workload::Rng rng(77);
  std::vector<std::pair<Prefix, Label>> prefixes;
  std::set<std::uint64_t> unique_values;
  auto mbt = MultibitTrie(16, {4, 4, 4, 4});
  for (int i = 0; i < 2000; ++i) {
    const auto prefix = Prefix::exact(0x2000 | rng.below(0x4000), 16);
    unique_values.insert(prefix.value64());
    prefixes.emplace_back(prefix, static_cast<Label>(i));
    mbt.insert(prefix, static_cast<Label>(i));
  }
  TreeBitmapTrie tbm(16, {4, 4, 4, 4}, prefixes);
  const unsigned label_bits = 12;
  EXPECT_LT(tbm.total_bits(label_bits),
            mbt.total_bits(TrieStorage::kArrayBlock, label_bits));
  EXPECT_GT(tbm.node_count(), 0U);
  EXPECT_EQ(tbm.result_count(), unique_values.size());

  const auto report = tbm.memory_report("tbm", label_bits);
  EXPECT_EQ(report.total_bits(), tbm.total_bits(label_bits));
}

TEST(TreeBitmap, NodeBitsLayout) {
  TreeBitmapTrie trie(16, {4, 4, 4, 4}, {{Prefix::exact(1, 16), 0}});
  // Non-last level: internal 2^4-1=15 + external 2^4=16 + pointers.
  EXPECT_GE(trie.node_bits(0, 12), 15U + 16U);
  // Last level: widened internal 2^5-1=31, no external/child pointer.
  EXPECT_GE(trie.node_bits(3, 12), 31U);
  EXPECT_LT(trie.node_bits(3, 12), trie.node_bits(0, 12) + 31U);
}

}  // namespace
}  // namespace ofmtl
