// LogHistogram unit tests: bucket-boundary geometry over the full 64-bit
// range, the merge-equals-union algebra, and quantile accuracy against an
// exact sorted reference on seeded random inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "obs/histogram.hpp"

namespace {

using ofmtl::obs::LogHistogram;

TEST(LogHistogramTest, SmallValuesGetExactUnitBuckets) {
  for (std::uint64_t v = 0; v < LogHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LogHistogram::bucket_index(v), v);
    EXPECT_EQ(LogHistogram::bucket_lower(v), v);
    EXPECT_EQ(LogHistogram::bucket_upper(v), v);
  }
}

TEST(LogHistogramTest, BucketBoundarySweep) {
  // Every bucket's own bounds must map back into it, values one past either
  // bound into its neighbors, and the cover must be contiguous: each
  // bucket starts exactly where the previous one ended.
  for (std::size_t index = 0; index < LogHistogram::kBucketCount; ++index) {
    const std::uint64_t lower = LogHistogram::bucket_lower(index);
    const std::uint64_t upper = LogHistogram::bucket_upper(index);
    ASSERT_LE(lower, upper);
    EXPECT_EQ(LogHistogram::bucket_index(lower), index);
    EXPECT_EQ(LogHistogram::bucket_index(upper), index);
    if (index > 0) {
      EXPECT_EQ(LogHistogram::bucket_upper(index - 1) + 1, lower)
          << "gap below bucket " << index;
    }
    if (upper != ~std::uint64_t{0}) {
      EXPECT_EQ(LogHistogram::bucket_index(upper + 1), index + 1)
          << "bucket " << index;
    }
  }
  // The top bucket covers the end of the 64-bit range.
  EXPECT_EQ(LogHistogram::bucket_index(~std::uint64_t{0}),
            LogHistogram::kBucketCount - 1);
}

TEST(LogHistogramTest, RelativeErrorBoundedBySubBucketWidth) {
  // The defining property: bucket width / lower bound <= 1/16 above the
  // unit-bucket region, so any quantile estimate is within 6.25%.
  for (std::size_t index = LogHistogram::kSubBuckets;
       index < LogHistogram::kBucketCount; ++index) {
    const double lower =
        static_cast<double>(LogHistogram::bucket_lower(index));
    const double width =
        static_cast<double>(LogHistogram::bucket_upper(index)) - lower + 1.0;
    EXPECT_LE(width / lower, 1.0 / 16.0 + 1e-9) << "bucket " << index;
  }
}

TEST(LogHistogramTest, EmptyHistogramIsZero) {
  const LogHistogram histogram;
  EXPECT_EQ(histogram.total(), 0u);
  EXPECT_EQ(histogram.quantile(0.5), 0u);
  EXPECT_EQ(histogram.mean(), 0.0);
}

TEST(LogHistogramTest, MergeIsCommutativeAndEqualsRecordingTheUnion) {
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<std::uint64_t> wide(0, ~std::uint64_t{0});
  std::vector<std::uint64_t> sample_a, sample_b;
  for (int i = 0; i < 1000; ++i) sample_a.push_back(wide(rng) >> (i % 60));
  for (int i = 0; i < 700; ++i) sample_b.push_back(wide(rng) >> (i % 50));

  LogHistogram a, b, ab, ba, unioned;
  for (const auto v : sample_a) {
    a.record(v);
    unioned.record(v);
  }
  for (const auto v : sample_b) {
    b.record(v);
    unioned.record(v);
  }
  ab.merge(a);
  ab.merge(b);
  ba.merge(b);
  ba.merge(a);

  ASSERT_EQ(ab.total(), sample_a.size() + sample_b.size());
  ASSERT_EQ(ba.total(), ab.total());
  ASSERT_EQ(unioned.total(), ab.total());
  for (std::size_t i = 0; i < LogHistogram::kBucketCount; ++i) {
    EXPECT_EQ(ab.bucket_count_at(i), ba.bucket_count_at(i)) << "bucket " << i;
    EXPECT_EQ(ab.bucket_count_at(i), unioned.bucket_count_at(i))
        << "bucket " << i;
  }
  EXPECT_EQ(ab.quantile(0.99), unioned.quantile(0.99));
  EXPECT_EQ(ab.mean(), unioned.mean());
}

TEST(LogHistogramTest, WeightedRecordMatchesRepeatedRecord) {
  LogHistogram weighted, repeated;
  weighted.record(1000, 25);
  for (int i = 0; i < 25; ++i) repeated.record(1000);
  EXPECT_EQ(weighted.total(), repeated.total());
  EXPECT_EQ(weighted.quantile(0.5), repeated.quantile(0.5));
}

TEST(LogHistogramTest, QuantilesWithinOneBucketOfExactOnSeededInputs) {
  // Latency-shaped samples: lognormal body plus a uniform far tail. The
  // histogram's quantile must land in the same bucket as the exact order
  // statistic — i.e. between bucket_lower and bucket_upper of its bucket.
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> body(8.0, 1.0);   // ~3k ns median
  std::uniform_int_distribution<std::uint64_t> tail(100000, 10000000);
  std::vector<std::uint64_t> values;
  LogHistogram histogram;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t v = i % 100 == 0
                                ? tail(rng)
                                : static_cast<std::uint64_t>(body(rng));
    values.push_back(v);
    histogram.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    // Same rank convention as LogHistogram::quantile: the ceil(q*n)-th
    // smallest sample, 1-based, clamped to [1, n].
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    rank = std::clamp<std::size_t>(rank, 1, values.size());
    const std::uint64_t exact = values[rank - 1];
    const std::uint64_t estimate = histogram.quantile(q);
    // Within one bucket of exact: the estimate IS the inclusive upper bound
    // of the bucket holding the exact order statistic.
    const std::size_t exact_bucket = LogHistogram::bucket_index(exact);
    EXPECT_EQ(estimate, LogHistogram::bucket_upper(exact_bucket))
        << "q=" << q << " exact=" << exact;
    // Which implies the documented relative error bound.
    const double relative_error =
        std::abs(static_cast<double>(estimate) - static_cast<double>(exact)) /
        static_cast<double>(exact);
    EXPECT_LE(relative_error, 1.0 / 16.0) << "q=" << q;
  }
}

TEST(LogHistogramTest, QuantileEdgeCases) {
  LogHistogram histogram;
  histogram.record(100);
  histogram.record(200);
  histogram.record(300);
  // q clamps: 0 -> first sample's bucket, 1 -> last sample's bucket.
  EXPECT_EQ(histogram.quantile(0.0),
            LogHistogram::bucket_upper(LogHistogram::bucket_index(100)));
  EXPECT_EQ(histogram.quantile(1.0),
            LogHistogram::bucket_upper(LogHistogram::bucket_index(300)));
  EXPECT_EQ(histogram.quantile(-1.0), histogram.quantile(0.0));
  EXPECT_EQ(histogram.quantile(2.0), histogram.quantile(1.0));
}

}  // namespace
