// Incremental-update tests: the live decomposed table must stay equivalent
// to a linear-search FlowTable under arbitrary interleavings of entry
// insertions and removals — across EM, LPM and RM fields — and unique field
// values must be physically evicted when their last entry leaves.
#include <gtest/gtest.h>

#include <functional>

#include "classifier/range_matcher.hpp"
#include "core/builder.hpp"
#include "core/lookup_table.hpp"
#include "core/pipeline.hpp"
#include "flow/flow_table.hpp"
#include "workload/acl_synth.hpp"
#include "workload/rng.hpp"
#include "workload/stanford_synth.hpp"
#include "workload/trace_gen.hpp"

namespace ofmtl {
namespace {

FlowEntry simple_entry(FlowEntryId id, std::uint16_t priority, FlowMatch match,
                       std::uint32_t port) {
  FlowEntry entry;
  entry.id = id;
  entry.priority = priority;
  entry.match = std::move(match);
  entry.instructions = output_instruction(port);
  return entry;
}

TEST(IncrementalLookupTable, InsertThenRemoveRoundTrip) {
  LookupTable table({FieldId::kVlanId}, {});
  EXPECT_EQ(table.entry_count(), 0U);

  FlowMatch m;
  m.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{7}));
  table.insert_entry(simple_entry(1, 5, m, 3));
  EXPECT_EQ(table.entry_count(), 1U);

  PacketHeader h;
  h.set_vlan_id(7);
  ASSERT_NE(table.lookup(h), nullptr);
  EXPECT_EQ(table.lookup(h)->id, 1U);

  EXPECT_TRUE(table.remove_entry(1));
  EXPECT_EQ(table.lookup(h), nullptr);
  EXPECT_EQ(table.entry_count(), 0U);
  EXPECT_FALSE(table.remove_entry(1));
}

TEST(IncrementalLookupTable, DuplicateIdRejected) {
  LookupTable table({FieldId::kVlanId}, {});
  FlowMatch m;
  m.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{1}));
  table.insert_entry(simple_entry(9, 1, m, 1));
  EXPECT_THROW(table.insert_entry(simple_entry(9, 1, m, 2)),
               std::invalid_argument);
}

TEST(IncrementalLookupTable, SharedValueSurvivesPartialRemoval) {
  // Two entries share VLAN 7; removing one must keep the value alive.
  LookupTable table({FieldId::kVlanId, FieldId::kEthDst}, {});
  FlowMatch m1, m2;
  m1.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{7}));
  m1.set(FieldId::kEthDst, FieldMatch::exact(std::uint64_t{0xA}));
  m2.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{7}));
  m2.set(FieldId::kEthDst, FieldMatch::exact(std::uint64_t{0xB}));
  table.insert_entry(simple_entry(1, 1, m1, 1));
  table.insert_entry(simple_entry(2, 1, m2, 2));

  EXPECT_TRUE(table.remove_entry(1));
  PacketHeader h;
  h.set_vlan_id(7);
  h.set_eth_dst(MacAddress{0xB});
  ASSERT_NE(table.lookup(h), nullptr);
  EXPECT_EQ(table.lookup(h)->id, 2U);
  h.set_eth_dst(MacAddress{0xA});
  EXPECT_EQ(table.lookup(h), nullptr);
}

TEST(IncrementalLookupTable, UniqueValueEvictedWithLastEntry) {
  LookupTable table({FieldId::kIpv4Dst}, {});
  FlowMatch m;
  m.set(FieldId::kIpv4Dst,
        FieldMatch::of_prefix(Prefix::from_value(0x0A000000, 8, 32)));
  table.insert_entry(simple_entry(1, 8, m, 1));
  const auto& tries = table.field_searches()[0].tries();
  EXPECT_EQ(tries[0].prefix_count(), 1U);
  EXPECT_EQ(tries[1].prefix_count(), 1U);  // wildcard low partition (/0)

  table.remove_entry(1);
  EXPECT_EQ(tries[0].prefix_count(), 0U);
  EXPECT_EQ(tries[1].prefix_count(), 0U);
  const auto unique = table.field_searches()[0].unique_values();
  EXPECT_EQ(unique[0], 0U);
}

TEST(IncrementalLookupTable, SlotReuseKeepsCorrectActions) {
  LookupTable table({FieldId::kVlanId}, {});
  FlowMatch m1, m2;
  m1.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{1}));
  m2.set(FieldId::kVlanId, FieldMatch::exact(std::uint64_t{2}));
  table.insert_entry(simple_entry(1, 1, m1, 10));
  table.remove_entry(1);
  table.insert_entry(simple_entry(2, 1, m2, 20));  // reuses slot 0

  PacketHeader h;
  h.set_vlan_id(2);
  const FlowEntry* entry = table.lookup(h);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->id, 2U);
  EXPECT_EQ(entry->instructions, output_instruction(20));
  h.set_vlan_id(1);
  EXPECT_EQ(table.lookup(h), nullptr);
}

TEST(IncrementalLookupTable, WildcardRefcountAcrossRules) {
  // Two rules wildcard the VLAN; the any-label must survive one removal.
  LookupTable table({FieldId::kVlanId, FieldId::kEthDst}, {});
  FlowMatch m1, m2;
  m1.set(FieldId::kEthDst, FieldMatch::exact(std::uint64_t{0xA}));
  m2.set(FieldId::kEthDst, FieldMatch::exact(std::uint64_t{0xB}));
  table.insert_entry(simple_entry(1, 1, m1, 1));
  table.insert_entry(simple_entry(2, 1, m2, 2));
  table.remove_entry(1);

  PacketHeader h;
  h.set_vlan_id(999);  // any VLAN
  h.set_eth_dst(MacAddress{0xB});
  ASSERT_NE(table.lookup(h), nullptr);
  EXPECT_EQ(table.lookup(h)->id, 2U);
}

// ---- randomized churn against the FlowTable oracle ----

struct ChurnCase {
  const char* name;
  std::vector<FieldId> fields;
  std::function<FlowMatch(workload::Rng&)> make_match;
};

FlowMatch random_acl_match(workload::Rng& rng) {
  FlowMatch match;
  const unsigned src_len = static_cast<unsigned>(rng.below(33));
  match.set(FieldId::kIpv4Src,
            FieldMatch::of_prefix(
                Prefix::from_value(rng.next() & 0xFFFFFFFF, src_len, 32)));
  const std::uint64_t lo = rng.below(60000);
  match.set(FieldId::kDstPort, FieldMatch::of_range(lo, lo + rng.below(1000)));
  if (rng.chance(0.6)) {
    match.set(FieldId::kIpProto,
              FieldMatch::exact(std::uint64_t{rng.chance(0.5) ? 6U : 17U}));
  }
  return match;
}

FlowMatch random_mac_match(workload::Rng& rng) {
  FlowMatch match;
  match.set(FieldId::kVlanId, FieldMatch::exact(rng.below(32)));
  match.set(FieldId::kEthDst, FieldMatch::exact(rng.below(64)));
  return match;
}

class IncrementalChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalChurn, StaysEquivalentToFlowTable) {
  workload::Rng rng(GetParam());
  const bool acl_mode = GetParam() % 2 == 0;
  const std::vector<FieldId> fields =
      acl_mode ? std::vector<FieldId>{FieldId::kIpv4Src, FieldId::kDstPort,
                                      FieldId::kIpProto}
               : std::vector<FieldId>{FieldId::kVlanId, FieldId::kEthDst};

  LookupTable table(fields, {});
  FlowTable oracle;
  std::vector<FlowEntry> live;
  FlowEntryId next_id = 0;

  for (int step = 0; step < 300; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      FlowEntry entry = simple_entry(
          next_id++, static_cast<std::uint16_t>(rng.below(8)),
          acl_mode ? random_acl_match(rng) : random_mac_match(rng),
          static_cast<std::uint32_t>(1 + rng.below(16)));
      table.insert_entry(entry);
      oracle.insert(entry);
      live.push_back(entry);
    } else {
      const std::size_t victim = rng.below(live.size());
      const FlowEntryId id = live[victim].id;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      EXPECT_TRUE(table.remove_entry(id));
      EXPECT_TRUE(oracle.remove(id));
    }
    EXPECT_EQ(table.entry_count(), oracle.size());

    if (step % 10 == 0) {
      for (int probe = 0; probe < 40; ++probe) {
        PacketHeader header;
        if (!live.empty() && rng.chance(0.7)) {
          const auto& target = live[rng.below(live.size())];
          header = workload::header_matching(target.match, fields, rng.next());
        } else {
          header = workload::random_header(fields, rng.next());
        }
        const FlowEntry* expected = oracle.lookup(header);
        const FlowEntry* actual = table.lookup(header);
        ASSERT_EQ(actual == nullptr, expected == nullptr)
            << "step " << step << " " << header.to_string();
        if (expected != nullptr) {
          // Both sides tie-break equal priorities by insertion order (the
          // oracle by stable sort, the table by sequence number), so the
          // winning entry must be identical.
          EXPECT_EQ(actual->id, expected->id) << header.to_string();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalChurn,
                         ::testing::Values(2, 3, 4, 5, 10, 11));

TEST(IncrementalPipeline, FlowModOnLivePipeline) {
  // Start from a compiled MAC app, then mutate table 1 live: remove one
  // learned MAC, add a new one, and check the reference pipeline (mutated
  // identically) still agrees end-to-end.
  const auto set = workload::generate_mac_filterset(workload::mac_target("bbrb"));
  auto spec = build_app(set, TableLayout::kPerFieldTables);
  auto pipeline = compile_app(spec);

  // Remove the first table-1 entry from both.
  const auto table1_entries = pipeline.table(1).entries();
  ASSERT_FALSE(table1_entries.empty());
  const FlowEntry victim = table1_entries.front();
  ASSERT_TRUE(pipeline.remove_entry(1, victim.id));
  ASSERT_TRUE(spec.reference.table(1).remove(victim.id));

  // Add a fresh entry reachable through an existing table-0 metadata label.
  FlowEntry fresh = victim;
  fresh.id = 0xFFFF0;
  fresh.match.set(FieldId::kEthDst,
                  FieldMatch::exact(std::uint64_t{0x02DEADBEEF01}));
  fresh.instructions = output_instruction(42);
  pipeline.insert_entry(1, fresh);
  spec.reference.table(1).insert(fresh);

  const auto trace = workload::generate_trace(
      set, {.packets = 500, .hit_ratio = 0.8, .seed = 31});
  for (const auto& header : trace) {
    EXPECT_EQ(pipeline.execute(header), spec.reference.execute(header))
        << header.to_string();
  }
  // The fresh entry is actually reachable.
  PacketHeader h;
  h.set_vlan_id(victim.match.get(FieldId::kVlanId).value.lo);
  h.set_eth_dst(MacAddress{0x02DEADBEEF01ULL});
  // Table 0 matches on the VLAN of some original rule... resolve via the
  // reference pipeline and demand agreement.
  EXPECT_EQ(pipeline.execute(h), spec.reference.execute(h));
}

TEST(IncrementalLookupTable, RangeFieldChurn) {
  LookupTable table({FieldId::kSrcPort}, {});
  FlowMatch wide, narrow;
  wide.set(FieldId::kSrcPort, FieldMatch::of_range(0, 65535));
  narrow.set(FieldId::kSrcPort, FieldMatch::of_range(80, 80));
  table.insert_entry(simple_entry(1, 1, wide, 1));
  table.insert_entry(simple_entry(2, 9, narrow, 2));

  PacketHeader h;
  h.set_src_port(80);
  EXPECT_EQ(table.lookup(h)->id, 2U);
  table.remove_entry(2);
  EXPECT_EQ(table.lookup(h)->id, 1U);
  table.remove_entry(1);
  EXPECT_EQ(table.lookup(h), nullptr);
  // Re-adding after full removal works (label revival).
  table.insert_entry(simple_entry(3, 1, narrow, 3));
  EXPECT_EQ(table.lookup(h)->id, 3U);
  EXPECT_EQ(table.field_searches()[0].unique_values()[0], 1U);
}

/// Property: a RangeMatcher maintained through arbitrary add/remove churn
/// answers every lookup exactly like a matcher freshly built from the live
/// multiset. Labels may differ between the two instances (assignment order),
/// so lookups are compared as the *ranges* they name, narrowest first.
void expect_churned_matches_rebuilt(unsigned width, std::uint64_t seed) {
  using workload::Rng;
  const std::uint64_t max = low_mask(width);
  Rng rng(seed);
  RangeMatcher churned(width);
  std::vector<ValueRange> live;  // multiset of currently-held references
  const auto random_range = [&] {
    const std::uint64_t lo = rng.next() & max;
    const std::uint64_t hi = std::min<std::uint64_t>(max, lo + rng.below(5000));
    return ValueRange{lo, hi};
  };
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 60; ++i) {
      if (!live.empty() && rng.below(3) == 0) {
        const std::size_t victim = rng.below(live.size());
        ASSERT_TRUE(churned.remove(live[victim]));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      } else {
        const ValueRange range =
            (!live.empty() && rng.below(4) == 0)  // duplicate ref
                ? live[rng.below(live.size())]
                : random_range();
        churned.add(range);
        live.push_back(range);
      }
    }
    churned.seal();
    RangeMatcher rebuilt(width);
    for (const ValueRange& range : live) rebuilt.add(range);
    rebuilt.seal();
    ASSERT_EQ(churned.unique_ranges(), rebuilt.unique_ranges());
    const auto as_ranges = [](const RangeMatcher& matcher,
                              const std::vector<std::uint32_t>& labels) {
      std::vector<ValueRange> ranges;
      ranges.reserve(labels.size());
      for (const std::uint32_t label : labels) {
        ranges.push_back(matcher.range_of(label));
      }
      return ranges;
    };
    for (int probe = 0; probe < 400; ++probe) {
      std::uint64_t key = rng.next() & max;
      if (probe % 3 == 0 && !live.empty()) {  // hit boundaries exactly
        const ValueRange& range = live[rng.below(live.size())];
        key = probe % 2 == 0 ? range.lo : range.hi;
      }
      ASSERT_EQ(as_ranges(churned, churned.lookup(key)),
                as_ranges(rebuilt, rebuilt.lookup(key)))
          << "round=" << round << " key=" << key;
    }
  }
}

TEST(IncrementalRangeMatcher, ChurnMatchesRebuiltNarrowField) {
  expect_churned_matches_rebuilt(16, 4711);  // rank-select path
}

TEST(IncrementalRangeMatcher, ChurnMatchesRebuiltWideField) {
  expect_churned_matches_rebuilt(32, 4712);  // branchless-search path
}

TEST(IncrementalRangeMatcher, ResealOfUntouchedMatcherDoesNotSweep) {
  RangeMatcher ranges(16);
  ranges.add({10, 99});
  ranges.add({50, 60});
  ranges.seal();
  EXPECT_EQ(ranges.seal_sweeps(), 1U);
  ranges.seal();  // untouched: no sweep
  EXPECT_EQ(ranges.seal_sweeps(), 1U);
  // Reference-count churn that never changes the live set stays sealed.
  ranges.add({10, 99});
  ranges.remove({10, 99});
  ranges.seal();
  EXPECT_EQ(ranges.seal_sweeps(), 1U);
  // Any amount of live-set churn costs exactly one sweep at the next seal.
  ranges.add({1, 5});
  ranges.add({2, 8});
  ranges.remove({50, 60});
  ranges.seal();
  EXPECT_EQ(ranges.seal_sweeps(), 2U);
  EXPECT_EQ(ranges.lookup(3).size(), 2U);
}

}  // namespace
}  // namespace ofmtl
