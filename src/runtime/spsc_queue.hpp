// Fixed-capacity single-producer/single-consumer ring buffer — the per-queue
// packet-batch channel of the parallel runtime. One producer thread pushes,
// one consumer thread (the queue's worker) pops; both sides are lock-free
// and allocation-free after construction. Head and tail live on separate
// cache lines so the two sides do not false-share.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "runtime/cache_line.hpp"

namespace ofmtl::runtime {

/// Fixed-capacity single-producer/single-consumer ring. Kept alongside
/// StealQueue for callers that want strict two-thread ownership with plain
/// load/store cursors (no CAS); the runtime itself uses StealQueue.
template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity) {
    std::size_t rounded = 2;
    while (rounded < capacity) rounded <<= 1;
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }

  /// Producer side. Returns false when the ring is full (backpressure).
  bool try_push(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Racy emptiness check — exact only on the consumer thread.
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }
  /// Rounded-up slot count.
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace ofmtl::runtime
