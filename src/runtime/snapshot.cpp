#include "runtime/snapshot.hpp"

namespace ofmtl::runtime {

SnapshotClassifier::SnapshotClassifier(MultiTableLookup initial)
    : master_(std::move(initial)) {
  live_ = std::make_shared<const ClassifierSnapshot>(
      ClassifierSnapshot{master_.clone(), 0});
}

std::shared_ptr<const ClassifierSnapshot> SnapshotClassifier::acquire() const {
  const std::lock_guard<std::mutex> lock(publish_mutex_);
  return live_;
}

std::uint64_t SnapshotClassifier::epoch() const {
  const std::lock_guard<std::mutex> lock(publish_mutex_);
  return live_->epoch;
}

void SnapshotClassifier::publish_locked() {
  // Build the snapshot outside publish_mutex_ (cloning recompiles the
  // tables — milliseconds), then swap the pointer inside it (nanoseconds).
  // Readers keep classifying against the old snapshot the whole time.
  auto snapshot = std::make_shared<const ClassifierSnapshot>(
      ClassifierSnapshot{master_.clone(), next_epoch_++});
  const std::lock_guard<std::mutex> lock(publish_mutex_);
  live_ = std::move(snapshot);
}

void SnapshotClassifier::insert_entry(std::size_t table, FlowEntry entry) {
  const std::lock_guard<std::mutex> lock(write_mutex_);
  master_.insert_entry(table, std::move(entry));
  publish_locked();
}

bool SnapshotClassifier::remove_entry(std::size_t table, FlowEntryId id) {
  const std::lock_guard<std::mutex> lock(write_mutex_);
  if (!master_.remove_entry(table, id)) return false;
  publish_locked();
  return true;
}

void SnapshotClassifier::update(
    const std::function<void(MultiTableLookup&)>& mutate) {
  const std::lock_guard<std::mutex> lock(write_mutex_);
  mutate(master_);
  publish_locked();
}

}  // namespace ofmtl::runtime
