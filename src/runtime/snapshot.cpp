#include "runtime/snapshot.hpp"

#include <thread>

#include "obs/tracer.hpp"

namespace ofmtl::runtime {

SnapshotClassifier::SnapshotClassifier(MultiTableLookup initial)
    : sides_{MultiTableLookup{}, MultiTableLookup{}} {
  sides_[0] = std::move(initial);
  // clone() replays entries in insertion order, so both sides tie-break
  // equal priorities identically; from here on the sides only ever receive
  // the same op sequence and stay behaviourally identical.
  sides_[1] = sides_[0].clone();
}

SnapshotClassifier::ReadGuard SnapshotClassifier::acquire() const {
  // Arrive on the current indicator BEFORE reading the active side: the
  // writer drains this indicator before touching the side the load below
  // can return, so the side stays frozen for the guard's lifetime.
  const std::size_t vi = version_index_.load(std::memory_order_seq_cst);
  readers_[vi].count.fetch_add(1, std::memory_order_seq_cst);
  const std::size_t side = active_side_.load(std::memory_order_seq_cst);
  return ReadGuard{this, vi, &sides_[side], side_epoch_[side]};
}

void SnapshotClassifier::wait_for_readers(std::size_t indicator) const {
  while (readers_[indicator].count.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
}

void SnapshotClassifier::resync_side(std::size_t side) {
  sides_[side] = sides_[1 - side].clone();
  side_epoch_[side] = side_epoch_[1 - side];
}

template <typename Op>
bool SnapshotClassifier::publish(Op&& op) {
  const std::size_t active = active_side_.load(std::memory_order_relaxed);
  const std::size_t inactive = 1 - active;
  OFMTL_OBS_EMIT(obs::TraceEvent::kPublishBegin, 0, next_epoch_);
  // 1. Apply to the inactive side — no reader can hold it (the previous
  // publish drained them). A throwing op may leave the side half-mutated;
  // resync it from the untouched active side so the pair cannot diverge.
  try {
    if (!op(sides_[inactive])) {
      // No-op: close the slice so the trace shows the rejected publish too.
      OFMTL_OBS_EMIT(obs::TraceEvent::kPublishEnd, 0, next_epoch_);
      return false;
    }
  } catch (...) {
    resync_side(inactive);
    throw;
  }
  side_epoch_[inactive] = next_epoch_;
  // 2. Swap: new readers now pin the freshly updated side.
  active_side_.store(inactive, std::memory_order_seq_cst);
  // 3. Drain both indicators in version-index-toggle order. After the
  // second wait no reader can still hold the old side: readers arriving
  // once version_index_ flipped mark the other indicator and (by the
  // seq_cst total order) observe the new active_side_.
  const std::size_t vi = version_index_.load(std::memory_order_relaxed);
  wait_for_readers(1 - vi);
  version_index_.store(1 - vi, std::memory_order_seq_cst);
  wait_for_readers(vi);
  // 4. Apply to the old side (now reader-free), converging the pair. A
  // deterministic op cannot fail here having succeeded in step 1; if it
  // somehow does, repair the lagging replica — the publish itself stands.
  try {
    if (!op(sides_[active])) {
      resync_side(active);
      ++next_epoch_;
      OFMTL_OBS_EMIT(obs::TraceEvent::kPublishEnd, 0, next_epoch_);
      return true;
    }
  } catch (...) {
    resync_side(active);
    ++next_epoch_;
    OFMTL_OBS_EMIT(obs::TraceEvent::kPublishEnd, 0, next_epoch_);
    return true;
  }
  side_epoch_[active] = next_epoch_;
  ++next_epoch_;
  OFMTL_OBS_EMIT(obs::TraceEvent::kPublishEnd, 0, next_epoch_);
  return true;
}

void SnapshotClassifier::insert_entry(std::size_t table, FlowEntry entry) {
  const std::lock_guard<std::mutex> lock(write_mutex_);
  // Reject routine bad input (unknown table, duplicate id) before the
  // in-place apply: rejections that throw mid-op look like a half-mutated
  // side and would pay the O(table) resync. Both sides are logically
  // identical under the write lock, so checking one suffices.
  if (sides_[0].contains_entry(table, entry.id)) {
    throw std::invalid_argument("insert_entry: duplicate entry id");
  }
  (void)publish([&](MultiTableLookup& side) {
    side.insert_entry(table, entry);  // copies: the op runs once per side
    return true;
  });
}

bool SnapshotClassifier::remove_entry(std::size_t table, FlowEntryId id) {
  const std::lock_guard<std::mutex> lock(write_mutex_);
  // As in insert_entry: surface an unknown table index before the apply
  // (remove of an absent id is already a mutation-free `return false`).
  (void)sides_[0].table(table);
  return publish([&](MultiTableLookup& side) {
    return side.remove_entry(table, id);
  });
}

void SnapshotClassifier::update(
    const std::function<void(MultiTableLookup&)>& mutate) {
  const std::lock_guard<std::mutex> lock(write_mutex_);
  (void)publish([&](MultiTableLookup& side) {
    mutate(side);
    return true;
  });
}

}  // namespace ofmtl::runtime
