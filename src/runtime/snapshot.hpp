// Left-right snapshot handoff for the classification state: two long-lived
// MultiTableLookup replicas ("sides"); readers pin the active side through a
// wait-free epoch/refcount guard, the writer applies every flow-mod TWICE —
// once to the inactive side, swap, once to the now-inactive side — so
// publish cost is O(delta of the flow-mod), independent of table size. This
// replaces the PR-2 clone-per-publish RCU scheme, whose O(table) clone
// capped churn at tens of publishes/sec on large rule sets.
//
// The protocol is the left-right technique of Ramalhete & Correia: an
// `active side` index says which replica readers use, a separate `version
// index` says which of two read indicators arriving readers mark, and the
// writer drains both indicators (in versionIndex-toggle order) between the
// swap and the second apply, so it never mutates a side a reader still
// holds. Reads are wait-free (one fetch_add + one fetch_sub per guard, no
// locks, no allocation); writers block for at most the longest in-flight
// read section (one batch). The full memory-ordering argument lives in
// docs/ARCHITECTURE.md.
//
// Concurrency contract:
//   - any number of reader threads; writers are serialized internally
//   - a ReadGuard pins one side at one epoch; batches classified under one
//     guard are wholly pre- or wholly post- any concurrent flow-mod
//   - a thread holding a ReadGuard must NOT call the writer API (the writer
//     waits for that very guard to depart — self-deadlock)
//   - update() callables run once per side and must be deterministic
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>

#include "core/pipeline.hpp"
#include "runtime/cache_line.hpp"

namespace ofmtl::runtime {

/// Two-replica left-right classification state with O(delta) publish.
class SnapshotClassifier {
 public:
  /// Builds the two sides: one by moving `initial` in, the other as its
  /// clone — the only O(table) cost in the classifier's lifetime.
  explicit SnapshotClassifier(MultiTableLookup initial);

  SnapshotClassifier(const SnapshotClassifier&) = delete;
  SnapshotClassifier& operator=(const SnapshotClassifier&) = delete;

  /// Reader-side pin on one side of the pair. Move-only; departs its read
  /// indicator on destruction. Holding a guard blocks writers (they wait for
  /// readers to drain before reusing the side), so keep read sections
  /// batch-sized, and never call the writer API while holding one.
  class ReadGuard {
   public:
    ReadGuard(ReadGuard&& other) noexcept
        : owner_(std::exchange(other.owner_, nullptr)),
          indicator_(other.indicator_),
          tables_(other.tables_),
          epoch_(other.epoch_) {}
    ReadGuard& operator=(ReadGuard&& other) noexcept {
      if (this != &other) {
        release();
        owner_ = std::exchange(other.owner_, nullptr);
        indicator_ = other.indicator_;
        tables_ = other.tables_;
        epoch_ = other.epoch_;
      }
      return *this;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ~ReadGuard() { release(); }

    /// The pinned replica. Valid until the guard is destroyed/moved-from.
    [[nodiscard]] const MultiTableLookup& tables() const { return *tables_; }
    /// Publish epoch of the pinned replica (monotonic, one per flow-mod).
    [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

   private:
    friend class SnapshotClassifier;
    ReadGuard(const SnapshotClassifier* owner, std::size_t indicator,
              const MultiTableLookup* tables, std::uint64_t epoch)
        : owner_(owner), indicator_(indicator), tables_(tables), epoch_(epoch) {}
    void release() {
      if (owner_ == nullptr) return;
      owner_->readers_[indicator_].count.fetch_sub(1,
                                                   std::memory_order_release);
      owner_ = nullptr;
    }
    const SnapshotClassifier* owner_ = nullptr;
    std::size_t indicator_ = 0;
    const MultiTableLookup* tables_ = nullptr;
    std::uint64_t epoch_ = 0;
  };

  /// Reader side: pin the active side. Wait-free, allocation-free; one guard
  /// per batch (not per packet) tracks updates at batch boundaries.
  [[nodiscard]] ReadGuard acquire() const;

  /// Current publish epoch (the epoch acquire() would observe).
  [[nodiscard]] std::uint64_t epoch() const { return acquire().epoch(); }

  /// Writer side: apply one flow-mod to both sides and publish. O(delta),
  /// not O(table) — the sides are updated in place, never cloned.
  void insert_entry(std::size_t table, FlowEntry entry);
  bool remove_entry(std::size_t table, FlowEntryId id);

  /// Writer side, coalesced: apply an arbitrary mutation and publish once.
  /// `mutate` is invoked once per side (twice total) on replicas with
  /// identical logical content — it must be deterministic and safe to call
  /// twice (no moved-from captures, no external side effects).
  void update(const std::function<void(MultiTableLookup&)>& mutate);

 private:
  struct alignas(kCacheLine) ReadIndicator {
    std::atomic<std::uint64_t> count{0};
  };

  /// Left-right write protocol around `op` (bool(MultiTableLookup&), returns
  /// whether it mutated). Caller holds write_mutex_. Returns whether a new
  /// epoch was published; when op reports no change on the first side, the
  /// pair is left untouched and nothing publishes.
  template <typename Op>
  bool publish(Op&& op);
  /// Spin until the given indicator has no registered readers.
  void wait_for_readers(std::size_t indicator) const;
  /// Exception recovery: rebuild side `side` from the other side's content
  /// so the pair cannot diverge. O(table), exceptional path only.
  void resync_side(std::size_t side);

  mutable std::mutex write_mutex_;  // serializes writers
  MultiTableLookup sides_[2];       // the replica pair (writer-owned halves)
  std::uint64_t side_epoch_[2] = {0, 0};  // written only while writer owns
  std::uint64_t next_epoch_ = 1;
  // seq_cst throughout: the drain-vs-late-arrival race is excluded by the
  // single total order (see docs/ARCHITECTURE.md); these are one load/RMW
  // per *batch* on the read side, so the fence cost is noise.
  std::atomic<std::size_t> active_side_{0};
  std::atomic<std::size_t> version_index_{0};
  mutable ReadIndicator readers_[2];
};

}  // namespace ofmtl::runtime
