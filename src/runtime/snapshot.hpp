// RCU-style snapshot handoff for the classification state: readers grab an
// immutable, epoch-stamped MultiTableLookup snapshot via shared_ptr (one
// grab per batch, not per packet); the writer applies controller flow-mods
// to a private master copy, clones it outside any reader-visible lock, and
// publishes with a pointer swap. Old snapshots stay valid for the readers
// still holding them and are reclaimed by the last shared_ptr release — the
// read-copy-update discipline without explicit grace periods. The pointer
// itself is guarded by a mutex held only for the copy/swap (a few
// instructions): readers never wait on table recompilation, only on that
// swap window; swapping to std::atomic<shared_ptr> would shave the
// remaining per-batch lock if profiles ever show contention.
//
// Concurrency contract: any number of reader threads; writers are serialized
// internally (multiple control-plane threads may call the mutating API).
// Readers see either the pre- or the post-mod snapshot, never a partially
// updated one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "core/pipeline.hpp"

namespace ofmtl::runtime {

/// One immutable published classification state.
struct ClassifierSnapshot {
  MultiTableLookup tables;
  std::uint64_t epoch = 0;  ///< monotonically increasing publish counter
};

class SnapshotClassifier {
 public:
  explicit SnapshotClassifier(MultiTableLookup initial);

  /// Reader side: the current snapshot. Holding the returned pointer pins
  /// that snapshot (not the writer); re-acquire per batch to track updates.
  [[nodiscard]] std::shared_ptr<const ClassifierSnapshot> acquire() const;

  /// Current publish epoch (the epoch of the snapshot acquire() would
  /// return).
  [[nodiscard]] std::uint64_t epoch() const;

  /// Writer side: apply one flow-mod to the master copy and publish.
  void insert_entry(std::size_t table, FlowEntry entry);
  bool remove_entry(std::size_t table, FlowEntryId id);

  /// Writer side, coalesced: apply an arbitrary mutation to the master copy
  /// (any number of insert_entry/remove_entry calls) and publish once.
  void update(const std::function<void(MultiTableLookup&)>& mutate);

 private:
  void publish_locked();  // clone master -> new snapshot, swap the pointer

  mutable std::mutex write_mutex_;    // serializes writers + master access
  mutable std::mutex publish_mutex_;  // guards the live_ pointer swap/copy
  MultiTableLookup master_;           // always-current mutable copy
  std::uint64_t next_epoch_ = 1;
  std::shared_ptr<const ClassifierSnapshot> live_;
};

}  // namespace ofmtl::runtime
