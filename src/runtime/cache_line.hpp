// Shared cache-line constant for the runtime's concurrency primitives.
#pragma once

#include <cstddef>

namespace ofmtl::runtime {

/// Fixed 64 rather than std::hardware_destructive_interference_size: the
/// value is an ABI hazard GCC warns about (-Winterference-size), and 64 is
/// the destructive-interference line on every target this builds for.
inline constexpr std::size_t kCacheLine = 64;

}  // namespace ofmtl::runtime
