// The parallel multi-queue classification runtime: N worker threads, each
// owning one SPSC packet-batch queue plus its own SearchContext /
// ExecBatchContext scratch, draining batches through
// MultiTableLookup::execute_batch against the current RCU snapshot
// (SnapshotClassifier). The sharded-queue shape mirrors NIC RSS: a producer
// hashes flows onto queues, each queue is serviced by exactly one worker, so
// the data plane runs without locks between packets — the only cross-thread
// synchronization is one snapshot acquire per batch and the completion
// ticket.
//
// Ownership rules (mirrors the SearchContext rules in README):
//   - one queue <-> one worker; one producer thread per queue
//   - headers/results of a submitted batch are caller-owned and must stay
//     alive until the ticket completes; results are rewritten in place
//   - worker loops are allocation-free in steady state (warmed contexts,
//     lock-free ring, shared_ptr snapshot copies)
//   - flow-mods go through the runtime's writer API; workers pick the new
//     snapshot up at their next batch boundary
//   - a GroupTable attached via set_group_table is externally owned and
//     pointer-shared by every snapshot (not RCU-protected): it must stay
//     immutable while the runtime is live
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "runtime/snapshot.hpp"
#include "runtime/spsc_queue.hpp"

namespace ofmtl::runtime {

struct RuntimeConfig {
  std::size_t workers = 1;          ///< queues == workers
  std::size_t queue_capacity = 64;  ///< in-flight batches per queue
};

/// Completion token of one or more submitted batches. The submitter owns it
/// and must keep it alive until done(); reuse across submissions is fine
/// once drained.
class BatchTicket {
 public:
  [[nodiscard]] bool done() const {
    return pending_.load(std::memory_order_acquire) == 0;
  }
  /// Spin-yield until every attached batch completed. After wait() the
  /// batch results are visible to the caller.
  void wait() const {
    while (!done()) std::this_thread::yield();
  }
  /// Epoch of the snapshot that served the last completing batch — lets
  /// concurrency tests pin a result to a pre-/post-update snapshot.
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }
  /// True if any attached batch's lookup threw (its results are
  /// unspecified). Sticky until reset().
  [[nodiscard]] bool failed() const {
    return failed_.load(std::memory_order_acquire);
  }
  /// Clear the sticky failure flag before reusing a drained ticket.
  void reset() { failed_.store(false, std::memory_order_relaxed); }

 private:
  friend class ParallelRuntime;
  void attach() { pending_.fetch_add(1, std::memory_order_relaxed); }
  void detach() { pending_.fetch_sub(1, std::memory_order_release); }
  void fail() { failed_.store(true, std::memory_order_release); }
  void complete(std::uint64_t epoch) {
    epoch_.store(epoch, std::memory_order_relaxed);
    detach();
  }
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> failed_{false};
};

struct WorkerStats {
  std::uint64_t batches = 0;  ///< drained batches, errored ones included
  std::uint64_t packets = 0;  ///< successfully classified packets
  std::uint64_t errors = 0;   ///< batches whose lookup threw (results in
                              ///< those batches are unspecified)
};

class ParallelRuntime {
 public:
  explicit ParallelRuntime(MultiTableLookup tables, RuntimeConfig config = {});
  ~ParallelRuntime();

  ParallelRuntime(const ParallelRuntime&) = delete;
  ParallelRuntime& operator=(const ParallelRuntime&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// --- control plane (serialized writers, RCU publish) ---
  void insert_entry(std::size_t table, FlowEntry entry) {
    classifier_.insert_entry(table, std::move(entry));
  }
  bool remove_entry(std::size_t table, FlowEntryId id) {
    return classifier_.remove_entry(table, id);
  }
  void update(const std::function<void(MultiTableLookup&)>& mutate) {
    classifier_.update(mutate);
  }
  [[nodiscard]] std::uint64_t epoch() const { return classifier_.epoch(); }
  [[nodiscard]] const SnapshotClassifier& classifier() const {
    return classifier_;
  }

  /// --- data plane (one producer per queue) ---
  /// Hand a caller-owned batch to `queue`; results[i] will be rewritten to
  /// execute(headers[i]) against one consistent snapshot. Returns false when
  /// the queue is full (caller applies backpressure). `ticket` may be
  /// shared across submissions or null (fire-and-forget is only safe if the
  /// caller joins through stop()).
  bool try_submit(std::size_t queue, std::span<const PacketHeader> headers,
                  std::span<ExecutionResult> results, BatchTicket* ticket);

  /// Convenience: submit (spinning while the queue is full) and wait.
  /// Throws std::runtime_error if the batch's lookup threw in the worker
  /// (mirroring what single-threaded execute() would have surfaced).
  void classify(std::size_t queue, std::span<const PacketHeader> headers,
                std::span<ExecutionResult> results);

  /// Drain every queue and join the workers. Idempotent; the destructor
  /// calls it. No submissions may race with or follow stop().
  void stop();

  [[nodiscard]] WorkerStats stats(std::size_t worker) const;
  [[nodiscard]] WorkerStats total_stats() const;

 private:
  struct WorkItem {
    const PacketHeader* headers = nullptr;
    ExecutionResult* results = nullptr;
    std::size_t count = 0;
    BatchTicket* ticket = nullptr;
  };

  /// One worker shard: queue + scratch + stats, cache-line aligned so
  /// neighbouring shards never false-share.
  struct alignas(kCacheLine) Worker {
    explicit Worker(std::size_t queue_capacity) : queue(queue_capacity) {}
    SpscQueue<WorkItem> queue;
    ExecBatchContext ctx;
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> packets{0};
    std::atomic<std::uint64_t> errors{0};
    std::thread thread;
  };

  void worker_loop(Worker& worker);

  SnapshotClassifier classifier_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> running_{true};
};

}  // namespace ofmtl::runtime
