// The parallel multi-queue classification runtime: N worker threads, each
// owning one packet-batch queue plus its own SearchContext /
// ExecBatchContext scratch, draining batches through
// MultiTableLookup::execute_batch against the current left-right snapshot
// side (SnapshotClassifier). The sharded-queue shape mirrors NIC RSS: a
// producer hashes flows onto queues, each queue is serviced by its worker —
// and, when that worker's ring runs dry, by any idle sibling stealing from
// it — so skewed submitters no longer leave workers idle. The only
// cross-thread synchronization on the data plane is one snapshot guard per
// batch, the queue cursors, and the completion ticket.
//
// Ownership rules (mirrors the SearchContext rules in README):
//   - one queue <-> one *producer* thread; batches may be DRAINED by any
//     worker (work stealing), so same-queue batches can complete out of
//     order — tickets, not queue position, signal completion
//   - headers/results of a submitted batch are caller-owned and must stay
//     alive until the ticket completes; results are rewritten in place
//   - worker loops are allocation-free in steady state (warmed contexts,
//     lock-free rings, wait-free snapshot guards, warmed flow-cache slots)
//   - an optional per-worker epoch-keyed flow cache
//     (RuntimeConfig::flow_cache_capacity, off by default) short-circuits
//     repeat flows in front of the full pipeline; cached results are
//     bitwise-identical and invalidate lazily on every published epoch
//   - flow-mods go through the runtime's writer API; workers pick the new
//     side up at their next batch boundary
//   - a GroupTable attached via set_group_table is externally owned and
//     pointer-shared by both snapshot sides (not snapshot-isolated): it
//     must stay immutable while the runtime is live
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/flow_cache.hpp"
#include "runtime/snapshot.hpp"
#include "runtime/steal_queue.hpp"

namespace ofmtl::runtime {

/// Tunables of the worker pool.
struct RuntimeConfig {
  std::size_t workers = 1;          ///< queues == workers
  std::size_t queue_capacity = 64;  ///< in-flight batches per queue
  /// Allow a worker whose own ring is dry to pop batches from sibling
  /// queues instead of idling. Disable to pin every batch to its queue's
  /// worker (strict per-queue FIFO completion, e.g. for per-queue ordering
  /// experiments).
  bool work_stealing = true;
  /// Per-worker exact-match flow-cache slots (rounded up to a power of
  /// two). 0 disables the cache entirely: every packet walks the full
  /// pipeline, exactly the pre-cache behaviour. Cached results are
  /// bitwise-identical to pipeline results and invalidate lazily on every
  /// published epoch (see src/runtime/flow_cache.hpp).
  std::size_t flow_cache_capacity = 0;
};

/// Completion token of one or more submitted batches. The submitter owns it
/// and must keep it alive until done(); reuse across submissions is fine
/// once drained.
class BatchTicket {
 public:
  /// True once every attached batch completed.
  [[nodiscard]] bool done() const {
    return pending_.load(std::memory_order_acquire) == 0;
  }
  /// Spin-yield until every attached batch completed. After wait() the
  /// batch results are visible to the caller.
  void wait() const {
    while (!done()) std::this_thread::yield();
  }
  /// Epoch of the snapshot side that served the last completing batch —
  /// lets concurrency tests pin a result to a pre-/post-update snapshot.
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }
  /// True if any attached batch's lookup threw (its results are
  /// unspecified). Sticky until reset().
  [[nodiscard]] bool failed() const {
    return failed_.load(std::memory_order_acquire);
  }
  /// Clear the sticky failure flag before reusing a drained ticket.
  void reset() { failed_.store(false, std::memory_order_relaxed); }

 private:
  friend class ParallelRuntime;
  void attach() { pending_.fetch_add(1, std::memory_order_relaxed); }
  void detach() { pending_.fetch_sub(1, std::memory_order_release); }
  void fail() { failed_.store(true, std::memory_order_release); }
  void complete(std::uint64_t epoch) {
    epoch_.store(epoch, std::memory_order_relaxed);
    detach();
  }
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> failed_{false};
};

/// Per-worker counters (monotonic; sampled racily by stats()).
struct WorkerStats {
  std::uint64_t batches = 0;  ///< drained batches, errored ones included
  std::uint64_t packets = 0;  ///< successfully classified packets
  std::uint64_t errors = 0;   ///< batches whose lookup threw (results in
                              ///< those batches are unspecified)
  std::uint64_t steals = 0;   ///< batches this worker popped from a sibling
                              ///< queue (subset of `batches`)
  /// Flow-cache counters (all zero while the cache is disabled).
  std::uint64_t cache_hits = 0;    ///< packets served from the cache
  std::uint64_t cache_misses = 0;  ///< packets refilled from the pipeline
                                   ///< (includes epoch invalidations)
  std::uint64_t cache_evictions = 0;  ///< live entries displaced by refills
  std::uint64_t cache_epoch_invalidations = 0;  ///< key hits voided by a
                                                ///< newer snapshot epoch
};

/// Sharded multi-queue worker pool over a left-right SnapshotClassifier.
class ParallelRuntime {
 public:
  /// Spawns `config.workers` threads, each bound to one queue. `tables`
  /// seeds both snapshot sides.
  explicit ParallelRuntime(MultiTableLookup tables, RuntimeConfig config = {});
  ~ParallelRuntime();

  ParallelRuntime(const ParallelRuntime&) = delete;
  ParallelRuntime& operator=(const ParallelRuntime&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// --- control plane (serialized writers, left-right publish) ---
  /// Insert one entry into `table` on both sides; publishes one epoch.
  void insert_entry(std::size_t table, FlowEntry entry) {
    classifier_.insert_entry(table, std::move(entry));
  }
  /// Remove entry `id` from `table`; publishes one epoch when it existed.
  bool remove_entry(std::size_t table, FlowEntryId id) {
    return classifier_.remove_entry(table, id);
  }
  /// Coalesced mutation: `mutate` runs once per snapshot side (twice) and
  /// must be deterministic; publishes one epoch.
  void update(const std::function<void(MultiTableLookup&)>& mutate) {
    classifier_.update(mutate);
  }
  /// Current publish epoch.
  [[nodiscard]] std::uint64_t epoch() const { return classifier_.epoch(); }
  /// The underlying left-right classifier (e.g. for direct acquire()).
  [[nodiscard]] const SnapshotClassifier& classifier() const {
    return classifier_;
  }

  /// --- data plane (one producer per queue) ---
  /// Hand a caller-owned batch to `queue`; results[i] will be rewritten to
  /// execute(headers[i]) against one consistent snapshot side. Returns
  /// false when the queue is full (caller applies backpressure). `ticket`
  /// may be shared across submissions or null (fire-and-forget is only safe
  /// if the caller joins through stop()).
  bool try_submit(std::size_t queue, std::span<const PacketHeader> headers,
                  std::span<ExecutionResult> results, BatchTicket* ticket);

  /// Blocking submit: spins (yielding) until `queue` accepts the batch and
  /// returns how many spins backpressure cost — the replay driver's
  /// backpressure counter. Same ownership rules as try_submit; completion
  /// still signals through `ticket`.
  std::uint64_t submit(std::size_t queue, std::span<const PacketHeader> headers,
                       std::span<ExecutionResult> results, BatchTicket* ticket);

  /// Convenience: submit (spinning while the queue is full) and wait.
  /// Throws std::runtime_error if the batch's lookup threw in the worker
  /// (mirroring what single-threaded execute() would have surfaced).
  void classify(std::size_t queue, std::span<const PacketHeader> headers,
                std::span<ExecutionResult> results);

  /// Drain every queue and join the workers. Idempotent; the destructor
  /// calls it. No submissions may race with or follow stop().
  void stop();

  /// Counters of one worker / aggregated over all workers (the aggregate is
  /// the monitoring surface: cache hit rates and steal counts only mean
  /// anything summed, since stealing moves batches between workers).
  [[nodiscard]] WorkerStats stats(std::size_t worker) const;
  [[nodiscard]] WorkerStats aggregate_stats() const;

  /// Export this runtime's live state (aggregated WorkerStats, flow-cache
  /// hit/miss counters, publish epoch, queue pressure) into `registry` as
  /// ofmtl_runtime_* / ofmtl_cache_* families. The provider reads only the
  /// per-worker atomics, so a scrape never touches a hot path; keep the
  /// returned handle alive no longer than the runtime.
  [[nodiscard]] obs::MetricsRegistry::ProviderHandle register_metrics(
      obs::MetricsRegistry& registry);

  /// In-flight batches on `queue` (racy scheduling/monitoring hint).
  [[nodiscard]] std::size_t queue_depth(std::size_t queue) const {
    return workers_[queue]->queue.size();
  }
  /// Occupancy of the fullest queue as a fraction of its capacity, in
  /// [0, 1] — the backpressure signal the OFP server's admission control
  /// samples (max, not mean: one saturated queue is already overload for
  /// the flows hashed onto it).
  [[nodiscard]] double queue_pressure() const {
    double pressure = 0;
    for (const auto& worker : workers_) {
      const auto depth = static_cast<double>(worker->queue.size());
      const auto cap = static_cast<double>(worker->queue.capacity());
      if (cap > 0) pressure = std::max(pressure, depth / cap);
    }
    return pressure;
  }

 private:
  struct WorkItem {
    const PacketHeader* headers = nullptr;
    ExecutionResult* results = nullptr;
    std::size_t count = 0;
    BatchTicket* ticket = nullptr;
  };

  /// One worker shard: queue + scratch + flow cache + stats, cache-line
  /// aligned so neighbouring shards never false-share.
  struct alignas(kCacheLine) Worker {
    Worker(std::size_t queue_capacity, std::size_t flow_cache_capacity)
        : queue(queue_capacity),
          cache(flow_cache_capacity > 0
                    ? std::make_unique<FlowCache>(flow_cache_capacity)
                    : nullptr) {}
    StealQueue<WorkItem> queue;
    ExecBatchContext ctx;
    /// Per-worker flow cache (nullptr when disabled) plus the miss-partition
    /// scratch of the batch pre-pass: lanes/hashes/headers of the packets
    /// that must walk the pipeline, and the results they produce. All four
    /// are cleared-not-shrunk per batch (miss_results grows only), so the
    /// cached drain loop stays allocation-free in steady state.
    std::unique_ptr<FlowCache> cache;
    std::vector<std::uint32_t> miss_lanes;
    std::vector<std::uint64_t> miss_hashes;
    std::vector<PacketHeader> miss_headers;
    std::vector<ExecutionResult> miss_results;
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> packets{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
    std::atomic<std::uint64_t> cache_evictions{0};
    std::atomic<std::uint64_t> cache_epoch_invalidations{0};
    std::thread thread;
  };

  void worker_loop(std::size_t self);
  void run_item(Worker& worker, const WorkItem& item);
  /// Cache pre-pass + pipeline-on-misses + submission-order merge for one
  /// batch (only called when the worker's cache exists).
  void run_item_cached(Worker& worker, const WorkItem& item,
                       const SnapshotClassifier::ReadGuard& guard);

  SnapshotClassifier classifier_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool work_stealing_ = true;
  std::atomic<bool> running_{true};
};

}  // namespace ofmtl::runtime
