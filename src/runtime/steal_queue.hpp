// Fixed-capacity bounded queue whose consumer side is safe for multiple
// threads — the steal-able per-worker batch channel of the parallel
// runtime. The producer side keeps the runtime's one-producer-per-queue
// contract; the consumer side is shared between the owning worker and any
// sibling stealing work from it, so try_pop may be called concurrently from
// several threads.
//
// Implementation: Vyukov-style bounded queue with a per-slot sequence
// number. Each slot's sequence says whose turn the slot is (writer when
// seq == pos, reader when seq == pos + 1); claiming a position is one CAS on
// the shared cursor, and the slot payload is published/consumed under the
// slot's own acquire/release sequence — no locks, no allocation after
// construction, FIFO per queue. Cursors sit on separate cache lines so
// producer and consumers do not false-share.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/cache_line.hpp"

namespace ofmtl::runtime {

template <typename T>
class StealQueue {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit StealQueue(std::size_t capacity) {
    std::size_t rounded = 2;
    while (rounded < capacity) rounded <<= 1;
    slots_ = std::vector<Slot>(rounded);
    mask_ = rounded - 1;
    for (std::size_t i = 0; i < rounded; ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  /// Producer side (one thread per queue by the runtime's contract, though
  /// the CAS claim is multi-producer-safe). Returns false when the ring is
  /// full (backpressure).
  bool try_push(T value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    Slot* slot;
    while (true) {
      slot = &slots_[pos & mask_];
      const std::size_t seq = slot->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        // Our turn to write: claim the position.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // slot still holds an unconsumed value: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);  // lost a race, reload
      }
    }
    slot->value = std::move(value);
    slot->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side — owner worker or a stealing sibling, concurrently.
  /// Returns false when the ring is empty.
  bool try_pop(T& out) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    Slot* slot;
    while (true) {
      slot = &slots_[pos & mask_];
      const std::size_t seq = slot->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        // Value published and unclaimed: claim the position.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // slot not yet published: empty
      } else {
        pos = head_.load(std::memory_order_relaxed);  // lost a race, reload
      }
    }
    out = std::move(slot->value);
    // Hand the slot back to the producer one lap later.
    slot->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Approximate (racy) emptiness — a scheduling hint, not a guarantee.
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }
  /// Approximate (racy) occupancy — the backpressure signal exported to
  /// admission control. Clamped: concurrent pops can make the raw cursor
  /// difference transiently negative or over-capacity.
  [[nodiscard]] std::size_t size() const {
    const auto head = head_.load(std::memory_order_acquire);
    const auto tail = tail_.load(std::memory_order_acquire);
    const auto diff = static_cast<std::intptr_t>(tail) -
                      static_cast<std::intptr_t>(head);
    if (diff <= 0) return 0;
    return std::min(static_cast<std::size_t>(diff), capacity());
  }
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Slot {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace ofmtl::runtime
