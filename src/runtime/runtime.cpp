#include "runtime/runtime.hpp"

#include <stdexcept>
#include <string>

#include "core/flow_key.hpp"
#include "obs/tracer.hpp"

namespace ofmtl::runtime {

ParallelRuntime::ParallelRuntime(MultiTableLookup tables, RuntimeConfig config)
    : classifier_(std::move(tables)), work_stealing_(config.work_stealing) {
  const std::size_t workers = config.workers == 0 ? 1 : config.workers;
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(config.queue_capacity,
                                                config.flow_cache_capacity));
  }
  // Threads start only after the shard array is fully built (worker_loop
  // reads the whole shard array when stealing). If a launch fails partway,
  // stop and join the threads already running before rethrowing — destroying
  // a joinable std::thread would terminate.
  try {
    for (std::size_t w = 0; w < workers; ++w) {
      workers_[w]->thread = std::thread([this, w] { worker_loop(w); });
    }
  } catch (...) {
    stop();
    throw;
  }
}

ParallelRuntime::~ParallelRuntime() { stop(); }

void ParallelRuntime::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

bool ParallelRuntime::try_submit(std::size_t queue,
                                 std::span<const PacketHeader> headers,
                                 std::span<ExecutionResult> results,
                                 BatchTicket* ticket) {
  if (queue >= workers_.size()) {
    throw std::out_of_range("try_submit: no such queue");
  }
  if (results.size() < headers.size()) {
    throw std::invalid_argument("try_submit: results span too small");
  }
  if (ticket != nullptr) ticket->attach();
  const WorkItem item{headers.data(), results.data(), headers.size(), ticket};
  if (workers_[queue]->queue.try_push(item)) return true;
  if (ticket != nullptr) ticket->detach();  // undo the attach
  return false;
}

std::uint64_t ParallelRuntime::submit(std::size_t queue,
                                      std::span<const PacketHeader> headers,
                                      std::span<ExecutionResult> results,
                                      BatchTicket* ticket) {
  std::uint64_t spins = 0;
  while (!try_submit(queue, headers, results, ticket)) {
    ++spins;
    std::this_thread::yield();
  }
  return spins;
}

void ParallelRuntime::classify(std::size_t queue,
                               std::span<const PacketHeader> headers,
                               std::span<ExecutionResult> results) {
  BatchTicket ticket;
  (void)submit(queue, headers, results, &ticket);
  ticket.wait();
  if (ticket.failed()) {
    throw std::runtime_error("classify: batch lookup failed in worker");
  }
}

void ParallelRuntime::run_item(Worker& worker, const WorkItem& item) {
  // One snapshot guard per batch: every packet of the batch classifies
  // against the same side/epoch, and flow-mods published mid-batch apply
  // from the worker's next batch on. Holding the guard across the batch is
  // what blocks the writer from reusing this side; it departs when this
  // function returns. The flow cache keys on the guard's epoch, so cached
  // entries from before a publish are stale by construction for this batch.
  OFMTL_OBS_EMIT(obs::TraceEvent::kBatchBegin, 0, item.count);
  const auto guard = classifier_.acquire();
  const FlowCacheStats cache_before =
      worker.cache != nullptr ? worker.cache->stats() : FlowCacheStats{};
  try {
    if (worker.cache != nullptr) {
      run_item_cached(worker, item, guard);
    } else {
      guard.tables().execute_batch({item.headers, item.count},
                                   {item.results, item.count}, worker.ctx);
    }
    worker.packets.fetch_add(item.count, std::memory_order_relaxed);
  } catch (...) {
    // A malformed packet (e.g. out-of-range field value) throws from the
    // lookup path. The single-threaded API surfaces that to the caller;
    // here the failure is flagged on the ticket (classify() rethrows) and
    // counted — letting it escape would terminate the process and strand
    // the ticket's waiter.
    worker.errors.fetch_add(1, std::memory_order_relaxed);
    if (item.ticket != nullptr) item.ticket->fail();
  }
  if (worker.cache != nullptr) {
    // Publish the batch's cache-counter deltas (errored batches included —
    // their lookups happened) through the atomics stats() samples. The same
    // deltas feed the trace as batch-granular counter events — per-packet
    // cache events would swamp the ring and the overhead budget.
    const FlowCacheStats& after = worker.cache->stats();
    const std::uint64_t hits = after.hits - cache_before.hits;
    const std::uint64_t misses = after.misses - cache_before.misses;
    const std::uint64_t invalidations =
        after.epoch_invalidations - cache_before.epoch_invalidations;
    worker.cache_hits.fetch_add(hits, std::memory_order_relaxed);
    worker.cache_misses.fetch_add(misses, std::memory_order_relaxed);
    worker.cache_evictions.fetch_add(after.evictions - cache_before.evictions,
                                     std::memory_order_relaxed);
    worker.cache_epoch_invalidations.fetch_add(invalidations,
                                               std::memory_order_relaxed);
    if (hits != 0) OFMTL_OBS_EMIT(obs::TraceEvent::kCacheHits, 0, hits);
    if (misses != 0) OFMTL_OBS_EMIT(obs::TraceEvent::kCacheMisses, 0, misses);
    if (invalidations != 0) {
      OFMTL_OBS_EMIT(obs::TraceEvent::kCacheEpochInvalidations, 0,
                     invalidations);
    }
  }
  worker.batches.fetch_add(1, std::memory_order_relaxed);
  OFMTL_OBS_EMIT(obs::TraceEvent::kBatchEnd, 0, item.count);
  if (item.ticket != nullptr) item.ticket->complete(guard.epoch());
}

void ParallelRuntime::run_item_cached(
    Worker& worker, const WorkItem& item,
    const SnapshotClassifier::ReadGuard& guard) {
  FlowCache& cache = *worker.cache;
  const std::uint64_t epoch = guard.epoch();
  // Pre-pass: partition lanes into hits (served straight from the cache)
  // and misses (gathered contiguously for one batched pipeline walk).
  worker.miss_lanes.clear();
  worker.miss_hashes.clear();
  worker.miss_headers.clear();
  for (std::size_t i = 0; i < item.count; ++i) {
    const std::uint64_t hash = flow_key_hash(item.headers[i]);
    if (const ExecutionResult* hit = cache.find(item.headers[i], hash, epoch)) {
      item.results[i] = *hit;
    } else {
      worker.miss_lanes.push_back(static_cast<std::uint32_t>(i));
      worker.miss_hashes.push_back(hash);
      worker.miss_headers.push_back(item.headers[i]);
    }
  }
  const std::size_t misses = worker.miss_lanes.size();
  if (misses == 0) return;
  // Grow-only (a resize down would destroy warmed ExecutionResults and
  // forfeit their vector capacity — the allocation-free property).
  if (worker.miss_results.size() < misses) worker.miss_results.resize(misses);
  guard.tables().execute_batch({worker.miss_headers.data(), misses},
                               {worker.miss_results.data(), misses},
                               worker.ctx);
  // Merge in submission order and refill the cache. Duplicate flows within
  // one batch both take the miss path (the second store refreshes the same
  // slot) — correct, just one hit short.
  for (std::size_t j = 0; j < misses; ++j) {
    item.results[worker.miss_lanes[j]] = worker.miss_results[j];
    cache.store(worker.miss_headers[j], worker.miss_hashes[j], epoch,
                worker.miss_results[j]);
  }
}

void ParallelRuntime::worker_loop(std::size_t self) {
  Worker& worker = *workers_[self];
  obs::set_thread_name("worker" + std::to_string(self));
  const std::size_t siblings = workers_.size();
  WorkItem item;
  // Steal-attempt events fire once per transition into the steal scan, not
  // per idle spin — an idle worker yielding in a loop would otherwise flood
  // its ring with millions of identical records.
  bool was_working = true;
  while (true) {
    if (worker.queue.try_pop(item)) {
      was_working = true;
      run_item(worker, item);
      continue;
    }
    // Own ring dry: steal one batch from the next non-empty sibling (scan
    // starts at self+1 so victims rotate with the worker index instead of
    // every thief hammering queue 0).
    if (work_stealing_ && siblings > 1) {
      if (was_working) {
        OFMTL_OBS_EMIT(obs::TraceEvent::kStealAttempt, self, 0);
      }
      bool stole = false;
      std::size_t victim_index = 0;
      for (std::size_t i = 1; i < siblings && !stole; ++i) {
        victim_index = (self + i) % siblings;
        Worker& victim = *workers_[victim_index];
        stole = victim.queue.try_pop(item);
      }
      if (stole) {
        worker.steals.fetch_add(1, std::memory_order_relaxed);
        OFMTL_OBS_EMIT(obs::TraceEvent::kStealSuccess, victim_index, 1);
        was_working = true;
        run_item(worker, item);
        continue;
      }
    }
    was_working = false;
    if (!running_.load(std::memory_order_acquire)) {
      // Drain-then-exit: stop() flips running_ before joining, and no
      // submission races with stop(), so a final empty check after
      // observing !running_ cannot miss items pushed before stop(). Items
      // a sibling steals during shutdown are processed by that sibling
      // before it performs its own exit check.
      if (!worker.queue.try_pop(item)) break;
      run_item(worker, item);
    } else {
      std::this_thread::yield();
    }
  }
}

WorkerStats ParallelRuntime::stats(std::size_t worker) const {
  const Worker& w = *workers_.at(worker);
  return {w.batches.load(std::memory_order_relaxed),
          w.packets.load(std::memory_order_relaxed),
          w.errors.load(std::memory_order_relaxed),
          w.steals.load(std::memory_order_relaxed),
          w.cache_hits.load(std::memory_order_relaxed),
          w.cache_misses.load(std::memory_order_relaxed),
          w.cache_evictions.load(std::memory_order_relaxed),
          w.cache_epoch_invalidations.load(std::memory_order_relaxed)};
}

WorkerStats ParallelRuntime::aggregate_stats() const {
  WorkerStats total;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const WorkerStats s = stats(w);
    total.batches += s.batches;
    total.packets += s.packets;
    total.errors += s.errors;
    total.steals += s.steals;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.cache_evictions += s.cache_evictions;
    total.cache_epoch_invalidations += s.cache_epoch_invalidations;
  }
  return total;
}

obs::MetricsRegistry::ProviderHandle ParallelRuntime::register_metrics(
    obs::MetricsRegistry& registry) {
  return registry.register_provider([this](obs::MetricsBuilder& b) {
    const WorkerStats total = aggregate_stats();
    b.counter("ofmtl_runtime_batches_total", "batches drained by workers",
              static_cast<double>(total.batches));
    b.counter("ofmtl_runtime_packets_total", "packets classified",
              static_cast<double>(total.packets));
    b.counter("ofmtl_runtime_errors_total", "batches whose lookup threw",
              static_cast<double>(total.errors));
    b.counter("ofmtl_runtime_steals_total", "batches stolen from siblings",
              static_cast<double>(total.steals));
    b.counter("ofmtl_cache_hits_total", "flow-cache hits",
              static_cast<double>(total.cache_hits));
    b.counter("ofmtl_cache_misses_total", "flow-cache misses",
              static_cast<double>(total.cache_misses));
    b.counter("ofmtl_cache_evictions_total", "flow-cache evictions",
              static_cast<double>(total.cache_evictions));
    b.counter("ofmtl_cache_epoch_invalidations_total",
              "cache hits voided by a newer snapshot epoch",
              static_cast<double>(total.cache_epoch_invalidations));
    b.gauge("ofmtl_runtime_workers", "worker threads",
            static_cast<double>(workers_.size()));
    b.gauge("ofmtl_runtime_publish_epoch", "current left-right epoch",
            static_cast<double>(epoch()));
    b.gauge("ofmtl_runtime_queue_pressure",
            "fullest queue occupancy fraction", queue_pressure());
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      b.counter("ofmtl_runtime_worker_packets_total",
                "packets classified per worker",
                static_cast<double>(stats(w).packets),
                "worker=\"" + std::to_string(w) + "\"");
    }
  });
}

}  // namespace ofmtl::runtime
