#include "runtime/runtime.hpp"

#include <stdexcept>

namespace ofmtl::runtime {

ParallelRuntime::ParallelRuntime(MultiTableLookup tables, RuntimeConfig config)
    : classifier_(std::move(tables)), work_stealing_(config.work_stealing) {
  const std::size_t workers = config.workers == 0 ? 1 : config.workers;
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(config.queue_capacity));
  }
  // Threads start only after the shard array is fully built (worker_loop
  // reads the whole shard array when stealing). If a launch fails partway,
  // stop and join the threads already running before rethrowing — destroying
  // a joinable std::thread would terminate.
  try {
    for (std::size_t w = 0; w < workers; ++w) {
      workers_[w]->thread = std::thread([this, w] { worker_loop(w); });
    }
  } catch (...) {
    stop();
    throw;
  }
}

ParallelRuntime::~ParallelRuntime() { stop(); }

void ParallelRuntime::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

bool ParallelRuntime::try_submit(std::size_t queue,
                                 std::span<const PacketHeader> headers,
                                 std::span<ExecutionResult> results,
                                 BatchTicket* ticket) {
  if (queue >= workers_.size()) {
    throw std::out_of_range("try_submit: no such queue");
  }
  if (results.size() < headers.size()) {
    throw std::invalid_argument("try_submit: results span too small");
  }
  if (ticket != nullptr) ticket->attach();
  const WorkItem item{headers.data(), results.data(), headers.size(), ticket};
  if (workers_[queue]->queue.try_push(item)) return true;
  if (ticket != nullptr) ticket->detach();  // undo the attach
  return false;
}

void ParallelRuntime::classify(std::size_t queue,
                               std::span<const PacketHeader> headers,
                               std::span<ExecutionResult> results) {
  BatchTicket ticket;
  while (!try_submit(queue, headers, results, &ticket)) {
    std::this_thread::yield();
  }
  ticket.wait();
  if (ticket.failed()) {
    throw std::runtime_error("classify: batch lookup failed in worker");
  }
}

void ParallelRuntime::run_item(Worker& worker, const WorkItem& item) {
  // One snapshot guard per batch: every packet of the batch classifies
  // against the same side/epoch, and flow-mods published mid-batch apply
  // from the worker's next batch on. Holding the guard across the batch is
  // what blocks the writer from reusing this side; it departs when this
  // function returns.
  const auto guard = classifier_.acquire();
  try {
    guard.tables().execute_batch({item.headers, item.count},
                                 {item.results, item.count}, worker.ctx);
    worker.packets.fetch_add(item.count, std::memory_order_relaxed);
  } catch (...) {
    // A malformed packet (e.g. out-of-range field value) throws from the
    // lookup path. The single-threaded API surfaces that to the caller;
    // here the failure is flagged on the ticket (classify() rethrows) and
    // counted — letting it escape would terminate the process and strand
    // the ticket's waiter.
    worker.errors.fetch_add(1, std::memory_order_relaxed);
    if (item.ticket != nullptr) item.ticket->fail();
  }
  worker.batches.fetch_add(1, std::memory_order_relaxed);
  if (item.ticket != nullptr) item.ticket->complete(guard.epoch());
}

void ParallelRuntime::worker_loop(std::size_t self) {
  Worker& worker = *workers_[self];
  const std::size_t siblings = workers_.size();
  WorkItem item;
  while (true) {
    if (worker.queue.try_pop(item)) {
      run_item(worker, item);
      continue;
    }
    // Own ring dry: steal one batch from the next non-empty sibling (scan
    // starts at self+1 so victims rotate with the worker index instead of
    // every thief hammering queue 0).
    if (work_stealing_ && siblings > 1) {
      bool stole = false;
      for (std::size_t i = 1; i < siblings && !stole; ++i) {
        Worker& victim = *workers_[(self + i) % siblings];
        stole = victim.queue.try_pop(item);
      }
      if (stole) {
        worker.steals.fetch_add(1, std::memory_order_relaxed);
        run_item(worker, item);
        continue;
      }
    }
    if (!running_.load(std::memory_order_acquire)) {
      // Drain-then-exit: stop() flips running_ before joining, and no
      // submission races with stop(), so a final empty check after
      // observing !running_ cannot miss items pushed before stop(). Items
      // a sibling steals during shutdown are processed by that sibling
      // before it performs its own exit check.
      if (!worker.queue.try_pop(item)) break;
      run_item(worker, item);
    } else {
      std::this_thread::yield();
    }
  }
}

WorkerStats ParallelRuntime::stats(std::size_t worker) const {
  const Worker& w = *workers_.at(worker);
  return {w.batches.load(std::memory_order_relaxed),
          w.packets.load(std::memory_order_relaxed),
          w.errors.load(std::memory_order_relaxed),
          w.steals.load(std::memory_order_relaxed)};
}

WorkerStats ParallelRuntime::total_stats() const {
  WorkerStats total;
  for (const auto& worker : workers_) {
    total.batches += worker->batches.load(std::memory_order_relaxed);
    total.packets += worker->packets.load(std::memory_order_relaxed);
    total.errors += worker->errors.load(std::memory_order_relaxed);
    total.steals += worker->steals.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace ofmtl::runtime
