// Per-worker epoch-keyed exact-match flow cache: a fixed-capacity
// open-addressing table (flat_hash.hpp idioms — power-of-two capacity,
// splitmix64-spread hashes, short bounded probe windows) mapping a packet's
// full field tuple to the final ExecutionResult the pipeline produced for
// it, stamped with the left-right snapshot epoch that produced it.
//
// Epoch keying is the whole invalidation story: every entry records the
// ReadGuard epoch it was filled under, and an entry whose epoch differs
// from the epoch pinned by the *current* batch's guard is treated as a
// miss (counted as an epoch invalidation) and refilled from the full
// pipeline. A flow-mod therefore invalidates lazily with zero coordination
// — no cross-worker messages, no sweep over the table, no shootdown; the
// publish bumping the epoch is itself the invalidation broadcast.
//
// Ownership rules (mirrors the SearchContext rules in README):
//   - one FlowCache per worker thread, never shared — per-worker caches
//     need no coherence because each is consulted and refilled only under
//     that worker's own pinned guard
//   - steady state is allocation-free: slots are laid out at construction;
//     refills copy-assign into slot ExecutionResults whose vectors keep
//     their high-water capacity
//   - counters are plain (single-writer); the runtime publishes per-batch
//     deltas through its atomic WorkerStats
#pragma once

#include <cstdint>
#include <vector>

#include "flow/pipeline_ref.hpp"
#include "net/header.hpp"

namespace ofmtl::runtime {

/// Monotonic counters of one cache (single-writer, read via WorkerStats).
struct FlowCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;       ///< includes epoch_invalidations
  std::uint64_t evictions = 0;    ///< live current-epoch entries displaced
  std::uint64_t epoch_invalidations = 0;  ///< key matched, epoch stale
};

/// Fixed-capacity open-addressing key→result cache with lazy epoch
/// invalidation. Not thread-safe by design — one instance per worker.
class FlowCache {
 public:
  /// Slots probed per lookup/insert (the associativity of one hash bucket).
  static constexpr std::size_t kProbeWindow = 4;

  /// `capacity` is rounded up to a power of two (minimum kProbeWindow).
  /// Every slot is laid out up front — the cache never grows.
  explicit FlowCache(std::size_t capacity);

  /// The result cached for `header` under `epoch`, or nullptr on a miss.
  /// `hash` must be flow_key_hash(header). A key match with a stale epoch
  /// is a miss (counted separately) — the caller refills via store().
  [[nodiscard]] const ExecutionResult* find(const PacketHeader& header,
                                            std::uint64_t hash,
                                            std::uint64_t epoch);

  /// Cache `result` for `header` under `epoch`, preferring (in order) the
  /// key's existing slot, an empty slot, a stale-epoch slot, and finally
  /// evicting a live entry from the probe window (round-robin victim).
  void store(const PacketHeader& header, std::uint64_t hash,
             std::uint64_t epoch, const ExecutionResult& result);

  [[nodiscard]] const FlowCacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint64_t epoch = 0;
    bool occupied = false;
    PacketHeader key;
    ExecutionResult value;
  };

  [[nodiscard]] Slot& slot_at(std::uint64_t hash, std::size_t probe) {
    return slots_[(hash + probe) & mask_];
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t victim_rotor_ = 0;
  FlowCacheStats stats_;
};

}  // namespace ofmtl::runtime
