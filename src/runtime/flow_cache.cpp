#include "runtime/flow_cache.hpp"

namespace ofmtl::runtime {

FlowCache::FlowCache(std::size_t capacity) {
  std::size_t rounded = kProbeWindow;
  while (rounded < capacity) rounded <<= 1;
  slots_.resize(rounded);
  mask_ = rounded - 1;
}

const ExecutionResult* FlowCache::find(const PacketHeader& header,
                                       std::uint64_t hash,
                                       std::uint64_t epoch) {
  for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
    Slot& slot = slot_at(hash, probe);
    if (!slot.occupied || slot.hash != hash || !(slot.key == header)) continue;
    if (slot.epoch == epoch) {
      ++stats_.hits;
      return &slot.value;
    }
    // The entry is from before a publish: stale by definition (epochs are
    // bumped once per flow-mod, and we cannot know whether the mod touched
    // this flow). Report a miss; store() will refill this very slot.
    ++stats_.epoch_invalidations;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.misses;
  return nullptr;
}

void FlowCache::store(const PacketHeader& header, std::uint64_t hash,
                      std::uint64_t epoch, const ExecutionResult& result) {
  Slot* empty = nullptr;
  Slot* stale = nullptr;
  for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
    Slot& slot = slot_at(hash, probe);
    if (!slot.occupied) {
      if (empty == nullptr) empty = &slot;
      continue;
    }
    if (slot.hash == hash && slot.key == header) {
      // Refresh in place (covers the epoch-invalidation refill path).
      slot.epoch = epoch;
      slot.value = result;
      return;
    }
    if (stale == nullptr && slot.epoch != epoch) stale = &slot;
  }
  Slot* target = empty != nullptr ? empty : stale;
  if (target == nullptr) {
    // Probe window full of live current-epoch flows: displace one,
    // rotating the victim index so one hot bucket does not starve.
    target = &slot_at(hash, victim_rotor_++ % kProbeWindow);
    ++stats_.evictions;
  }
  target->hash = hash;
  target->epoch = epoch;
  target->occupied = true;
  target->key = header;
  target->value = result;  // copy-assign: vectors keep high-water capacity
}

}  // namespace ofmtl::runtime
