#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ofmtl::obs {

namespace {

/// Prometheus-style number: integral values render without a fraction so
/// counters read naturally; everything else gets shortest-round-trip %g.
std::string format_value(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {  // 2^53: exact integers
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        out += static_cast<unsigned char>(c) < 0x20 ? ' ' : c;
    }
  }
  out += '"';
}

}  // namespace

void MetricsBuilder::counter(std::string_view family, std::string_view help,
                             double value, std::string_view labels) {
  samples_.push_back(Sample{std::string(family), std::string(help), true,
                            value, std::string(labels)});
}

void MetricsBuilder::gauge(std::string_view family, std::string_view help,
                           double value, std::string_view labels) {
  samples_.push_back(Sample{std::string(family), std::string(help), false,
                            value, std::string(labels)});
}

MetricsRegistry::ProviderHandle::ProviderHandle(
    ProviderHandle&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

MetricsRegistry::ProviderHandle& MetricsRegistry::ProviderHandle::operator=(
    ProviderHandle&& other) noexcept {
  if (this != &other) {
    reset();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

MetricsRegistry::ProviderHandle::~ProviderHandle() { reset(); }

void MetricsRegistry::ProviderHandle::reset() {
  if (registry_ != nullptr && id_ != 0) registry_->unregister(id_);
  registry_ = nullptr;
  id_ = 0;
}

MetricsRegistry::ProviderHandle MetricsRegistry::register_provider(
    Provider provider) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ProviderHandle handle;
  handle.registry_ = this;
  handle.id_ = next_id_++;
  entries_.push_back(Entry{handle.id_, std::move(provider)});
  return handle;
}

void MetricsRegistry::unregister(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 entries_.end());
}

std::size_t MetricsRegistry::provider_count() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<MetricsBuilder::Sample> MetricsRegistry::scrape() {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsBuilder builder;
  for (const auto& entry : entries_) entry.provider(builder);
  // Stable-sort by family so multi-provider families (e.g. per-worker
  // labels from the runtime plus totals from elsewhere) render under one
  // # TYPE header, with each provider's sample order preserved.
  std::stable_sort(builder.samples_.begin(), builder.samples_.end(),
                   [](const MetricsBuilder::Sample& a,
                      const MetricsBuilder::Sample& b) {
                     return a.family < b.family;
                   });
  return std::move(builder.samples_);
}

std::string MetricsRegistry::render_prometheus() {
  const auto samples = scrape();
  std::string out;
  out.reserve(samples.size() * 64 + 64);
  const std::string* last_family = nullptr;
  for (const auto& s : samples) {
    if (last_family == nullptr || *last_family != s.family) {
      if (!s.help.empty()) {
        out += "# HELP ";
        out += s.family;
        out += ' ';
        out += s.help;
        out += '\n';
      }
      out += "# TYPE ";
      out += s.family;
      out += s.is_counter ? " counter\n" : " gauge\n";
      last_family = &s.family;
    }
    out += s.family;
    if (!s.labels.empty()) {
      out += '{';
      out += s.labels;
      out += '}';
    }
    out += ' ';
    out += format_value(s.value);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::render_json() {
  const auto samples = scrape();
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& s : samples) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, s.family);
    out += ",\"type\":";
    out += s.is_counter ? "\"counter\"" : "\"gauge\"";
    out += ",\"labels\":";
    append_json_string(out, s.labels);
    out += ",\"value\":";
    out += format_value(s.value);
    out += '}';
  }
  out += "]}\n";
  return out;
}

MetricsRegistry& default_registry() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace ofmtl::obs
