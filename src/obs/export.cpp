#include "obs/export.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace ofmtl::obs {

namespace {

constexpr std::array<char, 8> kMagic = {'O', 'F', 'T', 'R',
                                        'A', 'C', 'E', '1'};

void put_u64(std::ostream& out, std::uint64_t value) {
  std::array<unsigned char, 8> bytes;
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(value >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(bytes.data()), 8);
}

std::uint64_t get_u64(std::istream& in) {
  std::array<unsigned char, 8> bytes;
  in.read(reinterpret_cast<char*>(bytes.data()), 8);
  if (!in) throw std::runtime_error("trace dump: truncated");
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return value;
}

/// Minimal JSON string escape (thread names and static event names only).
void put_json_string(std::ostream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';  // other control bytes: blank them
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// One open slice awaiting its end record.
struct OpenSlice {
  TraceEvent begin_event;
  std::uint64_t ts_ns;
  std::uint16_t arg;
  std::uint64_t payload;
};

/// Microsecond timestamp with nanosecond precision, chrome-trace style.
void put_ts_us(std::ostream& out, std::uint64_t ts_ns) {
  out << ts_ns / 1000 << '.' << static_cast<char>('0' + (ts_ns % 1000) / 100)
      << static_cast<char>('0' + (ts_ns % 100) / 10)
      << static_cast<char>('0' + ts_ns % 10);
}

}  // namespace

std::vector<DecodedEvent> decode_thread(const ThreadTrace& thread) {
  std::vector<DecodedEvent> events;
  events.reserve(thread.records.size());
  bool anchored = false;
  std::uint64_t ts = 0;
  for (const auto& record : thread.records) {
    if (static_cast<TraceEvent>(record.event) == TraceEvent::kTimeSync) {
      ts = record.payload;
      anchored = true;
      continue;
    }
    if (!anchored) continue;  // overwritten anchor: bounded undecodable prefix
    ts += record.ts_delta;
    events.push_back(DecodedEvent{ts, static_cast<TraceEvent>(record.event),
                                  record.arg, record.payload});
  }
  return events;
}

void write_perfetto_json(std::ostream& out, const TraceDump& dump) {
  out << "{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [";
  bool first = true;
  const auto event_prefix = [&] {
    if (!first) out << ',';
    first = false;
    out << "\n";
  };

  for (const auto& thread : dump.threads) {
    // Thread-name metadata event so Perfetto labels the track.
    event_prefix();
    out << R"({"ph":"M","name":"thread_name","pid":1,"tid":)" << thread.tid
        << R"(,"args":{"name":)";
    put_json_string(out, thread.name);
    out << "}}";

    const auto events = decode_thread(thread);
    // Per-slice-name stacks pair begins with ends; a stack per name (rather
    // than one global stack) keeps interleaved slices of different kinds
    // (e.g. stage_walk inside batch) independent.
    std::array<std::vector<OpenSlice>, static_cast<std::size_t>(
                                           TraceEvent::kEventCount)>
        open;
    for (const auto& event : events) {
      const auto kind = trace_event_kind(event.event);
      const char* name = trace_event_name(event.event);
      switch (kind) {
        case TraceEventKind::kBegin: {
          // Stack keyed by the END event id sharing this slice name: the
          // matching end is begin + 1 in the event enumeration.
          const auto key = static_cast<std::size_t>(event.event) + 1;
          open[key].push_back(
              OpenSlice{event.event, event.ts_ns, event.arg, event.payload});
          break;
        }
        case TraceEventKind::kEnd: {
          const auto key = static_cast<std::size_t>(event.event);
          if (open[key].empty()) {
            // Unpaired end (its begin was overwritten): render as instant.
            event_prefix();
            out << R"({"ph":"i","s":"t","name":")" << name
                << R"(","pid":1,"tid":)" << thread.tid << R"(,"ts":)";
            put_ts_us(out, event.ts_ns);
            out << "}";
            break;
          }
          const OpenSlice slice = open[key].back();
          open[key].pop_back();
          event_prefix();
          out << R"({"ph":"X","name":")" << name << R"(","pid":1,"tid":)"
              << thread.tid << R"(,"ts":)";
          put_ts_us(out, slice.ts_ns);
          out << R"(,"dur":)";
          put_ts_us(out, event.ts_ns - slice.ts_ns);
          out << R"(,"args":{"arg":)" << slice.arg << R"(,"payload":)"
              << slice.payload << "}}";
          break;
        }
        case TraceEventKind::kCounter:
          event_prefix();
          out << R"({"ph":"C","name":")" << name << R"(","pid":1,"tid":)"
              << thread.tid << R"(,"ts":)";
          put_ts_us(out, event.ts_ns);
          out << R"(,"args":{"value":)" << event.payload << "}}";
          break;
        case TraceEventKind::kInstant:
          event_prefix();
          out << R"({"ph":"i","s":"t","name":")" << name
              << R"(","pid":1,"tid":)" << thread.tid << R"(,"ts":)";
          put_ts_us(out, event.ts_ns);
          out << R"(,"args":{"arg":)" << event.arg << R"(,"payload":)"
              << event.payload << "}}";
          break;
      }
    }
  }
  out << "\n]\n}\n";
}

void save_trace_dump(const std::string& path, const TraceDump& dump) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace dump: cannot open " + path);
  out.write(kMagic.data(), kMagic.size());
  put_u64(out, dump.threads.size());
  for (const auto& thread : dump.threads) {
    put_u64(out, thread.name.size());
    out.write(thread.name.data(),
              static_cast<std::streamsize>(thread.name.size()));
    put_u64(out, thread.tid);
    put_u64(out, thread.dropped);
    put_u64(out, thread.records.size());
    for (const auto& record : thread.records) {
      put_u64(out, pack_lo(record));
      put_u64(out, pack_hi(record));
    }
  }
  if (out.flush(); !out) {
    throw std::runtime_error("trace dump: write failed: " + path);
  }
}

TraceDump load_trace_dump(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace dump: cannot open " + path);
  std::array<char, 8> magic;
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("trace dump: bad magic in " + path);
  }
  // Sanity caps so a corrupt header cannot demand absurd allocations.
  constexpr std::uint64_t kMaxThreads = 1 << 16;
  constexpr std::uint64_t kMaxRecords = std::uint64_t{1} << 32;
  constexpr std::uint64_t kMaxName = 1 << 12;
  TraceDump dump;
  const std::uint64_t threads = get_u64(in);
  if (threads > kMaxThreads) {
    throw std::runtime_error("trace dump: implausible thread count");
  }
  for (std::uint64_t t = 0; t < threads; ++t) {
    ThreadTrace thread;
    const std::uint64_t name_len = get_u64(in);
    if (name_len > kMaxName) {
      throw std::runtime_error("trace dump: implausible name length");
    }
    thread.name.resize(name_len);
    in.read(thread.name.data(), static_cast<std::streamsize>(name_len));
    if (!in) throw std::runtime_error("trace dump: truncated");
    thread.tid = get_u64(in);
    thread.dropped = get_u64(in);
    const std::uint64_t records = get_u64(in);
    if (records > kMaxRecords) {
      throw std::runtime_error("trace dump: implausible record count");
    }
    thread.records.reserve(records);
    for (std::uint64_t r = 0; r < records; ++r) {
      const std::uint64_t lo = get_u64(in);
      const std::uint64_t hi = get_u64(in);
      thread.records.push_back(unpack_record(lo, hi));
    }
    dump.threads.push_back(std::move(thread));
  }
  return dump;
}

LogHistogram slice_latency_histogram(const TraceDump& dump, TraceEvent begin,
                                     TraceEvent end, bool per_payload_unit) {
  LogHistogram histogram;
  for (const auto& thread : dump.threads) {
    std::vector<OpenSlice> open;
    for (const auto& event : decode_thread(thread)) {
      if (event.event == begin) {
        open.push_back(
            OpenSlice{event.event, event.ts_ns, event.arg, event.payload});
      } else if (event.event == end) {
        if (open.empty()) continue;  // begin overwritten: skip
        const OpenSlice slice = open.back();
        open.pop_back();
        std::uint64_t duration = event.ts_ns - slice.ts_ns;
        if (per_payload_unit && slice.payload > 1) {
          duration /= slice.payload;
        }
        histogram.record(duration);
      }
    }
  }
  return histogram;
}

}  // namespace ofmtl::obs
