#include "obs/export.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace ofmtl::obs {

namespace {

constexpr std::array<char, 8> kMagic = {'O', 'F', 'T', 'R',
                                        'A', 'C', 'E', '1'};

// Sanity caps so a corrupt header cannot demand absurd work even when the
// file happens to be large enough to back it.
constexpr std::uint64_t kMaxThreads = 1 << 16;
constexpr std::uint64_t kMaxName = 1 << 12;

// Distinguishes the extended header (process identity) from the legacy one:
// the u64 after the magic is either a legacy thread count (≤ kMaxThreads)
// or this sentinel announcing "version, pid, process name follow". Chosen
// all-ones so no legal thread count ever collides with it.
constexpr std::uint64_t kProcessHeaderSentinel = ~std::uint64_t{0};
constexpr std::uint64_t kContainerVersion = 2;

void put_u64(std::ostream& out, std::uint64_t value) {
  std::array<unsigned char, 8> bytes;
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(value >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(bytes.data()), 8);
}

/// Bounds-checked cursor over the fully-read file image. Every read is
/// validated against the REAL byte count, so no section-length field can
/// cause a read past the end or an allocation the file cannot back.
struct ByteReader {
  const unsigned char* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;

  [[nodiscard]] std::size_t remaining() const { return size - pos; }

  [[nodiscard]] bool read_u64(std::uint64_t& value) {
    if (remaining() < 8) return false;
    value = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    }
    pos += 8;
    return true;
  }

  [[nodiscard]] bool read_string(std::string& out, std::uint64_t len) {
    if (remaining() < len) return false;
    out.assign(reinterpret_cast<const char*>(data + pos),
               static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    return true;
  }
};

/// Minimal JSON string escape (thread names and static event names only).
void put_json_string(std::ostream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';  // other control bytes: blank them
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// One open slice awaiting its end record.
struct OpenSlice {
  TraceEvent begin_event;
  std::uint64_t ts_ns;
  std::uint16_t arg;
  std::uint64_t payload;
};

/// Microsecond timestamp with nanosecond precision, chrome-trace style.
void put_ts_us(std::ostream& out, std::uint64_t ts_ns) {
  out << ts_ns / 1000 << '.' << static_cast<char>('0' + (ts_ns % 1000) / 100)
      << static_cast<char>('0' + (ts_ns % 100) / 10)
      << static_cast<char>('0' + ts_ns % 10);
}

/// Comma bookkeeping shared by the single- and multi-dump writers.
struct EventSink {
  std::ostream& out;
  bool first = true;
  void prefix() {
    if (!first) out << ',';
    first = false;
    out << '\n';
  }
};

/// Render one dump's threads under the given pid, shifting every timestamp
/// by `shift_ns` (the merge's wall-clock alignment; 0 for a lone dump).
void write_dump_events(EventSink& sink, const TraceDump& dump,
                       std::uint64_t pid, std::int64_t shift_ns) {
  std::ostream& out = sink.out;
  const auto shifted = [shift_ns](std::uint64_t ts) {
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(ts) +
                                      shift_ns);
  };

  // Process-name metadata so merged multi-process traces label tracks.
  sink.prefix();
  out << R"({"ph":"M","name":"process_name","pid":)" << pid
      << R"(,"tid":0,"args":{"name":)";
  put_json_string(out, dump.process_name.empty() ? std::string("process")
                                                 : dump.process_name);
  out << "}}";

  for (const auto& thread : dump.threads) {
    sink.prefix();
    out << R"({"ph":"M","name":"thread_name","pid":)" << pid << R"(,"tid":)"
        << thread.tid << R"(,"args":{"name":)";
    put_json_string(out, thread.name);
    out << "}}";

    DecodeStats stats;
    const auto events = decode_thread(thread, &stats);

    // Overwrite-loss counter tracks: one sample per thread makes ring
    // overwrites and the undecodable prefix visible right on the timeline
    // next to the slices they truncated.
    const std::uint64_t counter_ts =
        events.empty() ? 0 : shifted(events.front().ts_ns);
    sink.prefix();
    out << R"({"ph":"C","name":"ring_dropped","pid":)" << pid << R"(,"tid":)"
        << thread.tid << R"(,"ts":)";
    put_ts_us(out, counter_ts);
    out << R"(,"args":{"value":)" << thread.dropped << "}}";
    sink.prefix();
    out << R"({"ph":"C","name":"decode_skipped","pid":)" << pid
        << R"(,"tid":)" << thread.tid << R"(,"ts":)";
    put_ts_us(out, counter_ts);
    out << R"(,"args":{"value":)" << stats.skipped_prefix << "}}";

    // Per-slice-name stacks pair begins with ends; a stack per name (rather
    // than one global stack) keeps interleaved slices of different kinds
    // (e.g. stage_walk inside batch) independent.
    std::array<std::vector<OpenSlice>,
               static_cast<std::size_t>(TraceEvent::kEventCount)>
        open;
    for (const auto& event : events) {
      const auto kind = trace_event_kind(event.event);
      const char* name = trace_event_name(event.event);
      switch (kind) {
        case TraceEventKind::kBegin: {
          // Stack keyed by the END event id sharing this slice name: the
          // matching end is begin + 1 in the event enumeration.
          const auto key = static_cast<std::size_t>(event.event) + 1;
          open[key].push_back(
              OpenSlice{event.event, event.ts_ns, event.arg, event.payload});
          break;
        }
        case TraceEventKind::kEnd: {
          const auto key = static_cast<std::size_t>(event.event);
          if (open[key].empty()) {
            // Unpaired end (its begin was overwritten): render as instant.
            sink.prefix();
            out << R"({"ph":"i","s":"t","name":")" << name
                << R"(","pid":)" << pid << R"(,"tid":)" << thread.tid
                << R"(,"ts":)";
            put_ts_us(out, shifted(event.ts_ns));
            out << "}";
            break;
          }
          const OpenSlice slice = open[key].back();
          open[key].pop_back();
          sink.prefix();
          out << R"({"ph":"X","name":")" << name << R"(","pid":)" << pid
              << R"(,"tid":)" << thread.tid << R"(,"ts":)";
          put_ts_us(out, shifted(slice.ts_ns));
          out << R"(,"dur":)";
          put_ts_us(out, event.ts_ns - slice.ts_ns);
          out << R"(,"args":{"arg":)" << slice.arg << R"(,"payload":)"
              << slice.payload << "}}";
          break;
        }
        case TraceEventKind::kCounter:
          sink.prefix();
          out << R"({"ph":"C","name":")" << name << R"(","pid":)" << pid
              << R"(,"tid":)" << thread.tid << R"(,"ts":)";
          put_ts_us(out, shifted(event.ts_ns));
          out << R"(,"args":{"value":)" << event.payload << "}}";
          break;
        case TraceEventKind::kInstant:
          sink.prefix();
          out << R"({"ph":"i","s":"t","name":")" << name << R"(","pid":)"
              << pid << R"(,"tid":)" << thread.tid << R"(,"ts":)";
          put_ts_us(out, shifted(event.ts_ns));
          out << R"(,"args":{"arg":)" << event.arg << R"(,"payload":)"
              << event.payload << "}}";
          break;
      }
    }
  }
}

/// A dump's wall−mono offset: the last anchor pair of any thread (all
/// threads share one steady clock, so any thread's pair will do).
bool dump_wall_offset(const TraceDump& dump, std::int64_t& offset) {
  for (const auto& thread : dump.threads) {
    DecodeStats stats;
    (void)decode_thread(thread, &stats);
    if (stats.has_wall_offset) {
      offset = stats.wall_minus_mono_ns;
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<DecodedEvent> decode_thread(const ThreadTrace& thread,
                                        DecodeStats* stats) {
  std::vector<DecodedEvent> events;
  events.reserve(thread.records.size());
  bool anchored = false;
  std::uint64_t ts = 0;
  std::uint64_t skipped = 0;
  for (const auto& record : thread.records) {
    const auto event = static_cast<TraceEvent>(record.event);
    if (event == TraceEvent::kTimeSync) {
      ts = record.payload;
      anchored = true;
      continue;
    }
    if (!anchored) {
      ++skipped;  // overwritten anchor: bounded undecodable prefix
      continue;
    }
    ts += record.ts_delta;
    if (event == TraceEvent::kWallClockSync) {
      // The realtime half of the anchor pair: consumed into the offset, not
      // surfaced as a timeline event. Later pairs win (closest to the
      // records that survive the ring).
      if (stats != nullptr) {
        stats->has_wall_offset = true;
        stats->wall_minus_mono_ns = static_cast<std::int64_t>(record.payload) -
                                    static_cast<std::int64_t>(ts);
      }
      continue;
    }
    events.push_back(DecodedEvent{ts, event, record.arg, record.payload});
  }
  if (stats != nullptr) stats->skipped_prefix = skipped;
  return events;
}

void write_perfetto_json(std::ostream& out, const TraceDump& dump) {
  out << "{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [";
  EventSink sink{out};
  write_dump_events(sink, dump, dump.pid != 0 ? dump.pid : 1, 0);
  out << "\n]\n}\n";
}

void write_perfetto_json(std::ostream& out,
                         const std::vector<TraceDump>& dumps) {
  // Wall-clock alignment: every process's records are monotonic-clock
  // timestamps with a process-private origin. Each dump's anchor pairs give
  // wall − mono for that process; shifting process i by (offset_i −
  // min_offset) renders all of them on one coherent timeline while keeping
  // the earliest process unshifted (timestamps stay small and positive).
  std::vector<std::int64_t> offsets(dumps.size(), 0);
  bool all_have_offsets = !dumps.empty();
  for (std::size_t i = 0; i < dumps.size(); ++i) {
    if (!dump_wall_offset(dumps[i], offsets[i])) all_have_offsets = false;
  }
  std::int64_t min_offset = 0;
  if (all_have_offsets) {
    min_offset = offsets[0];
    for (const std::int64_t o : offsets) {
      if (o < min_offset) min_offset = o;
    }
  }

  out << "{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [";
  EventSink sink{out};
  for (std::size_t i = 0; i < dumps.size(); ++i) {
    const std::uint64_t pid =
        dumps[i].pid != 0 ? dumps[i].pid : static_cast<std::uint64_t>(i + 1);
    const std::int64_t shift =
        all_have_offsets ? offsets[i] - min_offset : 0;
    write_dump_events(sink, dumps[i], pid, shift);
  }
  out << "\n]\n}\n";
}

const char* trace_load_status_name(TraceLoadStatus status) {
  switch (status) {
    case TraceLoadStatus::kOk: return "ok";
    case TraceLoadStatus::kIoError: return "io_error";
    case TraceLoadStatus::kBadMagic: return "bad_magic";
    case TraceLoadStatus::kTruncated: return "truncated";
    case TraceLoadStatus::kCorruptHeader: return "corrupt_header";
  }
  return "unknown";
}

void save_trace_dump(const std::string& path, const TraceDump& dump) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace dump: cannot open " + path);
  out.write(kMagic.data(), kMagic.size());
  // Extended header: sentinel, version, process identity. Readers of the
  // legacy layout saw a thread count here; the sentinel can never be one.
  put_u64(out, kProcessHeaderSentinel);
  put_u64(out, kContainerVersion);
  put_u64(out, dump.pid);
  put_u64(out, dump.process_name.size());
  out.write(dump.process_name.data(),
            static_cast<std::streamsize>(dump.process_name.size()));
  put_u64(out, dump.threads.size());
  for (const auto& thread : dump.threads) {
    put_u64(out, thread.name.size());
    out.write(thread.name.data(),
              static_cast<std::streamsize>(thread.name.size()));
    put_u64(out, thread.tid);
    put_u64(out, thread.dropped);
    put_u64(out, thread.records.size());
    for (const auto& record : thread.records) {
      put_u64(out, pack_lo(record));
      put_u64(out, pack_hi(record));
    }
  }
  if (out.flush(); !out) {
    throw std::runtime_error("trace dump: write failed: " + path);
  }
}

TraceLoadStatus load_trace_dump(const std::string& path, TraceDump& out) {
  out = TraceDump{};
  // Read the whole file up front: the parse below validates every claimed
  // length against the REAL byte count, so hostile headers can neither walk
  // past the end nor force allocations the file cannot back.
  std::vector<unsigned char> bytes;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) return TraceLoadStatus::kIoError;
    const std::streamoff size = in.tellg();
    if (size < 0) return TraceLoadStatus::kIoError;
    in.seekg(0);
    try {
      bytes.resize(static_cast<std::size_t>(size));
    } catch (...) {
      return TraceLoadStatus::kIoError;  // file larger than memory
    }
    if (!bytes.empty()) {
      in.read(reinterpret_cast<char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
      if (!in) return TraceLoadStatus::kIoError;
    }
  }

  ByteReader reader{bytes.data(), bytes.size(), 0};
  if (reader.remaining() < kMagic.size() ||
      std::memcmp(reader.data, kMagic.data(), kMagic.size()) != 0) {
    return TraceLoadStatus::kBadMagic;
  }
  reader.pos = kMagic.size();

  std::uint64_t first = 0;
  if (!reader.read_u64(first)) return TraceLoadStatus::kTruncated;
  std::uint64_t threads = 0;
  if (first == kProcessHeaderSentinel) {
    std::uint64_t version = 0;
    if (!reader.read_u64(version)) return TraceLoadStatus::kTruncated;
    if (version != kContainerVersion) return TraceLoadStatus::kCorruptHeader;
    if (!reader.read_u64(out.pid)) return TraceLoadStatus::kTruncated;
    std::uint64_t name_len = 0;
    if (!reader.read_u64(name_len)) return TraceLoadStatus::kTruncated;
    if (name_len > kMaxName) return TraceLoadStatus::kCorruptHeader;
    if (!reader.read_string(out.process_name, name_len)) {
      return TraceLoadStatus::kTruncated;
    }
    if (!reader.read_u64(threads)) return TraceLoadStatus::kTruncated;
  } else {
    threads = first;  // legacy layout: thread count directly after magic
  }
  if (threads > kMaxThreads) return TraceLoadStatus::kCorruptHeader;

  for (std::uint64_t t = 0; t < threads; ++t) {
    ThreadTrace thread;
    std::uint64_t name_len = 0;
    if (!reader.read_u64(name_len)) return TraceLoadStatus::kTruncated;
    if (name_len > kMaxName) return TraceLoadStatus::kCorruptHeader;
    if (!reader.read_string(thread.name, name_len)) {
      return TraceLoadStatus::kTruncated;
    }
    if (!reader.read_u64(thread.tid)) return TraceLoadStatus::kTruncated;
    if (!reader.read_u64(thread.dropped)) return TraceLoadStatus::kTruncated;
    std::uint64_t records = 0;
    if (!reader.read_u64(records)) return TraceLoadStatus::kTruncated;
    // The record section is 16 bytes per record; a count the remaining
    // bytes cannot back is rejected BEFORE the reserve, so an oversized
    // claim costs nothing.
    if (records > reader.remaining() / 16) return TraceLoadStatus::kTruncated;
    thread.records.reserve(static_cast<std::size_t>(records));
    for (std::uint64_t r = 0; r < records; ++r) {
      std::uint64_t lo = 0;
      std::uint64_t hi = 0;
      if (!reader.read_u64(lo) || !reader.read_u64(hi)) {
        return TraceLoadStatus::kTruncated;
      }
      thread.records.push_back(unpack_record(lo, hi));
    }
    out.threads.push_back(std::move(thread));
  }
  return TraceLoadStatus::kOk;
}

TraceDump load_trace_dump(const std::string& path) {
  TraceDump dump;
  const TraceLoadStatus status = load_trace_dump(path, dump);
  if (status != TraceLoadStatus::kOk) {
    throw std::runtime_error(std::string("trace dump: ") +
                             trace_load_status_name(status) + ": " + path);
  }
  return dump;
}

LogHistogram slice_latency_histogram(const TraceDump& dump, TraceEvent begin,
                                     TraceEvent end, bool per_payload_unit) {
  LogHistogram histogram;
  for (const auto& thread : dump.threads) {
    std::vector<OpenSlice> open;
    for (const auto& event : decode_thread(thread)) {
      if (event.event == begin) {
        open.push_back(
            OpenSlice{event.event, event.ts_ns, event.arg, event.payload});
      } else if (event.event == end) {
        if (open.empty()) continue;  // begin overwritten: skip
        const OpenSlice slice = open.back();
        open.pop_back();
        std::uint64_t duration = event.ts_ns - slice.ts_ns;
        if (per_payload_unit && slice.payload > 1) {
          duration /= slice.payload;
        }
        histogram.record(duration);
      }
    }
  }
  return histogram;
}

}  // namespace ofmtl::obs
