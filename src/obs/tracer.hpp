// Process-wide always-on tracing front end: every thread that executes an
// instrumented hot path gets its own TraceRing (created lazily on first
// emit, then cached in a thread-local pointer), and a collector snapshots
// all rings into a TraceDump for export (obs/export.hpp) or histogram
// derivation (obs/histogram.hpp). No plumbing through layer APIs: the
// runtime's workers, the snapshot writer, the replay driver, and the OFP
// event loop all emit through the same two thread-local loads.
//
// Cost model, by configuration:
//   - OFMTL_TRACE off (CMake -DOFMTL_TRACE=OFF): the OFMTL_OBS_EMIT macro
//     expands to nothing — zero instructions, zero bytes, provably zero
//     cost on every hot path.
//   - compiled in, tracing stopped: one relaxed atomic bool load and a
//     predicted-not-taken branch per site (~1 ns).
//   - compiled in, tracing started: one steady-clock read plus three
//     atomic stores per event (~25 ns). Instrumentation sites are BATCH
//     granular (batch dequeue, table stage, publish, flow-mod batch), so
//     the amortized cost is a couple of nanoseconds per packet at worst —
//     gated <5% on bench_parallel via trace/overhead_percent in CI.
//
// Thread-safety: start/stop/collect serialize on an internal mutex; emit is
// lock-free after a thread's one-time ring registration (which takes the
// mutex and allocates the ring — warm up before allocation-counting).
// Rings outlive their producer threads (shared ownership), so a collect
// after ParallelRuntime::stop() still sees every worker's records.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace_event.hpp"
#include "obs/trace_ring.hpp"

namespace ofmtl::obs {

/// True when the hot-path instrumentation sites were compiled in (CMake
/// option OFMTL_TRACE). The obs classes themselves always exist.
#if defined(OFMTL_TRACE_ENABLED)
inline constexpr bool kInstrumentationCompiled = true;
#else
inline constexpr bool kInstrumentationCompiled = false;
#endif

struct TraceOptions {
  /// Per-thread ring capacity in records (rounded up to a power of two).
  /// 32k records = 768 KiB of slots per traced thread.
  std::size_t ring_capacity = std::size_t{1} << 15;
};

/// Everything one thread recorded: raw records in emit order plus identity.
struct ThreadTrace {
  std::string name;          ///< set_thread_name(), or "thread" if unnamed
  std::uint64_t tid = 0;     ///< registration order (stable within a run)
  std::uint64_t dropped = 0;  ///< records lost to ring overwrite
  std::vector<TraceRecord> records;
};

struct TraceDump {
  /// Process identity, stamped by collect_tracing() and carried through the
  /// OFTRACE1 container so merged multi-process timelines label tracks
  /// correctly. pid 0 means "unknown" (e.g. a legacy dump).
  std::uint64_t pid = 0;
  std::string process_name;
  std::vector<ThreadTrace> threads;
};

/// Start a tracing session: clears rings of any previous session and makes
/// emit() live. Threads (re-)register lazily on their next emit.
void start_tracing(const TraceOptions& options = {});

/// Stop accepting new records. Already-recorded rings stay collectable
/// until the next start_tracing().
void stop_tracing();

[[nodiscard]] bool tracing_enabled();

/// Sticky display name for the calling thread's ring (current and future
/// sessions). Allocates; call at thread setup, not in steady state.
void set_thread_name(std::string_view name);

/// Display name collect_tracing() stamps on dumps (defaults to the
/// executable's /proc/self/comm, or "process" when unreadable). Set it in
/// tools that produce dumps destined for a cross-process merge.
void set_process_name(std::string_view name);

/// Snapshot every ring of the current (or just-stopped) session: drains
/// each ring from its cursor, so records appear exactly once across
/// repeated collects. Safe while producers are still emitting.
[[nodiscard]] TraceDump collect_tracing();

/// A shared-ownership view of one live ring, for consumers that must read
/// ring state WITHOUT the registry mutex — the flight recorder pre-registers
/// these at arm time so its crash-signal handler can TraceRing::peek() each
/// ring with nothing but atomic loads. `owner` keeps the ring alive even if
/// the producer thread exits or the session restarts.
struct RingRef {
  std::shared_ptr<void> owner;
  const TraceRing* ring = nullptr;
  std::string name;       ///< display name at snapshot time
  std::uint64_t tid = 0;  ///< registration order (stable within a run)
};

/// Shared references to every ring of the current session. Rings registered
/// AFTER the snapshot are not included — callers that need completeness
/// (the flight recorder) re-snapshot periodically from their poll loop.
[[nodiscard]] std::vector<RingRef> snapshot_rings();

/// The emit entry point behind OFMTL_OBS_EMIT. Noexcept and allocation-free
/// once the calling thread's ring exists; a thread's very first traced emit
/// registers its ring (mutex + allocation, once per thread per session).
void emit(TraceEvent event, std::uint16_t arg, std::uint64_t payload) noexcept;

}  // namespace ofmtl::obs

/// Hot-path instrumentation sites use this macro so -DOFMTL_TRACE=OFF
/// compiles them out entirely (zero cost when off).
#if defined(OFMTL_TRACE_ENABLED)
#define OFMTL_OBS_EMIT(event, arg, payload)                          \
  ::ofmtl::obs::emit((event), static_cast<std::uint16_t>(arg),       \
                     static_cast<std::uint64_t>(payload))
#else
#define OFMTL_OBS_EMIT(event, arg, payload) ((void)0)
#endif
