#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace ofmtl::obs {

namespace {

// ---------------------------------------------------------------------------
// Crash path. Everything the signal handler touches lives here, fixed-size
// or preallocated at arm() time: the handler itself performs only atomic
// loads (TraceRing::peek), memcpy into the preallocated image, and
// open/write/close — the async-signal-safe subset — then re-raises with the
// default disposition so the process still dies with the right signal.
// ---------------------------------------------------------------------------

constexpr std::size_t kMaxCrashRings = 64;
constexpr std::size_t kMaxCrashName = 63;

struct CrashRingSlot {
  const TraceRing* ring = nullptr;
  std::uint64_t tid = 0;
  std::size_t name_len = 0;
  char name[kMaxCrashName + 1] = {};
};

struct CrashPlan {
  std::atomic<bool> armed{false};
  char path[512] = {};
  unsigned char* buffer = nullptr;  // full OFTRACE1 file image
  std::size_t buffer_cap = 0;
  TraceRecord* scratch = nullptr;  // peek() destination, max ring capacity
  std::size_t scratch_cap = 0;
  std::size_t ring_count = 0;
  CrashRingSlot rings[kMaxCrashRings];
  std::uint64_t pid = 0;
  std::size_t pname_len = 0;
  char pname[kMaxCrashName + 1] = {};
  // Keeps the peeked rings alive even if their threads exited. Never
  // touched from the handler.
  std::vector<std::shared_ptr<void>> owners;
  struct sigaction old_segv, old_abrt, old_bus;
  bool handlers_installed = false;
};

CrashPlan g_crash;

// OFTRACE1 extended-header constants, mirrored from export.cpp (the writer
// there is iostream-based and unusable in a handler).
constexpr std::uint64_t kProcessHeaderSentinel = ~std::uint64_t{0};
constexpr std::uint64_t kContainerVersion = 2;

std::size_t put_u64_at(unsigned char* buf, std::size_t pos,
                       std::uint64_t value) {
  for (std::size_t i = 0; i < 8; ++i) {
    buf[pos + i] = static_cast<unsigned char>(value >> (8 * i));
  }
  return pos + 8;
}

/// The handler body: pack every pre-registered ring into the preallocated
/// image and write it with raw syscalls. Returns the image length.
std::size_t build_crash_image() {
  unsigned char* buf = g_crash.buffer;
  std::size_t pos = 0;
  std::memcpy(buf + pos, "OFTRACE1", 8);
  pos += 8;
  pos = put_u64_at(buf, pos, kProcessHeaderSentinel);
  pos = put_u64_at(buf, pos, kContainerVersion);
  pos = put_u64_at(buf, pos, g_crash.pid);
  pos = put_u64_at(buf, pos, g_crash.pname_len);
  std::memcpy(buf + pos, g_crash.pname, g_crash.pname_len);
  pos += g_crash.pname_len;
  pos = put_u64_at(buf, pos, g_crash.ring_count);
  for (std::size_t i = 0; i < g_crash.ring_count; ++i) {
    const CrashRingSlot& slot = g_crash.rings[i];
    pos = put_u64_at(buf, pos, slot.name_len);
    std::memcpy(buf + pos, slot.name, slot.name_len);
    pos += slot.name_len;
    pos = put_u64_at(buf, pos, slot.tid);
    pos = put_u64_at(buf, pos, slot.ring->dropped());
    const std::size_t n = slot.ring->peek(g_crash.scratch,
                                          g_crash.scratch_cap);
    pos = put_u64_at(buf, pos, n);
    for (std::size_t r = 0; r < n; ++r) {
      pos = put_u64_at(buf, pos, pack_lo(g_crash.scratch[r]));
      pos = put_u64_at(buf, pos, pack_hi(g_crash.scratch[r]));
    }
  }
  return pos;
}

void crash_handler(int sig) {
  // One shot: a second fault inside the handler falls straight through to
  // the default disposition instead of recursing.
  if (g_crash.armed.exchange(false)) {
    const std::size_t len = build_crash_image();
    const int fd = ::open(g_crash.path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      std::size_t written = 0;
      while (written < len) {
        const ssize_t n =
            ::write(fd, g_crash.buffer + written, len - written);
        if (n <= 0) break;
        written += static_cast<std::size_t>(n);
      }
      ::close(fd);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void install_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGSEGV, &sa, &g_crash.old_segv);
  ::sigaction(SIGABRT, &sa, &g_crash.old_abrt);
  ::sigaction(SIGBUS, &sa, &g_crash.old_bus);
  g_crash.handlers_installed = true;
}

void uninstall_handlers() {
  if (!g_crash.handlers_installed) return;
  ::sigaction(SIGSEGV, &g_crash.old_segv, nullptr);
  ::sigaction(SIGABRT, &g_crash.old_abrt, nullptr);
  ::sigaction(SIGBUS, &g_crash.old_bus, nullptr);
  g_crash.handlers_installed = false;
}

void copy_bounded(char* dst, std::size_t cap, const std::string& src,
                  std::size_t& out_len) {
  out_len = src.size() < cap ? src.size() : cap;
  std::memcpy(dst, src.data(), out_len);
  dst[out_len] = '\0';
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config)) {
  if (!config_.now_ns) config_.now_ns = &TraceRing::now_ns;
  if (!config_.collect) config_.collect = &collect_tracing;
  slo_state_.resize(config_.slos.size());
}

FlightRecorder::~FlightRecorder() {
  if (armed_) disarm();
}

void FlightRecorder::arm() {
  if (armed_) return;
  if (g_crash.armed.load(std::memory_order_relaxed)) {
    throw std::runtime_error("flight recorder: another recorder is armed");
  }
  refresh_crash_snapshot();
  if (config_.install_crash_handler) install_handlers();
  g_crash.armed.store(true, std::memory_order_release);
  armed_ = true;
}

void FlightRecorder::disarm() {
  if (!armed_) return;
  g_crash.armed.store(false, std::memory_order_release);
  uninstall_handlers();
  delete[] g_crash.buffer;
  g_crash.buffer = nullptr;
  g_crash.buffer_cap = 0;
  delete[] g_crash.scratch;
  g_crash.scratch = nullptr;
  g_crash.scratch_cap = 0;
  g_crash.ring_count = 0;
  g_crash.owners.clear();
  armed_ = false;
}

void FlightRecorder::refresh_crash_snapshot() {
  // Quiesce the handler during the rebuild: a signal landing mid-rebuild
  // skips the dump rather than reading half-updated plan state.
  const bool was_armed =
      g_crash.armed.exchange(false, std::memory_order_acq_rel);

  auto refs = snapshot_rings();
  if (refs.size() > kMaxCrashRings) refs.resize(kMaxCrashRings);

  std::size_t max_capacity = 0;
  std::size_t image_cap = 8 + 5 * 8 + kMaxCrashName;  // magic + ext header
  for (const auto& ref : refs) {
    image_cap += 4 * 8 + kMaxCrashName + ref.ring->capacity() * 16;
    if (ref.ring->capacity() > max_capacity) {
      max_capacity = ref.ring->capacity();
    }
  }

  if (image_cap > g_crash.buffer_cap) {
    delete[] g_crash.buffer;
    g_crash.buffer = new unsigned char[image_cap];
    g_crash.buffer_cap = image_cap;
  }
  if (max_capacity > g_crash.scratch_cap) {
    delete[] g_crash.scratch;
    g_crash.scratch = new TraceRecord[max_capacity];
    g_crash.scratch_cap = max_capacity;
  }

  g_crash.owners.clear();
  g_crash.ring_count = refs.size();
  for (std::size_t i = 0; i < refs.size(); ++i) {
    CrashRingSlot& slot = g_crash.rings[i];
    slot.ring = refs[i].ring;
    slot.tid = refs[i].tid;
    copy_bounded(slot.name, kMaxCrashName, refs[i].name, slot.name_len);
    g_crash.owners.push_back(refs[i].owner);
  }

  g_crash.pid = static_cast<std::uint64_t>(::getpid());
  copy_bounded(g_crash.pname, kMaxCrashName,
               config_.dump_prefix.empty() ? std::string("flight")
                                           : config_.dump_prefix,
               g_crash.pname_len);

  const std::string crash_path =
      config_.dump_dir + "/" + config_.dump_prefix + "_crash.oftrace";
  std::size_t path_len = 0;
  copy_bounded(g_crash.path, sizeof(g_crash.path) - 1, crash_path, path_len);

  if (was_armed) g_crash.armed.store(true, std::memory_order_release);
}

void FlightRecorder::ingest(const TraceDump& dump) {
  for (const auto& thread : dump.threads) {
    ThreadHistory* history = nullptr;
    for (auto& h : threads_) {
      if (h.tid == thread.tid) {
        history = &h;
        break;
      }
    }
    if (history == nullptr) {
      threads_.push_back(ThreadHistory{});
      history = &threads_.back();
      history->tid = thread.tid;
      for (auto& state : slo_state_) {
        state.open_begin_ts.resize(threads_.size());
        state.open_payload.resize(threads_.size());
      }
    }
    history->name = thread.name;
    history->dropped = thread.dropped;
    const std::size_t thread_idx =
        static_cast<std::size_t>(history - threads_.data());

    for (const auto& record : thread.records) {
      const auto event = static_cast<TraceEvent>(record.event);
      if (event == TraceEvent::kTimeSync) {
        history->ts_ns = record.payload;
        history->anchored = true;
        history->records.push_back(RetainedRecord{record, record.payload});
        continue;
      }
      if (!history->anchored) continue;  // bounded undecodable prefix
      history->ts_ns += record.ts_delta;
      if (event == TraceEvent::kWallClockSync) {
        history->has_wall = true;
        history->wall_minus_mono =
            static_cast<std::int64_t>(record.payload) -
            static_cast<std::int64_t>(history->ts_ns);
      }
      history->records.push_back(RetainedRecord{record, history->ts_ns});

      // Fold begin→end slices into each SLO's rolling window as they
      // stream past; open stacks persist across polls so a slice spanning
      // a poll boundary still pairs.
      for (std::size_t s = 0; s < config_.slos.size(); ++s) {
        const SloSpec& slo = config_.slos[s];
        SloState& state = slo_state_[s];
        if (event == slo.begin) {
          state.open_begin_ts[thread_idx].push_back(history->ts_ns);
          state.open_payload[thread_idx].push_back(record.payload);
        } else if (event == slo.end) {
          if (state.open_begin_ts[thread_idx].empty()) continue;
          const std::uint64_t begin_ts = state.open_begin_ts[thread_idx].back();
          const std::uint64_t payload = state.open_payload[thread_idx].back();
          state.open_begin_ts[thread_idx].pop_back();
          state.open_payload[thread_idx].pop_back();
          std::uint64_t duration = history->ts_ns - begin_ts;
          if (slo.per_payload_unit && payload > 1) duration /= payload;
          state.window.record(duration);
        }
      }
    }
  }
}

void FlightRecorder::trim(std::uint64_t now) {
  const std::uint64_t retain_ns = config_.retain_ms * 1'000'000ull;
  if (now <= retain_ns) return;
  const std::uint64_t cutoff = now - retain_ns;
  for (auto& history : threads_) {
    auto& records = history.records;
    std::size_t keep = 0;
    while (keep < records.size() && records[keep].ts_ns < cutoff) ++keep;
    if (keep > 0) records.erase(records.begin(), records.begin() + keep);
  }
}

std::vector<BreachInfo> FlightRecorder::poll() {
  const TraceDump dump = config_.collect();
  ingest(dump);
  trim(config_.now_ns());

  std::vector<BreachInfo> breaches;
  for (std::size_t s = 0; s < config_.slos.size(); ++s) {
    const SloSpec& slo = config_.slos[s];
    SloState& state = slo_state_[s];
    if (state.window.total() < slo.min_samples) continue;
    const auto p50 = static_cast<std::uint64_t>(state.window.quantile(0.50));
    const auto p99 = static_cast<std::uint64_t>(state.window.quantile(0.99));
    const std::uint64_t samples = state.window.total();
    state.window = LogHistogram{};  // window evaluated: start the next one

    const char* reason = nullptr;
    if (slo.max_p99_over_p50 > 0 &&
        static_cast<double>(p99) >
            slo.max_p99_over_p50 * static_cast<double>(p50 > 0 ? p50 : 1)) {
      reason = "p99_over_p50";
    } else if (slo.max_p99_ns > 0 && p99 > slo.max_p99_ns) {
      reason = "p99_ceiling";
    }
    if (reason == nullptr) continue;

    ++breach_count_;
    emit(TraceEvent::kRecorderBreach, static_cast<std::uint16_t>(s), p99);
    breaches.push_back(write_breach(slo, reason, p50, p99, samples));
  }

  // New worker threads may have registered since arm(); keep the crash
  // snapshot current so a late fault still captures every ring.
  if (armed_ && g_crash.ring_count != snapshot_rings().size()) {
    refresh_crash_snapshot();
  }
  return breaches;
}

TraceDump FlightRecorder::dump_retained() const {
  TraceDump dump;
  dump.pid = static_cast<std::uint64_t>(::getpid());
  dump.process_name = config_.dump_prefix;
  for (const auto& history : threads_) {
    ThreadTrace thread;
    thread.name = history.name;
    thread.tid = history.tid;
    thread.dropped = history.dropped;
    if (history.records.empty()) {
      dump.threads.push_back(std::move(thread));
      continue;
    }
    // Re-encode with a synthetic anchor pair at the front: trimming may
    // have dropped the anchor the first retained record's delta was
    // relative to, so deltas are recomputed from the decoded timestamps.
    const std::uint64_t first_ts = history.records.front().ts_ns;
    thread.records.push_back(TraceRecord{
        static_cast<std::uint16_t>(TraceEvent::kTimeSync), 0, 0, first_ts});
    if (history.has_wall) {
      thread.records.push_back(TraceRecord{
          static_cast<std::uint16_t>(TraceEvent::kWallClockSync), 0, 0,
          static_cast<std::uint64_t>(static_cast<std::int64_t>(first_ts) +
                                     history.wall_minus_mono)});
    }
    std::uint64_t prev_ts = first_ts;
    for (const auto& retained : history.records) {
      TraceRecord record = retained.record;
      const std::uint64_t delta = retained.ts_ns - prev_ts;
      if (record.event ==
          static_cast<std::uint16_t>(TraceEvent::kTimeSync)) {
        prev_ts = retained.ts_ns;
        thread.records.push_back(record);  // anchors re-base the decoder
        continue;
      }
      if (delta > 0xffffffffull) {
        thread.records.push_back(
            TraceRecord{static_cast<std::uint16_t>(TraceEvent::kTimeSync), 0,
                        0, retained.ts_ns});
        record.ts_delta = 0;
      } else {
        record.ts_delta = static_cast<std::uint32_t>(delta);
      }
      prev_ts = retained.ts_ns;
      thread.records.push_back(record);
    }
    dump.threads.push_back(std::move(thread));
  }
  return dump;
}

BreachInfo FlightRecorder::write_breach(const SloSpec& slo,
                                        const std::string& reason,
                                        std::uint64_t p50, std::uint64_t p99,
                                        std::uint64_t samples) {
  BreachInfo info;
  info.slo = slo.name;
  info.reason = reason;
  info.p50_ns = p50;
  info.p99_ns = p99;
  info.samples = samples;
  const std::string base = config_.dump_dir + "/" + config_.dump_prefix +
                           "_breach_" + std::to_string(breach_count_);
  info.dump_path = base + ".oftrace";
  info.report_path = base + ".json";

  save_trace_dump(info.dump_path, dump_retained());
  ++dump_count_;

  std::ofstream report(info.report_path);
  report << "{\n"
         << "  \"slo\": \"" << slo.name << "\",\n"
         << "  \"reason\": \"" << reason << "\",\n"
         << "  \"p50_ns\": " << p50 << ",\n"
         << "  \"p99_ns\": " << p99 << ",\n"
         << "  \"samples\": " << samples << ",\n"
         << "  \"max_p99_over_p50\": " << slo.max_p99_over_p50 << ",\n"
         << "  \"max_p99_ns\": " << slo.max_p99_ns << ",\n"
         << "  \"ts_ns\": " << config_.now_ns() << ",\n"
         << "  \"dump\": \"" << info.dump_path << "\"\n"
         << "}\n";
  return info;
}

BreachInfo FlightRecorder::force_dump(const std::string& reason) {
  ++breach_count_;
  SloSpec pseudo;
  pseudo.name = reason;
  return write_breach(pseudo, reason, 0, 0, 0);
}

MetricsRegistry::ProviderHandle FlightRecorder::register_metrics(
    MetricsRegistry& registry) {
  return registry.register_provider([this](MetricsBuilder& builder) {
    builder.counter("ofmtl_recorder_breaches_total",
                    "SLO breaches the flight recorder detected",
                    static_cast<double>(breach_count_));
    builder.counter("ofmtl_recorder_dumps_total",
                    "OFTRACE1 dumps the flight recorder wrote",
                    static_cast<double>(dump_count_));
    std::uint64_t retained = 0;
    for (const auto& history : threads_) retained += history.records.size();
    builder.gauge("ofmtl_recorder_retained_records",
                  "trace records currently held in the rolling history",
                  static_cast<double>(retained));
  });
}

}  // namespace ofmtl::obs
