// Flight recorder: tracing stays always-on, and the ring history that
// explains an anomaly is persisted AT the anomaly instead of being
// overwritten before anyone looks. Two triggers:
//
//   - SLO breach (poll path): each poll() drains the trace rings into a
//     bounded retained history (the last retain_ms per thread) and folds
//     the window's begin→end slice durations into per-SLO LogHistograms.
//     When a window has enough samples, its watermarks are checked against
//     the configured bounds (p99 ≤ ratio × p50 and/or an absolute p99
//     ceiling); a violation dumps the retained history as OFTRACE1 plus a
//     JSON breach report, then the window restarts.
//   - Crash (signal path): arm() pre-registers shared-ownership references
//     to every live ring plus a preallocated file-image buffer, and
//     installs SIGSEGV/SIGABRT/SIGBUS handlers. The handler is
//     async-signal-safe by construction: it reads ring slots via
//     TraceRing::peek() (atomic loads only), packs records into the
//     preallocated buffer, and open()/write()/close()s the dump — no
//     allocation, no locks, no iostreams — then restores the default
//     disposition and re-raises. The emitted file is a normal OFTRACE1
//     (records carry their own kTimeSync/kWallClockSync anchors), so the
//     standard loader and trace_export work on post-mortem dumps.
//
// The recorder is the session's sole ring CONSUMER while armed (drain is
// single-consumer); callers that want a final TraceDump for themselves use
// the retained history via dump_retained(). poll() is caller-driven — no
// background thread — which keeps breach evaluation deterministic under
// the injected now_ns/collect hooks the tests use.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace ofmtl::obs {

/// One tail-latency objective over a begin→end slice pair.
struct SloSpec {
  std::string name;                ///< report key, e.g. "batch"
  TraceEvent begin = TraceEvent::kBatchBegin;
  TraceEvent end = TraceEvent::kBatchEnd;
  bool per_payload_unit = false;   ///< divide durations by begin payload
  double max_p99_over_p50 = 0;     ///< 0 = no ratio bound (e.g. 100.0)
  std::uint64_t max_p99_ns = 0;    ///< 0 = no absolute p99 ceiling
  std::uint64_t min_samples = 64;  ///< window must hold this many slices
};

struct FlightRecorderConfig {
  std::vector<SloSpec> slos;
  /// How much per-thread history survives to a dump.
  std::uint64_t retain_ms = 250;
  /// Breach artifacts land here as <prefix>_breach_<n>.oftrace/.json and
  /// the crash dump as <prefix>_crash.oftrace.
  std::string dump_dir = ".";
  std::string dump_prefix = "flight";
  bool install_crash_handler = true;
  /// Test seams: monotonic clock and ring-collection sources. Defaults are
  /// TraceRing::now_ns and collect_tracing; tests substitute a VirtualClock
  /// hook and synthetic dumps for deterministic breach windows.
  std::function<std::uint64_t()> now_ns;
  std::function<TraceDump()> collect;
};

/// What one breach produced (the artifacts are already on disk).
struct BreachInfo {
  std::string slo;
  std::string reason;       ///< "p99_over_p50" or "p99_ceiling"
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t samples = 0;
  std::string dump_path;
  std::string report_path;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Snapshot the live rings for the crash path and install the signal
  /// handlers. Only one recorder may be armed per process at a time.
  void arm();
  /// Uninstall handlers and release the crash snapshot.
  void disarm();
  [[nodiscard]] bool armed() const { return armed_; }

  /// Drain new records into the retained history, evaluate every SLO whose
  /// window is full, write dump+report for each breach. Returns the
  /// breaches this poll triggered (usually empty).
  std::vector<BreachInfo> poll();

  /// The retained history as a TraceDump (what a breach dump contains).
  [[nodiscard]] TraceDump dump_retained() const;

  /// Force a dump+report now, as if an SLO named `reason` breached —
  /// the operator "snapshot now" button, also used by tests.
  BreachInfo force_dump(const std::string& reason);

  [[nodiscard]] std::uint64_t breaches() const { return breach_count_; }
  [[nodiscard]] std::uint64_t dumps_written() const { return dump_count_; }

  /// Export recorder health (breach/dump counters, retained record count)
  /// into a metrics registry.
  [[nodiscard]] MetricsRegistry::ProviderHandle register_metrics(
      MetricsRegistry& registry);

 private:
  struct RetainedRecord {
    TraceRecord record;
    std::uint64_t ts_ns = 0;  ///< decoded absolute timestamp
  };
  /// Per-producer-thread rolling history plus incremental decode state.
  struct ThreadHistory {
    std::string name;
    std::uint64_t tid = 0;
    std::uint64_t dropped = 0;
    bool anchored = false;
    std::uint64_t ts_ns = 0;            ///< decode accumulator
    bool has_wall = false;
    std::int64_t wall_minus_mono = 0;
    std::vector<RetainedRecord> records;
  };
  /// Cross-poll slice-pairing state, per SLO per thread.
  struct SloState {
    LogHistogram window;
    std::vector<std::vector<std::uint64_t>> open_begin_ts;  // [thread idx]
    std::vector<std::vector<std::uint64_t>> open_payload;
  };

  void ingest(const TraceDump& dump);
  void trim(std::uint64_t now);
  BreachInfo write_breach(const SloSpec& slo, const std::string& reason,
                          std::uint64_t p50, std::uint64_t p99,
                          std::uint64_t samples);
  void refresh_crash_snapshot();

  FlightRecorderConfig config_;
  std::vector<ThreadHistory> threads_;
  std::vector<SloState> slo_state_;
  bool armed_ = false;
  std::uint64_t breach_count_ = 0;
  std::uint64_t dump_count_ = 0;
};

}  // namespace ofmtl::obs
