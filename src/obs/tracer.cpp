#include "obs/tracer.hpp"

#include <unistd.h>

#include <atomic>
#include <fstream>
#include <memory>
#include <mutex>

namespace ofmtl::obs {

namespace {

/// One registered producer thread: its ring plus identity. Shared-owned by
/// the registry and the thread's TLS slot, so whichever dies last frees it
/// — collects after thread exit and thread exits after stop both work.
struct RingEntry {
  explicit RingEntry(std::size_t capacity) : ring(capacity) {}
  TraceRing ring;
  std::string name;     // guarded by the registry mutex
  std::uint64_t tid = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<RingEntry>> entries;
  TraceOptions options;
  std::uint64_t next_tid = 0;
  std::string process_name;  // empty = derive lazily at first collect
};

/// Kernel-reported executable name — the default process label on dumps.
std::string default_process_name() {
  std::ifstream comm("/proc/self/comm");
  std::string name;
  if (comm && std::getline(comm, name) && !name.empty()) return name;
  return "process";
}

Registry& registry() {
  static Registry instance;
  return instance;
}

// The emit fast path reads these two and nothing else. The generation
// invalidates thread-local ring pointers across sessions: start_tracing
// bumps it, and a thread whose cached generation mismatches re-registers.
std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_generation{0};

thread_local std::shared_ptr<RingEntry> tls_entry;
thread_local std::uint64_t tls_generation = 0;
thread_local std::string tls_name;

/// Slow path of emit(): register this thread's ring for the live session.
/// Returns nullptr when the session raced to a stop (the event is dropped).
RingEntry* attach_current_thread(std::uint64_t generation) noexcept {
  try {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    if (!g_enabled.load(std::memory_order_relaxed) ||
        g_generation.load(std::memory_order_relaxed) != generation) {
      return nullptr;
    }
    auto entry = std::make_shared<RingEntry>(reg.options.ring_capacity);
    entry->name = tls_name.empty() ? "thread" : tls_name;
    entry->tid = reg.next_tid++;
    reg.entries.push_back(entry);
    tls_entry = std::move(entry);
    tls_generation = generation;
    return tls_entry.get();
  } catch (...) {
    return nullptr;  // allocation failure: drop the event, never throw
  }
}

}  // namespace

void start_tracing(const TraceOptions& options) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.entries.clear();
  reg.options = options;
  reg.next_tid = 0;
  // Bump the generation BEFORE enabling: a concurrent emit either sees the
  // old generation (and bails at the registration re-check) or the new one.
  g_generation.fetch_add(1, std::memory_order_release);
  g_enabled.store(true, std::memory_order_release);
}

void stop_tracing() { g_enabled.store(false, std::memory_order_release); }

bool tracing_enabled() {
  return g_enabled.load(std::memory_order_acquire);
}

void set_thread_name(std::string_view name) {
  tls_name.assign(name);
  if (tls_entry != nullptr &&
      tls_generation == g_generation.load(std::memory_order_acquire)) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    tls_entry->name = tls_name;
  }
}

void set_process_name(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.process_name.assign(name);
}

TraceDump collect_tracing() {
  // Snapshot the entry list under the lock, drain outside it: drain is
  // lock-free against producers, and holding the registry mutex across it
  // would stall late thread registrations for no reason.
  std::vector<std::shared_ptr<RingEntry>> entries;
  std::string process_name;
  {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    entries = reg.entries;
    if (reg.process_name.empty()) reg.process_name = default_process_name();
    process_name = reg.process_name;
  }
  TraceDump dump;
  dump.pid = static_cast<std::uint64_t>(::getpid());
  dump.process_name = std::move(process_name);
  dump.threads.reserve(entries.size());
  for (const auto& entry : entries) {
    ThreadTrace thread;
    {
      const std::lock_guard<std::mutex> lock(registry().mutex);
      thread.name = entry->name;
    }
    thread.tid = entry->tid;
    (void)entry->ring.drain(thread.records);
    thread.dropped = entry->ring.dropped();
    dump.threads.push_back(std::move(thread));
  }
  return dump;
}

std::vector<RingRef> snapshot_rings() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<RingRef> refs;
  refs.reserve(reg.entries.size());
  for (const auto& entry : reg.entries) {
    RingRef ref;
    ref.owner = entry;  // shared_ptr<RingEntry> → shared_ptr<void>
    ref.ring = &entry->ring;
    ref.name = entry->name;
    ref.tid = entry->tid;
    refs.push_back(std::move(ref));
  }
  return refs;
}

void emit(TraceEvent event, std::uint16_t arg, std::uint64_t payload) noexcept {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  const std::uint64_t generation =
      g_generation.load(std::memory_order_acquire);
  RingEntry* entry = tls_entry.get();
  if (entry == nullptr || tls_generation != generation) {
    entry = attach_current_thread(generation);
    if (entry == nullptr) return;
  }
  entry->ring.emit(event, arg, payload);
}

}  // namespace ofmtl::obs
