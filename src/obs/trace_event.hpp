// Trace-event vocabulary of the observability layer: fixed-size 16-byte
// records in the Perfetto syscall-tracing mold — the hot path records only
// an event id, a compact timestamp delta, and one packed payload word;
// every expensive step (absolute-timestamp reconstruction, event naming,
// begin/end pairing into slices, JSON encoding) is deferred to export time
// (obs/export.hpp), so emitting costs a clock read plus three stores.
//
// Timestamps are deltas, not absolutes: each record carries the nanoseconds
// since the previous record of the SAME ring (32-bit, so up to ~4.29 s of
// silence between records), and the producer interleaves kTimeSync records
// — absolute steady-clock nanoseconds in the payload — at a fixed cadence
// and whenever a delta would overflow. Decoding accumulates deltas from the
// latest sync, which makes the format self-synchronizing: after the ring
// overwrites its oldest records, the decoder simply drops the (bounded)
// prefix before the first surviving sync record.
#pragma once

#include <cstdint>

namespace ofmtl::obs {

/// Every instrumented hot-path event. Values are part of the on-disk trace
/// format (tools/trace_export reads raw records), so append only.
enum class TraceEvent : std::uint16_t {
  kTimeSync = 0,      ///< payload = absolute steady-clock ns (decoder anchor)
  kBatchBegin = 1,    ///< worker dequeued a batch; payload = packet count
  kBatchEnd = 2,      ///< batch classified; payload = packet count
  kStageBegin = 3,    ///< table stage walk; arg = table, payload = lanes
  kStageEnd = 4,      ///< table stage done; arg = table, payload = lanes
  kPublishBegin = 5,  ///< left-right publish entered; payload = epoch
  kPublishEnd = 6,    ///< left-right publish complete; payload = epoch
  kStealAttempt = 7,  ///< worker went dry and scanned siblings; arg = self
  kStealSuccess = 8,  ///< batch popped from a sibling; arg = victim queue
  kCacheHits = 9,     ///< flow-cache hits in one batch; payload = count
  kCacheMisses = 10,  ///< flow-cache misses in one batch; payload = count
  kCacheEpochInvalidations = 11,  ///< stale-epoch hits voided; payload = count
  kReplayPassBegin = 12,  ///< trace replay pass; payload = pass index
  kReplayPassEnd = 13,    ///< trace replay pass done; payload = packets
  kOfpRead = 14,    ///< OFP session ingested bytes; arg = session, payload = n
  kOfpDecode = 15,  ///< OFP frame decode attempt; arg = session,
                    ///< payload = (status << 32) | frame bytes
  kOfpApplyBegin = 16,  ///< flow-mod batch handed to the sink; payload = mods
  kOfpApplyEnd = 17,    ///< flow-mod batch published; payload = mods
  kSimdFallback = 18,   ///< CPU lacks the compiled vector ISA; payload =
                        ///< the simd::Level actually selected (one-shot)
  kWallClockSync = 19,  ///< payload = realtime (wall) ns; always emitted
                        ///< immediately after a kTimeSync anchor, so the
                        ///< (mono, wall) pair aligns rings from different
                        ///< PROCESSES on one timeline (trace_export --merge)
  kOfpReadBegin = 20,   ///< session ingest slice opened; payload = bytes
  kOfpReadEnd = 21,     ///< session ingest slice closed; payload = bytes
  kOfpDecodeBegin = 22,  ///< frame decode slice; arg = session
  kOfpDecodeEnd = 23,    ///< decode done; payload = (status << 32) | bytes
  kOfpBarrierBegin = 24,  ///< echo/barrier handling; arg = session
  kOfpBarrierEnd = 25,    ///< barrier reply queued; arg = session
  kRecorderBreach = 26,   ///< flight-recorder SLO breach; arg = SLO index,
                          ///< payload = observed p99 ns
  kEventCount           ///< sentinel — not a real event
};

/// How an event renders in a chrome://tracing / Perfetto timeline.
enum class TraceEventKind : std::uint8_t {
  kInstant,  ///< a point marker (ph "i")
  kBegin,    ///< opens a duration slice (paired with its kEnd into ph "X")
  kEnd,      ///< closes the innermost open slice of the same pair
  kCounter,  ///< a sampled counter value (ph "C")
};

/// One trace record exactly as it sits in the ring: 16 bytes, trivially
/// copyable, decoded only at export time.
struct TraceRecord {
  std::uint16_t event = 0;     ///< TraceEvent
  std::uint16_t arg = 0;       ///< small event-specific argument
  std::uint32_t ts_delta = 0;  ///< ns since the previous record in this ring
  std::uint64_t payload = 0;   ///< event-specific payload word
};
static_assert(sizeof(TraceRecord) == 16, "records are fixed 16-byte");

/// The ring stores records as two 64-bit words (its slots are atomics, so a
/// concurrent drain never reads torn bytes under TSan); pack/unpack is the
/// bijection between the struct and that wire form. Field layout is fixed
/// little-endian-in-the-word, so a dump written on one machine decodes
/// identically on another.
[[nodiscard]] constexpr std::uint64_t pack_lo(const TraceRecord& r) {
  return static_cast<std::uint64_t>(r.event) |
         (static_cast<std::uint64_t>(r.arg) << 16) |
         (static_cast<std::uint64_t>(r.ts_delta) << 32);
}
[[nodiscard]] constexpr std::uint64_t pack_hi(const TraceRecord& r) {
  return r.payload;
}
[[nodiscard]] constexpr TraceRecord unpack_record(std::uint64_t lo,
                                                  std::uint64_t hi) {
  TraceRecord r;
  r.event = static_cast<std::uint16_t>(lo & 0xffff);
  r.arg = static_cast<std::uint16_t>((lo >> 16) & 0xffff);
  r.ts_delta = static_cast<std::uint32_t>(lo >> 32);
  r.payload = hi;
  return r;
}

/// Stable display name (also the slice name begin/end pairs share).
[[nodiscard]] constexpr const char* trace_event_name(TraceEvent event) {
  switch (event) {
    case TraceEvent::kTimeSync: return "time_sync";
    case TraceEvent::kBatchBegin:
    case TraceEvent::kBatchEnd: return "batch";
    case TraceEvent::kStageBegin:
    case TraceEvent::kStageEnd: return "stage_walk";
    case TraceEvent::kPublishBegin:
    case TraceEvent::kPublishEnd: return "publish";
    case TraceEvent::kStealAttempt: return "steal_attempt";
    case TraceEvent::kStealSuccess: return "steal_success";
    case TraceEvent::kCacheHits: return "cache_hits";
    case TraceEvent::kCacheMisses: return "cache_misses";
    case TraceEvent::kCacheEpochInvalidations: return "cache_epoch_inval";
    case TraceEvent::kReplayPassBegin:
    case TraceEvent::kReplayPassEnd: return "replay_pass";
    case TraceEvent::kOfpRead: return "ofp_read";
    case TraceEvent::kOfpDecode: return "ofp_decode";
    case TraceEvent::kOfpApplyBegin:
    case TraceEvent::kOfpApplyEnd: return "ofp_apply";
    case TraceEvent::kSimdFallback: return "simd_fallback";
    case TraceEvent::kWallClockSync: return "wall_clock_sync";
    case TraceEvent::kOfpReadBegin:
    case TraceEvent::kOfpReadEnd: return "ofp_ingest";
    case TraceEvent::kOfpDecodeBegin:
    case TraceEvent::kOfpDecodeEnd: return "ofp_decode";
    case TraceEvent::kOfpBarrierBegin:
    case TraceEvent::kOfpBarrierEnd: return "ofp_barrier";
    case TraceEvent::kRecorderBreach: return "recorder_breach";
    case TraceEvent::kEventCount: break;
  }
  return "unknown";
}

[[nodiscard]] constexpr TraceEventKind trace_event_kind(TraceEvent event) {
  switch (event) {
    case TraceEvent::kBatchBegin:
    case TraceEvent::kStageBegin:
    case TraceEvent::kPublishBegin:
    case TraceEvent::kReplayPassBegin:
    case TraceEvent::kOfpApplyBegin:
    case TraceEvent::kOfpReadBegin:
    case TraceEvent::kOfpDecodeBegin:
    case TraceEvent::kOfpBarrierBegin: return TraceEventKind::kBegin;
    case TraceEvent::kBatchEnd:
    case TraceEvent::kStageEnd:
    case TraceEvent::kPublishEnd:
    case TraceEvent::kReplayPassEnd:
    case TraceEvent::kOfpApplyEnd:
    case TraceEvent::kOfpReadEnd:
    case TraceEvent::kOfpDecodeEnd:
    case TraceEvent::kOfpBarrierEnd: return TraceEventKind::kEnd;
    case TraceEvent::kCacheHits:
    case TraceEvent::kCacheMisses:
    case TraceEvent::kCacheEpochInvalidations: return TraceEventKind::kCounter;
    default: return TraceEventKind::kInstant;
  }
}

}  // namespace ofmtl::obs
