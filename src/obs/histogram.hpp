// Log-bucketed latency histogram: fixed-size, allocation-free after
// construction, mergeable across workers — the reduction that turns
// per-batch trace records into p50/p99/p99.9 tail metrics.
//
// Bucket layout (HDR-histogram style): values 0..15 get exact unit buckets;
// above that, each power-of-two octave is split into 16 linear sub-buckets,
// so the relative quantization error is bounded by 1/16 (6.25%) at every
// magnitude up to 2^63. That gives 976 fixed 8-byte counters (~7.6 KiB) —
// cheap enough to keep one per stage per worker and merge at report time.
// merge() is elementwise addition, so it is associative and commutative and
// merging two histograms equals recording the union of their samples
// (property-tested in tests/test_obs_histogram.cpp).
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace ofmtl::obs {

class LogHistogram {
 public:
  /// Linear sub-buckets per power-of-two octave (log2).
  static constexpr unsigned kSubBucketBits = 4;
  static constexpr std::uint64_t kSubBuckets = 1u << kSubBucketBits;
  /// Highest octave: values up to 2^64-1 (bit width 64 → octave 60).
  static constexpr std::size_t kBucketCount = 61 * kSubBuckets;

  /// Bucket holding `value`. Total order: bucket boundaries are contiguous
  /// (bucket_upper(i) + 1 == bucket_lower(i + 1)).
  [[nodiscard]] static constexpr std::size_t bucket_index(
      std::uint64_t value) {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    const unsigned msb = std::bit_width(value) - 1;  // >= kSubBucketBits
    const unsigned octave = msb - kSubBucketBits + 1;
    const std::uint64_t sub =
        (value >> (msb - kSubBucketBits)) & (kSubBuckets - 1);
    return static_cast<std::size_t>((octave << kSubBucketBits) | sub);
  }

  /// Smallest value mapping into bucket `index`.
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(
      std::size_t index) {
    const std::uint64_t octave = index >> kSubBucketBits;
    const std::uint64_t sub = index & (kSubBuckets - 1);
    if (octave == 0) return sub;
    return (kSubBuckets + sub) << (octave - 1);
  }

  /// Largest value mapping into bucket `index` (inclusive).
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(
      std::size_t index) {
    const std::uint64_t octave = index >> kSubBucketBits;
    if (octave == 0) return bucket_lower(index);
    return bucket_lower(index) + (std::uint64_t{1} << (octave - 1)) - 1;
  }

  void record(std::uint64_t value) { record(value, 1); }
  void record(std::uint64_t value, std::uint64_t count) {
    counts_[bucket_index(value)] += count;
    total_ += count;
  }

  /// Elementwise add: afterwards *this holds the union of both sample sets.
  void merge(const LogHistogram& other) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Quantile estimate: the inclusive upper bound of the bucket holding the
  /// q-th sample (rank ceil(q * total), clamped to [1, total]) — within one
  /// bucket (<= 6.25% relative) of the exact order statistic. 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const {
    if (total_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total_) + 0.9999999);
    if (rank == 0) rank = 1;
    if (rank > total_) rank = total_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      seen += counts_[i];
      if (seen >= rank) return bucket_upper(i);
    }
    return bucket_upper(kBucketCount - 1);
  }

  /// Bucket-midpoint mean (same <= one-bucket error bound). 0 when empty.
  [[nodiscard]] double mean() const {
    if (total_ == 0) return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      if (counts_[i] == 0) continue;
      const double mid = 0.5 * (static_cast<double>(bucket_lower(i)) +
                                static_cast<double>(bucket_upper(i)));
      sum += mid * static_cast<double>(counts_[i]);
    }
    return sum / static_cast<double>(total_);
  }

  [[nodiscard]] std::uint64_t bucket_count_at(std::size_t index) const {
    return counts_[index];
  }

 private:
  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace ofmtl::obs
