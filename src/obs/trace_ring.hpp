// Lock-free single-producer trace ring: the flight recorder one thread
// emits into. Fixed power-of-two capacity laid out at construction, no
// allocation and no locks on the emit path, and overwrite-oldest semantics
// on wrap — the producer NEVER blocks or drops the newest record; a slow
// (or absent) drain simply loses the oldest history, which is the right
// trade for always-on tracing.
//
// Concurrency contract (single producer, single consumer):
//   - emit()/push() may be called by exactly one thread (the ring's owner);
//   - drain() may be called by exactly one other thread, concurrently with
//     the producer — each published record is either drained exactly once
//     (in emit order) or counted in dropped(), never duplicated;
//   - every slot is a miniature seqlock over two atomic payload words: the
//     producer marks the slot busy (odd sequence), stores the packed
//     record, then publishes the even sequence with release order. The
//     consumer validates the sequence after copying; a slot the producer
//     lapped mid-copy is discarded and counted dropped, so torn reads are
//     impossible and the scheme is clean under ThreadSanitizer (all shared
//     words are atomics — no byte races, no fences over plain memory).
//
// Memory ordering argument (the exactly-once claim):
//   - producer: lo/hi relaxed stores → seq release-store(2g+2) → head
//     release-store(g+1). A consumer that acquire-loads head > g therefore
//     observes slot g's stable sequence and payload.
//   - consumer: copies lo/hi (relaxed), then acquire-fences and re-reads
//     seq. If the producer began rewriting the slot (generation g+capacity)
//     during the copy, the first write it made was the odd busy sequence —
//     the re-read cannot miss it, so a torn copy never validates.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/trace_event.hpp"
#include "runtime/cache_line.hpp"

namespace ofmtl::obs {

class TraceRing {
 public:
  /// Records between the automatic kTimeSync anchors emit() interleaves.
  /// Bounded by capacity/2 so any full window of surviving records holds at
  /// least one anchor (decode drops at most one cadence worth of prefix).
  static constexpr std::uint64_t kSyncCadence = 1024;

  /// `capacity` is rounded up to a power of two (minimum 4). Slots are laid
  /// out up front — the ring never allocates again.
  explicit TraceRing(std::size_t capacity) {
    std::size_t cap = 4;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    sync_cadence_ = kSyncCadence < cap / 2 ? kSyncCadence : cap / 2;
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Producer: append one raw record (no clock, no sync interleaving — the
  /// deterministic primitive the wrap/drain property tests drive directly).
  void push(const TraceRecord& record) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[h & mask_];
    slot.seq.store(2 * h + 1, std::memory_order_relaxed);  // busy (odd)
    std::atomic_thread_fence(std::memory_order_release);
    slot.lo.store(pack_lo(record), std::memory_order_relaxed);
    slot.hi.store(pack_hi(record), std::memory_order_relaxed);
    slot.seq.store(2 * h + 2, std::memory_order_release);  // stable (even)
    head_.store(h + 1, std::memory_order_release);
  }

  /// Producer: timestamp `event` now and append it, interleaving anchor
  /// pairs — kTimeSync (monotonic ns) immediately followed by
  /// kWallClockSync (realtime ns) — at the cadence and on 32-bit delta
  /// overflow. The wall half is what lets trace_export --merge align dumps
  /// from different PROCESSES (each with its own steady-clock origin) on
  /// one timeline. Allocation-free, lock-free, noexcept — the hot-path
  /// entry point.
  void emit(TraceEvent event, std::uint16_t arg,
            std::uint64_t payload) noexcept {
    const std::uint64_t now = now_ns();
    std::uint64_t delta = now - last_ts_;
    if (records_since_sync_ >= sync_cadence_ || delta > 0xffffffffull ||
        head_.load(std::memory_order_relaxed) == 0) {
      push(TraceRecord{static_cast<std::uint16_t>(TraceEvent::kTimeSync), 0, 0,
                       now});
      push(TraceRecord{static_cast<std::uint16_t>(TraceEvent::kWallClockSync),
                       0, 0, wall_now_ns()});
      records_since_sync_ = 0;
      last_ts_ = now;
      delta = 0;
    }
    push(TraceRecord{static_cast<std::uint16_t>(event), arg,
                     static_cast<std::uint32_t>(delta), payload});
    ++records_since_sync_;
    last_ts_ = now;
  }

  /// Consumer: append every record published since the last drain to `out`,
  /// oldest first; returns how many were appended. Records the producer
  /// overwrote before (or while) being copied are skipped and counted in
  /// dropped(). Safe concurrently with emit()/push(); one consumer only.
  std::size_t drain(std::vector<TraceRecord>& out) {
    std::uint64_t t = tail_;
    std::uint64_t h = head_.load(std::memory_order_acquire);
    std::size_t appended = 0;
    while (t != h) {
      if (h - t > capacity_) {
        // Producer lapped the unread window: everything older than one
        // capacity behind head is gone.
        dropped_.fetch_add(h - capacity_ - t, std::memory_order_relaxed);
        t = h - capacity_;
        continue;
      }
      Slot& slot = slots_[t & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (seq == 2 * t + 2) {
        const std::uint64_t lo = slot.lo.load(std::memory_order_relaxed);
        const std::uint64_t hi = slot.hi.load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.seq.load(std::memory_order_relaxed) == seq) {
          out.push_back(unpack_record(lo, hi));
          ++appended;
          ++t;
          continue;
        }
      }
      // The slot holds (or is becoming) a later generation. Re-read head:
      // either the lap is published (skip the lost records above) or the
      // producer is mid-write on exactly this slot (retry; it finishes in
      // a bounded handful of stores).
      h = head_.load(std::memory_order_acquire);
    }
    tail_ = t;
    return appended;
  }

  /// Crash-path consumer: copy the newest published records (up to `max`,
  /// oldest-first) into `out` WITHOUT advancing the drain cursor or touching
  /// any non-atomic state. Async-signal-safe: only atomic loads into a
  /// caller-provided buffer — no allocation, no locks, no librt. Torn slots
  /// (producer mid-write when the signal landed) fail seqlock validation and
  /// are skipped, so the copy is always a consistent suffix sample. Safe to
  /// call from a signal handler running on ANY thread while producers keep
  /// emitting; may race an in-progress drain (it reads, never writes).
  std::size_t peek(TraceRecord* out, std::size_t max) const noexcept {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    std::uint64_t window = h < capacity_ ? h : capacity_;
    if (window > max) window = max;
    std::size_t copied = 0;
    for (std::uint64_t t = h - window; t != h; ++t) {
      const Slot& slot = slots_[t & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (seq != 2 * t + 2) continue;  // overwritten or mid-write: skip
      const std::uint64_t lo = slot.lo.load(std::memory_order_relaxed);
      const std::uint64_t hi = slot.hi.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq) continue;
      out[copied++] = unpack_record(lo, hi);
    }
    return copied;
  }

  /// Total records emitted (producer-side, racy read from elsewhere).
  [[nodiscard]] std::uint64_t emitted() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Records overwritten before a drain could copy them.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Steady-clock nanoseconds — the one clock every ring shares, so slices
  /// from different threads align on one timeline at export.
  [[nodiscard]] static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Realtime (wall) nanoseconds — the second half of each anchor pair.
  /// Wall time can step (NTP), which is exactly why it is only ever used to
  /// compute a per-process wall−mono offset at export, never for deltas.
  [[nodiscard]] static std::uint64_t wall_now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  }

 private:
  /// 16-byte record + 8-byte seqlock word; atomics so the concurrent drain
  /// is race-free by construction (validated, never torn).
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> lo{0};
    std::atomic<std::uint64_t> hi{0};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::uint64_t sync_cadence_ = kSyncCadence;
  // Producer-owned (single writer): cursor plus delta/sync bookkeeping.
  alignas(ofmtl::runtime::kCacheLine) std::atomic<std::uint64_t> head_{0};
  std::uint64_t last_ts_ = 0;
  std::uint64_t records_since_sync_ = 0;
  // Consumer-owned.
  alignas(ofmtl::runtime::kCacheLine) std::uint64_t tail_ = 0;
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace ofmtl::obs
