// Live metrics plane: a pull-model registry that aggregates the runtime's
// existing lock-free state (WorkerStats, flow-cache counters, publisher
// epochs, OFP server session stats) into Prometheus text and JSON on
// demand — the read side of the stats endpoint src/ofp/server serves.
//
// Design:
//   - Instruments (Counter/Gauge) are plain atomics the OWNING subsystem
//     updates on its own cadence; nothing on a hot path ever touches the
//     registry. A scrape is the only place values are read.
//   - Providers are callbacks registered by subsystems (the runtime, the
//     OFP server, the flight recorder); each scrape invokes every provider
//     with a MetricsBuilder and renders whatever it emitted. RAII handles
//     unregister on destruction, so a dying runtime can never leave a
//     dangling callback behind — the classic crash mode of callback
//     registries.
//   - Thread-safety: register/unregister/scrape serialize on one mutex;
//     provider callbacks run under it (scrapes are rare and read atomics,
//     so the critical section is microseconds). Instruments themselves are
//     wait-free from any thread, which is what the TSan suite drives.
//
// Exposition: render_prometheus() emits the text format (one # HELP/# TYPE
// pair per family, samples with optional pre-rendered labels);
// render_json() the same samples as a JSON array. Histograms are exported
// by their owners as quantile-labelled gauge samples (the LogHistogram
// already answers quantile()), so the registry needs no histogram type.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ofmtl::obs {

/// Monotonically increasing value (wait-free add from any thread).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value (wait-free set from any thread). Stored as a double
/// bit-pattern in a u64 atomic — no atomic<double> portability caveats.
class Gauge {
 public:
  void set(double v) noexcept {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    const std::uint64_t bits = bits_.load(std::memory_order_relaxed);
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

 private:
  std::atomic<std::uint64_t> bits_{0};
};

/// What one provider emits during a scrape. `labels` is the pre-rendered
/// Prometheus label body WITHOUT braces (e.g. `worker="3"`), empty for an
/// unlabelled sample — providers own their label vocabulary.
class MetricsBuilder {
 public:
  void counter(std::string_view family, std::string_view help, double value,
               std::string_view labels = {});
  void gauge(std::string_view family, std::string_view help, double value,
             std::string_view labels = {});

 private:
  friend class MetricsRegistry;
  struct Sample {
    std::string family;
    std::string help;
    bool is_counter = false;
    double value = 0;
    std::string labels;
  };
  std::vector<Sample> samples_;
};

/// Pull-model registry; see the file comment for the concurrency contract.
class MetricsRegistry {
 public:
  using Provider = std::function<void(MetricsBuilder&)>;

  /// Unregisters its provider on destruction (move-only). Outliving the
  /// registry is harmless — the handle holds an epoch, not a pointer into
  /// live registry state it could corrupt.
  class ProviderHandle {
   public:
    ProviderHandle() = default;
    ProviderHandle(ProviderHandle&& other) noexcept;
    ProviderHandle& operator=(ProviderHandle&& other) noexcept;
    ProviderHandle(const ProviderHandle&) = delete;
    ProviderHandle& operator=(const ProviderHandle&) = delete;
    ~ProviderHandle();
    void reset();

   private:
    friend class MetricsRegistry;
    MetricsRegistry* registry_ = nullptr;
    std::uint64_t id_ = 0;
  };

  [[nodiscard]] ProviderHandle register_provider(Provider provider);

  /// Prometheus text exposition format (text/plain; version=0.0.4).
  [[nodiscard]] std::string render_prometheus();
  /// The same samples as a JSON array of {name, type, labels, value}.
  [[nodiscard]] std::string render_json();

  /// Providers currently registered (tests / the stats endpoint).
  [[nodiscard]] std::size_t provider_count();

 private:
  void unregister(std::uint64_t id);
  [[nodiscard]] std::vector<MetricsBuilder::Sample> scrape();

  struct Entry {
    std::uint64_t id = 0;
    Provider provider;
  };
  std::mutex mutex_;
  std::vector<Entry> entries_;
  std::uint64_t next_id_ = 1;
};

/// The process-wide registry the stats endpoint serves.
[[nodiscard]] MetricsRegistry& default_registry();

}  // namespace ofmtl::obs
