// Export-time decoding of trace dumps — the deferred half of the Perfetto
// model: the rings store raw 16-byte records; everything human-facing
// happens here, offline, away from the hot paths.
//
//   - decode_thread(): delta → absolute-timestamp reconstruction. Records
//     before the first surviving kTimeSync anchor are undecodable (their
//     base was overwritten with the ring's oldest history) and are dropped;
//     the anchor cadence bounds that prefix to min(1024, capacity/2)
//     records. Decoded timestamps are monotone non-decreasing per thread by
//     construction (unsigned deltas accumulated from a monotonic clock).
//   - write_perfetto_json(): chrome://tracing "traceEvents" JSON. Begin/end
//     records pair into complete "X" slices (per-thread, per-slice-name
//     stack, so nested slices work); counters render as "C" tracks;
//     everything else as instants. Loads directly in ui.perfetto.dev and
//     chrome://tracing.
//   - save/load_trace_dump(): a tiny self-describing binary container
//     ("OFTRACE1") holding the raw records, so a run can dump cheaply and
//     tools/trace_export can decode later or elsewhere.
//   - slice_latency_histogram(): begin→end durations folded into a
//     LogHistogram — the p99/p99.9 source the bench tail gates consume.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/tracer.hpp"

namespace ofmtl::obs {

/// One record with its absolute steady-clock timestamp reconstructed.
struct DecodedEvent {
  std::uint64_t ts_ns = 0;
  TraceEvent event = TraceEvent::kTimeSync;
  std::uint16_t arg = 0;
  std::uint64_t payload = 0;
};

/// Reconstruct absolute timestamps for one thread's records (kTimeSync
/// anchors consumed, not returned). Records before the first anchor are
/// dropped — see the header comment for the bound.
[[nodiscard]] std::vector<DecodedEvent> decode_thread(
    const ThreadTrace& thread);

/// Render the dump as chrome://tracing / Perfetto JSON onto `out`.
void write_perfetto_json(std::ostream& out, const TraceDump& dump);

/// Binary trace container ("OFTRACE1"). save throws std::runtime_error on
/// I/O failure; load throws std::runtime_error on I/O failure or a
/// malformed/truncated file.
void save_trace_dump(const std::string& path, const TraceDump& dump);
[[nodiscard]] TraceDump load_trace_dump(const std::string& path);

/// Fold every begin→end pair of the given slice across all threads into a
/// duration histogram (nanoseconds). With `per_payload_unit`, each duration
/// is divided by the BEGIN record's payload (e.g. the batch's packet count)
/// before recording — per-packet latency from per-batch records.
[[nodiscard]] LogHistogram slice_latency_histogram(const TraceDump& dump,
                                                   TraceEvent begin,
                                                   TraceEvent end,
                                                   bool per_payload_unit);

}  // namespace ofmtl::obs
