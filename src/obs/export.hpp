// Export-time decoding of trace dumps — the deferred half of the Perfetto
// model: the rings store raw 16-byte records; everything human-facing
// happens here, offline, away from the hot paths.
//
//   - decode_thread(): delta → absolute-timestamp reconstruction. Records
//     before the first surviving kTimeSync anchor are undecodable (their
//     base was overwritten with the ring's oldest history) and are dropped;
//     the anchor cadence bounds that prefix to min(1024, capacity/2)
//     records. Decoded timestamps are monotone non-decreasing per thread by
//     construction (unsigned deltas accumulated from a monotonic clock).
//     kWallClockSync records (the realtime half of each anchor pair) are
//     consumed into DecodeStats::wall_minus_mono_ns — the per-process clock
//     offset the cross-process merge uses to align timelines.
//   - write_perfetto_json(): chrome://tracing "traceEvents" JSON. Begin/end
//     records pair into complete "X" slices (per-thread, per-slice-name
//     stack, so nested slices work); counters render as "C" tracks;
//     everything else as instants. Each dump carries its real pid and a
//     process_name metadata event, and every thread gets ring_dropped /
//     decode_skipped counter samples so overwrite loss is visible on the
//     timeline. The multi-dump overload renders several processes on ONE
//     timeline, shifting each by its wall−mono offset so a controller and
//     a switch recorded on different steady-clock origins line up. Loads
//     directly in ui.perfetto.dev and chrome://tracing.
//   - save/load_trace_dump(): a tiny self-describing binary container
//     ("OFTRACE1") holding the raw records plus process identity, so a run
//     can dump cheaply and tools/trace_export can decode later or
//     elsewhere. The loader is hardened against hostile bytes: it returns a
//     TraceLoadStatus — it never throws and never allocates beyond what the
//     actual file size can back, no matter what the headers claim.
//   - slice_latency_histogram(): begin→end durations folded into a
//     LogHistogram — the p99/p99.9 source the bench tail gates consume.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/tracer.hpp"

namespace ofmtl::obs {

/// One record with its absolute steady-clock timestamp reconstructed.
struct DecodedEvent {
  std::uint64_t ts_ns = 0;
  TraceEvent event = TraceEvent::kTimeSync;
  std::uint16_t arg = 0;
  std::uint64_t payload = 0;
};

/// Byproducts of decoding one thread's records.
struct DecodeStats {
  /// Records dropped because their kTimeSync base was overwritten (the
  /// undecodable prefix; bounded by the anchor cadence).
  std::uint64_t skipped_prefix = 0;
  /// realtime − monotonic at the last surviving anchor pair, when the dump
  /// contains kWallClockSync records (older dumps do not).
  bool has_wall_offset = false;
  std::int64_t wall_minus_mono_ns = 0;
};

/// Reconstruct absolute timestamps for one thread's records (kTimeSync /
/// kWallClockSync anchors consumed, not returned). Records before the first
/// anchor are dropped — see the header comment for the bound.
[[nodiscard]] std::vector<DecodedEvent> decode_thread(
    const ThreadTrace& thread, DecodeStats* stats = nullptr);

/// Render one dump as chrome://tracing / Perfetto JSON onto `out`.
void write_perfetto_json(std::ostream& out, const TraceDump& dump);

/// Render several dumps (typically one per PROCESS) on one timeline. When
/// every dump carries wall-clock anchors, each process's monotonic
/// timestamps are shifted by its wall−mono offset relative to the earliest
/// process, aligning controller and switch on real time; dumps without
/// anchors render unshifted.
void write_perfetto_json(std::ostream& out,
                         const std::vector<TraceDump>& dumps);

/// Why a load failed (kOk = it didn't). Every other value means the file
/// was rejected without throwing and without oversized allocation.
enum class TraceLoadStatus {
  kOk,
  kIoError,       ///< cannot open / read the file
  kBadMagic,      ///< missing or wrong OFTRACE1 magic
  kTruncated,     ///< a section claims more bytes than the file holds
  kCorruptHeader, ///< a count or length field fails its sanity cap
};

[[nodiscard]] const char* trace_load_status_name(TraceLoadStatus status);

/// Binary trace container ("OFTRACE1"). save throws std::runtime_error on
/// I/O failure (writer-side errors are programmer-visible); the status
/// overload of load NEVER throws — hostile bytes yield a status, and every
/// allocation is bounded by the real file size before it is made.
void save_trace_dump(const std::string& path, const TraceDump& dump);
[[nodiscard]] TraceLoadStatus load_trace_dump(const std::string& path,
                                              TraceDump& out);
/// Convenience wrapper: throws std::runtime_error naming the status.
[[nodiscard]] TraceDump load_trace_dump(const std::string& path);

/// Fold every begin→end pair of the given slice across all threads into a
/// duration histogram (nanoseconds). With `per_payload_unit`, each duration
/// is divided by the BEGIN record's payload (e.g. the batch's packet count)
/// before recording — per-packet latency from per-batch records.
[[nodiscard]] LogHistogram slice_latency_histogram(const TraceDump& dump,
                                                   TraceEvent begin,
                                                   TraceEvent end,
                                                   bool per_payload_unit);

}  // namespace ofmtl::obs
