// Flow-cache key extraction: a 64-bit digest of a packet's full field tuple
// (present mask + every present field value). Two headers hash equal whenever
// PacketHeader::operator== holds, so an exact-match flow cache can use the
// hash to pick a slot and full-header equality to confirm — no per-field
// knowledge of what the tables actually match on is needed, which is what
// makes a cached final result trivially bitwise-identical to the pipeline's.
#pragma once

#include <cstdint>

#include "net/header.hpp"

namespace ofmtl {

/// splitmix64-chained digest of `header`'s field tuple. Consistent with
/// PacketHeader equality: equal headers produce equal hashes (absent fields
/// are always zero, so hashing only present fields loses nothing).
[[nodiscard]] std::uint64_t flow_key_hash(const PacketHeader& header);

}  // namespace ofmtl
