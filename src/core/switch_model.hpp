// The controller channel: OpenFlow-style flow-mod messages applied to a
// switch model. A SwitchModel owns both the reference tables and the
// compiled decomposed pipeline and keeps them in lock-step, so flow-mods can
// be replayed against either surface and the equivalence invariant holds
// live (the Section V.B controller-update scenario as a library feature).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "flow/flow_stats.hpp"
#include "flow/pipeline_ref.hpp"

namespace ofmtl {

enum class FlowModCommand : std::uint8_t { kAdd, kModify, kDelete };

struct FlowMod {
  FlowModCommand command = FlowModCommand::kAdd;
  std::uint8_t table = 0;
  FlowEntry entry;            ///< full entry for Add/Modify; id only for Delete
  TimeoutConfig timeouts{};   ///< tracked for Add/Modify
};

/// A switch with a control channel: reference tables (linear, the oracle)
/// plus the compiled decomposed pipeline, mutated together.
class SwitchModel {
 public:
  /// Construct with one field list per table.
  explicit SwitchModel(std::vector<std::vector<FieldId>> table_fields,
                       FieldSearchConfig config = {});

  /// Apply one flow-mod at virtual time `now`. Throws std::invalid_argument
  /// on malformed mods (unknown table, duplicate add, missing delete id).
  void apply(const FlowMod& mod, std::uint64_t now = 0);

  /// Process a packet through the decomposed pipeline, updating counters.
  [[nodiscard]] ExecutionResult process(const PacketHeader& header,
                                        std::uint64_t bytes = 0,
                                        std::uint64_t now = 0);

  /// Process through the reference tables (no counter update) — used by
  /// equivalence checks.
  [[nodiscard]] ExecutionResult process_reference(const PacketHeader& header) const {
    return reference_.execute(header);
  }

  /// Remove all expired entries; returns the evicted ids.
  std::vector<FlowEntryId> sweep_timeouts(std::uint64_t now);

  /// Group-table configuration (shared by both pipelines).
  void add_group(Group group) { groups_.add(std::move(group)); }
  void modify_group(Group group) { groups_.modify(std::move(group)); }
  bool remove_group(GroupId id) { return groups_.remove(id); }
  [[nodiscard]] const GroupTable& groups() const { return groups_; }

  [[nodiscard]] const MultiTableLookup& pipeline() const { return pipeline_; }
  [[nodiscard]] const ReferencePipeline& reference() const { return reference_; }
  [[nodiscard]] const FlowStatsTracker& stats() const { return stats_; }
  [[nodiscard]] std::size_t entry_count() const;

 private:
  ReferencePipeline reference_;
  MultiTableLookup pipeline_;
  GroupTable groups_;
  FlowStatsTracker stats_;
  std::unordered_map<FlowEntryId, std::uint8_t> table_of_;
};

}  // namespace ofmtl
