// SearchContext: reusable per-thread scratch for the allocation-free lookup
// hot path. One packet (or one batch of packets) borrows a set of candidate
// "slots" — one LabelList per single-field algorithm — plus the working
// vectors of the index-calculation stage. Every buffer is cleared, never
// shrunk, between packets, so a warmed-up context performs zero heap
// allocations in steady state.
//
// Ownership rules: one SearchContext per thread, reused across packets. The
// convenience APIs (LookupTable::lookup(header), MultiTableLookup::execute*)
// use an internal thread_local context; performance-critical callers thread
// their own through the context-taking overloads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/label.hpp"
#include "net/types.hpp"

namespace ofmtl {

/// Candidate labels from one algorithm, most specific first.
using LabelList = std::vector<Label>;

/// Reusable per-thread scratch of the lookup hot path: candidate-label
/// slots for every (lane, algorithm) pair plus the index-calculation and
/// batched-probe working vectors. One context per thread, borrowed for the
/// duration of one lookup call; buffers are cleared, never shrunk, so a
/// warmed context performs zero steady-state heap allocations.
class SearchContext {
 public:
  /// Prepare slots for `lanes` packets x `algorithms` candidate lists each.
  /// Existing slot capacity is kept; slot contents are NOT cleared (each
  /// algorithm writer clears its own slot before filling it).
  void begin(std::size_t lanes, std::size_t algorithms) {
    lanes_ = lanes;
    algorithms_ = algorithms;
    const std::size_t needed = lanes * algorithms;
    if (slots_.size() < needed) slots_.resize(needed);
    if (lane_matches_.size() < lanes) lane_matches_.resize(lanes);
  }

  /// Lanes prepared by the last begin().
  [[nodiscard]] std::size_t lanes() const { return lanes_; }
  /// Algorithms (candidate lists per lane) prepared by the last begin().
  [[nodiscard]] std::size_t algorithms() const { return algorithms_; }

  /// Candidate slot for packet `lane`, algorithm `algorithm`.
  [[nodiscard]] LabelList& slot(std::size_t lane, std::size_t algorithm) {
    return slots_[lane * algorithms_ + algorithm];
  }

  /// All of one packet's candidate lists, in algorithm order (contiguous).
  [[nodiscard]] std::span<const LabelList> packet_candidates(
      std::size_t lane) const {
    return {slots_.data() + lane * algorithms_, algorithms_};
  }

  /// --- index-calculation scratch (one packet at a time) ---
  [[nodiscard]] std::vector<Label>& combine_current() { return combine_current_; }
  [[nodiscard]] std::vector<Label>& combine_next() { return combine_next_; }
  [[nodiscard]] std::vector<std::uint32_t>& matches() { return matches_; }

  /// --- batched-descent scratch (per-trie key/output gathers) ---
  [[nodiscard]] std::vector<std::uint64_t>& batch_keys() { return batch_keys_; }
  [[nodiscard]] std::vector<LabelList*>& batch_outs() { return batch_outs_; }

  /// --- batched EM/RM probe scratch (value gathers + probe results) ---
  [[nodiscard]] std::vector<U128>& batch_values() { return batch_values_; }
  [[nodiscard]] std::vector<Label>& batch_labels() { return batch_labels_; }
  [[nodiscard]] std::vector<const LabelList*>& batch_lists() {
    return batch_lists_;
  }

  /// --- batched index-calculation scratch. Every lane's working label set
  /// lives in one flat arena (labels in pool, lane i's window is
  /// [offsets[i], offsets[i+1])); two generations swap per combination
  /// stage. One contiguous buffer instead of a vector-of-vectors keeps the
  /// stage loop's loads sequential and clears O(1). ---
  [[nodiscard]] std::vector<Label>& pool_current() { return pool_current_; }
  [[nodiscard]] std::vector<Label>& pool_next() { return pool_next_; }
  [[nodiscard]] std::vector<std::uint32_t>& pool_offsets_current() {
    return pool_offsets_current_;
  }
  [[nodiscard]] std::vector<std::uint32_t>& pool_offsets_next() {
    return pool_offsets_next_;
  }
  /// Per-window precomputed probe hashes (paired with batch_keys entries).
  [[nodiscard]] std::vector<std::uint64_t>& batch_hashes() {
    return batch_hashes_;
  }
  [[nodiscard]] std::vector<std::uint32_t>& lane_matches(std::size_t lane) {
    return lane_matches_[lane];
  }

 private:
  std::size_t lanes_ = 0;
  std::size_t algorithms_ = 0;
  std::vector<LabelList> slots_;
  std::vector<Label> combine_current_;
  std::vector<Label> combine_next_;
  std::vector<std::uint32_t> matches_;
  std::vector<std::uint64_t> batch_keys_;
  std::vector<LabelList*> batch_outs_;
  std::vector<U128> batch_values_;
  std::vector<Label> batch_labels_;
  std::vector<const LabelList*> batch_lists_;
  std::vector<Label> pool_current_;
  std::vector<Label> pool_next_;
  std::vector<std::uint32_t> pool_offsets_current_;
  std::vector<std::uint32_t> pool_offsets_next_;
  std::vector<std::uint64_t> batch_hashes_;
  std::vector<std::vector<std::uint32_t>> lane_matches_;
};

}  // namespace ofmtl
