#include "core/switch_model.hpp"

#include <stdexcept>

namespace ofmtl {

SwitchModel::SwitchModel(std::vector<std::vector<FieldId>> table_fields,
                         FieldSearchConfig config) {
  for (auto& fields : table_fields) {
    reference_.add_table(FlowTable{});
    pipeline_.add_table(LookupTable{std::move(fields), {}, config});
  }
  // Both execution surfaces resolve Group actions through the same table,
  // keeping the equivalence invariant intact.
  reference_.set_group_table(&groups_);
  pipeline_.set_group_table(&groups_);
}

void SwitchModel::apply(const FlowMod& mod, std::uint64_t now) {
  if (mod.table >= pipeline_.table_count()) {
    throw std::invalid_argument("flow-mod: unknown table");
  }
  switch (mod.command) {
    case FlowModCommand::kAdd: {
      pipeline_.insert_entry(mod.table, mod.entry);
      reference_.table(mod.table).insert(mod.entry);
      stats_.install(mod.entry.id, mod.timeouts, now);
      table_of_[mod.entry.id] = mod.table;
      return;
    }
    case FlowModCommand::kDelete: {
      if (!pipeline_.remove_entry(mod.table, mod.entry.id)) {
        throw std::invalid_argument("flow-mod: delete of unknown entry");
      }
      reference_.table(mod.table).remove(mod.entry.id);
      stats_.erase(mod.entry.id);
      table_of_.erase(mod.entry.id);
      return;
    }
    case FlowModCommand::kModify: {
      // Modify = delete + add, preserving counters (OpenFlow keeps counters
      // on modify unless a reset flag is set; we keep them).
      if (!pipeline_.remove_entry(mod.table, mod.entry.id)) {
        throw std::invalid_argument("flow-mod: modify of unknown entry");
      }
      reference_.table(mod.table).remove(mod.entry.id);
      pipeline_.insert_entry(mod.table, mod.entry);
      reference_.table(mod.table).insert(mod.entry);
      table_of_[mod.entry.id] = mod.table;
      return;
    }
  }
  throw std::logic_error("unknown flow-mod command");
}

ExecutionResult SwitchModel::process(const PacketHeader& header,
                                     std::uint64_t bytes, std::uint64_t now) {
  auto result = pipeline_.execute(header);
  stats_.record(result, bytes, now);
  return result;
}

std::vector<FlowEntryId> SwitchModel::sweep_timeouts(std::uint64_t now) {
  const auto victims = stats_.expired(now);
  for (const auto id : victims) {
    const auto it = table_of_.find(id);
    if (it == table_of_.end()) continue;
    (void)pipeline_.remove_entry(it->second, id);
    (void)reference_.table(it->second).remove(id);
    stats_.erase(id);
    table_of_.erase(it);
  }
  return victims;
}

std::size_t SwitchModel::entry_count() const {
  std::size_t count = 0;
  for (std::size_t t = 0; t < pipeline_.table_count(); ++t) {
    count += pipeline_.table(t).entry_count();
  }
  return count;
}

}  // namespace ofmtl
