// The proposed Multiple Table Lookup architecture end to end (Fig. 1): a
// chain of decomposed lookup tables executed under OpenFlow multi-table
// semantics. Drop-in equivalent of ReferencePipeline — same ExecutionResult,
// same Goto-Table/metadata/action-set behaviour — but each table lookup runs
// parallel single-field searches + index calculation instead of linear
// search.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/lookup_table.hpp"
#include "flow/pipeline_ref.hpp"
#include "mem/memory_model.hpp"

namespace ofmtl {

class MultiTableLookup : public TableLookupSource {
 public:
  MultiTableLookup() = default;
  explicit MultiTableLookup(std::vector<LookupTable> tables)
      : tables_(std::move(tables)) {}

  /// Compile every table of a reference pipeline (the equivalence target).
  [[nodiscard]] static MultiTableLookup compile(const ReferencePipeline& reference,
                                                FieldSearchConfig config = {});

  void add_table(LookupTable table) { tables_.push_back(std::move(table)); }

  /// Deep copy (table-by-table recompile): independent lookup structures,
  /// identical lookup behaviour. The parallel runtime replicates its
  /// snapshot instances through this. Exception: the group table is
  /// externally owned and only pointer-copied — it is NOT snapshot-isolated,
  /// so keep it immutable while clones (or the runtime) are live.
  [[nodiscard]] MultiTableLookup clone() const {
    MultiTableLookup copy;
    for (const auto& table : tables_) copy.add_table(table.clone());
    copy.set_group_table(groups_);
    return copy;
  }
  [[nodiscard]] std::size_t table_count() const { return tables_.size(); }
  [[nodiscard]] const LookupTable& table(std::size_t index) const {
    return tables_.at(index);
  }

  /// Incremental flow-mod interface: add/remove one entry of one table on
  /// the live pipeline (the controller channel of Section V.B).
  void insert_entry(std::size_t table, FlowEntry entry) {
    (void)tables_.at(table).insert_entry(std::move(entry));
  }
  bool remove_entry(std::size_t table, FlowEntryId id) {
    return tables_.at(table).remove_entry(id);
  }
  [[nodiscard]] bool contains_entry(std::size_t table, FlowEntryId id) const {
    return tables_.at(table).contains(id);
  }

  /// Process one packet starting at table 0.
  [[nodiscard]] ExecutionResult execute(const PacketHeader& header) const {
    return execute_tables(*this, header);
  }

  /// Process a batch of packets: results[i] is rewritten in place (vectors
  /// cleared, capacity kept) and is bitwise-identical to execute(headers[i]).
  /// Table stages run batched — every packet at a table is looked up with
  /// one interleaved, prefetching lookup_batch call. Uses an internal
  /// thread_local context; steady-state calls are allocation-free.
  void execute_batch(std::span<const PacketHeader> headers,
                     std::span<ExecutionResult> results) const;

  /// Same through caller-owned scratch (the hot-path form).
  void execute_batch(std::span<const PacketHeader> headers,
                     std::span<ExecutionResult> results,
                     ExecBatchContext& ctx) const {
    execute_tables_batch(*this, headers, results, ctx);
  }

  [[nodiscard]] std::size_t source_table_count() const override {
    return tables_.size();
  }
  [[nodiscard]] const FlowEntry* source_lookup(
      std::size_t table, const PacketHeader& header) const override {
    return tables_[table].lookup(header);
  }
  void source_lookup_batch(std::size_t table,
                           std::span<const PacketHeader* const> headers,
                           std::span<const FlowEntry*> out) const override;
  [[nodiscard]] const GroupTable* source_groups() const override {
    return groups_;
  }

  /// Attach a group table (not owned) for resolving Group actions.
  void set_group_table(const GroupTable* groups) { groups_ = groups; }

  /// Aggregate memory report across tables (the Section V.A total).
  [[nodiscard]] mem::MemoryReport memory_report(const std::string& prefix) const;

  /// Total update words written while building (label method).
  [[nodiscard]] std::uint64_t update_words() const;

 private:
  std::vector<LookupTable> tables_;
  const GroupTable* groups_ = nullptr;
};

}  // namespace ofmtl
