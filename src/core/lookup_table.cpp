#include "core/lookup_table.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace ofmtl {

LookupTable::LookupTable(std::vector<FieldId> fields,
                         std::vector<FlowEntry> entries,
                         FieldSearchConfig config)
    : fields_(std::move(fields)), config_(std::move(config)) {
  if (fields_.empty()) {
    throw std::invalid_argument("lookup table needs at least one field");
  }
  searches_.reserve(fields_.size());
  std::size_t algorithms = 0;
  for (const auto id : fields_) {
    searches_.emplace_back(id, config_);
    algorithms += searches_.back().algorithm_count();
  }
  index_.emplace(algorithms);
  for (auto& entry : entries) {
    (void)insert_entry_impl(std::move(entry), /*seal_after=*/false);
  }
  for (auto& search : searches_) search.seal();
  index_->seal();
}

LookupTable LookupTable::compile(const FlowTable& table, FieldSearchConfig config) {
  std::set<FieldId> used;
  for (const auto& entry : table.entries()) {
    for (const auto id : entry.match.constrained_fields()) used.insert(id);
  }
  if (used.empty()) used.insert(FieldId::kInPort);  // all-wildcard table
  return LookupTable{{used.begin(), used.end()}, table.entries(), config};
}

std::uint32_t LookupTable::insert_entry(FlowEntry entry) {
  return insert_entry_impl(std::move(entry), /*seal_after=*/true);
}

std::uint32_t LookupTable::insert_entry_impl(FlowEntry entry, bool seal_after) {
  if (id_to_slot_.contains(entry.id)) {
    throw std::invalid_argument("insert_entry: duplicate entry id");
  }
  std::vector<Label> signature;
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    const auto labels = searches_[f].add_rule(entry.match.get(fields_[f]));
    signature.insert(signature.end(), labels.begin(), labels.end());
  }
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  index_->add_rule(signature, slot);
  actions_.set(slot, entry.instructions);
  id_to_slot_.emplace(entry.id, slot);
  slots_[slot].signature = std::move(signature);
  slots_[slot].seq = next_seq_++;
  slots_[slot].entry = std::move(entry);
  ++live_entries_;
  // Newly built range/trie/index query structures need sealing before the
  // next lookup; batch construction seals once at the end, incremental
  // callers pay it here.
  if (seal_after) {
    for (auto& search : searches_) search.seal();
    index_->seal();
  }
  return slot;
}

bool LookupTable::remove_entry(FlowEntryId id) {
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return false;
  const std::uint32_t slot = it->second;
  Slot& s = slots_[slot];
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    (void)searches_[f].remove_rule(s.entry->match.get(fields_[f]));
  }
  index_->remove_rule(s.signature, slot);
  actions_.clear(slot);
  id_to_slot_.erase(it);
  s.entry.reset();
  s.signature.clear();
  free_slots_.push_back(slot);
  --live_entries_;
  for (auto& search : searches_) search.seal();
  index_->seal();
  return true;
}

LookupTable LookupTable::clone() const {
  // entries() walks slots in slot order, which diverges from insertion order
  // once free slots are reused — and insertion order (seq) drives
  // equal-priority tie-breaks. Replay in seq order so the clone tie-breaks
  // exactly like the original.
  std::vector<const Slot*> live;
  live.reserve(live_entries_);
  for (const auto& slot : slots_) {
    if (slot.entry) live.push_back(&slot);
  }
  std::sort(live.begin(), live.end(),
            [](const Slot* a, const Slot* b) { return a->seq < b->seq; });
  std::vector<FlowEntry> ordered;
  ordered.reserve(live.size());
  for (const Slot* slot : live) ordered.push_back(*slot->entry);
  return LookupTable(fields_, std::move(ordered), config_);
}

std::vector<FlowEntry> LookupTable::entries() const {
  std::vector<FlowEntry> result;
  result.reserve(live_entries_);
  for (const auto& slot : slots_) {
    if (slot.entry) result.push_back(*slot.entry);
  }
  return result;
}

const FlowEntry* LookupTable::best_match(
    const std::vector<std::uint32_t>& matches) const {
  const Slot* best = nullptr;
  for (const auto slot : matches) {
    const Slot& candidate = slots_[slot];
    if (best == nullptr ||
        candidate.entry->priority > best->entry->priority ||
        (candidate.entry->priority == best->entry->priority &&
         candidate.seq < best->seq)) {
      best = &candidate;
    }
  }
  return best == nullptr ? nullptr : &*best->entry;
}

const FlowEntry* LookupTable::lookup(const PacketHeader& header) const {
  static thread_local SearchContext ctx;
  return lookup(header, ctx);
}

const FlowEntry* LookupTable::lookup(const PacketHeader& header,
                                     SearchContext& ctx) const {
  const std::size_t algorithms = index_->algorithm_count();
  ctx.begin(1, algorithms);
  std::size_t slot_base = 0;
  for (const auto& search : searches_) {
    search.search(header, ctx, 0, slot_base);
    slot_base += search.algorithm_count();
  }
  auto& matches = ctx.matches();
  matches.clear();
  index_->query(ctx.packet_candidates(0), ctx, matches);
  return best_match(matches);
}

void LookupTable::lookup_batch(std::span<const PacketHeader* const> headers,
                               std::span<const FlowEntry*> out,
                               SearchContext& ctx) const {
  if (out.size() < headers.size()) {
    throw std::invalid_argument("lookup_batch: out span too small");
  }
  const std::size_t algorithms = index_->algorithm_count();
  ctx.begin(headers.size(), algorithms);
  std::size_t slot_base = 0;
  for (const auto& search : searches_) {
    search.search_batch(headers, ctx, slot_base);
    slot_base += search.algorithm_count();
  }
  index_->query_batch(ctx);
  for (std::size_t i = 0; i < headers.size(); ++i) {
    out[i] = best_match(ctx.lane_matches(i));
  }
}

mem::MemoryReport LookupTable::memory_report(const std::string& prefix) const {
  mem::MemoryReport report;
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    report.merge(searches_[f].memory_report(
                     prefix + "." + std::string(field_name(fields_[f]))),
                 "");
  }
  report.merge(index_->memory_report(prefix + ".index"), "");
  report.merge(actions_.memory_report(prefix + ".actions"), "");
  return report;
}

std::uint64_t LookupTable::update_words() const {
  std::uint64_t words = 0;
  for (const auto& search : searches_) words += search.update_words();
  words += index_->update_words();
  words += actions_.update_words();
  return words;
}

}  // namespace ofmtl
