#include "core/field_search.hpp"

#include <stdexcept>

namespace ofmtl {

namespace {

/// Encodes a (partition-length, partition-value) pair as the key of a trie's
/// label encoder.
[[nodiscard]] U128 partition_key(unsigned length, std::uint64_t value) {
  return U128{(std::uint64_t{length} << 16) | value};
}

}  // namespace

FieldSearch::FieldSearch(FieldId field, FieldSearchConfig config)
    : field_(field), config_(std::move(config)) {
  const auto& info = field_info(field);
  switch (info.method) {
    case MatchMethod::kExact:
      lut_ = std::make_unique<ExactMatchLut>(info.bits);
      label_refs_.resize(1);
      break;
    case MatchMethod::kLongestPrefix: {
      const unsigned partitions = partition_count(info.bits);
      tries_.reserve(partitions);
      trie_encoders_.resize(partitions);
      label_refs_.resize(partitions);
      for (unsigned p = 0; p < partitions; ++p) {
        tries_.emplace_back(16, config_.strides);
      }
      break;
    }
    case MatchMethod::kRange:
      ranges_ = std::make_unique<RangeMatcher>(info.bits);
      label_refs_.resize(1);
      break;
  }
}

std::size_t FieldSearch::algorithm_count() const {
  return tries_.empty() ? 1 : tries_.size();
}

FieldSearch::RuleElements FieldSearch::decompose(const FieldMatch& match) const {
  const auto& info = field_info(field_);
  RuleElements elements;
  switch (info.method) {
    case MatchMethod::kExact:
      switch (match.kind) {
        case MatchKind::kAny:
          break;  // exact_value stays empty -> wildcard
        case MatchKind::kExact:
          elements.exact_value = match.value;
          break;
        default:
          throw std::invalid_argument(
              std::string("EM field ") + std::string(field_name(field_)) +
              " requires exact or any match");
      }
      return elements;
    case MatchMethod::kLongestPrefix: {
      Prefix prefix;
      switch (match.kind) {
        case MatchKind::kAny:
          prefix = Prefix{U128{}, 0, info.bits};
          break;
        case MatchKind::kExact:
          prefix = Prefix{match.value, info.bits, info.bits};
          break;
        case MatchKind::kPrefix:
          if (match.prefix.width() != info.bits) {
            throw std::invalid_argument("prefix width mismatch for field");
          }
          prefix = match.prefix;
          break;
        default:
          throw std::invalid_argument("LPM field requires prefix/exact/any");
      }
      for (std::size_t p = 0; p < tries_.size(); ++p) {
        const unsigned plen = prefix.partition16_length(static_cast<unsigned>(p));
        elements.partitions.push_back(Prefix::from_value(
            prefix.partition16(static_cast<unsigned>(p)), plen, 16));
      }
      return elements;
    }
    case MatchMethod::kRange:
      switch (match.kind) {
        case MatchKind::kAny:
          elements.range = ValueRange{0, low_mask(info.bits)};
          break;
        case MatchKind::kExact:
          elements.range = ValueRange{match.value.lo, match.value.lo};
          break;
        case MatchKind::kRange:
          elements.range = match.range;
          break;
        default:
          throw std::invalid_argument("RM field requires range/exact/any");
      }
      return elements;
  }
  throw std::logic_error("unknown match method");
}

std::vector<Label> FieldSearch::add_rule(const FieldMatch& match) {
  const auto elements = decompose(match);
  switch (method()) {
    case MatchMethod::kExact: {
      if (!elements.exact_value) {
        if (!em_any_label_) {
          // Reserve a label outside the value space: the LUT never returns
          // it, the index table recognises it from the candidate list.
          em_any_label_ = static_cast<Label>(0x80000000U);
        }
        ++em_any_refs_;
        return {*em_any_label_};
      }
      const Label label = lut_->insert(*elements.exact_value);
      ++label_refs_[0][label];
      return {label};
    }
    case MatchMethod::kLongestPrefix: {
      std::vector<Label> labels;
      labels.reserve(tries_.size());
      for (std::size_t p = 0; p < tries_.size(); ++p) {
        const auto& prefix = elements.partitions[p];
        const Label label = trie_encoders_[p].encode(
            partition_key(prefix.length(), prefix.value64()));
        tries_[p].insert(prefix, label);
        ++label_refs_[p][label];
        labels.push_back(label);
      }
      return labels;
    }
    case MatchMethod::kRange: {
      const Label label = ranges_->add(*elements.range);
      ++label_refs_[0][label];
      return {label};
    }
  }
  throw std::logic_error("unknown match method");
}

std::vector<Label> FieldSearch::remove_rule(const FieldMatch& match) {
  const auto elements = decompose(match);
  const auto drop_ref = [this](std::size_t algorithm, Label label) {
    const auto it = label_refs_[algorithm].find(label);
    if (it == label_refs_[algorithm].end()) {
      throw std::invalid_argument("remove_rule: label not registered");
    }
    if (--it->second != 0) return false;
    label_refs_[algorithm].erase(it);
    return true;  // last reference gone
  };

  switch (method()) {
    case MatchMethod::kExact: {
      if (!elements.exact_value) {
        if (em_any_refs_ == 0) {
          throw std::invalid_argument("remove_rule: wildcard not registered");
        }
        --em_any_refs_;
        return {*em_any_label_};
      }
      const auto label = lut_->lookup(*elements.exact_value);
      if (!label) throw std::invalid_argument("remove_rule: value not present");
      if (drop_ref(0, *label)) lut_->remove(*elements.exact_value);
      return {*label};
    }
    case MatchMethod::kLongestPrefix: {
      std::vector<Label> labels;
      for (std::size_t p = 0; p < tries_.size(); ++p) {
        const auto& prefix = elements.partitions[p];
        const auto label = trie_encoders_[p].find(
            partition_key(prefix.length(), prefix.value64()));
        if (!label) {
          throw std::invalid_argument("remove_rule: prefix not present");
        }
        if (drop_ref(p, *label)) tries_[p].remove(prefix);
        labels.push_back(*label);
      }
      return labels;
    }
    case MatchMethod::kRange: {
      const auto label = ranges_->find(*elements.range);
      if (!label) throw std::invalid_argument("remove_rule: range not present");
      // RangeMatcher holds one reference per registered rule; release ours
      // and rebuild the interval index when the range actually dies.
      (void)drop_ref(0, *label);
      ranges_->remove(*elements.range);
      if (!ranges_->find(*elements.range)) ranges_->seal();
      return {*label};
    }
  }
  throw std::logic_error("unknown match method");
}

void FieldSearch::seal() {
  if (ranges_) ranges_->seal();
  for (auto& trie : tries_) trie.seal();
}

void FieldSearch::search(const PacketHeader& header,
                         std::vector<LabelList>& out) const {
  switch (method()) {
    case MatchMethod::kExact: {
      LabelList list;
      if (const auto label = lut_->lookup(header.get(field_))) {
        list.push_back(*label);
      }
      if (em_any_label_ && em_any_refs_ > 0) list.push_back(*em_any_label_);
      out.push_back(std::move(list));
      return;
    }
    case MatchMethod::kLongestPrefix: {
      for (std::size_t p = 0; p < tries_.size(); ++p) {
        LabelList list;
        tries_[p].lookup_all(header.partition16(field_, static_cast<unsigned>(p)),
                             list);
        out.push_back(std::move(list));
      }
      return;
    }
    case MatchMethod::kRange: {
      out.push_back(ranges_->lookup(header.get64(field_)));
      return;
    }
  }
}

void FieldSearch::search(const PacketHeader& header, SearchContext& ctx,
                         std::size_t lane, std::size_t slot_base) const {
  switch (method()) {
    case MatchMethod::kExact: {
      LabelList& list = ctx.slot(lane, slot_base);
      list.clear();
      if (const auto label = lut_->lookup(header.get(field_))) {
        list.push_back(*label);
      }
      if (em_any_label_ && em_any_refs_ > 0) list.push_back(*em_any_label_);
      return;
    }
    case MatchMethod::kLongestPrefix: {
      for (std::size_t p = 0; p < tries_.size(); ++p) {
        tries_[p].lookup_all(
            header.partition16(field_, static_cast<unsigned>(p)),
            ctx.slot(lane, slot_base + p));
      }
      return;
    }
    case MatchMethod::kRange: {
      const auto& labels = ranges_->lookup(header.get64(field_));
      ctx.slot(lane, slot_base).assign(labels.begin(), labels.end());
      return;
    }
  }
}

void FieldSearch::search_batch(std::span<const PacketHeader* const> headers,
                               SearchContext& ctx,
                               std::size_t slot_base) const {
  switch (method()) {
    case MatchMethod::kExact: {
      // Gather the field values, probe the LUT with interleaved prefetching
      // probes, then scatter labels into the lanes' candidate slots.
      auto& values = ctx.batch_values();
      auto& labels = ctx.batch_labels();
      values.clear();
      for (const PacketHeader* header : headers) {
        values.push_back(header->get(field_));
      }
      labels.resize(headers.size());
      lut_->lookup_batch(values, labels);
      const bool any = em_any_label_ && em_any_refs_ > 0;
      for (std::size_t i = 0; i < headers.size(); ++i) {
        LabelList& list = ctx.slot(i, slot_base);
        list.clear();
        if (labels[i] != kNoLabel) list.push_back(labels[i]);
        if (any) list.push_back(*em_any_label_);
      }
      return;
    }
    case MatchMethod::kLongestPrefix: {
      auto& keys = ctx.batch_keys();
      auto& outs = ctx.batch_outs();
      for (std::size_t p = 0; p < tries_.size(); ++p) {
        keys.clear();
        outs.clear();
        for (std::size_t i = 0; i < headers.size(); ++i) {
          keys.push_back(
              headers[i]->partition16(field_, static_cast<unsigned>(p)));
          outs.push_back(&ctx.slot(i, slot_base + p));
        }
        tries_[p].lookup_all_batch(keys, outs);
      }
      return;
    }
    case MatchMethod::kRange: {
      auto& keys = ctx.batch_keys();
      auto& lists = ctx.batch_lists();
      keys.clear();
      for (const PacketHeader* header : headers) {
        keys.push_back(header->get64(field_));
      }
      lists.resize(headers.size());
      ranges_->lookup_batch(keys, lists);
      for (std::size_t i = 0; i < headers.size(); ++i) {
        ctx.slot(i, slot_base).assign(lists[i]->begin(), lists[i]->end());
      }
      return;
    }
  }
}

std::vector<std::size_t> FieldSearch::unique_values() const {
  std::vector<std::size_t> counts;
  switch (method()) {
    case MatchMethod::kExact:
      counts.push_back(lut_->unique_values());
      break;
    case MatchMethod::kLongestPrefix:
      for (const auto& trie : tries_) counts.push_back(trie.prefix_count());
      break;
    case MatchMethod::kRange:
      counts.push_back(ranges_->unique_ranges());
      break;
  }
  return counts;
}

mem::MemoryReport FieldSearch::memory_report(const std::string& prefix) const {
  mem::MemoryReport report;
  switch (method()) {
    case MatchMethod::kExact:
      report.merge(lut_->memory_report(prefix + ".lut"), "");
      break;
    case MatchMethod::kLongestPrefix: {
      // Worst-case-shared label width across the partitions, as the paper
      // sizes node fields by the worst case.
      std::size_t max_labels = 1;
      for (const auto& encoder : trie_encoders_) {
        max_labels = std::max(max_labels, encoder.size());
      }
      const unsigned label_bits =
          max_labels <= 1 ? 1 : ceil_log2(max_labels);
      static const char* const kPartNames[] = {"hi", "mid", "lo", "p3",
                                               "p4", "p5",  "p6", "p7"};
      for (std::size_t p = 0; p < tries_.size(); ++p) {
        const std::string part =
            p < 8 ? kPartNames[tries_.size() == 2 && p == 1 ? 2 : p]
                  : std::to_string(p);
        report.merge(tries_[p].memory_report(prefix + ".trie." + part,
                                             config_.storage, label_bits),
                     "");
      }
      break;
    }
    case MatchMethod::kRange: {
      const unsigned label_bits =
          ranges_->unique_ranges() <= 1
              ? 1
              : ceil_log2(ranges_->unique_ranges());
      // storage_bits already aggregates boundaries + label lists.
      report.add(prefix + ".range_index", ranges_->storage_bits(label_bits), 1);
      break;
    }
  }
  return report;
}

std::uint64_t FieldSearch::update_words() const {
  switch (method()) {
    case MatchMethod::kExact:
      return lut_->update_words();
    case MatchMethod::kLongestPrefix: {
      std::uint64_t words = 0;
      for (const auto& trie : tries_) words += trie.write_count();
      return words;
    }
    case MatchMethod::kRange:
      return ranges_->unique_ranges();
  }
  return 0;
}

}  // namespace ofmtl
