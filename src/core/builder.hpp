// Application builders: compile a filter set into the paper's multiple-table
// layouts (Section IV.C / V.A). "There are two fields that can be
// distributed into two tables": table 0 matches the application's EM field
// and forwards with Goto-Table + Write-Metadata (the field's label); table 1
// matches metadata + the wide address field and writes the final actions.
//
// The Section V.A prototype is both applications side by side: 4 OpenFlow
// lookup tables, two MBT structures (Ethernet, IPv4) and two EM LUTs
// (VLAN ID, ingress port).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "flow/flow_entry.hpp"
#include "flow/pipeline_ref.hpp"

namespace ofmtl {

/// How a two-field filter set maps onto OpenFlow tables.
enum class TableLayout : std::uint8_t {
  kSingleTable,     ///< one table matching both fields (v1.0-style baseline)
  kPerFieldTables,  ///< the paper's layout: one field per table, metadata-chained
};

/// The flow-entry specification of one application, realizable by both the
/// reference executor and the accelerated pipeline.
struct AppSpec {
  std::string name;
  ReferencePipeline reference;  ///< linear-search oracle
};

/// Build the flow tables for a two-field filter set under `layout`.
/// For kPerFieldTables the first listed field goes to table 0 (EM LUT side),
/// the second to table 1 (address side), as in the paper's two use cases.
[[nodiscard]] AppSpec build_app(const FilterSet& set, TableLayout layout);

/// Compile an AppSpec into the decomposed architecture.
[[nodiscard]] MultiTableLookup compile_app(const AppSpec& spec,
                                           FieldSearchConfig config = {});

/// The Section V.A prototype: both applications on one device.
struct SwitchPrototype {
  AppSpec mac;            ///< tables 0-1
  AppSpec routing;        ///< tables 0-1 of the routing chain
  MultiTableLookup mac_lookup;
  MultiTableLookup routing_lookup;

  /// Combined memory of the 4 lookup tables (the "5 Mb total" figure).
  [[nodiscard]] mem::MemoryReport memory_report() const;
};

[[nodiscard]] SwitchPrototype build_prototype(const FilterSet& mac_set,
                                              const FilterSet& routing_set,
                                              FieldSearchConfig config = {});

}  // namespace ofmtl
