#include "core/flow_key.hpp"

#include <bit>

#include "core/flat_hash.hpp"

namespace ofmtl {

std::uint64_t flow_key_hash(const PacketHeader& header) {
  std::uint32_t mask = header.present_mask();
  std::uint64_t h = detail::mix64(mask);
  // Walk only the present fields (typically ~5 of 16): the field index is
  // folded in with the value so permuted tuples cannot collide trivially.
  while (mask != 0) {
    const unsigned field = static_cast<unsigned>(std::countr_zero(mask));
    mask &= mask - 1;
    const U128& value = header.get(static_cast<FieldId>(field));
    h = detail::mix64(h ^ (value.lo + field));
    if (value.hi != 0) h = detail::mix64(h ^ value.hi);
  }
  return h;
}

}  // namespace ofmtl
