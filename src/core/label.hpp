// The label method (Section IV.B, after DCFL [11]): each *unique* field value
// is stored once and assigned a dense label; rules reference labels instead
// of replicating values. LabelEncoder is the bookkeeping for one field (or
// one 16-bit field partition).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/types.hpp"

namespace ofmtl {

/// Dense label assigned to a unique field value.
using Label = std::uint32_t;

/// Sentinel for "no label" in packed structures.
inline constexpr Label kNoLabel = 0xFFFFFFFF;

namespace detail {
struct U128Hash {
  [[nodiscard]] std::size_t operator()(const U128& v) const noexcept {
    // Simple 128->64 mix (splitmix-style) — adequate for table balancing.
    std::uint64_t h = v.hi * 0x9E3779B97F4A7C15ULL ^ v.lo;
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
    return static_cast<std::size_t>(h);
  }
};
}  // namespace detail

/// Bijection between unique values and dense labels [0, size).
template <typename Value, typename Hash = std::hash<Value>>
class LabelEncoder {
 public:
  /// Label for `value`, assigning the next free label on first sight.
  Label encode(const Value& value) {
    const auto [it, inserted] =
        labels_.try_emplace(value, static_cast<Label>(values_.size()));
    if (inserted) values_.push_back(value);
    return it->second;
  }

  /// Label if the value has been seen, else nullopt.
  [[nodiscard]] std::optional<Label> find(const Value& value) const {
    const auto it = labels_.find(value);
    if (it == labels_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] const Value& decode(Label label) const { return values_.at(label); }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] const std::vector<Value>& values() const { return values_; }

  /// Bits needed to store one label of this encoder (>= 1).
  [[nodiscard]] unsigned label_bits() const {
    return size() <= 1 ? 1 : ceil_log2(size());
  }

 private:
  std::unordered_map<Value, Label, Hash> labels_;
  std::vector<Value> values_;
};

using ValueLabelEncoder = LabelEncoder<U128, detail::U128Hash>;

}  // namespace ofmtl
