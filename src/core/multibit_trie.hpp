// Multi-bit trie (MBT) with the label method — the paper's LPM structure
// (Section IV.B). A 16-bit field partition is searched over a configurable
// stride vector (default 3 levels, per the authors' ICC'14 stride study);
// each level lives in its own memory block and pipeline stage (Section V.A).
//
// Node data is exactly what the paper costs out: child pointer + label +
// flag bit, with a different pointer width per level ("each level node
// requires different child pointer sizes").
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/label.hpp"
#include "core/search_context.hpp"
#include "mem/memory_model.hpp"
#include "net/prefix.hpp"

namespace ofmtl {

/// How allocated-but-empty child-block slots are charged.
enum class TrieStorage : std::uint8_t {
  kSparse,      ///< count only non-empty entries (label or child present)
  kArrayBlock,  ///< count every slot of every allocated block
};

[[nodiscard]] std::string_view to_string(TrieStorage policy);

/// Per-level statistics of a built trie.
struct TrieLevelStats {
  std::size_t blocks = 0;            ///< allocated child blocks
  std::size_t allocated_entries = 0; ///< blocks * 2^stride
  std::size_t stored_nodes = 0;      ///< non-empty entries (label or child)
  std::size_t labelled_nodes = 0;    ///< entries with the flag bit set
};

/// Bit layout of one node at one level.
struct TrieNodeLayout {
  unsigned pointer_bits = 0;
  unsigned label_bits = 0;
  unsigned flag_bits = 1;
  [[nodiscard]] unsigned node_bits() const {
    return pointer_bits + label_bits + flag_bits;
  }
};

/// The default 3-level distribution over a 16-bit partition. L1 stride 5
/// matches the paper's observation that L1 never exceeds 32 stored nodes.
[[nodiscard]] std::vector<unsigned> default_strides16();

class MultibitTrie {
 public:
  /// `width` = key width in bits (<= 64); `strides` must sum to `width`.
  MultibitTrie(unsigned width, std::vector<unsigned> strides);

  /// Convenience: 16-bit partition trie with the default 5/5/6 strides.
  [[nodiscard]] static MultibitTrie partition16() {
    return MultibitTrie{16, default_strides16()};
  }

  /// Insert (or re-insert) a prefix with a label. Re-inserting an existing
  /// prefix with the same label is a no-op apart from write counting. On a
  /// sealed trie the flat query table is maintained in place (amortized
  /// O(1)), so the trie stays sealed — incremental updates never pay an
  /// O(prefixes) rebuild.
  void insert(const Prefix& prefix, Label label);

  /// Remove a prefix; covered entries fall back to the next-longest stored
  /// prefix. Returns whether the prefix was present. Sealed tries stay
  /// sealed (tombstone deletion in the flat table).
  bool remove(const Prefix& prefix);

  /// Longest-prefix match.
  [[nodiscard]] std::optional<Label> lookup(std::uint64_t key) const;

  /// Labels of all stored prefixes matching `key`, longest first (the label
  /// set the index-calculation stage consumes). At most one per level.
  void lookup_all(std::uint64_t key, std::vector<Label>& out) const;

  /// Seal for querying: build the flat open-addressing prefix table, the
  /// present-length mask the sealed lookup_all path probes (replacing the
  /// per-length ordered-map walk), and the compact popcount descent nodes.
  /// Once sealed, insert/remove keep the flat table current in place
  /// (tombstone deletes, amortized-O(1) inserts with occasional load-
  /// triggered rebuilds), so the trie never unseals; block-allocating
  /// inserts invalidate only the compact descent, which re-seals here once
  /// enough structure accreted (amortized) and falls back to the Entry walk
  /// meanwhile. Unsealed lookups fall back to the ordered map, so sealing
  /// is purely a fast path.
  void seal();
  [[nodiscard]] bool sealed() const { return sealed_; }

  /// Batched lookup_all: level-synchronous descent across up to a cache-lane
  /// window of keys with software prefetch of the next level's entry, then
  /// sealed flat-table probes. `outs[i]` receives key i's candidate list.
  void lookup_all_batch(std::span<const std::uint64_t> keys,
                        std::span<LabelList* const> outs) const;

  [[nodiscard]] unsigned width() const { return width_; }
  [[nodiscard]] const std::vector<unsigned>& strides() const { return strides_; }
  [[nodiscard]] std::size_t level_count() const { return strides_.size(); }
  [[nodiscard]] std::size_t prefix_count() const { return prefixes_.size(); }

  /// --- memory-cost surface (Figs. 2, 3, 4) ---
  [[nodiscard]] TrieLevelStats level_stats(std::size_t level) const;
  [[nodiscard]] std::size_t stored_nodes(TrieStorage policy) const;
  [[nodiscard]] std::size_t stored_nodes(std::size_t level, TrieStorage policy) const;

  /// Node layout per level. `label_bits` covers the label space shared by
  /// this trie's encoder (callers may pass a worst-case shared width);
  /// pointers address child blocks of the next level, sized by
  /// `pointer_capacity_blocks` if nonzero, else by the as-built block count.
  [[nodiscard]] std::vector<TrieNodeLayout> layouts(
      unsigned label_bits, std::size_t pointer_capacity_blocks = 0) const;

  [[nodiscard]] std::uint64_t level_bits(std::size_t level, TrieStorage policy,
                                         unsigned label_bits) const;
  [[nodiscard]] std::uint64_t total_bits(TrieStorage policy,
                                         unsigned label_bits) const;
  [[nodiscard]] mem::MemoryReport memory_report(const std::string& name,
                                                TrieStorage policy,
                                                unsigned label_bits) const;

  /// --- update-cost surface (Fig. 5) ---
  /// Entry writes performed since construction (block allocations, label
  /// stores, fallback rewrites). Each write is one update word = 2 cycles.
  [[nodiscard]] std::uint64_t write_count() const { return writes_; }

  /// Writes that inserting `prefix` would perform *right now* (without
  /// mutating): used to cost label-less (per-rule, duplicated) updates.
  [[nodiscard]] std::uint64_t insert_cost(const Prefix& prefix) const;

 private:
  struct Entry {
    Label label = kNoLabel;
    std::int32_t child = -1;   // block index at the next level
    std::uint8_t plen = 0;     // build-time only: expanded-prefix length
  };

  struct Level {
    unsigned stride = 0;
    unsigned cum_before = 0;   // bits consumed before this level
    std::vector<Entry> entries;
    std::size_t blocks = 0;
  };

  [[nodiscard]] std::size_t entry_index(const Level& level, std::size_t block,
                                        std::uint64_t chunk) const {
    return block * (std::size_t{1} << level.stride) + chunk;
  }
  std::int32_t allocate_block(std::size_t level_index);
  void check_prefix(const Prefix& prefix) const;
  /// Deepest level reached for `key` expressed as cumulative bits covered.
  [[nodiscard]] unsigned descend_depth(std::uint64_t key) const;
  [[nodiscard]] bool length_present(unsigned len) const {
    return len < 64 ? (present_lengths_ >> len & 1) != 0 : length64_present_;
  }
  /// Sealed-table probe for an exact (len, value) prefix; kNoLabel on miss.
  [[nodiscard]] Label probe_flat(unsigned len, std::uint64_t value) const;
  /// Slot index of (len, value) in the flat table, or SIZE_MAX when absent.
  [[nodiscard]] std::size_t find_flat_slot(unsigned len,
                                           std::uint64_t value) const;
  /// Rebuild the whole flat table + length bookkeeping from prefixes_.
  void rebuild_flat();
  /// Rebuild the compact popcount descent (see compact_levels_).
  void rebuild_compact();
  /// Threshold-gated rebuild after structural growth (amortized O(1) per
  /// allocated block, so per-publish seal cost stays flat).
  void maybe_rebuild_compact();
  [[nodiscard]] unsigned descend_depth_compact(std::uint64_t key) const;
  /// Compact descent to the terminal cell: the (level, node * fan + chunk)
  /// where the walk ends. Requires compact_valid_.
  void compact_cell(std::uint64_t key, std::size_t* level_out,
                    std::uint32_t* cell_out) const;
  /// Rebuild the per-terminal-cell precomputed match lists (match_off_ /
  /// match_pool_). Requires the flat table and compact levels to be current.
  void rebuild_matches();
  /// Append (no clear) every stored prefix of `key` with length <=
  /// `deepest_cum_after`, longest first, via sealed flat-table probes.
  void collect_sealed(std::uint64_t key, unsigned deepest_cum_after,
                      std::vector<Label>& out) const;
  [[nodiscard]] std::size_t total_blocks() const;
  /// Incremental flat-table maintenance (sealed tries only). The prefix map
  /// must already reflect the mutation — a load-triggered rebuild reads it.
  void flat_insert(unsigned len, std::uint64_t value, Label label);
  void flat_erase(unsigned len, std::uint64_t value);
  void note_length_added(unsigned len);
  void note_length_removed(unsigned len);
  void collect_matches(std::uint64_t key, unsigned deepest_cum_after,
                       std::vector<Label>& out) const;

  unsigned width_;
  std::vector<unsigned> strides_;
  std::vector<Level> levels_;
  std::map<std::pair<unsigned, std::uint64_t>, Label> prefixes_;  // (len, value)
  std::uint64_t writes_ = 0;

  // Sealed query path: open-addressed (len, value) -> label table with
  // power-of-two capacity and group-linear tag probing (core/flat_hash.hpp),
  // plus a bitmask of the prefix lengths actually stored so lookups only
  // probe live lengths. Incremental mutations keep it current: deletes
  // tombstone their slot's tag (skipped by probes), inserts reuse
  // tombstones, and a rebuild runs only when live + tombstoned slots exceed
  // half the capacity.
  bool sealed_ = false;
  std::vector<std::uint64_t> flat_values_;
  std::vector<std::uint8_t> flat_lens_;  // payload (tag byte carries state)
  std::vector<Label> flat_labels_;
  std::vector<std::uint8_t> flat_tags_;  // slot state, tag-group probed
  std::size_t flat_mask_ = 0;
  std::size_t flat_live_ = 0;        // live slots
  std::size_t flat_tombstones_ = 0;  // tombstoned slots
  std::uint64_t present_lengths_ = 0;  // lengths 0..63
  bool length64_present_ = false;
  std::array<std::uint32_t, 65> length_counts_{};  // live prefixes per length

  /// Compact descent node: child bitmap + popcount-indexed base into the
  /// next level's contiguous node array. 8 bytes against the 2^stride * 12
  /// bytes of the mutable Entry block it summarizes, so a whole descent
  /// touches a handful of cache lines.
  struct SealedNode {
    std::uint32_t child_bits = 0;  ///< bit c: chunk c has a child block
    std::uint32_t child_base = 0;  ///< its index: base + popcount(below c)
  };
  // Popcount-compressed descent, sealed from the mutable Entry blocks like
  // the flat table is sealed from prefixes_: one node per live block of
  // every non-last level, children stored contiguously in chunk order.
  // Valid only while the trie's *structure* is unchanged — remove() never
  // frees blocks and only rewrites labels, so the only invalidation is an
  // insert that allocates a block; seal() then rebuilds once enough blocks
  // accreted (maybe_rebuild_compact), and the descent falls back to the
  // Entry walk in between. Requires every non-last stride <= 5 (32-bit
  // child bitmap); wider strides just keep the legacy walk.
  std::vector<std::vector<SealedNode>> compact_levels_;
  bool compact_supported_ = false;
  bool compact_valid_ = false;
  std::size_t compact_blocks_ = 0;  // total blocks at the last rebuild

  // Precomputed terminal match lists: a descent's label list is fully
  // determined by the cell (level, node, chunk) where it ends — the path
  // bits ARE the key bits every per-length probe would truncate to. Sealing
  // therefore materializes, for every reachable terminal cell, the exact
  // list collect_matches would produce (CSR: match_off_[level] holds
  // cells + 1 absolute offsets into match_pool_), turning the sealed
  // lookup's per-length hash probes into one contiguous copy. Any label
  // mutation invalidates the lists (matches_valid_); the probe path serves
  // as fallback until the next compact rebuild refreshes them.
  std::vector<std::vector<std::uint32_t>> match_off_;
  std::vector<Label> match_pool_;
  bool matches_valid_ = false;
  // Whole sealed query structure fits in cache: batch descents then probe
  // key-at-a-time (the lane-lockstep machinery only pays for itself when
  // the prefetches it issues can actually miss).
  bool compact_resident_ = false;
};

/// Worst-case-shared node layouts across several tries (the paper sizes
/// pointer fields "determined by the worst case (lower trie)").
[[nodiscard]] std::vector<TrieNodeLayout> uniform_layouts(
    const std::vector<const MultibitTrie*>& tries, unsigned label_bits);

}  // namespace ofmtl
