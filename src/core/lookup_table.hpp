// One OpenFlow lookup table of the proposed architecture: the parallel
// per-field searches, the index calculation, and the action table, built
// from the table's flow entries (Fig. 1 end-to-end for a single table).
//
// Entries can be added and removed incrementally: unique field values are
// reference-counted by the field searches, index pairs by the index
// calculator, so an insert/remove touches only the structures the entry's
// values live in — the "incremental update ability" requirement of the
// paper's introduction.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/action_table.hpp"
#include "core/field_search.hpp"
#include "core/index_table.hpp"
#include "flow/flow_table.hpp"
#include "mem/memory_model.hpp"

namespace ofmtl {

class LookupTable {
 public:
  /// Compile `entries` matching on `fields` (order fixes the algorithm
  /// order). Fields the entries never constrain may still be listed.
  LookupTable(std::vector<FieldId> fields, std::vector<FlowEntry> entries,
              FieldSearchConfig config = {});

  /// Convenience: compile a reference table, deriving the field list from
  /// the fields its entries constrain.
  [[nodiscard]] static LookupTable compile(const FlowTable& table,
                                           FieldSearchConfig config = {});

  /// Add one entry to the live table; returns its slot. The entry id must
  /// not already be present. Fields outside the table's field list must be
  /// unconstrained.
  std::uint32_t insert_entry(FlowEntry entry);

  /// Remove the entry with this id; returns whether it existed. Unique
  /// values drop out of the structures when their last entry leaves.
  bool remove_entry(FlowEntryId id);

  /// Whether an entry with this id is live.
  [[nodiscard]] bool contains(FlowEntryId id) const {
    return id_to_slot_.contains(id);
  }

  /// Deep copy: recompiles an independent table from the live entries with
  /// the same field order and config (FieldSearch engines are move-only, so
  /// replication goes through the builder). Entries are replayed in
  /// insertion order so equal-priority tie-breaks match the original; slot
  /// numbering may differ, lookup results do not.
  [[nodiscard]] LookupTable clone() const;

  /// Highest-priority matching entry, or nullptr on miss (-> controller).
  /// Equal priorities tie-break to the earlier-inserted entry, matching
  /// FlowTable's stable order. Uses an internal thread_local SearchContext,
  /// so steady-state calls are allocation-free.
  [[nodiscard]] const FlowEntry* lookup(const PacketHeader& header) const;

  /// Same lookup through a caller-owned context (the hot-path form).
  [[nodiscard]] const FlowEntry* lookup(const PacketHeader& header,
                                        SearchContext& ctx) const;

  /// Batched lookup: out[i] = match for *headers[i]. Field searches run
  /// interleaved across the batch (level-synchronous trie descents with
  /// prefetch); headers are pointers so pipeline stages can hand in
  /// scattered in-flight packets.
  void lookup_batch(std::span<const PacketHeader* const> headers,
                    std::span<const FlowEntry*> out, SearchContext& ctx) const;

  [[nodiscard]] const std::vector<FieldId>& fields() const { return fields_; }
  [[nodiscard]] std::size_t entry_count() const { return live_entries_; }
  /// Snapshot of the live entries (slot order).
  [[nodiscard]] std::vector<FlowEntry> entries() const;
  [[nodiscard]] const std::vector<FieldSearch>& field_searches() const {
    return searches_;
  }
  [[nodiscard]] const IndexCalculator& index() const { return *index_; }
  [[nodiscard]] const ActionTable& actions() const { return actions_; }

  [[nodiscard]] mem::MemoryReport memory_report(const std::string& prefix) const;

  /// Update words written while building (label method).
  [[nodiscard]] std::uint64_t update_words() const;

 private:
  std::uint32_t insert_entry_impl(FlowEntry entry, bool seal_after);
  [[nodiscard]] const FlowEntry* best_match(
      const std::vector<std::uint32_t>& matches) const;

  struct Slot {
    std::optional<FlowEntry> entry;
    std::vector<Label> signature;
    std::uint64_t seq = 0;  // insertion order, for stable tie-breaks
  };

  std::vector<FieldId> fields_;
  FieldSearchConfig config_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<FlowEntryId, std::uint32_t> id_to_slot_;
  std::size_t live_entries_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<FieldSearch> searches_;
  std::optional<IndexCalculator> index_;
  ActionTable actions_;
};

}  // namespace ofmtl
