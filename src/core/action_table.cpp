#include "core/action_table.hpp"

#include <algorithm>

namespace ofmtl {

void ActionTable::add(const InstructionSet& instructions) {
  instructions_.push_back(instructions);
  max_entry_bits_ = std::max(max_entry_bits_, instructions.bits());
}

void ActionTable::set(std::uint32_t rule_index, const InstructionSet& instructions) {
  if (rule_index >= instructions_.size()) {
    instructions_.resize(rule_index + 1);
  }
  instructions_[rule_index] = instructions;
  max_entry_bits_ = std::max(max_entry_bits_, instructions.bits());
}

void ActionTable::clear(std::uint32_t rule_index) {
  instructions_.at(rule_index) = InstructionSet{};
}

mem::MemoryReport ActionTable::memory_report(const std::string& name) const {
  mem::MemoryReport report;
  report.add(name, instructions_.size(), max_entry_bits_);
  return report;
}

}  // namespace ofmtl
