#include "core/multibit_trie.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

#include "core/flat_hash.hpp"

namespace ofmtl {

namespace {

/// Non-last levels this stride-wide can use the 32-bit compact child bitmap.
constexpr unsigned kCompactMaxStride = 5;

/// Mix of a (length, value) prefix key for the sealed table.
[[nodiscard]] std::uint64_t mix_prefix_key(unsigned len, std::uint64_t value) {
  return detail::mix64(value + (std::uint64_t{len} << 56));
}

}  // namespace

std::string_view to_string(TrieStorage policy) {
  switch (policy) {
    case TrieStorage::kSparse: return "sparse";
    case TrieStorage::kArrayBlock: return "array-block";
  }
  throw std::logic_error("unknown TrieStorage");
}

std::vector<unsigned> default_strides16() { return {5, 5, 6}; }

MultibitTrie::MultibitTrie(unsigned width, std::vector<unsigned> strides)
    : width_(width), strides_(std::move(strides)) {
  if (width == 0 || width > 64) throw std::invalid_argument("bad trie width");
  const unsigned total = std::accumulate(strides_.begin(), strides_.end(), 0U);
  if (strides_.empty() || total != width_) {
    throw std::invalid_argument("strides must sum to key width");
  }
  for (const unsigned s : strides_) {
    if (s == 0 || s > 24) throw std::invalid_argument("stride out of range");
  }
  levels_.resize(strides_.size());
  unsigned cum = 0;
  for (std::size_t i = 0; i < strides_.size(); ++i) {
    levels_[i].stride = strides_[i];
    levels_[i].cum_before = cum;
    cum += strides_[i];
  }
  compact_supported_ = true;
  for (std::size_t i = 0; i + 1 < strides_.size(); ++i) {
    if (strides_[i] > kCompactMaxStride) compact_supported_ = false;
  }
  allocate_block(0);  // root block always exists
}

std::int32_t MultibitTrie::allocate_block(std::size_t level_index) {
  Level& level = levels_[level_index];
  const auto block = static_cast<std::int32_t>(level.blocks);
  level.entries.resize(level.entries.size() + (std::size_t{1} << level.stride));
  ++level.blocks;
  // The only structural mutation: child arrays grew, so the contiguous
  // compact layout is stale. (Label rewrites — including every remove() —
  // leave the structure intact and never invalidate.)
  compact_valid_ = false;
  return block;
}

std::size_t MultibitTrie::total_blocks() const {
  std::size_t blocks = 0;
  for (const Level& level : levels_) blocks += level.blocks;
  return blocks;
}

void MultibitTrie::check_prefix(const Prefix& prefix) const {
  if (prefix.width() != width_) {
    throw std::invalid_argument("prefix width mismatch");
  }
}

void MultibitTrie::insert(const Prefix& prefix, Label label) {
  check_prefix(prefix);
  matches_valid_ = false;  // precomputed terminal lists now stale
  const auto [it, inserted] =
      prefixes_.try_emplace({prefix.length(), prefix.value64()}, label);
  if (!inserted) it->second = label;
  if (sealed_) {
    // Keep the flat query table current instead of unsealing: an update is
    // one probe chain, never an O(prefixes) rebuild.
    if (inserted) {
      flat_insert(prefix.length(), prefix.value64(), label);
    } else {
      flat_labels_[find_flat_slot(prefix.length(), prefix.value64())] = label;
    }
  }

  std::size_t block = 0;
  for (std::size_t li = 0; li < levels_.size(); ++li) {
    Level& level = levels_[li];
    const unsigned cum_after = level.cum_before + level.stride;
    if (prefix.length() > cum_after) {
      // Descend: this level's chunk is fully specified by the prefix.
      const std::uint64_t chunk = prefix.slice(level.cum_before, level.stride);
      const std::size_t index = entry_index(level, block, chunk);
      if (level.entries[index].child < 0) {
        level.entries[index].child = allocate_block(li + 1);
        ++writes_;  // pointer store
      }
      block = static_cast<std::size_t>(level.entries[index].child);
      continue;
    }
    // The prefix ends within this level: controlled prefix expansion over
    // the remaining stride bits.
    const unsigned bits_here = prefix.length() - level.cum_before;
    const std::uint64_t base =
        bits_here == 0 ? 0
                       : prefix.slice(level.cum_before, bits_here)
                             << (level.stride - bits_here);
    const std::size_t fan = std::size_t{1} << (level.stride - bits_here);
    for (std::size_t j = 0; j < fan; ++j) {
      Entry& entry = level.entries[entry_index(level, block, base + j)];
      const bool overwrite =
          entry.label == kNoLabel || entry.plen <= prefix.length();
      if (overwrite &&
          (entry.label != label ||
           entry.plen != static_cast<std::uint8_t>(prefix.length()))) {
        entry.label = label;
        entry.plen = static_cast<std::uint8_t>(prefix.length());
        ++writes_;
      }
    }
    return;
  }
  throw std::logic_error("prefix length exceeded stride coverage");
}

std::uint64_t MultibitTrie::insert_cost(const Prefix& prefix) const {
  check_prefix(prefix);
  std::uint64_t cost = 0;
  std::size_t block = 0;
  for (std::size_t li = 0; li < levels_.size(); ++li) {
    const Level& level = levels_[li];
    const unsigned cum_after = level.cum_before + level.stride;
    if (prefix.length() > cum_after) {
      const std::uint64_t chunk = prefix.slice(level.cum_before, level.stride);
      const std::size_t index = entry_index(level, block, chunk);
      if (level.entries[index].child < 0) {
        // A fresh insert would write this pointer, one pointer per new block
        // below, and the expansion fan at the level the prefix ends in.
        cost += 1;
        unsigned cum = cum_after;
        for (std::size_t lj = li + 1; lj < levels_.size(); ++lj) {
          const unsigned s = levels_[lj].stride;
          if (prefix.length() > cum + s) {
            cost += 1;
            cum += s;
            continue;
          }
          cost += std::uint64_t{1} << (s - (prefix.length() - cum));
          return cost;
        }
        return cost;
      }
      block = static_cast<std::size_t>(level.entries[index].child);
      continue;
    }
    const unsigned bits_here = prefix.length() - level.cum_before;
    cost += std::uint64_t{1} << (level.stride - bits_here);
    return cost;
  }
  return cost;
}

bool MultibitTrie::remove(const Prefix& prefix) {
  check_prefix(prefix);
  const auto it = prefixes_.find({prefix.length(), prefix.value64()});
  if (it == prefixes_.end()) return false;
  matches_valid_ = false;  // precomputed terminal lists now stale
  prefixes_.erase(it);
  if (sealed_) flat_erase(prefix.length(), prefix.value64());

  // Walk to the expansion block, then recompute every entry the removed
  // prefix owned from the remaining prefixes ending at the same level.
  std::size_t block = 0;
  for (std::size_t li = 0; li < levels_.size(); ++li) {
    Level& level = levels_[li];
    const unsigned cum_after = level.cum_before + level.stride;
    if (prefix.length() > cum_after) {
      const std::uint64_t chunk = prefix.slice(level.cum_before, level.stride);
      const std::size_t index = entry_index(level, block, chunk);
      if (level.entries[index].child < 0) return true;  // nothing expanded
      block = static_cast<std::size_t>(level.entries[index].child);
      continue;
    }
    const unsigned bits_here = prefix.length() - level.cum_before;
    const std::uint64_t base =
        bits_here == 0 ? 0
                       : prefix.slice(level.cum_before, bits_here)
                             << (level.stride - bits_here);
    const std::size_t fan = std::size_t{1} << (level.stride - bits_here);
    const std::uint64_t path_high =
        level.cum_before == 0
            ? 0
            : (prefix.value64() >> (width_ - level.cum_before))
                  << (width_ - level.cum_before);
    for (std::size_t j = 0; j < fan; ++j) {
      Entry& entry = level.entries[entry_index(level, block, base + j)];
      if (entry.plen != prefix.length() || entry.label == kNoLabel) continue;
      const std::uint64_t path =
          path_high | ((base + j) << (width_ - cum_after));
      entry.label = kNoLabel;
      entry.plen = 0;
      ++writes_;
      // Fallback: longest remaining prefix ending at this same level
      // (shorter ones live at earlier levels and stay on the lookup path).
      for (unsigned len = prefix.length(); len > level.cum_before; --len) {
        if (len == prefix.length()) continue;  // the removed one
        const std::uint64_t truncated = (path >> (width_ - len)) << (width_ - len);
        const auto fallback = prefixes_.find({len, truncated});
        if (fallback != prefixes_.end()) {
          entry.label = fallback->second;
          entry.plen = static_cast<std::uint8_t>(len);
          break;
        }
      }
    }
    return true;
  }
  return true;
}

std::optional<Label> MultibitTrie::lookup(std::uint64_t key) const {
  std::optional<Label> best;
  std::size_t block = 0;
  for (const Level& level : levels_) {
    const std::uint64_t chunk =
        (key >> (width_ - level.cum_before - level.stride)) &
        low_mask(level.stride);
    const Entry& entry = level.entries[entry_index(level, block, chunk)];
    if (entry.label != kNoLabel) best = entry.label;
    if (entry.child < 0) break;
    block = static_cast<std::size_t>(entry.child);
  }
  return best;
}

unsigned MultibitTrie::descend_depth(std::uint64_t key) const {
  if (compact_valid_) return descend_depth_compact(key);
  unsigned deepest_cum_after = 0;
  std::size_t block = 0;
  for (const Level& level : levels_) {
    deepest_cum_after = level.cum_before + level.stride;
    const std::uint64_t chunk =
        (key >> (width_ - deepest_cum_after)) & low_mask(level.stride);
    const Entry& entry = level.entries[entry_index(level, block, chunk)];
    if (entry.child < 0) break;
    block = static_cast<std::size_t>(entry.child);
  }
  return deepest_cum_after;
}

unsigned MultibitTrie::descend_depth_compact(std::uint64_t key) const {
  std::size_t node = 0;
  unsigned deepest_cum_after = 0;
  for (std::size_t li = 0; li < levels_.size(); ++li) {
    const Level& level = levels_[li];
    deepest_cum_after = level.cum_before + level.stride;
    if (li + 1 == levels_.size()) break;  // last level never descends
    const SealedNode& sn = compact_levels_[li][node];
    const auto chunk = static_cast<std::uint32_t>(
        (key >> (width_ - deepest_cum_after)) & low_mask(level.stride));
    if (!(sn.child_bits >> chunk & 1U)) break;
    node = sn.child_base +
           std::popcount(sn.child_bits & ((std::uint32_t{1} << chunk) - 1));
  }
  return deepest_cum_after;
}

Label MultibitTrie::probe_flat(unsigned len, std::uint64_t value) const {
  const std::size_t index = detail::tag_find(
      flat_tags_.data(), flat_mask_, mix_prefix_key(len, value),
      [&](std::size_t slot) {
        return flat_lens_[slot] == len && flat_values_[slot] == value;
      });
  return index == SIZE_MAX ? kNoLabel : flat_labels_[index];
}

void MultibitTrie::collect_sealed(std::uint64_t key,
                                  unsigned deepest_cum_after,
                                  std::vector<Label>& out) const {
  for (unsigned len = deepest_cum_after + 1; len-- > 0;) {
    if (!length_present(len)) continue;
    const std::uint64_t truncated =
        len == 0 ? 0 : (key >> (width_ - len)) << (width_ - len);
    const Label label = probe_flat(len, truncated);
    if (label != kNoLabel) out.push_back(label);
  }
}

void MultibitTrie::collect_matches(std::uint64_t key,
                                   unsigned deepest_cum_after,
                                   std::vector<Label>& out) const {
  // Report every stored prefix of the key whose length falls within a
  // visited level's range, longest first. (Entry labels alone under-report
  // when two prefixes end in the same level: controlled prefix expansion
  // keeps only the longest. Hardware stores a per-node ancestor bitmap; the
  // prefix table plays that role here.)
  if (sealed_) {
    collect_sealed(key, deepest_cum_after, out);
    return;
  }
  for (unsigned len = deepest_cum_after + 1; len-- > 0;) {
    const std::uint64_t truncated =
        len == 0 ? 0 : (key >> (width_ - len)) << (width_ - len);
    const auto it = prefixes_.find({len, truncated});
    if (it != prefixes_.end()) out.push_back(it->second);
  }
}

void MultibitTrie::compact_cell(std::uint64_t key, std::size_t* level_out,
                                std::uint32_t* cell_out) const {
  std::size_t node = 0;
  for (std::size_t li = 0;; ++li) {
    const Level& level = levels_[li];
    const auto chunk = static_cast<std::uint32_t>(
        (key >> (width_ - level.cum_before - level.stride)) &
        low_mask(level.stride));
    const auto cell =
        static_cast<std::uint32_t>((node << level.stride) | chunk);
    if (li + 1 == levels_.size()) {
      *level_out = li;
      *cell_out = cell;
      return;
    }
    const SealedNode& sn = compact_levels_[li][node];
    if (!(sn.child_bits >> chunk & 1U)) {
      *level_out = li;
      *cell_out = cell;
      return;
    }
    node = sn.child_base +
           std::popcount(sn.child_bits & ((std::uint32_t{1} << chunk) - 1));
  }
}

void MultibitTrie::lookup_all(std::uint64_t key, std::vector<Label>& out) const {
  out.clear();
  if (compact_valid_ && matches_valid_) {
    std::size_t li;
    std::uint32_t cell;
    compact_cell(key, &li, &cell);
    const auto& off = match_off_[li];
    detail::reserve_for_append(out, off[cell + 1] - off[cell]);
    out.insert(out.end(), match_pool_.begin() + off[cell],
               match_pool_.begin() + off[cell + 1]);
    return;
  }
  collect_matches(key, descend_depth(key), out);
}

void MultibitTrie::seal() {
  if (!sealed_) {
    rebuild_flat();
    rebuild_compact();
    sealed_ = true;
    return;
  }
  // Re-seal after incremental updates: the flat table is already current;
  // only the compact descent may be stale, and only after enough structural
  // growth to amortize the rebuild.
  maybe_rebuild_compact();
}

void MultibitTrie::rebuild_flat() {
  present_lengths_ = 0;
  length64_present_ = false;
  length_counts_.fill(0);
  const std::size_t capacity = detail::flat_tag_capacity(prefixes_.size());
  flat_values_.assign(capacity, 0);
  flat_lens_.assign(capacity, 0);
  flat_labels_.assign(capacity, kNoLabel);
  flat_tags_.assign(capacity, detail::kTagEmpty);
  flat_mask_ = capacity - 1;
  flat_live_ = prefixes_.size();
  flat_tombstones_ = 0;
  for (const auto& [key, label] : prefixes_) {
    const auto [len, value] = key;
    note_length_added(len);
    const std::uint64_t hash = mix_prefix_key(len, value);
    const std::size_t index =
        detail::tag_insert_slot(flat_tags_.data(), flat_mask_, hash);
    flat_tags_[index] = detail::tag_of(hash);
    flat_values_[index] = value;
    flat_lens_[index] = static_cast<std::uint8_t>(len);
    flat_labels_[index] = label;
  }
}

void MultibitTrie::rebuild_compact() {
  if (!compact_supported_) return;
  // Seal the mutable Entry blocks into contiguous popcount nodes: a BFS per
  // level keeps children in chunk order, so a node's k-th set child bit maps
  // to compact index child_base + k at the next level. Only live (reachable)
  // blocks get nodes — the compact arrays are usually smaller than the
  // allocated block count.
  compact_levels_.assign(levels_.empty() ? 0 : levels_.size() - 1, {});
  std::vector<std::size_t> current{0};  // legacy block ids, root first
  std::vector<std::size_t> next;
  for (std::size_t li = 0; li + 1 < levels_.size(); ++li) {
    const Level& level = levels_[li];
    auto& nodes = compact_levels_[li];
    nodes.reserve(current.size());
    next.clear();
    for (const std::size_t block : current) {
      SealedNode node;
      node.child_base = static_cast<std::uint32_t>(next.size());
      const std::size_t fan = std::size_t{1} << level.stride;
      for (std::size_t chunk = 0; chunk < fan; ++chunk) {
        const Entry& entry = level.entries[entry_index(level, block, chunk)];
        if (entry.child < 0) continue;
        node.child_bits |= std::uint32_t{1} << chunk;
        next.push_back(static_cast<std::size_t>(entry.child));
      }
      nodes.push_back(node);
    }
    current.swap(next);
  }
  compact_blocks_ = total_blocks();
  compact_valid_ = true;
  rebuild_matches();
}

void MultibitTrie::rebuild_matches() {
  // The path to a terminal cell IS the key prefix every per-length probe
  // would truncate to, so each reachable cell's full match list can be
  // materialized up front. BFS in the same (node, chunk) order as
  // rebuild_compact, so cell indices line up with the compact descent.
  match_off_.assign(levels_.size(), {});
  match_pool_.clear();
  std::vector<std::size_t> current{0};       // legacy block ids
  std::vector<std::uint64_t> cur_prefix{0};  // path bits (cum_before of level)
  std::vector<std::size_t> next;
  std::vector<std::uint64_t> next_prefix;
  for (std::size_t li = 0; li < levels_.size(); ++li) {
    const Level& level = levels_[li];
    const unsigned cum_after = level.cum_before + level.stride;
    const std::size_t fan = std::size_t{1} << level.stride;
    const bool last = li + 1 == levels_.size();
    auto& off = match_off_[li];
    off.clear();
    off.reserve(current.size() * fan + 1);
    off.push_back(static_cast<std::uint32_t>(match_pool_.size()));
    next.clear();
    next_prefix.clear();
    for (std::size_t n = 0; n < current.size(); ++n) {
      const std::size_t block = current[n];
      for (std::size_t chunk = 0; chunk < fan; ++chunk) {
        const std::uint64_t cell_prefix = (cur_prefix[n] << level.stride) | chunk;
        const Entry& entry = level.entries[entry_index(level, block, chunk)];
        if (last || entry.child < 0) {
          // Descents can end here; precompute the list they'd collect.
          collect_sealed(cell_prefix << (width_ - cum_after), cum_after,
                         match_pool_);
        } else {
          next.push_back(static_cast<std::size_t>(entry.child));
          next_prefix.push_back(cell_prefix);
        }
        off.push_back(static_cast<std::uint32_t>(match_pool_.size()));
      }
    }
    current.swap(next);
    cur_prefix.swap(next_prefix);
  }
  std::size_t bytes = match_pool_.size() * sizeof(Label);
  for (const auto& off : match_off_) bytes += off.size() * sizeof(std::uint32_t);
  for (const auto& nodes : compact_levels_) {
    bytes += nodes.size() * sizeof(SealedNode);
  }
  compact_resident_ = bytes <= 32768;
  matches_valid_ = true;
}

void MultibitTrie::maybe_rebuild_compact() {
  if (compact_valid_ || !compact_supported_) return;
  // Rebuild only after the structure grew by ~12% (min 16 blocks) since the
  // last seal: the rebuild is O(blocks), so amortized cost per allocated
  // block stays O(1) and per-publish seal() latency stays flat. Until then
  // descend_depth falls back to the legacy Entry walk — correct, just the
  // pre-compact speed.
  const std::size_t blocks = total_blocks();
  if (blocks >= compact_blocks_ +
                    std::max<std::size_t>(16, compact_blocks_ / 8)) {
    rebuild_compact();
  }
}

void MultibitTrie::note_length_added(unsigned len) {
  if (length_counts_[len]++ != 0) return;
  if (len < 64) {
    present_lengths_ |= std::uint64_t{1} << len;
  } else {
    length64_present_ = true;
  }
}

void MultibitTrie::note_length_removed(unsigned len) {
  if (--length_counts_[len] != 0) return;
  if (len < 64) {
    present_lengths_ &= ~(std::uint64_t{1} << len);
  } else {
    length64_present_ = false;
  }
}

std::size_t MultibitTrie::find_flat_slot(unsigned len,
                                         std::uint64_t value) const {
  return detail::tag_find(flat_tags_.data(), flat_mask_,
                          mix_prefix_key(len, value), [&](std::size_t slot) {
                            return flat_lens_[slot] == len &&
                                   flat_values_[slot] == value;
                          });
}

void MultibitTrie::flat_insert(unsigned len, std::uint64_t value, Label label) {
  // The rebuild reads prefixes_, which already contains the new prefix.
  if (detail::flat_needs_rebuild(flat_live_ + flat_tombstones_,
                                 flat_values_.size())) {
    rebuild_flat();
    return;
  }
  const std::uint64_t hash = mix_prefix_key(len, value);
  const std::size_t index =
      detail::tag_insert_slot(flat_tags_.data(), flat_mask_, hash);
  if (flat_tags_[index] == detail::kTagDeleted) --flat_tombstones_;
  flat_tags_[index] = detail::tag_of(hash);
  flat_values_[index] = value;
  flat_lens_[index] = static_cast<std::uint8_t>(len);
  flat_labels_[index] = label;
  ++flat_live_;
  note_length_added(len);
}

void MultibitTrie::flat_erase(unsigned len, std::uint64_t value) {
  const std::size_t index = find_flat_slot(len, value);
  if (index == SIZE_MAX) return;  // unreachable: caller found it in the map
  flat_tags_[index] = detail::kTagDeleted;
  flat_labels_[index] = kNoLabel;
  --flat_live_;
  ++flat_tombstones_;
  note_length_removed(len);
}

void MultibitTrie::lookup_all_batch(std::span<const std::uint64_t> keys,
                                    std::span<LabelList* const> outs) const {
  if (outs.size() < keys.size()) {
    throw std::invalid_argument("lookup_all_batch: outs span too small");
  }
  constexpr std::size_t kLanes = 8;  // keys descended in lock-step per window
  const bool use_lists = compact_valid_ && matches_valid_;
  if (use_lists && compact_resident_) {
    // The whole sealed structure is cache-resident: straight-line per-key
    // descent + one contiguous copy beats the lockstep/prefetch machinery.
    for (std::size_t i = 0; i < keys.size(); ++i) {
      std::size_t li;
      std::uint32_t cell;
      compact_cell(keys[i], &li, &cell);
      const auto& off = match_off_[li];
      auto& out = *outs[i];
      out.clear();
      detail::reserve_for_append(out, off[cell + 1] - off[cell]);
      out.insert(out.end(), match_pool_.begin() + off[cell],
                 match_pool_.begin() + off[cell + 1]);
    }
    return;
  }
  for (std::size_t base = 0; base < keys.size(); base += kLanes) {
    const std::size_t lanes = std::min(kLanes, keys.size() - base);
    unsigned deepest[kLanes] = {};
    std::size_t term_level[kLanes] = {};
    std::uint32_t term_cell[kLanes] = {};
    if (compact_valid_) {
      // Popcount descent over the sealed 8-byte nodes: a whole level's lane
      // window is a handful of cache lines, and the child index is one
      // AND + popcount instead of a strided Entry-array gather.
      std::size_t node[kLanes] = {};
      bool active[kLanes];
      for (std::size_t lane = 0; lane < lanes; ++lane) active[lane] = true;
      for (std::size_t li = 0; li < levels_.size(); ++li) {
        const Level& level = levels_[li];
        const unsigned cum_after = level.cum_before + level.stride;
        const bool last = li + 1 == levels_.size();
        const SealedNode* nodes = last ? nullptr : compact_levels_[li].data();
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          if (!active[lane]) continue;
          deepest[lane] = cum_after;
          const auto chunk = static_cast<std::uint32_t>(
              (keys[base + lane] >> (width_ - cum_after)) &
              low_mask(level.stride));
          if (last) {
            term_level[lane] = li;
            term_cell[lane] = static_cast<std::uint32_t>(
                (node[lane] << level.stride) | chunk);
            continue;
          }
          const SealedNode& sn = nodes[node[lane]];
          if (!(sn.child_bits >> chunk & 1U)) {
            term_level[lane] = li;
            term_cell[lane] = static_cast<std::uint32_t>(
                (node[lane] << level.stride) | chunk);
            active[lane] = false;
            continue;
          }
          node[lane] =
              sn.child_base +
              std::popcount(sn.child_bits & ((std::uint32_t{1} << chunk) - 1));
          if (li + 2 < levels_.size()) {
            __builtin_prefetch(compact_levels_[li + 1].data() + node[lane]);
          }
        }
        if (last) break;
      }
      if (use_lists) {
        // One precomputed contiguous copy per lane instead of per-length
        // flat-table probes: prefetch every lane's CSR row, then emit.
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          __builtin_prefetch(match_off_[term_level[lane]].data() +
                             term_cell[lane]);
        }
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          const auto& off = match_off_[term_level[lane]];
          __builtin_prefetch(match_pool_.data() + off[term_cell[lane]]);
        }
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          const auto& off = match_off_[term_level[lane]];
          auto& out = *outs[base + lane];
          out.clear();
          detail::reserve_for_append(
              out, off[term_cell[lane] + 1] - off[term_cell[lane]]);
          out.insert(out.end(), match_pool_.begin() + off[term_cell[lane]],
                     match_pool_.begin() + off[term_cell[lane] + 1]);
        }
        continue;
      }
    } else {
      std::size_t block[kLanes] = {};
      std::size_t index[kLanes] = {};
      bool active[kLanes];
      for (std::size_t lane = 0; lane < lanes; ++lane) active[lane] = true;
      // Level-synchronous descent: compute and prefetch every lane's entry
      // for this level before any lane reads it, hiding the dependent-load
      // latency one packet at a time cannot.
      for (const Level& level : levels_) {
        const unsigned cum_after = level.cum_before + level.stride;
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          if (!active[lane]) continue;
          const std::uint64_t chunk =
              (keys[base + lane] >> (width_ - cum_after)) &
              low_mask(level.stride);
          index[lane] = entry_index(level, block[lane], chunk);
          __builtin_prefetch(level.entries.data() + index[lane]);
        }
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          if (!active[lane]) continue;
          const Entry& entry = level.entries[index[lane]];
          deepest[lane] = cum_after;
          if (entry.child < 0) {
            active[lane] = false;
          } else {
            block[lane] = static_cast<std::size_t>(entry.child);
          }
        }
      }
    }
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      auto& out = *outs[base + lane];
      out.clear();
      collect_matches(keys[base + lane], deepest[lane], out);
    }
  }
}

TrieLevelStats MultibitTrie::level_stats(std::size_t level_index) const {
  const Level& level = levels_.at(level_index);
  TrieLevelStats stats;
  stats.blocks = level.blocks;
  stats.allocated_entries = level.entries.size();
  for (const Entry& entry : level.entries) {
    if (entry.label != kNoLabel || entry.child >= 0) ++stats.stored_nodes;
    if (entry.label != kNoLabel) ++stats.labelled_nodes;
  }
  return stats;
}

std::size_t MultibitTrie::stored_nodes(std::size_t level,
                                       TrieStorage policy) const {
  const auto stats = level_stats(level);
  return policy == TrieStorage::kSparse ? stats.stored_nodes
                                        : stats.allocated_entries;
}

std::size_t MultibitTrie::stored_nodes(TrieStorage policy) const {
  std::size_t total = 0;
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    total += stored_nodes(level, policy);
  }
  return total;
}

std::vector<TrieNodeLayout> MultibitTrie::layouts(
    unsigned label_bits, std::size_t pointer_capacity_blocks) const {
  std::vector<TrieNodeLayout> result(levels_.size());
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    TrieNodeLayout& layout = result[i];
    layout.label_bits = label_bits;
    layout.flag_bits = 1;
    if (i + 1 < levels_.size()) {
      const std::size_t capacity =
          pointer_capacity_blocks != 0
              ? pointer_capacity_blocks
              : std::max<std::size_t>(levels_[i + 1].blocks, 1);
      // +1 reserves a null-pointer encoding.
      layout.pointer_bits = std::max(1U, ceil_log2(capacity + 1));
    }
  }
  return result;
}

std::uint64_t MultibitTrie::level_bits(std::size_t level, TrieStorage policy,
                                       unsigned label_bits) const {
  const auto layout = layouts(label_bits)[level];
  return stored_nodes(level, policy) *
         static_cast<std::uint64_t>(layout.node_bits());
}

std::uint64_t MultibitTrie::total_bits(TrieStorage policy,
                                       unsigned label_bits) const {
  std::uint64_t total = 0;
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    total += level_bits(level, policy, label_bits);
  }
  return total;
}

mem::MemoryReport MultibitTrie::memory_report(const std::string& name,
                                              TrieStorage policy,
                                              unsigned label_bits) const {
  mem::MemoryReport report;
  const auto layout = layouts(label_bits);
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    report.add(name + ".L" + std::to_string(level + 1),
               stored_nodes(level, policy), layout[level].node_bits());
  }
  return report;
}

std::vector<TrieNodeLayout> uniform_layouts(
    const std::vector<const MultibitTrie*>& tries, unsigned label_bits) {
  if (tries.empty()) return {};
  std::vector<TrieNodeLayout> worst = tries.front()->layouts(label_bits);
  for (const MultibitTrie* trie : tries) {
    const auto layouts_i = trie->layouts(label_bits);
    if (layouts_i.size() != worst.size()) {
      throw std::invalid_argument("uniform_layouts: level-count mismatch");
    }
    for (std::size_t level = 0; level < worst.size(); ++level) {
      worst[level].pointer_bits =
          std::max(worst[level].pointer_bits, layouts_i[level].pointer_bits);
      worst[level].label_bits =
          std::max(worst[level].label_bits, layouts_i[level].label_bits);
    }
  }
  return worst;
}

}  // namespace ofmtl
