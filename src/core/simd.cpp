#include "core/simd.hpp"

#include <cstdio>
#include <mutex>

#include "obs/tracer.hpp"

namespace ofmtl::simd {

const char* to_string(Level level) {
  switch (level) {
    case Level::kSwar: return "swar";
    case Level::kSse2: return "sse2";
    case Level::kNeon: return "neon";
    case Level::kAvx2: return "avx2";
  }
  return "unknown";
}

namespace {

Level probe_level() {
#if defined(OFMTL_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  // Compiled with the AVX2 kernels but running on an older CPU: degrade to
  // the SSE2 baseline once, loudly enough to show up in a trace, instead of
  // SIGILL-ing inside a gather later.
  static std::once_flag warned;
  std::call_once(warned, [] {
    OFMTL_OBS_EMIT(obs::TraceEvent::kSimdFallback, 0,
                   static_cast<std::uint64_t>(Level::kSse2));
    std::fprintf(stderr,
                 "ofmtl: CPU lacks AVX2, SIMD kernels fall back to sse2\n");
  });
  return Level::kSse2;
#elif defined(OFMTL_SIMD_NEON)
  return Level::kNeon;
#else
  return Level::kSwar;
#endif
}

}  // namespace

Level detect_level() {
  static const Level level = probe_level();
  return level;
}

Level active_level() {
  return swar_forced() ? Level::kSwar : detect_level();
}

#if defined(OFMTL_SIMD_X86)
namespace {

__attribute__((target("avx2"))) void lower_bound_u64x8_avx2(
    const std::uint64_t* data, std::size_t n, const std::uint64_t* keys,
    std::uint32_t* out) {
  const __m256i bias =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i k0 = _mm256_xor_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys)), bias);
  const __m256i k1 = _mm256_xor_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + 4)), bias);
  __m256i lo0 = _mm256_setzero_si256();
  __m256i lo1 = _mm256_setzero_si256();
  // Uniform-length halving: every lane probes data[lo + half] and advances
  // lo by half only when that element is <= its key, converging on the
  // last index with data[index] <= key (identical to upper_bound - 1).
  std::size_t len = n;
  while (len > 1) {
    const std::size_t half = len >> 1;
    const __m256i vhalf = _mm256_set1_epi64x(static_cast<long long>(half));
    const __m256i g0 = _mm256_xor_si256(
        _mm256_i64gather_epi64(reinterpret_cast<const long long*>(data),
                               _mm256_add_epi64(lo0, vhalf), 8),
        bias);
    const __m256i g1 = _mm256_xor_si256(
        _mm256_i64gather_epi64(reinterpret_cast<const long long*>(data),
                               _mm256_add_epi64(lo1, vhalf), 8),
        bias);
    // data[lo+half] <= key  <=>  !(data[lo+half] > key)
    lo0 = _mm256_add_epi64(lo0,
                           _mm256_andnot_si256(_mm256_cmpgt_epi64(g0, k0),
                                               vhalf));
    lo1 = _mm256_add_epi64(lo1,
                           _mm256_andnot_si256(_mm256_cmpgt_epi64(g1, k1),
                                               vhalf));
    len -= half;
  }
  alignas(32) long long lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), lo0);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes + 4), lo1);
  for (unsigned i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint32_t>(lanes[i]);
  }
}

}  // namespace
#endif

bool lower_bound_u64x8(const std::uint64_t* data, std::size_t n,
                       const std::uint64_t* keys, std::uint32_t* out) {
#if defined(OFMTL_SIMD_X86)
  if (active_level() == Level::kAvx2) {
    lower_bound_u64x8_avx2(data, n, keys, out);
    return true;
  }
#endif
  (void)data;
  (void)n;
  (void)keys;
  (void)out;
  return false;
}

}  // namespace ofmtl::simd
