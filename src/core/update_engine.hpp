// Update-process simulation (Section V.B). The software controller generates
// two files — an *algorithm file* characterizing each lookup-algorithm
// structure and an *action file* for the action tables. The hardware update
// engine consumes them at two clock cycles per update word: cycle 1 computes
// the memory index, cycle 2 stores the data.
//
// Fig. 5 compares the cycles needed with the optimized (label-method) files
// against the initial files without labelling, where every rule re-writes
// its field values even when already stored.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/lookup_table.hpp"
#include "core/pipeline.hpp"

namespace ofmtl {

inline constexpr std::uint64_t kCyclesPerUpdateWord = 2;

/// One update word destined for a structure's memory block.
struct UpdateWord {
  std::string target;      ///< e.g. "t1.Destination Ethernet.trie.lo.L2"
  std::uint64_t address;   ///< word address within the block
  std::uint64_t payload;   ///< encoded node/slot/entry data
};

/// A generated update file plus its cost.
struct UpdateScript {
  std::vector<UpdateWord> words;
  [[nodiscard]] std::uint64_t word_count() const { return words.size(); }
  [[nodiscard]] std::uint64_t cycles() const {
    return kCyclesPerUpdateWord * words.size();
  }
  void write(std::ostream& out) const;
  /// Inverse of write(); throws std::invalid_argument on malformed lines.
  [[nodiscard]] static UpdateScript parse(std::istream& in);
};

/// The hardware update engine consuming an update file: each word costs one
/// index-calculation cycle and one store cycle (Section V.B), writing into
/// named memory blocks. The replayed image is the test surface for the
/// file-generation path.
class UpdateReplayer {
 public:
  /// Apply a script; returns total clock cycles consumed.
  std::uint64_t replay(const UpdateScript& script);

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  /// Words stored in one block (by target name); 0 if absent.
  [[nodiscard]] std::size_t block_words(const std::string& target) const;
  /// Payload at (target, address); nullopt if never written.
  [[nodiscard]] std::optional<std::uint64_t> word_at(const std::string& target,
                                                     std::uint64_t address) const;

 private:
  std::map<std::string, std::map<std::uint64_t, std::uint64_t>> blocks_;
  std::uint64_t cycles_ = 0;
};

/// What the script covers: the lookup algorithms only (Fig. 5's comparison)
/// or algorithms + index stages + action tables.
enum class UpdateScope : std::uint8_t { kAlgorithms, kAll };

/// Cycle accounting for one table or pipeline build.
struct UpdateCost {
  std::uint64_t optimized_words = 0;  ///< with the label method
  std::uint64_t original_words = 0;   ///< per-rule duplicated writes

  [[nodiscard]] std::uint64_t optimized_cycles() const {
    return kCyclesPerUpdateWord * optimized_words;
  }
  [[nodiscard]] std::uint64_t original_cycles() const {
    return kCyclesPerUpdateWord * original_words;
  }
  /// Fig. 5's headline: percentage of cycles saved by the label method.
  [[nodiscard]] double reduction_percent() const {
    if (original_words == 0) return 0.0;
    return 100.0 *
           (static_cast<double>(original_words - optimized_words) /
            static_cast<double>(original_words));
  }
  UpdateCost& operator+=(const UpdateCost& other) {
    optimized_words += other.optimized_words;
    original_words += other.original_words;
    return *this;
  }
};

/// Generate the optimized (label-method) update script for a built table:
/// one word per stored structure element.
[[nodiscard]] UpdateScript optimized_script(const LookupTable& table,
                                            UpdateScope scope);

/// Count the words the *original* (label-less) files would contain: every
/// rule writes its full field data — trie path pointers and expansion fan,
/// one LUT slot, one range entry — regardless of repetition.
[[nodiscard]] std::uint64_t original_words(const LookupTable& table,
                                           UpdateScope scope);

/// Both costs for a table / a whole pipeline.
[[nodiscard]] UpdateCost update_cost(const LookupTable& table, UpdateScope scope);
[[nodiscard]] UpdateCost update_cost(const MultiTableLookup& pipeline,
                                     UpdateScope scope);

/// Words a fresh insert of `prefix` writes into an empty trie with these
/// strides: one pointer per descended level + the expansion fan. This is the
/// per-rule cost model for label-less updates.
[[nodiscard]] std::uint64_t fresh_insert_words(const Prefix& prefix,
                                               const std::vector<unsigned>& strides);

}  // namespace ofmtl
