#include "core/pipeline.hpp"

namespace ofmtl {

MultiTableLookup MultiTableLookup::compile(const ReferencePipeline& reference,
                                           FieldSearchConfig config) {
  MultiTableLookup pipeline;
  for (std::size_t t = 0; t < reference.table_count(); ++t) {
    pipeline.add_table(LookupTable::compile(reference.table(t), config));
  }
  return pipeline;
}

mem::MemoryReport MultiTableLookup::memory_report(const std::string& prefix) const {
  mem::MemoryReport report;
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    report.merge(tables_[t].memory_report(prefix + ".t" + std::to_string(t)), "");
  }
  return report;
}

std::uint64_t MultiTableLookup::update_words() const {
  std::uint64_t words = 0;
  for (const auto& table : tables_) words += table.update_words();
  return words;
}

}  // namespace ofmtl
