#include "core/pipeline.hpp"

namespace ofmtl {

void MultiTableLookup::execute_batch(std::span<const PacketHeader> headers,
                                     std::span<ExecutionResult> results) const {
  static thread_local ExecBatchContext ctx;
  execute_tables_batch(*this, headers, results, ctx);
}

void MultiTableLookup::source_lookup_batch(
    std::size_t table, std::span<const PacketHeader* const> headers,
    std::span<const FlowEntry*> out) const {
  // ExecBatchContext lives in the flow layer, which cannot depend on core's
  // SearchContext, so the per-thread search scratch is owned here instead of
  // being threaded through the batch executor. Still allocation-free and
  // one-context-per-thread; it just outlives individual batch calls.
  static thread_local SearchContext ctx;
  tables_[table].lookup_batch(headers, out, ctx);
}

MultiTableLookup MultiTableLookup::compile(const ReferencePipeline& reference,
                                           FieldSearchConfig config) {
  MultiTableLookup pipeline;
  for (std::size_t t = 0; t < reference.table_count(); ++t) {
    pipeline.add_table(LookupTable::compile(reference.table(t), config));
  }
  return pipeline;
}

mem::MemoryReport MultiTableLookup::memory_report(const std::string& prefix) const {
  mem::MemoryReport report;
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    report.merge(tables_[t].memory_report(prefix + ".t" + std::to_string(t)), "");
  }
  return report;
}

std::uint64_t MultiTableLookup::update_words() const {
  std::uint64_t words = 0;
  for (const auto& table : tables_) words += table.update_words();
  return words;
}

}  // namespace ofmtl
