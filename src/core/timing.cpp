#include "core/timing.hpp"

#include <algorithm>

#include "net/types.hpp"

namespace ofmtl {

unsigned TimingModel::field_search_stages(const FieldSearch& search) const {
  switch (search.method()) {
    case MatchMethod::kExact:
      return 2;  // hash computation + slot read
    case MatchMethod::kLongestPrefix: {
      unsigned deepest = 0;
      for (const auto& trie : search.tries()) {
        deepest = std::max(deepest,
                           static_cast<unsigned>(trie.level_count()));
      }
      return deepest;  // partitions run in parallel; one stage per level
    }
    case MatchMethod::kRange: {
      const auto* ranges = search.ranges();
      if (ranges == nullptr || ranges->unique_ranges() <= 1) return 1;
      // Binary search over interval boundaries + label read.
      return ceil_log2(2 * ranges->unique_ranges()) + 1;
    }
  }
  return 1;
}

TableStages TimingModel::table_stages(const LookupTable& table) const {
  TableStages stages;
  for (const auto& search : table.field_searches()) {
    stages.field_stages =
        std::max(stages.field_stages, field_search_stages(search));
  }
  stages.index_stages =
      static_cast<unsigned>(table.index().algorithm_count()) - 1;
  return stages;
}

unsigned TimingModel::pipeline_latency(const MultiTableLookup& pipeline) const {
  unsigned latency = 0;
  for (std::size_t t = 0; t < pipeline.table_count(); ++t) {
    latency += table_stages(pipeline.table(t)).total();
  }
  return latency;
}

}  // namespace ofmtl
