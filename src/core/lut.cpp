#include "core/lut.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/flat_hash.hpp"

namespace ofmtl {

namespace {
constexpr std::size_t kInitialSlots = detail::kTagGroup;
constexpr double kMaxLoad = 0.7;
}  // namespace

ExactMatchLut::ExactMatchLut(unsigned key_bits) : key_bits_(key_bits) {
  if (key_bits == 0 || key_bits > 128) throw std::invalid_argument("bad key width");
  slots_.resize(kInitialSlots);
  slot_labels_.resize(kInitialSlots, kNoLabel);
  tags_.resize(kInitialSlots, detail::kTagEmpty);
}

std::size_t ExactMatchLut::find_slot(const U128& value) const {
  return detail::tag_find(
      tags_.data(), tags_.size() - 1, detail::U128Hash{}(value),
      [&](std::size_t slot) { return slots_[slot] == value; });
}

void ExactMatchLut::rehash(std::size_t new_slot_count) {
  std::vector<U128> old_slots = std::move(slots_);
  std::vector<Label> old_labels = std::move(slot_labels_);
  std::vector<std::uint8_t> old_tags = std::move(tags_);
  slots_.assign(new_slot_count, U128{});
  slot_labels_.assign(new_slot_count, kNoLabel);
  tags_.assign(new_slot_count, detail::kTagEmpty);
  tombstone_count_ = 0;  // rehash purges tombstones
  for (std::size_t i = 0; i < old_tags.size(); ++i) {
    if (old_tags[i] >= 0x80) continue;  // empty or tombstoned
    const std::uint64_t hash = detail::U128Hash{}(old_slots[i]);
    const std::size_t slot =
        detail::tag_insert_slot(tags_.data(), tags_.size() - 1, hash);
    tags_[slot] = detail::tag_of(hash);
    slots_[slot] = old_slots[i];
    slot_labels_[slot] = old_labels[i];
  }
}

Label ExactMatchLut::insert(const U128& value) {
  const Label label = encoder_.encode(value);
  if (static_cast<double>(live_count_ + 1) >
      kMaxLoad * static_cast<double>(slots_.size())) {
    rehash(slots_.size() * 2);
  } else if (static_cast<double>(live_count_ + tombstone_count_ + 1) >
             kMaxLoad * static_cast<double>(slots_.size())) {
    // Same-size rehash purging tombstones, so probe chains always hit an
    // empty terminator (otherwise a full-of-tombstones table loops forever).
    rehash(slots_.size());
  }
  std::size_t slot = find_slot(value);
  if (slot == SIZE_MAX) {
    const std::uint64_t hash = detail::U128Hash{}(value);
    slot = detail::tag_insert_slot(tags_.data(), tags_.size() - 1, hash);
    if (tags_[slot] == detail::kTagDeleted) --tombstone_count_;
    ++live_count_;
    tags_[slot] = detail::tag_of(hash);
    slots_[slot] = value;
  }
  slot_labels_[slot] = label;
  return label;
}

bool ExactMatchLut::remove(const U128& value) {
  const std::size_t slot = find_slot(value);
  if (slot == SIZE_MAX) return false;
  tags_[slot] = detail::kTagDeleted;
  slot_labels_[slot] = kNoLabel;
  --live_count_;
  ++tombstone_count_;
  return true;
}

std::optional<Label> ExactMatchLut::lookup(const U128& value) const {
  const std::size_t slot = find_slot(value);
  if (slot == SIZE_MAX) return std::nullopt;
  return slot_labels_[slot];
}

void ExactMatchLut::lookup_batch(std::span<const U128> values,
                                 std::span<Label> out) const {
  if (out.size() < values.size()) {
    throw std::invalid_argument("lookup_batch: out span too small");
  }
  constexpr std::size_t kLanes = 8;  // probes issued in lock-step per window
  const std::size_t mask = tags_.size() - 1;
  for (std::size_t base = 0; base < values.size(); base += kLanes) {
    const std::size_t lanes = std::min(kLanes, values.size() - base);
    std::uint64_t hash[kLanes];
    // Hash every lane and prefetch its home tag group (and the first line
    // of the group's slots) before any lane probes, overlapping the cache
    // misses a scalar probe chain would serialize.
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      hash[lane] = detail::U128Hash{}(values[base + lane]);
      const std::size_t group = detail::tag_group_of(hash[lane], mask);
      __builtin_prefetch(tags_.data() + group);
      __builtin_prefetch(slots_.data() + group);
      __builtin_prefetch(slot_labels_.data() + group);
    }
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const U128& value = values[base + lane];
      const std::size_t slot = detail::tag_find(
          tags_.data(), mask, hash[lane],
          [&](std::size_t s) { return slots_[s] == value; });
      out[base + lane] = slot == SIZE_MAX ? kNoLabel : slot_labels_[slot];
    }
  }
}

mem::MemoryReport ExactMatchLut::memory_report(const std::string& name) const {
  mem::MemoryReport report;
  report.add(name, slots_.size(), slot_bits());
  return report;
}

}  // namespace ofmtl
