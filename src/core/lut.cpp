#include "core/lut.hpp"

#include <algorithm>
#include <stdexcept>

namespace ofmtl {

namespace {
constexpr std::size_t kInitialSlots = 16;
constexpr double kMaxLoad = 0.7;
}  // namespace

ExactMatchLut::ExactMatchLut(unsigned key_bits) : key_bits_(key_bits) {
  if (key_bits == 0 || key_bits > 128) throw std::invalid_argument("bad key width");
  slots_.resize(kInitialSlots);
  slot_labels_.resize(kInitialSlots, kNoLabel);
  states_.resize(kInitialSlots, SlotState::kEmpty);
}

std::size_t ExactMatchLut::probe(const U128& value) const {
  // Linear probing with tombstones: a lookup must skip tombstones, an insert
  // may reuse the first tombstone on its probe path.
  const std::size_t mask = slots_.size() - 1;
  std::size_t index = detail::U128Hash{}(value)&mask;
  std::size_t first_tombstone = slots_.size();
  while (states_[index] != SlotState::kEmpty) {
    if (states_[index] == SlotState::kLive && *slots_[index] == value) {
      return index;
    }
    if (states_[index] == SlotState::kTombstone &&
        first_tombstone == slots_.size()) {
      first_tombstone = index;
    }
    index = (index + 1) & mask;
  }
  return first_tombstone != slots_.size() ? first_tombstone : index;
}

void ExactMatchLut::rehash(std::size_t new_slot_count) {
  std::vector<std::optional<U128>> old_slots = std::move(slots_);
  std::vector<Label> old_labels = std::move(slot_labels_);
  std::vector<SlotState> old_states = std::move(states_);
  slots_.assign(new_slot_count, std::nullopt);
  slot_labels_.assign(new_slot_count, kNoLabel);
  states_.assign(new_slot_count, SlotState::kEmpty);
  tombstone_count_ = 0;  // rehash purges tombstones
  for (std::size_t i = 0; i < old_slots.size(); ++i) {
    if (old_states[i] != SlotState::kLive) continue;
    const std::size_t index = probe(*old_slots[i]);
    slots_[index] = old_slots[i];
    slot_labels_[index] = old_labels[i];
    states_[index] = SlotState::kLive;
  }
}

Label ExactMatchLut::insert(const U128& value) {
  const Label label = encoder_.encode(value);
  if (static_cast<double>(live_count_ + 1) >
      kMaxLoad * static_cast<double>(slots_.size())) {
    rehash(slots_.size() * 2);
  } else if (static_cast<double>(live_count_ + tombstone_count_ + 1) >
             kMaxLoad * static_cast<double>(slots_.size())) {
    // Same-size rehash purging tombstones, so probe chains always hit an
    // empty terminator (otherwise a full-of-tombstones table loops forever).
    rehash(slots_.size());
  }
  const std::size_t index = probe(value);
  if (states_[index] == SlotState::kTombstone) --tombstone_count_;
  if (states_[index] != SlotState::kLive) ++live_count_;
  slots_[index] = value;
  slot_labels_[index] = label;
  states_[index] = SlotState::kLive;
  return label;
}

bool ExactMatchLut::remove(const U128& value) {
  const std::size_t index = probe(value);
  if (states_[index] != SlotState::kLive || *slots_[index] != value) {
    return false;
  }
  states_[index] = SlotState::kTombstone;
  slots_[index].reset();
  slot_labels_[index] = kNoLabel;
  --live_count_;
  ++tombstone_count_;
  return true;
}

std::optional<Label> ExactMatchLut::lookup(const U128& value) const {
  const std::size_t index = probe(value);
  if (states_[index] != SlotState::kLive) return std::nullopt;
  return slot_labels_[index];
}

void ExactMatchLut::lookup_batch(std::span<const U128> values,
                                 std::span<Label> out) const {
  if (out.size() < values.size()) {
    throw std::invalid_argument("lookup_batch: out span too small");
  }
  constexpr std::size_t kLanes = 8;  // probes issued in lock-step per window
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t base = 0; base < values.size(); base += kLanes) {
    const std::size_t lanes = std::min(kLanes, values.size() - base);
    std::size_t index[kLanes];
    // Hash every lane and prefetch its first slot before any lane probes,
    // overlapping the cache misses a scalar probe chain would serialize.
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      index[lane] = detail::U128Hash{}(values[base + lane]) & mask;
      __builtin_prefetch(states_.data() + index[lane]);
      __builtin_prefetch(slots_.data() + index[lane]);
    }
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const U128& value = values[base + lane];
      std::size_t i = index[lane];
      Label label = kNoLabel;
      while (states_[i] != SlotState::kEmpty) {
        if (states_[i] == SlotState::kLive && *slots_[i] == value) {
          label = slot_labels_[i];
          break;
        }
        i = (i + 1) & mask;
      }
      out[base + lane] = label;
    }
  }
}

mem::MemoryReport ExactMatchLut::memory_report(const std::string& name) const {
  mem::MemoryReport report;
  report.add(name, slots_.size(), slot_bits());
  return report;
}

}  // namespace ofmtl
