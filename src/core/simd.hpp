// Vector shim of the SIMD lane engine: the three innermost probe kernels
// (flat-hash tag-group compare, branchless lower-bound, popcount trie
// descent) run on 16-byte groups through the primitives below. The backend
// is selected at configure time (-DOFMTL_SIMD=ON compiles the x86-64 /
// aarch64 intrinsics paths, OFF leaves only portable SWAR) and verified at
// runtime: SSE2/NEON are baseline for their ISAs, AVX2 is probed via CPUID
// on first use and silently degrades to the 128-bit path — with a one-time
// traced fallback event — instead of faulting on older hardware.
//
// Tests flip force_swar() to run every suite twice; the SWAR kernels are
// bit-identical to the vector ones by construction, which the extended
// property sweeps (test_batch_probes, test_execute_batch, test_full_sweep)
// assert on random and adversarial inputs.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(OFMTL_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))
#define OFMTL_SIMD_X86 1
#include <immintrin.h>
#elif defined(OFMTL_SIMD_ENABLED) && defined(__aarch64__)
#define OFMTL_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace ofmtl::simd {

/// Backend actually driving the kernels (after runtime verification).
enum class Level : std::uint8_t {
  kSwar,  ///< portable 64-bit SWAR (also the -DOFMTL_SIMD=OFF build)
  kSse2,  ///< x86-64 baseline 128-bit (no CPUID needed)
  kNeon,  ///< aarch64 baseline 128-bit
  kAvx2,  ///< x86-64 with CPUID-verified AVX2 (gathered lower-bound)
};

[[nodiscard]] const char* to_string(Level level);

/// Best level this binary + CPU supports (CPUID-checked once, cached).
/// On x86-64 without AVX2 the first call emits the one-time fallback
/// notice (kSimdFallback trace event + stderr line) instead of letting an
/// AVX2 kernel SIGILL later.
[[nodiscard]] Level detect_level();

/// detect_level(), or kSwar while force_swar(true) is in effect.
[[nodiscard]] Level active_level();

namespace detail {
inline std::atomic<bool> g_force_swar{false};
}

/// Test hook: route every kernel through the portable SWAR path so property
/// tests can compare both implementations in one process.
inline void force_swar(bool on) {
  detail::g_force_swar.store(on, std::memory_order_relaxed);
}
[[nodiscard]] inline bool swar_forced() {
  return detail::g_force_swar.load(std::memory_order_relaxed);
}

/// RAII toggle for the double-run property sweeps.
class ScopedForceSwar {
 public:
  explicit ScopedForceSwar(bool on) : prev_(swar_forced()) { force_swar(on); }
  ~ScopedForceSwar() { force_swar(prev_); }
  ScopedForceSwar(const ScopedForceSwar&) = delete;
  ScopedForceSwar& operator=(const ScopedForceSwar&) = delete;

 private:
  bool prev_;
};

// --- 16-byte tag-group kernels ----------------------------------------------
// A group is 16 contiguous one-byte slot tags (SwissTable-style): live slots
// carry the 7-bit hash tag (0x00..0x7F), empty/deleted slots a sentinel with
// the high bit set. One kernel call answers "which of these 16 slots could
// match" as a bitmask.

/// Bit i set <=> group[i] == tag. Exact SWAR byte-equality: OR-ing kHigh in
/// before the decrement keeps every per-byte subtraction borrow-free, so —
/// unlike the classic `(x - kOnes) & ~x & kHigh` zero-byte test, which can
/// flag the byte above a true zero — each flagged position really is an
/// exact match. The 0x0102040810204080 multiply then gathers the per-byte
/// high bits carry-free (every partial product lands on a distinct bit).
[[nodiscard]] inline std::uint32_t match_bytes16_swar(const std::uint8_t* group,
                                                      std::uint8_t tag) {
  constexpr std::uint64_t kOnes = 0x0101010101010101ULL;
  constexpr std::uint64_t kHigh = 0x8080808080808080ULL;
  std::uint32_t mask = 0;
  for (unsigned w = 0; w < 2; ++w) {
    std::uint64_t word;
    std::memcpy(&word, group + 8 * w, 8);
    const std::uint64_t x = word ^ (kOnes * tag);
    const std::uint64_t hit = ~(x | ((x | kHigh) - kOnes)) & kHigh;
    mask |= static_cast<std::uint32_t>(
                ((hit >> 7) * 0x0102040810204080ULL) >> 56)
            << (8 * w);
  }
  return mask;
}

/// Bit i set <=> group[i] >= 0x80 (empty or deleted slot; live hash tags are
/// 7-bit). This is a raw movemask of the group.
[[nodiscard]] inline std::uint32_t match_special16_swar(
    const std::uint8_t* group) {
  constexpr std::uint64_t kHigh = 0x8080808080808080ULL;
  std::uint32_t mask = 0;
  for (unsigned w = 0; w < 2; ++w) {
    std::uint64_t word;
    std::memcpy(&word, group + 8 * w, 8);
    const std::uint64_t hit = word & kHigh;
    mask |= static_cast<std::uint32_t>(
                ((hit >> 7) * 0x0102040810204080ULL) >> 56)
            << (8 * w);
  }
  return mask;
}

#if defined(OFMTL_SIMD_X86)
[[nodiscard]] inline std::uint32_t match_bytes16_sse2(const std::uint8_t* group,
                                                      std::uint8_t tag) {
  const __m128i g =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(group));
  const __m128i eq = _mm_cmpeq_epi8(g, _mm_set1_epi8(static_cast<char>(tag)));
  return static_cast<std::uint32_t>(_mm_movemask_epi8(eq));
}

[[nodiscard]] inline std::uint32_t match_special16_sse2(
    const std::uint8_t* group) {
  const __m128i g =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(group));
  return static_cast<std::uint32_t>(_mm_movemask_epi8(g));
}
#endif

#if defined(OFMTL_SIMD_NEON)
// NEON has no movemask; dot the 0xFF match bytes against per-lane bit
// weights and horizontal-add each half (the sums cannot carry: one distinct
// power of two per byte).
[[nodiscard]] inline std::uint32_t movemask16_neon(uint8x16_t bytes) {
  const uint8x8_t weights = {1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t masked =
      vandq_u8(bytes, vcombine_u8(weights, weights));
  const std::uint32_t lo = vaddv_u8(vget_low_u8(masked));
  const std::uint32_t hi = vaddv_u8(vget_high_u8(masked));
  return lo | (hi << 8);
}

[[nodiscard]] inline std::uint32_t match_bytes16_neon(const std::uint8_t* group,
                                                      std::uint8_t tag) {
  const uint8x16_t g = vld1q_u8(group);
  return movemask16_neon(vceqq_u8(g, vdupq_n_u8(tag)));
}

[[nodiscard]] inline std::uint32_t match_special16_neon(
    const std::uint8_t* group) {
  const uint8x16_t g = vld1q_u8(group);
  return movemask16_neon(vcgeq_u8(g, vdupq_n_u8(0x80)));
}
#endif

/// Dispatch: the 128-bit paths are ISA baseline (no CPUID), so the only
/// runtime branch is the test-only force_swar flag — absent entirely from
/// the -DOFMTL_SIMD=OFF build.
[[nodiscard]] inline std::uint32_t match_bytes16(const std::uint8_t* group,
                                                 std::uint8_t tag) {
#if defined(OFMTL_SIMD_X86)
  if (!swar_forced()) return match_bytes16_sse2(group, tag);
#elif defined(OFMTL_SIMD_NEON)
  if (!swar_forced()) return match_bytes16_neon(group, tag);
#endif
  return match_bytes16_swar(group, tag);
}

[[nodiscard]] inline std::uint32_t match_special16(const std::uint8_t* group) {
#if defined(OFMTL_SIMD_X86)
  if (!swar_forced()) return match_special16_sse2(group);
#elif defined(OFMTL_SIMD_NEON)
  if (!swar_forced()) return match_special16_neon(group);
#endif
  return match_special16_swar(group);
}

// --- 8-lane branchless lower-bound ------------------------------------------

/// out[i] = largest index j with data[j] <= keys[i], for 8 keys against the
/// same sorted array (requires data[0] <= every key, which the interval
/// index guarantees with boundaries_[0] == 0). AVX2 gathered implementation;
/// returns false (caller runs the scalar branchless loop) when AVX2 is
/// unavailable or SWAR is forced. Unsigned order is preserved under signed
/// 64-bit compares by biasing both sides with 2^63.
[[nodiscard]] bool lower_bound_u64x8(const std::uint64_t* data, std::size_t n,
                                     const std::uint64_t* keys,
                                     std::uint32_t* out);

}  // namespace ofmtl::simd
