// Action tables (Fig. 1, Section IV.C): the instruction storage addressed by
// the final index. Matched entries carry Goto-Table / Write-Actions; a miss
// is "send to controller".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/instruction.hpp"
#include "mem/memory_model.hpp"

namespace ofmtl {

class ActionTable {
 public:
  /// Append instructions (next sequential index).
  void add(const InstructionSet& instructions);

  /// Write instructions at an arbitrary slot (grows the table as needed) —
  /// used by incremental entry insertion with slot reuse.
  void set(std::uint32_t rule_index, const InstructionSet& instructions);

  /// Reset a slot to the empty instruction set (removed entry).
  void clear(std::uint32_t rule_index);

  [[nodiscard]] const InstructionSet& get(std::uint32_t rule_index) const {
    return instructions_.at(rule_index);
  }
  [[nodiscard]] std::size_t size() const { return instructions_.size(); }

  /// Fixed-width words: every entry padded to the widest instruction set.
  [[nodiscard]] unsigned word_bits() const { return max_entry_bits_; }
  [[nodiscard]] mem::MemoryReport memory_report(const std::string& name) const;
  [[nodiscard]] std::uint64_t update_words() const { return instructions_.size(); }

 private:
  std::vector<InstructionSet> instructions_;
  unsigned max_entry_bits_ = 0;
};

}  // namespace ofmtl
