// Shared primitives of the sealed flat open-addressing tables: the
// splitmix64 finalizer that spreads dense keys, the power-of-two capacity
// rule (>= 2x the entry count, so probe chains stay short and always find
// an empty slot), and the SwissTable-style tag-group probe loops every flat
// table routes its hot path through. Each slot owns a one-byte tag — the
// top 7 bits of its key's hash for live slots, a high-bit sentinel for
// empty/deleted — and probes walk 16-slot groups with one vector byte
// compare per group (core/simd.hpp) instead of touching one key per step.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/simd.hpp"

namespace ofmtl::detail {

/// Reserve power-of-two headroom before a bulk append of `extra` elements.
/// A bare range-insert() grows a vector to exact fit, so a reused scratch
/// vector re-allocates every time a batch produces a slightly larger
/// working set than any before it; doubling converges to a stable capacity
/// after a handful of batches, which the steady-state allocation-free
/// property tests rely on.
template <typename T>
inline void reserve_for_append(std::vector<T>& v, std::size_t extra) {
  const std::size_t need = v.size() + extra;
  if (need > v.capacity()) v.reserve(std::bit_ceil(need));
}

/// splitmix64 finalizer (Steele/Lea/Flood) — full-avalanche 64-bit mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t key) {
  std::uint64_t h = key + 0x9E3779B97F4A7C15ULL;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  return h ^ (h >> 31);
}

/// Smallest power-of-two capacity keeping load factor <= 50% (minimum 2).
[[nodiscard]] constexpr std::size_t flat_capacity(std::size_t count) {
  std::size_t capacity = 2;
  while (capacity < 2 * count) capacity <<= 1;
  return capacity;
}

/// Incremental-insert rebuild rule shared by every tombstoning flat table
/// (IndexCalculator stages + final table, MultibitTrie prefix table): with
/// `used` non-empty slots (live + tombstoned) in `capacity`, accepting one
/// more insert must keep at least half the slots truly empty, so probe
/// chains stay short and always terminate.
[[nodiscard]] constexpr bool flat_needs_rebuild(std::size_t used,
                                                std::size_t capacity) {
  return 2 * (used + 1) > capacity;
}

/// --- tag-group probing ------------------------------------------------------

/// Slots probed per vector compare; also the minimum table capacity.
inline constexpr std::size_t kTagGroup = 16;
/// Never-used slot. Terminates probe walks (a group containing one proves
/// the key is absent beyond it).
inline constexpr std::uint8_t kTagEmpty = 0xFF;
/// Tombstoned slot: probes walk past it, inserts may reuse it.
inline constexpr std::uint8_t kTagDeleted = 0xFE;

/// Live-slot tag: the hash's top 7 bits (0x00..0x7F — the high bit is the
/// sentinel namespace). The low bits pick the slot, so tag and position are
/// nearly independent.
[[nodiscard]] constexpr std::uint8_t tag_of(std::uint64_t hash) {
  return static_cast<std::uint8_t>(hash >> 57);
}

/// flat_capacity with the one-group floor tag probing needs.
[[nodiscard]] constexpr std::size_t flat_tag_capacity(std::size_t count) {
  const std::size_t capacity = flat_capacity(count);
  return capacity < kTagGroup ? kTagGroup : capacity;
}

/// Home group of `hash` (group-aligned slot index).
[[nodiscard]] constexpr std::size_t tag_group_of(std::uint64_t hash,
                                                 std::size_t mask) {
  return hash & mask & ~(kTagGroup - 1);
}

/// Find the live slot holding `hash`'s key: walk groups from the home group,
/// vector-compare each group's 16 tags against the hash tag, and verify only
/// the tag hits (`verify(slot)` checks the actual key; it only ever sees
/// live slots, since sentinels can't equal a 7-bit tag). A group containing
/// an empty slot ends the walk — inserts never place a key past the first
/// empty-bearing group. Returns SIZE_MAX when absent. Termination: every
/// table keeps >= half (LUT: >= 30%) of its slots truly empty via
/// flat_needs_rebuild / rehash, so an empty group member is always reached.
template <typename Verify>
[[nodiscard]] inline std::size_t tag_find(const std::uint8_t* tags,
                                          std::size_t mask, std::uint64_t hash,
                                          Verify&& verify) {
  const std::uint8_t tag = tag_of(hash);
  std::size_t group = tag_group_of(hash, mask);
  while (true) {
    std::uint32_t match = simd::match_bytes16(tags + group, tag);
    while (match != 0) {
      const auto slot = group + static_cast<std::size_t>(
                                    std::countr_zero(match));
      if (verify(slot)) return slot;
      match &= match - 1;
    }
    if (simd::match_bytes16(tags + group, kTagEmpty) != 0) return SIZE_MAX;
    group = (group + kTagGroup) & mask;
  }
}

/// First reusable slot (empty or tombstoned) on `hash`'s probe path. The
/// caller must have established the key is absent. Reusing a tombstone is
/// always safe for later finds: the chosen group is at or before the first
/// empty-bearing group, so every find walk still passes it.
[[nodiscard]] inline std::size_t tag_insert_slot(const std::uint8_t* tags,
                                                 std::size_t mask,
                                                 std::uint64_t hash) {
  std::size_t group = tag_group_of(hash, mask);
  while (true) {
    const std::uint32_t special = simd::match_special16(tags + group);
    if (special != 0) {
      return group + static_cast<std::size_t>(std::countr_zero(special));
    }
    group = (group + kTagGroup) & mask;
  }
}

}  // namespace ofmtl::detail
