// Shared primitives of the sealed flat open-addressing tables: the
// splitmix64 finalizer that spreads dense keys, and the power-of-two
// capacity rule (>= 2x the entry count, so probe chains stay short and the
// linear-probe loops always find an empty slot).
#pragma once

#include <cstdint>

namespace ofmtl::detail {

/// splitmix64 finalizer (Steele/Lea/Flood) — full-avalanche 64-bit mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t key) {
  std::uint64_t h = key + 0x9E3779B97F4A7C15ULL;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  return h ^ (h >> 31);
}

/// Smallest power-of-two capacity keeping load factor <= 50% (minimum 2).
[[nodiscard]] constexpr std::size_t flat_capacity(std::size_t count) {
  std::size_t capacity = 2;
  while (capacity < 2 * count) capacity <<= 1;
  return capacity;
}

/// Incremental-insert rebuild rule shared by every tombstoning flat table
/// (IndexCalculator stages + final table, MultibitTrie prefix table): with
/// `used` non-empty slots (live + tombstoned) in `capacity`, accepting one
/// more insert must keep at least half the slots truly empty, so probe
/// chains stay short and always terminate.
[[nodiscard]] constexpr bool flat_needs_rebuild(std::size_t used,
                                                std::size_t capacity) {
  return 2 * (used + 1) > capacity;
}

}  // namespace ofmtl::detail
