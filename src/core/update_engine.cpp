#include "core/update_engine.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace ofmtl {

void UpdateScript::write(std::ostream& out) const {
  for (const auto& word : words) {
    out << word.target << " " << word.address << " " << word.payload << "\n";
  }
}

UpdateScript UpdateScript::parse(std::istream& in) {
  UpdateScript script;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Targets may contain spaces (field names); the last two space-separated
    // tokens are address and payload.
    const auto last = line.rfind(' ');
    const auto second_last =
        last == std::string::npos ? std::string::npos : line.rfind(' ', last - 1);
    if (last == std::string::npos || second_last == std::string::npos) {
      throw std::invalid_argument("bad update line: " + line);
    }
    UpdateWord word;
    word.target = line.substr(0, second_last);
    try {
      word.address = std::stoull(line.substr(second_last + 1, last - second_last - 1));
      word.payload = std::stoull(line.substr(last + 1));
    } catch (const std::exception&) {
      throw std::invalid_argument("bad update line: " + line);
    }
    script.words.push_back(std::move(word));
  }
  return script;
}

std::uint64_t UpdateReplayer::replay(const UpdateScript& script) {
  const std::uint64_t before = cycles_;
  for (const auto& word : script.words) {
    blocks_[word.target][word.address] = word.payload;  // cycle 1: index
    cycles_ += kCyclesPerUpdateWord;                    // cycle 2: store
  }
  return cycles_ - before;
}

std::size_t UpdateReplayer::block_words(const std::string& target) const {
  const auto it = blocks_.find(target);
  return it == blocks_.end() ? 0 : it->second.size();
}

std::optional<std::uint64_t> UpdateReplayer::word_at(
    const std::string& target, std::uint64_t address) const {
  const auto block = blocks_.find(target);
  if (block == blocks_.end()) return std::nullopt;
  const auto word = block->second.find(address);
  if (word == block->second.end()) return std::nullopt;
  return word->second;
}

std::uint64_t fresh_insert_words(const Prefix& prefix,
                                 const std::vector<unsigned>& strides) {
  std::uint64_t words = 0;
  unsigned cum = 0;
  for (const unsigned stride : strides) {
    if (prefix.length() > cum + stride) {
      words += 1;  // pointer store at this level
      cum += stride;
      continue;
    }
    const unsigned bits_here = prefix.length() - cum;
    words += std::uint64_t{1} << (stride - bits_here);  // expansion fan
    return words;
  }
  return words;
}

UpdateScript optimized_script(const LookupTable& table, UpdateScope scope) {
  UpdateScript script;
  std::uint64_t serial = 0;
  const auto emit = [&script, &serial](const std::string& target,
                                       std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      script.words.push_back({target, i, serial++});
    }
  };

  for (std::size_t f = 0; f < table.fields().size(); ++f) {
    const auto& search = table.field_searches()[f];
    const std::string base = "t." + std::string(field_name(table.fields()[f]));
    switch (search.method()) {
      case MatchMethod::kExact:
        emit(base + ".lut", search.lut()->update_words());
        break;
      case MatchMethod::kLongestPrefix: {
        const auto& tries = search.tries();
        for (std::size_t p = 0; p < tries.size(); ++p) {
          emit(base + ".trie" + std::to_string(p), tries[p].write_count());
        }
        break;
      }
      case MatchMethod::kRange:
        emit(base + ".ranges", search.ranges()->unique_ranges());
        break;
    }
  }
  if (scope == UpdateScope::kAll) {
    emit("t.index", table.index().update_words());
    emit("t.actions", table.actions().update_words());
  }
  return script;
}

std::uint64_t original_words(const LookupTable& table, UpdateScope scope) {
  std::uint64_t words = 0;
  const std::vector<unsigned>* strides = nullptr;
  for (const auto& search : table.field_searches()) {
    if (!search.tries().empty()) {
      strides = &search.tries().front().strides();
      break;
    }
  }

  for (const auto& entry : table.entries()) {
    for (std::size_t f = 0; f < table.fields().size(); ++f) {
      const FieldId id = table.fields()[f];
      const auto& fm = entry.match.get(id);
      const auto& search = table.field_searches()[f];
      switch (search.method()) {
        case MatchMethod::kExact:
          if (fm.kind != MatchKind::kAny) words += 1;  // one LUT slot
          break;
        case MatchMethod::kRange:
          words += 1;  // one range record
          break;
        case MatchMethod::kLongestPrefix: {
          const unsigned bits = field_bits(id);
          Prefix prefix;
          if (fm.kind == MatchKind::kPrefix) {
            prefix = fm.prefix;
          } else if (fm.kind == MatchKind::kExact) {
            prefix = Prefix{fm.value, bits, bits};
          } else {
            prefix = Prefix{U128{}, 0, bits};
          }
          const unsigned partitions = partition_count(bits);
          for (unsigned p = 0; p < partitions; ++p) {
            const unsigned plen = prefix.partition16_length(p);
            const auto part =
                Prefix::from_value(prefix.partition16(p), plen, 16);
            words += fresh_insert_words(
                part, strides != nullptr ? *strides : default_strides16());
          }
          break;
        }
      }
    }
    if (scope == UpdateScope::kAll) {
      words += 2;  // index record + action-table entry per rule
    }
  }
  return words;
}

UpdateCost update_cost(const LookupTable& table, UpdateScope scope) {
  UpdateCost cost;
  cost.optimized_words = optimized_script(table, scope).word_count();
  cost.original_words = original_words(table, scope);
  return cost;
}

UpdateCost update_cost(const MultiTableLookup& pipeline, UpdateScope scope) {
  UpdateCost cost;
  for (std::size_t t = 0; t < pipeline.table_count(); ++t) {
    cost += update_cost(pipeline.table(t), scope);
  }
  return cost;
}

}  // namespace ofmtl
