// Index calculation (Fig. 1, Section IV.C): combines the labels returned by
// the parallel single-field algorithms into the index of the matching flow
// entry. Implemented as progressive pairwise combination — the Distributed
// Crossproducting of Field Labels scheme ([11], DCFL) the paper's label
// method derives from: stage i holds the valid (accumulated-label, next-
// algorithm-label) pairs, so only label combinations some rule actually uses
// are ever materialized (no crossproduct explosion).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/field_search.hpp"
#include "mem/memory_model.hpp"

namespace ofmtl {

class IndexCalculator {
 public:
  /// `algorithm_count` = total algorithms across the table's fields.
  explicit IndexCalculator(std::size_t algorithm_count);

  /// Register a rule's signature (one label per algorithm, in order).
  /// `rule_index` is the position in the table's entry array.
  void add_rule(const std::vector<Label>& signature, std::uint32_t rule_index);

  /// Unregister a rule. Pair entries are reference-counted across rules and
  /// vanish when the last sharing rule leaves — the incremental-update
  /// counterpart of add_rule. Throws if the signature was never registered.
  void remove_rule(const std::vector<Label>& signature, std::uint32_t rule_index);

  /// Query with per-algorithm candidate lists (most specific first). Appends
  /// the indices of every rule whose signature is covered; order unspecified.
  void query(const std::vector<LabelList>& candidates,
             std::vector<std::uint32_t>& out) const;

  [[nodiscard]] std::size_t algorithm_count() const { return stage_count_ + 1; }

  /// Memory model: each stage is a hash table of (label,label)->label words.
  [[nodiscard]] mem::MemoryReport memory_report(const std::string& prefix) const;
  [[nodiscard]] std::uint64_t update_words() const;

 private:
  using PairKey = std::uint64_t;
  [[nodiscard]] static PairKey pair_key(Label a, Label b) {
    return (std::uint64_t{a} << 32) | b;
  }

  struct PairEntry {
    Label label = 0;
    std::uint32_t refs = 0;
  };

  std::size_t stage_count_;  // = algorithm_count - 1
  std::vector<std::unordered_map<PairKey, PairEntry>> stages_;
  std::vector<Label> next_intermediate_;  // per stage
  // Final combined label -> rule indices (several rules may share a match
  // signature at different priorities).
  std::unordered_map<Label, std::vector<std::uint32_t>> rules_;
  Label next_final_ = 0;
};

}  // namespace ofmtl
