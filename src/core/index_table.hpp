// Index calculation (Fig. 1, Section IV.C): combines the labels returned by
// the parallel single-field algorithms into the index of the matching flow
// entry. Implemented as progressive pairwise combination — the Distributed
// Crossproducting of Field Labels scheme ([11], DCFL) the paper's label
// method derives from: stage i holds the valid (accumulated-label, next-
// algorithm-label) pairs, so only label combinations some rule actually uses
// are ever materialized (no crossproduct explosion).
//
// Two states per stage: a mutable build/update path (reference-counted
// unordered_maps, always current) and a sealed query path (flat open-
// addressing arrays rebuilt by seal()). Queries probe the flat tables when
// sealed and fall back to the maps otherwise, so sealing is purely a fast
// path — LookupTable reseals after every bulk build and incremental update.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/field_search.hpp"
#include "mem/memory_model.hpp"

namespace ofmtl {

class IndexCalculator {
 public:
  /// `algorithm_count` = total algorithms across the table's fields.
  explicit IndexCalculator(std::size_t algorithm_count);

  /// Register a rule's signature (one label per algorithm, in order).
  /// `rule_index` is the position in the table's entry array. On a sealed
  /// calculator the flat query tables are maintained in place (amortized
  /// O(signature), never an O(rules) rebuild) and stay sealed.
  void add_rule(const std::vector<Label>& signature, std::uint32_t rule_index);

  /// Unregister a rule. Pair entries are reference-counted across rules and
  /// vanish when the last sharing rule leaves — the incremental-update
  /// counterpart of add_rule. Throws if the signature was never registered.
  /// Sealed calculators stay sealed (tombstone deletion).
  void remove_rule(const std::vector<Label>& signature, std::uint32_t rule_index);

  /// Rebuild the flat query tables from the current pair maps. Once sealed,
  /// add_rule/remove_rule keep the flat tables current incrementally, so
  /// this runs once after bulk construction and is a no-op afterwards.
  void seal();
  [[nodiscard]] bool sealed() const { return sealed_; }

  /// Query with per-algorithm candidate lists (most specific first). Appends
  /// the indices of every rule whose signature is covered; order unspecified.
  void query(const std::vector<LabelList>& candidates,
             std::vector<std::uint32_t>& out) const;

  /// Allocation-free query: candidate lists as a contiguous span (one per
  /// algorithm), working sets borrowed from `ctx`.
  void query(std::span<const LabelList> candidates, SearchContext& ctx,
             std::vector<std::uint32_t>& out) const;

  /// Batched allocation-free query over every lane prepared in `ctx` (the
  /// per-lane candidate slots filled by the field searches): fills
  /// ctx.lane_matches(lane) with exactly what query(ctx.packet_candidates
  /// (lane), ...) would produce, but probes the sealed flat stages
  /// interleaved across lanes with software prefetch — stage by stage, every
  /// lane's pair probes are issued before any lane's are resolved. Unsealed
  /// calculators fall back to the per-lane scalar combine.
  void query_batch(SearchContext& ctx) const;

  [[nodiscard]] std::size_t algorithm_count() const { return stage_count_ + 1; }

  /// Memory model: each stage is a hash table of (label,label)->label words.
  [[nodiscard]] mem::MemoryReport memory_report(const std::string& prefix) const;
  [[nodiscard]] std::uint64_t update_words() const;

 private:
  using PairKey = std::uint64_t;
  [[nodiscard]] static PairKey pair_key(Label a, Label b) {
    return (std::uint64_t{a} << 32) | b;
  }

  struct PairEntry {
    Label label = 0;
    std::uint32_t refs = 0;
  };

  /// Sealed form of one stage: open-addressed pair-key table, power-of-two
  /// capacity, group-linear tag probing (core/flat_hash.hpp). Slot state
  /// lives in the one-byte tags — keys/labels are meaningful only where the
  /// tag is a live 7-bit hash tag.
  struct FlatStage {
    std::vector<PairKey> keys;
    std::vector<Label> labels;
    std::vector<std::uint8_t> tags;
    std::uint64_t mask = 0;
  };

  [[nodiscard]] Label probe_stage(const FlatStage& stage, PairKey key) const;
  void combine(std::span<const LabelList> candidates, std::vector<Label>& current,
               std::vector<Label>& next, std::vector<std::uint32_t>& out) const;

  /// --- incremental maintenance of the sealed tables (sealed_ only) ---
  /// The mutable maps must already reflect the mutation: a load- or
  /// garbage-triggered rebuild reads them.
  void rebuild_stage(std::size_t stage);
  void rebuild_final();
  void flat_stage_insert(std::size_t stage, PairKey key, Label label);
  void flat_stage_erase(std::size_t stage, PairKey key);
  void final_add(Label final_label, std::uint32_t rule_index);
  void final_remove(Label final_label, std::uint32_t rule_index);
  /// Append a zeroed region of `capacity` slots to final_rules_.
  [[nodiscard]] std::uint32_t append_final_region(std::uint32_t capacity);

  std::size_t stage_count_;  // = algorithm_count - 1
  std::vector<std::unordered_map<PairKey, PairEntry>> stages_;
  std::vector<Label> next_intermediate_;  // per stage
  // Final combined label -> rule indices (several rules may share a match
  // signature at different priorities).
  std::unordered_map<Label, std::vector<std::uint32_t>> rules_;
  Label next_final_ = 0;

  // Sealed query tables: one flat stage per pair map, plus the final
  // label -> rule-index map flattened into CSR form behind its own flat
  // key table. Incremental mutations keep them current without a full
  // rebuild: stage/final slots tombstone on delete (probes skip tombstones,
  // inserts reuse them), and each final label owns a slack-capacity region
  // of final_rules_ that grows by relocation to the tail; abandoned regions
  // are garbage until a threshold-triggered compaction. Rebuilds therefore
  // run amortized-O(1) per mutation, never per-publish.
  bool sealed_ = false;
  std::vector<FlatStage> flat_stages_;
  std::vector<std::size_t> stage_used_;        // live + tombstoned slots
  std::vector<std::uint64_t> final_keys_;      // slot -> final label
  std::vector<std::uint8_t> final_tags_;       // slot state (tag-group probed)
  std::vector<std::uint32_t> final_offsets_;   // slot -> region offset
  std::vector<std::uint32_t> final_counts_;    // slot -> live indices
  std::vector<std::uint32_t> final_caps_;      // slot -> region capacity
  std::vector<std::uint32_t> final_rules_;     // region storage
  std::uint64_t final_mask_ = 0;
  std::size_t final_used_ = 0;     // live + tombstoned key slots
  std::size_t final_garbage_ = 0;  // abandoned final_rules_ slots
};

}  // namespace ofmtl
