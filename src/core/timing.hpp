// Hardware timing model for the decomposed architecture. The paper pipelines
// every structure — "each lookup algorithm is implemented in a separate
// memory block, and each node level of the multi-bit trie is searched in a
// different pipeline stage" (Section V.A) — so the design sustains one
// lookup per clock (initiation interval 1) and its latency is the stage
// count along the deepest path. This model turns a built pipeline into
// stage counts, latency and line-rate estimates, connecting the memory
// study to the paper's 40-100 Gbps motivation.
#pragma once

#include <cstdint>

#include "core/lookup_table.hpp"
#include "core/pipeline.hpp"

namespace ofmtl {

/// Stage breakdown of one lookup table.
struct TableStages {
  unsigned field_stages = 0;   ///< deepest parallel single-field search
  unsigned index_stages = 0;   ///< progressive label-combination stages
  unsigned action_stages = 1;  ///< action-table read
  [[nodiscard]] unsigned total() const {
    return field_stages + index_stages + action_stages;
  }
};

struct TimingModel {
  /// Fabric clock. 200 MHz is a conservative Stratix V figure for block-RAM
  /// pipelines of this shape.
  double clock_mhz = 200.0;

  /// Stage depth of a single-field search: trie = one stage per level,
  /// hash LUT = hash + read, range matcher = binary-search depth + read.
  [[nodiscard]] unsigned field_search_stages(const FieldSearch& search) const;

  [[nodiscard]] TableStages table_stages(const LookupTable& table) const;

  /// Latency in cycles of one packet through the whole pipeline (sum of the
  /// visited tables; all tables counted, the worst-case path).
  [[nodiscard]] unsigned pipeline_latency(const MultiTableLookup& pipeline) const;

  /// Sustained throughput: the pipeline accepts a new header every cycle.
  [[nodiscard]] double lookups_per_second() const { return clock_mhz * 1e6; }

  /// Line rate supported at a given packet size (bits/s of minimum-size
  /// packets the lookup engine can keep up with).
  [[nodiscard]] double line_rate_gbps(unsigned packet_bytes) const {
    return lookups_per_second() * packet_bytes * 8.0 / 1e9;
  }

  /// Minimum packet size sustainable at a target line rate.
  [[nodiscard]] double min_packet_bytes(double target_gbps) const {
    return target_gbps * 1e9 / 8.0 / lookups_per_second();
  }
};

}  // namespace ofmtl
