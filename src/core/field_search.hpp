// One field's parallel search machinery inside a lookup table (Fig. 1's
// "Algorithm Set"): the Partition/Selector splits the field into 16-bit
// partitions; each partition is searched by its own algorithm —
//   EM  -> hash LUT            (one algorithm for the whole field)
//   LPM -> one MultibitTrie per 16-bit partition (MAC: 3, IPv4: 2, IPv6: 8)
//   RM  -> RangeMatcher        (one algorithm for the whole field)
// Every algorithm returns an ordered candidate-label list (most specific
// first); the index-calculation stage combines them across fields.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "classifier/range_matcher.hpp"
#include "core/lut.hpp"
#include "core/multibit_trie.hpp"
#include "core/search_context.hpp"
#include "flow/flow_entry.hpp"
#include "mem/memory_model.hpp"
#include "net/fields.hpp"
#include "net/header.hpp"

namespace ofmtl {

/// Tunables for building field searches.
struct FieldSearchConfig {
  std::vector<unsigned> strides = default_strides16();  // per 16-bit trie
  TrieStorage storage = TrieStorage::kSparse;
};

class FieldSearch {
 public:
  FieldSearch(FieldId field, FieldSearchConfig config = {});

  FieldSearch(FieldSearch&&) = default;
  FieldSearch& operator=(FieldSearch&&) = default;

  /// Number of parallel algorithms this field contributes (1 for EM/RM,
  /// one per 16-bit partition for LPM).
  [[nodiscard]] std::size_t algorithm_count() const;

  /// Register one rule's constraint on this field. Returns the rule's label
  /// per algorithm (the rule "signature slice" for this field). Wildcards
  /// map to the zero-length prefix (LPM/RM) or a reserved any-label (EM).
  /// Unique values are reference-counted across rules.
  [[nodiscard]] std::vector<Label> add_rule(const FieldMatch& match);

  /// Unregister one rule's constraint; when the last rule sharing a unique
  /// value leaves, the value is removed from its structure (trie / LUT /
  /// range index). Returns the labels the rule held. Throws if the
  /// constraint was never registered.
  std::vector<Label> remove_rule(const FieldMatch& match);

  /// Finish building (seals the range matcher and the partition tries'
  /// flat query tables).
  void seal();

  /// Search a packet: one candidate list per algorithm, appended to `out`.
  void search(const PacketHeader& header, std::vector<LabelList>& out) const;

  /// Allocation-free search of one packet (context lane `lane`): fills the
  /// context slots [slot_base, slot_base + algorithm_count()).
  void search(const PacketHeader& header, SearchContext& ctx, std::size_t lane,
              std::size_t slot_base) const;

  /// Batched search: fills each packet's slots, interleaving the partition-
  /// trie descents across packets with software prefetch (lane i's slots
  /// start at ctx.slot(i, slot_base)).
  void search_batch(std::span<const PacketHeader* const> headers,
                    SearchContext& ctx, std::size_t slot_base) const;

  [[nodiscard]] FieldId field() const { return field_; }
  [[nodiscard]] MatchMethod method() const { return field_method(field_); }

  /// Unique stored values per algorithm (the Table III/IV statistics).
  [[nodiscard]] std::vector<std::size_t> unique_values() const;

  [[nodiscard]] mem::MemoryReport memory_report(const std::string& prefix) const;

  /// Update words written while building (label method): LUT slots occupied,
  /// trie entry writes, range-matcher intervals.
  [[nodiscard]] std::uint64_t update_words() const;

  /// Access to the partition tries (LPM fields only), for the memory study.
  [[nodiscard]] const std::vector<MultibitTrie>& tries() const { return tries_; }
  [[nodiscard]] const ExactMatchLut* lut() const { return lut_.get(); }
  [[nodiscard]] const RangeMatcher* ranges() const { return ranges_.get(); }

 private:
  /// A rule's constraint decomposed into per-algorithm elements.
  struct RuleElements {
    std::vector<Prefix> partitions;     // LPM: one 16-bit prefix per trie
    std::optional<U128> exact_value;    // EM: nullopt = wildcard
    std::optional<ValueRange> range;    // RM
  };
  [[nodiscard]] RuleElements decompose(const FieldMatch& match) const;

  FieldId field_;
  FieldSearchConfig config_;
  // Exactly one of the three engines is populated, per the match method.
  std::unique_ptr<ExactMatchLut> lut_;
  std::vector<MultibitTrie> tries_;
  std::vector<ValueLabelEncoder> trie_encoders_;  // (len,value) -> label, per trie
  std::unique_ptr<RangeMatcher> ranges_;
  // Reserved wildcard label for EM fields; listed in candidates while its
  // reference count is nonzero.
  std::optional<Label> em_any_label_;
  std::uint32_t em_any_refs_ = 0;
  // Per-algorithm label reference counts (how many rules hold each label).
  std::vector<std::unordered_map<Label, std::uint32_t>> label_refs_;
};

}  // namespace ofmtl
