#include "core/builder.hpp"

#include <map>
#include <stdexcept>

namespace ofmtl {

namespace {

/// Encode a U128 field value into the 64-bit metadata register. Field values
/// used as table-0 keys here are <= 64 bits (VLAN ID, ingress port).
[[nodiscard]] std::uint64_t metadata_token(const U128& value,
                                           std::uint64_t label) {
  (void)value;
  return label + 1;  // 0 = "no table-0 match context"
}

}  // namespace

AppSpec build_app(const FilterSet& set, TableLayout layout) {
  if (set.fields.size() != 2) {
    throw std::invalid_argument("build_app expects a two-field filter set");
  }
  AppSpec spec;
  spec.name = set.name;

  if (layout == TableLayout::kSingleTable) {
    FlowTable table;
    table.replace(set.entries);
    spec.reference.add_table(std::move(table));
    return spec;
  }

  const FieldId first = set.fields[0];   // EM field -> table 0
  const FieldId second = set.fields[1];  // address field -> table 1

  // Table 0: one entry per unique first-field value; Goto-Table 1 and
  // Write-Metadata with the value's label.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> labels;
  std::vector<FlowEntry> table0;
  std::vector<FlowEntry> table1;
  for (const auto& entry : set.entries) {
    const auto& fm = entry.match.get(first);
    if (fm.kind != MatchKind::kExact) {
      throw std::invalid_argument(
          "per-field layout requires exact matches on the table-0 field");
    }
    const auto key = std::make_pair(fm.value.hi, fm.value.lo);
    auto it = labels.find(key);
    if (it == labels.end()) {
      it = labels.emplace(key, labels.size()).first;
      FlowEntry t0;
      t0.id = static_cast<FlowEntryId>(10000 + it->second);
      t0.priority = 1;
      t0.match.set(first, fm);
      t0.instructions.goto_table = 1;
      t0.instructions.write_metadata =
          MetadataWrite{metadata_token(fm.value, it->second), ~std::uint64_t{0}};
      table0.push_back(std::move(t0));
    }
    FlowEntry t1;
    t1.id = entry.id;
    t1.priority = entry.priority;
    t1.match.set(FieldId::kMetadata,
                 FieldMatch::exact(metadata_token(fm.value, it->second)));
    t1.match.set(second, entry.match.get(second));
    t1.instructions = entry.instructions;
    table1.push_back(std::move(t1));
  }

  spec.reference.add_table(FlowTable{std::move(table0)});
  spec.reference.add_table(FlowTable{std::move(table1)});
  return spec;
}

MultiTableLookup compile_app(const AppSpec& spec, FieldSearchConfig config) {
  return MultiTableLookup::compile(spec.reference, config);
}

mem::MemoryReport SwitchPrototype::memory_report() const {
  mem::MemoryReport report;
  report.merge(mac_lookup.memory_report("mac"), "");
  report.merge(routing_lookup.memory_report("routing"), "");
  return report;
}

SwitchPrototype build_prototype(const FilterSet& mac_set,
                                const FilterSet& routing_set,
                                FieldSearchConfig config) {
  SwitchPrototype prototype{
      build_app(mac_set, TableLayout::kPerFieldTables),
      build_app(routing_set, TableLayout::kPerFieldTables),
      {},
      {},
  };
  prototype.mac_lookup = compile_app(prototype.mac, config);
  prototype.routing_lookup = compile_app(prototype.routing, config);
  return prototype;
}

}  // namespace ofmtl
