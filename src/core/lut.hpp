// Hash-based exact-match lookup table (LUT) — the paper's structure for EM
// fields (VLAN ID, ingress port, EtherType, ...). Open-addressing over a
// power-of-two slot array with group-linear tag probing (one vector byte
// compare covers 16 slots, see core/flat_hash.hpp), mirroring a hardware
// hash LUT in a dedicated memory block; the slot array size drives the
// memory cost.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/label.hpp"
#include "mem/memory_model.hpp"
#include "net/types.hpp"

namespace ofmtl {

class ExactMatchLut {
 public:
  /// `key_bits` is the field width (drives stored-tag size).
  explicit ExactMatchLut(unsigned key_bits);

  /// Insert a unique value, returning its label (stable across re-inserts,
  /// including re-insert after removal).
  Label insert(const U128& value);

  /// Remove a value (tombstone deletion); returns whether it was present.
  /// The label stays reserved for a possible re-insert.
  bool remove(const U128& value);

  /// Label of `value`, or nullopt (field miss).
  [[nodiscard]] std::optional<Label> lookup(const U128& value) const;

  /// Batched lookup: out[i] = label of values[i], kNoLabel on miss. Probes
  /// run interleaved over lane windows with software prefetch of each
  /// lane's first slot, hiding the dependent-load latency of scattered
  /// hash-table reads. Results match scalar lookup exactly (kNoLabel <->
  /// nullopt).
  void lookup_batch(std::span<const U128> values, std::span<Label> out) const;

  [[nodiscard]] std::size_t unique_values() const { return live_count_; }
  [[nodiscard]] const ValueLabelEncoder& encoder() const { return encoder_; }
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }
  [[nodiscard]] unsigned key_bits() const { return key_bits_; }

  /// Per-slot layout: valid flag + key tag + label.
  [[nodiscard]] unsigned slot_bits() const {
    return 1 + key_bits_ + encoder_.label_bits();
  }
  [[nodiscard]] std::uint64_t storage_bits() const {
    return slots_.size() * static_cast<std::uint64_t>(slot_bits());
  }
  [[nodiscard]] mem::MemoryReport memory_report(const std::string& name) const;

  /// Update-word count for the update-cost model: one word per occupied slot.
  [[nodiscard]] std::uint64_t update_words() const { return live_count_; }

 private:
  void rehash(std::size_t new_slot_count);
  /// Slot of a live `value`, or SIZE_MAX on miss (tag-group probe).
  [[nodiscard]] std::size_t find_slot(const U128& value) const;

  unsigned key_bits_;
  ValueLabelEncoder encoder_;
  std::vector<U128> slots_;  // slot -> value (meaningful iff tag is live)
  std::vector<Label> slot_labels_;
  // One byte per slot: 7-bit hash tag when live, kTagEmpty/kTagDeleted
  // sentinels otherwise. Probes vector-compare 16 tags at a time.
  std::vector<std::uint8_t> tags_;
  std::size_t live_count_ = 0;
  std::size_t tombstone_count_ = 0;
};

}  // namespace ofmtl
