#include "core/index_table.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/flat_hash.hpp"

namespace ofmtl {

namespace {

constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};
// Tombstoned slot: the upper half is kNoLabel, which no real pair key or
// final label ever carries, and it differs from kEmptyKey — probes walk past
// it, inserts may reuse it.
constexpr std::uint64_t kTombstoneKey = std::uint64_t{0xFFFFFFFF} << 32;

using detail::flat_capacity;
using detail::flat_needs_rebuild;
using detail::mix64;

}  // namespace

IndexCalculator::IndexCalculator(std::size_t algorithm_count)
    : stage_count_(algorithm_count == 0 ? 0 : algorithm_count - 1) {
  if (algorithm_count == 0) {
    throw std::invalid_argument("index calculator needs >= 1 algorithm");
  }
  stages_.resize(stage_count_);
  next_intermediate_.assign(stage_count_, 0);
  stage_used_.assign(stage_count_, 0);
}

void IndexCalculator::add_rule(const std::vector<Label>& signature,
                               std::uint32_t rule_index) {
  if (signature.size() != stage_count_ + 1) {
    throw std::invalid_argument("signature arity mismatch");
  }
  Label accumulated = signature[0];
  for (std::size_t stage = 0; stage < stage_count_; ++stage) {
    const PairKey key = pair_key(accumulated, signature[stage + 1]);
    const auto [it, inserted] = stages_[stage].try_emplace(
        key, PairEntry{next_intermediate_[stage], 0});
    if (inserted) {
      ++next_intermediate_[stage];
      if (sealed_) flat_stage_insert(stage, key, it->second.label);
    }
    ++it->second.refs;
    accumulated = it->second.label;
  }
  rules_[accumulated].push_back(rule_index);
  if (sealed_) final_add(accumulated, rule_index);
}

void IndexCalculator::remove_rule(const std::vector<Label>& signature,
                                  std::uint32_t rule_index) {
  if (signature.size() != stage_count_ + 1) {
    throw std::invalid_argument("signature arity mismatch");
  }
  // First walk: collect the pair entries along the signature's path.
  std::vector<std::unordered_map<PairKey, PairEntry>::iterator> path;
  Label accumulated = signature[0];
  for (std::size_t stage = 0; stage < stage_count_; ++stage) {
    const auto it =
        stages_[stage].find(pair_key(accumulated, signature[stage + 1]));
    if (it == stages_[stage].end()) {
      throw std::invalid_argument("remove_rule: signature not registered");
    }
    path.push_back(it);
    accumulated = it->second.label;
  }
  const auto rules_it = rules_.find(accumulated);
  if (rules_it == rules_.end()) {
    throw std::invalid_argument("remove_rule: signature not registered");
  }
  auto& indices = rules_it->second;
  const auto pos = std::find(indices.begin(), indices.end(), rule_index);
  if (pos == indices.end()) {
    throw std::invalid_argument("remove_rule: rule not registered");
  }
  indices.erase(pos);
  if (indices.empty()) rules_.erase(rules_it);
  if (sealed_) final_remove(accumulated, rule_index);
  // Second walk: release references (reverse order so upstream pairs are
  // still intact while downstream ones are dropped).
  for (std::size_t stage = stage_count_; stage-- > 0;) {
    if (--path[stage]->second.refs == 0) {
      const PairKey key = path[stage]->first;
      stages_[stage].erase(path[stage]);
      if (sealed_) flat_stage_erase(stage, key);
    }
  }
}

void IndexCalculator::seal() {
  if (sealed_) return;
  flat_stages_.assign(stage_count_, FlatStage{});
  for (std::size_t stage = 0; stage < stage_count_; ++stage) {
    rebuild_stage(stage);
  }
  rebuild_final();
  sealed_ = true;
}

void IndexCalculator::rebuild_stage(std::size_t stage) {
  FlatStage& flat = flat_stages_[stage];
  const std::size_t capacity = flat_capacity(stages_[stage].size());
  flat.keys.assign(capacity, kEmptyKey);
  flat.labels.assign(capacity, kNoLabel);
  flat.mask = capacity - 1;
  stage_used_[stage] = stages_[stage].size();
  for (const auto& [key, entry] : stages_[stage]) {
    std::size_t index = mix64(key) & flat.mask;
    while (flat.keys[index] != kEmptyKey) index = (index + 1) & flat.mask;
    flat.keys[index] = key;
    flat.labels[index] = entry.label;
  }
}

void IndexCalculator::rebuild_final() {
  const std::size_t capacity = flat_capacity(rules_.size());
  final_keys_.assign(capacity, kEmptyKey);
  final_offsets_.assign(capacity, 0);
  final_counts_.assign(capacity, 0);
  final_caps_.assign(capacity, 0);
  final_mask_ = capacity - 1;
  final_rules_.clear();
  final_used_ = rules_.size();
  final_garbage_ = 0;
  for (const auto& [label, indices] : rules_) {
    std::size_t index = mix64(label) & final_mask_;
    while (final_keys_[index] != kEmptyKey) index = (index + 1) & final_mask_;
    final_keys_[index] = label;
    final_offsets_[index] = static_cast<std::uint32_t>(final_rules_.size());
    final_counts_[index] = static_cast<std::uint32_t>(indices.size());
    final_caps_[index] = static_cast<std::uint32_t>(indices.size());
    final_rules_.insert(final_rules_.end(), indices.begin(), indices.end());
  }
}

void IndexCalculator::flat_stage_insert(std::size_t stage, PairKey key,
                                        Label label) {
  FlatStage& flat = flat_stages_[stage];
  // The rebuild reads stages_[stage], which already contains the new pair.
  if (flat_needs_rebuild(stage_used_[stage], flat.keys.size())) {
    rebuild_stage(stage);
    return;
  }
  std::size_t index = mix64(key) & flat.mask;
  while (flat.keys[index] != kEmptyKey && flat.keys[index] != kTombstoneKey) {
    index = (index + 1) & flat.mask;
  }
  if (flat.keys[index] == kEmptyKey) ++stage_used_[stage];
  flat.keys[index] = key;
  flat.labels[index] = label;
}

void IndexCalculator::flat_stage_erase(std::size_t stage, PairKey key) {
  FlatStage& flat = flat_stages_[stage];
  std::size_t index = mix64(key) & flat.mask;
  while (true) {
    if (flat.keys[index] == key) break;
    if (flat.keys[index] == kEmptyKey) return;  // unreachable: key was mapped
    index = (index + 1) & flat.mask;
  }
  // Tombstone, not empty: the slot may sit mid-chain for other keys.
  flat.keys[index] = kTombstoneKey;
  flat.labels[index] = kNoLabel;
}

std::uint32_t IndexCalculator::append_final_region(std::uint32_t capacity) {
  const auto offset = static_cast<std::uint32_t>(final_rules_.size());
  final_rules_.resize(final_rules_.size() + capacity, 0);
  return offset;
}

void IndexCalculator::final_add(Label final_label, std::uint32_t rule_index) {
  // Rebuild triggers up front (the rules_ map already holds the new rule):
  // key-table load past the shared 50% rule, or more than half of
  // final_rules_ abandoned.
  if (flat_needs_rebuild(final_used_, final_keys_.size()) ||
      (final_rules_.size() >= 64 && 2 * final_garbage_ > final_rules_.size())) {
    rebuild_final();
    return;
  }
  std::size_t slot = SIZE_MAX;
  std::size_t reuse = SIZE_MAX;  // first tombstone on the probe path
  std::size_t index = mix64(final_label) & final_mask_;
  while (true) {
    const std::uint64_t stored = final_keys_[index];
    if (stored == final_label) {
      slot = index;
      break;
    }
    if (stored == kTombstoneKey) {
      if (reuse == SIZE_MAX) reuse = index;
    } else if (stored == kEmptyKey) {
      break;
    }
    index = (index + 1) & final_mask_;
  }
  if (slot == SIZE_MAX) {
    // New final label: reuse the earliest tombstone, else the empty slot.
    const std::size_t target = reuse != SIZE_MAX ? reuse : index;
    if (final_keys_[target] == kEmptyKey) ++final_used_;
    constexpr std::uint32_t kInitialCap = 2;
    final_keys_[target] = final_label;
    final_offsets_[target] = append_final_region(kInitialCap);
    final_caps_[target] = kInitialCap;
    final_counts_[target] = 1;
    final_rules_[final_offsets_[target]] = rule_index;
    return;
  }
  const std::uint32_t count = final_counts_[slot];
  if (count == final_caps_[slot]) {
    // Region full: relocate to a doubled region at the tail; the old region
    // becomes garbage until the next compaction.
    const std::uint32_t new_cap = final_caps_[slot] * 2;
    const std::uint32_t new_offset = append_final_region(new_cap);
    std::copy(final_rules_.begin() + final_offsets_[slot],
              final_rules_.begin() + final_offsets_[slot] + count,
              final_rules_.begin() + new_offset);
    final_garbage_ += final_caps_[slot];
    final_offsets_[slot] = new_offset;
    final_caps_[slot] = new_cap;
  }
  final_rules_[final_offsets_[slot] + count] = rule_index;
  final_counts_[slot] = count + 1;
}

void IndexCalculator::final_remove(Label final_label, std::uint32_t rule_index) {
  std::size_t index = mix64(final_label) & final_mask_;
  while (true) {
    if (final_keys_[index] == final_label) break;
    if (final_keys_[index] == kEmptyKey) return;  // unreachable: was mapped
    index = (index + 1) & final_mask_;
  }
  const std::uint32_t offset = final_offsets_[index];
  const std::uint32_t count = final_counts_[index];
  for (std::uint32_t i = 0; i < count; ++i) {
    if (final_rules_[offset + i] != rule_index) continue;
    final_rules_[offset + i] = final_rules_[offset + count - 1];
    final_counts_[index] = count - 1;
    if (count == 1) {
      // Last rule of this label: tombstone the key slot, abandon the region.
      final_keys_[index] = kTombstoneKey;
      final_garbage_ += final_caps_[index];
      final_caps_[index] = 0;
    }
    return;
  }
}

Label IndexCalculator::probe_stage(const FlatStage& stage, PairKey key) const {
  std::size_t index = mix64(key) & stage.mask;
  while (true) {
    const PairKey stored = stage.keys[index];
    if (stored == key) return stage.labels[index];
    if (stored == kEmptyKey) return kNoLabel;
    index = (index + 1) & stage.mask;
  }
}

void IndexCalculator::combine(std::span<const LabelList> candidates,
                              std::vector<Label>& current,
                              std::vector<Label>& next,
                              std::vector<std::uint32_t>& out) const {
  if (candidates.size() != stage_count_ + 1) {
    throw std::invalid_argument("candidate arity mismatch");
  }
  // Progressive combination; the working set stays bounded by the number of
  // distinct rule signatures compatible with the packet so far.
  current.assign(candidates[0].begin(), candidates[0].end());
  if (sealed_) {
    for (std::size_t stage = 0; stage < stage_count_; ++stage) {
      next.clear();
      const FlatStage& flat = flat_stages_[stage];
      for (const Label accumulated : current) {
        for (const Label candidate : candidates[stage + 1]) {
          const Label combined =
              probe_stage(flat, pair_key(accumulated, candidate));
          if (combined != kNoLabel) next.push_back(combined);
        }
      }
      current.swap(next);
      if (current.empty()) return;
    }
    for (const Label final_label : current) {
      std::size_t index = mix64(final_label) & final_mask_;
      while (true) {
        const std::uint64_t stored = final_keys_[index];
        if (stored == final_label) {
          const std::uint32_t offset = final_offsets_[index];
          const std::uint32_t count = final_counts_[index];
          out.insert(out.end(), final_rules_.begin() + offset,
                     final_rules_.begin() + offset + count);
          break;
        }
        if (stored == kEmptyKey) break;
        index = (index + 1) & final_mask_;
      }
    }
    return;
  }
  for (std::size_t stage = 0; stage < stage_count_; ++stage) {
    next.clear();
    for (const Label accumulated : current) {
      for (const Label candidate : candidates[stage + 1]) {
        const auto it = stages_[stage].find(pair_key(accumulated, candidate));
        if (it != stages_[stage].end()) next.push_back(it->second.label);
      }
    }
    current.swap(next);
    if (current.empty()) return;
  }
  for (const Label final_label : current) {
    const auto it = rules_.find(final_label);
    if (it == rules_.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
}

void IndexCalculator::query(const std::vector<LabelList>& candidates,
                            std::vector<std::uint32_t>& out) const {
  std::vector<Label> current;
  std::vector<Label> next;
  combine({candidates.data(), candidates.size()}, current, next, out);
}

void IndexCalculator::query(std::span<const LabelList> candidates,
                            SearchContext& ctx,
                            std::vector<std::uint32_t>& out) const {
  combine(candidates, ctx.combine_current(), ctx.combine_next(), out);
}

void IndexCalculator::query_batch(SearchContext& ctx) const {
  const std::size_t lanes = ctx.lanes();
  if (ctx.algorithms() != stage_count_ + 1) {
    throw std::invalid_argument("candidate arity mismatch");
  }
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    ctx.lane_matches(lane).clear();
  }
  if (!sealed_) {
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      combine(ctx.packet_candidates(lane), ctx.lane_current(lane),
              ctx.lane_next(lane), ctx.lane_matches(lane));
    }
    return;
  }
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const LabelList& first = ctx.packet_candidates(lane)[0];
    ctx.lane_current(lane).assign(first.begin(), first.end());
  }
  // Stage-synchronous progressive combination over lane windows (the same
  // 8-lane windowing idiom as the trie descents — wider windows would
  // outrun the hardware's outstanding-fill budget): within a window, pass 1
  // hashes every lane's (accumulated, candidate) pairs and prefetches their
  // probe slots; pass 2 resolves them in the same order. The per-lane pair
  // traversal order matches the scalar combine exactly, so each lane's
  // match list is bitwise-identical to a scalar query.
  constexpr std::size_t kLanes = 8;
  auto& keys = ctx.batch_keys();
  for (std::size_t stage = 0; stage < stage_count_; ++stage) {
    const FlatStage& flat = flat_stages_[stage];
    for (std::size_t base = 0; base < lanes; base += kLanes) {
      const std::size_t window = std::min(kLanes, lanes - base);
      keys.clear();
      for (std::size_t lane = base; lane < base + window; ++lane) {
        const LabelList& candidates = ctx.packet_candidates(lane)[stage + 1];
        for (const Label accumulated : ctx.lane_current(lane)) {
          for (const Label candidate : candidates) {
            const PairKey key = pair_key(accumulated, candidate);
            keys.push_back(key);
            __builtin_prefetch(flat.keys.data() + (mix64(key) & flat.mask));
          }
        }
      }
      std::size_t k = 0;
      for (std::size_t lane = base; lane < base + window; ++lane) {
        auto& current = ctx.lane_current(lane);
        auto& next = ctx.lane_next(lane);
        next.clear();
        const std::size_t pairs =
            current.size() * ctx.packet_candidates(lane)[stage + 1].size();
        for (std::size_t p = 0; p < pairs; ++p) {
          const Label combined = probe_stage(flat, keys[k++]);
          if (combined != kNoLabel) next.push_back(combined);
        }
        current.swap(next);
      }
    }
  }
  // Final stage, same windowing: prefetch the window's final-label slots,
  // then gather the CSR rule lists.
  for (std::size_t base = 0; base < lanes; base += kLanes) {
    const std::size_t window = std::min(kLanes, lanes - base);
    for (std::size_t lane = base; lane < base + window; ++lane) {
      for (const Label final_label : ctx.lane_current(lane)) {
        __builtin_prefetch(final_keys_.data() +
                           (mix64(final_label) & final_mask_));
      }
    }
    for (std::size_t lane = base; lane < base + window; ++lane) {
      auto& out = ctx.lane_matches(lane);
      for (const Label final_label : ctx.lane_current(lane)) {
        std::size_t index = mix64(final_label) & final_mask_;
        while (true) {
          const std::uint64_t stored = final_keys_[index];
          if (stored == final_label) {
            const std::uint32_t offset = final_offsets_[index];
            const std::uint32_t count = final_counts_[index];
            out.insert(out.end(), final_rules_.begin() + offset,
                       final_rules_.begin() + offset + count);
            break;
          }
          if (stored == kEmptyKey) break;
          index = (index + 1) & final_mask_;
        }
      }
    }
  }
}

mem::MemoryReport IndexCalculator::memory_report(const std::string& prefix) const {
  mem::MemoryReport report;
  for (std::size_t stage = 0; stage < stage_count_; ++stage) {
    // One word per valid pair: two input labels + the combined label.
    const std::size_t pairs = stages_[stage].size();
    const unsigned in_bits =
        2 * (next_intermediate_[stage] <= 1
                 ? 1
                 : bits_for_max_value(next_intermediate_[stage]));
    const unsigned out_bits =
        next_intermediate_[stage] <= 1 ? 1 : ceil_log2(next_intermediate_[stage]);
    report.add(prefix + ".stage" + std::to_string(stage), pairs,
               in_bits + out_bits);
  }
  report.add(prefix + ".final", rules_.size(), 32);
  return report;
}

std::uint64_t IndexCalculator::update_words() const {
  std::uint64_t words = 0;
  for (const auto& stage : stages_) words += stage.size();
  for (const auto& [label, indices] : rules_) words += indices.size();
  return words;
}

}  // namespace ofmtl
