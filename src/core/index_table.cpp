#include "core/index_table.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/flat_hash.hpp"

namespace ofmtl {

namespace {

using detail::flat_needs_rebuild;
using detail::flat_tag_capacity;
using detail::kTagDeleted;
using detail::kTagEmpty;
using detail::mix64;
using detail::reserve_for_append;
using detail::tag_find;
using detail::tag_group_of;
using detail::tag_insert_slot;
using detail::tag_of;

}  // namespace

IndexCalculator::IndexCalculator(std::size_t algorithm_count)
    : stage_count_(algorithm_count == 0 ? 0 : algorithm_count - 1) {
  if (algorithm_count == 0) {
    throw std::invalid_argument("index calculator needs >= 1 algorithm");
  }
  stages_.resize(stage_count_);
  next_intermediate_.assign(stage_count_, 0);
  stage_used_.assign(stage_count_, 0);
}

void IndexCalculator::add_rule(const std::vector<Label>& signature,
                               std::uint32_t rule_index) {
  if (signature.size() != stage_count_ + 1) {
    throw std::invalid_argument("signature arity mismatch");
  }
  Label accumulated = signature[0];
  for (std::size_t stage = 0; stage < stage_count_; ++stage) {
    const PairKey key = pair_key(accumulated, signature[stage + 1]);
    const auto [it, inserted] = stages_[stage].try_emplace(
        key, PairEntry{next_intermediate_[stage], 0});
    if (inserted) {
      ++next_intermediate_[stage];
      if (sealed_) flat_stage_insert(stage, key, it->second.label);
    }
    ++it->second.refs;
    accumulated = it->second.label;
  }
  rules_[accumulated].push_back(rule_index);
  if (sealed_) final_add(accumulated, rule_index);
}

void IndexCalculator::remove_rule(const std::vector<Label>& signature,
                                  std::uint32_t rule_index) {
  if (signature.size() != stage_count_ + 1) {
    throw std::invalid_argument("signature arity mismatch");
  }
  // First walk: collect the pair entries along the signature's path.
  std::vector<std::unordered_map<PairKey, PairEntry>::iterator> path;
  Label accumulated = signature[0];
  for (std::size_t stage = 0; stage < stage_count_; ++stage) {
    const auto it =
        stages_[stage].find(pair_key(accumulated, signature[stage + 1]));
    if (it == stages_[stage].end()) {
      throw std::invalid_argument("remove_rule: signature not registered");
    }
    path.push_back(it);
    accumulated = it->second.label;
  }
  const auto rules_it = rules_.find(accumulated);
  if (rules_it == rules_.end()) {
    throw std::invalid_argument("remove_rule: signature not registered");
  }
  auto& indices = rules_it->second;
  const auto pos = std::find(indices.begin(), indices.end(), rule_index);
  if (pos == indices.end()) {
    throw std::invalid_argument("remove_rule: rule not registered");
  }
  indices.erase(pos);
  if (indices.empty()) rules_.erase(rules_it);
  if (sealed_) final_remove(accumulated, rule_index);
  // Second walk: release references (reverse order so upstream pairs are
  // still intact while downstream ones are dropped).
  for (std::size_t stage = stage_count_; stage-- > 0;) {
    if (--path[stage]->second.refs == 0) {
      const PairKey key = path[stage]->first;
      stages_[stage].erase(path[stage]);
      if (sealed_) flat_stage_erase(stage, key);
    }
  }
}

void IndexCalculator::seal() {
  if (sealed_) return;
  flat_stages_.assign(stage_count_, FlatStage{});
  for (std::size_t stage = 0; stage < stage_count_; ++stage) {
    rebuild_stage(stage);
  }
  rebuild_final();
  sealed_ = true;
}

void IndexCalculator::rebuild_stage(std::size_t stage) {
  FlatStage& flat = flat_stages_[stage];
  const std::size_t capacity = flat_tag_capacity(stages_[stage].size());
  flat.keys.assign(capacity, 0);
  flat.labels.assign(capacity, kNoLabel);
  flat.tags.assign(capacity, kTagEmpty);
  flat.mask = capacity - 1;
  stage_used_[stage] = stages_[stage].size();
  for (const auto& [key, entry] : stages_[stage]) {
    const std::uint64_t hash = mix64(key);
    const std::size_t index = tag_insert_slot(flat.tags.data(), flat.mask, hash);
    flat.tags[index] = tag_of(hash);
    flat.keys[index] = key;
    flat.labels[index] = entry.label;
  }
}

void IndexCalculator::rebuild_final() {
  const std::size_t capacity = flat_tag_capacity(rules_.size());
  final_keys_.assign(capacity, 0);
  final_tags_.assign(capacity, kTagEmpty);
  final_offsets_.assign(capacity, 0);
  final_counts_.assign(capacity, 0);
  final_caps_.assign(capacity, 0);
  final_mask_ = capacity - 1;
  final_rules_.clear();
  final_used_ = rules_.size();
  final_garbage_ = 0;
  for (const auto& [label, indices] : rules_) {
    const std::uint64_t hash = mix64(label);
    const std::size_t index =
        tag_insert_slot(final_tags_.data(), final_mask_, hash);
    final_tags_[index] = tag_of(hash);
    final_keys_[index] = label;
    final_offsets_[index] = static_cast<std::uint32_t>(final_rules_.size());
    final_counts_[index] = static_cast<std::uint32_t>(indices.size());
    final_caps_[index] = static_cast<std::uint32_t>(indices.size());
    final_rules_.insert(final_rules_.end(), indices.begin(), indices.end());
  }
}

void IndexCalculator::flat_stage_insert(std::size_t stage, PairKey key,
                                        Label label) {
  FlatStage& flat = flat_stages_[stage];
  // The rebuild reads stages_[stage], which already contains the new pair.
  if (flat_needs_rebuild(stage_used_[stage], flat.keys.size())) {
    rebuild_stage(stage);
    return;
  }
  const std::uint64_t hash = mix64(key);
  const std::size_t index = tag_insert_slot(flat.tags.data(), flat.mask, hash);
  if (flat.tags[index] == kTagEmpty) ++stage_used_[stage];
  flat.tags[index] = tag_of(hash);
  flat.keys[index] = key;
  flat.labels[index] = label;
}

void IndexCalculator::flat_stage_erase(std::size_t stage, PairKey key) {
  FlatStage& flat = flat_stages_[stage];
  const std::size_t index =
      tag_find(flat.tags.data(), flat.mask, mix64(key),
               [&](std::size_t slot) { return flat.keys[slot] == key; });
  if (index == SIZE_MAX) return;  // unreachable: key was mapped
  // Tombstone, not empty: the slot may sit mid-chain for other keys.
  flat.tags[index] = kTagDeleted;
  flat.labels[index] = kNoLabel;
}

std::uint32_t IndexCalculator::append_final_region(std::uint32_t capacity) {
  const auto offset = static_cast<std::uint32_t>(final_rules_.size());
  final_rules_.resize(final_rules_.size() + capacity, 0);
  return offset;
}

void IndexCalculator::final_add(Label final_label, std::uint32_t rule_index) {
  // Rebuild triggers up front (the rules_ map already holds the new rule):
  // key-table load past the shared 50% rule, or more than half of
  // final_rules_ abandoned.
  if (flat_needs_rebuild(final_used_, final_keys_.size()) ||
      (final_rules_.size() >= 64 && 2 * final_garbage_ > final_rules_.size())) {
    rebuild_final();
    return;
  }
  const std::uint64_t hash = mix64(final_label);
  const std::size_t slot =
      tag_find(final_tags_.data(), final_mask_, hash,
               [&](std::size_t s) { return final_keys_[s] == final_label; });
  if (slot == SIZE_MAX) {
    // New final label: reuse the first empty-or-tombstoned slot on the
    // probe path.
    const std::size_t target =
        tag_insert_slot(final_tags_.data(), final_mask_, hash);
    if (final_tags_[target] == kTagEmpty) ++final_used_;
    constexpr std::uint32_t kInitialCap = 2;
    final_tags_[target] = tag_of(hash);
    final_keys_[target] = final_label;
    final_offsets_[target] = append_final_region(kInitialCap);
    final_caps_[target] = kInitialCap;
    final_counts_[target] = 1;
    final_rules_[final_offsets_[target]] = rule_index;
    return;
  }
  const std::uint32_t count = final_counts_[slot];
  if (count == final_caps_[slot]) {
    // Region full: relocate to a doubled region at the tail; the old region
    // becomes garbage until the next compaction.
    const std::uint32_t new_cap = final_caps_[slot] * 2;
    const std::uint32_t new_offset = append_final_region(new_cap);
    std::copy(final_rules_.begin() + final_offsets_[slot],
              final_rules_.begin() + final_offsets_[slot] + count,
              final_rules_.begin() + new_offset);
    final_garbage_ += final_caps_[slot];
    final_offsets_[slot] = new_offset;
    final_caps_[slot] = new_cap;
  }
  final_rules_[final_offsets_[slot] + count] = rule_index;
  final_counts_[slot] = count + 1;
}

void IndexCalculator::final_remove(Label final_label, std::uint32_t rule_index) {
  const std::size_t index =
      tag_find(final_tags_.data(), final_mask_, mix64(final_label),
               [&](std::size_t s) { return final_keys_[s] == final_label; });
  if (index == SIZE_MAX) return;  // unreachable: was mapped
  const std::uint32_t offset = final_offsets_[index];
  const std::uint32_t count = final_counts_[index];
  for (std::uint32_t i = 0; i < count; ++i) {
    if (final_rules_[offset + i] != rule_index) continue;
    final_rules_[offset + i] = final_rules_[offset + count - 1];
    final_counts_[index] = count - 1;
    if (count == 1) {
      // Last rule of this label: tombstone the key slot, abandon the region.
      final_tags_[index] = kTagDeleted;
      final_garbage_ += final_caps_[index];
      final_caps_[index] = 0;
    }
    return;
  }
}

Label IndexCalculator::probe_stage(const FlatStage& stage, PairKey key) const {
  const std::size_t index =
      tag_find(stage.tags.data(), stage.mask, mix64(key),
               [&](std::size_t slot) { return stage.keys[slot] == key; });
  return index == SIZE_MAX ? kNoLabel : stage.labels[index];
}

void IndexCalculator::combine(std::span<const LabelList> candidates,
                              std::vector<Label>& current,
                              std::vector<Label>& next,
                              std::vector<std::uint32_t>& out) const {
  if (candidates.size() != stage_count_ + 1) {
    throw std::invalid_argument("candidate arity mismatch");
  }
  // Progressive combination; the working set stays bounded by the number of
  // distinct rule signatures compatible with the packet so far.
  current.assign(candidates[0].begin(), candidates[0].end());
  if (sealed_) {
    for (std::size_t stage = 0; stage < stage_count_; ++stage) {
      next.clear();
      const FlatStage& flat = flat_stages_[stage];
      for (const Label accumulated : current) {
        for (const Label candidate : candidates[stage + 1]) {
          const Label combined =
              probe_stage(flat, pair_key(accumulated, candidate));
          if (combined != kNoLabel) next.push_back(combined);
        }
      }
      current.swap(next);
      if (current.empty()) return;
    }
    for (const Label final_label : current) {
      const std::size_t index = tag_find(
          final_tags_.data(), final_mask_, mix64(final_label),
          [&](std::size_t s) { return final_keys_[s] == final_label; });
      if (index == SIZE_MAX) continue;
      const std::uint32_t offset = final_offsets_[index];
      const std::uint32_t count = final_counts_[index];
      reserve_for_append(out, count);
      out.insert(out.end(), final_rules_.begin() + offset,
                 final_rules_.begin() + offset + count);
    }
    return;
  }
  for (std::size_t stage = 0; stage < stage_count_; ++stage) {
    next.clear();
    for (const Label accumulated : current) {
      for (const Label candidate : candidates[stage + 1]) {
        const auto it = stages_[stage].find(pair_key(accumulated, candidate));
        if (it != stages_[stage].end()) next.push_back(it->second.label);
      }
    }
    current.swap(next);
    if (current.empty()) return;
  }
  for (const Label final_label : current) {
    const auto it = rules_.find(final_label);
    if (it == rules_.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
}

void IndexCalculator::query(const std::vector<LabelList>& candidates,
                            std::vector<std::uint32_t>& out) const {
  std::vector<Label> current;
  std::vector<Label> next;
  combine({candidates.data(), candidates.size()}, current, next, out);
}

void IndexCalculator::query(std::span<const LabelList> candidates,
                            SearchContext& ctx,
                            std::vector<std::uint32_t>& out) const {
  combine(candidates, ctx.combine_current(), ctx.combine_next(), out);
}

void IndexCalculator::query_batch(SearchContext& ctx) const {
  const std::size_t lanes = ctx.lanes();
  if (ctx.algorithms() != stage_count_ + 1) {
    throw std::invalid_argument("candidate arity mismatch");
  }
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    ctx.lane_matches(lane).clear();
  }
  if (!sealed_) {
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      combine(ctx.packet_candidates(lane), ctx.combine_current(),
              ctx.combine_next(), ctx.lane_matches(lane));
    }
    return;
  }
  // All lanes' working label sets live in one flat arena (lane i's window is
  // [off[i], off[i+1])); two generations swap per stage. Compared to one
  // vector per lane this keeps the stage loop's loads sequential and makes
  // the per-stage clear O(1).
  auto& cur = ctx.pool_current();
  auto& cur_off = ctx.pool_offsets_current();
  auto& nxt = ctx.pool_next();
  auto& nxt_off = ctx.pool_offsets_next();
  cur.clear();
  cur_off.clear();
  cur_off.push_back(0);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const LabelList& first = ctx.packet_candidates(lane)[0];
    reserve_for_append(cur, first.size());
    cur.insert(cur.end(), first.begin(), first.end());
    cur_off.push_back(static_cast<std::uint32_t>(cur.size()));
  }
  // Stage-synchronous progressive combination over lane windows (the same
  // 8-lane windowing idiom as the trie descents — wider windows would
  // outrun the hardware's outstanding-fill budget): within a window, pass 1
  // hashes every lane's (accumulated, candidate) pairs once and prefetches
  // their probe groups; pass 2 resolves them in the same order with the
  // stored hashes. The per-lane pair traversal order matches the scalar
  // combine exactly, so each lane's match list is bitwise-identical to a
  // scalar query.
  constexpr std::size_t kLanes = 8;
  // Stage tables at or below this capacity are cache-resident: probing them
  // directly beats staging keys/hashes and issuing prefetches that can't
  // miss. (13 bytes/slot, so 4096 slots ~= 52 KB.)
  constexpr std::size_t kResidentSlots = 4096;
  auto& keys = ctx.batch_keys();
  auto& hashes = ctx.batch_hashes();
  for (std::size_t stage = 0; stage < stage_count_; ++stage) {
    const FlatStage& flat = flat_stages_[stage];
    nxt.clear();
    nxt_off.clear();
    nxt_off.push_back(0);
    if (flat.tags.size() <= kResidentSlots) {
      // Fused single pass, same per-lane pair order as the windowed path.
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const LabelList& candidates = ctx.packet_candidates(lane)[stage + 1];
        for (std::uint32_t i = cur_off[lane]; i < cur_off[lane + 1]; ++i) {
          const Label accumulated = cur[i];
          for (const Label candidate : candidates) {
            const Label combined =
                probe_stage(flat, pair_key(accumulated, candidate));
            if (combined != kNoLabel) nxt.push_back(combined);
          }
        }
        nxt_off.push_back(static_cast<std::uint32_t>(nxt.size()));
      }
      cur.swap(nxt);
      cur_off.swap(nxt_off);
      continue;
    }
    for (std::size_t base = 0; base < lanes; base += kLanes) {
      const std::size_t window = std::min(kLanes, lanes - base);
      keys.clear();
      hashes.clear();
      for (std::size_t lane = base; lane < base + window; ++lane) {
        const LabelList& candidates = ctx.packet_candidates(lane)[stage + 1];
        for (std::uint32_t i = cur_off[lane]; i < cur_off[lane + 1]; ++i) {
          const Label accumulated = cur[i];
          for (const Label candidate : candidates) {
            const PairKey key = pair_key(accumulated, candidate);
            const std::uint64_t hash = mix64(key);
            keys.push_back(key);
            hashes.push_back(hash);
            const std::size_t group = tag_group_of(hash, flat.mask);
            __builtin_prefetch(flat.tags.data() + group);
            __builtin_prefetch(flat.keys.data() + group);
            __builtin_prefetch(flat.labels.data() + group);
          }
        }
      }
      std::size_t k = 0;
      for (std::size_t lane = base; lane < base + window; ++lane) {
        const std::size_t pairs =
            (cur_off[lane + 1] - cur_off[lane]) *
            ctx.packet_candidates(lane)[stage + 1].size();
        for (std::size_t p = 0; p < pairs; ++p, ++k) {
          const PairKey key = keys[k];
          const std::size_t index =
              tag_find(flat.tags.data(), flat.mask, hashes[k],
                       [&](std::size_t slot) { return flat.keys[slot] == key; });
          if (index != SIZE_MAX) nxt.push_back(flat.labels[index]);
        }
        nxt_off.push_back(static_cast<std::uint32_t>(nxt.size()));
      }
    }
    cur.swap(nxt);
    cur_off.swap(nxt_off);
  }
  // Final stage, same windowing: hash + prefetch the window's final-label
  // slots, then gather the CSR rule lists. Cache-resident final tables skip
  // the staging here too.
  if (final_tags_.size() <= kResidentSlots) {
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      auto& out = ctx.lane_matches(lane);
      for (std::uint32_t i = cur_off[lane]; i < cur_off[lane + 1]; ++i) {
        const Label final_label = cur[i];
        const std::size_t index = tag_find(
            final_tags_.data(), final_mask_, mix64(final_label),
            [&](std::size_t s) { return final_keys_[s] == final_label; });
        if (index == SIZE_MAX) continue;
        const std::uint32_t offset = final_offsets_[index];
        const std::uint32_t count = final_counts_[index];
        reserve_for_append(out, count);
        out.insert(out.end(), final_rules_.begin() + offset,
                   final_rules_.begin() + offset + count);
      }
    }
    return;
  }
  for (std::size_t base = 0; base < lanes; base += kLanes) {
    const std::size_t window = std::min(kLanes, lanes - base);
    hashes.clear();
    for (std::uint32_t i = cur_off[base]; i < cur_off[base + window]; ++i) {
      const std::uint64_t hash = mix64(cur[i]);
      hashes.push_back(hash);
      const std::size_t group = tag_group_of(hash, final_mask_);
      __builtin_prefetch(final_tags_.data() + group);
      __builtin_prefetch(final_keys_.data() + group);
      __builtin_prefetch(final_offsets_.data() + group);
      __builtin_prefetch(final_counts_.data() + group);
    }
    std::size_t k = 0;
    for (std::size_t lane = base; lane < base + window; ++lane) {
      auto& out = ctx.lane_matches(lane);
      for (std::uint32_t i = cur_off[lane]; i < cur_off[lane + 1]; ++i, ++k) {
        const Label final_label = cur[i];
        const std::size_t index = tag_find(
            final_tags_.data(), final_mask_, hashes[k],
            [&](std::size_t s) { return final_keys_[s] == final_label; });
        if (index == SIZE_MAX) continue;
        const std::uint32_t offset = final_offsets_[index];
        const std::uint32_t count = final_counts_[index];
        reserve_for_append(out, count);
        out.insert(out.end(), final_rules_.begin() + offset,
                   final_rules_.begin() + offset + count);
      }
    }
  }
}

mem::MemoryReport IndexCalculator::memory_report(const std::string& prefix) const {
  mem::MemoryReport report;
  for (std::size_t stage = 0; stage < stage_count_; ++stage) {
    // One word per valid pair: two input labels + the combined label.
    const std::size_t pairs = stages_[stage].size();
    const unsigned in_bits =
        2 * (next_intermediate_[stage] <= 1
                 ? 1
                 : bits_for_max_value(next_intermediate_[stage]));
    const unsigned out_bits =
        next_intermediate_[stage] <= 1 ? 1 : ceil_log2(next_intermediate_[stage]);
    report.add(prefix + ".stage" + std::to_string(stage), pairs,
               in_bits + out_bits);
  }
  report.add(prefix + ".final", rules_.size(), 32);
  return report;
}

std::uint64_t IndexCalculator::update_words() const {
  std::uint64_t words = 0;
  for (const auto& stage : stages_) words += stage.size();
  for (const auto& [label, indices] : rules_) words += indices.size();
  return words;
}

}  // namespace ofmtl
