// Trace replay driver: feeds a parsed capture into the parallel runtime —
// the layer that closes the loop from bytes on disk to classified actions.
//
// A capture is one ingress port's view of the wire, so every frame parses
// under one configured in_port (multi-port traces are replayed as one
// driver per per-port capture, exactly how multi-port captures are taken).
// Frames are wire-parsed once up front through the batched allocation-free
// front end (trace/wire_parse.hpp); malformed frames are dropped and
// counted, never submitted. run() then streams the parsed headers into a
// caller-owned ParallelRuntime in fixed-size batches with a bounded number
// of in-flight tickets, optionally looping over the trace and optionally
// paced open-loop at a target packet rate. Results land in the caller's
// span in submission order (lane i of pass p is results[i]; each pass
// rewrites in place, so after run() the span holds the final pass — every
// pass produces identical results unless a concurrent writer publishes).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/runtime.hpp"
#include "trace/pcap.hpp"
#include "trace/wire_parse.hpp"

namespace ofmtl::trace {

/// Tunables of one replay run.
struct ReplayConfig {
  std::size_t queue = 0;      ///< runtime queue to submit on (one producer)
  std::size_t batch = 256;    ///< headers per submitted batch
  std::size_t in_flight = 4;  ///< outstanding batches before submit waits
  std::size_t loops = 1;      ///< passes over the trace
  /// Open-loop pacing: target aggregate packet rate (packets/second).
  /// 0 replays as fast as the runtime accepts batches. Pacing is by
  /// submission deadline, not capture timestamps — the trace's own
  /// inter-arrival gaps are a property of the capture hardware, while a
  /// configured rate sweeps the load axis benchmarks care about.
  double pace_pps = 0.0;
};

/// WorkerStats-style counters of one run() invocation.
struct ReplayStats {
  std::uint64_t frames = 0;            ///< capture records ingested
  std::uint64_t malformed_frames = 0;  ///< dropped by the wire parser
  std::uint64_t packets = 0;           ///< headers submitted over all loops
  std::uint64_t batches = 0;           ///< batches submitted over all loops
  std::uint64_t backpressure_spins = 0;  ///< submit spins on a full ring
  std::uint64_t pace_misses = 0;  ///< paced batches submitted a full batch
                                  ///< interval or more behind schedule
  double elapsed_ns = 0.0;        ///< wall clock of run(), all passes

  [[nodiscard]] double ns_per_packet() const {
    return packets > 0 ? elapsed_ns / static_cast<double>(packets) : 0.0;
  }
  [[nodiscard]] double packets_per_sec() const {
    return elapsed_ns > 0.0
               ? static_cast<double>(packets) * 1e9 / elapsed_ns
               : 0.0;
  }
};

/// Parses a capture up front, then replays it into a runtime any number of
/// times. The reader is only borrowed during construction.
class TraceReplayer {
 public:
  /// Ingest every record of `reader` (from its current position) under
  /// `in_port`. Malformed frames are counted and dropped.
  TraceReplayer(PcapReader& reader, std::uint32_t in_port);

  /// Ingest pre-read records (spans must stay valid for the constructor
  /// call only — headers are materialized immediately).
  TraceReplayer(std::span<const PcapRecord> records, std::uint32_t in_port);

  /// The parsed headers, in capture order with malformed frames removed —
  /// the exact submission order of every run() pass.
  [[nodiscard]] const std::vector<PacketHeader>& headers() const {
    return headers_;
  }
  [[nodiscard]] std::uint64_t frames() const { return frames_; }
  [[nodiscard]] std::uint64_t malformed_frames() const { return malformed_; }

  /// Replay the headers into `rt`: results[i] is rewritten (in submission
  /// order, once per pass) to the classification of headers()[i].
  /// results.size() must cover headers(). Throws std::runtime_error when a
  /// worker's lookup threw (results are then unspecified), mirroring
  /// ParallelRuntime::classify.
  ReplayStats run(runtime::ParallelRuntime& rt,
                  std::span<ExecutionResult> results,
                  const ReplayConfig& config = {});

 private:
  void ingest(std::span<const PcapRecord> records, std::uint32_t in_port);

  std::vector<PacketHeader> headers_;
  std::uint64_t frames_ = 0;
  std::uint64_t malformed_ = 0;
};

}  // namespace ofmtl::trace
