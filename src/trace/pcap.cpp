#include "trace/pcap.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

namespace ofmtl::trace {

namespace {

constexpr std::uint32_t kMagicUsec = 0xA1B2C3D4;
constexpr std::uint32_t kMagicUsecSwapped = 0xD4C3B2A1;
constexpr std::uint32_t kMagicNsec = 0xA1B23C4D;
constexpr std::uint32_t kMagicNsecSwapped = 0x4D3CB2A1;

constexpr std::uint64_t kNanosPerSec = 1'000'000'000ULL;

}  // namespace

// --- writer ------------------------------------------------------------------

PcapWriter::PcapWriter(PcapWriterConfig config) : config_(config) {
  // Global header: magic, version 2.4, thiszone 0, sigfigs 0, snaplen,
  // link type.
  put_u32(config_.nanosecond ? kMagicNsec : kMagicUsec);
  put_u16(2);
  put_u16(4);
  put_u32(0);
  put_u32(0);
  put_u32(config_.snap_len);
  put_u32(config_.link_type);
}

void PcapWriter::put_u16(std::uint16_t value) {
  if (config_.byte_swapped) {
    buffer_.push_back(static_cast<std::uint8_t>(value >> 8));
    buffer_.push_back(static_cast<std::uint8_t>(value));
  } else {
    buffer_.push_back(static_cast<std::uint8_t>(value));
    buffer_.push_back(static_cast<std::uint8_t>(value >> 8));
  }
}

void PcapWriter::put_u32(std::uint32_t value) {
  if (config_.byte_swapped) {
    put_u16(static_cast<std::uint16_t>(value >> 16));
    put_u16(static_cast<std::uint16_t>(value));
  } else {
    put_u16(static_cast<std::uint16_t>(value));
    put_u16(static_cast<std::uint16_t>(value >> 16));
  }
}

void PcapWriter::append(std::uint64_t ts_ns,
                        std::span<const std::uint8_t> frame) {
  const auto incl = static_cast<std::uint32_t>(
      frame.size() > config_.snap_len ? config_.snap_len : frame.size());
  put_u32(static_cast<std::uint32_t>(ts_ns / kNanosPerSec));
  const std::uint64_t frac = ts_ns % kNanosPerSec;
  put_u32(static_cast<std::uint32_t>(config_.nanosecond ? frac : frac / 1000));
  put_u32(incl);
  put_u32(static_cast<std::uint32_t>(frame.size()));
  buffer_.insert(buffer_.end(), frame.begin(), frame.begin() + incl);
  ++records_;
}

void PcapWriter::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("pcap: cannot open " + path);
  out.write(reinterpret_cast<const char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size()));
  if (out.flush(); !out) throw std::runtime_error("pcap: failed writing " + path);
}

// --- reader ------------------------------------------------------------------

PcapReader::PcapReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {
  parse_global_header();
}

PcapReader::PcapReader(std::vector<std::uint8_t> owned)
    : owned_(std::move(owned)), bytes_(owned_) {
  parse_global_header();
}

PcapReader PcapReader::open(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("pcap: cannot open " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  std::vector<std::uint8_t> data(size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("pcap: failed reading " + path);
  return PcapReader(std::move(data));
}

std::uint16_t PcapReader::get_u16(std::size_t offset) const {
  const std::uint16_t b0 = bytes_[offset];
  const std::uint16_t b1 = bytes_[offset + 1];
  return swapped_ ? static_cast<std::uint16_t>((b0 << 8) | b1)
                  : static_cast<std::uint16_t>((b1 << 8) | b0);
}

std::uint32_t PcapReader::get_u32(std::size_t offset) const {
  const std::uint32_t lo = get_u16(swapped_ ? offset + 2 : offset);
  const std::uint32_t hi = get_u16(swapped_ ? offset : offset + 2);
  return (hi << 16) | lo;
}

void PcapReader::parse_global_header() {
  if (bytes_.size() < kGlobalHeaderSize) {
    throw std::invalid_argument("pcap: capture shorter than global header");
  }
  // The magic is self-describing: read it little-endian-first and match
  // against the four known byte orders.
  const std::uint32_t magic_le = std::uint32_t{bytes_[0]} |
                                 (std::uint32_t{bytes_[1]} << 8) |
                                 (std::uint32_t{bytes_[2]} << 16) |
                                 (std::uint32_t{bytes_[3]} << 24);
  switch (magic_le) {
    case kMagicUsec:
      break;
    case kMagicNsec:
      nanosecond_ = true;
      break;
    case kMagicUsecSwapped:
      swapped_ = true;
      break;
    case kMagicNsecSwapped:
      swapped_ = true;
      nanosecond_ = true;
      break;
    default:
      throw std::invalid_argument("pcap: unknown magic");
  }
  snap_len_ = get_u32(16);
  link_type_ = get_u32(20);
}

bool PcapReader::next(PcapRecord& out) {
  if (pos_ >= bytes_.size()) return false;
  if (bytes_.size() - pos_ < kRecordHeaderSize) {
    truncated_ = true;  // header of the final record was cut off
    pos_ = bytes_.size();
    return false;
  }
  const std::uint32_t ts_sec = get_u32(pos_);
  const std::uint32_t ts_frac = get_u32(pos_ + 4);
  const std::uint32_t incl_len = get_u32(pos_ + 8);
  const std::uint32_t orig_len = get_u32(pos_ + 12);
  // A claimed length beyond the snap limit is corruption, not a record;
  // treat it like a truncation and stop rather than walking garbage.
  if (incl_len > snap_len_ ||
      incl_len > bytes_.size() - pos_ - kRecordHeaderSize) {
    truncated_ = true;
    pos_ = bytes_.size();
    return false;
  }
  out.ts_ns = std::uint64_t{ts_sec} * kNanosPerSec +
              std::uint64_t{ts_frac} * (nanosecond_ ? 1 : 1000);
  out.orig_len = orig_len;
  out.bytes = bytes_.subspan(pos_ + kRecordHeaderSize, incl_len);
  pos_ += kRecordHeaderSize + incl_len;
  ++records_;
  return true;
}

std::vector<PcapRecord> PcapReader::read_all() {
  rewind();
  std::vector<PcapRecord> records;
  PcapRecord record;
  while (next(record)) records.push_back(record);
  return records;
}

}  // namespace ofmtl::trace
