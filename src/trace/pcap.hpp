// Dependency-free classic-pcap (libpcap capture file) reader and writer.
//
// Supported: both endian variants of both magic numbers — microsecond
// (0xA1B2C3D4) and nanosecond (0xA1B23C4D) timestamp resolution — with
// LINKTYPE_ETHERNET framing. Endianness is handled by explicit byte
// serialization, so the host byte order never enters: "byte_swapped =
// false" writes the little-endian file layout (the dominant one in the
// wild), true writes big-endian, and the reader auto-detects all four
// magics. A truncated final record — the classic tail of a capture cut off
// mid-write — is skipped gracefully: iteration stops and `truncated()`
// reports it, every complete record before it is served normally.
//
// The reader is a cursor over an in-memory buffer and hands out records as
// spans into it (zero copy, valid while the reader lives) — the shape the
// allocation-free batched wire parser (trace/wire_parse.hpp) consumes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ofmtl::trace {

/// One captured frame: a nanosecond timestamp plus the captured bytes
/// (a view into the reader's buffer). `orig_len` is the original on-wire
/// length, which exceeds `bytes.size()` when the capture snapped the frame.
struct PcapRecord {
  std::uint64_t ts_ns = 0;
  std::uint32_t orig_len = 0;
  std::span<const std::uint8_t> bytes;
};

struct PcapWriterConfig {
  bool nanosecond = false;    ///< nanosecond magic/timestamps instead of usec
  bool byte_swapped = false;  ///< emit the big-endian file layout
  std::uint32_t snap_len = 65535;
  std::uint32_t link_type = 1;  ///< LINKTYPE_ETHERNET
};

/// Serializes records into an in-memory classic-pcap image; `save()`
/// flushes it to disk. Microsecond-resolution files truncate sub-usec
/// timestamp digits (the format has nowhere to put them).
class PcapWriter {
 public:
  explicit PcapWriter(PcapWriterConfig config = {});

  /// Append one record. Frames longer than snap_len are snapped (incl_len
  /// capped, orig_len preserved), like a live capture would.
  void append(std::uint64_t ts_ns, std::span<const std::uint8_t> frame);

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const {
    return buffer_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take_buffer() {
    return std::move(buffer_);
  }
  [[nodiscard]] std::size_t record_count() const { return records_; }

  /// Write the capture to `path`; throws std::runtime_error on IO failure.
  void save(const std::string& path) const;

 private:
  void put_u16(std::uint16_t value);
  void put_u32(std::uint32_t value);

  PcapWriterConfig config_;
  std::vector<std::uint8_t> buffer_;
  std::size_t records_ = 0;
};

/// Cursor over an in-memory capture. Throws std::invalid_argument from the
/// constructor when the global header is short or the magic is unknown.
class PcapReader {
 public:
  /// View over caller-owned bytes (must outlive the reader).
  explicit PcapReader(std::span<const std::uint8_t> bytes);
  /// Slurp a capture file (the reader owns the buffer); throws
  /// std::runtime_error on IO failure.
  [[nodiscard]] static PcapReader open(const std::string& path);

  /// Advance to the next record; false at end of capture. A final record
  /// with an incomplete header or fewer bytes than its incl_len claims also
  /// returns false and sets truncated().
  [[nodiscard]] bool next(PcapRecord& out);

  /// Restart iteration from the first record (truncated() is kept — it is
  /// a property of the capture, not of the cursor).
  void rewind() {
    pos_ = kGlobalHeaderSize;
    records_ = 0;
  }

  /// Convenience: rewind and collect every remaining record (spans into
  /// this reader's buffer).
  [[nodiscard]] std::vector<PcapRecord> read_all();

  [[nodiscard]] bool truncated() const { return truncated_; }
  [[nodiscard]] bool nanosecond() const { return nanosecond_; }
  [[nodiscard]] bool byte_swapped() const { return swapped_; }
  [[nodiscard]] std::uint32_t snap_len() const { return snap_len_; }
  [[nodiscard]] std::uint32_t link_type() const { return link_type_; }
  [[nodiscard]] std::size_t record_count() const { return records_; }

 private:
  static constexpr std::size_t kGlobalHeaderSize = 24;
  static constexpr std::size_t kRecordHeaderSize = 16;

  explicit PcapReader(std::vector<std::uint8_t> owned);
  void parse_global_header();
  [[nodiscard]] std::uint32_t get_u32(std::size_t offset) const;
  [[nodiscard]] std::uint16_t get_u16(std::size_t offset) const;

  std::vector<std::uint8_t> owned_;  ///< backing store when open()ed
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = kGlobalHeaderSize;
  std::size_t records_ = 0;  ///< complete records iterated so far
  bool swapped_ = false;
  bool nanosecond_ = false;
  bool truncated_ = false;
  std::uint32_t snap_len_ = 0;
  std::uint32_t link_type_ = 0;
};

}  // namespace ofmtl::trace
