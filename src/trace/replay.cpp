#include "trace/replay.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "obs/tracer.hpp"

namespace ofmtl::trace {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kIngestWindow = 64;  ///< frames per parse_batch call

}  // namespace

TraceReplayer::TraceReplayer(PcapReader& reader, std::uint32_t in_port) {
  std::vector<PcapRecord> window;
  window.reserve(kIngestWindow);
  PcapRecord record;
  bool more = true;
  while (more) {
    window.clear();
    while (window.size() < kIngestWindow && (more = reader.next(record))) {
      window.push_back(record);
    }
    ingest(window, in_port);
  }
}

TraceReplayer::TraceReplayer(std::span<const PcapRecord> records,
                             std::uint32_t in_port) {
  ingest(records, in_port);
}

void TraceReplayer::ingest(std::span<const PcapRecord> records,
                           std::uint32_t in_port) {
  if (records.empty()) return;
  // Window scratch lives here, not per call: ingest() is construction-time,
  // so a plain local batch is fine — the steady-state allocation guarantees
  // belong to parse_batch and run(), not to ingestion.
  std::vector<WireFrame> frames;
  std::vector<PacketHeader> parsed(records.size());
  frames.reserve(records.size());
  for (const auto& record : records) {
    frames.emplace_back(record.bytes, record.orig_len);
  }
  ParseContext ctx;
  (void)parse_batch(frames, in_port, parsed, ctx);
  frames_ += records.size();
  malformed_ += ctx.bad_lanes.size();
  std::size_t next_bad = 0;
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    if (next_bad < ctx.bad_lanes.size() && ctx.bad_lanes[next_bad] == i) {
      ++next_bad;  // dropped lane
      continue;
    }
    headers_.push_back(parsed[i]);
  }
}

ReplayStats TraceReplayer::run(runtime::ParallelRuntime& rt,
                               std::span<ExecutionResult> results,
                               const ReplayConfig& config) {
  ReplayStats stats;
  stats.frames = frames_;
  stats.malformed_frames = malformed_;
  if (headers_.empty() || config.loops == 0) return stats;
  if (results.size() < headers_.size()) {
    throw std::invalid_argument("replay: results span too small");
  }
  if (config.batch == 0 || config.in_flight == 0) {
    throw std::invalid_argument("replay: batch and in_flight must be nonzero");
  }

  std::vector<runtime::BatchTicket> tickets(config.in_flight);
  const auto start = Clock::now();
  const double pace_ns_per_packet =
      config.pace_pps > 0.0 ? 1e9 / config.pace_pps : 0.0;

  bool failed = false;
  for (std::size_t pass = 0; pass < config.loops; ++pass) {
    OFMTL_OBS_EMIT(obs::TraceEvent::kReplayPassBegin, pass, headers_.size());
    std::size_t slot = 0;
    for (std::size_t base = 0; base < headers_.size();
         base += config.batch, slot = (slot + 1) % config.in_flight) {
      const std::size_t n = std::min(config.batch, headers_.size() - base);
      // Reuse this ticket slot only after its previous batch completed —
      // bounds in-flight work and makes the ticket reusable.
      tickets[slot].wait();
      if (config.pace_pps > 0.0) {
        const auto deadline =
            start + std::chrono::nanoseconds(static_cast<std::int64_t>(
                        static_cast<double>(stats.packets) *
                        pace_ns_per_packet));
        const auto now = Clock::now();
        if (now < deadline) {
          std::this_thread::sleep_until(deadline);
        } else if (now - deadline >=
                   std::chrono::nanoseconds(static_cast<std::int64_t>(
                       static_cast<double>(n) * pace_ns_per_packet))) {
          ++stats.pace_misses;  // a full batch interval behind schedule
        }
      }
      stats.backpressure_spins +=
          rt.submit(config.queue, {headers_.data() + base, n},
                    {results.data() + base, n}, &tickets[slot]);
      stats.packets += n;
      ++stats.batches;
    }
    // Pass barrier: the next pass rewrites the same result lanes, so every
    // in-flight batch must land first (also what makes "results hold the
    // final pass" well-defined).
    for (auto& ticket : tickets) {
      ticket.wait();
      failed = failed || ticket.failed();
    }
    OFMTL_OBS_EMIT(obs::TraceEvent::kReplayPassEnd, pass, headers_.size());
  }
  stats.elapsed_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  if (failed) {
    throw std::runtime_error("replay: batch lookup failed in worker");
  }
  return stats;
}

}  // namespace ofmtl::trace
