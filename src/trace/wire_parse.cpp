#include "trace/wire_parse.hpp"

#include <stdexcept>

#include "net/packet.hpp"

namespace ofmtl::trace {

namespace {

inline void prefetch_frame(const WireFrame& frame) {
#if defined(__GNUC__) || defined(__clang__)
  if (!frame.bytes.empty()) {
    __builtin_prefetch(frame.bytes.data());
    // Headers the parser walks span up to ~70 bytes (Ethernet + stacked
    // tags + IPv6 + L4); one extra line covers them on 64-byte-line parts.
    if (frame.bytes.size() > 64) __builtin_prefetch(frame.bytes.data() + 64);
  }
#else
  (void)frame;
#endif
}

}  // namespace

std::size_t parse_batch(std::span<const WireFrame> frames,
                        std::uint32_t in_port, std::span<PacketHeader> out,
                        ParseContext& ctx) {
  if (out.size() < frames.size()) {
    throw std::invalid_argument("parse_batch: out span too small");
  }
  ctx.bad_lanes.clear();

  const std::size_t warm =
      frames.size() < kParsePrefetchDistance ? frames.size()
                                             : kParsePrefetchDistance;
  for (std::size_t i = 0; i < warm; ++i) prefetch_frame(frames[i]);

  std::size_t valid = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i + kParsePrefetchDistance < frames.size()) {
      prefetch_frame(frames[i + kParsePrefetchDistance]);
    }
    if (parse_packet_header(frames[i].bytes, in_port, out[i],
                            frames[i].wire_len)) {
      ++valid;
    } else {
      out[i] = PacketHeader{};
      ctx.bad_lanes.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return valid;
}

}  // namespace ofmtl::trace
