// Allocation-free batched wire parse: the trace-ingest front end that turns
// lane windows of raw frame bytes into PacketHeader lanes for the runtime.
//
// Follows the hot-path idioms of docs/ARCHITECTURE.md: per-thread scratch
// that is cleared but never shrunk (SearchContext-style), software prefetch
// of upcoming lanes' frame bytes while the current lane parses, and no
// exceptions on the hot path — malformed lanes are recorded in the scratch
// and skipped, mirroring what a NIC would do with a runt frame. Parsed
// lanes are bitwise-identical to the scalar parse_packet header (the two
// share one layer-walk core; property-tested in tests/test_trace_replay).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/header.hpp"

namespace ofmtl::trace {

/// A view of one raw frame's bytes.
using FrameSpan = std::span<const std::uint8_t>;

/// One parse lane: the captured bytes plus the frame's original on-wire
/// length (pcap orig_len). When the capture was snap-length-capped,
/// wire_len > bytes.size() tells the parser to validate L3 length fields
/// against the wire rather than the capture, so snapped frames parse
/// gracefully (cut-off fields absent) instead of being rejected as
/// malformed. 0 means the capture is the whole frame.
struct WireFrame {
  WireFrame() = default;
  WireFrame(FrameSpan captured, std::uint32_t orig_len = 0)  // NOLINT: lanes
      : bytes(captured), wire_len(orig_len) {}               // build from spans
  FrameSpan bytes;
  std::uint32_t wire_len = 0;
};

/// Lanes ahead whose frame bytes are prefetched while the current lane
/// parses (frames sit scattered in the capture buffer, so the walk is not
/// hardware-prefetcher friendly on its own).
inline constexpr std::size_t kParsePrefetchDistance = 8;

/// Per-thread scratch of the batched wire parser. One instance per thread,
/// reused across batches; buffers are cleared, never shrunk, so a warmed
/// context stops allocating (counted in tests/test_trace_replay.cpp).
struct ParseContext {
  /// Lanes of the last parse_batch call that were rejected as malformed
  /// (ascending lane indices).
  std::vector<std::uint32_t> bad_lanes;
};

/// Parse frames[i] into out[i] (1:1 lanes; out.size() >= frames.size()).
/// Malformed lanes are recorded in ctx.bad_lanes and their out lane is
/// reset to an empty header. `in_port` seeds kInPort on every lane (a
/// capture is one ingress port's view). Returns the number of valid lanes.
std::size_t parse_batch(std::span<const WireFrame> frames,
                        std::uint32_t in_port, std::span<PacketHeader> out,
                        ParseContext& ctx);

}  // namespace ofmtl::trace
