// Linear search over priority-sorted rules — the reference point every
// category of Table I is measured against.
#pragma once

#include "mdclassifier/classifier.hpp"

namespace ofmtl::md {

class LinearClassifier final : public Classifier {
 public:
  explicit LinearClassifier(RuleSet rules);

  [[nodiscard]] std::string_view name() const override { return "linear"; }
  [[nodiscard]] std::optional<RuleIndex> classify(
      const PacketHeader& header) const override;
  [[nodiscard]] mem::MemoryReport memory_report() const override;
  [[nodiscard]] std::size_t last_access_count() const override {
    return last_accesses_;
  }

 private:
  RuleSet rules_;
  std::vector<RuleIndex> order_;  // indices sorted by priority desc
  mutable std::size_t last_accesses_ = 0;
};

}  // namespace ofmtl::md
