#include "mdclassifier/classifier.hpp"

namespace ofmtl::md {

std::optional<RuleIndex> best_rule(const std::vector<FlowEntry>& entries,
                                   const std::vector<RuleIndex>& candidates) {
  std::optional<RuleIndex> best;
  for (const auto index : candidates) {
    if (!best || entries[index].priority > entries[*best].priority ||
        (entries[index].priority == entries[*best].priority && index < *best)) {
      best = index;
    }
  }
  return best;
}

}  // namespace ofmtl::md
