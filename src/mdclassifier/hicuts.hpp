// HiCuts-style geometric cutting (Gupta/McKeown; HyperCuts [8] generalizes
// it to multiple dimensions per node). Each internal node cuts one field's
// range into 2^k equal slices; rules spanning several slices are *replicated*
// into each — the rule-replication cost the paper's Section III.B cites as
// the motivation for per-field label management.
#pragma once

#include "mdclassifier/classifier.hpp"
#include "mdclassifier/hypersplit.hpp"  // field_interval

namespace ofmtl::md {

struct HiCutsConfig {
  std::size_t binth = 8;       ///< max rules per leaf
  unsigned cut_bits = 2;       ///< 2^cut_bits slices per node
  std::size_t max_depth = 16;  ///< recursion guard
  double space_factor = 4.0;   ///< stop cutting when replication exceeds this
};

class HiCutsClassifier final : public Classifier {
 public:
  explicit HiCutsClassifier(RuleSet rules, HiCutsConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "hicuts"; }
  [[nodiscard]] std::optional<RuleIndex> classify(
      const PacketHeader& header) const override;
  [[nodiscard]] mem::MemoryReport memory_report() const override;
  [[nodiscard]] std::size_t last_access_count() const override {
    return last_accesses_;
  }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// Total rule references in leaves; the replication factor is this
  /// divided by the rule count.
  [[nodiscard]] std::size_t replicated_rule_refs() const;

 private:
  struct Region {
    std::vector<ValueRange> ranges;  // current hyper-rectangle, per field
  };
  struct Node {
    bool leaf = false;
    std::uint8_t field = 0;
    std::uint64_t base = 0;      // region lower bound on the cut field
    std::uint64_t slice = 0;     // width of one slice
    std::vector<std::int32_t> children;
    std::vector<RuleIndex> rules;
  };

  std::int32_t build(std::vector<RuleIndex> active,
                     const std::vector<Region>& rule_boxes, Region region,
                     std::size_t depth);

  RuleSet rules_;
  HiCutsConfig config_;
  std::vector<Node> nodes_;
  mutable std::size_t last_accesses_ = 0;
};

}  // namespace ofmtl::md
