// Common interface for the multi-dimensional packet classifiers of Table I.
// Each category gets a representative implementation used by the Table I
// quantitative comparison bench and as baselines against the paper's
// decomposition architecture:
//   Trie-Geometric  -> HiCutsClassifier, HyperSplitClassifier
//   Decomposition   -> RfcClassifier (plus the core library itself)
//   Hashing-based   -> TupleSpaceClassifier
//   Hardware-based  -> TcamClassifier (wraps classifier/tcam)
//   (reference)     -> LinearClassifier
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "flow/flow_entry.hpp"
#include "mem/memory_model.hpp"
#include "net/header.hpp"

namespace ofmtl::md {

/// Result of one classification: index of the winning rule in the input
/// vector (highest priority, ties to the earlier rule), or miss.
using RuleIndex = std::uint32_t;

class Classifier {
 public:
  virtual ~Classifier() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Best-matching rule for a header, or nullopt.
  [[nodiscard]] virtual std::optional<RuleIndex> classify(
      const PacketHeader& header) const = 0;

  /// Memory footprint model of the built structure.
  [[nodiscard]] virtual mem::MemoryReport memory_report() const = 0;

  /// Memory accesses performed by the last classify() — the lookup-speed
  /// proxy Table I ranks by (TCAM "searches" every entry in parallel but
  /// pays for it in cells; see cells_searched in the bench).
  [[nodiscard]] virtual std::size_t last_access_count() const = 0;
};

/// Construction input: the rules plus the fields they constrain.
struct RuleSet {
  std::vector<FieldId> fields;
  std::vector<FlowEntry> entries;

  [[nodiscard]] static RuleSet from(const FilterSet& set) {
    return RuleSet{set.fields, set.entries};
  }
};

/// Pick the winner among candidate rule indices (highest priority, then
/// earliest position) — shared by all decomposed classifiers.
[[nodiscard]] std::optional<RuleIndex> best_rule(
    const std::vector<FlowEntry>& entries, const std::vector<RuleIndex>& candidates);

}  // namespace ofmtl::md
